// Package seats implements the paper's §7.3 "Seat Reservation" pattern:
// non-fungible resources sold to untrusted agents.
//
// Each seat is in one of three states —
//
//	{"available"}
//	{"purchase pending", session-identity}
//	{"purchased", purchaser-identity}
//
// — with individual transitions between them and a durable cleanup queue
// for holds abandoned in the pending state. The hold TTL is the knob the
// paper turns: the trusted-agent design (no TTL) lets "unscrupulous
// agents ... quickly start a set of transactions against prime seats,
// making them unavailable to others"; the online design bounds the time an
// untrusted agent can keep the system inconsistent.
package seats

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// State is a seat's lifecycle position.
type State int

// The three states of §7.3.
const (
	Available State = iota
	Pending
	Purchased
)

// String names the state.
func (s State) String() string {
	switch s {
	case Available:
		return "available"
	case Pending:
		return "purchase pending"
	default:
		return "purchased"
	}
}

// Metrics tallies venue outcomes.
type Metrics struct {
	Holds        stats.Counter // holds granted
	HoldRejected stats.Counter // hold attempts on non-available seats
	Purchases    stats.Counter
	Expired      stats.Counter // holds reaped by the cleanup queue
	Released     stats.Counter // holds voluntarily released
}

type seat struct {
	state   State
	session string // holder (Pending) or purchaser (Purchased)
	holdGen int    // invalidates stale cleanup entries after re-hold
}

// cleanupEntry is a durably enqueued request to reap an abandoned hold —
// the paper's "durably enqueue requests to clean up seats abandoned in the
// 'purchase pending' state."
type cleanupEntry struct {
	seat    int
	holdGen int
}

// Venue sells a fixed set of seats. Construct with NewVenue.
type Venue struct {
	s       *sim.Sim
	seats   []seat
	holdTTL time.Duration // 0 = unbounded holds (the trusted-agent design)
	queue   []cleanupEntry
	armed   bool
	sweep   time.Duration // janitor cadence

	M Metrics
}

// NewVenue creates a venue with n seats on simulator s. holdTTL bounds
// "purchase pending" holds; zero disables expiry entirely.
func NewVenue(s *sim.Sim, n int, holdTTL time.Duration) *Venue {
	if n <= 0 {
		panic("seats: venue needs at least one seat")
	}
	return &Venue{s: s, seats: make([]seat, n), holdTTL: holdTTL, sweep: holdTTL / 4}
}

// Seats reports the venue size.
func (v *Venue) Seats() int { return len(v.seats) }

// StateOf returns a seat's state and the session attached to it.
func (v *Venue) StateOf(i int) (State, string) {
	v.check(i)
	return v.seats[i].state, v.seats[i].session
}

// CleanupQueueDepth reports how many reap requests are pending.
func (v *Venue) CleanupQueueDepth() int { return len(v.queue) }

func (v *Venue) check(i int) {
	if i < 0 || i >= len(v.seats) {
		panic(fmt.Sprintf("seats: seat %d of %d", i, len(v.seats)))
	}
}

// Hold transitions an available seat to purchase-pending for session,
// reporting whether the hold was granted. With a TTL configured, a reap
// request is durably enqueued for the expiry time.
func (v *Venue) Hold(i int, session string) bool {
	v.check(i)
	st := &v.seats[i]
	if st.state != Available {
		v.M.HoldRejected.Inc()
		return false
	}
	st.state = Pending
	st.session = session
	st.holdGen++
	v.M.Holds.Inc()
	if v.holdTTL > 0 {
		gen := st.holdGen
		v.s.After(v.holdTTL, func() {
			v.queue = append(v.queue, cleanupEntry{seat: i, holdGen: gen})
			v.armJanitor()
		})
	}
	return true
}

// Buy completes the purchase of a seat the session holds.
func (v *Venue) Buy(i int, session string) bool {
	v.check(i)
	st := &v.seats[i]
	if st.state != Pending || st.session != session {
		return false
	}
	st.state = Purchased
	v.M.Purchases.Inc()
	return true
}

// Release voluntarily abandons a hold ("if a purchaser reneges, the
// transaction is rolled back making the seats available again").
func (v *Venue) Release(i int, session string) bool {
	v.check(i)
	st := &v.seats[i]
	if st.state != Pending || st.session != session {
		return false
	}
	st.state = Available
	st.session = ""
	v.M.Released.Inc()
	return true
}

// armJanitor schedules a queue sweep if none is pending.
func (v *Venue) armJanitor() {
	if v.armed || len(v.queue) == 0 {
		return
	}
	v.armed = true
	d := v.sweep
	if d <= 0 {
		d = time.Millisecond
	}
	v.s.After(d, func() {
		v.armed = false
		v.runJanitor()
		v.armJanitor()
	})
}

// runJanitor drains the cleanup queue, reaping holds whose generation
// still matches (a re-held or purchased seat has moved on).
func (v *Venue) runJanitor() {
	q := v.queue
	v.queue = nil
	for _, e := range q {
		st := &v.seats[e.seat]
		if st.state == Pending && st.holdGen == e.holdGen {
			st.state = Available
			st.session = ""
			v.M.Expired.Inc()
		}
	}
}

// CountByState tallies seats per state.
func (v *Venue) CountByState() map[State]int {
	out := map[State]int{}
	for _, st := range v.seats {
		out[st.state]++
	}
	return out
}

// PurchasedBy reports how many seats in [lo, hi) are owned by sessions
// with the given prefix — experiments use it to split scalper inventory
// from real buyers' seats.
func (v *Venue) PurchasedBy(lo, hi int, prefix string) int {
	n := 0
	for i := lo; i < hi && i < len(v.seats); i++ {
		if v.seats[i].state == Purchased && hasPrefix(v.seats[i].session, prefix) {
			n++
		}
	}
	return n
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}
