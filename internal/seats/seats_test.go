package seats

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestHoldBuyLifecycle(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 10, time.Minute)
	if !v.Hold(3, "alice") {
		t.Fatal("hold on available seat refused")
	}
	if st, who := v.StateOf(3); st != Pending || who != "alice" {
		t.Fatalf("state = %v/%s", st, who)
	}
	if !v.Buy(3, "alice") {
		t.Fatal("buy of held seat refused")
	}
	if st, who := v.StateOf(3); st != Purchased || who != "alice" {
		t.Fatalf("state = %v/%s", st, who)
	}
	s.Run()
	// The expiry that was enqueued must not reap a purchased seat.
	if st, _ := v.StateOf(3); st != Purchased {
		t.Fatal("janitor reaped a purchased seat")
	}
}

func TestHoldConflicts(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 2, time.Minute)
	v.Hold(0, "alice")
	if v.Hold(0, "bob") {
		t.Fatal("double hold granted")
	}
	if v.M.HoldRejected.Value() != 1 {
		t.Fatalf("HoldRejected = %d", v.M.HoldRejected.Value())
	}
	if v.Buy(0, "bob") {
		t.Fatal("bob bought alice's held seat")
	}
	if v.Buy(1, "bob") {
		t.Fatal("bought a seat that was never held")
	}
}

func TestReleaseReturnsSeat(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 1, time.Minute)
	v.Hold(0, "alice")
	if !v.Release(0, "alice") {
		t.Fatal("release refused")
	}
	if st, _ := v.StateOf(0); st != Available {
		t.Fatal("released seat not available")
	}
	if !v.Hold(0, "bob") {
		t.Fatal("re-hold after release refused")
	}
}

func TestReleaseWrongSessionRefused(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 1, time.Minute)
	v.Hold(0, "alice")
	if v.Release(0, "bob") {
		t.Fatal("bob released alice's hold")
	}
}

func TestExpiredHoldReaped(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 1, 2*time.Minute)
	v.Hold(0, "ghost")
	s.RunFor(3 * time.Minute)
	if st, _ := v.StateOf(0); st != Available {
		t.Fatalf("abandoned hold not reaped: %v", st)
	}
	if v.M.Expired.Value() != 1 {
		t.Fatalf("Expired = %d", v.M.Expired.Value())
	}
	if v.CleanupQueueDepth() != 0 {
		t.Fatal("cleanup queue not drained")
	}
}

func TestBuyJustBeforeExpiryWins(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 1, 2*time.Minute)
	v.Hold(0, "alice")
	s.After(time.Minute, func() {
		if !v.Buy(0, "alice") {
			t.Error("buy within TTL refused")
		}
	})
	s.RunFor(10 * time.Minute)
	if st, who := v.StateOf(0); st != Purchased || who != "alice" {
		t.Fatalf("state = %v/%s", st, who)
	}
}

func TestReholdInvalidatesStaleCleanup(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 1, 2*time.Minute)
	v.Hold(0, "alice")
	// Alice abandons; seat expires at 2m; bob holds at 3m. The stale
	// cleanup entry from alice's hold must not reap bob's.
	s.At(sim.Time(3*time.Minute), func() {
		if !v.Hold(0, "bob") {
			t.Error("re-hold refused after expiry")
		}
	})
	s.RunFor(4 * time.Minute)
	if st, who := v.StateOf(0); st != Pending || who != "bob" {
		t.Fatalf("state = %v/%s; stale cleanup reaped a live hold", st, who)
	}
	s.RunFor(10 * time.Minute)
	// Bob abandoned too: HIS hold expires on its own schedule.
	if st, _ := v.StateOf(0); st != Available {
		t.Fatal("bob's abandoned hold never reaped")
	}
}

func TestUnboundedHoldsNeverExpire(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 1, 0) // the trusted-agent design
	v.Hold(0, "scalper")
	s.RunFor(24 * time.Hour)
	if st, _ := v.StateOf(0); st != Pending {
		t.Fatal("unbounded hold expired")
	}
}

// TestScalperStarvedByTTL is §7.3 at unit scale: a scalper camps every
// prime seat; with no TTL the buyer never gets one, with a TTL the buyer
// does.
func TestScalperStarvedByTTL(t *testing.T) {
	run := func(ttl time.Duration) bool {
		s := sim.New(1)
		v := NewVenue(s, 4, ttl)
		for i := 0; i < 4; i++ {
			v.Hold(i, "scalper")
		}
		bought := false
		// A real buyer shows up every minute for an hour and tries every
		// seat.
		var attempt func()
		attempt = func() {
			for i := 0; i < 4 && !bought; i++ {
				if v.Hold(i, "buyer") {
					v.Buy(i, "buyer")
					bought = true
				}
			}
			if !bought && s.Now() < sim.Time(time.Hour) {
				s.After(time.Minute, attempt)
			}
		}
		s.After(time.Minute, attempt)
		s.RunUntil(sim.Time(2 * time.Hour))
		return bought
	}
	if run(0) {
		t.Fatal("buyer got a seat despite unbounded scalper holds")
	}
	if !run(5 * time.Minute) {
		t.Fatal("buyer starved even with 5m hold TTL")
	}
}

func TestCountByState(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 5, time.Minute)
	v.Hold(0, "a")
	v.Hold(1, "b")
	v.Buy(1, "b")
	counts := v.CountByState()
	if counts[Available] != 3 || counts[Pending] != 1 || counts[Purchased] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPurchasedByPrefix(t *testing.T) {
	s := sim.New(1)
	v := NewVenue(s, 10, time.Minute)
	for i := 0; i < 4; i++ {
		who := fmt.Sprintf("buyer-%d", i)
		if i%2 == 0 {
			who = fmt.Sprintf("scalper-%d", i)
		}
		v.Hold(i, who)
		v.Buy(i, who)
	}
	if got := v.PurchasedBy(0, 10, "buyer-"); got != 2 {
		t.Fatalf("buyer purchases = %d", got)
	}
	if got := v.PurchasedBy(0, 10, "scalper-"); got != 2 {
		t.Fatalf("scalper purchases = %d", got)
	}
}

func TestStateString(t *testing.T) {
	if Available.String() != "available" || Pending.String() != "purchase pending" || Purchased.String() != "purchased" {
		t.Fatal("state names wrong")
	}
}

func TestBadSeatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range seat did not panic")
		}
	}()
	s := sim.New(1)
	NewVenue(s, 1, 0).Hold(5, "x")
}
