package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/uniq"
)

// TestDeltaChainKillRecoverMatchesControl is the chain-mode acceptance
// differential: with delta snapshots doing the steady-state cuts, a
// kill/recover run must stay byte-identical to a never-crashed control
// of the same schedule.
func TestDeltaChainKillRecoverMatchesControl(t *testing.T) {
	run := func(t *testing.T, crash bool) counterState {
		dir := t.TempDir()
		s := sim.New(171)
		c := New[counterState](counterApp{}, nil,
			WithSim(s), WithReplicas(3), WithDurability(dir),
			WithSnapshotEvery(8), WithSnapshotChain(4))
		defer c.Close()
		for i := 0; i < 40; i++ {
			op := NewOp("credit", fmt.Sprintf("k%02d", i%7), int64(i))
			op.ID = uniq.ID(fmt.Sprintf("p1-%03d", i))
			mustSubmit(t, c, i%3, op)
		}
		convergeSim(t, s, c)
		if crash {
			c.Kill(1)
		}
		for i := 0; i < 40; i++ {
			op := NewOp("debit", fmt.Sprintf("k%02d", i%7), 1)
			op.ID = uniq.ID(fmt.Sprintf("p2-%03d", i))
			mustSubmit(t, c, (i%2)*2, op)
		}
		if crash {
			if err := c.Recover(context.Background(), 1); err != nil {
				t.Fatal(err)
			}
		}
		convergeSim(t, s, c)
		// The workload must actually have exercised the chain.
		if st := c.DurabilityStats(); st.DeltaSnapshots == 0 {
			t.Fatalf("no delta snapshots cut: %+v", st)
		}
		return c.Replica(1).State()
	}
	control := run(t, false)
	crashed := run(t, true)
	if len(control) != len(crashed) {
		t.Fatalf("key counts differ: control %d, crashed %d", len(control), len(crashed))
	}
	for k, v := range control {
		if crashed[k] != v {
			t.Fatalf("state[%s]: control %d, crashed-and-recovered %d", k, v, crashed[k])
		}
	}
}

// TestTornNewestDeltaRecoversFromDiskOnly: tear the newest delta of a
// killed replica's chain, then recover from disk alone (no gossip runs
// in between). Compaction gates on the chain base, so the journal still
// covers everything past the surviving prefix — the recovered replica
// must match its pre-kill self exactly.
func TestTornNewestDeltaRecoversFromDiskOnly(t *testing.T) {
	s, c, _ := durableCluster(t, 172, WithSnapshotEvery(8))
	defer c.Close()
	for i := 0; i < 60; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", fmt.Sprintf("k%d", i%5), 1))
	}
	convergeSim(t, s, c)
	if st := c.DurabilityStats(); st.DeltaSnapshots == 0 {
		t.Fatalf("no delta snapshots cut: %+v", st)
	}
	want := c.Replica(1).State()
	wantOps := c.Replica(1).OpCount()

	c.Kill(1)
	sd := c.storeDir("r1")
	deltas, err := filepath.Glob(filepath.Join(sd, "delta-*.snap"))
	if err != nil || len(deltas) == 0 {
		t.Fatalf("replica 1 has no delta files (err %v)", err)
	}
	sort.Strings(deltas)
	newest := deltas[len(deltas)-1]
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	if err := c.Recover(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	r1 := c.Replica(1)
	if got := r1.OpCount(); got != wantOps {
		t.Fatalf("recovered %d ops, want %d", got, wantOps)
	}
	for k, v := range want {
		if got := r1.State()[k]; got != v {
			t.Fatalf("recovered state[%s] = %d, want %d", k, got, v)
		}
	}
	// And the recovered replica keeps serving.
	mustSubmit(t, c, 1, NewOp("credit", "post", 7))
	convergeSim(t, s, c)
}
