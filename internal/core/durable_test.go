package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/uniq"
)

// durableCluster builds a 3-replica simulated cluster with a disk store
// under a test temp dir.
func durableCluster(t *testing.T, seed int64, opts ...Option) (*sim.Sim, *Cluster[counterState], string) {
	t.Helper()
	dir := t.TempDir()
	s := sim.New(seed)
	all := append([]Option{WithSim(s), WithReplicas(3), WithDurability(dir)}, opts...)
	c := New[counterState](counterApp{}, nil, all...)
	return s, c, dir
}

func convergeSim(t *testing.T, s *sim.Sim, c *Cluster[counterState]) {
	t.Helper()
	s.Run()
	for i := 0; i < 64 && !c.Converged(); i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge")
	}
}

func mustSubmit(t *testing.T, c *Cluster[counterState], rep int, op Op) {
	t.Helper()
	res, err := c.Submit(context.Background(), rep, op)
	if err != nil || !res.Accepted {
		t.Fatalf("submit %v at r%d: accepted=%v err=%v reason=%q", op, rep, res.Accepted, err, res.Reason)
	}
}

// TestKillDropsAllState: a killed replica is empty — unlike SetUp(false),
// which merely silences a node whose RAM survives.
func TestKillDropsAllState(t *testing.T) {
	s, c, _ := durableCluster(t, 41)
	for i := 0; i < 10; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", "k", 1))
	}
	convergeSim(t, s, c)
	if n := c.Replica(1).OpCount(); n != 10 {
		t.Fatalf("pre-kill ops = %d", n)
	}
	c.Kill(1)
	if n := c.Replica(1).OpCount(); n != 0 {
		t.Fatalf("killed replica still holds %d ops in RAM", n)
	}
	if len(c.Replica(1).State()) != 0 {
		t.Fatal("killed replica still derives state")
	}
	if c.Replica(1).Ledger.Len() != 0 {
		t.Fatal("killed replica still remembers its ledger")
	}
	// Submits to the corpse are declined.
	res, err := c.Submit(context.Background(), 1, NewOp("credit", "k", 1))
	if err != nil || res.Accepted {
		t.Fatalf("dead replica accepted a submit: %+v err=%v", res, err)
	}
}

// TestKillRecoverFromDiskOnly: recovery rebuilds the full operation set,
// Lamport clock, and derived state from the store alone — before any
// gossip runs.
func TestKillRecoverFromDiskOnly(t *testing.T) {
	s, c, _ := durableCluster(t, 42, WithSnapshotEvery(8))
	for i := 0; i < 30; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", fmt.Sprintf("k%d", i%5), 1))
	}
	convergeSim(t, s, c)
	want := c.Replica(1).State()
	wantOps := c.Replica(1).OpCount()
	wantLam := c.Replica(1).ops.MaxLam()

	c.Kill(1)
	if err := c.Recover(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	r1 := c.Replica(1)
	if got := r1.OpCount(); got != wantOps {
		t.Fatalf("recovered %d ops, want %d", got, wantOps)
	}
	if got := r1.ops.MaxLam(); got != wantLam {
		t.Fatalf("recovered Lamport %d, want %d", got, wantLam)
	}
	for k, v := range want {
		if got := r1.State()[k]; got != v {
			t.Fatalf("recovered state[%s] = %d, want %d", k, got, v)
		}
	}
	// And the recovered replica keeps serving.
	mustSubmit(t, c, 1, NewOp("credit", "post", 7))
	convergeSim(t, s, c)
}

// TestKillRecoverMatchesControl is the acceptance differential: kill a
// replica mid-workload, recover it from disk only, and every replica's
// per-key state must exactly match a never-crashed control run of the
// same schedule — on both transports.
func TestKillRecoverMatchesControl(t *testing.T) {
	type arm struct {
		name  string
		crash bool
	}
	run := func(t *testing.T, live bool, crash bool) counterState {
		dir := t.TempDir()
		var c *Cluster[counterState]
		var s *sim.Sim
		if live {
			c = New[counterState](counterApp{}, nil, WithReplicas(3), WithDurability(dir))
		} else {
			s = sim.New(77)
			c = New[counterState](counterApp{}, nil, WithSim(s), WithReplicas(3), WithDurability(dir), WithSnapshotEvery(16))
		}
		defer c.Close()
		converge := func() {
			t.Helper()
			if s != nil {
				convergeSim(t, s, c)
				return
			}
			deadline := time.Now().Add(20 * time.Second)
			for !c.Converged() && time.Now().Before(deadline) {
				c.GossipRound()
				time.Sleep(time.Millisecond)
			}
			if !c.Converged() {
				t.Fatal("live cluster did not converge")
			}
		}
		// Phase 1: everyone ingests; converge so the victim holds nothing
		// unique in RAM beyond what is on its disk and its peers.
		for i := 0; i < 40; i++ {
			op := NewOp("credit", fmt.Sprintf("k%02d", i%7), int64(i))
			op.ID = uniq.ID(fmt.Sprintf("p1-%03d", i)) // same IDs in both arms
			mustSubmit(t, c, i%3, op)
		}
		converge()
		if crash {
			c.Kill(1)
		}
		// Phase 2: the survivors keep working — the same schedule in both
		// arms, routed only at replicas 0 and 2.
		for i := 0; i < 40; i++ {
			op := NewOp("debit", fmt.Sprintf("k%02d", i%7), 1)
			op.ID = uniq.ID(fmt.Sprintf("p2-%03d", i))
			mustSubmit(t, c, (i%2)*2, op)
		}
		if crash {
			if err := c.Recover(context.Background(), 1); err != nil {
				t.Fatal(err)
			}
		}
		converge()
		// Every replica agrees; return replica 1's view — the recovered
		// one in the crash arm.
		return c.Replica(1).State()
	}
	for _, transport := range []string{"sim", "live"} {
		t.Run(transport, func(t *testing.T) {
			live := transport == "live"
			control := run(t, live, false)
			crashed := run(t, live, true)
			if len(control) != len(crashed) {
				t.Fatalf("key counts differ: control %d, crashed %d", len(control), len(crashed))
			}
			for k, v := range control {
				if crashed[k] != v {
					t.Fatalf("state[%s]: control %d, crashed-and-recovered %d", k, v, crashed[k])
				}
			}
		})
	}
}

// TestShardedRecoveryIsolated: killing and recovering one shard's
// replica neither stalls nor touches the other shards.
func TestShardedRecoveryIsolated(t *testing.T) {
	dir := t.TempDir()
	s := sim.New(9)
	c := New[counterState](counterApp{}, nil,
		WithSim(s), WithReplicas(3), WithShards(4), WithDurability(dir))
	ctx := context.Background()
	// Find keys living on two different shards.
	var hot, cold string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if hot == "" {
			hot = k
			continue
		}
		if c.ShardOf(k) != c.ShardOf(hot) {
			cold = k
			break
		}
	}
	victim := c.ShardOf(hot)
	for i := 0; i < 12; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", hot, 1))
		mustSubmit(t, c, i%3, NewOp("credit", cold, 1))
	}
	s.Run()
	for i := 0; i < 64 && !c.Converged(); i++ {
		c.GossipRound()
		s.Run()
	}
	otherOps := c.ShardReplica(c.ShardOf(cold), 1).OpCount()

	c.ShardKill(victim, 1)
	// The victim's shard survives on its other replicas...
	if res, err := c.Submit(ctx, 0, NewOp("credit", hot, 1)); err != nil || !res.Accepted {
		t.Fatalf("victim shard's live replica refused work: %+v err=%v", res, err)
	}
	// ...and other shards are untouched: same ops, still serving.
	if res, err := c.Submit(ctx, 1, NewOp("credit", cold, 1)); err != nil || !res.Accepted {
		t.Fatalf("unrelated shard refused work: %+v err=%v", res, err)
	}
	if got := c.ShardReplica(c.ShardOf(cold), 1).OpCount(); got != otherOps+1 {
		t.Fatalf("unrelated shard op count moved unexpectedly: %d -> %d", otherOps, got)
	}
	if err := c.ShardRecover(ctx, victim, 1); err != nil {
		t.Fatal(err)
	}
	s.Run()
	for i := 0; i < 64 && !c.Converged(); i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("sharded cluster did not converge after per-shard recovery")
	}
	for sh := 0; sh < 4; sh++ {
		if !c.ShardConverged(sh) {
			t.Fatalf("shard %d not converged", sh)
		}
	}
}

// TestColdRestart: Close a durable cluster, build a brand-new one on the
// same directory, and every replica resumes with the full state before
// any gossip runs.
func TestColdRestart(t *testing.T) {
	dir := t.TempDir()
	s := sim.New(11)
	c := New[counterState](counterApp{}, nil,
		WithSim(s), WithReplicas(3), WithDurability(dir), WithSnapshotEvery(8))
	for i := 0; i < 25; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", fmt.Sprintf("k%d", i%4), 2))
	}
	convergeSim(t, s, c)
	want := c.Replica(0).State()
	wantOps := c.Replica(0).OpCount()
	c.Close()

	s2 := sim.New(12)
	c2 := New[counterState](counterApp{}, nil,
		WithSim(s2), WithReplicas(3), WithDurability(dir), WithSnapshotEvery(8))
	defer c2.Close()
	for i := 0; i < 3; i++ {
		rep := c2.Replica(i)
		if got := rep.OpCount(); got != wantOps {
			t.Fatalf("r%d cold-started with %d ops, want %d", i, got, wantOps)
		}
		state := rep.State()
		for k, v := range want {
			if state[k] != v {
				t.Fatalf("r%d state[%s] = %d, want %d", i, k, state[k], v)
			}
		}
	}
	if !c2.Converged() {
		t.Fatal("cold-started cluster should already be converged")
	}
	// And it keeps accepting work with fresh Lamport stamps past the old ones.
	mustSubmit(t, c2, 0, NewOp("credit", "k0", 1))
	convergeSim(t, s2, c2)
}

// TestColdRestartTornTail: a crash can tear the final journal record;
// the next cold start truncates it and recovers everything before it.
func TestColdRestartTornTail(t *testing.T) {
	dir := t.TempDir()
	s := sim.New(13)
	c := New[counterState](counterApp{}, nil, WithSim(s), WithReplicas(1), WithDurability(dir))
	for i := 0; i < 5; i++ {
		mustSubmit(t, c, 0, NewOp("credit", "k", 1))
	}
	c.Close()
	seg := filepath.Join(dir, "r0", "journal-0000000000.seg")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(14)
	c2 := New[counterState](counterApp{}, nil, WithSim(s2), WithReplicas(1), WithDurability(dir))
	defer c2.Close()
	if got := c2.Replica(0).OpCount(); got != 4 {
		t.Fatalf("recovered %d ops from a torn journal, want 4", got)
	}
	if st := c2.DurabilityStats(); st.TornBytes == 0 {
		t.Fatal("torn bytes not reported")
	}
}

// TestRecoverErrors pins the misuse cases.
func TestRecoverErrors(t *testing.T) {
	ctx := context.Background()
	// No durability configured.
	s, c := newTestCluster(15, 2)
	_ = s
	c.Kill(1)
	if err := c.Recover(ctx, 1); err == nil {
		t.Fatal("Recover without WithDurability must fail")
	}
	// Alive replica.
	_, c2, _ := durableCluster(t, 16)
	if err := c2.Recover(ctx, 0); err == nil {
		t.Fatal("Recover of a live replica must fail")
	}
	c2.Close()
}

// TestDurableSnapshotsCompactJournal: with gossip acks flowing and a
// tight snapshot cadence, old journal segments are actually deleted,
// and a cold restart still reconstructs everything.
func TestDurableSnapshotsCompactJournal(t *testing.T) {
	dir := t.TempDir()
	s := sim.New(17)
	c := New[counterState](counterApp{}, nil,
		WithSim(s), WithReplicas(3), WithDurability(dir), WithSnapshotEvery(16))
	for i := 0; i < 120; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", fmt.Sprintf("k%d", i%3), 1))
		if i%10 == 9 {
			c.GossipRound()
			s.Run()
		}
	}
	convergeSim(t, s, c)
	if st := c.DurabilityStats(); st.Snapshots == 0 {
		t.Fatalf("no snapshots written: %+v", st)
	}
	wantOps := c.Replica(0).OpCount()
	c.Close()
	s2 := sim.New(18)
	c2 := New[counterState](counterApp{}, nil,
		WithSim(s2), WithReplicas(3), WithDurability(dir), WithSnapshotEvery(16))
	defer c2.Close()
	for i := 0; i < 3; i++ {
		if got := c2.Replica(i).OpCount(); got != wantOps {
			t.Fatalf("r%d recovered %d of %d ops after compaction", i, got, wantOps)
		}
	}
}

// TestSetUpChurnRace is the -race workout for LiveTransport.SetUp
// flipping concurrently with gossip and in-flight submits: a
// crash/restart churn loop must neither race nor wedge the cluster.
func TestSetUpChurnRace(t *testing.T) {
	c := New[counterState](counterApp{}, nil,
		WithReplicas(3), WithGossipEvery(500*time.Microsecond))
	defer c.Close()
	tr := c.Transport()
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rep := (w + i) % 3
				res, err := c.Submit(ctx, rep, NewOp("credit", fmt.Sprintf("k%d", i%5), 1))
				if err == nil && res.Accepted {
					accepted.Add(1)
				}
			}
		}(w)
	}
	for i := 0; i < 60; i++ {
		tr.SetUp("r1", i%2 == 0)
		time.Sleep(2 * time.Millisecond)
	}
	tr.SetUp("r1", true)
	close(stop)
	wg.Wait()
	if accepted.Load() == 0 {
		t.Fatal("no submits accepted under churn")
	}
	// Generous: under -race on a loaded CI box, gossip rounds crawl.
	deadline := time.Now().Add(30 * time.Second)
	for !c.Converged() && time.Now().Before(deadline) {
		c.GossipRound()
		time.Sleep(time.Millisecond)
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge after SetUp churn")
	}
}

// TestKillRecoverChurn hammers the full crash lifecycle on the live
// transport: replica 1 is repeatedly hard-killed and recovered from
// disk while submitters drive all three replicas. The invariant under
// test is the durability contract itself — no operation whose submit
// was acknowledged may be missing from the converged cluster.
func TestKillRecoverChurn(t *testing.T) {
	dir := t.TempDir()
	c := New[counterState](counterApp{}, nil,
		WithReplicas(3), WithDurability(dir),
		WithSnapshotEvery(64), WithGossipEvery(time.Millisecond))
	defer c.Close()
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := make(map[uniq.ID]bool)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := NewOp("credit", fmt.Sprintf("k%d", i%5), 1)
				op.ID = uniq.ID(fmt.Sprintf("w%d-%06d", w, i))
				res, err := c.Submit(ctx, (w+i)%3, op)
				if err == nil && res.Accepted {
					mu.Lock()
					acked[op.ID] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := 0; i < 8; i++ {
		time.Sleep(5 * time.Millisecond)
		c.Kill(1)
		time.Sleep(2 * time.Millisecond)
		if err := c.Recover(ctx, 1); err != nil {
			t.Errorf("recover #%d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for !c.Converged() && time.Now().Before(deadline) {
		c.GossipRound()
		time.Sleep(time.Millisecond)
	}
	if !c.Converged() {
		t.Fatal("cluster did not converge after kill/recover churn")
	}
	ops := c.Replica(0).Ops()
	mu.Lock()
	defer mu.Unlock()
	if len(acked) == 0 {
		t.Fatal("no submits acknowledged under churn")
	}
	for id := range acked {
		if !ops.Contains(id) {
			t.Fatalf("acknowledged op %s lost across kill/recover churn (%d acked, %d present)",
				id, len(acked), ops.Len())
		}
	}
}

// TestGroupCommitAmortizes pins the durable throughput claim: a bulk
// ingest over the group-committing store must complete with far fewer
// fsyncs than operations — staging is microseconds while an fsync is
// not, so the bus fills while the disk is busy. (One fsync per op is
// exactly what WithFsyncEvery(-1) would pay.)
func TestGroupCommitAmortizes(t *testing.T) {
	const n = 2000
	c := New[counterState](counterApp{}, nil,
		WithReplicas(1), WithDurability(t.TempDir()))
	defer c.Close()
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = NewOp("credit", fmt.Sprintf("k%d", i%8), 1)
	}
	results, err := c.SubmitBatch(context.Background(), 0, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Accepted {
			t.Fatalf("op %d declined: %s", i, r.Reason)
		}
	}
	st := c.DurabilityStats()
	if st.Appended != n {
		t.Fatalf("journaled %d of %d entries", st.Appended, n)
	}
	if st.Fsyncs == 0 || st.Fsyncs > n/10 {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d ops (want ≤ %d)", st.Fsyncs, n, n/10)
	}
}

// TestEveryOpFsyncBaseline: the car-per-driver mode really pays one
// flush per op, which is what the group-commit ratio is measured
// against.
func TestEveryOpFsyncBaseline(t *testing.T) {
	const n = 50
	c := New[counterState](counterApp{}, nil,
		WithReplicas(1), WithDurability(t.TempDir()), WithFsyncEvery(-1))
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		mustSubmit(t, c, 0, NewOp("credit", "k", 1))
	}
	if st := c.DurabilityStats(); st.Fsyncs < n {
		t.Fatalf("every-op mode fsynced %d times for %d ops", st.Fsyncs, n)
	}
	_ = ctx
}
