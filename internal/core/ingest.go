package core

// The batched single-writer ingest pipeline (WithIngestBatch).
//
// The per-operation submit path pays one mutex acquisition, one fold
// step, one store chunk, and one commit callback per operation, all
// serialized behind the replica's mu. The pipeline amortizes every one of
// those: submitters enqueue into a bounded MPSC ring and a dedicated
// drain — a goroutine per replica on the live transport, the calling
// goroutine on the deterministic simulator — takes the replica lock once
// per batch, runs admission and fold steps across the whole batch,
// appends every accepted entry to the in-memory journal and the durable
// store in one vectorized call (one journal write, one flush cover), and
// resolves all the batch's results with one commit callback fan-out.
// Group commit for the lock, in exactly the §3.2 city-bus sense the
// store already applies to fsync.
//
// Observational equivalence with the per-op path is the contract: the
// batch is processed in enqueue order, each operation admission-checked
// against the state including every earlier acceptance (the fold
// checkpoint advances inside the batch), duplicates re-accepted only
// once the covering flush lands, declines resolved immediately, accepted
// results resolved only after durability. The differential tests (E16,
// TestBatchedIngestMatchesPerOp) pin this.

import (
	"sync"
	"sync/atomic"

	"repro/internal/apology"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/sim"
)

// ingestItem is one queued submit: the operation (ingress identity
// already assigned by dispatch) plus where its Result goes — either a
// single-submit callback or a slot in a shared batch sink.
type ingestItem struct {
	op    oplog.Entry
	emit  func(Result) // single-submit completion; nil when sink is set
	sink  *ingestSink
	idx   int32
	start sim.Time
	sync  bool // policy-coordinated: initiated in queue order, never batch-absorbed
}

// finish resolves the item with res, exactly once.
func (it *ingestItem) finish(res Result) {
	if it.sink != nil {
		it.sink.deliver(it.idx, res)
		return
	}
	it.emit(res)
}

// ingestQueue is a bounded multi-producer single-consumer ring buffer.
// Producers block when the ring is full — backpressure, so a burst of
// submitters cannot outrun the drain by more than the ring — and the
// consumer pops up to a whole batch under one lock acquisition.
//
// Inline replicas (no dedicated writer goroutine) use the unbounded
// variant instead: the enqueueing goroutine is itself the drainer, so
// blocking it for backpressure could only deadlock — in particular when
// a completion callback re-enters Submit while its own outer drain is
// already on the stack. There the ring grows as needed; it only ever
// accumulates what one call chain submits before draining.
type ingestQueue struct {
	mu        sync.Mutex
	notEmpty  sync.Cond
	notFull   sync.Cond
	buf       []ingestItem
	head      int // next position to pop
	n         int // occupied slots
	closed    bool
	unbounded bool // grow instead of refusing/blocking when full
}

func newIngestQueue(capacity int, unbounded bool) *ingestQueue {
	q := &ingestQueue{buf: make([]ingestItem, capacity), unbounded: unbounded}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// growLocked widens the ring to hold at least need items, preserving
// order. Caller holds mu; only unbounded queues grow.
func (q *ingestQueue) growLocked(need int) {
	newCap := 2 * len(q.buf)
	if newCap < need {
		newCap = need
	}
	nb := make([]ingestItem, newCap)
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// putAll enqueues the items in order, blocking while the ring is full,
// and reports how many it enqueued — fewer than len(items) only when
// the queue was closed mid-call. The consumer still drains and resolves
// everything enqueued before the close, so the caller owns exactly the
// untaken suffix items[taken:]; resolving more would double-deliver.
// One call's items are contiguous in the ring per chunk and never
// reordered, which is what preserves per-key submission order through
// the pipeline.
func (q *ingestQueue) putAll(items []ingestItem) (taken int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for taken < len(items) {
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
		if q.closed {
			return taken
		}
		take := len(q.buf) - q.n
		if take > len(items)-taken {
			take = len(items) - taken
		}
		for _, it := range items[taken : taken+take] {
			q.buf[(q.head+q.n)%len(q.buf)] = it
			q.n++
		}
		taken += take
		q.notEmpty.Signal()
	}
	return taken
}

// tryPutAll enqueues as many leading items as fit right now, without
// blocking, and reports how many it took (0 when full or closed). The
// inline drain uses it: a single-goroutine world must interleave filling
// and draining rather than wait for a consumer that does not exist.
func (q *ingestQueue) tryPutAll(items []ingestItem) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return -1
	}
	if q.unbounded && q.n+len(items) > len(q.buf) {
		q.growLocked(q.n + len(items))
	}
	take := len(q.buf) - q.n
	if take > len(items) {
		take = len(items)
	}
	for _, it := range items[:take] {
		q.buf[(q.head+q.n)%len(q.buf)] = it
		q.n++
	}
	return take
}

// drain blocks until at least one item is queued (or the queue closes),
// then moves up to max items into dst and returns it. ok is false once
// the queue is closed AND empty — the consumer's signal to exit.
func (q *ingestQueue) drain(dst []ingestItem, max int) (_ []ingestItem, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 {
		if q.closed {
			return dst, false
		}
		q.notEmpty.Wait()
	}
	return q.popLocked(dst, max), true
}

// tryDrain is drain without the wait: it pops whatever is queued, up to
// max, and returns immediately.
func (q *ingestQueue) tryDrain(dst []ingestItem, max int) []ingestItem {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return dst
	}
	return q.popLocked(dst, max)
}

func (q *ingestQueue) popLocked(dst []ingestItem, max int) []ingestItem {
	take := q.n
	if take > max {
		take = max
	}
	for i := 0; i < take; i++ {
		slot := &q.buf[(q.head+i)%len(q.buf)]
		dst = append(dst, *slot)
		*slot = ingestItem{} // release references
	}
	q.head = (q.head + take) % len(q.buf)
	q.n -= take
	q.notFull.Broadcast()
	return dst
}

// backlog reports occupancy and capacity right now — the load-shedding
// signal: a ring that stays near capacity means submitters are being
// blocked for backpressure, and an ingress should start refusing work
// (429) before callers discover it through timeouts.
func (q *ingestQueue) backlog() (depth, capacity int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n, len(q.buf)
}

// empty reports whether nothing is currently queued.
func (q *ingestQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n == 0
}

// close wakes every producer and the consumer; the consumer drains what
// remains and exits.
func (q *ingestQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()
}

// ingestSink fans one SubmitBatch's results into a shared slice with a
// single completion — no per-operation closure, which is most of the
// batch path's allocation savings. Items for different shard groups may
// share one sink; their idx ranges are disjoint.
type ingestSink struct {
	results []Result
	pending atomic.Int64
	done    func() // fires exactly once, when every result has landed
}

// deliver lands one result in slot i and fires the completion when it is
// the last one outstanding.
func (s *ingestSink) deliver(i int32, res Result) {
	s.results[i] = res
	if s.pending.Add(-1) == 0 {
		s.done()
	}
}

// enqueueIngest hands one stamped operation to the replica's pipeline.
// On an inline replica (any non-live transport) the calling goroutine
// immediately drains the queue, so the submit's effects — and, with an
// inline store, its completion — happen before enqueueIngest returns,
// keeping the simulator deterministic. It reports false when the queue
// has been closed (the cluster shut down) and the item was not taken.
func (r *Replica[S]) enqueueIngest(it ingestItem) bool {
	return r.enqueueIngestAll([]ingestItem{it}) == 1
}

// enqueueIngestAll hands a slice of stamped operations to the pipeline,
// preserving order, and reports how many items it handed over — fewer
// than all of them only when the queue closed mid-call, in which case
// the caller must resolve exactly the untaken suffix (the taken prefix
// is drained and resolved by the consumer). Inline replicas interleave
// filling and draining so arbitrarily large batches cannot deadlock the
// single goroutine.
func (r *Replica[S]) enqueueIngestAll(items []ingestItem) (taken int) {
	if r.ingestInline {
		// The inline queue is unbounded, so this takes everything (or
		// nothing, once closed) — no blocking, no spin, even when a
		// completion callback re-enters with its own bulk submit while
		// the outer drain holds drainMu.
		taken = r.ingest.tryPutAll(items)
		if taken < 0 {
			return 0
		}
		r.drainInline()
		return taken
	}
	return r.ingest.putAll(items)
}

// ingestLoop is the single writer: it drains the ring in batches of at
// most the configured size and ingests each batch under one lock
// acquisition. One goroutine per replica on the live transport; exits
// when the queue is closed and empty.
func (r *Replica[S]) ingestLoop() {
	defer r.c.ingestWG.Done()
	max := r.c.cfg.ingestBatch
	batch := make([]ingestItem, 0, max)
	for {
		var ok bool
		batch, ok = r.ingest.drain(batch[:0], max)
		if len(batch) > 0 {
			r.ingestBatch(batch)
		}
		if !ok {
			return
		}
	}
}

// drainInline is the simulator's (and any custom transport's) drain:
// the enqueueing goroutine processes everything queued, in batches,
// before returning. At most one drainer is ever active per replica
// (drainMu), so a concurrent custom transport cannot interleave two
// goroutines' segments and invert queue order; a goroutine that loses
// the TryLock race — or that re-enters from a completion callback while
// its own outer drain holds the lock — simply leaves its items to the
// active drainer, which re-checks the ring after releasing so nothing
// is ever stranded.
func (r *Replica[S]) drainInline() {
	max := r.c.cfg.ingestBatch
	var batch []ingestItem
	for {
		if !r.drainMu.TryLock() {
			return // the active drainer's post-release re-check covers us
		}
		for {
			batch = r.ingest.tryDrain(batch[:0], max)
			if len(batch) == 0 {
				break
			}
			r.ingestBatch(batch)
		}
		r.drainMu.Unlock()
		if r.ingest.empty() {
			return
		}
	}
}

// ingestBatch processes one drained batch in strict queue order,
// splitting it at policy-coordinated items: runs of async submits are
// absorbed as vectorized segments, and each sync item is initiated (its
// local admission taken, its coordination round fired) exactly where it
// sat between them — so a coordinated op observes every earlier
// acceptance and never overtakes a queued guess on the same key, just
// as sequential per-op dispatch behaves. Coordination itself is
// asynchronous; the writer never blocks on its round trips.
func (r *Replica[S]) ingestBatch(items []ingestItem) {
	for len(items) > 0 {
		k := 0
		for k < len(items) && !items[k].sync {
			k++
		}
		if k > 0 {
			r.ingestSegment(items[:k])
		}
		if k < len(items) {
			it := items[k]
			r.c.dispatchDirect(r, it.op, policy.Sync, it.finish)
			k++
		}
		items = items[k:]
	}
}

// ingestSegment absorbs one run of asynchronous submits under a single
// replica-lock acquisition: Lamport stamping, duplicate detection,
// admission against the advancing fold, set/journal/store appends — the
// store staged once for the whole segment — then one snapshot decision,
// one fold-snapshot publication, and one commit fan-out resolving every
// result.
func (r *Replica[S]) ingestSegment(items []ingestItem) {
	c, g := r.c, r.g
	r.mu.Lock()
	if r.node.Crashed() {
		// A dead process absorbs nothing. No metrics, matching the per-op
		// dispatch path's early "replica down" return.
		r.mu.Unlock()
		for i := range items {
			items[i].finish(Result{Op: items[i].op, Reason: "replica down"})
		}
		return
	}
	if r.degraded.Load() {
		// Read-only: decline the whole segment with the typed retryable
		// reason. Reads keep serving; nothing is admitted, staged, or
		// gossiped until Rejoin heals the disk.
		r.mu.Unlock()
		for i := range items {
			c.M.Declined.Inc()
			g.M.Declined.Inc()
			items[i].finish(Result{Op: items[i].op, Reason: ReasonDegraded, Retryable: true})
		}
		return
	}
	if r.store != nil {
		// The commit fan-out runs on the store's flusher after this call
		// returns, but the caller (the ingest loop) reuses its batch buffer
		// for the next drain. Give the fan-out its own copy of the items.
		items = append([]ingestItem(nil), items...)
	}
	const (
		outAccepted = iota // entry absorbed; resolves with the batch commit
		outDup             // idempotent re-accept; resolves with the batch commit
		outDeclined        // refused by a rule; resolves immediately
	)
	outcomes := make([]int8, len(items))
	var reasons []string
	accepted := make([]oplog.Entry, 0, len(items))
	for i := range items {
		op := items[i].op
		if op.Lam == 0 {
			// Lamport ingress stamp, exactly as the per-op path: the new op
			// sorts after everything this replica has seen — including the
			// entries accepted earlier in this same batch.
			op.Lam = r.lamport + 1
		}
		items[i].op = op // carry the stamp into the Result, as dispatch does
		if r.ops.Contains(op.ID) {
			outcomes[i] = outDup
			continue
		}
		if c.hasAdmit {
			state := r.stateLocked() // folds earlier batch acceptances in
			declined := false
			for _, rule := range c.rules {
				if rule.Admit != nil && !rule.Admit(state, op) {
					outcomes[i] = outDeclined
					reasons = append(reasons, "declined by rule "+rule.Name)
					declined = true
					break
				}
			}
			if declined {
				continue
			}
		}
		r.addLocked(op)
		accepted = append(accepted, op)
	}
	if len(r.gossipPeers) > 0 {
		// One vectorized append covers the whole batch; positions stay in
		// lockstep with the store staging below.
		r.journal.AppendAll(accepted)
	}
	var end int
	st := r.store
	if len(accepted) > 0 {
		end = r.stageLocked(accepted)
	} else if st != nil {
		// Only duplicates (if any): their originals may still be aboard an
		// unlanded flush, so re-accept no earlier than the current tail.
		end = st.End()
	}
	var snap func()
	if len(accepted) > 0 {
		snap = r.maybeSnapshotLocked()
		if c.snapFn != nil {
			// Fold the batch in and publish the immutable snapshot before
			// any result resolves, so lock-free readers observe every write
			// that has been acknowledged to its submitter. One Step per
			// entry — the same amortized cost the per-op path pays, minus
			// the per-op locking around it.
			r.foldLocked()
			r.publishLocked()
		}
	}
	r.mu.Unlock()
	if snap != nil {
		snap()
	}
	if t := c.cfg.tracer; t != nil && len(accepted) > 0 {
		// The batch was admitted, folded, and published above in one
		// critical section; both stages share its exit timestamp.
		now := int64(c.tr.Now())
		for i := range accepted {
			t.Admitted(string(accepted[i].ID), accepted[i].Key, r.id, now)
			t.Folded(string(accepted[i].ID), r.id, now)
		}
	}
	// Declines carry no recorded work: resolve them immediately, like the
	// per-op path — which also stamps a latency on declined Results.
	if len(reasons) > 0 {
		now := c.tr.Now()
		reasonIdx := 0
		for i := range items {
			if outcomes[i] == outDeclined {
				c.M.Declined.Inc()
				g.M.Declined.Inc()
				if t := c.cfg.tracer; t != nil {
					t.Declined(string(items[i].op.ID), items[i].op.Key, r.id, reasons[reasonIdx], int64(now))
				}
				items[i].finish(Result{Op: items[i].op, Reason: reasons[reasonIdx],
					Latency: now.Sub(items[i].start)})
				reasonIdx++
			}
		}
	}
	if len(accepted) == 0 && !hasOutcome(outcomes, outDup) {
		return // every item was declined; nothing awaits durability
	}
	finish := func(ok bool) {
		if !ok {
			// The batch never became durable: the replica crashed (or its
			// disk broke the durability contract) first. Crash or degrade;
			// nothing was recorded, nothing may be acknowledged.
			reason, retry := "replica crashed before the write was durable", false
			if r.storeFailed() {
				reason, retry = ReasonDegraded, true
			}
			for i := range items {
				if outcomes[i] == outDeclined {
					continue
				}
				c.M.Declined.Inc()
				g.M.Declined.Inc()
				items[i].finish(Result{Op: items[i].op, Reason: reason, Retryable: retry})
			}
			return
		}
		now := c.tr.Now()
		// Ledger descriptions are memoized across runs of the same
		// (kind, key): a bulk batch of like operations builds its two
		// What strings once instead of twice per op.
		var memo whatMemo
		var memoWhat, guessWhat string
		for i := range items {
			if outcomes[i] != outAccepted {
				continue
			}
			op := items[i].op
			if memo.fresh(op.Kind, op.Key) {
				memoWhat = "local " + op.Kind + " " + op.Key
				guessWhat = "accepted " + op.Kind + " " + op.Key + " on local knowledge"
			}
			r.Ledger.Record(now, apology.Memory, r.id, memoWhat, op.ID)
			r.Ledger.Record(now, apology.Guess, r.id, guessWhat, op.ID)
		}
		if t := c.cfg.tracer; t != nil {
			for i := range items {
				if outcomes[i] == outAccepted {
					t.Durable(string(items[i].op.ID), r.id, int64(now))
				}
			}
		}
		if len(accepted) > 0 {
			r.sweepViolations()
		}
		for i := range items {
			if outcomes[i] == outDeclined {
				continue
			}
			res := Result{Accepted: true, Op: items[i].op, Decision: policy.Async}
			c.M.Accepted.Inc()
			g.M.Accepted.Inc()
			if outcomes[i] == outAccepted {
				// Duplicates carry no latency and are not sampled, matching
				// the per-op idempotent re-accept path.
				res.Latency = now.Sub(items[i].start)
				c.M.AsyncLat.AddDur(res.Latency)
				g.M.AsyncLat.AddDur(res.Latency)
			}
			items[i].finish(res)
		}
	}
	if st == nil {
		finish(true)
	} else {
		st.Commit(end, finish)
	}
	if len(accepted) > 0 && c.cfg.gossipEvery > 0 {
		// Coalesced gossip wake: at most one nudge per batch, and only for
		// peers whose unacknowledged suffix has grown to a full batch —
		// the nudge is a backlog limiter, not a latency path. Light load
		// leaves gossip entirely to the ticker; heavy ingest ships a
		// batch-sized suffix as soon as one exists, so per-nudge cost is
		// amortized over at least ingestBatch entries.
		r.nudgeGossip()
	}
}

func hasOutcome(outcomes []int8, want int8) bool {
	for _, o := range outcomes {
		if o == want {
			return true
		}
	}
	return false
}

// nudgeGossip pushes the journal suffix toward any ring peer whose
// unacknowledged backlog has reached a full ingest batch, without
// waiting for the next scheduled round. Peers below the threshold (and
// peers with a push already in flight) are left to the ticker.
func (r *Replica[S]) nudgeGossip() {
	threshold := r.c.cfg.ingestBatch
	var due [2]string // a ring replica has at most two gossip peers
	nDue := 0
	r.mu.Lock()
	jlen := r.journal.Len()
	base := r.journal.Base()
	for _, peer := range r.gossipPeers {
		if nDue == len(due) {
			break
		}
		from := r.sentTo[peer.id]
		if from < base {
			from = base
		}
		if jlen-from >= threshold && !r.pushing[peer.id] {
			due[nDue] = peer.id
			nDue++
		}
	}
	r.mu.Unlock()
	for _, id := range due[:nDue] {
		if r.c.tr.Reachable(r.id, id) {
			r.pushTo(id)
		}
	}
}
