package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/oplog"
	"repro/internal/uniq"
)

// The ingestQueue unit suite: FIFO order through wraparound, bounded
// backpressure, close semantics, and the non-blocking inline variants.

func item(n int) ingestItem {
	return ingestItem{op: oplog.Entry{ID: uniq.ID(fmt.Sprintf("it-%04d", n))}}
}

func drainIDs(t *testing.T, q *ingestQueue, max int) []string {
	t.Helper()
	batch, ok := q.drain(nil, max)
	if !ok {
		t.Fatal("drain reported closed")
	}
	ids := make([]string, len(batch))
	for i, it := range batch {
		ids[i] = string(it.op.ID)
	}
	return ids
}

func TestIngestQueueFIFOThroughWraparound(t *testing.T) {
	q := newIngestQueue(4, false)
	next := 0
	popped := 0
	for round := 0; round < 5; round++ {
		// Fill partially, pop partially, so head walks around the ring.
		var items []ingestItem
		for i := 0; i < 3; i++ {
			items = append(items, item(next))
			next++
		}
		if n := q.putAll(items); n != len(items) {
			t.Fatalf("putAll took %d of %d on an open queue", n, len(items))
		}
		for _, id := range drainIDs(t, q, 3) {
			if want := fmt.Sprintf("it-%04d", popped); id != want {
				t.Fatalf("popped %q, want %q — FIFO broken", id, want)
			}
			popped++
		}
	}
	if popped != next {
		t.Fatalf("popped %d of %d", popped, next)
	}
}

func TestIngestQueueBackpressureBlocks(t *testing.T) {
	q := newIngestQueue(2, false)
	if n := q.putAll([]ingestItem{item(0), item(1)}); n != 2 {
		t.Fatalf("initial fill took %d", n)
	}
	unblocked := make(chan int, 1)
	go func() {
		unblocked <- q.putAll([]ingestItem{item(2)})
	}()
	select {
	case <-unblocked:
		t.Fatal("putAll into a full ring did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if got := drainIDs(t, q, 1); got[0] != "it-0000" {
		t.Fatalf("popped %q", got[0])
	}
	select {
	case n := <-unblocked:
		if n != 1 {
			t.Fatalf("unblocked putAll took %d, want 1", n)
		}
	case <-time.After(time.Second):
		t.Fatal("putAll stayed blocked after a pop made room")
	}
}

func TestIngestQueueLargerThanRing(t *testing.T) {
	// A put bigger than the ring must chunk through, never deadlock, and
	// keep order — given a concurrent consumer.
	q := newIngestQueue(4, false)
	const n = 100
	var got []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(got) < n {
			batch, ok := q.drain(nil, 7)
			if !ok {
				return
			}
			for _, it := range batch {
				got = append(got, string(it.op.ID))
			}
		}
	}()
	items := make([]ingestItem, n)
	for i := range items {
		items[i] = item(i)
	}
	if n := q.putAll(items); n != len(items) {
		t.Fatalf("putAll took %d of %d", n, len(items))
	}
	wg.Wait()
	for i, id := range got {
		if want := fmt.Sprintf("it-%04d", i); id != want {
			t.Fatalf("position %d = %q, want %q", i, id, want)
		}
	}
}

func TestIngestQueueClose(t *testing.T) {
	q := newIngestQueue(4, false)
	q.putAll([]ingestItem{item(0)})
	q.close()
	// The consumer still drains what was queued...
	batch, ok := q.drain(nil, 8)
	if !ok || len(batch) != 1 {
		t.Fatalf("drain after close = %d items, ok=%v; want the 1 queued item", len(batch), ok)
	}
	// ...then observes the close.
	if batch, ok = q.drain(nil, 8); ok || len(batch) != 0 {
		t.Fatalf("second drain = %d items, ok=%v; want empty and closed", len(batch), ok)
	}
	// Producers are refused.
	if n := q.putAll([]ingestItem{item(1)}); n != 0 {
		t.Fatal("putAll enqueued on a closed queue")
	}
	if q.tryPutAll([]ingestItem{item(1)}) != -1 {
		t.Fatal("tryPutAll did not report the close")
	}
}

func TestIngestQueueTryVariants(t *testing.T) {
	q := newIngestQueue(3, false)
	if got := q.tryDrain(nil, 4); len(got) != 0 {
		t.Fatalf("tryDrain on empty = %d items", len(got))
	}
	items := make([]ingestItem, 5)
	for i := range items {
		items[i] = item(i)
	}
	if n := q.tryPutAll(items); n != 3 {
		t.Fatalf("tryPutAll took %d, want 3 (ring capacity)", n)
	}
	got := q.tryDrain(nil, 2)
	if len(got) != 2 || got[0].op.ID != "it-0000" || got[1].op.ID != "it-0001" {
		t.Fatalf("tryDrain = %v", got)
	}
	if n := q.tryPutAll(items[3:]); n != 2 {
		t.Fatalf("tryPutAll after pop took %d, want 2", n)
	}
}

// TestIngestQueueUnboundedGrows pins the inline variant's contract: a
// put larger than the ring grows it (preserving order through the old
// wraparound) instead of refusing or blocking — the property that keeps
// a reentrant bulk submit from livelocking the single inline drainer.
func TestIngestQueueUnboundedGrows(t *testing.T) {
	q := newIngestQueue(2, true)
	// Wrap the head first so growth must linearize a wrapped ring.
	q.tryPutAll([]ingestItem{item(0), item(1)})
	if got := q.tryDrain(nil, 1); len(got) != 1 {
		t.Fatal("prime pop failed")
	}
	items := make([]ingestItem, 9)
	for i := range items {
		items[i] = item(i + 2)
	}
	if n := q.tryPutAll(items); n != len(items) {
		t.Fatalf("unbounded tryPutAll took %d of %d", n, len(items))
	}
	got := q.tryDrain(nil, 100)
	if len(got) != 10 {
		t.Fatalf("drained %d items, want 10", len(got))
	}
	for i, it := range got {
		if want := fmt.Sprintf("it-%04d", i+1); string(it.op.ID) != want {
			t.Fatalf("position %d = %q, want %q — growth lost order", i, it.op.ID, want)
		}
	}
}

// TestIngestQueuePartialEnqueueOnClose pins the ownership split a
// mid-call close creates: putAll reports exactly how many items the
// consumer now owns, and the consumer drains exactly those — the caller
// resolving the untaken suffix and the consumer the taken prefix must
// never overlap (a double delivery into a shared sink).
func TestIngestQueuePartialEnqueueOnClose(t *testing.T) {
	q := newIngestQueue(2, false)
	done := make(chan int, 1)
	go func() { done <- q.putAll([]ingestItem{item(0), item(1), item(2), item(3)}) }()
	for {
		q.mu.Lock()
		filled := q.n
		q.mu.Unlock()
		if filled == 2 {
			break // producer has filled the ring and is blocked on the rest
		}
		time.Sleep(time.Millisecond)
	}
	q.close()
	if n := <-done; n != 2 {
		t.Fatalf("putAll reported %d taken, want 2 (the enqueued prefix)", n)
	}
	batch, _ := q.drain(nil, 8)
	if len(batch) != 2 || batch[0].op.ID != "it-0000" || batch[1].op.ID != "it-0001" {
		t.Fatalf("consumer drained %d items, want exactly the taken prefix", len(batch))
	}
}

func TestIngestQueueBlockedProducerUnblocksOnClose(t *testing.T) {
	q := newIngestQueue(1, false)
	q.putAll([]ingestItem{item(0)})
	done := make(chan int, 1)
	go func() { done <- q.putAll([]ingestItem{item(1), item(2)}) }()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case n := <-done:
		if n != 0 {
			t.Fatalf("blocked producer reported %d enqueued after close", n)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked producer not woken by close")
	}
}
