// Package core implements the paper's primary contribution as a reusable
// library: operation-centric, eventually consistent replication in the
// ACID 2.0 style of §8 — Associative, Commutative, Idempotent,
// Distributed.
//
// Applications model their business as uniquified operations (§6.5's
// "operation-centric pattern"). A Cluster of Replicas accepts operations
// on local knowledge (guesses), spreads them by anti-entropy gossip
// (memories flowing together, §7.6), and derives state by folding the
// operation set in a canonical order — so "replicas that have seen the
// same work see the same result, independent of the order in which the
// work arrived."
//
// State derivation is checkpointed and incremental: each replica caches
// the fold of its set up to a canonical-order watermark and advances it
// by folding only the entries beyond the watermark (oplog.Set's
// EntriesAfter). Ingress stamps every new operation with Lamport
// max(seen)+1, so local submits and in-order gossip are pure appends and
// admission costs O(new entries), not O(ledger) — the DP2 move from
// per-WRITE checkpoints to log-anchored ones (§3.3), applied to state
// derivation. Only a gossip merge that sorts behind the watermark forces
// a replay, and periodic fold snapshots bound how far back it reaches.
// See App and Snapshotter for the state-cloning contract this rests on,
// and WithFullRefold for the replay-from-genesis escape hatch.
//
// Scale-out follows §6's consequence of per-entity consistency: a
// Cluster is a set of shards, each an independent replica group with its
// own operation sets, fold checkpoints, journals, gossip schedule, and
// metrics. Submits are routed by a consistent hash of Op.Key
// (internal/shard), so operations on different shards share no lock and
// no gossip payload — on the live transport they proceed in true
// parallel. WithShards sets the shard count (default 1, which preserves
// the unsharded behaviour exactly); because applications must already
// tolerate any canonical fold order, a sharded run derives per-key
// states identical to an unsharded run of the same operations.
//
// Business rules are enforced probabilistically (§5.2): a Rule's Admit
// check runs against the local guess at submit time, and its Violated
// check runs after merges, when the truth has caught up; discovered
// violations become apologies (§5.7) routed through an apology.Queue.
// A policy.Policy picks, per operation, between the asynchronous guess
// path and §5.8's alternative — synchronous coordination with every
// replica — implementing the "$10,000 check" rule.
//
// The package is re-exported by the module root as the public `quicksand`
// API. Clusters are built with New plus functional options (WithReplicas,
// WithSim, WithTransport, ...), operations are submitted synchronously
// with Submit/SubmitBatch — context-aware calls that resolve to a typed
// Result — or asynchronously with SubmitAsync for callers that live
// inside a simulated event loop. The Transport seam lets the same cluster
// run on the deterministic simulator or on real goroutines.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"time"

	"repro/internal/apology"
	"repro/internal/faultfs"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/trace"
)

// Op is one typed business operation offered to a cluster. The zero Op is
// not submittable — at minimum Kind should be set; an Op with an empty ID
// receives an ingress uniquifier at submit time, while a caller-assigned
// ID (a check number, a content hash) makes retries idempotent: an op
// whose ID was already seen at a replica is accepted without re-recording.
type Op = oplog.Entry

// NewOp builds an operation with the fields every application uses: the
// business operation name, the object it targets, and its numeric
// argument. The ingress replica assigns the uniquifier and timestamps.
func NewOp(kind, key string, arg int64) Op {
	return Op{Kind: kind, Key: key, Arg: arg}
}

// App folds operations into application state. Step must be insensitive
// to the canonical fold order produced by oplog.Set — in ACID 2.0 terms,
// the operations must commute (or the App must make them commute, e.g. by
// last-ingress-wins tie-breaks, which canonical order makes deterministic).
//
// Step may mutate and return the accumulator in place; previously
// returned states remain valid snapshots regardless. The engine
// guarantees this by cloning the accumulator before folding new entries
// into a state it has handed out — via the App's Snapshot method when it
// implements Snapshotter, by plain assignment when S is a pure value type
// (no pointers, maps, slices, channels, funcs, or interfaces reachable),
// and otherwise by giving up on incremental folding entirely and
// re-deriving from a fresh Init() on every change (the pre-checkpoint
// behaviour). Implement Snapshotter on any App whose state holds
// reference types: it is what keeps admission O(new entries) instead of
// O(ledger).
//
// The guarantee is one-directional: callers must treat states returned
// by Replica.State (and passed to Rule callbacks) as read-only. The
// engine folds forward from the accumulator it handed out, so a caller
// mutation through a reference-typed state would be folded into every
// subsequent derivation instead of being healed by the next replay.
type App[S any] interface {
	// Init returns the empty state.
	Init() S
	// Step applies one operation.
	Step(state S, op Op) S
}

// Snapshotter is the optional App extension that unlocks checkpointed
// incremental folds for reference-typed states. Snapshot must return a
// deep copy: folding further operations into the original must never be
// observable through the copy, and vice versa.
type Snapshotter[S any] interface {
	Snapshot(state S) S
}

// Violation is one discovered breach of a business rule.
type Violation struct {
	Detail string // stable description; identical violations dedupe
	Key    string // object concerned (account, SKU, ...) for compensation code
	Amount int64  // money at stake, in cents (0 if not monetary)
}

// Rule is a probabilistically enforced business rule (§5.2).
type Rule[S any] struct {
	Name string
	// Admit, if non-nil, gates an operation against the replica's local
	// (guessed) state. Returning false declines the business.
	Admit func(state S, op Op) bool
	// Violated, if non-nil, inspects a (possibly newly merged) state and
	// reports standing violations — the "Oh, crap!" moments of §5.7.
	Violated func(state S) []Violation
}

// config collects everything the functional options tune.
type config struct {
	replicas    int
	shards      int
	latency     simnet.Latency
	callTimeout time.Duration
	gossipEvery time.Duration
	defPolicy   policy.Policy
	transport   Transport
	s           *sim.Sim
	foldEvery   int           // folded entries between periodic fold checkpoints
	fullRefold  bool          // disable checkpointed folds; replay from genesis
	durableDir  string        // root of per-replica durable stores ("" = in-memory only)
	fsyncEvery  time.Duration // >0 timer group commit, 0 immediate coalescing, <0 fsync per op
	fsyncDelay  time.Duration // injected latency before every journal fsync (slow-disk fault)
	snapEvery   int           // journaled entries between durable snapshots
	snapChain   int           // snapshot cuts per full snapshot (delta chaining; 1 = every cut full)
	ingestBatch int           // max ops per ingest-pipeline batch (0 = per-op path)
	local       map[int]bool  // replica indices hosted by this process (nil = all)
	tracer      *trace.Tracer // sampled op-lifecycle tracing (nil = off, zero-cost)
	storeFS     faultfs.FS    // durable-store filesystem seam (nil = the real disk)
}

// Option configures a Cluster at construction.
type Option func(*config)

// WithReplicas sets the replica count per shard (default 3; values below
// 1 fall back to the default, matching the old zero-value Config
// semantics).
func WithReplicas(n int) Option { return func(c *config) { c.replicas = n } }

// WithShards partitions the key space across n independent replica
// groups (default 1; values below 1 fall back to 1). Each shard owns a
// consistent-hash slice of the keys and runs its own operation sets,
// fold checkpoints, journals, and gossip schedule — operations on
// different shards share no lock, so on the live transport they proceed
// in parallel. Submits are routed by Op.Key; the replica index names a
// position within the routed shard's group. A cluster of n shards and m
// replicas registers n×m transport nodes.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithLatency sets the per-message delivery latency model. On the
// simulator the default is 5ms ± 2ms (cross-site links); the live
// transport defaults to no artificial delay. New panics if the chosen
// transport cannot honour an explicit latency model.
func WithLatency(l simnet.Latency) Option { return func(c *config) { c.latency = l } }

// WithCallTimeout bounds every replica-to-replica call (default 100ms).
func WithCallTimeout(d time.Duration) Option { return func(c *config) { c.callTimeout = d } }

// WithGossipEvery starts background anti-entropy gossip at the given
// interval as soon as the cluster is built; Close (or StopGossip) stops
// it. Without this option, gossip runs only when the caller invokes
// GossipRound or StartGossip.
func WithGossipEvery(d time.Duration) Option { return func(c *config) { c.gossipEvery = d } }

// WithDefaultPolicy sets the risk policy used by submits that do not
// carry a WithPolicy option (default policy.AlwaysAsync — guess on
// everything).
func WithDefaultPolicy(p policy.Policy) Option { return func(c *config) { c.defPolicy = p } }

// WithTransport runs the cluster on the given transport. Mutually
// exclusive with WithSim; without either, the cluster runs on a fresh
// LiveTransport (real goroutines, wall-clock time).
func WithTransport(t Transport) Option { return func(c *config) { c.transport = t } }

// WithSim runs the cluster on a fresh deterministic SimTransport bound to
// simulator s — its own private network, so several clusters can share
// one simulation without node-name collisions.
func WithSim(s *sim.Sim) Option { return func(c *config) { c.s = s } }

// WithFoldCheckpointEvery sets how many folded entries separate the
// periodic fold checkpoint snapshots (default 1024). Snapshots bound the
// replay a behind-watermark gossip merge forces; 0 disables them, so such
// a merge replays from genesis. Values below 0 fall back to the default.
func WithFoldCheckpointEvery(n int) Option { return func(c *config) { c.foldEvery = n } }

// WithFullRefold disables the checkpointed incremental fold engine: every
// state derivation after a change replays the whole operation set from a
// fresh Init. This is the pre-checkpoint behaviour — O(ledger) per
// derivation — kept as the differential-testing oracle and benchmark
// baseline; production clusters should not need it.
func WithFullRefold() Option { return func(c *config) { c.fullRefold = true } }

// WithDurability gives every replica a disk-backed store rooted under
// dir: an append-only CRC-checked journal of its operations plus
// periodic snapshot files (internal/store). Each replica owns
// dir/<node-id>; a submit or gossip push is acknowledged only after its
// entries are fsynced (group-committed), so anything a caller or a peer
// saw accepted survives a hard crash. With durability on, Kill/Recover
// model real process death: Kill drops all of a replica's RAM, Recover
// reloads snapshot + journal from disk and rejoins gossip to catch up —
// and New itself cold-starts from whatever an earlier incarnation left
// in dir. New panics if the stores cannot be opened (a configuration
// error should be loud, like WithLatency on the wrong transport).
func WithDurability(dir string) Option { return func(c *config) { c.durableDir = dir } }

// WithFsyncEvery tunes the group-commit economics of WithDurability's
// fsync loop (§3.2's city bus): d > 0 holds each flush for up to d so
// more commits board it; 0 (the default) flushes as soon as the disk is
// free, coalescing everything that arrived during the previous flush;
// d < 0 is the car-per-driver baseline — one fsync per operation — kept
// for measuring what group commit saves.
func WithFsyncEvery(d time.Duration) Option { return func(c *config) { c.fsyncEvery = d } }

// WithFsyncDelay injects d of extra latency before every journal fsync
// on every replica's durable store — the slow-disk fault for chaos
// scenarios. Commit timing stretches (group commit absorbs more work
// per flush, acks arrive later) but outcomes must not change: accepted
// sets, final states, and apology ledgers stay equal to an undelayed
// run of the same operations, which the slow-disk differential test
// pins. No effect without WithDurability.
func WithFsyncDelay(d time.Duration) Option { return func(c *config) { c.fsyncDelay = d } }

// WithIngestBatch routes asynchronous submits through a per-replica
// single-writer ingest pipeline that drains them in batches of at most n:
// submitters enqueue into a bounded ring (backpressure, never unbounded
// buffering) and a dedicated writer takes the replica lock once per
// batch, admission-checks and folds the whole batch, appends every
// accepted entry to the journal and the durable store in one vectorized
// call, and resolves all results with one group-commit fan-out — the
// §3.2 bus economics applied to the lock and the fold, not just the
// fsync. Results are observationally identical to the per-op path: same
// acceptances, same declines, same apologies, same final states (the
// differential suite pins this at n = 1, 64, and 1024).
//
// n < 1 (the default) keeps the direct per-op path. On the deterministic
// simulator the enqueueing goroutine drains the ring inline, so runs
// stay bit-for-bit reproducible; real pipelining needs the live
// transport. Synchronously coordinated submits (policy.Sync) ride the
// same queue so they can never overtake an earlier guess on their key:
// the writer initiates each one's coordination exactly where it sat in
// arrival order (the round trips themselves stay asynchronous). The
// ring is the pipeline's backpressure: when it is full, submitters —
// including SubmitAsync callers — block briefly until the writer drains
// a batch. After Close, pipeline submits resolve as declined.
func WithIngestBatch(n int) Option { return func(c *config) { c.ingestBatch = n } }

// WithLocalReplicas declares that this process hosts only the given
// replica indices (of every shard); the rest of the cluster lives in
// other processes, reached through a transport that routes across
// machine boundaries (netx.Transport). Remote replicas exist as
// addressing stubs: they hold no state, open no store, and register no
// handlers — gossip pushes to them travel the transport, and their
// liveness is whatever Transport.IsUp reports. Submits must target a
// local index; a submit routed at a remote replica declines. Without
// this option every replica is local, which is the in-process behaviour
// all previous tests pin.
func WithLocalReplicas(idxs ...int) Option {
	return func(c *config) {
		c.local = make(map[int]bool, len(idxs))
		for _, i := range idxs {
			c.local[i] = true
		}
	}
}

// WithSnapshotEvery sets how many journaled operations separate durable
// snapshots (default 4096). A snapshot is the ledger prefix serialized
// in canonical fold order at a fold-checkpoint boundary — the "log as
// checkpoint" of §3.2 — and it bounds both recovery replay time and
// journal disk growth: segments below the newest snapshot AND below
// every gossip peer's acknowledgement are deleted. 0 disables snapshots
// (the journal is then never compacted); values below 0 fall back to
// the default.
func WithSnapshotEvery(n int) Option { return func(c *config) { c.snapEvery = n } }

// WithSnapshotChain sets how many snapshot cuts share one full-ledger
// snapshot (default 8): each cut in between is an incremental delta
// holding only the entries since the previous cut, chained back to the
// full root, so a cut's cost tracks the write rate instead of the
// ledger size — the writer-stall fix for durable tail latency. Recovery
// folds the newest intact chain; a torn newest delta falls back to the
// chain prefix losslessly (journal compaction gates on the chain base,
// not the tip). k = 1 makes every cut full (the pre-chain behaviour);
// values below 1 fall back to the default. No effect without
// WithDurability.
func WithSnapshotChain(k int) Option { return func(c *config) { c.snapChain = k } }

// WithStoreFS routes every replica's durable-store file I/O through
// fsys — the syscall-level fault-injection seam (internal/faultfs)
// chaos scenarios and tests use to simulate full, flaky, or lying
// disks. The default nil uses the real filesystem. No effect without
// WithDurability.
func WithStoreFS(fsys faultfs.FS) Option { return func(c *config) { c.storeFS = fsys } }

// WithTracer attaches a sampled op-lifecycle tracer (internal/trace):
// every engine stage — submit, admission, journal-fsync cover, gossip
// ack, absorb, fold, apology — reports sampled ops into t's bounded
// event ring, from which t derives the guess-to-durable, guess-to-truth,
// and guess-to-apology lag histograms. Without this option every hook
// is a single nil check: no sampling hash, no allocation, no lock.
func WithTracer(t *trace.Tracer) Option { return func(c *config) { c.tracer = t } }

// ReasonDegraded is the Reason a degraded read-only shard attaches to
// every declined write: the replica's disk stopped accepting writes
// (full, or transiently failing), reads keep serving the published
// fold snapshot, and the shard rejoins once the disk heals. A decline
// carrying it has Retryable set — back off and resubmit rather than
// treating the operation as refused.
const ReasonDegraded = "shard degraded: store unwritable, read-only until the disk heals"

// Result reports the outcome of one submit.
type Result struct {
	Accepted bool
	Decision policy.Decision
	Latency  time.Duration
	Op       Op
	Reason   string // why a submit was declined
	// Retryable marks a transient decline — the shard is degraded
	// read-only (ReasonDegraded) and expected to heal — as opposed to a
	// business refusal or a crash, which retrying cannot help.
	Retryable bool
}

// Metrics aggregates cluster-wide observations.
type Metrics struct {
	AsyncLat stats.LatHist // latency of async (guess) submits
	SyncLat  stats.LatHist // latency of coordinated submits

	Accepted       stats.Counter
	Declined       stats.Counter // rejected by a local Admit guess
	SyncAccepted   stats.Counter
	SyncDeclined   stats.Counter // coordination failed or a replica refused
	GossipRounds   stats.Counter
	OpsTransferred stats.Counter // entries moved by gossip

	// Fold-engine observability: FoldSteps counts App.Step invocations
	// across all replicas — the true cost of state derivation. With
	// checkpointed folds it grows O(new entries) per submit; under
	// WithFullRefold it grows O(ledger). FoldRewinds counts checkpoint
	// rewinds forced by gossip merges sorting behind a watermark, and
	// FoldCheckpoints the periodic snapshots taken.
	FoldSteps       stats.Counter
	FoldRewinds     stats.Counter
	FoldCheckpoints stats.Counter

	// Degraded counts replicas entering degraded read-only mode — a
	// recoverable disk failure (ENOSPC, EIO) that paused writes without
	// killing the replica. Rejoins do not decrement it; it is a
	// how-often-has-this-happened counter, not a gauge (the live gauge
	// is ShardDegraded).
	Degraded stats.Counter
}

// Cluster is a set of shards — independent replica groups partitioning
// the key space — plus the shared apology queue. With the default single
// shard it behaves exactly like the pre-shard engine: one replica group
// holding every key.
type Cluster[S any] struct {
	tr         Transport
	cfg        config
	app        App[S]
	rules      []Rule[S]
	hasAdmit   bool      // any rule has an Admit check
	hasViolate bool      // any rule has a Violated sweep
	snapFn     func(S) S // state clone for checkpointed folds; nil = full refold
	smap       *shard.Map
	groups     []*shardGroup[S]
	stopGossip []func()
	ingestWG   sync.WaitGroup // live ingest-loop goroutines, joined by Close
	done       chan struct{}  // closed by Close; stops degraded re-probe loops
	closeOnce  sync.Once

	Apologies *apology.Queue
	M         Metrics
}

// shardGroup is one shard: an independent replica group owning a
// consistent-hash slice of the key space, with its own operation sets,
// fold checkpoints, journals, gossip ring, and metrics. Groups share
// nothing but the transport, the apology queue, and the cluster-wide
// metrics aggregate.
type shardGroup[S any] struct {
	c    *Cluster[S]
	idx  int
	reps []*Replica[S]
	M    Metrics // shard-local view of the same counters Cluster.M aggregates
}

// gossipRound makes every live replica of this shard push its unacked
// journal suffix to both ring neighbours. Pushing both directions keeps
// the acknowledgement flow symmetric — every replica hears back from
// exactly the peers its journal truncation waits on — and an idle
// replica sends nothing at all (see pushTo). Gossip payloads are
// shard-local by construction: a group's journals only ever hold entries
// for its own keys.
func (g *shardGroup[S]) gossipRound() {
	g.M.GossipRounds.Inc()
	g.c.M.GossipRounds.Inc()
	for _, rep := range g.reps {
		if rep.remote || rep.node.Crashed() || rep.degraded.Load() {
			// Remote replicas push from their own process; this one only
			// pushes *to* them (below, as somebody's ring neighbour).
			// Degraded replicas hold phantom entries their disk never
			// accepted — pushing those would spread guesses nobody can back.
			continue
		}
		for _, peer := range rep.gossipPeers {
			if peer.node.Crashed() || peer.degraded.Load() {
				// A degraded peer declines every push anyway (it would lose
				// the entries on rejoin); skipping saves the wasted round.
				continue
			}
			if g.c.tr.Reachable(rep.id, peer.id) {
				rep.pushTo(peer.id)
			}
		}
	}
}

// converged reports whether every locally hosted replica of this shard
// holds the same operation set. Remote replicas' sets live in another
// process and cannot be compared by reference; cross-process convergence
// is observed through the daemon API (op counts and derived state),
// never through this in-memory check.
func (g *shardGroup[S]) converged() bool {
	var first *Replica[S]
	for _, r := range g.reps {
		if r.remote {
			continue
		}
		if first == nil {
			first = r
			continue
		}
		if !first.sameOps(r) {
			return false
		}
	}
	return true
}

// nodeID names the transport node for replica rep of shard s. The
// single-shard cluster keeps the historical r0, r1, ... names so
// existing tests, partitions, and fault injection address nodes
// unchanged; sharded clusters qualify them as s<shard>/r<rep>.
func nodeID(shards, s, rep int) string {
	if shards == 1 {
		return fmt.Sprintf("r%d", rep)
	}
	return fmt.Sprintf("s%d/r%d", s, rep)
}

// NodeID names the transport node for replica rep of shard s in a
// cluster of the given shard count — the naming scheme New uses, made
// public so an out-of-process transport can be configured with the same
// addresses the cluster will dial (netx peers, daemon configs).
func NodeID(shards, s, rep int) string { return nodeID(shards, s, rep) }

// snapshotFn resolves how (and whether) the engine can clone a state, in
// priority order: the App's own Snapshot method, plain assignment when S
// is a pure value type, otherwise nil — which sends every derivation down
// the full-refold path.
func snapshotFn[S any](app App[S]) func(S) S {
	if sn, ok := app.(Snapshotter[S]); ok {
		return sn.Snapshot
	}
	if plainCopyable(reflect.TypeFor[S]()) {
		return func(s S) S { return s }
	}
	return nil
}

// plainCopyable reports whether assignment of a value of type t yields a
// fully independent copy: no pointers, maps, slices, channels, funcs, or
// interfaces are reachable from it (strings are immutable, so they
// qualify).
func plainCopyable(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128,
		reflect.String:
		return true
	case reflect.Array:
		return plainCopyable(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !plainCopyable(t.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}

// New builds a cluster of replicas named r0, r1, ... sharing one apology
// queue. rules may be nil. By default the cluster runs three replicas on
// a fresh live (goroutine) transport with the AlwaysAsync risk policy;
// options select the simulator, tune timeouts and latency, and start
// background gossip.
func New[S any](app App[S], rules []Rule[S], opts ...Option) *Cluster[S] {
	cfg := config{
		replicas:    3,
		callTimeout: 100 * time.Millisecond,
		defPolicy:   policy.AlwaysAsync(),
		foldEvery:   1024,
		snapEvery:   4096,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.replicas < 1 {
		cfg.replicas = 3
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.foldEvery < 0 {
		cfg.foldEvery = 1024
	}
	if cfg.snapEvery < 0 {
		cfg.snapEvery = 4096
	}
	if cfg.snapChain < 1 {
		cfg.snapChain = 8
	}
	if cfg.ingestBatch < 0 {
		cfg.ingestBatch = 0
	}
	tr := cfg.transport
	if tr == nil {
		if cfg.s != nil {
			tr = NewSimTransport(cfg.s)
		} else {
			tr = NewLiveTransport()
		}
	}
	if cfg.latency != nil {
		lt, ok := tr.(interface{ SetLatency(simnet.Latency) })
		if !ok {
			// Silently dropping an explicit latency model would skew every
			// timing result; a config error should be loud.
			panic(fmt.Sprintf("quicksand: WithLatency is not supported by transport %T", tr))
		}
		lt.SetLatency(cfg.latency)
	}
	if cfg.tracer != nil {
		// Trace events and annotations share the transport's time axis.
		cfg.tracer.SetClock(func() int64 { return int64(tr.Now()) })
	}
	c := &Cluster[S]{
		tr:        tr,
		cfg:       cfg,
		app:       app,
		rules:     rules,
		Apologies: apology.NewQueue(),
		done:      make(chan struct{}),
	}
	for _, rule := range rules {
		c.hasAdmit = c.hasAdmit || rule.Admit != nil
		c.hasViolate = c.hasViolate || rule.Violated != nil
	}
	if !cfg.fullRefold {
		c.snapFn = snapshotFn(app)
	}
	c.smap = shard.NewMap(cfg.shards)
	for s := 0; s < cfg.shards; s++ {
		g := &shardGroup[S]{c: c, idx: s}
		for i := 0; i < cfg.replicas; i++ {
			id := nodeID(cfg.shards, s, i)
			if cfg.local == nil || cfg.local[i] {
				g.reps = append(g.reps, newReplica(c, g, id))
			} else {
				g.reps = append(g.reps, newRemoteReplica(c, g, id))
			}
		}
		// The gossip peer set of a ring replica: its successor and
		// predecessor, the only nodes ever sent this replica's journal.
		// gossipRound pushes to this set and journal truncation waits for
		// its acknowledgements (see Replica.gossipPeers).
		n := len(g.reps)
		for i, r := range g.reps {
			if n > 1 {
				succ := g.reps[(i+1)%n]
				pred := g.reps[(i-1+n)%n]
				r.gossipPeers = append(r.gossipPeers, succ)
				if pred != succ {
					r.gossipPeers = append(r.gossipPeers, pred)
				}
			}
		}
		c.groups = append(c.groups, g)
	}
	if cfg.ingestBatch > 0 {
		// The batched single-writer pipeline: one bounded ring and one
		// writer per replica. Real pipelining (a drain goroutine) needs the
		// live transport; every other world drains inline on the submitting
		// goroutine, which keeps the simulator deterministic.
		live := wallClocked(tr)
		capacity := 4 * cfg.ingestBatch
		if capacity < 16 {
			capacity = 16
		}
		for _, g := range c.groups {
			for _, r := range g.reps {
				if r.remote {
					// Remote replicas ingest in their own process; a local
					// writer goroutine would drain a queue nothing fills.
					continue
				}
				// Inline replicas drain on the enqueueing goroutine, so
				// their queue grows instead of exerting backpressure (see
				// ingestQueue); only the live pipeline bounds producers.
				r.ingest = newIngestQueue(capacity, !live)
				r.ingestInline = !live
				if live {
					c.ingestWG.Add(1)
					go r.ingestLoop()
				}
			}
		}
	}
	if cfg.gossipEvery > 0 {
		// One anti-entropy schedule per shard: on the live transport each
		// shard gossips on its own goroutine, so a slow shard never stalls
		// the others' convergence.
		for _, g := range c.groups {
			c.stopGossip = append(c.stopGossip, tr.Every(cfg.gossipEvery, g.gossipRound))
		}
	}
	return c
}

// storeOptions maps the cluster configuration onto internal/store
// knobs. On the deterministic simulator every disk operation runs
// inline on the calling goroutine — group-commit economics are a
// wall-clock phenomenon the sim cannot observe, and background flusher
// goroutines would break bit-for-bit reproducibility.
func (c *Cluster[S]) storeOptions() store.Options {
	opt := store.Options{}
	_, opt.Inline = c.tr.(*SimTransport)
	switch {
	case c.cfg.fsyncEvery > 0:
		opt.Mode = store.ModeTimer
		opt.Interval = c.cfg.fsyncEvery
	case c.cfg.fsyncEvery < 0:
		opt.Mode = store.ModeEveryOp
	case !opt.Inline:
		// The live default: adaptive group commit — flush at once when the
		// staged backlog is shallow, coalesce under load, with the hold
		// ceiling steered by an EWMA of real fsync cost.
		opt.Mode = store.ModeAdaptive
	}
	opt.FsyncDelay = c.cfg.fsyncDelay
	// Preallocated (and recycled) segments trade exact file sizes for
	// flush latency; the simulator keeps exact sizes — its tests poke at
	// them, and inline runs are not latency-sensitive anyway.
	opt.Preallocate = !opt.Inline
	opt.SnapshotChain = c.cfg.snapChain
	opt.FS = c.cfg.storeFS
	return opt
}

// storeDir names the durable directory of the replica with the given
// node id (shard-qualified ids flatten their path separator).
func (c *Cluster[S]) storeDir(id string) string {
	return filepath.Join(c.cfg.durableDir, strings.ReplaceAll(id, "/", "_"))
}

// Kill hard-crashes replica i of shard 0 (the whole cluster when
// unsharded): the process dies, taking every bit of in-memory state —
// operation set, fold checkpoints, Lamport clock, gossip journal,
// ledger — and any disk write that was not yet group-committed. This is
// a stronger failure than Transport.SetUp(id, false), which merely
// silences a node while its RAM survives. A killed durable replica
// comes back with Recover; a killed non-durable replica is gone for
// good (its unique entries survive only if gossip already spread them).
func (c *Cluster[S]) Kill(i int) { c.groups[0].reps[i].Kill() }

// ShardKill hard-crashes replica i of the given shard. Shards share no
// state, so a kill touches one group only.
func (c *Cluster[S]) ShardKill(shard, i int) { c.groups[shard].reps[i].Kill() }

// Recover restarts killed replica i of shard 0 from its durable store:
// snapshot load, journal replay, torn-tail truncation, then the node
// rejoins gossip to catch up on what it missed while dead. See
// Replica.Recover.
func (c *Cluster[S]) Recover(ctx context.Context, i int) error {
	return c.groups[0].reps[i].Recover(ctx)
}

// ShardRecover restarts killed replica i of the given shard from disk,
// without touching any other shard's group.
func (c *Cluster[S]) ShardRecover(ctx context.Context, shard, i int) error {
	return c.groups[shard].reps[i].Recover(ctx)
}

// Rejoin re-probes the degraded replica i of shard 0 and, when its disk
// has healed, reseeds it from the store and resumes writes. See
// Replica.Rejoin.
func (c *Cluster[S]) Rejoin(ctx context.Context, i int) error {
	return c.groups[0].reps[i].Rejoin(ctx)
}

// ShardRejoin re-probes degraded replica i of the given shard.
func (c *Cluster[S]) ShardRejoin(ctx context.Context, shard, i int) error {
	return c.groups[shard].reps[i].Rejoin(ctx)
}

// ShardDegraded reports whether any locally hosted replica of the given
// shard is in degraded read-only mode, with per-replica detail
// ("id: reason", "; "-joined) for health endpoints. A degraded shard
// still serves reads from its published fold snapshots; writes decline
// with the retryable ReasonDegraded until the disk heals.
func (c *Cluster[S]) ShardDegraded(shard int) (detail string, degraded bool) {
	var b strings.Builder
	for _, r := range c.groups[shard].reps {
		if r.remote || !r.Degraded() {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		b.WriteString(r.id)
		b.WriteString(": ")
		b.WriteString(r.DegradedReason())
		degraded = true
	}
	return b.String(), degraded
}

// IngestBacklog sums the ingest-ring occupancy and capacity of replica
// i across every shard. The ratio is the cluster slice's saturation:
// near 1.0, submits are riding backpressure and an ingress should shed
// load instead of queueing callers invisibly. (0, 0) when no local
// replica runs the pipelined ingest path.
func (c *Cluster[S]) IngestBacklog(i int) (depth, capacity int) {
	for _, g := range c.groups {
		d, cp := g.reps[i].IngestBacklog()
		depth += d
		capacity += cp
	}
	return depth, capacity
}

// DegradedShards lists the shards with at least one locally hosted
// replica in degraded read-only mode (empty on a healthy cluster).
func (c *Cluster[S]) DegradedShards() []int {
	var out []int
	for s := range c.groups {
		if _, deg := c.ShardDegraded(s); deg {
			out = append(out, s)
		}
	}
	return out
}

// DurabilityStats sums the disk-work counters of every replica's live
// store: fsyncs completed, entries journaled, snapshots (full and
// delta) written or failed, segments recycled, torn bytes truncated at
// recovery. MaxStallNs is the max, not the sum — the worst single
// writer stall anywhere in the cluster. All zeros without
// WithDurability.
func (c *Cluster[S]) DurabilityStats() store.Stats {
	var out store.Stats
	for _, g := range c.groups {
		for _, r := range g.reps {
			if st, ok := r.StoreStats(); ok {
				out.Fsyncs += st.Fsyncs
				out.Appended += st.Appended
				out.Snapshots += st.Snapshots
				out.SnapshotFailures += st.SnapshotFailures
				out.DeltaSnapshots += st.DeltaSnapshots
				out.Recycled += st.Recycled
				out.TornBytes += st.TornBytes
				if st.MaxStallNs > out.MaxStallNs {
					out.MaxStallNs = st.MaxStallNs
				}
			}
		}
	}
	return out
}

// DurabilityLatencies folds every live store's sampled fsync and
// snapshot-cut latency distributions into two cluster-level histograms.
// Both are empty without WithDurability.
func (c *Cluster[S]) DurabilityLatencies() (fsync, snapCut *stats.Histogram) {
	fsync, snapCut = &stats.Histogram{}, &stats.Histogram{}
	for _, g := range c.groups {
		for _, r := range g.reps {
			r.SpillStoreLatencies(fsync, snapCut)
		}
	}
	return fsync, snapCut
}

// ShardDurabilityHists merges the full log-bucketed fsync and
// snapshot-cut latency histograms of one shard's locally hosted
// replicas — the per-shard durability series behind /metrics. Both are
// empty without WithDurability.
func (c *Cluster[S]) ShardDurabilityHists(shard int) (fsync, snapCut *stats.LatHist) {
	fsync, snapCut = &stats.LatHist{}, &stats.LatHist{}
	for _, r := range c.groups[shard].reps {
		r.MergeStoreHists(fsync, snapCut)
	}
	return fsync, snapCut
}

// Tracer returns the op-lifecycle tracer attached with WithTracer, or
// nil when tracing is off.
func (c *Cluster[S]) Tracer() *trace.Tracer { return c.cfg.tracer }

// Transport returns the transport the cluster runs on.
func (c *Cluster[S]) Transport() Transport { return c.tr }

// Net exposes the simulated network for fault injection and partitions
// when the cluster runs on a SimTransport, and returns nil otherwise.
func (c *Cluster[S]) Net() *simnet.Network {
	if st, ok := c.tr.(*SimTransport); ok {
		return st.Net()
	}
	return nil
}

// Now returns the transport's current time.
func (c *Cluster[S]) Now() sim.Time { return c.tr.Now() }

// Replicas reports the replica count per shard.
func (c *Cluster[S]) Replicas() int { return c.cfg.replicas }

// Shards reports the shard count (1 for an unsharded cluster).
func (c *Cluster[S]) Shards() int { return c.cfg.shards }

// ShardOf reports which shard owns key — a pure function of the shard
// count and the key, identical across clusters and across runs.
func (c *Cluster[S]) ShardOf(key string) int { return c.smap.Of(key) }

// Replica returns replica i of shard 0 — the whole cluster when
// unsharded. Sharded callers address a specific group with ShardReplica.
func (c *Cluster[S]) Replica(i int) *Replica[S] { return c.groups[0].reps[i] }

// Local reports whether replica index i is hosted by this process —
// always true unless the cluster was built with WithLocalReplicas.
func (c *Cluster[S]) Local(i int) bool {
	return i >= 0 && i < c.cfg.replicas && (c.cfg.local == nil || c.cfg.local[i])
}

// ShardReplica returns replica i of the given shard.
func (c *Cluster[S]) ShardReplica(shard, i int) *Replica[S] { return c.groups[shard].reps[i] }

// ShardMetrics returns the given shard's view of the engine metrics:
// the same counters Cluster.M aggregates, restricted to one replica
// group. Per-shard fold and gossip figures expose load imbalance that
// the cluster-wide aggregate hides.
func (c *Cluster[S]) ShardMetrics(shard int) *Metrics { return &c.groups[shard].M }

// CallTimeout reports the configured replica-to-replica call timeout.
func (c *Cluster[S]) CallTimeout() time.Duration { return c.cfg.callTimeout }

// DefaultPolicy reports the risk policy used when a submit carries no
// WithPolicy option.
func (c *Cluster[S]) DefaultPolicy() policy.Policy { return c.cfg.defPolicy }

// GossipInterval reports the WithGossipEvery interval (0 when background
// gossip was not requested).
func (c *Cluster[S]) GossipInterval() time.Duration { return c.cfg.gossipEvery }

// submitConfig collects per-submit options.
type submitConfig struct {
	pol  policy.Policy
	note string
}

// SubmitOption configures one Submit, SubmitBatch, or SubmitAsync call.
type SubmitOption func(*submitConfig)

// WithPolicy routes this submit with p instead of the cluster's default
// risk policy — the per-operation "stomach for risk" dial of §5.5.
func WithPolicy(p policy.Policy) SubmitOption { return func(sc *submitConfig) { sc.pol = p } }

// WithNote attaches a free-form annotation to the operation (ignored when
// the op already carries one).
func WithNote(note string) SubmitOption { return func(sc *submitConfig) { sc.note = note } }

func (c *Cluster[S]) submitConfig(opts []SubmitOption) submitConfig {
	sc := submitConfig{pol: c.cfg.defPolicy}
	for _, o := range opts {
		o(&sc)
	}
	return sc
}

// Submit offers one operation at the given replica and blocks until the
// outcome is known, driving the transport as needed. Business declines
// (a rule refused, coordination failed, the replica is down) come back as
// a Result with Accepted=false and a Reason; the error reports
// infrastructure failures only — context cancellation or a stalled
// transport.
//
// On a SimTransport, Submit steps the event loop until the result
// resolves; it must not be called from inside a simulator callback (use
// SubmitAsync there).
func (c *Cluster[S]) Submit(ctx context.Context, replica int, op Op, opts ...SubmitOption) (Result, error) {
	if replica < 0 || replica >= c.cfg.replicas {
		return Result{Op: op}, fmt.Errorf("quicksand: no replica %d in a cluster of %d", replica, c.cfg.replicas)
	}
	if err := ctx.Err(); err != nil {
		return Result{Op: op}, err
	}
	ready := make(chan struct{})
	var res Result
	c.dispatch(c.route(replica, op), op, c.submitConfig(opts), func(r Result) {
		res = r
		close(ready)
	})
	if err := c.tr.Await(ctx, ready); err != nil {
		return Result{Op: op}, err
	}
	return res, nil
}

// route resolves the replica a submit lands on: replica index i within
// the group of the shard that owns op's key.
func (c *Cluster[S]) route(i int, op Op) *Replica[S] {
	return c.groups[c.smap.Of(op.Key)].reps[i]
}

// SubmitBatch offers a batch of operations at the given replica and
// blocks until every outcome is known. Results align with ops by index.
// Batching amortizes the transport-driving cost of Submit across many
// operations — the throughput path for bulk ingest.
//
// On a sharded cluster the batch is scattered: ops are grouped by the
// shard that owns their key and each group is dispatched as one unit —
// in parallel on transports that support it (the live transport runs one
// goroutine per shard). Ops that share a key share a shard and keep
// their submission order within its group, so per-key ordering survives
// the fan-out.
func (c *Cluster[S]) SubmitBatch(ctx context.Context, replica int, ops []Op, opts ...SubmitOption) ([]Result, error) {
	if replica < 0 || replica >= c.cfg.replicas {
		return nil, fmt.Errorf("quicksand: no replica %d in a cluster of %d", replica, c.cfg.replicas)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(ops) == 0 {
		return nil, nil
	}
	sc := c.submitConfig(opts)
	results := make([]Result, len(ops))
	ready := make(chan struct{})
	sink := &ingestSink{results: results, done: func() { close(ready) }}
	sink.pending.Store(int64(len(ops)))
	if c.cfg.shards == 1 {
		c.dispatchBatch(c.groups[0].reps[replica], ops, nil, sc, sink)
	} else {
		byShard := make([][]int, c.cfg.shards)
		for i, op := range ops {
			s := c.smap.Of(op.Key)
			byShard[s] = append(byShard[s], i)
		}
		var thunks []func()
		for s, idxs := range byShard {
			if len(idxs) == 0 {
				continue
			}
			rep := c.groups[s].reps[replica]
			idxs := idxs
			thunks = append(thunks, func() { c.dispatchBatch(rep, ops, idxs, sc, sink) })
		}
		c.scatter(thunks)
	}
	if err := c.tr.Await(ctx, ready); err != nil {
		return nil, err
	}
	return results, nil
}

// dispatchBatch routes the ops selected by idxs (nil = all of them, in
// order) at rep, delivering every Result into the sink. Without the
// ingest pipeline each op takes the ordinary dispatch path; with it, the
// asynchronous ops are stamped with their ingress identity here and
// enqueued as one contiguous run — no per-operation closure, no
// per-operation lock — while policy-coordinated ops fall back to
// dispatch individually.
func (c *Cluster[S]) dispatchBatch(rep *Replica[S], ops []Op, idxs []int, sc submitConfig, sink *ingestSink) {
	nth := func(k int) int { return k }
	n := len(ops)
	if idxs != nil {
		nth = func(k int) int { return idxs[k] }
		n = len(idxs)
	}
	if rep.ingest == nil {
		for k := 0; k < n; k++ {
			i := nth(k)
			c.dispatch(rep, ops[i], sc, func(res Result) { sink.deliver(int32(i), res) })
		}
		return
	}
	items := make([]ingestItem, 0, n)
	now := c.tr.Now()
	for k := 0; k < n; k++ {
		i := nth(k)
		op := c.stampIngress(rep, ops[i], sc)
		it := ingestItem{op: op, sink: sink, idx: int32(i), start: now,
			sync: sc.pol.Decide(op) == policy.Sync}
		if rep.node.Crashed() {
			it.finish(Result{Op: op, Reason: "replica down"})
			continue
		}
		items = append(items, it)
	}
	// A short enqueue means the queue closed mid-call: the consumer
	// drains and resolves the taken prefix, so only the untaken suffix is
	// ours to decline — resolving more would double-deliver into the sink.
	for j := rep.enqueueIngestAll(items); j < len(items); j++ {
		items[j].finish(Result{Op: items[j].op, Reason: "replica shut down"})
	}
}

// scatter runs the per-shard dispatch thunks — in parallel when the
// transport supports Scatterer (real goroutines), sequentially otherwise
// (the deterministic simulator).
func (c *Cluster[S]) scatter(thunks []func()) {
	if len(thunks) > 1 {
		if sc, ok := c.tr.(Scatterer); ok {
			sc.Scatter(thunks)
			return
		}
	}
	for _, fn := range thunks {
		fn()
	}
}

// SubmitAsync offers one operation without blocking; done (which may be
// nil) fires exactly once when the outcome is known. This is the dispatch
// path for callers that live inside a simulated event loop — experiments
// and workload generators — where the blocking Submit would re-enter the
// scheduler.
func (c *Cluster[S]) SubmitAsync(replica int, op Op, done func(Result), opts ...SubmitOption) {
	if done == nil {
		done = func(Result) {}
	}
	if replica < 0 || replica >= c.cfg.replicas {
		done(Result{Op: op, Reason: fmt.Sprintf("no replica %d in a cluster of %d", replica, c.cfg.replicas)})
		return
	}
	c.dispatch(c.route(replica, op), op, c.submitConfig(opts), done)
}

// dispatch routes one operation at rep: fill in ingress identity, check
// idempotency, then take the guess path or the coordinated path as the
// policy decides. done fires exactly once — on a durable replica, only
// after the operation's journal record is fsynced (an accepted result
// is a durable result).
func (c *Cluster[S]) dispatch(rep *Replica[S], op Op, sc submitConfig, done func(Result)) {
	if rep.remote {
		// The submit was routed at a replica another process hosts. The
		// engine never proxies ingest across the transport — a client talks
		// to the daemon that owns its target replica (the SDK's job) — so
		// this is a routing error, reported as a decline.
		done(Result{Op: op, Reason: "replica " + rep.id + " is not hosted by this process"})
		return
	}
	op = c.stampIngress(rep, op, sc)
	if rep.node.Crashed() {
		done(Result{Op: op, Reason: "replica down"})
		return
	}
	decision := sc.pol.Decide(op)
	if rep.ingest != nil {
		// The pipeline path: enqueue and let the single writer process in
		// strict arrival order — async ops absorbed in batches, sync ops
		// initiated exactly where they sat in the queue, so a coordinated
		// op never overtakes an earlier guess on the same key. Metrics and
		// latency are accounted downstream.
		if !rep.enqueueIngest(ingestItem{op: op, emit: done, start: c.tr.Now(), sync: decision == policy.Sync}) {
			done(Result{Op: op, Reason: "replica shut down"})
		}
		return
	}
	c.dispatchDirect(rep, op, decision, done)
}

// stampIngress fills an operation's ingress identity — the one place
// every submit entry point (dispatch and the pipeline's dispatchBatch)
// assigns uniquifiers, timestamps, and notes, so the two can never
// drift.
func (c *Cluster[S]) stampIngress(rep *Replica[S], op Op, sc submitConfig) Op {
	if op.ID == "" {
		op.ID = rep.gen.Next()
	}
	if op.At == 0 {
		op.At = c.tr.Now()
	}
	if op.Note == "" {
		op.Note = sc.note
	}
	if t := c.cfg.tracer; t != nil {
		t.Submitted(string(op.ID), op.Key, rep.id, int64(op.At))
	}
	return op
}

// dispatchDirect is the per-op path: idempotency check under the
// replica lock, then the guess or coordination route the already-made
// policy decision selects.
func (c *Cluster[S]) dispatchDirect(rep *Replica[S], op Op, decision policy.Decision, done func(Result)) {
	rep.mu.Lock()
	if op.Lam == 0 {
		// Lamport ingress stamp: the new op sorts after everything this
		// replica has seen, so causes fold before their effects.
		op.Lam = rep.lamport + 1
	}
	seen := rep.ops.Contains(op.ID)
	degraded := rep.degraded.Load()
	var dupEnd int
	st := rep.store
	if seen && st != nil {
		dupEnd = st.End()
	}
	rep.mu.Unlock()
	g := rep.g
	if seen {
		if degraded {
			// The original may be a phantom the degraded disk never
			// accepted; re-accepting the retry would promise durability a
			// read-only shard cannot hold.
			c.M.Declined.Inc()
			g.M.Declined.Inc()
			done(Result{Op: op, Reason: ReasonDegraded, Retryable: true})
			return
		}
		// A retry of work this replica already did: idempotent accept —
		// but "accepted" still means "durable", and the original's
		// journal record may be aboard a flush that has not landed yet,
		// so the retry waits for the commit covering it too.
		ackDup := func(ok bool) {
			if !ok {
				res := Result{Op: op, Reason: "replica crashed before the write was durable"}
				if rep.storeFailed() {
					res.Reason, res.Retryable = ReasonDegraded, true
				}
				c.M.Declined.Inc()
				g.M.Declined.Inc()
				done(res)
				return
			}
			c.M.Accepted.Inc()
			g.M.Accepted.Inc()
			done(Result{Accepted: true, Op: op, Decision: policy.Async})
		}
		if st == nil {
			ackDup(true)
			return
		}
		st.Commit(dupEnd, ackDup)
		return
	}
	start := c.tr.Now()
	switch decision {
	case policy.Async:
		rep.submitLocal(op, func(res Result) {
			res.Latency = c.tr.Now().Sub(start)
			if res.Accepted {
				c.M.Accepted.Inc()
				g.M.Accepted.Inc()
				c.M.AsyncLat.AddDur(res.Latency)
				g.M.AsyncLat.AddDur(res.Latency)
			} else {
				c.M.Declined.Inc()
				g.M.Declined.Inc()
			}
			done(res)
		})
	case policy.Sync:
		rep.submitSync(op, func(res Result) {
			res.Latency = c.tr.Now().Sub(start)
			if res.Accepted {
				c.M.Accepted.Inc()
				g.M.Accepted.Inc()
				c.M.SyncAccepted.Inc()
				g.M.SyncAccepted.Inc()
				c.M.SyncLat.AddDur(res.Latency)
				g.M.SyncLat.AddDur(res.Latency)
			} else {
				c.M.SyncDeclined.Inc()
				g.M.SyncDeclined.Inc()
			}
			done(res)
		})
	}
}

// GossipRound runs one anti-entropy round on every shard: each live
// replica push-pulls with its ring neighbour within its own group.
// Repeated rounds converge the cluster; Converged reports when.
// Metrics.GossipRounds counts per-shard rounds.
func (c *Cluster[S]) GossipRound() {
	for _, g := range c.groups {
		g.gossipRound()
	}
}

// ShardGossipRound runs one anti-entropy round on a single shard.
func (c *Cluster[S]) ShardGossipRound(shard int) { c.groups[shard].gossipRound() }

// StartGossip starts a per-shard anti-entropy schedule at the given
// interval; the returned stop function cancels every shard's schedule.
func (c *Cluster[S]) StartGossip(interval time.Duration) (stop func()) {
	stops := make([]func(), len(c.groups))
	for i, g := range c.groups {
		stops[i] = c.tr.Every(interval, g.gossipRound)
	}
	return func() {
		for _, s := range stops {
			s()
		}
	}
}

// StopGossip cancels the background gossip started by WithGossipEvery.
func (c *Cluster[S]) StopGossip() {
	for _, stop := range c.stopGossip {
		stop()
	}
	c.stopGossip = nil
}

// Close releases the cluster's background resources: gossip started by
// WithGossipEvery, and every replica's durable store — flushed,
// fsynced, and closed gracefully, so a later New with the same
// WithDurability directory cold-starts from exactly this state.
// Replicas and their in-memory state remain readable.
//
// The returned error joins every replica's store-close failure: a final
// flush that could not land means the directory does NOT hold everything
// that was acknowledged, and a graceful shutdown (the daemon's drain
// path) must be able to report that instead of silently losing it.
func (c *Cluster[S]) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	c.StopGossip()
	for _, g := range c.groups {
		for _, r := range g.reps {
			if r.ingest != nil {
				// Close the ring: the writer drains what is queued, resolves
				// it, and exits; later pipeline submits decline.
				r.ingest.close()
			}
		}
	}
	c.ingestWG.Wait()
	var errs []error
	for _, g := range c.groups {
		for _, r := range g.reps {
			if err := r.closeStore(); err != nil {
				errs = append(errs, fmt.Errorf("replica %s: %w", r.id, err))
			}
		}
	}
	return errors.Join(errs...)
}

// Converged reports whether every shard has converged: within each
// group, every replica holds the same operation set. It compares sets in
// place (no copies), so polling it in a convergence loop stays cheap
// even with large ledgers.
func (c *Cluster[S]) Converged() bool {
	for _, g := range c.groups {
		if !g.converged() {
			return false
		}
	}
	return true
}

// ShardConverged reports whether one shard's replica group has
// converged, independently of the others.
func (c *Cluster[S]) ShardConverged(shard int) bool { return c.groups[shard].converged() }

// States returns every replica's current derived state, shard-major:
// shard 0's replicas first, then shard 1's, and so on — len is
// Shards()×Replicas(). On the default single shard this is exactly the
// historical one-state-per-replica slice. A sharded state covers only
// the keys its shard owns; merging the per-shard states key-by-key
// reconstructs what an unsharded run would hold (the differential tests
// prove this equivalence).
// Remote replicas (WithLocalReplicas) are skipped — their states live in
// another process — so a partial host's slice covers only what it holds.
func (c *Cluster[S]) States() []S {
	out := make([]S, 0, len(c.groups)*c.cfg.replicas)
	for _, g := range c.groups {
		for _, r := range g.reps {
			if !r.remote {
				out = append(out, r.State())
			}
		}
	}
	return out
}

// ShardStates returns the derived state of each replica in one shard's
// group.
func (c *Cluster[S]) ShardStates(shard int) []S {
	g := c.groups[shard]
	out := make([]S, 0, len(g.reps))
	for _, r := range g.reps {
		if !r.remote {
			out = append(out, r.State())
		}
	}
	return out
}
