// Package core implements the paper's primary contribution as a reusable
// library: operation-centric, eventually consistent replication in the
// ACID 2.0 style of §8 — Associative, Commutative, Idempotent,
// Distributed.
//
// Applications model their business as uniquified operations (§6.5's
// "operation-centric pattern"). A Cluster of Replicas accepts operations
// on local knowledge (guesses), spreads them by anti-entropy gossip
// (memories flowing together, §7.6), and derives state by folding the
// operation set in a canonical order — so "replicas that have seen the
// same work see the same result, independent of the order in which the
// work arrived."
//
// Business rules are enforced probabilistically (§5.2): a Rule's Admit
// check runs against the local guess at submit time, and its Violated
// check runs after merges, when the truth has caught up; discovered
// violations become apologies (§5.7) routed through an apology.Queue.
// A policy.Policy picks, per operation, between the asynchronous guess
// path and §5.8's alternative — synchronous coordination with every
// replica — implementing the "$10,000 check" rule.
package core

import (
	"fmt"
	"time"

	"repro/internal/apology"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// App folds operations into application state. Step must be insensitive
// to the canonical fold order produced by oplog.Set — in ACID 2.0 terms,
// the operations must commute (or the App must make them commute, e.g. by
// last-ingress-wins tie-breaks, which canonical order makes deterministic).
//
// Every fold starts from a fresh Init(), so Step may mutate and return the
// accumulator in place; previously returned states remain valid snapshots.
type App[S any] interface {
	// Init returns the empty state.
	Init() S
	// Step applies one operation.
	Step(state S, op oplog.Entry) S
}

// Violation is one discovered breach of a business rule.
type Violation struct {
	Detail string // stable description; identical violations dedupe
	Key    string // object concerned (account, SKU, ...) for compensation code
	Amount int64  // money at stake, in cents (0 if not monetary)
}

// Rule is a probabilistically enforced business rule (§5.2).
type Rule[S any] struct {
	Name string
	// Admit, if non-nil, gates an operation against the replica's local
	// (guessed) state. Returning false declines the business.
	Admit func(state S, op oplog.Entry) bool
	// Violated, if non-nil, inspects a (possibly newly merged) state and
	// reports standing violations — the "Oh, crap!" moments of §5.7.
	Violated func(state S) []Violation
}

// Config tunes a Cluster. Zero fields take defaults.
type Config struct {
	Replicas    int            // default 3
	MsgLatency  simnet.Latency // default 5ms ± 2ms (cross-site links)
	CallTimeout time.Duration  // default 100ms
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.MsgLatency == nil {
		c.MsgLatency = simnet.Jitter{Base: 5 * time.Millisecond, Spread: 2 * time.Millisecond}
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 100 * time.Millisecond
	}
	return c
}

// Result reports the outcome of one Submit.
type Result struct {
	Accepted bool
	Decision policy.Decision
	Latency  time.Duration
	Op       oplog.Entry
	Reason   string // why a submit was declined
}

// Metrics aggregates cluster-wide observations.
type Metrics struct {
	AsyncLat stats.Histogram // latency of async (guess) submits
	SyncLat  stats.Histogram // latency of coordinated submits

	Accepted       stats.Counter
	Declined       stats.Counter // rejected by a local Admit guess
	SyncAccepted   stats.Counter
	SyncDeclined   stats.Counter // coordination failed or a replica refused
	GossipRounds   stats.Counter
	OpsTransferred stats.Counter // entries moved by gossip
}

// Cluster is a set of replicas plus the shared apology queue.
type Cluster[S any] struct {
	s     *sim.Sim
	net   *simnet.Network
	cfg   Config
	app   App[S]
	rules []Rule[S]
	reps  []*Replica[S]

	Apologies *apology.Queue
	M         Metrics
}

// NewCluster builds a cluster of cfg.Replicas replicas named r0, r1, ...
// sharing one apology queue.
func NewCluster[S any](s *sim.Sim, cfg Config, app App[S], rules ...Rule[S]) *Cluster[S] {
	cfg = cfg.withDefaults()
	c := &Cluster[S]{
		s:         s,
		net:       simnet.New(s, simnet.WithLatency(cfg.MsgLatency)),
		cfg:       cfg,
		app:       app,
		rules:     rules,
		Apologies: apology.NewQueue(),
	}
	for i := 0; i < cfg.Replicas; i++ {
		c.reps = append(c.reps, newReplica(c, fmt.Sprintf("r%d", i)))
	}
	return c
}

// Net exposes the network for fault injection and partitions.
func (c *Cluster[S]) Net() *simnet.Network { return c.net }

// Replicas reports the replica count.
func (c *Cluster[S]) Replicas() int { return len(c.reps) }

// Replica returns replica i.
func (c *Cluster[S]) Replica(i int) *Replica[S] { return c.reps[i] }

// Submit offers one operation at replica i, assigning a fresh ingress
// uniquifier. pol routes it (async guess or synchronous coordination);
// done receives the outcome. Submitting at a crashed replica is refused.
func (c *Cluster[S]) Submit(i int, kind, key string, arg int64, note string, pol policy.Policy, done func(Result)) {
	rep := c.reps[i]
	op := oplog.Entry{ID: rep.gen.Next(), Kind: kind, Key: key, Arg: arg, At: c.s.Now(), Note: note}
	c.SubmitOp(i, op, pol, done)
}

// SubmitOp offers a caller-built operation at replica i. The caller owns
// the uniquifier — how a check number (§6.2) or a content hash (§2.1)
// becomes the operation identity. An op with an empty ID gets an ingress
// one; an op whose ID was already seen at this replica is accepted
// idempotently without re-recording.
func (c *Cluster[S]) SubmitOp(i int, op oplog.Entry, pol policy.Policy, done func(Result)) {
	rep := c.reps[i]
	if op.ID == "" {
		op.ID = rep.gen.Next()
	}
	if op.At == 0 {
		op.At = c.s.Now()
	}
	if op.Lam == 0 {
		// Lamport ingress stamp: the new op sorts after everything this
		// replica has seen, so causes fold before their effects.
		op.Lam = rep.lamport + 1
	}
	if rep.ep.Crashed() {
		done(Result{Op: op, Reason: "replica down"})
		return
	}
	if rep.ops.Contains(op.ID) {
		// A retry of work this replica already did: idempotent accept.
		c.M.Accepted.Inc()
		done(Result{Accepted: true, Op: op, Decision: policy.Async})
		return
	}
	start := c.s.Now()
	switch pol.Decide(op) {
	case policy.Async:
		res := rep.submitLocal(op)
		res.Latency = c.s.Now().Sub(start)
		if res.Accepted {
			c.M.Accepted.Inc()
			c.M.AsyncLat.AddDur(res.Latency)
		} else {
			c.M.Declined.Inc()
		}
		done(res)
	case policy.Sync:
		rep.submitSync(op, func(res Result) {
			res.Latency = c.s.Now().Sub(start)
			if res.Accepted {
				c.M.Accepted.Inc()
				c.M.SyncAccepted.Inc()
				c.M.SyncLat.AddDur(res.Latency)
			} else {
				c.M.SyncDeclined.Inc()
			}
			done(res)
		})
	}
}

// GossipRound makes every live replica push-pull with its ring neighbour.
// Repeated rounds converge the cluster; Converged reports when.
func (c *Cluster[S]) GossipRound() {
	c.M.GossipRounds.Inc()
	n := len(c.reps)
	for i, rep := range c.reps {
		peer := c.reps[(i+1)%n]
		if !rep.ep.Crashed() && !peer.ep.Crashed() && c.net.Reachable(rep.ep.ID(), peer.ep.ID()) {
			rep.pushTo(peer.id)
		}
	}
}

// StartGossip runs GossipRound every interval until the returned stop
// function is called.
func (c *Cluster[S]) StartGossip(interval time.Duration) (stop func()) {
	return c.s.Every(interval, c.GossipRound)
}

// Converged reports whether every replica holds the same operation set.
func (c *Cluster[S]) Converged() bool {
	for i := 1; i < len(c.reps); i++ {
		if !c.reps[0].ops.Equal(c.reps[i].ops) {
			return false
		}
	}
	return true
}

// States returns every replica's current derived state.
func (c *Cluster[S]) States() []S {
	out := make([]S, len(c.reps))
	for i, r := range c.reps {
		out[i] = r.State()
	}
	return out
}
