package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/apology"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/uniq"
)

// Wire messages. Senders are identified by the transport's from
// parameter, never duplicated in the payload.
type (
	pushReq struct {
		Entries []oplog.Entry
	}
	pushAck  struct{ OK bool }
	admitReq struct{ Op oplog.Entry }
	admitAck struct{ OK bool }
	applyReq struct{ Op oplog.Entry }
)

// Replica is one eventually consistent copy of the application. Its
// operation set survives crashes (the disk does); a crashed replica simply
// stops talking until revived.
//
// A replica's mutable state is guarded by a mutex so the same code runs
// on the single-threaded simulator and on the concurrent live transport.
// The lock is never held across a transport call — cross-replica calls
// therefore cannot deadlock, at the usual eventual-consistency price: an
// admission check is a guess against a snapshot, exactly as §5.1 demands.
type Replica[S any] struct {
	c      *Cluster[S]
	g      *shardGroup[S] // the shard this replica serves
	id     string
	node   Node
	gen    *uniq.Gen
	remote bool // hosted by another process (WithLocalReplicas): an addressing stub

	// gossipPeers is the fixed set of peers this replica ever pushes its
	// journal to: its ring successor and predecessor within the shard
	// group. It is the single source of truth for that relationship —
	// gossipRound pushes to exactly these peers, and journal truncation
	// waits for acknowledgements from exactly them; deriving either side
	// elsewhere would let the two drift and either lose entries a peer
	// still needs or leak the journal again.
	gossipPeers []*Replica[S]

	mu      sync.Mutex
	ops     *oplog.Set
	journal oplog.Journal   // arrival order, for incremental gossip; prefix truncated once acked
	sentTo  map[string]int  // journal prefix (absolute position) acked by each peer
	pushing map[string]bool // peers with a push in flight, to keep rounds from resending the suffix
	lamport uint64          // highest Lamport timestamp seen

	// The durable tier (nil without WithDurability). Every absorbed entry
	// is staged to the store's disk journal under mu — in the same order
	// as the in-memory journal, so the two share absolute positions — and
	// the absorb is acknowledged only once the store group-commits it.
	// sinceSnap counts journaled entries toward the next durable snapshot.
	store     *store.Store
	sinceSnap int

	// Degraded read-only mode: set when the store failed with a
	// recoverable disk error (ENOSPC, EIO — see recoverableDiskErr).
	// While degraded the replica keeps serving reads from the published
	// fold snapshot, declines every write with the retryable
	// ReasonDegraded, and pauses gossip in both directions — phantom
	// guesses its disk never accepted must not spread, and a push it
	// acknowledged would be lost on rejoin. Rejoin re-probes the store
	// and clears the flag. degradedErr (under mu) records the failure.
	degraded    atomic.Bool
	degradedErr error

	// The fold checkpoint: state is the fold of every entry at or before
	// stateMark (stateN of them); stateDirty records that entries beyond
	// the watermark are waiting to be folded in. snaps holds periodic
	// checkpoint snapshots (ascending mark) so a gossip merge that sorts
	// behind the watermark rewinds to a recent checkpoint instead of
	// genesis. See stateLocked and rewindLocked.
	state       S
	stateMark   oplog.Watermark
	stateN      int
	stateShared bool // state escaped to a caller; clone before folding in place
	stateDirty  bool
	snaps       []foldSnap[S]

	// The lock-free read path: pub holds the newest published fold
	// snapshot — an immutable {state, op count} pair stamped with the set
	// version it derives — and version counts set mutations (bumped under
	// mu). A reader whose loaded publication matches the current version
	// returns it without ever touching mu; anything newer falls back to
	// the locked fold. The batched ingest loop republishes once per batch
	// before resolving results, so under pipeline ingest a reader observes
	// every acknowledged write on the fast path.
	pub     atomic.Pointer[foldPub[S]]
	version atomic.Uint64

	// The batched ingest pipeline (WithIngestBatch): submits enqueue into
	// the ring, a single writer drains it. Nil when batching is off.
	// ingestInline marks worlds without a dedicated writer goroutine (the
	// simulator, custom transports), where the enqueueing goroutine
	// drains the queue itself — serialized by drainMu so concurrent
	// enqueuers never interleave segments — keeping the simulator
	// deterministic and queue order intact everywhere.
	ingest       *ingestQueue
	ingestInline bool
	drainMu      sync.Mutex

	Ledger apology.Ledger // this replica's memories, guesses, apologies
}

// foldPub is one published fold snapshot: the immutable state derived
// from all n entries of the set at the given version.
type foldPub[S any] struct {
	state   S
	n       int
	version uint64
}

// foldSnap is one periodic fold checkpoint: the (cloned) state derived
// from every entry at or before mark, n entries in total.
type foldSnap[S any] struct {
	state S
	mark  oplog.Watermark
	n     int
}

// maxFoldSnaps bounds the checkpoint ring per replica. Dropping the
// oldest snapshot only means a merge sorting *very* far into the past
// replays from genesis — the pre-checkpoint cost, paid only then.
const maxFoldSnaps = 8

func newReplica[S any](c *Cluster[S], g *shardGroup[S], id string) *Replica[S] {
	r := &Replica[S]{
		c:       c,
		g:       g,
		id:      id,
		gen:     uniq.NewGen(id),
		ops:     oplog.NewSet(),
		sentTo:  make(map[string]int),
		pushing: make(map[string]bool),
		state:   c.app.Init(),
	}
	if c.cfg.durableDir != "" {
		// Cold start: open (or create) the durable store and replay
		// whatever an earlier incarnation left behind. Failing to open the
		// durability the caller asked for must not silently degrade to
		// RAM-only.
		st, rec, err := store.Open(c.storeDir(id), c.storeOptions())
		if err != nil {
			panic(fmt.Sprintf("quicksand: WithDurability(%s): %v", c.cfg.durableDir, err))
		}
		r.seedFromDisk(st, rec)
	}
	r.node = c.tr.Node(id, c.cfg.callTimeout)
	r.node.Handle("push", r.handlePush)
	r.node.Handle("admit", r.handleAdmit)
	r.node.Handle("apply", r.handleApply)
	return r
}

// newRemoteReplica builds the addressing stub for a replica hosted by
// another process (WithLocalReplicas): it occupies the replica's slot in
// the shard group — so ring neighbours, sync-coordination peer lists,
// and gossip targets are computed identically in every process — but it
// holds no state, opens no store, and registers no transport node.
// Everything that would touch its state is gated on the remote flag;
// messages addressed to it are the transport's to route.
func newRemoteReplica[S any](c *Cluster[S], g *shardGroup[S], id string) *Replica[S] {
	return &Replica[S]{
		c:      c,
		g:      g,
		id:     id,
		remote: true,
		gen:    uniq.NewGen(id),
		ops:    oplog.NewSet(),
		sentTo: make(map[string]int),
		node:   &remoteNode{tr: c.tr, id: id},
	}
}

// remoteNode stands in for a Node another process registered. Liveness
// is the transport's best knowledge of the peer (IsUp); everything else
// is a programming error — a remote stub never serves handlers and never
// originates calls from this process.
type remoteNode struct {
	tr Transport
	id string
}

func (n *remoteNode) ID() string    { return n.id }
func (n *remoteNode) Crashed() bool { return !n.tr.IsUp(n.id) }
func (n *remoteNode) Handle(method string, h Handler) {
	panic(fmt.Sprintf("quicksand: Handle(%q) on remote replica %s", method, n.id))
}
func (n *remoteNode) Call(to, method string, req any, done func(any, bool)) {
	panic(fmt.Sprintf("quicksand: Call from remote replica %s", n.id))
}
func (n *remoteNode) Broadcast(to []string, method string, req any, done func([]any, int)) {
	panic(fmt.Sprintf("quicksand: Broadcast from remote replica %s", n.id))
}

// seedFromDisk rebuilds the replica's in-memory world from a store
// recovery: operation set and Lamport clock from snapshot ∪ journal,
// gossip journal re-seeded with the retained suffix (positions [Base,
// End) — the entries some gossip peer may not have acknowledged yet;
// peers that already hold them dedupe the re-push), fold checkpoint
// rebuilt lazily by the next State call. Runs before the replica is
// published (construction or under mu during Recover).
func (r *Replica[S]) seedFromDisk(st *store.Store, rec store.Recovery) {
	r.store = st
	r.ops.Grow(len(rec.SnapshotEntries) + len(rec.JournalEntries))
	add := func(e oplog.Entry) {
		if r.ops.Add(e) && e.Lam > r.lamport {
			r.lamport = e.Lam
		}
	}
	for _, e := range rec.SnapshotEntries {
		add(e)
	}
	r.journal = oplog.JournalAt(rec.Base)
	for _, e := range rec.JournalEntries {
		add(e)
		r.journal.Append(e)
	}
	r.stateDirty = r.ops.Len() > 0
	// Invalidate any published read snapshot from a previous incarnation;
	// the next State call refolds from the recovered set and republishes.
	r.version.Add(1)
}

// ID returns the replica's name — its transport node id (r0, r1, ... on
// an unsharded cluster; s<shard>/r<i> on a sharded one).
func (r *Replica[S]) ID() string { return r.id }

// Shard reports which shard this replica serves.
func (r *Replica[S]) Shard() int { return r.g.idx }

// JournalRetained reports how many gossip-journal entries this replica
// still holds in memory. Once every gossip peer has acknowledged a
// prefix it is truncated, so on a healthy cluster this stays bounded by
// the entries absorbed since the last full gossip cycle rather than
// growing with the ledger.
func (r *Replica[S]) JournalRetained() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journal.Retained()
}

// JournalTruncated reports how many journal entries have been truncated
// away after acknowledgement by every gossip peer.
func (r *Replica[S]) JournalTruncated() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journal.Base()
}

// OpCount reports how many distinct operations this replica has seen.
// Like State, it serves from the published fold snapshot when that is
// current, without taking the replica lock.
func (r *Replica[S]) OpCount() int {
	if p := r.pub.Load(); p != nil && p.version == r.version.Load() {
		return p.n
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops.Len()
}

// Ops returns a copy of the replica's operation set.
func (r *Replica[S]) Ops() *oplog.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops.Copy()
}

// sameOps reports whether both replicas hold identical operation sets,
// without copying either. Cluster.Converged always passes replica 0 as
// the receiver, so the two locks are taken in a globally consistent
// order and concurrent polls cannot deadlock.
func (r *Replica[S]) sameOps(o *Replica[S]) bool {
	if r == o {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	return r.ops.Equal(o.ops)
}

// State derives (and caches) the application state. The common case
// advances the fold checkpoint by folding only the entries beyond the
// watermark; a full replay happens only when the cluster runs without a
// snapshot function (WithFullRefold, or an uncloneable S on an App
// without Snapshot).
//
// The returned state is a stable snapshot — later operations never
// change it — but it is read-only: the engine folds forward from it, so
// mutating a reference-typed state through it corrupts every subsequent
// derivation.
//
// Reads are lock-free whenever the atomically published fold snapshot is
// current — always on a quiescent replica, and between batches under
// pipeline ingest, which republishes before acknowledging each batch.
// Only a reader racing an in-flight mutation falls back to the lock.
func (r *Replica[S]) State() S {
	if p := r.pub.Load(); p != nil && p.version == r.version.Load() {
		return p.state
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stateLocked()
}

func (r *Replica[S]) stateLocked() S {
	r.foldLocked()
	// The accumulator escapes to the caller (a rule, a test, an
	// experiment); the next in-place fold must clone first so this
	// snapshot stays valid — the contract App documents.
	r.stateShared = true
	r.publishLocked()
	return r.state
}

// publishLocked stores the current fold as the lock-free read snapshot.
// It must only run when the fold is current (not dirty); the published
// state is handed out by reference, so it is marked shared — the next
// in-place fold clones first, and the object behind the pointer is
// immutable forever after. Version is captured under mu, which is what
// lets readers validate a loaded publication with one atomic compare.
func (r *Replica[S]) publishLocked() {
	if r.stateDirty {
		return
	}
	v := r.version.Load()
	if p := r.pub.Load(); p != nil && p.version == v {
		return
	}
	r.stateShared = true
	r.pub.Store(&foldPub[S]{state: r.state, n: r.ops.Len(), version: v})
}

// foldLocked brings the fold checkpoint up to date with the operation set.
func (r *Replica[S]) foldLocked() {
	if !r.stateDirty {
		return
	}
	r.stateDirty = false
	if r.c.snapFn == nil {
		// Legacy path: re-derive from genesis. Correct for any App,
		// O(set size) per derivation.
		r.state = oplog.Fold(r.ops, r.c.app.Init(), r.c.app.Step)
		r.c.M.FoldSteps.Addn(int64(r.ops.Len()))
		r.g.M.FoldSteps.Addn(int64(r.ops.Len()))
		return
	}
	pending := r.ops.EntriesAfter(r.stateMark)
	if len(pending) == 0 {
		return
	}
	if r.stateShared {
		// A caller holds the accumulator; folding in place would mutate
		// their snapshot. Clone once per fold batch, not per State call.
		r.state = r.c.snapFn(r.state)
		r.stateShared = false
	}
	every := r.c.cfg.foldEvery
	for _, e := range pending {
		r.state = r.c.app.Step(r.state, e)
		r.stateN++
		if every > 0 && r.stateN%every == 0 {
			r.checkpointLocked(e.Mark())
		}
	}
	r.stateMark = pending[len(pending)-1].Mark()
	r.c.M.FoldSteps.Addn(int64(len(pending)))
	r.g.M.FoldSteps.Addn(int64(len(pending)))
}

// checkpointLocked stores a cloned snapshot of the fold at mark, keeping
// the ring bounded.
func (r *Replica[S]) checkpointLocked(mark oplog.Watermark) {
	r.snaps = append(r.snaps, foldSnap[S]{state: r.c.snapFn(r.state), mark: mark, n: r.stateN})
	if len(r.snaps) > maxFoldSnaps {
		copy(r.snaps, r.snaps[1:])
		r.snaps[maxFoldSnaps] = foldSnap[S]{}
		r.snaps = r.snaps[:maxFoldSnaps]
	}
	r.c.M.FoldCheckpoints.Inc()
	r.g.M.FoldCheckpoints.Inc()
}

// rewindLocked reacts to an entry that sorts at or behind the fold
// watermark (position m): every snapshot whose prefix would contain the
// newcomer is invalid, so drop those and restart the fold from the newest
// surviving checkpoint (or genesis). The next stateLocked call replays
// forward from there — bounded by the checkpoint cadence, not the ledger.
func (r *Replica[S]) rewindLocked(m oplog.Watermark) {
	for n := len(r.snaps); n > 0 && !r.snaps[n-1].mark.Less(m); n = len(r.snaps) {
		r.snaps[n-1] = foldSnap[S]{}
		r.snaps = r.snaps[:n-1]
	}
	if n := len(r.snaps); n > 0 {
		top := r.snaps[n-1]
		r.state = r.c.snapFn(top.state) // clone: the stored snapshot stays pristine
		r.stateMark = top.mark
		r.stateN = top.n
	} else {
		r.state = r.c.app.Init()
		r.stateMark = oplog.Watermark{}
		r.stateN = 0
	}
	r.stateShared = false
	r.c.M.FoldRewinds.Inc()
	r.g.M.FoldRewinds.Inc()
}

// addLocked unions one entry into the set — Lamport clock, rewind
// detection — without journaling or store staging; the batched ingest
// loop batches those through Journal.AppendAll and stageLocked. It
// reports whether the entry was new. The caller holds r.mu.
func (r *Replica[S]) addLocked(e oplog.Entry) bool {
	if !r.ops.Add(e) {
		return false
	}
	// Dirty immediately, not at staging time: an admission check later in
	// the same ingest batch must fold this entry in before it guesses.
	r.stateDirty = true
	if e.Lam > r.lamport {
		r.lamport = e.Lam
	}
	if r.c.snapFn != nil && !r.stateMark.Before(e) {
		// The newcomer sorts into the already-folded past: the
		// checkpoint no longer covers a prefix of the canonical
		// order. Ingress Lamport stamping makes this rare — only
		// gossip can deliver it.
		r.rewindLocked(e.Mark())
	}
	return true
}

// stageLocked records the side effects of newly added entries: the fold
// goes dirty, the set version advances (invalidating the published read
// snapshot until the next publication), and — on a durable replica — the
// whole slice is staged to the disk journal in one call. It returns the
// store position covering the entries (0 without a store). The caller
// holds r.mu and has already journaled the entries (or deliberately not,
// for a lone replica).
func (r *Replica[S]) stageLocked(added []oplog.Entry) (end int) {
	r.version.Add(1)
	if r.store != nil {
		// Stage to the disk journal in the same order, under the same
		// lock, as the in-memory journal: the two streams share
		// absolute positions, which is what lets peer acknowledgements
		// (in-memory positions) gate disk compaction.
		end = r.store.Stage(added)
		r.sinceSnap += len(added)
		if len(r.gossipPeers) == 0 {
			// No peers will ever need a re-push: the ack watermark is
			// vacuously the journal tail, so only snapshots gate
			// compaction.
			r.store.AckTo(end)
		}
	}
	return end
}

// absorbLocked unions entries into the set, returning the ones that
// were new plus the durable-store position covering them (0 when the
// replica has no store). from names the peer the entries arrived from
// ("" for local submits): when the new entries land contiguously at the
// journal tail, the sender's acknowledgement mark advances over them —
// it evidently holds them already, so pushing them back would only be
// deduplicated echo. The caller holds r.mu.
func (r *Replica[S]) absorbLocked(entries []oplog.Entry, from string) (added []oplog.Entry, end int) {
	contiguous := from != "" && r.sentTo[from] == r.journal.Len()
	added = r.ops.AddAll(entries)
	if len(added) == 0 {
		return nil, 0
	}
	r.stateDirty = true
	var behind oplog.Watermark
	rewind := false
	for _, e := range added {
		if e.Lam > r.lamport {
			r.lamport = e.Lam
		}
		if r.c.snapFn != nil && !r.stateMark.Before(e) {
			// The newcomer sorts into the already-folded past: the
			// checkpoint no longer covers a prefix of the canonical order.
			// One rewind to the earliest such position covers the whole
			// batch; doing it per entry would replay the checkpoint suffix
			// K times.
			if m := e.Mark(); !rewind || m.Less(behind) {
				behind, rewind = m, true
			}
		}
	}
	if rewind {
		r.rewindLocked(behind)
	}
	if len(r.gossipPeers) > 0 {
		// A lone replica never pushes, so journaling for it would only
		// accumulate memory.
		r.journal.AppendAll(added)
	}
	end = r.stageLocked(added)
	if contiguous {
		r.sentTo[from] = r.journal.Len()
		r.truncateJournalLocked()
	}
	return added, end
}

// maybeSnapshotLocked decides whether enough entries were journaled
// since the last durable snapshot; if so it brings the fold checkpoint
// current (snapshots are cut at fold-checkpoint boundaries), captures
// the ledger in canonical order, and returns a closure that hands the
// capture to the store — to be run after mu is released, since the
// store writes it on its own schedule. The caller holds r.mu.
func (r *Replica[S]) maybeSnapshotLocked() func() {
	if r.store == nil || r.c.cfg.snapEvery <= 0 || r.sinceSnap < r.c.cfg.snapEvery {
		return nil
	}
	r.sinceSnap = 0
	r.foldLocked()
	st := r.store
	// A delta cut needs no entries from us — the store buffers its own
	// since-last-cut suffix — so the O(ledger) Entries copy under mu is
	// paid only for the occasional full cut. This is the writer-stall fix:
	// steady-state snapshot cuts cost the write rate, not the ledger size.
	var entries []oplog.Entry
	if st.NextSnapshotIsFull() {
		entries = r.ops.Entries()
	}
	pos := st.End()
	mark := r.stateMark
	return func() { st.WriteSnapshot(entries, pos, mark) }
}

// whatMemo tracks runs of like (kind, key) pairs so ledger fan-outs
// build their description strings once per run instead of once per
// entry. fresh reports whether the pair changed — the caller rebuilds
// its strings exactly then. Shared by the batch-ingest commit fan-out
// and the gossip-absorb fan-out, so the memoization key can never drift
// between them.
type whatMemo struct {
	kind, key string
	seen      bool
}

func (m *whatMemo) fresh(kind, key string) bool {
	if m.seen && kind == m.kind && key == m.key {
		return false
	}
	m.kind, m.key, m.seen = kind, key, true
	return true
}

// absorb unions entries into the set and — once they are durable, on a
// replica that owns a store — updates the ledger, sweeps for newly
// exposed rule violations, and fires then(added, ok). A false ok means
// the entries never became durable (the replica crashed mid-write) and
// nothing was recorded: callers must not acknowledge the work. from
// names the sending peer ("" for local work).
func (r *Replica[S]) absorb(entries []oplog.Entry, how, from string, then func(added int, ok bool)) {
	r.mu.Lock()
	if r.node.Crashed() {
		// A dead process absorbs nothing. The transports already drop
		// deliveries to crashed nodes; this closes the in-process race
		// where Kill wipes state between a liveness check and the absorb.
		r.mu.Unlock()
		if then != nil {
			then(0, false)
		}
		return
	}
	if r.degraded.Load() {
		// A degraded replica must not admit entries its disk cannot back —
		// and must not acknowledge a gossip push it would lose on rejoin.
		// ok=false keeps the peer's journal in place, exactly like a crash.
		r.mu.Unlock()
		if then != nil {
			then(0, false)
		}
		return
	}
	added, end := r.absorbLocked(entries, from)
	snap := r.maybeSnapshotLocked()
	st := r.store
	r.mu.Unlock()
	if snap != nil {
		snap()
	}
	finish := func(ok bool) {
		if ok {
			now := r.c.tr.Now()
			// Memoized across runs of the same (kind, key): a bulk gossip
			// push of like operations builds its description once.
			var memo whatMemo
			var what string
			for _, e := range added {
				if memo.fresh(e.Kind, e.Key) {
					what = how + " " + e.Kind + " " + e.Key
				}
				r.Ledger.Record(now, apology.Memory, r.id, what, e.ID)
			}
			if t := r.c.cfg.tracer; t != nil && how == "gossip" {
				for _, e := range added {
					t.Absorbed(string(e.ID), r.id, int64(now))
				}
			}
			if len(added) > 0 {
				r.sweepViolations()
			}
		} else {
			// The entries were admitted to RAM but will never be durable:
			// a replica that kept serving them as accepted would gossip
			// guesses its own disk cannot back. Crash (§2.2) or degrade —
			// either way gossip pauses and nothing is acknowledged.
			r.storeFailed()
		}
		if then != nil {
			then(len(added), ok)
		}
	}
	if st == nil || len(added) == 0 {
		finish(true)
		return
	}
	st.Commit(end, finish)
}

// storeFailed reacts to the store reporting a commit failure while the
// process is still alive — a sticky disk error, not an explicit Kill
// (Kill detaches the store first, making this a no-op). The §2.2
// discipline used to be unconditional: crash, wiping every in-memory
// entry no flush will ever cover. That is still the response to
// failures retrying cannot fix (corruption, unknown errors) — but a
// full or transiently failing disk heals when space frees or the
// device settles, and killing the replica turns an operational hiccup
// into an outage. Those failures enter degraded read-only mode instead;
// the return value reports which path was taken so callers can attach
// the retryable ReasonDegraded to their declines.
//
// On the live transport both paths hop to a fresh goroutine: the
// failure callback runs on the store's own flusher, which Crash would
// otherwise deadlock waiting for.
func (r *Replica[S]) storeFailed() (degraded bool) {
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st == nil {
		// Already killed or already degraded; report which.
		return r.degraded.Load()
	}
	if !recoverableDiskErr(st.FailErr()) {
		if st.InlineMode() {
			r.Kill()
		} else {
			go r.Kill()
		}
		return false
	}
	if st.InlineMode() {
		r.degrade(st)
	} else {
		go r.degrade(st)
	}
	return true
}

// recoverableDiskErr classifies a store failure: true for conditions
// that heal on their own (a full disk drains, a flaky device settles),
// false for anything a reopen-and-retry cannot fix. Unknown errors stay
// fatal on purpose — the old unconditional fail-fast is the safe
// default for damage this code has never seen.
func recoverableDiskErr(err error) bool {
	if err == nil {
		return false
	}
	for _, errno := range []syscall.Errno{syscall.ENOSPC, syscall.EDQUOT, syscall.EIO, syscall.EAGAIN, syscall.EINTR} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// degrade moves the replica into degraded read-only mode: the failed
// store is detached and crashed (dropping its staged tail), the
// in-memory world keeps serving reads — including entries the disk
// never accepted, whose submitters were declined with a retryable
// reason — and every write path refuses with ReasonDegraded until
// Rejoin reopens the store. On the live transport a re-probe loop
// retries Rejoin with backoff, so a disk-full shard heals itself once
// space frees; the simulator rejoins explicitly to stay deterministic.
func (r *Replica[S]) degrade(st *store.Store) {
	err := st.FailErr()
	r.mu.Lock()
	if r.store != st {
		// Lost a race with Kill (or another failure path); whoever won
		// owns the store's shutdown.
		r.mu.Unlock()
		return
	}
	r.store = nil
	r.sinceSnap = 0
	r.degradedErr = err
	r.degraded.Store(true)
	live := !st.InlineMode()
	r.mu.Unlock()
	st.Crash()
	r.c.M.Degraded.Inc()
	r.g.M.Degraded.Inc()
	r.Ledger.Record(r.c.tr.Now(), apology.Memory, r.id,
		fmt.Sprintf("entered degraded read-only mode: %v", err), "")
	if live {
		go r.reprobeLoop()
	}
}

// reprobeLoop retries Rejoin with capped exponential backoff until the
// replica heals, is killed, or the cluster closes. Live transports
// only; the deterministic simulator rejoins explicitly.
func (r *Replica[S]) reprobeLoop() {
	backoff := 100 * time.Millisecond
	for r.degraded.Load() {
		select {
		case <-r.c.done:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
		if err := r.Rejoin(context.Background()); err == nil {
			return
		}
	}
}

// Degraded reports whether the replica is in degraded read-only mode:
// its disk stopped accepting writes, reads still serve the published
// fold snapshot, and writes decline with ReasonDegraded until Rejoin
// succeeds.
func (r *Replica[S]) Degraded() bool { return r.degraded.Load() }

// IngestBacklog reports the replica's ingest-ring occupancy and
// capacity ((0, 0) for remote replicas and replicas without the
// pipelined ingest path). A ring pinned at capacity means submitters
// are blocking on backpressure — the ingress-side load-shedding signal.
func (r *Replica[S]) IngestBacklog() (depth, capacity int) {
	if r.remote || r.ingest == nil {
		return 0, 0
	}
	return r.ingest.backlog()
}

// DegradedReason returns the store failure that degraded the replica,
// or "" when it is healthy.
func (r *Replica[S]) DegradedReason() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.degradedErr == nil {
		return ""
	}
	return r.degradedErr.Error()
}

// Rejoin re-probes a degraded replica's durable store and, when the
// disk has healed, rebuilds the in-memory world from it — discarding
// the phantom entries the degraded incarnation kept serving reads from
// (their submitters were declined; gossip re-fills anything peers hold)
// — then resumes writes and gossip. It fails, leaving the replica
// degraded, while the store still cannot be reopened.
func (r *Replica[S]) Rejoin(ctx context.Context) error {
	if r.remote {
		return fmt.Errorf("quicksand: replica %s is hosted by another process; rejoin it there", r.id)
	}
	if !r.degraded.Load() {
		return fmt.Errorf("quicksand: replica %s is not degraded", r.id)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st, rec, err := store.Open(r.c.storeDir(r.id), r.c.storeOptions())
	if err != nil {
		return fmt.Errorf("quicksand: rejoin %s: %w", r.id, err)
	}
	r.mu.Lock()
	if r.store != nil || !r.degraded.Load() {
		// Lost a race with a concurrent Rejoin or a Kill; this handle is
		// surplus and the winner's state must not be clobbered.
		r.mu.Unlock()
		st.Close()
		return fmt.Errorf("quicksand: replica %s already rejoined (or was killed)", r.id)
	}
	r.wipeLocked()
	r.seedFromDisk(st, rec)
	r.degradedErr = nil
	r.degraded.Store(false)
	n := r.ops.Len()
	r.mu.Unlock()
	r.Ledger.Record(r.c.tr.Now(), apology.Memory, r.id,
		fmt.Sprintf("rejoined after degraded mode with %d ops from disk", n), "")
	return nil
}

// sweepViolations evaluates every rule's Violated check against the
// current state; new violations become apologies. The queue dedupes by
// content, so the same overdraft found at three replicas is one apology.
func (r *Replica[S]) sweepViolations() {
	if !r.c.hasViolate {
		return
	}
	state := r.State()
	for _, rule := range r.c.rules {
		if rule.Violated == nil {
			continue
		}
		for _, v := range rule.Violated(state) {
			a := apology.NewApology(rule.Name, v.Detail, v.Amount, r.id)
			a.Key = v.Key
			if r.c.Apologies.Submit(a) {
				now := r.c.tr.Now()
				r.Ledger.Record(now, apology.Regret, r.id, rule.Name+": "+v.Detail, a.ID)
				if t := r.c.cfg.tracer; t != nil {
					t.Apologized(v.Key, string(a.ID), r.id, int64(now))
				}
			}
		}
	}
}

// submitLocal is the async path: admit against the local guess, record,
// move on. The guess is remembered in the ledger. emit fires exactly
// once — on a durable replica only after the op's journal record is
// group-committed, so an accepted guess survives a hard crash.
func (r *Replica[S]) submitLocal(op oplog.Entry, emit func(Result)) {
	r.mu.Lock()
	if r.node.Crashed() {
		r.mu.Unlock()
		emit(Result{Op: op, Reason: "replica down"})
		return
	}
	if r.degraded.Load() {
		// Read-only: the disk cannot back a new guess. Decline with the
		// typed retryable reason so callers back off instead of giving up.
		r.mu.Unlock()
		emit(Result{Op: op, Reason: ReasonDegraded, Retryable: true})
		return
	}
	if r.c.hasAdmit {
		// Deriving state is the expensive part of admission; rule-free
		// clusters skip it and ingest in O(1).
		state := r.stateLocked()
		for _, rule := range r.c.rules {
			if rule.Admit != nil && !rule.Admit(state, op) {
				r.mu.Unlock()
				if t := r.c.cfg.tracer; t != nil {
					t.Declined(string(op.ID), op.Key, r.id, "rule "+rule.Name, int64(r.c.tr.Now()))
				}
				emit(Result{Op: op, Reason: "declined by rule " + rule.Name})
				return
			}
		}
	}
	added, end := r.absorbLocked([]oplog.Entry{op}, "")
	snap := r.maybeSnapshotLocked()
	st := r.store
	if len(added) == 0 && st != nil {
		// A duplicate's original entry may still be aboard an unlanded
		// flush; accepting the retry before that flush covers it would
		// promise durability the disk does not yet hold.
		end = st.End()
	}
	r.mu.Unlock()
	if snap != nil {
		snap()
	}
	if t := r.c.cfg.tracer; t != nil && len(added) > 0 {
		// On the per-op path the fold is lazy (the next read derives it),
		// so admitted and folded share the admission timestamp.
		now := int64(r.c.tr.Now())
		t.Admitted(string(op.ID), op.Key, r.id, now)
		t.Folded(string(op.ID), r.id, now)
	}
	if len(added) == 0 {
		// A duplicate: a retry that raced past dispatch's idempotency
		// check, or an op gossip already delivered. Accept it once the
		// first recording is durable.
		ack := func(ok bool) {
			if !ok {
				res := Result{Op: op, Reason: "replica crashed before the write was durable"}
				if r.storeFailed() {
					res.Reason, res.Retryable = ReasonDegraded, true
				}
				emit(res)
				return
			}
			emit(Result{Accepted: true, Op: op, Decision: policy.Async})
		}
		if st == nil {
			ack(true)
			return
		}
		st.Commit(end, ack)
		return
	}
	finish := func(ok bool) {
		if !ok {
			// The replica crashed — or its disk stopped honouring the
			// durability contract — before the write landed: the guess
			// dies with the replica (or with the degraded incarnation's
			// phantoms), and the caller must not be told otherwise.
			res := Result{Op: op, Reason: "replica crashed before the write was durable"}
			if r.storeFailed() {
				res.Reason, res.Retryable = ReasonDegraded, true
			}
			emit(res)
			return
		}
		now := r.c.tr.Now()
		r.Ledger.Record(now, apology.Memory, r.id, "local "+op.Kind+" "+op.Key, op.ID)
		r.Ledger.Record(now, apology.Guess, r.id, "accepted "+op.Kind+" "+op.Key+" on local knowledge", op.ID)
		if t := r.c.cfg.tracer; t != nil {
			t.Durable(string(op.ID), r.id, int64(now))
		}
		r.sweepViolations()
		emit(Result{Accepted: true, Op: op, Decision: policy.Async})
	}
	if st == nil {
		finish(true)
		return
	}
	st.Commit(end, finish)
}

// submitSync is the coordinated path of §5.8: ask every replica to admit
// the operation against its state, and only accept when all of them —
// reachable and willing — agree. Any silence or refusal declines the
// operation; being conservative is the point of paying for coordination.
func (r *Replica[S]) submitSync(op oplog.Entry, done func(Result)) {
	if r.degraded.Load() {
		// The coordinator itself must durably apply the op after the
		// round; a degraded one cannot, so decline before paying for
		// the broadcast.
		done(Result{Op: op, Reason: ReasonDegraded, Retryable: true, Decision: policy.Sync})
		return
	}
	// Local admission first.
	if r.c.hasAdmit {
		state := r.State()
		for _, rule := range r.c.rules {
			if rule.Admit != nil && !rule.Admit(state, op) {
				done(Result{Op: op, Reason: "declined by rule " + rule.Name, Decision: policy.Sync})
				return
			}
		}
	}
	var peers []string
	for _, other := range r.g.reps {
		if other != r {
			peers = append(peers, other.id)
		}
	}
	r.node.Broadcast(peers, "admit", admitReq{Op: op}, func(resps []any, oks int) {
		if oks != len(peers) {
			done(Result{Op: op, Reason: "coordination failed: replica unreachable", Decision: policy.Sync})
			return
		}
		for _, resp := range resps {
			if !resp.(admitAck).OK {
				done(Result{Op: op, Reason: "declined by a remote replica", Decision: policy.Sync})
				return
			}
		}
		// All agreed: apply locally (durably, if a store is attached),
		// then everywhere else, then ack.
		r.absorb([]oplog.Entry{op}, "sync", "", func(_ int, ok bool) {
			if !ok {
				res := Result{Op: op, Reason: "replica crashed before the write was durable", Decision: policy.Sync}
				if r.degraded.Load() {
					res.Reason, res.Retryable = ReasonDegraded, true
				}
				done(res)
				return
			}
			r.node.Broadcast(peers, "apply", applyReq{Op: op}, func([]any, int) {
				done(Result{Accepted: true, Op: op, Decision: policy.Sync})
			})
		})
	})
}

// pushTo sends the journal suffix the peer has not acknowledged — one
// directed edge of an anti-entropy round. An acknowledgement may let the
// replica truncate the journal prefix that every gossip peer has now
// seen.
func (r *Replica[S]) pushTo(peer string) {
	r.mu.Lock()
	if r.pushing[peer] {
		// A push to this peer is still in flight. Sending again would
		// retransmit the same unacknowledged suffix — under ingest load
		// that compounds into a resend storm, each round re-shipping and
		// re-deduplicating an ever-growing window. The next round (or the
		// ack) picks up whatever is new.
		r.mu.Unlock()
		return
	}
	from := r.sentTo[peer]
	if base := r.journal.Base(); from < base {
		// The peer's recorded acknowledgement predates this incarnation's
		// journal (a recovered replica re-seeds its journal at the disk
		// base and forgets per-peer acks). Re-pushing from the base is
		// safe: the peer dedupes what it already holds.
		from = base
	}
	entries := r.journal.Since(from)
	end := r.journal.Len()
	if len(entries) == 0 {
		// Nothing the peer hasn't acknowledged. Skipping the call costs
		// only reciprocation speed — the peer still pushes its own news
		// forward around the ring every round — and makes idle gossip
		// free, which matters when many shards each run their own rounds.
		r.mu.Unlock()
		return
	}
	r.pushing[peer] = true
	r.mu.Unlock()
	r.c.M.OpsTransferred.Addn(int64(len(entries)))
	r.g.M.OpsTransferred.Addn(int64(len(entries)))
	r.node.Call(peer, "push", pushReq{Entries: entries}, func(resp any, ok bool) {
		acked := ok && resp.(pushAck).OK
		r.mu.Lock()
		delete(r.pushing, peer)
		if acked && end > r.sentTo[peer] {
			r.sentTo[peer] = end
			r.truncateJournalLocked()
		}
		r.mu.Unlock()
		if acked {
			// A durable ack means the peer holds every pushed entry — the
			// cross-process observation that advances guess-to-truth even
			// when the peer's absorb happens in another daemon.
			if t := r.c.cfg.tracer; t != nil {
				now := int64(r.c.tr.Now())
				for i := range entries {
					t.GossipAcked(string(entries[i].ID), r.id, peer, now)
				}
			}
		}
	})
}

// truncateJournalLocked drops the journal prefix acknowledged by every
// gossip peer. Peers that have acked less (a crashed successor, a
// partitioned predecessor) hold the prefix in place, so anti-entropy
// never loses an entry a peer still needs — but once all acks cover it,
// a long-lived replica's journal no longer grows with total ops, only
// with the entries absorbed since the slowest peer's last ack.
func (r *Replica[S]) truncateJournalLocked() {
	min := r.journal.Len()
	for _, p := range r.gossipPeers {
		if v := r.sentTo[p.id]; v < min {
			min = v
		}
	}
	r.journal.TruncateTo(min)
	if r.store != nil {
		// The same watermark unlocks disk compaction — but only jointly
		// with the snapshot watermark; the store takes the min.
		r.store.AckTo(min)
	}
}

func (r *Replica[S]) handlePush(from string, req any, reply func(any)) {
	p := req.(pushReq)
	r.absorb(p.Entries, "gossip", from, func(_ int, ok bool) {
		// Acknowledging entries that are not yet durable would let the
		// peer truncate its journal while this replica could still lose
		// them to a crash — the gap nobody could refill. OK=false keeps
		// the peer's ack mark (and so its journal) where it is.
		reply(pushAck{OK: ok})
	})
}

func (r *Replica[S]) handleAdmit(from string, req any, reply func(any)) {
	a := req.(admitReq)
	if r.c.hasAdmit {
		state := r.State()
		for _, rule := range r.c.rules {
			if rule.Admit != nil && !rule.Admit(state, a.Op) {
				reply(admitAck{OK: false})
				return
			}
		}
	}
	reply(admitAck{OK: true})
}

func (r *Replica[S]) handleApply(from string, req any, reply func(any)) {
	a := req.(applyReq)
	r.absorb([]oplog.Entry{a.Op}, "sync", from, func(_ int, ok bool) {
		reply(pushAck{OK: ok})
	})
}

// Kill hard-crashes the replica: the node goes silent on the transport
// and every bit of in-memory state — operation set, gossip journal,
// Lamport clock, fold checkpoints, ledger — is destroyed, along with
// any disk write that was not yet group-committed (in-flight submits
// resolve as declined). What survives is exactly the durable store's
// contents; a replica without one loses everything it uniquely held.
func (r *Replica[S]) Kill() {
	r.c.tr.SetUp(r.id, false)
	r.mu.Lock()
	st := r.store
	r.store = nil
	r.wipeLocked()
	// A killed replica is down, not degraded: Recover (not Rejoin) is
	// the way back, and the re-probe loop, if any, must stop.
	r.degradedErr = nil
	r.degraded.Store(false)
	// Lock-free readers must not keep serving the dead incarnation's
	// snapshot: bump the version and publish the wiped state.
	r.version.Add(1)
	r.publishLocked()
	r.mu.Unlock()
	r.Ledger.Reset()
	if st != nil {
		st.Crash()
	}
}

// wipeLocked destroys every bit of in-memory state, as a process death
// would — shared by Kill and by Rejoin (which discards the degraded
// incarnation's phantoms before reseeding from disk). The caller holds
// mu and owns store shutdown, publication, and ledger cleanup.
func (r *Replica[S]) wipeLocked() {
	r.sinceSnap = 0
	r.ops = oplog.NewSet()
	r.journal = oplog.Journal{}
	r.sentTo = make(map[string]int)
	r.pushing = make(map[string]bool)
	r.lamport = 0
	r.state = r.c.app.Init()
	r.stateMark = oplog.Watermark{}
	r.stateN = 0
	r.stateShared = false
	r.stateDirty = false
	r.snaps = nil
}

// Recover restarts a killed durable replica from disk alone: reopen the
// store (which truncates any torn journal tail), load the newest
// snapshot, replay the retained journal suffix, rebuild the operation
// set and Lamport clock, and rejoin the transport. Gossip then fills in
// everything admitted elsewhere while the replica was dead — peers held
// their journals for it (an unacknowledged prefix is never truncated),
// and it re-pushes its own retained suffix, which peers dedupe.
func (r *Replica[S]) Recover(ctx context.Context) error {
	if r.remote {
		return fmt.Errorf("quicksand: replica %s is hosted by another process; recover it there", r.id)
	}
	if r.c.cfg.durableDir == "" {
		return fmt.Errorf("quicksand: replica %s has no durable store to recover from (use WithDurability)", r.id)
	}
	if !r.node.Crashed() {
		return fmt.Errorf("quicksand: replica %s is alive; Recover follows Kill", r.id)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	st, rec, err := store.Open(r.c.storeDir(r.id), r.c.storeOptions())
	if err != nil {
		return fmt.Errorf("quicksand: recover %s: %w", r.id, err)
	}
	r.mu.Lock()
	if r.store != nil {
		// The replica still holds a store: either a concurrent Recover won
		// the race, or the node was merely SetUp(false) — downed with its
		// RAM intact — rather than killed. Either way this handle is
		// surplus and the state must not be clobbered.
		r.mu.Unlock()
		st.Close()
		return fmt.Errorf("quicksand: replica %s still holds its state (already recovered, or downed without Kill)", r.id)
	}
	r.seedFromDisk(st, rec)
	n, snapN, journalN := r.ops.Len(), len(rec.SnapshotEntries), len(rec.JournalEntries)
	r.mu.Unlock()
	r.Ledger.Record(r.c.tr.Now(), apology.Memory, r.id,
		fmt.Sprintf("recovered %d ops from disk (snapshot %d + journal %d)", n, snapN, journalN), "")
	r.c.tr.SetUp(r.id, true)
	return nil
}

// closeStore gracefully flushes and closes the durable store, leaving
// the directory ready for a cold start. A non-nil error means the final
// flush (or the file close behind it) failed: the directory may be
// missing acknowledged entries, which the caller must surface rather
// than swallow.
func (r *Replica[S]) closeStore() error {
	r.mu.Lock()
	st := r.store
	r.store = nil
	r.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}

// StoreStats reports the replica's durable-store disk counters; ok is
// false when the replica has no live store (no WithDurability, or
// currently killed).
func (r *Replica[S]) StoreStats() (store.Stats, bool) {
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st == nil {
		return store.Stats{}, false
	}
	return st.Stats(), true
}

// SpillStoreLatencies folds the replica's sampled fsync and snapshot-cut
// latency distributions into the given histograms; a no-op when the
// replica has no live store.
func (r *Replica[S]) SpillStoreLatencies(fsync, snapCut *stats.Histogram) {
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st == nil {
		return
	}
	st.FsyncLatency().Spill(fsync)
	st.SnapshotCutLatency().Spill(snapCut)
}

// MergeStoreHists merges the replica's full log-bucketed fsync and
// snapshot-cut histograms into the given accumulators; a no-op when the
// replica has no live store.
func (r *Replica[S]) MergeStoreHists(fsync, snapCut *stats.LatHist) {
	r.mu.Lock()
	st := r.store
	r.mu.Unlock()
	if st == nil {
		return
	}
	fsync.Merge(st.FsyncHist())
	snapCut.Merge(st.SnapshotCutHist())
}
