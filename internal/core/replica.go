package core

import (
	"sync"

	"repro/internal/apology"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/uniq"
)

// Wire messages. Senders are identified by the transport's from
// parameter, never duplicated in the payload.
type (
	pushReq struct {
		Entries []oplog.Entry
	}
	pushAck  struct{ OK bool }
	admitReq struct{ Op oplog.Entry }
	admitAck struct{ OK bool }
	applyReq struct{ Op oplog.Entry }
)

// Replica is one eventually consistent copy of the application. Its
// operation set survives crashes (the disk does); a crashed replica simply
// stops talking until revived.
//
// A replica's mutable state is guarded by a mutex so the same code runs
// on the single-threaded simulator and on the concurrent live transport.
// The lock is never held across a transport call — cross-replica calls
// therefore cannot deadlock, at the usual eventual-consistency price: an
// admission check is a guess against a snapshot, exactly as §5.1 demands.
type Replica[S any] struct {
	c    *Cluster[S]
	g    *shardGroup[S] // the shard this replica serves
	id   string
	node Node
	gen  *uniq.Gen

	// gossipPeers is the fixed set of peers this replica ever pushes its
	// journal to: its ring successor and predecessor within the shard
	// group. It is the single source of truth for that relationship —
	// gossipRound pushes to exactly these peers, and journal truncation
	// waits for acknowledgements from exactly them; deriving either side
	// elsewhere would let the two drift and either lose entries a peer
	// still needs or leak the journal again.
	gossipPeers []*Replica[S]

	mu      sync.Mutex
	ops     *oplog.Set
	journal oplog.Journal   // arrival order, for incremental gossip; prefix truncated once acked
	sentTo  map[string]int  // journal prefix (absolute position) acked by each peer
	pushing map[string]bool // peers with a push in flight, to keep rounds from resending the suffix
	lamport uint64          // highest Lamport timestamp seen

	// The fold checkpoint: state is the fold of every entry at or before
	// stateMark (stateN of them); stateDirty records that entries beyond
	// the watermark are waiting to be folded in. snaps holds periodic
	// checkpoint snapshots (ascending mark) so a gossip merge that sorts
	// behind the watermark rewinds to a recent checkpoint instead of
	// genesis. See stateLocked and rewindLocked.
	state       S
	stateMark   oplog.Watermark
	stateN      int
	stateShared bool // state escaped to a caller; clone before folding in place
	stateDirty  bool
	snaps       []foldSnap[S]

	Ledger apology.Ledger // this replica's memories, guesses, apologies
}

// foldSnap is one periodic fold checkpoint: the (cloned) state derived
// from every entry at or before mark, n entries in total.
type foldSnap[S any] struct {
	state S
	mark  oplog.Watermark
	n     int
}

// maxFoldSnaps bounds the checkpoint ring per replica. Dropping the
// oldest snapshot only means a merge sorting *very* far into the past
// replays from genesis — the pre-checkpoint cost, paid only then.
const maxFoldSnaps = 8

func newReplica[S any](c *Cluster[S], g *shardGroup[S], id string) *Replica[S] {
	r := &Replica[S]{
		c:       c,
		g:       g,
		id:      id,
		gen:     uniq.NewGen(id),
		ops:     oplog.NewSet(),
		sentTo:  make(map[string]int),
		pushing: make(map[string]bool),
		state:   c.app.Init(),
	}
	r.node = c.tr.Node(id, c.cfg.callTimeout)
	r.node.Handle("push", r.handlePush)
	r.node.Handle("admit", r.handleAdmit)
	r.node.Handle("apply", r.handleApply)
	return r
}

// ID returns the replica's name — its transport node id (r0, r1, ... on
// an unsharded cluster; s<shard>/r<i> on a sharded one).
func (r *Replica[S]) ID() string { return r.id }

// Shard reports which shard this replica serves.
func (r *Replica[S]) Shard() int { return r.g.idx }

// JournalRetained reports how many gossip-journal entries this replica
// still holds in memory. Once every gossip peer has acknowledged a
// prefix it is truncated, so on a healthy cluster this stays bounded by
// the entries absorbed since the last full gossip cycle rather than
// growing with the ledger.
func (r *Replica[S]) JournalRetained() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journal.Retained()
}

// JournalTruncated reports how many journal entries have been truncated
// away after acknowledgement by every gossip peer.
func (r *Replica[S]) JournalTruncated() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journal.Base()
}

// OpCount reports how many distinct operations this replica has seen.
func (r *Replica[S]) OpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops.Len()
}

// Ops returns a copy of the replica's operation set.
func (r *Replica[S]) Ops() *oplog.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops.Copy()
}

// sameOps reports whether both replicas hold identical operation sets,
// without copying either. Cluster.Converged always passes replica 0 as
// the receiver, so the two locks are taken in a globally consistent
// order and concurrent polls cannot deadlock.
func (r *Replica[S]) sameOps(o *Replica[S]) bool {
	if r == o {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	return r.ops.Equal(o.ops)
}

// State derives (and caches) the application state. The common case
// advances the fold checkpoint by folding only the entries beyond the
// watermark; a full replay happens only when the cluster runs without a
// snapshot function (WithFullRefold, or an uncloneable S on an App
// without Snapshot).
//
// The returned state is a stable snapshot — later operations never
// change it — but it is read-only: the engine folds forward from it, so
// mutating a reference-typed state through it corrupts every subsequent
// derivation.
func (r *Replica[S]) State() S {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stateLocked()
}

func (r *Replica[S]) stateLocked() S {
	r.foldLocked()
	// The accumulator escapes to the caller (a rule, a test, an
	// experiment); the next in-place fold must clone first so this
	// snapshot stays valid — the contract App documents.
	r.stateShared = true
	return r.state
}

// foldLocked brings the fold checkpoint up to date with the operation set.
func (r *Replica[S]) foldLocked() {
	if !r.stateDirty {
		return
	}
	r.stateDirty = false
	if r.c.snapFn == nil {
		// Legacy path: re-derive from genesis. Correct for any App,
		// O(set size) per derivation.
		r.state = oplog.Fold(r.ops, r.c.app.Init(), r.c.app.Step)
		r.c.M.FoldSteps.Addn(int64(r.ops.Len()))
		r.g.M.FoldSteps.Addn(int64(r.ops.Len()))
		return
	}
	pending := r.ops.EntriesAfter(r.stateMark)
	if len(pending) == 0 {
		return
	}
	if r.stateShared {
		// A caller holds the accumulator; folding in place would mutate
		// their snapshot. Clone once per fold batch, not per State call.
		r.state = r.c.snapFn(r.state)
		r.stateShared = false
	}
	every := r.c.cfg.foldEvery
	for _, e := range pending {
		r.state = r.c.app.Step(r.state, e)
		r.stateN++
		if every > 0 && r.stateN%every == 0 {
			r.checkpointLocked(e.Mark())
		}
	}
	r.stateMark = pending[len(pending)-1].Mark()
	r.c.M.FoldSteps.Addn(int64(len(pending)))
	r.g.M.FoldSteps.Addn(int64(len(pending)))
}

// checkpointLocked stores a cloned snapshot of the fold at mark, keeping
// the ring bounded.
func (r *Replica[S]) checkpointLocked(mark oplog.Watermark) {
	r.snaps = append(r.snaps, foldSnap[S]{state: r.c.snapFn(r.state), mark: mark, n: r.stateN})
	if len(r.snaps) > maxFoldSnaps {
		copy(r.snaps, r.snaps[1:])
		r.snaps[maxFoldSnaps] = foldSnap[S]{}
		r.snaps = r.snaps[:maxFoldSnaps]
	}
	r.c.M.FoldCheckpoints.Inc()
	r.g.M.FoldCheckpoints.Inc()
}

// rewindLocked reacts to an entry that sorts at or behind the fold
// watermark (position m): every snapshot whose prefix would contain the
// newcomer is invalid, so drop those and restart the fold from the newest
// surviving checkpoint (or genesis). The next stateLocked call replays
// forward from there — bounded by the checkpoint cadence, not the ledger.
func (r *Replica[S]) rewindLocked(m oplog.Watermark) {
	for n := len(r.snaps); n > 0 && !r.snaps[n-1].mark.Less(m); n = len(r.snaps) {
		r.snaps[n-1] = foldSnap[S]{}
		r.snaps = r.snaps[:n-1]
	}
	if n := len(r.snaps); n > 0 {
		top := r.snaps[n-1]
		r.state = r.c.snapFn(top.state) // clone: the stored snapshot stays pristine
		r.stateMark = top.mark
		r.stateN = top.n
	} else {
		r.state = r.c.app.Init()
		r.stateMark = oplog.Watermark{}
		r.stateN = 0
	}
	r.stateShared = false
	r.c.M.FoldRewinds.Inc()
	r.g.M.FoldRewinds.Inc()
}

// absorbLocked unions entries into the set and returns the ones that were
// new. from names the peer the entries arrived from ("" for local
// submits): when the new entries land contiguously at the journal tail,
// the sender's acknowledgement mark advances over them — it evidently
// holds them already, so pushing them back would only be deduplicated
// echo. The caller holds r.mu.
func (r *Replica[S]) absorbLocked(entries []oplog.Entry, from string) []oplog.Entry {
	contiguous := from != "" && r.sentTo[from] == r.journal.Len()
	var added []oplog.Entry
	for _, e := range entries {
		if r.ops.Add(e) {
			if e.Lam > r.lamport {
				r.lamport = e.Lam
			}
			if r.c.snapFn != nil && !r.stateMark.Before(e) {
				// The newcomer sorts into the already-folded past: the
				// checkpoint no longer covers a prefix of the canonical
				// order. Ingress Lamport stamping makes this rare — only
				// gossip can deliver it.
				r.rewindLocked(e.Mark())
			}
			if len(r.gossipPeers) > 0 {
				// A lone replica never pushes, so journaling for it would
				// only accumulate memory.
				r.journal.Append(e)
			}
			added = append(added, e)
		}
	}
	if len(added) > 0 {
		r.stateDirty = true
		if contiguous {
			r.sentTo[from] = r.journal.Len()
			r.truncateJournalLocked()
		}
	}
	return added
}

// absorb unions entries into the set, updates the ledger, and sweeps for
// newly exposed rule violations. from names the sending peer ("" for
// local work). It returns how many entries were new.
func (r *Replica[S]) absorb(entries []oplog.Entry, how, from string) int {
	r.mu.Lock()
	added := r.absorbLocked(entries, from)
	r.mu.Unlock()
	now := r.c.tr.Now()
	for _, e := range added {
		r.Ledger.Record(now, apology.Memory, r.id, how+" "+e.Kind+" "+e.Key, e.ID)
	}
	if len(added) > 0 {
		r.sweepViolations()
	}
	return len(added)
}

// sweepViolations evaluates every rule's Violated check against the
// current state; new violations become apologies. The queue dedupes by
// content, so the same overdraft found at three replicas is one apology.
func (r *Replica[S]) sweepViolations() {
	if !r.c.hasViolate {
		return
	}
	state := r.State()
	for _, rule := range r.c.rules {
		if rule.Violated == nil {
			continue
		}
		for _, v := range rule.Violated(state) {
			a := apology.NewApology(rule.Name, v.Detail, v.Amount, r.id)
			a.Key = v.Key
			if r.c.Apologies.Submit(a) {
				r.Ledger.Record(r.c.tr.Now(), apology.Regret, r.id, rule.Name+": "+v.Detail, a.ID)
			}
		}
	}
}

// submitLocal is the async path: admit against the local guess, record,
// move on. The guess is remembered in the ledger.
func (r *Replica[S]) submitLocal(op oplog.Entry) Result {
	r.mu.Lock()
	if r.c.hasAdmit {
		// Deriving state is the expensive part of admission; rule-free
		// clusters skip it and ingest in O(1).
		state := r.stateLocked()
		for _, rule := range r.c.rules {
			if rule.Admit != nil && !rule.Admit(state, op) {
				r.mu.Unlock()
				return Result{Op: op, Reason: "declined by rule " + rule.Name}
			}
		}
	}
	added := r.absorbLocked([]oplog.Entry{op}, "")
	r.mu.Unlock()
	if len(added) > 0 {
		// Only a newly recorded op is a fresh guess; a duplicate (a retry
		// that raced past dispatch's idempotency check, or an op gossip
		// already delivered) was guessed when it was first recorded.
		now := r.c.tr.Now()
		r.Ledger.Record(now, apology.Memory, r.id, "local "+op.Kind+" "+op.Key, op.ID)
		r.Ledger.Record(now, apology.Guess, r.id, "accepted "+op.Kind+" "+op.Key+" on local knowledge", op.ID)
		r.sweepViolations()
	}
	return Result{Accepted: true, Op: op, Decision: policy.Async}
}

// submitSync is the coordinated path of §5.8: ask every replica to admit
// the operation against its state, and only accept when all of them —
// reachable and willing — agree. Any silence or refusal declines the
// operation; being conservative is the point of paying for coordination.
func (r *Replica[S]) submitSync(op oplog.Entry, done func(Result)) {
	// Local admission first.
	if r.c.hasAdmit {
		state := r.State()
		for _, rule := range r.c.rules {
			if rule.Admit != nil && !rule.Admit(state, op) {
				done(Result{Op: op, Reason: "declined by rule " + rule.Name, Decision: policy.Sync})
				return
			}
		}
	}
	var peers []string
	for _, other := range r.g.reps {
		if other != r {
			peers = append(peers, other.id)
		}
	}
	r.node.Broadcast(peers, "admit", admitReq{Op: op}, func(resps []any, oks int) {
		if oks != len(peers) {
			done(Result{Op: op, Reason: "coordination failed: replica unreachable", Decision: policy.Sync})
			return
		}
		for _, resp := range resps {
			if !resp.(admitAck).OK {
				done(Result{Op: op, Reason: "declined by a remote replica", Decision: policy.Sync})
				return
			}
		}
		// All agreed: apply everywhere synchronously, then ack.
		r.absorb([]oplog.Entry{op}, "sync", "")
		r.node.Broadcast(peers, "apply", applyReq{Op: op}, func([]any, int) {
			done(Result{Accepted: true, Op: op, Decision: policy.Sync})
		})
	})
}

// pushTo sends the journal suffix the peer has not acknowledged — one
// directed edge of an anti-entropy round. An acknowledgement may let the
// replica truncate the journal prefix that every gossip peer has now
// seen.
func (r *Replica[S]) pushTo(peer string) {
	r.mu.Lock()
	if r.pushing[peer] {
		// A push to this peer is still in flight. Sending again would
		// retransmit the same unacknowledged suffix — under ingest load
		// that compounds into a resend storm, each round re-shipping and
		// re-deduplicating an ever-growing window. The next round (or the
		// ack) picks up whatever is new.
		r.mu.Unlock()
		return
	}
	from := r.sentTo[peer]
	entries := r.journal.Since(from)
	end := r.journal.Len()
	if len(entries) == 0 {
		// Nothing the peer hasn't acknowledged. Skipping the call costs
		// only reciprocation speed — the peer still pushes its own news
		// forward around the ring every round — and makes idle gossip
		// free, which matters when many shards each run their own rounds.
		r.mu.Unlock()
		return
	}
	r.pushing[peer] = true
	r.mu.Unlock()
	r.c.M.OpsTransferred.Addn(int64(len(entries)))
	r.g.M.OpsTransferred.Addn(int64(len(entries)))
	r.node.Call(peer, "push", pushReq{Entries: entries}, func(resp any, ok bool) {
		r.mu.Lock()
		delete(r.pushing, peer)
		if ok && resp.(pushAck).OK && end > r.sentTo[peer] {
			r.sentTo[peer] = end
			r.truncateJournalLocked()
		}
		r.mu.Unlock()
	})
}

// truncateJournalLocked drops the journal prefix acknowledged by every
// gossip peer. Peers that have acked less (a crashed successor, a
// partitioned predecessor) hold the prefix in place, so anti-entropy
// never loses an entry a peer still needs — but once all acks cover it,
// a long-lived replica's journal no longer grows with total ops, only
// with the entries absorbed since the slowest peer's last ack.
func (r *Replica[S]) truncateJournalLocked() {
	min := r.journal.Len()
	for _, p := range r.gossipPeers {
		if v := r.sentTo[p.id]; v < min {
			min = v
		}
	}
	r.journal.TruncateTo(min)
}

func (r *Replica[S]) handlePush(from string, req any, reply func(any)) {
	p := req.(pushReq)
	r.absorb(p.Entries, "gossip", from)
	reply(pushAck{OK: true})
}

func (r *Replica[S]) handleAdmit(from string, req any, reply func(any)) {
	a := req.(admitReq)
	if r.c.hasAdmit {
		state := r.State()
		for _, rule := range r.c.rules {
			if rule.Admit != nil && !rule.Admit(state, a.Op) {
				reply(admitAck{OK: false})
				return
			}
		}
	}
	reply(admitAck{OK: true})
}

func (r *Replica[S]) handleApply(from string, req any, reply func(any)) {
	a := req.(applyReq)
	r.absorb([]oplog.Entry{a.Op}, "sync", from)
	reply(pushAck{OK: true})
}
