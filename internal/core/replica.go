package core

import (
	"repro/internal/apology"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/rpc"
	"repro/internal/simnet"
	"repro/internal/uniq"
)

// Wire messages.
type (
	pushReq struct {
		From    string
		Entries []oplog.Entry
	}
	pushAck  struct{ OK bool }
	admitReq struct{ Op oplog.Entry }
	admitAck struct{ OK bool }
	applyReq struct{ Op oplog.Entry }
)

// Replica is one eventually consistent copy of the application. Its
// operation set survives crashes (the disk does); a crashed replica simply
// stops talking until revived.
type Replica[S any] struct {
	c   *Cluster[S]
	id  string
	ep  *rpc.Endpoint
	gen *uniq.Gen

	ops     *oplog.Set
	journal []oplog.Entry  // arrival order, for incremental gossip
	sentTo  map[string]int // journal prefix acked by each peer
	lamport uint64         // highest Lamport timestamp seen

	state      S
	stateDirty bool

	Ledger apology.Ledger // this replica's memories, guesses, apologies
}

func newReplica[S any](c *Cluster[S], id string) *Replica[S] {
	r := &Replica[S]{
		c:      c,
		id:     id,
		gen:    uniq.NewGen(id),
		ops:    oplog.NewSet(),
		sentTo: make(map[string]int),
		state:  c.app.Init(),
	}
	r.ep = rpc.NewEndpoint(c.net, simnet.NodeID(id), c.cfg.CallTimeout)
	r.ep.Handle("push", r.handlePush)
	r.ep.Handle("admit", r.handleAdmit)
	r.ep.Handle("apply", r.handleApply)
	return r
}

// ID returns the replica's name.
func (r *Replica[S]) ID() string { return r.id }

// OpCount reports how many distinct operations this replica has seen.
func (r *Replica[S]) OpCount() int { return r.ops.Len() }

// Ops returns a copy of the replica's operation set.
func (r *Replica[S]) Ops() *oplog.Set { return r.ops.Copy() }

// State derives (and caches) the application state by folding the
// operation set in canonical order.
func (r *Replica[S]) State() S {
	if r.stateDirty {
		r.state = oplog.Fold(r.ops, r.c.app.Init(), r.c.app.Step)
		r.stateDirty = false
	}
	return r.state
}

// absorb unions entries into the set, updates the ledger, and sweeps for
// newly exposed rule violations. It returns how many entries were new.
func (r *Replica[S]) absorb(entries []oplog.Entry, how string) int {
	added := 0
	for _, e := range entries {
		if r.ops.Add(e) {
			added++
			if e.Lam > r.lamport {
				r.lamport = e.Lam
			}
			r.journal = append(r.journal, e)
			r.Ledger.Record(r.c.s.Now(), apology.Memory, r.id, how+" "+e.Kind+" "+e.Key, e.ID)
		}
	}
	if added > 0 {
		r.stateDirty = true
		r.sweepViolations()
	}
	return added
}

// sweepViolations evaluates every rule's Violated check against the
// current state; new violations become apologies. The queue dedupes by
// content, so the same overdraft found at three replicas is one apology.
func (r *Replica[S]) sweepViolations() {
	state := r.State()
	for _, rule := range r.c.rules {
		if rule.Violated == nil {
			continue
		}
		for _, v := range rule.Violated(state) {
			a := apology.NewApology(rule.Name, v.Detail, v.Amount, r.id)
			a.Key = v.Key
			if r.c.Apologies.Submit(a) {
				r.Ledger.Record(r.c.s.Now(), apology.Regret, r.id, rule.Name+": "+v.Detail, a.ID)
			}
		}
	}
}

// submitLocal is the async path: admit against the local guess, record,
// move on. The guess is remembered in the ledger.
func (r *Replica[S]) submitLocal(op oplog.Entry) Result {
	state := r.State()
	for _, rule := range r.c.rules {
		if rule.Admit != nil && !rule.Admit(state, op) {
			return Result{Op: op, Reason: "declined by rule " + rule.Name}
		}
	}
	r.absorb([]oplog.Entry{op}, "local")
	r.Ledger.Record(r.c.s.Now(), apology.Guess, r.id, "accepted "+op.Kind+" "+op.Key+" on local knowledge", op.ID)
	return Result{Accepted: true, Op: op, Decision: policy.Async}
}

// submitSync is the coordinated path of §5.8: ask every replica to admit
// the operation against its state, and only accept when all of them —
// reachable and willing — agree. Any silence or refusal declines the
// operation; being conservative is the point of paying for coordination.
func (r *Replica[S]) submitSync(op oplog.Entry, done func(Result)) {
	// Local admission first.
	state := r.State()
	for _, rule := range r.c.rules {
		if rule.Admit != nil && !rule.Admit(state, op) {
			done(Result{Op: op, Reason: "declined by rule " + rule.Name, Decision: policy.Sync})
			return
		}
	}
	var peers []simnet.NodeID
	for _, other := range r.c.reps {
		if other != r {
			peers = append(peers, other.ep.ID())
		}
	}
	r.ep.Broadcast(peers, "admit", admitReq{Op: op}, func(resps []any, oks int) {
		if oks != len(peers) {
			done(Result{Op: op, Reason: "coordination failed: replica unreachable", Decision: policy.Sync})
			return
		}
		for _, resp := range resps {
			if !resp.(admitAck).OK {
				done(Result{Op: op, Reason: "declined by a remote replica", Decision: policy.Sync})
				return
			}
		}
		// All agreed: apply everywhere synchronously, then ack.
		r.absorb([]oplog.Entry{op}, "sync")
		r.ep.Broadcast(peers, "apply", applyReq{Op: op}, func([]any, int) {
			done(Result{Accepted: true, Op: op, Decision: policy.Sync})
		})
	})
}

// pushTo sends the journal suffix the peer has not acknowledged, and asks
// the peer to reciprocate — one push-pull pair of an anti-entropy round.
func (r *Replica[S]) pushTo(peer string) {
	from := r.sentTo[peer]
	entries := append([]oplog.Entry(nil), r.journal[from:]...)
	end := len(r.journal)
	r.c.M.OpsTransferred.Addn(int64(len(entries)))
	r.ep.Call(simnet.NodeID(peer), "push", pushReq{From: r.id, Entries: entries}, func(resp any, ok bool) {
		if ok && resp.(pushAck).OK {
			if end > r.sentTo[peer] {
				r.sentTo[peer] = end
			}
		}
	})
}

func (r *Replica[S]) handlePush(from simnet.NodeID, req any, reply func(any)) {
	p := req.(pushReq)
	r.absorb(p.Entries, "gossip")
	reply(pushAck{OK: true})
	// Reciprocate if this replica knows things the pusher might not.
	if r.sentTo[p.From] < len(r.journal) {
		r.pushTo(p.From)
	}
}

func (r *Replica[S]) handleAdmit(from simnet.NodeID, req any, reply func(any)) {
	a := req.(admitReq)
	state := r.State()
	for _, rule := range r.c.rules {
		if rule.Admit != nil && !rule.Admit(state, a.Op) {
			reply(admitAck{OK: false})
			return
		}
	}
	reply(admitAck{OK: true})
}

func (r *Replica[S]) handleApply(from simnet.NodeID, req any, reply func(any)) {
	a := req.(applyReq)
	r.absorb([]oplog.Entry{a.Op}, "sync")
	reply(pushAck{OK: true})
}
