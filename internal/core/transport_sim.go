package core

import (
	"context"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// SimTransport runs a cluster on the deterministic discrete-event
// simulator: one simnet.Network carries the messages, and Await drives the
// event loop. Everything the simulated world offers — latency models,
// partitions, crash/restart, message loss — is available through Net and
// the convenience methods, and a fixed seed reproduces every run
// bit-for-bit.
//
// A blocking Submit on a SimTransport steps the event loop itself, so it
// must not be called from inside a simulator callback (use SubmitAsync
// there — the event loop is already running).
type SimTransport struct {
	s   *sim.Sim
	net *simnet.Network
}

// NewSimTransport binds a transport to simulator s with its own private
// network. Links default to 5ms ± 2ms (cross-site latency); options
// configure the network further (latency, loss, duplication) and win
// over the default.
func NewSimTransport(s *sim.Sim, opts ...simnet.Option) *SimTransport {
	defaults := []simnet.Option{
		simnet.WithLatency(simnet.Jitter{Base: 5 * time.Millisecond, Spread: 2 * time.Millisecond}),
	}
	return &SimTransport{s: s, net: simnet.New(s, append(defaults, opts...)...)}
}

// Sim returns the underlying simulator, for scheduling workload events and
// driving virtual time.
func (t *SimTransport) Sim() *sim.Sim { return t.s }

// Net exposes the simulated network for fault injection beyond what the
// Transport interface offers (loss, link latency, message counters).
func (t *SimTransport) Net() *simnet.Network { return t.net }

// SetLatency replaces the network's default link latency model.
func (t *SimTransport) SetLatency(l simnet.Latency) { t.net.SetLatency(l) }

// Now returns the current virtual time.
func (t *SimTransport) Now() sim.Time { return t.s.Now() }

// Node registers a node on the simulated network.
func (t *SimTransport) Node(id string, callTimeout time.Duration) Node {
	return &simNode{ep: rpc.NewEndpoint(t.net, simnet.NodeID(id), callTimeout)}
}

// Every schedules fn on the simulator's virtual clock.
func (t *SimTransport) Every(interval time.Duration, fn func()) (stop func()) {
	return t.s.Every(interval, fn)
}

// Await steps the event loop until ready closes. Cancellation is checked
// between events, so a context cancelled by a simulated event (or already
// cancelled on entry) is honoured deterministically; if the event queue
// drains with ready still open, Await reports ErrStalled.
func (t *SimTransport) Await(ctx context.Context, ready <-chan struct{}) error {
	for {
		select {
		case <-ready:
			return nil
		default:
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !t.s.Step() {
			select {
			case <-ready:
				return nil
			default:
				return ErrStalled
			}
		}
	}
}

// SetUp marks a node alive or crashed.
func (t *SimTransport) SetUp(id string, up bool) { t.net.SetUp(simnet.NodeID(id), up) }

// IsUp reports whether the node is alive.
func (t *SimTransport) IsUp(id string) bool { return t.net.IsUp(simnet.NodeID(id)) }

// Reachable reports whether a and b are in the same partition group.
func (t *SimTransport) Reachable(a, b string) bool {
	return t.net.Reachable(simnet.NodeID(a), simnet.NodeID(b))
}

// Partition splits the network into the given groups; nodes in different
// groups cannot exchange messages.
func (t *SimTransport) Partition(groups ...[]string) {
	conv := make([][]simnet.NodeID, len(groups))
	for i, g := range groups {
		ids := make([]simnet.NodeID, len(g))
		for j, id := range g {
			ids[j] = simnet.NodeID(id)
		}
		conv[i] = ids
	}
	t.net.Partition(conv...)
}

// Heal removes any partition.
func (t *SimTransport) Heal() { t.net.Heal() }

// simNode adapts an rpc.Endpoint to the Node interface.
type simNode struct {
	ep *rpc.Endpoint
}

func (n *simNode) ID() string    { return string(n.ep.ID()) }
func (n *simNode) Crashed() bool { return n.ep.Crashed() }

func (n *simNode) Handle(method string, h Handler) {
	n.ep.Handle(method, func(from simnet.NodeID, req any, reply func(any)) {
		h(string(from), req, reply)
	})
}

func (n *simNode) Call(to string, method string, req any, done func(resp any, ok bool)) {
	n.ep.Call(simnet.NodeID(to), method, req, done)
}

func (n *simNode) Broadcast(to []string, method string, req any, done func(resps []any, oks int)) {
	ids := make([]simnet.NodeID, len(to))
	for i, id := range to {
		ids[i] = simnet.NodeID(id)
	}
	n.ep.Broadcast(ids, method, req, done)
}
