package core

import (
	"reflect"
	"testing"

	"repro/internal/oplog"
	"repro/internal/sim"
	"repro/internal/uniq"
)

func wireEntry(i int) oplog.Entry {
	return oplog.Entry{
		ID:   uniq.ID("e-" + string(rune('a'+i))),
		Kind: "deposit",
		Key:  "acct-42",
		Note: "wire test",
		Lam:  uint64(100 + i),
		At:   sim.Time(1e9 + int64(i)),
		Arg:  int64(-7 * i),
	}
}

// TestWireMessageRoundTrip pins that every replica-to-replica message
// survives encode→decode byte-exactly, and that MessageSize predicts the
// encoded length (the framing layer preallocates with it).
func TestWireMessageRoundTrip(t *testing.T) {
	msgs := []any{
		pushReq{Entries: []oplog.Entry{wireEntry(0), wireEntry(1), wireEntry(2)}},
		pushReq{}, // empty push: legal, if pointless
		pushAck{OK: true},
		pushAck{OK: false},
		admitReq{Op: wireEntry(3)},
		admitAck{OK: true},
		admitAck{OK: false},
		applyReq{Op: wireEntry(4)},
	}
	for _, msg := range msgs {
		buf, err := AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		if got, want := len(buf), MessageSize(msg); got != want {
			t.Errorf("%T: encoded %d bytes, MessageSize said %d", msg, got, want)
		}
		back, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		// pushReq{} decodes with a non-nil empty slice; normalize.
		if p, ok := back.(pushReq); ok && len(p.Entries) == 0 {
			back = pushReq{}
		}
		if !reflect.DeepEqual(msg, back) {
			t.Errorf("%T round trip: sent %+v, got %+v", msg, msg, back)
		}
	}
}

// TestWireMessageRejectsDamage pins that framing damage is an error, not
// a silent misdecode: truncation, trailing garbage, unknown tags, and
// unencodable types all fail loudly.
func TestWireMessageRejectsDamage(t *testing.T) {
	buf, err := AppendMessage(nil, pushReq{Entries: []oplog.Entry{wireEntry(0)}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeMessage(buf[:cut]); err == nil {
			t.Errorf("decode of %d/%d-byte truncation succeeded", cut, len(buf))
		}
	}
	if _, err := DecodeMessage(append(append([]byte(nil), buf...), 0xFF)); err == nil {
		t.Error("decode with trailing garbage succeeded")
	}
	if _, err := DecodeMessage([]byte{0x7E, 0x01}); err == nil {
		t.Error("decode of unknown tag succeeded")
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("decode of empty buffer succeeded")
	}
	if _, err := AppendMessage(nil, struct{ X int }{1}); err == nil {
		t.Error("encode of a non-wire type succeeded")
	}
}
