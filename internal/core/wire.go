package core

// The wire codec: binary encode/decode for the replica-to-replica
// messages (gossip push, sync admit, sync apply, and their acks) so a
// transport that crosses process boundaries — internal/netx's TCP
// transport — can carry exactly the traffic the in-process transports
// pass by reference. The per-entry bytes reuse the oplog binary codec,
// the same encoding the disk journal frames; a field added to
// oplog.Entry fails loudly in both codecs' tests instead of silently
// diverging between disk and wire.
//
// The message types themselves stay unexported: the codec is the only
// surface a transport needs, and it keeps the message set closed — an
// unknown tag on the wire is a protocol error, never a silent skip.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/oplog"
)

// Message tags. The tag is the first byte of every encoded message;
// appending a new message type means appending a tag here, a case in
// AppendMessage and DecodeMessage, and a round-trip in wire_test.go.
const (
	wireTagPush     = 1 // pushReq: anti-entropy journal suffix
	wireTagPushAck  = 2 // pushAck: durable-absorb acknowledgement
	wireTagAdmit    = 3 // admitReq: sync-coordination admission probe
	wireTagAdmitAck = 4 // admitAck
	wireTagApply    = 5 // applyReq: sync-coordination apply
)

// AppendMessage appends the binary encoding of one wire message to buf
// and returns the extended slice. It errors on anything that is not one
// of the engine's replica-to-replica messages — a transport asked to
// carry an unknown payload is misconfigured, and that should be loud.
func AppendMessage(buf []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case pushReq:
		buf = append(buf, wireTagPush)
		buf = binary.AppendUvarint(buf, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			buf = binary.AppendUvarint(buf, uint64(oplog.EntrySize(e)))
			buf = oplog.AppendEntry(buf, e)
		}
		return buf, nil
	case pushAck:
		return append(buf, wireTagPushAck, encodeBool(m.OK)), nil
	case admitReq:
		return appendEntryMsg(buf, wireTagAdmit, m.Op), nil
	case admitAck:
		return append(buf, wireTagAdmitAck, encodeBool(m.OK)), nil
	case applyReq:
		return appendEntryMsg(buf, wireTagApply, m.Op), nil
	}
	return nil, fmt.Errorf("core: cannot encode message type %T", msg)
}

// MessageSize reports the exact encoded length of msg, so a framing
// layer can preallocate its buffer (and its length prefix) in one pass.
// Unknown types report 0; AppendMessage is where they fail loudly.
func MessageSize(msg any) int {
	switch m := msg.(type) {
	case pushReq:
		n := 1 + uvarintSize(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			es := oplog.EntrySize(e)
			n += uvarintSize(uint64(es)) + es
		}
		return n
	case pushAck, admitAck:
		return 2
	case admitReq:
		return entryMsgSize(m.Op)
	case applyReq:
		return entryMsgSize(m.Op)
	}
	return 0
}

// DecodeMessage decodes one wire message occupying the whole of b.
// Trailing bytes are an error: a frame that decodes but does not consume
// its payload is corrupt.
func DecodeMessage(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("core: empty wire message")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case wireTagPush:
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, fmt.Errorf("core: truncated push count")
		}
		b = b[sz:]
		// Cap the preallocation: n comes off the wire, and a corrupt count
		// must not become a giant allocation before decode fails.
		capHint := n
		if capHint > 4096 {
			capHint = 4096
		}
		entries := make([]oplog.Entry, 0, capHint)
		for i := uint64(0); i < n; i++ {
			var e oplog.Entry
			var err error
			e, b, err = decodeSizedEntry(b)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
		if len(b) != 0 {
			return nil, fmt.Errorf("core: %d trailing bytes after push", len(b))
		}
		return pushReq{Entries: entries}, nil
	case wireTagPushAck:
		ok, err := decodeBoolMsg(b, "push ack")
		return pushAck{OK: ok}, err
	case wireTagAdmit:
		op, err := decodeEntryMsg(b, "admit")
		return admitReq{Op: op}, err
	case wireTagAdmitAck:
		ok, err := decodeBoolMsg(b, "admit ack")
		return admitAck{OK: ok}, err
	case wireTagApply:
		op, err := decodeEntryMsg(b, "apply")
		return applyReq{Op: op}, err
	}
	return nil, fmt.Errorf("core: unknown wire message tag %d", tag)
}

func appendEntryMsg(buf []byte, tag byte, e oplog.Entry) []byte {
	buf = append(buf, tag)
	buf = binary.AppendUvarint(buf, uint64(oplog.EntrySize(e)))
	return oplog.AppendEntry(buf, e)
}

func entryMsgSize(e oplog.Entry) int {
	es := oplog.EntrySize(e)
	return 1 + uvarintSize(uint64(es)) + es
}

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func encodeBool(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// decodeSizedEntry decodes one length-prefixed entry from the front of
// b, returning the remainder.
func decodeSizedEntry(b []byte) (oplog.Entry, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return oplog.Entry{}, nil, fmt.Errorf("core: truncated entry frame")
	}
	e, err := oplog.DecodeEntry(b[sz : sz+int(n)])
	if err != nil {
		return oplog.Entry{}, nil, err
	}
	return e, b[sz+int(n):], nil
}

func decodeEntryMsg(b []byte, what string) (oplog.Entry, error) {
	e, rest, err := decodeSizedEntry(b)
	if err != nil {
		return oplog.Entry{}, err
	}
	if len(rest) != 0 {
		return oplog.Entry{}, fmt.Errorf("core: %d trailing bytes after %s", len(rest), what)
	}
	return e, nil
}

func decodeBoolMsg(b []byte, what string) (bool, error) {
	if len(b) != 1 {
		return false, fmt.Errorf("core: bad %s length %d", what, len(b))
	}
	return b[0] != 0, nil
}
