package core

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/sim"
)

// replicaFS builds a fault-injecting filesystem that fails every write
// under the given replica's store directory with err while the flag is
// set — the "this one disk is full" fault, scoped so peers stay healthy.
func replicaFS(rep string, flag *atomic.Bool, err error) faultfs.FS {
	marker := string(os.PathSeparator) + rep + string(os.PathSeparator)
	return faultfs.New(faultfs.OS, 1, func(op faultfs.Op) faultfs.Decision {
		if flag.Load() && strings.Contains(op.Path, marker) {
			switch op.Kind {
			case faultfs.OpWrite, faultfs.OpWriteAt, faultfs.OpCreate, faultfs.OpSync:
				return faultfs.Decision{Err: err}
			}
		}
		return faultfs.Decision{}
	})
}

// TestDegradedReadOnlyMode: an ENOSPC commit failure must not kill the
// replica (the old fail-fast). It enters degraded read-only mode —
// writes decline with the typed retryable reason, reads keep serving
// the published fold snapshot, gossip pauses — and Rejoin brings it
// back once the disk heals, with no accepted operation lost.
func TestDegradedReadOnlyMode(t *testing.T) {
	var full atomic.Bool
	dir := t.TempDir()
	s := sim.New(7)
	c := New[counterState](counterApp{}, nil,
		WithSim(s), WithReplicas(3), WithDurability(dir),
		WithStoreFS(replicaFS("r1", &full, syscall.ENOSPC)))
	defer c.Close()

	for i := 0; i < 6; i++ {
		mustSubmit(t, c, i%3, NewOp("credit", "k", 1))
	}
	convergeSim(t, s, c)
	pre := c.Replica(1).State()["k"]

	full.Store(true)
	res, err := c.Submit(context.Background(), 1, NewOp("credit", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != ReasonDegraded || !res.Retryable {
		t.Fatalf("submit on full disk = %+v, want retryable ReasonDegraded decline", res)
	}
	r1 := c.Replica(1)
	if !r1.Degraded() {
		t.Fatal("replica did not enter degraded mode")
	}
	if r1.node.Crashed() {
		t.Fatal("degraded replica was killed; degradation must not crash the node")
	}
	if !strings.Contains(r1.DegradedReason(), "no space") {
		t.Fatalf("DegradedReason = %q, want the ENOSPC detail", r1.DegradedReason())
	}
	detail, deg := c.ShardDegraded(0)
	if !deg || !strings.Contains(detail, "r1") {
		t.Fatalf("ShardDegraded = (%q, %v), want r1 detail", detail, deg)
	}
	if got := c.M.Degraded.Value(); got != 1 {
		t.Fatalf("Metrics.Degraded = %d, want 1", got)
	}

	// Reads keep serving at least everything accepted before the fault.
	if got := r1.State()["k"]; got < pre {
		t.Fatalf("degraded read = %d, want >= %d", got, pre)
	}
	// Later writes decline immediately with the same typed reason.
	res, err = c.Submit(context.Background(), 1, NewOp("credit", "k", 1))
	if err != nil || res.Accepted || res.Reason != ReasonDegraded || !res.Retryable {
		t.Fatalf("second submit = %+v err=%v, want immediate retryable decline", res, err)
	}
	// Healthy peers keep accepting, and gossip must neither wedge nor
	// push phantoms into (or out of) the degraded replica.
	mustSubmit(t, c, 0, NewOp("credit", "k", 1))
	c.GossipRound()
	s.Run()

	full.Store(false)
	if err := c.Rejoin(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if r1.Degraded() {
		t.Fatal("replica still degraded after Rejoin")
	}
	if _, deg := c.ShardDegraded(0); deg {
		t.Fatal("shard still reports degraded after Rejoin")
	}
	mustSubmit(t, c, 1, NewOp("credit", "k", 1))
	convergeSim(t, s, c)
	// 6 pre-fault + 1 at r0 during degradation + 1 post-rejoin; the two
	// declined phantoms must be gone everywhere.
	if n := r1.OpCount(); n != 8 {
		t.Fatalf("ops after rejoin = %d, want 8", n)
	}
	if got := r1.State()["k"]; got != 8 {
		t.Fatalf("state after rejoin = %d, want 8", got)
	}
}

// TestUnknownStoreErrorStillFailsFast: only recoverable disk errors
// degrade; damage this code cannot classify keeps the old §2.2
// discipline — crash, wiping the phantoms.
func TestUnknownStoreErrorStillFailsFast(t *testing.T) {
	var broken atomic.Bool
	dir := t.TempDir()
	s := sim.New(11)
	c := New[counterState](counterApp{}, nil,
		WithSim(s), WithReplicas(3), WithDurability(dir),
		WithStoreFS(replicaFS("r1", &broken, errors.New("firmware exploded"))))
	defer c.Close()
	mustSubmit(t, c, 1, NewOp("credit", "k", 1))

	broken.Store(true)
	res, err := c.Submit(context.Background(), 1, NewOp("credit", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Retryable || res.Reason == ReasonDegraded {
		t.Fatalf("unclassifiable failure = %+v, want a non-retryable crash decline", res)
	}
	r1 := c.Replica(1)
	if r1.Degraded() {
		t.Fatal("unclassifiable failure degraded instead of failing fast")
	}
	if !r1.node.Crashed() {
		t.Fatal("unclassifiable failure did not crash the replica")
	}
}

// TestDegradedLiveReprobeRejoins: on the live transport a degraded
// replica re-probes its store with backoff and rejoins by itself once
// the disk heals — no operator Rejoin call.
func TestDegradedLiveReprobeRejoins(t *testing.T) {
	var full atomic.Bool
	dir := t.TempDir()
	c := New[counterState](counterApp{}, nil,
		WithReplicas(3), WithDurability(dir),
		WithStoreFS(replicaFS("r1", &full, syscall.ENOSPC)))
	defer c.Close()
	mustSubmit(t, c, 1, NewOp("credit", "k", 1))

	full.Store(true)
	res, err := c.Submit(context.Background(), 1, NewOp("credit", "k", 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("submit on a full disk was accepted")
	}
	if !res.Retryable || res.Reason != ReasonDegraded {
		t.Fatalf("decline = %+v, want retryable ReasonDegraded", res)
	}

	full.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err = c.Submit(context.Background(), 1, NewOp("credit", "k", 1))
		if err == nil && res.Accepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never rejoined: last result %+v err=%v", res, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if c.Replica(1).Degraded() {
		t.Fatal("replica accepted a write while still flagged degraded")
	}
}
