package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/sim"
)

// Handler serves one RPC method on a Node. reply must be invoked exactly
// once per request; it may fire immediately or after further round trips.
type Handler func(from string, req any, reply func(resp any))

// Node is one addressable participant on a Transport: it serves methods
// and issues calls with a per-call timeout. A call that receives no reply
// within the timeout resolves with ok=false — the only way a fail-fast
// world lets you observe a crash (§2.2).
type Node interface {
	// ID returns the node's name.
	ID() string
	// Crashed reports whether the node is currently down.
	Crashed() bool
	// Handle registers the handler for method. Registering a method twice
	// panics.
	Handle(method string, h Handler)
	// Call invokes method on node to. done fires exactly once: with the
	// response and ok=true, or with nil and ok=false on timeout. done may
	// be nil for fire-and-forget notifications.
	Call(to string, method string, req any, done func(resp any, ok bool))
	// Broadcast calls method on every node in to, invoking done once with
	// the responses that arrived in time after all calls resolve.
	Broadcast(to []string, method string, req any, done func(resps []any, oks int))
}

// Transport is the seam between the replication engine and the world that
// carries its messages and its clock. Two implementations ship with the
// package: SimTransport runs replicas on the deterministic discrete-event
// simulator (every experiment uses it), and LiveTransport runs them on
// real goroutines and wall-clock time so benchmarks can exercise true
// concurrency. The same Cluster code runs unchanged on either.
type Transport interface {
	// Now returns the transport's current time: virtual for the simulator,
	// elapsed wall clock for the live transport.
	Now() sim.Time
	// Node registers a node and returns its handle. Registering the same
	// id twice panics.
	Node(id string, callTimeout time.Duration) Node
	// Every schedules fn to run every interval until the returned stop
	// function is called.
	Every(interval time.Duration, fn func()) (stop func())
	// Await blocks until ready is closed or ctx is done, driving whatever
	// machinery the transport needs to make progress (the simulator's
	// event loop; nothing for real goroutines). It returns nil when ready
	// closed, ctx.Err() on cancellation, or ErrStalled if the transport
	// can prove no further progress is possible.
	Await(ctx context.Context, ready <-chan struct{}) error
	// SetUp marks a node alive or crashed, for fault injection.
	SetUp(id string, up bool)
	// IsUp reports whether the node is alive.
	IsUp(id string) bool
	// Reachable reports whether a message from a to b would currently be
	// routed (it says nothing about b being up at delivery time).
	Reachable(a, b string) bool
}

// Scatterer is an optional Transport capability: run independent work
// functions to completion, in parallel when the transport's world allows
// it. The sharded SubmitBatch uses it to fan a batch out across shards —
// the live transport runs one goroutine per function so shard groups
// ingest concurrently; the simulator deliberately does not implement it
// and falls back to sequential dispatch, keeping runs deterministic.
type Scatterer interface {
	Scatter(fns []func())
}

// WallClocked is an optional Transport capability: implementations
// return true when they run on real time with real goroutines (as
// LiveTransport does), rather than on the deterministic simulator. The
// ingest pipeline consults it to decide whether background writer
// goroutines are safe; external transports (e.g. the TCP one) implement
// it to opt in to true pipelining.
type WallClocked interface {
	WallClocked() bool
}

// wallClocked reports whether tr runs on real time.
func wallClocked(tr Transport) bool {
	if _, ok := tr.(*LiveTransport); ok {
		return true
	}
	w, ok := tr.(WallClocked)
	return ok && w.WallClocked()
}

// ErrStalled reports that a blocking Submit can never resolve because the
// transport ran out of work to do — on the simulator, the event queue
// drained with the submit still pending.
var ErrStalled = errors.New("quicksand: submit stalled: transport has no further work")
