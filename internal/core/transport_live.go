package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// LiveTransport runs a cluster on real goroutines and wall-clock time:
// message deliveries run on per-node delivery workers, every timeout is a
// real timer. It trades the simulator's determinism for true parallelism,
// which is what `go test -bench` and cmd/quicksand-bench use to measure
// the engine at hardware speed. Nodes can still be crashed (SetUp) for
// fault-injection tests; partitions are not modelled — Reachable is
// always true between registered nodes.
//
// Delivery does not spawn a goroutine per message: each node owns an
// inbox drained by one coalescing worker goroutine, spawned when traffic
// arrives and exiting when the inbox empties. A gossip storm of N pushes
// at a node therefore costs one goroutine wake instead of N goroutine
// starts, and deliveries to one node run in arrival order. Handlers must
// not block waiting for another delivery to the same node (none of the
// engine's do — every reply and follow-up call is asynchronous).
type LiveTransport struct {
	mu      sync.RWMutex // guards the node map; hot paths take it read-only
	start   time.Time
	nodes   map[string]*liveNode
	latency atomic.Pointer[simnet.Latency] // optional artificial delivery delay; nil = none
}

// NewLiveTransport returns an empty live transport. Messages are delivered
// as fast as the scheduler allows unless a latency model is installed with
// SetLatency.
func NewLiveTransport() *LiveTransport {
	return &LiveTransport{
		start: time.Now(),
		nodes: make(map[string]*liveNode),
	}
}

// SetLatency installs an artificial per-message delivery delay, so a live
// cluster can approximate cross-site links while still running on real
// goroutines. A nil model removes the delay.
func (t *LiveTransport) SetLatency(l simnet.Latency) {
	if l == nil {
		t.latency.Store(nil)
		return
	}
	t.latency.Store(&l)
}

// Now returns the wall-clock time elapsed since the transport was built.
func (t *LiveTransport) Now() sim.Time { return sim.Time(time.Since(t.start)) }

// Node registers a node. Registering the same id twice panics.
func (t *LiveTransport) Node(id string, callTimeout time.Duration) Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.nodes[id]; dup {
		panic(fmt.Sprintf("quicksand: live node %q already registered", id))
	}
	n := &liveNode{
		t:        t,
		id:       id,
		timeout:  callTimeout,
		handlers: make(map[string]Handler),
		// Per-node RNG: latency sampling contends only with this node's
		// own sends, never serializing the whole transport on one lock.
		rng: rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(t.nodes))<<32)),
	}
	t.nodes[id] = n
	return n
}

// Every runs fn every interval on its own goroutine until stopped.
func (t *LiveTransport) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("quicksand: Every interval must be positive, got %v", interval))
	}
	ticker := time.NewTicker(interval)
	quit := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-ticker.C:
				fn()
			case <-quit:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			ticker.Stop()
			close(quit)
		})
	}
}

// Scatter runs every fn on its own goroutine and waits for all of them —
// the live half of the Scatterer capability, which lets a sharded
// SubmitBatch drive independent shard groups in true parallel.
func (t *LiveTransport) Scatter(fns []func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// Await blocks until ready closes or ctx is done. Real goroutines make
// their own progress, so there is nothing to drive.
func (t *LiveTransport) Await(ctx context.Context, ready <-chan struct{}) error {
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetUp marks a node alive or crashed. A crashed node sends nothing and
// receives nothing; messages in flight to it are dropped at delivery.
func (t *LiveTransport) SetUp(id string, up bool) { t.node(id).setUp(up) }

// IsUp reports whether the node is alive.
func (t *LiveTransport) IsUp(id string) bool { return !t.node(id).Crashed() }

// Reachable reports whether both nodes are registered; the live transport
// does not model partitions.
func (t *LiveTransport) Reachable(a, b string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, okA := t.nodes[a]
	_, okB := t.nodes[b]
	return okA && okB
}

func (t *LiveTransport) node(id string) *liveNode {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[id]
	if !ok {
		panic(fmt.Sprintf("quicksand: unknown live node %q", id))
	}
	return n
}

// liveNode is one participant on a LiveTransport. Handler registration
// happens before traffic starts; the handlers map is read-only afterwards.
type liveNode struct {
	t        *LiveTransport
	id       string
	timeout  time.Duration
	mu       sync.Mutex
	handlers map[string]Handler
	down     bool

	rngMu sync.Mutex
	rng   *rand.Rand // latency sampling; guarded by rngMu, not the transport lock

	inboxMu  sync.Mutex
	inbox    []func()
	draining bool
}

func (n *liveNode) ID() string { return n.id }

func (n *liveNode) Crashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

func (n *liveNode) setUp(up bool) {
	n.mu.Lock()
	n.down = !up
	n.mu.Unlock()
}

func (n *liveNode) Handle(method string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.handlers[method]; dup {
		panic(fmt.Sprintf("quicksand: duplicate handler for %q on %q", method, n.id))
	}
	n.handlers[method] = h
}

func (n *liveNode) handler(method string) Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.handlers[method]
	if !ok {
		panic(fmt.Sprintf("quicksand: node %q has no handler for %q", n.id, method))
	}
	return h
}

// sampleLatency draws this send's artificial delay from the sender's own
// RNG. The common no-model case is a single atomic load — no shared
// lock, no RNG touch — so sends from different nodes share nothing.
func (n *liveNode) sampleLatency() time.Duration {
	l := n.t.latency.Load()
	if l == nil {
		return 0
	}
	n.rngMu.Lock()
	d := (*l).Sample(n.rng)
	n.rngMu.Unlock()
	return d
}

// sendTo schedules fn on the receiver's delivery worker, after this
// sender's sampled artificial latency if a model is installed.
func (n *liveNode) sendTo(to *liveNode, fn func()) {
	if d := n.sampleLatency(); d > 0 {
		time.AfterFunc(d, func() { to.enqueue(fn) })
		return
	}
	to.enqueue(fn)
}

// enqueue appends fn to the node's inbox and ensures a worker is
// draining it. The worker is coalescing: it exists only while the inbox
// is non-empty, so idle nodes hold no goroutine and a burst of messages
// shares one.
func (n *liveNode) enqueue(fn func()) {
	n.inboxMu.Lock()
	n.inbox = append(n.inbox, fn)
	if n.draining {
		n.inboxMu.Unlock()
		return
	}
	n.draining = true
	n.inboxMu.Unlock()
	go n.drainInbox()
}

// drainInbox runs queued deliveries in arrival order until the inbox
// empties, then exits.
func (n *liveNode) drainInbox() {
	for {
		n.inboxMu.Lock()
		batch := n.inbox
		if len(batch) == 0 {
			n.draining = false
			n.inboxMu.Unlock()
			return
		}
		n.inbox = nil
		n.inboxMu.Unlock()
		for _, fn := range batch {
			fn()
		}
	}
}

// Call matches the fail-fast semantics of the simulated rpc layer: a
// crashed sender sends nothing (the caller observes a timeout), a crashed
// receiver drops the message, and a reply landing after the deadline is
// discarded.
func (n *liveNode) Call(to string, method string, req any, done func(resp any, ok bool)) {
	var once sync.Once
	fire := func(resp any, ok bool) {
		once.Do(func() {
			if done != nil {
				done(resp, ok)
			}
		})
	}
	timer := time.AfterFunc(n.timeout, func() { fire(nil, false) })
	if n.Crashed() {
		return // a stopped process sends nothing; the timer reports it
	}
	peer := n.t.node(to)
	n.sendTo(peer, func() {
		if peer.Crashed() {
			return
		}
		replied := false
		peer.handler(method)(n.id, req, func(resp any) {
			if replied {
				panic(fmt.Sprintf("quicksand: double reply to %q on %q", method, peer.id))
			}
			replied = true
			if n.Crashed() {
				return // response to a crashed caller is lost
			}
			peer.sendTo(n, func() {
				timer.Stop()
				fire(resp, true)
			})
		})
	})
}

func (n *liveNode) Broadcast(to []string, method string, req any, done func(resps []any, oks int)) {
	if len(to) == 0 {
		done(nil, 0)
		return
	}
	var mu sync.Mutex
	var resps []any
	oks, remaining := 0, len(to)
	for _, peer := range to {
		n.Call(peer, method, req, func(resp any, ok bool) {
			mu.Lock()
			if ok {
				resps = append(resps, resp)
				oks++
			}
			remaining--
			last := remaining == 0
			r, o := resps, oks
			mu.Unlock()
			if last {
				done(r, o)
			}
		})
	}
}
