package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// LiveTransport runs a cluster on real goroutines and wall-clock time:
// every message delivery is a goroutine, every timeout a real timer. It
// trades the simulator's determinism for true parallelism, which is what
// `go test -bench` and cmd/quicksand-bench use to measure the engine at
// hardware speed. Nodes can still be crashed (SetUp) for fault-injection
// tests; partitions are not modelled — Reachable is always true between
// registered nodes.
type LiveTransport struct {
	mu      sync.Mutex
	start   time.Time
	nodes   map[string]*liveNode
	latency simnet.Latency // optional artificial delivery delay
	rng     *rand.Rand     // guarded by mu, used only for latency sampling
}

// NewLiveTransport returns an empty live transport. Messages are delivered
// as fast as the scheduler allows unless a latency model is installed with
// SetLatency.
func NewLiveTransport() *LiveTransport {
	return &LiveTransport{
		start: time.Now(),
		nodes: make(map[string]*liveNode),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetLatency installs an artificial per-message delivery delay, so a live
// cluster can approximate cross-site links while still running on real
// goroutines. A nil model removes the delay.
func (t *LiveTransport) SetLatency(l simnet.Latency) {
	t.mu.Lock()
	t.latency = l
	t.mu.Unlock()
}

// Now returns the wall-clock time elapsed since the transport was built.
func (t *LiveTransport) Now() sim.Time { return sim.Time(time.Since(t.start)) }

// Node registers a node. Registering the same id twice panics.
func (t *LiveTransport) Node(id string, callTimeout time.Duration) Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.nodes[id]; dup {
		panic(fmt.Sprintf("quicksand: live node %q already registered", id))
	}
	n := &liveNode{t: t, id: id, timeout: callTimeout, handlers: make(map[string]Handler)}
	t.nodes[id] = n
	return n
}

// Every runs fn every interval on its own goroutine until stopped.
func (t *LiveTransport) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("quicksand: Every interval must be positive, got %v", interval))
	}
	ticker := time.NewTicker(interval)
	quit := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-ticker.C:
				fn()
			case <-quit:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			ticker.Stop()
			close(quit)
		})
	}
}

// Scatter runs every fn on its own goroutine and waits for all of them —
// the live half of the Scatterer capability, which lets a sharded
// SubmitBatch drive independent shard groups in true parallel.
func (t *LiveTransport) Scatter(fns []func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// Await blocks until ready closes or ctx is done. Real goroutines make
// their own progress, so there is nothing to drive.
func (t *LiveTransport) Await(ctx context.Context, ready <-chan struct{}) error {
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetUp marks a node alive or crashed. A crashed node sends nothing and
// receives nothing; messages in flight to it are dropped at delivery.
func (t *LiveTransport) SetUp(id string, up bool) { t.node(id).setUp(up) }

// IsUp reports whether the node is alive.
func (t *LiveTransport) IsUp(id string) bool { return !t.node(id).Crashed() }

// Reachable reports whether both nodes are registered; the live transport
// does not model partitions.
func (t *LiveTransport) Reachable(a, b string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, okA := t.nodes[a]
	_, okB := t.nodes[b]
	return okA && okB
}

func (t *LiveTransport) node(id string) *liveNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	n, ok := t.nodes[id]
	if !ok {
		panic(fmt.Sprintf("quicksand: unknown live node %q", id))
	}
	return n
}

// deliver runs fn on a fresh goroutine, after the sampled artificial
// latency if a model is installed.
func (t *LiveTransport) deliver(fn func()) {
	t.mu.Lock()
	l := t.latency
	var d time.Duration
	if l != nil {
		d = l.Sample(t.rng)
	}
	t.mu.Unlock()
	if d > 0 {
		time.AfterFunc(d, fn)
		return
	}
	go fn()
}

// liveNode is one participant on a LiveTransport. Handler registration
// happens before traffic starts; the handlers map is read-only afterwards.
type liveNode struct {
	t        *LiveTransport
	id       string
	timeout  time.Duration
	mu       sync.Mutex
	handlers map[string]Handler
	down     bool
}

func (n *liveNode) ID() string { return n.id }

func (n *liveNode) Crashed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down
}

func (n *liveNode) setUp(up bool) {
	n.mu.Lock()
	n.down = !up
	n.mu.Unlock()
}

func (n *liveNode) Handle(method string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.handlers[method]; dup {
		panic(fmt.Sprintf("quicksand: duplicate handler for %q on %q", method, n.id))
	}
	n.handlers[method] = h
}

func (n *liveNode) handler(method string) Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.handlers[method]
	if !ok {
		panic(fmt.Sprintf("quicksand: node %q has no handler for %q", n.id, method))
	}
	return h
}

// Call matches the fail-fast semantics of the simulated rpc layer: a
// crashed sender sends nothing (the caller observes a timeout), a crashed
// receiver drops the message, and a reply landing after the deadline is
// discarded.
func (n *liveNode) Call(to string, method string, req any, done func(resp any, ok bool)) {
	var once sync.Once
	fire := func(resp any, ok bool) {
		once.Do(func() {
			if done != nil {
				done(resp, ok)
			}
		})
	}
	timer := time.AfterFunc(n.timeout, func() { fire(nil, false) })
	if n.Crashed() {
		return // a stopped process sends nothing; the timer reports it
	}
	peer := n.t.node(to)
	n.t.deliver(func() {
		if peer.Crashed() {
			return
		}
		replied := false
		peer.handler(method)(n.id, req, func(resp any) {
			if replied {
				panic(fmt.Sprintf("quicksand: double reply to %q on %q", method, peer.id))
			}
			replied = true
			if n.Crashed() {
				return // response to a crashed caller is lost
			}
			n.t.deliver(func() {
				timer.Stop()
				fire(resp, true)
			})
		})
	})
}

func (n *liveNode) Broadcast(to []string, method string, req any, done func(resps []any, oks int)) {
	if len(to) == 0 {
		done(nil, 0)
		return
	}
	var mu sync.Mutex
	var resps []any
	oks, remaining := 0, len(to)
	for _, peer := range to {
		n.Call(peer, method, req, func(resp any, ok bool) {
			mu.Lock()
			if ok {
				resps = append(resps, resp)
				oks++
			}
			remaining--
			last := remaining == 0
			r, o := resps, oks
			mu.Unlock()
			if last {
				done(r, o)
			}
		})
	}
}
