package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/uniq"
)

// counterApp is the simplest commutative application: per-key running
// sums of credits and debits.
type counterApp struct{}

type counterState map[string]int64

func (counterApp) Init() counterState { return counterState{} }

func (counterApp) Step(s counterState, op oplog.Entry) counterState {
	// Fold builds a fresh state each time, but Step receives the shared
	// accumulator; copy-on-first-write keeps replicas independent.
	ns := make(counterState, len(s)+1)
	for k, v := range s {
		ns[k] = v
	}
	switch op.Kind {
	case "credit":
		ns[op.Key] += op.Arg
	case "debit":
		ns[op.Key] -= op.Arg
	}
	return ns
}

// noOverdraft declines debits the local guess can't cover and reports
// accounts below zero after merges.
func noOverdraft() Rule[counterState] {
	return Rule[counterState]{
		Name: "no-overdraft",
		Admit: func(s counterState, op oplog.Entry) bool {
			if op.Kind != "debit" {
				return true
			}
			return s[op.Key] >= op.Arg
		},
		Violated: func(s counterState) []Violation {
			var out []Violation
			for k, v := range s {
				if v < 0 {
					out = append(out, Violation{Detail: fmt.Sprintf("account %s overdrawn", k), Amount: -v})
				}
			}
			return out
		},
	}
}

func newTestCluster(seed int64, replicas int, rules ...Rule[counterState]) (*sim.Sim, *Cluster[counterState]) {
	s := sim.New(seed)
	c := New[counterState](counterApp{}, rules, WithSim(s), WithReplicas(replicas))
	return s, c
}

func submit(t *testing.T, s *sim.Sim, c *Cluster[counterState], rep int, kind, key string, arg int64, pol policy.Policy) Result {
	t.Helper()
	res, err := c.Submit(context.Background(), rep, NewOp(kind, key, arg), WithPolicy(pol))
	if err != nil {
		t.Fatalf("submit error: %v", err)
	}
	s.Run() // drain events left after the result resolved
	return res
}

func TestAsyncSubmitIsImmediate(t *testing.T) {
	s, c := newTestCluster(1, 3)
	res := submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysAsync())
	if !res.Accepted {
		t.Fatalf("declined: %s", res.Reason)
	}
	if res.Latency != 0 {
		t.Fatalf("async latency = %v, want 0 (local guess)", res.Latency)
	}
	if c.Replica(0).State()["acct"] != 100 {
		t.Fatal("op not applied locally")
	}
	if c.Replica(1).OpCount() != 0 {
		t.Fatal("async op leaked to peer without gossip")
	}
}

func TestSyncSubmitReachesAllReplicas(t *testing.T) {
	s, c := newTestCluster(1, 3)
	res := submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysSync())
	if !res.Accepted {
		t.Fatalf("declined: %s", res.Reason)
	}
	if res.Latency == 0 {
		t.Fatal("sync submit cannot be latency-free")
	}
	for i := 0; i < 3; i++ {
		if c.Replica(i).State()["acct"] != 100 {
			t.Fatalf("replica %d missing sync op", i)
		}
	}
}

func TestSyncSubmitFailsWhenReplicaDown(t *testing.T) {
	s, c := newTestCluster(1, 3)
	c.Net().SetUp("r2", false)
	res := submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysSync())
	if res.Accepted {
		t.Fatal("sync submit succeeded with a replica down; must be conservative")
	}
	if c.M.SyncDeclined.Value() != 1 {
		t.Fatalf("SyncDeclined = %d", c.M.SyncDeclined.Value())
	}
	// The async path keeps working — availability vs consistency.
	res = submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysAsync())
	if !res.Accepted {
		t.Fatal("async submit must survive a down peer")
	}
}

func TestGossipConverges(t *testing.T) {
	s, c := newTestCluster(2, 4)
	for i := 0; i < 4; i++ {
		submit(t, s, c, i, "credit", "acct", int64(10*(i+1)), policy.AlwaysAsync())
	}
	if c.Converged() {
		t.Fatal("converged before any gossip?")
	}
	for round := 0; round < 4 && !c.Converged(); round++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged after n gossip rounds")
	}
	for i, st := range c.States() {
		if st["acct"] != 100 {
			t.Fatalf("replica %d state = %d, want 100", i, st["acct"])
		}
	}
}

func TestStateIndependentOfArrivalOrder(t *testing.T) {
	// The §7.6 property at the cluster level: different gossip paths,
	// same final state.
	s, c := newTestCluster(3, 3)
	submit(t, s, c, 0, "credit", "a", 5, policy.AlwaysAsync())
	submit(t, s, c, 1, "debit", "a", 3, policy.AlwaysAsync())
	submit(t, s, c, 2, "credit", "b", 7, policy.AlwaysAsync())
	for round := 0; round < 3; round++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
	states := c.States()
	for i := 1; i < len(states); i++ {
		if states[i]["a"] != states[0]["a"] || states[i]["b"] != states[0]["b"] {
			t.Fatalf("replica states diverge: %v vs %v", states[i], states[0])
		}
	}
	if states[0]["a"] != 2 || states[0]["b"] != 7 {
		t.Fatalf("final state wrong: %v", states[0])
	}
}

func TestAdmitDeclinesLocally(t *testing.T) {
	s, c := newTestCluster(4, 2, noOverdraft())
	res := submit(t, s, c, 0, "debit", "acct", 50, policy.AlwaysAsync())
	if res.Accepted {
		t.Fatal("overdraft admitted against empty local state")
	}
	if res.Reason == "" {
		t.Fatal("declined result must carry a reason")
	}
	if c.M.Declined.Value() != 1 {
		t.Fatalf("Declined = %d", c.M.Declined.Value())
	}
}

func TestProbabilisticEnforcementProducesApology(t *testing.T) {
	// Two replicas each locally admit a 60-cent debit against a 100-cent
	// balance — each guess is fine alone, together they overdraw: the
	// §6.2 replicated-check-clearing anomaly.
	s, c := newTestCluster(5, 2, noOverdraft())
	if !submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysAsync()).Accepted {
		t.Fatal("seed credit failed")
	}
	for r := 0; r < 2; r++ {
		c.GossipRound()
		s.Run()
	}
	if !submit(t, s, c, 0, "debit", "acct", 60, policy.AlwaysAsync()).Accepted {
		t.Fatal("debit at r0 declined")
	}
	if !submit(t, s, c, 1, "debit", "acct", 60, policy.AlwaysAsync()).Accepted {
		t.Fatal("debit at r1 declined (r1 has not seen r0's debit)")
	}
	for r := 0; r < 2; r++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
	if got := c.States()[0]["acct"]; got != -20 {
		t.Fatalf("merged balance = %d, want -20", got)
	}
	if c.Apologies.Total() != 1 {
		t.Fatalf("apologies = %d, want exactly 1 (deduped across replicas)", c.Apologies.Total())
	}
}

func TestSyncPolicyPreventsTheApology(t *testing.T) {
	// Same scenario as above but the second debit coordinates: the
	// remote replica knows the truth and refuses.
	s, c := newTestCluster(6, 2, noOverdraft())
	submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysAsync())
	for r := 0; r < 2; r++ {
		c.GossipRound()
		s.Run()
	}
	submit(t, s, c, 0, "debit", "acct", 60, policy.AlwaysAsync())
	res := submit(t, s, c, 1, "debit", "acct", 60, policy.AlwaysSync())
	if res.Accepted {
		t.Fatal("coordinated debit should have been refused by r0")
	}
	for r := 0; r < 2; r++ {
		c.GossipRound()
		s.Run()
	}
	if c.Apologies.Total() != 0 {
		t.Fatalf("apologies = %d, want 0 under coordination", c.Apologies.Total())
	}
}

func TestThresholdPolicyRoutesByAmount(t *testing.T) {
	s, c := newTestCluster(7, 3)
	pol := policy.Threshold(10_000_00) // $10,000 in cents
	small := submit(t, s, c, 0, "credit", "acct", 500_00, pol)
	big := submit(t, s, c, 0, "credit", "acct", 25_000_00, pol)
	if !small.Accepted || !big.Accepted {
		t.Fatal("submits failed")
	}
	if small.Decision != policy.Async && small.Latency != 0 {
		t.Fatal("small check should clear locally")
	}
	if big.Latency == 0 {
		t.Fatal("big check must pay coordination latency")
	}
	if c.M.SyncAccepted.Value() != 1 {
		t.Fatalf("SyncAccepted = %d", c.M.SyncAccepted.Value())
	}
}

func TestPartitionedReplicasConvergeAfterHeal(t *testing.T) {
	s, c := newTestCluster(8, 4)
	c.Net().Partition([]simnet.NodeID{"r0", "r1"}, []simnet.NodeID{"r2", "r3"})
	submit(t, s, c, 0, "credit", "a", 1, policy.AlwaysAsync())
	submit(t, s, c, 2, "credit", "a", 2, policy.AlwaysAsync())
	for r := 0; r < 4; r++ {
		c.GossipRound()
		s.Run()
	}
	if c.Converged() {
		t.Fatal("converged across a partition?")
	}
	c.Net().Heal()
	for r := 0; r < 4 && !c.Converged(); r++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged after heal")
	}
	if c.States()[0]["a"] != 3 {
		t.Fatalf("merged state = %v", c.States()[0])
	}
}

func TestCrashedReplicaRefusesSubmits(t *testing.T) {
	s, c := newTestCluster(9, 2)
	c.Net().SetUp("r0", false)
	res := submit(t, s, c, 0, "credit", "a", 1, policy.AlwaysAsync())
	if res.Accepted {
		t.Fatal("crashed replica accepted a submit")
	}
	if res.Reason != "replica down" {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestCrashedReplicaCatchesUpAfterRestart(t *testing.T) {
	s, c := newTestCluster(10, 3)
	c.Net().SetUp("r2", false)
	submit(t, s, c, 0, "credit", "a", 42, policy.AlwaysAsync())
	c.GossipRound()
	s.Run()
	c.Net().SetUp("r2", true)
	for r := 0; r < 3 && !c.Converged(); r++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("restarted replica never caught up")
	}
	if c.Replica(2).State()["a"] != 42 {
		t.Fatal("restarted replica state wrong")
	}
}

func TestLedgerRecordsGuessesAndMemories(t *testing.T) {
	s, c := newTestCluster(11, 2)
	submit(t, s, c, 0, "credit", "a", 1, policy.AlwaysAsync())
	rep := c.Replica(0)
	if rep.Ledger.Count(1) != 1 { // apology.Guess
		t.Fatalf("guesses = %d, want 1", rep.Ledger.Count(1))
	}
	if rep.Ledger.Count(0) != 1 { // apology.Memory
		t.Fatalf("memories = %d, want 1", rep.Ledger.Count(0))
	}
	c.GossipRound()
	s.Run()
	other := c.Replica(1)
	if other.Ledger.Count(0) != 1 {
		t.Fatal("gossiped op not recorded as memory at peer")
	}
	if other.Ledger.Count(1) != 0 {
		t.Fatal("peer recorded a guess it never made")
	}
}

func TestGossipIncrementalTransfer(t *testing.T) {
	s, c := newTestCluster(12, 2)
	submit(t, s, c, 0, "credit", "a", 1, policy.AlwaysAsync())
	c.GossipRound()
	s.Run()
	moved := c.M.OpsTransferred.Value()
	// A second round with nothing new must not resend the op.
	c.GossipRound()
	s.Run()
	if c.M.OpsTransferred.Value() != moved {
		t.Fatalf("idle gossip re-transferred ops: %d -> %d", moved, c.M.OpsTransferred.Value())
	}
}

// TestPropConvergenceUnderRandomGossip: any op mix at any replicas, any
// random gossip schedule — once quiesced and fully gossiped, all replicas
// agree and the balance equals credits minus debits.
func TestPropConvergenceUnderRandomGossip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, c := newTestCluster(seed, 3)
		var want int64
		for i := 0; i < 20; i++ {
			rep := r.Intn(3)
			arg := int64(r.Intn(50))
			kind := "credit"
			if r.Intn(2) == 0 {
				kind = "debit"
			}
			c.SubmitAsync(rep, NewOp(kind, "acct", arg), nil, WithPolicy(policy.AlwaysAsync()))
			if kind == "credit" {
				want += arg
			} else {
				want -= arg
			}
			if r.Intn(3) == 0 {
				c.GossipRound()
			}
			s.Run()
		}
		for i := 0; i < 6 && !c.Converged(); i++ {
			c.GossipRound()
			s.Run()
		}
		if !c.Converged() {
			return false
		}
		for _, st := range c.States() {
			if st["acct"] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStartGossipPeriodic(t *testing.T) {
	s, c := newTestCluster(13, 3)
	submit(t, s, c, 0, "credit", "a", 1, policy.AlwaysAsync())
	stop := c.StartGossip(10 * time.Millisecond)
	s.RunFor(100 * time.Millisecond)
	stop()
	s.Run()
	if !c.Converged() {
		t.Fatal("periodic gossip did not converge")
	}
	if c.M.GossipRounds.Value() == 0 {
		t.Fatal("no gossip rounds counted")
	}
}

func TestSubmitAsyncIdempotentRetry(t *testing.T) {
	s, c := newTestCluster(20, 2)
	op := oplog.Entry{ID: "check-42", Kind: "credit", Key: "acct", Arg: 10}
	var first, second Result
	c.SubmitAsync(0, op, func(r Result) { first = r }, WithPolicy(policy.AlwaysAsync()))
	s.Run()
	// The same uniquified op presented again (a client retry) must be
	// accepted without double-applying.
	c.SubmitAsync(0, op, func(r Result) { second = r }, WithPolicy(policy.AlwaysAsync()))
	s.Run()
	if !first.Accepted || !second.Accepted {
		t.Fatalf("accepted = %v/%v", first.Accepted, second.Accepted)
	}
	if c.Replica(0).OpCount() != 1 {
		t.Fatalf("op recorded %d times", c.Replica(0).OpCount())
	}
	if c.Replica(0).State()["acct"] != 10 {
		t.Fatalf("state = %v, double-applied", c.Replica(0).State())
	}
}

func TestLamportOrderMakesCausesFoldFirst(t *testing.T) {
	// A replica that sees a credit and then accepts a debit must fold the
	// credit first at EVERY replica, even one that receives them in the
	// same gossip batch — the Lamport ingress stamp carries the causality.
	s, c := newTestCluster(21, 2, noOverdraft())
	if !submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysAsync()).Accepted {
		t.Fatal("credit declined")
	}
	if !submit(t, s, c, 0, "debit", "acct", 60, policy.AlwaysAsync()).Accepted {
		t.Fatal("debit declined")
	}
	for i := 0; i < 2; i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
	// If the debit folded before the credit anywhere, the no-overdraft
	// sweep would have flagged a (spurious) violation.
	if c.Apologies.Total() != 0 {
		t.Fatalf("spurious violations: %d — causality lost in fold order", c.Apologies.Total())
	}
	op0 := c.Replica(1).Ops().Entries()
	if op0[0].Kind != "credit" || op0[1].Kind != "debit" {
		t.Fatalf("fold order at peer = %s,%s", op0[0].Kind, op0[1].Kind)
	}
}

func TestSyncDeclinedByRemoteAdmit(t *testing.T) {
	// r1 knows about a debit that makes the coordinated op violate; the
	// sync path must surface the remote refusal.
	s, c := newTestCluster(22, 2, noOverdraft())
	submit(t, s, c, 1, "credit", "acct", 50, policy.AlwaysAsync())
	// r0 (balance unknown = 0 locally) tries a coordinated debit of 40:
	// its own Admit refuses first (local state empty).
	res := submit(t, s, c, 0, "debit", "acct", 40, policy.AlwaysSync())
	if res.Accepted {
		t.Fatal("debit accepted with empty local state")
	}
	// Now seed r0 so local admit passes but remote would overdraw.
	submit(t, s, c, 0, "credit", "acct", 100, policy.AlwaysAsync())
	submit(t, s, c, 1, "debit", "acct", 50, policy.AlwaysAsync()) // r1 balance now 0
	res = submit(t, s, c, 0, "debit", "acct", 80, policy.AlwaysSync())
	if res.Accepted {
		t.Fatal("remote replica should have refused (its view: 0 - 80 < 0)")
	}
	if res.Reason == "" || res.Decision != policy.Sync {
		t.Fatalf("result = %+v", res)
	}
}

// TestDerivedWorkDedupedByUniquifier reproduces §5.4's "irrational
// exuberance": processing a purchase order stimulates scheduling a
// shipment; two replicas may both get enthusiastic, but deriving the
// shipment's uniquifier from the order's identity makes the duplicate
// "identified as the knowledge sloshes through the network."
func TestDerivedWorkDedupedByUniquifier(t *testing.T) {
	s, c := newTestCluster(30, 2)
	po := oplog.Entry{ID: "po-123", Kind: "credit", Key: "orders", Arg: 1}
	c.SubmitAsync(0, po, func(Result) {}, WithPolicy(policy.AlwaysAsync()))
	s.Run()
	c.GossipRound()
	s.Run()

	// BOTH replicas react to the purchase order by scheduling a shipment.
	// The shipment op's ID is functionally dependent on the order's —
	// not freshly generated — so the two submissions are one operation.
	shipID := "po-123/shipment"
	for rep := 0; rep < 2; rep++ {
		c.SubmitAsync(rep, oplog.Entry{ID: uniq.ID(shipID), Kind: "credit", Key: "shipments", Arg: 1},
			func(r Result) {
				if !r.Accepted {
					t.Errorf("replica %d shipment refused", rep)
				}
			}, WithPolicy(policy.AlwaysAsync()))
		s.Run()
	}
	for i := 0; i < 3 && !c.Converged(); i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
	for i, st := range c.States() {
		if st["shipments"] != 1 {
			t.Fatalf("replica %d scheduled %d shipments, want exactly 1", i, st["shipments"])
		}
	}
}

// ---------------------------------------------------------------------------
// Checkpointed incremental fold engine.
//
// hashApp is a deliberately order-SENSITIVE fold over a plain value state:
// acc = acc*31 + Arg. It is the sharpest oracle for the fold engine — any
// entry folded twice, skipped, or folded out of canonical order changes
// the hash. (Real Apps must commute; the engine itself must not rely on
// it.) int64 is plainly copyable, so the engine checkpoints it without a
// Snapshotter.

type hashApp struct{}

func (hashApp) Init() int64                        { return 0 }
func (hashApp) Step(s int64, op oplog.Entry) int64 { return s*31 + op.Arg }

// admitAll forces every submit to derive state without constraining it.
func admitAll[S any]() Rule[S] {
	return Rule[S]{Name: "admit-all", Admit: func(S, oplog.Entry) bool { return true }}
}

// oracle re-derives a replica's state from scratch, bypassing the cache.
func oracle(r *Replica[int64]) int64 {
	return oplog.Fold(r.Ops(), hashApp{}.Init(), hashApp{}.Step)
}

// TestFoldStepsLinearInNewEntries is the complexity regression test: n
// rule-checked submits must cost O(n) App.Step invocations in total, not
// O(n²) — each submit folds only the entries beyond the watermark.
func TestFoldStepsLinearInNewEntries(t *testing.T) {
	const n = 400
	s := sim.New(1)
	c := New[int64](hashApp{}, []Rule[int64]{admitAll[int64]()}, WithSim(s), WithReplicas(1))
	for i := 0; i < n; i++ {
		if _, err := c.Submit(context.Background(), 0, NewOp("op", "k", int64(i))); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	steps := c.M.FoldSteps.Value()
	if steps > 3*n {
		t.Fatalf("FoldSteps = %d for %d submits; admission is replaying the ledger (O(n²))", steps, n)
	}
	if c.Replica(0).State() != oracle(c.Replica(0)) {
		t.Fatal("cached state diverged from full refold")
	}

	// The same workload under WithFullRefold pays quadratically — the
	// baseline the checkpoint engine exists to beat.
	s2 := sim.New(1)
	c2 := New[int64](hashApp{}, []Rule[int64]{admitAll[int64]()}, WithSim(s2), WithReplicas(1), WithFullRefold())
	for i := 0; i < n; i++ {
		if _, err := c2.Submit(context.Background(), 0, NewOp("op", "k", int64(i))); err != nil {
			t.Fatal(err)
		}
		s2.Run()
	}
	if full := c2.M.FoldSteps.Value(); full < int64(n)*int64(n)/4 {
		t.Fatalf("full-refold FoldSteps = %d; baseline unexpectedly cheap, benchmark claim is hollow", full)
	}
	if c.Replica(0).State() != c2.Replica(0).State() {
		t.Fatal("incremental and full-refold clusters disagree on the same workload")
	}
}

// TestRewindOnBehindWatermarkMerge: an entry whose Lamport stamp sorts
// into the already-folded past must rewind the checkpoint, and the
// re-derived state must equal a from-genesis fold.
func TestRewindOnBehindWatermarkMerge(t *testing.T) {
	s := sim.New(2)
	c := New[int64](hashApp{}, nil, WithSim(s), WithReplicas(1))
	rep := c.Replica(0)
	c.SubmitAsync(0, oplog.Entry{ID: "late", Kind: "op", Arg: 7, Lam: 10}, nil, WithPolicy(policy.AlwaysAsync()))
	s.Run()
	if got, want := rep.State(), oracle(rep); got != want {
		t.Fatalf("state = %d, oracle %d", got, want)
	}
	// Now an entry that sorts BEFORE the folded one arrives (gossip from a
	// replica whose clock lagged).
	c.SubmitAsync(0, oplog.Entry{ID: "early", Kind: "op", Arg: 3, Lam: 1}, nil, WithPolicy(policy.AlwaysAsync()))
	s.Run()
	if c.M.FoldRewinds.Value() == 0 {
		t.Fatal("behind-watermark entry did not rewind the checkpoint")
	}
	if got, want := rep.State(), oracle(rep); got != want {
		t.Fatalf("state after rewind = %d, oracle %d", got, want)
	}
	if rep.State() != 3*31+7 {
		t.Fatalf("fold order wrong after rewind: %d", rep.State())
	}
}

// TestPeriodicCheckpointsBoundReplay: with a tight checkpoint cadence, a
// behind-watermark merge near the tail replays from a recent snapshot,
// not genesis.
func TestPeriodicCheckpointsBoundReplay(t *testing.T) {
	const n = 100
	s := sim.New(3)
	c := New[int64](hashApp{}, nil, WithSim(s), WithReplicas(1), WithFoldCheckpointEvery(10))
	rep := c.Replica(0)
	for i := 0; i < n; i++ {
		c.SubmitAsync(0, oplog.Entry{ID: uniq.ID(fmt.Sprintf("op-%03d", i)), Kind: "op", Arg: 1, Lam: uint64(10 + 2*i)}, nil, WithPolicy(policy.AlwaysAsync()))
		s.Run()
		rep.State() // fold as we go, taking periodic snapshots
	}
	if c.M.FoldCheckpoints.Value() == 0 {
		t.Fatal("no periodic checkpoints taken")
	}
	before := c.M.FoldSteps.Value()
	// Land an entry between the last two ops: behind the watermark, but
	// far after the second-newest snapshot.
	c.SubmitAsync(0, oplog.Entry{ID: "late", Kind: "op", Arg: 5, Lam: uint64(10 + 2*(n-1) - 1)}, nil, WithPolicy(policy.AlwaysAsync()))
	s.Run()
	if got, want := rep.State(), oracle(rep); got != want {
		t.Fatalf("state = %d, oracle %d", got, want)
	}
	replay := c.M.FoldSteps.Value() - before
	if replay > 25 {
		t.Fatalf("rewind replayed %d steps; snapshots are not bounding the replay (cadence 10)", replay)
	}
}

// snapshotApp is counterApp plus the Snapshotter extension: map state,
// in-place Step, deep-copy Snapshot — the shape real applications take.
type snapshotApp struct{}

func (snapshotApp) Init() counterState { return counterState{} }
func (snapshotApp) Step(s counterState, op oplog.Entry) counterState {
	switch op.Kind {
	case "credit":
		s[op.Key] += op.Arg
	case "debit":
		s[op.Key] -= op.Arg
	}
	return s
}
func (snapshotApp) Snapshot(s counterState) counterState {
	c := make(counterState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// TestSnapshotterKeepsReturnedStatesStable: with an in-place-mutating
// Step and a Snapshotter, states handed out by State() must not change as
// later operations fold in.
func TestSnapshotterKeepsReturnedStatesStable(t *testing.T) {
	s := sim.New(4)
	c := New[counterState](snapshotApp{}, nil, WithSim(s), WithReplicas(1))
	if _, err := c.Submit(context.Background(), 0, NewOp("credit", "a", 10)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	snap := c.Replica(0).State()
	if snap["a"] != 10 {
		t.Fatalf("state = %v", snap)
	}
	if _, err := c.Submit(context.Background(), 0, NewOp("credit", "a", 5)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if now := c.Replica(0).State(); now["a"] != 15 {
		t.Fatalf("live state = %v", now)
	}
	if snap["a"] != 10 {
		t.Fatalf("previously returned state mutated in place: %v", snap)
	}
}

// TestPropIncrementalFoldMatchesOracle is the engine's soundness
// property: under random Lamport stamps (forcing behind-watermark merges),
// random replicas, duplicate IDs, and random gossip, every replica's
// cached state always equals a from-genesis refold of its operation set.
func TestPropIncrementalFoldMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		c := New[int64](hashApp{}, nil, WithSim(s), WithReplicas(3), WithFoldCheckpointEvery(4))
		for i := 0; i < 60; i++ {
			op := oplog.Entry{
				ID:   uniq.ID(fmt.Sprintf("op-%02d", r.Intn(40))), // dup IDs happen
				Kind: "op",
				Arg:  int64(r.Intn(9) + 1),
				Lam:  uint64(r.Intn(6) + 1), // adversarial: no ingress stamping
			}
			c.SubmitAsync(r.Intn(3), op, nil, WithPolicy(policy.AlwaysAsync()))
			if r.Intn(3) == 0 {
				c.GossipRound()
			}
			s.Run()
			rep := c.Replica(r.Intn(3))
			if rep.State() != oracle(rep) {
				return false
			}
		}
		for i := 0; i < 6; i++ {
			c.GossipRound()
			s.Run()
		}
		for i := 0; i < 3; i++ {
			if c.Replica(i).State() != oracle(c.Replica(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTruncatedAfterAcks pins the journal memory bound: once every
// gossip peer has acknowledged a prefix, the replica releases it, so a
// long-lived replica's journal tracks the gossip lag, not the total op
// count.
func TestJournalTruncatedAfterAcks(t *testing.T) {
	const n = 200
	s, c := newTestCluster(40, 3)
	for i := 0; i < n; i++ {
		submit(t, s, c, i%3, "credit", fmt.Sprintf("k%d", i%10), 1, policy.AlwaysAsync())
		if i%20 == 0 {
			c.GossipRound()
			s.Run()
		}
	}
	// Quiesce: enough rounds for every push to be acked and reciprocated.
	for i := 0; i < 6; i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("not converged")
	}
	for i := 0; i < 3; i++ {
		rep := c.Replica(i)
		if rep.OpCount() != n {
			t.Fatalf("replica %d holds %d ops, want %d", i, rep.OpCount(), n)
		}
		if got := rep.JournalRetained(); got != 0 {
			t.Fatalf("replica %d retains %d journal entries after full acknowledgement, want 0", i, got)
		}
		if rep.JournalTruncated() < n {
			t.Fatalf("replica %d truncated only %d journal entries", i, rep.JournalTruncated())
		}
	}
}

// TestJournalHeldForCrashedPeer is the safety half: entries a crashed
// peer has not acknowledged must survive truncation, and the revived
// peer must still catch up from them.
func TestJournalHeldForCrashedPeer(t *testing.T) {
	s, c := newTestCluster(41, 3)
	c.Net().SetUp("r2", false)
	for i := 0; i < 30; i++ {
		submit(t, s, c, 0, "credit", "a", 1, policy.AlwaysAsync())
	}
	for i := 0; i < 4; i++ {
		c.GossipRound()
		s.Run()
	}
	// r1's journal: its successor r2 is down and has acked nothing, so the
	// 30 gossiped entries must all still be retained.
	if got := c.Replica(1).JournalRetained(); got < 30 {
		t.Fatalf("r1 retains %d journal entries with its peer down; prefix truncated too eagerly", got)
	}
	c.Net().SetUp("r2", true)
	for i := 0; i < 6 && !c.Converged(); i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("revived replica never caught up — truncation lost entries it needed")
	}
	if got := c.Replica(2).State()["a"]; got != 30 {
		t.Fatalf("revived replica state = %d, want 30", got)
	}
	for i := 0; i < 4; i++ {
		c.GossipRound()
		s.Run()
	}
	for i := 0; i < 3; i++ {
		if got := c.Replica(i).JournalRetained(); got != 0 {
			t.Fatalf("replica %d retains %d entries after the heal quiesced", i, got)
		}
	}
}

// TestShardRoutingAndIsolation exercises the sharded engine on the
// simulator: ops route to the shard owning their key, groups converge
// independently, and a sync submit coordinates only within its shard.
func TestShardRoutingAndIsolation(t *testing.T) {
	s := sim.New(42)
	c := New[counterState](counterApp{}, nil, WithSim(s), WithShards(4), WithReplicas(2))
	if c.Shards() != 4 || c.Replicas() != 2 {
		t.Fatalf("Shards/Replicas = %d/%d", c.Shards(), c.Replicas())
	}
	if got := c.ShardReplica(2, 1).ID(); got != "s2/r1" {
		t.Fatalf("sharded node id = %q, want s2/r1", got)
	}
	if got := c.ShardReplica(1, 0).Shard(); got != 1 {
		t.Fatalf("Shard() = %d, want 1", got)
	}
	const keys = 16
	for k := 0; k < keys; k++ {
		submit(t, s, c, 0, "credit", fmt.Sprintf("k%d", k), int64(k+1), policy.AlwaysAsync())
	}
	// Each op must have landed on exactly the shard that owns its key.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%d", k)
		home := c.ShardOf(key)
		for sh := 0; sh < c.Shards(); sh++ {
			got := c.ShardReplica(sh, 0).State()[key]
			want := int64(0)
			if sh == home {
				want = int64(k + 1)
			}
			if got != want {
				t.Fatalf("key %s on shard %d: state %d, want %d (home %d)", key, sh, got, want, home)
			}
		}
	}
	for i := 0; i < 4 && !c.Converged(); i++ {
		c.GossipRound()
		s.Run()
	}
	if !c.Converged() {
		t.Fatal("sharded cluster did not converge")
	}
	// A coordinated submit touches only its own group's replicas.
	res := submit(t, s, c, 0, "credit", "sync-key", 5, policy.AlwaysSync())
	if !res.Accepted {
		t.Fatalf("sync submit declined: %s", res.Reason)
	}
	home := c.ShardOf("sync-key")
	for sh := 0; sh < c.Shards(); sh++ {
		for i := 0; i < c.Replicas(); i++ {
			_, has := c.ShardReplica(sh, i).Ops().Get(res.Op.ID)
			if has != (sh == home) {
				t.Fatalf("sync op on shard %d replica %d: present=%v, home=%d", sh, i, has, home)
			}
		}
	}
	// Per-shard metrics saw the work; shards with no sync never coordinated.
	if c.ShardMetrics(home).SyncAccepted.Value() != 1 {
		t.Fatalf("home shard SyncAccepted = %d", c.ShardMetrics(home).SyncAccepted.Value())
	}
	var total int64
	for sh := 0; sh < c.Shards(); sh++ {
		total += c.ShardMetrics(sh).Accepted.Value()
	}
	if total != c.M.Accepted.Value() || total != keys+1 {
		t.Fatalf("shard metrics sum %d, cluster %d, want %d", total, c.M.Accepted.Value(), keys+1)
	}
}

// TestDuplicateLocalSubmitRecordsNoSecondGuess pins the ledger fix: a
// duplicate reaching submitLocal (a retry that raced past dispatch's
// idempotency check) must not record a second Guess for work that was
// only recorded once.
func TestDuplicateLocalSubmitRecordsNoSecondGuess(t *testing.T) {
	s := sim.New(5)
	c := New[counterState](snapshotApp{}, nil, WithSim(s), WithReplicas(1))
	rep := c.Replica(0)
	op := oplog.Entry{ID: "check-7", Kind: "credit", Key: "a", Arg: 1, Lam: 1}
	for i := 0; i < 2; i++ {
		var res Result
		rep.submitLocal(op, func(r Result) { res = r })
		if !res.Accepted {
			t.Fatalf("submitLocal #%d declined", i)
		}
	}
	if got := rep.Ledger.Count(1); got != 1 { // apology.Guess
		t.Fatalf("guesses = %d, want 1 — duplicate accept re-recorded a guess", got)
	}
	if got := rep.Ledger.Count(0); got != 1 { // apology.Memory
		t.Fatalf("memories = %d, want 1", got)
	}
	if rep.State()["a"] != 1 {
		t.Fatal("duplicate applied twice")
	}
}
