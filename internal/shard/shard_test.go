package shard

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministic(t *testing.T) {
	a := NewRing([]string{"a", "b", "c"}, 16)
	b := NewRing([]string{"a", "b", "c"}, 16)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ok := a.Owner(key)
		ob, _ := b.Owner(key)
		if !ok || oa != ob {
			t.Fatalf("owner of %q differs across identical rings: %q vs %q", key, oa, ob)
		}
	}
}

func TestWalkVisitsDistinctMembers(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3}, 8)
	var visited []int
	r.Walk("some-key", func(m int) bool {
		visited = append(visited, m)
		return true
	})
	if len(visited) != 4 {
		t.Fatalf("walk visited %d members, want 4 distinct", len(visited))
	}
	seen := map[int]bool{}
	for _, m := range visited {
		if seen[m] {
			t.Fatalf("walk revisited member %d", m)
		}
		seen[m] = true
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing[string](nil, 8)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Walk("k", func(string) bool { t.Fatal("walked an empty ring"); return false })
}

func TestMapCoversAllShardsRoughlyEvenly(t *testing.T) {
	const n, keys = 4, 8000
	m := NewMap(n)
	if m.Shards() != n {
		t.Fatalf("Shards() = %d, want %d", m.Shards(), n)
	}
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		s := m.Of(fmt.Sprintf("key-%05d", i))
		if s < 0 || s >= n {
			t.Fatalf("Of returned out-of-range shard %d", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		// Each shard should hold a meaningful share: consistent hashing
		// with 64 vnodes lands well inside [half, double] of fair share.
		if c < keys/n/2 || c > keys/n*2 {
			t.Fatalf("shard %d holds %d of %d keys — badly unbalanced: %v", s, c, keys, counts)
		}
	}
}

func TestMapStableAcrossInstances(t *testing.T) {
	a, b := NewMap(8), NewMap(8)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("acct-%d", i)
		if a.Of(key) != b.Of(key) {
			t.Fatalf("key %q routed to %d and %d by identical maps", key, a.Of(key), b.Of(key))
		}
	}
}

func TestMapSingleShardShortCircuit(t *testing.T) {
	m := NewMap(1)
	for _, key := range []string{"", "a", "zzz"} {
		if m.Of(key) != 0 {
			t.Fatalf("single-shard map routed %q to %d", key, m.Of(key))
		}
	}
	if NewMap(0).Shards() != 1 || NewMap(-3).Shards() != 1 {
		t.Fatal("invalid shard counts must fall back to 1")
	}
}
