// Package shard implements consistent-hash key partitioning — the
// scale-out move of Building on Quicksand §6: once per-entity eventual
// consistency is accepted, "data is carved into uniquely keyed chunks"
// (§2.3) and each chunk lives with one replica group, so unrelated keys
// never share a lock, a ledger, or a gossip round.
//
// Ring is the general structure: a consistent-hash ring with virtual
// nodes, generic over the member type, lifted from the Dynamo
// reproduction (internal/dynamo) so both the store's preference lists
// and the replication engine's shard routing share one implementation.
// Map specializes it to the engine's need: a fixed number of shards and
// a pure key→shard function.
package shard

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"sort"
)

// Hash64 hashes a key to a ring position. FNV-1a of short, similar
// strings (vnode labels, sequential keys) barely avalanches, leaving
// points clustered on one arc; a murmur3 fmix64 finisher spreads them.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Ring is a consistent-hash ring with virtual nodes, the partitioning
// scheme of the Dynamo paper's §4.2. It is immutable after construction
// and safe for concurrent use.
type Ring[M cmp.Ordered] struct {
	points []point[M] // sorted by hash
}

type point[M cmp.Ordered] struct {
	hash   uint64
	member M
}

// NewRing places vnodes points per member on the ring. Construction is
// deterministic: the same members and vnodes always produce the same
// ring.
func NewRing[M cmp.Ordered](members []M, vnodes int) *Ring[M] {
	r := &Ring[M]{}
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point[M]{hash: Hash64(fmt.Sprintf("%v#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Walk visits distinct members clockwise from key's hash position until
// fn returns false.
func (r *Ring[M]) Walk(key string, fn func(M) bool) {
	if len(r.points) == 0 {
		return
	}
	h := Hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[M]bool)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		if !fn(p.member) {
			return
		}
	}
}

// Owner returns the first member clockwise from key — the key's home.
// ok is false only on an empty ring. Unlike Walk it allocates nothing:
// it sits on every submit's routing path.
func (r *Ring[M]) Owner(key string) (owner M, ok bool) {
	if len(r.points) == 0 {
		return owner, false
	}
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].member, true
}

// mapVNodes balances a Map's shards to within a few percent of each
// other for uniformly drawn keys without making construction costly.
const mapVNodes = 64

// Map routes keys to one of a fixed number of shards. It is a pure
// function of (shards, key): every caller that builds a Map with the
// same shard count routes every key identically — the invariant the
// replication engine's cross-run differential tests rest on. The
// single-shard Map short-circuits to shard 0 without hashing, so an
// unsharded cluster pays nothing for the seam.
type Map struct {
	n    int
	ring *Ring[int]
}

// NewMap builds a map over n shards (values below 1 fall back to 1).
func NewMap(n int) *Map {
	if n < 1 {
		n = 1
	}
	m := &Map{n: n}
	if n > 1 {
		members := make([]int, n)
		for i := range members {
			members[i] = i
		}
		m.ring = NewRing(members, mapVNodes)
	}
	return m
}

// Shards reports the shard count.
func (m *Map) Shards() int { return m.n }

// Of returns the shard that owns key, in [0, Shards()).
func (m *Map) Of(key string) int {
	if m.n == 1 {
		return 0
	}
	s, _ := m.ring.Owner(key)
	return s
}
