package netx

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
)

// TestFrameChecksumDetectsBitFlip: a single flipped payload bit must be
// rejected as errCorruptFrame, never decoded.
func TestFrameChecksumDetectsBitFlip(t *testing.T) {
	buf := frame(append([]byte{frameReq}, "some gossip payload worth protecting"...))
	// Sanity: the pristine frame round-trips.
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(buf))); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for bit := 0; bit < (len(buf)-frameHeader)*8; bit += 7 {
		bad := append([]byte(nil), buf...)
		bad[frameHeader+bit/8] ^= 1 << (bit % 8)
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(bad))); !errors.Is(err, errCorruptFrame) {
			t.Fatalf("flipping payload bit %d: err = %v, want errCorruptFrame", bit, err)
		}
	}
}

// TestManglerIsDeterministic: two manglers with the same seed and peer
// address make identical decisions over the same traffic — the property
// that makes a chaos run replayable.
func TestManglerIsDeterministic(t *testing.T) {
	f := Faults{Seed: 42, Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, BitFlip: 0.3}
	a, b := newMangler(f.Seed, "10.0.0.1:9000"), newMangler(f.Seed, "10.0.0.1:9000")
	fr := frame([]byte{frameHello, 1, 2, 3, 4, 5, 6, 7})
	for i := 0; i < 200; i++ {
		oa, ma := a.apply(f, fr)
		ob, mb := b.apply(f, fr)
		if ma != mb || len(oa) != len(ob) {
			t.Fatalf("step %d: decisions diverged (%v/%d vs %v/%d)", i, ma, len(oa), mb, len(ob))
		}
		for j := range oa {
			if !bytes.Equal(oa[j], ob[j]) {
				t.Fatalf("step %d: frame %d differs between same-seed manglers", i, j)
			}
		}
	}
	// A different peer address must yield a different schedule.
	c := newMangler(f.Seed, "10.0.0.2:9000")
	same := true
	for i := 0; i < 200 && same; i++ {
		oa, _ := a.apply(f, fr)
		oc, _ := c.apply(f, fr)
		same = len(oa) == len(oc)
	}
	if same {
		t.Fatal("distinct peers produced identical fault schedules")
	}
}

// TestSustainedManglingDegradesThenRecovers: under heavy seeded frame
// mangling in both directions nothing panics and no replica's state is
// poisoned — corrupt frames are counted and cost only a connection.
// Once the faults are switched off, gossip converges both sides.
func TestSustainedManglingDegradesThenRecovers(t *testing.T) {
	faults := Faults{Seed: 1, Drop: 0.2, Duplicate: 0.15, Reorder: 0.15, BitFlip: 0.25}
	trA, err := New(Config{Listen: "127.0.0.1:0", Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	trB, err := New(Config{Listen: "127.0.0.1:0", Faults: Faults{Seed: 2, Drop: 0.2, BitFlip: 0.25}})
	if err != nil {
		trA.Close()
		t.Fatal(err)
	}
	trA.AddPeer(core.NodeID(1, 0, 1), trB.Addr())
	trB.AddPeer(core.NodeID(1, 0, 0), trA.Addr())
	half := func(tr *Transport, idx int) *core.Cluster[counterState] {
		return core.New[counterState](counterApp{}, nil,
			core.WithTransport(tr), core.WithReplicas(2),
			core.WithLocalReplicas(idx),
			core.WithCallTimeout(200*time.Millisecond))
	}
	ca, cb := half(trA, 0), half(trB, 1)
	t.Cleanup(func() {
		ca.Close()
		cb.Close()
		trA.Close()
		trB.Close()
	})

	// A mangled episode: async ingest on both sides (always locally
	// accepted), plus sync submits that are allowed to fail — they must
	// decline within their timeout, not hang or crash anything.
	ctx := context.Background()
	var want int64
	for i := 0; i < 40; i++ {
		if _, err := ca.Submit(ctx, 0, core.NewOp("credit", "acct", 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := cb.Submit(ctx, 1, core.NewOp("credit", "acct", 1)); err != nil {
			t.Fatal(err)
		}
		want += 2
		if i%8 == 0 {
			if res, err := ca.Submit(ctx, 0, core.NewOp("credit", "acct", 1),
				core.WithPolicy(policy.AlwaysSync())); err == nil && res.Accepted {
				want++
			}
		}
		ca.GossipRound()
		cb.GossipRound()
		time.Sleep(5 * time.Millisecond)
	}

	mangledOut := func(tr *Transport) int64 {
		var n int64
		for _, s := range tr.PeerStats() {
			n += s.FramesMangled
		}
		return n
	}
	if mangledOut(trA) == 0 {
		t.Fatal("mangler never fired despite 25%+ fault rates")
	}
	// Bit flips from A must have been caught by B's checksum (and/or
	// vice versa); corruption is observable, not silent.
	if trA.CorruptFrames()+trB.CorruptFrames() == 0 {
		t.Fatal("no corrupt frames detected despite sustained bit flipping")
	}

	// The switch is replaced: faults off, links heal via backoff, and
	// anti-entropy must reconcile everything either side accepted.
	trA.SetFaults(Faults{})
	trB.SetFaults(Faults{})
	waitUntil(t, 20*time.Second, func() bool {
		ca.GossipRound()
		cb.GossipRound()
		return ca.States()[0]["acct"] == want && cb.States()[0]["acct"] == want
	}, "replicas did not converge after the mangling episode ended")
}
