// Package netx implements the Transport seam over real TCP sockets, so
// a cluster's replicas can live in different processes on different
// machines — the world Building on Quicksand actually describes, where
// messages are lost, peers die, and links slow down for real.
//
// A netx.Transport is one process's view of the cluster: the replicas it
// hosts ride an embedded in-process LiveTransport (local traffic never
// touches a socket), and every other replica is a configured peer
// address. Replica-to-replica messages — gossip pushes, sync-coordination
// admits and applies — cross the wire as length-prefixed binary frames
// using the core wire codec (which in turn reuses the oplog entry codec,
// the disk journal's own format).
//
// Failure semantics are deliberately those of the paper, not of TCP:
//   - every call carries the engine's own timeout; a silent peer is
//     observed as ok=false, never as a hung goroutine;
//   - writes carry deadlines, and a peer that stops draining its socket
//     fails the write instead of wedging the sender;
//   - a dead peer costs one dial attempt per backoff interval; frames
//     queued meanwhile are dropped — a partitioned replica in §2's
//     sense, degrading gossip to "catch up later", never blocking ingest;
//   - reconnection is automatic with exponential backoff, and the first
//     frame of every connection is an authenticated hello, so a stray
//     process cannot join the gossip mesh.
package netx

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Config wires one process into the cluster.
type Config struct {
	// Listen is the TCP address to accept peer traffic on. Empty means
	// this transport only dials out (a client-only process).
	Listen string
	// Peers maps remote node IDs (core.NodeID naming) to the TCP address
	// of the process hosting them. Several node IDs — all the replicas
	// one daemon hosts — typically share one address.
	Peers map[string]string
	// Token authenticates peer connections: both ends must present the
	// same value in their hello frame. Empty disables authentication.
	Token string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds every frame write (default 2s): a peer that
	// accepts the connection but stops reading fails fast.
	WriteTimeout time.Duration
	// MaxBackoff caps the reconnect backoff (default 2s; it starts at
	// 50ms and doubles per failed dial).
	MaxBackoff time.Duration
	// SendQueue bounds the per-peer outbound frame queue (default 1024).
	// When it fills — a dead or slow peer — further frames are dropped,
	// exactly like packets to a partitioned machine.
	SendQueue int
	// Logf, when set, receives connection lifecycle events (dials,
	// drops, auth failures). Nil means silent.
	Logf func(format string, args ...any)
	// Faults configures deterministic outbound link faults (see the
	// Faults type); the zero value injects nothing. Rates can be changed
	// later with SetFaults.
	Faults Faults
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 2 * time.Second
	}
	if out.WriteTimeout <= 0 {
		out.WriteTimeout = 2 * time.Second
	}
	if out.MaxBackoff <= 0 {
		out.MaxBackoff = 2 * time.Second
	}
	if out.SendQueue <= 0 {
		out.SendQueue = 1024
	}
	return out
}

// Transport carries one process's slice of the cluster over TCP. It
// implements core.Transport (and core.Scatterer); build it with New,
// register the locally hosted nodes through the cluster as usual
// (core.WithTransport + core.WithLocalReplicas), and Close it after the
// cluster.
type Transport struct {
	cfg   Config
	local *core.LiveTransport
	ln    net.Listener

	mu         sync.Mutex
	nodes      map[string]*netNode // locally hosted
	peers      map[string]*peer    // by address
	peerOf     map[string]*peer    // by remote node id
	remoteDown map[string]bool     // fault injection: remote ids marked down locally
	conns      map[net.Conn]bool   // accepted connections, for Close

	seq    atomic.Uint64
	callMu sync.Mutex
	calls  map[uint64]func(resp any, ok bool)

	faults        atomic.Pointer[Faults] // current outbound fault schedule
	corruptFrames atomic.Int64           // inbound frames rejected by the checksum

	closed chan struct{}
	wg     sync.WaitGroup
}

// New builds a transport and, if cfg.Listen is set, starts accepting
// peer connections immediately (the bound address is Addr, so ":0"
// works for tests).
func New(cfg Config) (*Transport, error) {
	t := &Transport{
		cfg:        cfg.withDefaults(),
		local:      core.NewLiveTransport(),
		nodes:      make(map[string]*netNode),
		peers:      make(map[string]*peer),
		peerOf:     make(map[string]*peer),
		remoteDown: make(map[string]bool),
		conns:      make(map[net.Conn]bool),
		calls:      make(map[uint64]func(any, bool)),
		closed:     make(chan struct{}),
	}
	f := t.cfg.Faults
	t.faults.Store(&f)
	for id, addr := range t.cfg.Peers {
		p, ok := t.peers[addr]
		if !ok {
			p = newPeer(t, addr)
			t.peers[addr] = p
			t.wg.Add(1)
			go p.run()
		}
		t.peerOf[id] = p
	}
	if t.cfg.Listen != "" {
		ln, err := net.Listen("tcp", t.cfg.Listen)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("netx: listen %s: %w", t.cfg.Listen, err)
		}
		t.ln = ln
		t.wg.Add(1)
		go t.acceptLoop()
	}
	return t, nil
}

// AddPeer registers (or re-addresses) one remote node after
// construction. Daemons normally configure Peers up front; tests and
// dynamically wired topologies use this to break the "both addresses
// must exist before either transport" cycle.
func (t *Transport) AddPeer(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, local := t.nodes[id]; local {
		panic(fmt.Sprintf("netx: node %q is hosted locally", id))
	}
	p, ok := t.peers[addr]
	if !ok {
		p = newPeer(t, addr)
		t.peers[addr] = p
		t.wg.Add(1)
		go p.run()
	}
	t.peerOf[id] = p
}

// SetFaults replaces the outbound fault schedule at runtime (the chaos
// scenarios use this to start and stop a mangling episode). The zero
// value turns injection off. Each link's rng persists across calls, so
// re-enabling the same rates continues the same deterministic schedule.
func (t *Transport) SetFaults(f Faults) {
	t.faults.Store(&f)
}

// CorruptFrames reports how many inbound frames this transport has
// rejected for a failed length or checksum check. Each one also cost a
// connection: corruption closes the link and lets backoff own recovery.
func (t *Transport) CorruptFrames() int64 { return t.corruptFrames.Load() }

// noteReadErr classifies one connection's fatal read error, counting
// checksum rejections so operators can see corruption as a number
// rather than a mystery of flapping links.
func (t *Transport) noteReadErr(conn net.Conn, err error) {
	if errors.Is(err, errCorruptFrame) {
		t.corruptFrames.Add(1)
		t.cfg.logf("netx: %s: closing link on corrupt frame: %v", conn.RemoteAddr(), err)
	}
}

// PeerStat is one outbound link's health snapshot: liveness plus the
// frame/byte counters and the propagation timestamp of the last
// successful write.
type PeerStat struct {
	Addr          string
	Up            bool
	FramesSent    int64
	BytesSent     int64
	FramesDropped int64
	FramesMangled int64 // frames the fault injector touched (dropped, duplicated, held, or flipped)
	Reconnects    int64
	LastSendNs    int64 // UnixNano of the last successful write; 0 before any
}

// PeerStats snapshots every configured outbound peer link, sorted by
// address for stable /metrics output.
func (t *Transport) PeerStats() []PeerStat {
	t.mu.Lock()
	out := make([]PeerStat, 0, len(t.peers))
	for addr, p := range t.peers {
		out = append(out, PeerStat{
			Addr:          addr,
			Up:            p.dialed.Load() && !p.down.Load(),
			FramesSent:    p.framesSent.Load(),
			BytesSent:     p.bytesSent.Load(),
			FramesDropped: p.framesDropped.Load(),
			FramesMangled: p.framesMangled.Load(),
			Reconnects:    p.reconnects.Load(),
			LastSendNs:    p.lastSendNs.Load(),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Addr reports the bound listen address ("" when not listening).
func (t *Transport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Close shuts the listener and every peer connection down and waits for
// the transport's goroutines. In-flight calls resolve through their
// timeouts; close the cluster first.
func (t *Transport) Close() error {
	select {
	case <-t.closed:
		return nil
	default:
	}
	close(t.closed)
	if t.ln != nil {
		t.ln.Close()
	}
	t.mu.Lock()
	for conn := range t.conns {
		conn.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}

// --- core.Transport ---

// Now returns wall-clock time elapsed since the transport was built.
func (t *Transport) Now() sim.Time { return t.local.Now() }

// Node registers a locally hosted node. Remote nodes are never
// registered here — they are Peers configuration.
func (t *Transport) Node(id string, callTimeout time.Duration) core.Node {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.nodes[id]; dup {
		panic(fmt.Sprintf("netx: node %q already registered", id))
	}
	if _, isPeer := t.peerOf[id]; isPeer {
		panic(fmt.Sprintf("netx: node %q is configured as a remote peer", id))
	}
	n := &netNode{
		t:        t,
		id:       id,
		timeout:  callTimeout,
		inner:    t.local.Node(id, callTimeout),
		handlers: make(map[string]core.Handler),
	}
	t.nodes[id] = n
	return n
}

// Every delegates periodic work (gossip schedules) to real timers.
func (t *Transport) Every(interval time.Duration, fn func()) (stop func()) {
	return t.local.Every(interval, fn)
}

// Scatter runs every fn on its own goroutine and waits — the live half
// of the Scatterer capability, same as LiveTransport.
func (t *Transport) Scatter(fns []func()) { t.local.Scatter(fns) }

// WallClocked opts in to the engine's pipelined (goroutine-backed)
// ingest path: this transport runs on real time.
func (t *Transport) WallClocked() bool { return true }

// Await blocks until ready closes or ctx is done; real goroutines make
// their own progress.
func (t *Transport) Await(ctx context.Context, ready <-chan struct{}) error {
	select {
	case <-ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SetUp marks a node alive or crashed. For a locally hosted node this is
// the LiveTransport's crash flag; for a remote node it is a local mark —
// this process stops sending to (and accepting liveness of) the peer,
// which is how tests inject a one-sided partition.
func (t *Transport) SetUp(id string, up bool) {
	t.mu.Lock()
	_, local := t.nodes[id]
	if !local {
		if _, known := t.peerOf[id]; !known {
			t.mu.Unlock()
			panic(fmt.Sprintf("netx: unknown node %q", id))
		}
		t.remoteDown[id] = !up
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.local.SetUp(id, up)
}

// IsUp reports liveness: the real crash flag for local nodes, and this
// process's best knowledge for remote ones — not marked down, and its
// peer link not currently failing its dials.
func (t *Transport) IsUp(id string) bool {
	t.mu.Lock()
	_, local := t.nodes[id]
	if !local {
		p, known := t.peerOf[id]
		down := t.remoteDown[id]
		t.mu.Unlock()
		if !known {
			panic(fmt.Sprintf("netx: unknown node %q", id))
		}
		return !down && !p.down.Load()
	}
	t.mu.Unlock()
	return t.local.IsUp(id)
}

// Reachable reports whether a message from a to b would currently be
// routed: both ends known to this process and neither marked down.
func (t *Transport) Reachable(a, b string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	known := func(id string) bool {
		if _, ok := t.nodes[id]; ok {
			return true
		}
		_, ok := t.peerOf[id]
		return ok && !t.remoteDown[id]
	}
	return known(a) && known(b)
}

func (t *Transport) isLocal(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.nodes[id]
	return ok
}

func (t *Transport) localNode(id string) *netNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nodes[id]
}

func (t *Transport) peerFor(id string) (p *peer, markedDown bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peerOf[id], t.remoteDown[id]
}

func (t *Transport) addCall(seq uint64, cb func(any, bool)) {
	t.callMu.Lock()
	t.calls[seq] = cb
	t.callMu.Unlock()
}

func (t *Transport) takeCall(seq uint64) func(any, bool) {
	t.callMu.Lock()
	cb := t.calls[seq]
	delete(t.calls, seq)
	t.callMu.Unlock()
	return cb
}

// --- the node ---

// netNode is one locally hosted participant. Local destinations ride the
// embedded LiveTransport (per-node inbox workers, artificial latency if
// any); remote destinations are encoded onto the peer's connection.
type netNode struct {
	t       *Transport
	id      string
	timeout time.Duration
	inner   core.Node

	hmu      sync.Mutex
	handlers map[string]core.Handler
}

func (n *netNode) ID() string    { return n.id }
func (n *netNode) Crashed() bool { return n.inner.Crashed() }

func (n *netNode) Handle(method string, h core.Handler) {
	// Register on the inner node (local callers) and in the transport's
	// own registry (frames arriving from peers).
	n.inner.Handle(method, h)
	n.hmu.Lock()
	defer n.hmu.Unlock()
	if _, dup := n.handlers[method]; dup {
		panic(fmt.Sprintf("netx: duplicate handler for %q on %q", method, n.id))
	}
	n.handlers[method] = h
}

func (n *netNode) handler(method string) core.Handler {
	n.hmu.Lock()
	defer n.hmu.Unlock()
	return n.handlers[method]
}

// Call matches the engine's fail-fast semantics across the socket: done
// fires exactly once, with the response, or with ok=false when the
// timeout expires, the peer is unreachable, or the frame could not be
// sent (a full queue or a dead link loses messages, it never blocks the
// caller).
func (n *netNode) Call(to string, method string, req any, done func(resp any, ok bool)) {
	if n.t.isLocal(to) {
		n.inner.Call(to, method, req, done)
		return
	}
	var once sync.Once
	fire := func(resp any, ok bool) {
		once.Do(func() {
			if done != nil {
				done(resp, ok)
			}
		})
	}
	timer := time.AfterFunc(n.timeout, func() { fire(nil, false) })
	if n.Crashed() {
		return // a stopped process sends nothing; the timer reports it
	}
	p, markedDown := n.t.peerFor(to)
	if p == nil {
		timer.Stop()
		panic(fmt.Sprintf("netx: node %q is neither local nor a configured peer", to))
	}
	if markedDown {
		return // locally partitioned from the peer; the timer reports it
	}
	seq := n.t.seq.Add(1)
	frame, err := encodeReq(seq, n.id, to, method, req)
	if err != nil {
		timer.Stop()
		panic(fmt.Sprintf("netx: %v", err)) // non-wire payload: a programming error
	}
	n.t.addCall(seq, func(resp any, ok bool) {
		timer.Stop()
		fire(resp, ok)
	})
	if !p.send(frame) {
		// The frame is already lost (queue full, link down, transport
		// closed): resolve now instead of waiting out the timer.
		if cb := n.t.takeCall(seq); cb != nil {
			cb(nil, false)
		}
	}
}

// Broadcast fans Call out and collects the responses that arrived in
// time, mirroring the in-process transports.
func (n *netNode) Broadcast(to []string, method string, req any, done func(resps []any, oks int)) {
	if len(to) == 0 {
		done(nil, 0)
		return
	}
	var mu sync.Mutex
	var resps []any
	oks, remaining := 0, len(to)
	for _, peer := range to {
		n.Call(peer, method, req, func(resp any, ok bool) {
			mu.Lock()
			if ok {
				resps = append(resps, resp)
				oks++
			}
			remaining--
			last := remaining == 0
			r, o := resps, oks
			mu.Unlock()
			if last {
				done(r, o)
			}
		})
	}
}

// --- inbound connections ---

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.conns[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *Transport) dropConn(conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// serveConn authenticates one inbound connection, then processes its
// request frames for the life of the connection. Responses are written
// back on the same connection, serialized under a write deadline.
func (t *Transport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer t.dropConn(conn)
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout + t.cfg.WriteTimeout))
	payload, err := readFrame(br)
	if err != nil || len(payload) == 0 || payload[0] != frameHello {
		t.cfg.logf("netx: %s: connection without hello rejected", conn.RemoteAddr())
		return
	}
	token, err := decodeHello(payload[1:])
	if err != nil || token != t.cfg.Token {
		t.cfg.logf("netx: %s: bad hello token rejected", conn.RemoteAddr())
		return
	}
	conn.SetReadDeadline(time.Time{})
	w := &connWriter{conn: conn, timeout: t.cfg.WriteTimeout}
	for {
		payload, err := readFrame(br)
		if err != nil {
			t.noteReadErr(conn, err)
			return
		}
		t.handleFrame(payload, w)
	}
}

// handleFrame dispatches one decoded frame: requests go to the target
// node's handler (whose asynchronous reply is written back on w),
// responses resolve their pending call. Damaged frames and frames for
// unknown or crashed nodes are dropped — the caller's timeout is the
// error path, exactly as for an in-process crashed node.
func (t *Transport) handleFrame(payload []byte, w *connWriter) {
	if len(payload) == 0 {
		return
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case frameReq:
		req, err := decodeReq(body)
		if err != nil {
			t.cfg.logf("netx: dropping bad request frame: %v", err)
			return
		}
		nd := t.localNode(req.to)
		if nd == nil || nd.Crashed() {
			return // unknown or crashed target: silence, the caller times out
		}
		h := nd.handler(req.method)
		if h == nil {
			t.cfg.logf("netx: node %s has no handler for %q", req.to, req.method)
			return
		}
		var replied atomic.Bool
		h(req.from, req.msg, func(resp any) {
			if replied.Swap(true) {
				panic(fmt.Sprintf("netx: double reply to %q on %q", req.method, req.to))
			}
			if nd.Crashed() {
				return // a reply from a crashed node is lost
			}
			out, err := encodeResp(req.seq, resp)
			if err != nil {
				t.cfg.logf("netx: cannot encode response to %q: %v", req.method, err)
				return
			}
			if err := w.write(out); err != nil {
				t.cfg.logf("netx: response write to %s failed: %v", req.from, err)
			}
		})
	case frameResp:
		seq, msg, err := decodeResp(body)
		if err != nil {
			t.cfg.logf("netx: dropping bad response frame: %v", err)
			return
		}
		if cb := t.takeCall(seq); cb != nil {
			cb(msg, true)
		}
	case frameHello:
		// Duplicate hello after authentication: harmless.
	default:
		t.cfg.logf("netx: dropping frame of unknown kind %d", kind)
	}
}

// --- outbound peer links ---

// peer owns the outbound connection to one remote address: a bounded
// send queue drained by a single writer goroutine that dials on demand,
// reconnects with exponential backoff, and drops frames while the link
// is down. Responses to this process's calls return on the same
// connection, consumed by a reader goroutine per established conn.
type peer struct {
	t      *Transport
	addr   string
	sendq  chan []byte
	down   atomic.Bool // last dial or write failed; cleared on reconnect
	mangle *mangler    // seeded fault state, owned by the writer goroutine

	// Link-health telemetry, exported per peer on the daemon's /metrics.
	framesSent    atomic.Int64
	bytesSent     atomic.Int64
	framesDropped atomic.Int64 // queue full, link down, or transport closed
	framesMangled atomic.Int64 // frames the fault injector dropped, duplicated, held, or flipped
	reconnects    atomic.Int64 // successful dials after the first
	dialed        atomic.Bool  // a dial has succeeded at least once
	lastSendNs    atomic.Int64 // wall clock (UnixNano) of the last successful write
}

func newPeer(t *Transport, addr string) *peer {
	return &peer{
		t:      t,
		addr:   addr,
		sendq:  make(chan []byte, t.cfg.SendQueue),
		mangle: newMangler(t.cfg.Faults.Seed, addr),
	}
}

// send enqueues one frame, dropping it when the queue is full or the
// transport is closed — a lossy link, never a blocking one.
func (p *peer) send(frame []byte) bool {
	select {
	case <-p.t.closed:
		p.framesDropped.Add(1)
		return false
	default:
	}
	select {
	case p.sendq <- frame:
		return true
	default:
		p.framesDropped.Add(1)
		return false
	}
}

// run is the writer goroutine: it drains the queue, dialing (with
// backoff) whenever the link is down. A failed write closes the
// connection and drops the frame; the engine's timeouts and gossip
// retries own redelivery.
//
// While disconnected, the writer also probes the peer on the backoff
// cadence independent of traffic. This matters because the engine stops
// *sending* to a peer it observes as down (gossip skips crashed nodes) —
// without an unprompted probe, a restarted peer would never be
// rediscovered and the partition would outlive the outage.
func (p *peer) run() {
	defer p.t.wg.Done()
	var conn net.Conn
	var lastDial time.Time
	backoff := 50 * time.Millisecond
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		var frame []byte
		if conn == nil {
			select {
			case <-p.t.closed:
				return
			case frame = <-p.sendq:
			case <-time.After(backoff): // reconnect probe, no traffic needed
			}
			if time.Since(lastDial) < backoff {
				continue // link recently failed: drop without redialing
			}
			lastDial = time.Now()
			c, err := p.dial()
			if err != nil {
				p.down.Store(true)
				backoff *= 2
				if backoff > p.t.cfg.MaxBackoff {
					backoff = p.t.cfg.MaxBackoff
				}
				p.t.cfg.logf("netx: dial %s failed (retry in %v): %v", p.addr, backoff, err)
				continue // the frame, if any, is dropped — a lossy link
			}
			conn = c
			p.down.Store(false)
			if p.dialed.Swap(true) {
				p.reconnects.Add(1)
			}
			backoff = 50 * time.Millisecond
			p.t.cfg.logf("netx: connected to %s", p.addr)
			if frame == nil {
				continue // probe tick: connection re-established, nothing to send
			}
		} else {
			select {
			case <-p.t.closed:
				return
			case frame = <-p.sendq:
			}
		}
		frames := [][]byte{frame}
		if f := *p.t.faults.Load(); f.active() {
			var mangled bool
			frames, mangled = p.mangle.apply(f, frame)
			if mangled {
				p.framesMangled.Add(1)
			}
			if d := p.mangle.delay(f); d > 0 {
				select {
				case <-p.t.closed:
					return
				case <-time.After(d):
				}
			}
		}
		for _, fr := range frames {
			if p.t.cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(p.t.cfg.WriteTimeout))
			}
			if _, err := conn.Write(fr); err != nil {
				p.t.cfg.logf("netx: write to %s failed: %v", p.addr, err)
				conn.Close()
				conn = nil
				p.down.Store(true)
				p.framesDropped.Add(1)
				break
			}
			p.framesSent.Add(1)
			p.bytesSent.Add(int64(len(fr)))
			p.lastSendNs.Store(time.Now().UnixNano())
		}
	}
}

// dial establishes and authenticates one outbound connection, and
// starts its response reader.
func (p *peer) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", p.addr, p.t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if p.t.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(p.t.cfg.WriteTimeout))
	}
	if _, err := conn.Write(encodeHello(p.t.cfg.Token)); err != nil {
		conn.Close()
		return nil, err
	}
	p.t.mu.Lock()
	p.t.conns[conn] = true
	p.t.mu.Unlock()
	p.t.wg.Add(1)
	go p.readLoop(conn)
	return conn, nil
}

// readLoop consumes response frames from one outbound connection until
// it dies. (A well-behaved peer sends only responses here; anything else
// goes through the same dispatcher and is handled or dropped.)
func (p *peer) readLoop(conn net.Conn) {
	defer p.t.wg.Done()
	defer p.t.dropConn(conn)
	w := &connWriter{conn: conn, timeout: p.t.cfg.WriteTimeout}
	br := bufio.NewReader(conn)
	for {
		payload, err := readFrame(br)
		if err != nil {
			p.t.noteReadErr(conn, err)
			return
		}
		p.t.handleFrame(payload, w)
	}
}
