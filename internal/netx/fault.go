package netx

// Link-level fault injection: a seeded mangler sits between the peer
// writer goroutine and the socket, so every frame this process sends can
// be dropped, duplicated, reordered, delayed, or bit-flipped under a
// deterministic schedule. The point is not to simulate one specific bad
// network but to prove the paper's stance that the transport is *always*
// lossy (§2): everything the engine survives under the mangler it must
// already survive in production, because retries, timeouts, and the
// frame checksum are the only delivery guarantees it ever had.
//
// Faults can be set at construction (Config.Faults) or flipped at
// runtime (Transport.SetFaults), which is what the frame-mangler chaos
// scenario uses to model a flaky switch being replaced mid-run.

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Faults configures the outbound frame mangler. All rates are
// probabilities in [0, 1]; the zero value injects nothing. Faults apply
// per *frame*, after the checksum is computed, so a bit flip is always
// detectable at the receiver.
type Faults struct {
	// Seed makes the fault schedule deterministic: the same seed, peer
	// set, and traffic produce the same drops and flips. Each peer link
	// derives its own rng from Seed and the peer address.
	Seed int64
	// Drop is the probability a frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is written twice back to back.
	Duplicate float64
	// Reorder is the probability a frame is held back and sent after the
	// next frame to the same peer (at most one frame held per link).
	Reorder float64
	// Delay is the probability a frame's write is stalled by a uniform
	// random duration up to MaxDelay.
	Delay float64
	// MaxDelay bounds an injected stall (default 10ms when Delay > 0).
	MaxDelay time.Duration
	// BitFlip is the probability one random payload bit is inverted. The
	// receiver's CRC32-C check catches the damage and closes the
	// connection, degrading the link instead of decoding garbage.
	BitFlip float64
}

// active reports whether any fault would ever fire.
func (f Faults) active() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Delay > 0 || f.BitFlip > 0
}

// mangler is one peer link's fault state: a persistent seeded rng plus
// the at-most-one held frame for reordering. It is owned exclusively by
// the peer's writer goroutine — no locking.
type mangler struct {
	rng  *rand.Rand
	held []byte
}

func newMangler(seed int64, addr string) *mangler {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return &mangler{rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))}
}

// apply decides one frame's fate under f, returning the frames to
// actually write (possibly none, possibly several) and whether any fault
// fired. A held (reordered) frame is released behind whatever the next
// frame's fate produces, so it cannot be starved forever while traffic
// flows.
func (m *mangler) apply(f Faults, frame []byte) (out [][]byte, mangled bool) {
	if f.BitFlip > 0 && m.rng.Float64() < f.BitFlip {
		frame = m.flip(frame)
		mangled = true
	}
	switch {
	case f.Drop > 0 && m.rng.Float64() < f.Drop:
		mangled = true // frame discarded
	case f.Duplicate > 0 && m.rng.Float64() < f.Duplicate:
		out = append(out, frame, frame)
		mangled = true
	case f.Reorder > 0 && m.held == nil && m.rng.Float64() < f.Reorder:
		m.held = frame
		return nil, true
	default:
		out = append(out, frame)
	}
	if m.held != nil {
		out = append(out, m.held)
		m.held = nil
	}
	return out, mangled
}

// delay returns the injected stall for one write, or 0.
func (m *mangler) delay(f Faults) time.Duration {
	if f.Delay <= 0 || m.rng.Float64() >= f.Delay {
		return 0
	}
	max := f.MaxDelay
	if max <= 0 {
		max = 10 * time.Millisecond
	}
	return time.Duration(m.rng.Int63n(int64(max))) + 1
}

// flip inverts one random bit of the payload (never the length prefix:
// the fault models data corruption the checksum must catch, not a
// framing desync that would only stall the reader until the conn dies).
func (m *mangler) flip(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	if len(out) <= frameHeader {
		return out
	}
	bit := m.rng.Intn((len(out) - frameHeader) * 8)
	out[frameHeader+bit/8] ^= 1 << (bit % 8)
	return out
}
