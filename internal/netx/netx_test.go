package netx

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/oplog"
	"repro/internal/policy"
)

// counterApp mirrors the engine's canonical test application: per-key
// running sums, commutative so replicas converge under any fold order.
type counterApp struct{}

type counterState map[string]int64

func (counterApp) Init() counterState { return counterState{} }

func (counterApp) Step(s counterState, op oplog.Entry) counterState {
	ns := make(counterState, len(s)+1)
	for k, v := range s {
		ns[k] = v
	}
	switch op.Kind {
	case "credit":
		ns[op.Key] += op.Arg
	case "debit":
		ns[op.Key] -= op.Arg
	}
	return ns
}

// twoProcessCluster builds the two halves of one 2-replica cluster, each
// half on its own TCP transport — the smallest honest model of two
// daemons (everything crosses real sockets, nothing shares memory but
// the test harness).
func twoProcessCluster(t *testing.T, token string) (trA, trB *Transport, ca, cb *core.Cluster[counterState]) {
	t.Helper()
	var err error
	if trA, err = New(Config{Listen: "127.0.0.1:0", Token: token}); err != nil {
		t.Fatal(err)
	}
	if trB, err = New(Config{Listen: "127.0.0.1:0", Token: token}); err != nil {
		trA.Close()
		t.Fatal(err)
	}
	trA.AddPeer(core.NodeID(1, 0, 1), trB.Addr())
	trB.AddPeer(core.NodeID(1, 0, 0), trA.Addr())
	half := func(tr *Transport, idx int) *core.Cluster[counterState] {
		return core.New[counterState](counterApp{}, nil,
			core.WithTransport(tr), core.WithReplicas(2),
			core.WithLocalReplicas(idx),
			core.WithCallTimeout(500*time.Millisecond))
	}
	ca, cb = half(trA, 0), half(trB, 1)
	t.Cleanup(func() {
		ca.Close()
		cb.Close()
		trA.Close()
		trB.Close()
	})
	return trA, trB, ca, cb
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGossipConvergesAcrossTCP: ops accepted on either side of the wire
// meet in both states through anti-entropy alone.
func TestGossipConvergesAcrossTCP(t *testing.T) {
	_, _, ca, cb := twoProcessCluster(t, "s3cret")
	ctx := context.Background()
	if _, err := ca.Submit(ctx, 0, core.NewOp("credit", "acct", 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Submit(ctx, 1, core.NewOp("credit", "acct", 7)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, func() bool {
		ca.GossipRound()
		cb.GossipRound()
		return ca.States()[0]["acct"] == 12 && cb.States()[0]["acct"] == 12
	}, "replicas did not converge across TCP")
}

// TestSyncSubmitCrossesTheWire: a coordinated (§5.8) submit needs the
// remote replica's admit vote and pushes the committed op to it — both
// legs over the socket.
func TestSyncSubmitCrossesTheWire(t *testing.T) {
	_, _, ca, cb := twoProcessCluster(t, "")
	res, err := ca.Submit(context.Background(), 0, core.NewOp("credit", "acct", 3),
		core.WithPolicy(policy.AlwaysSync()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("sync submit declined: %+v", res)
	}
	waitUntil(t, 5*time.Second, func() bool {
		return cb.States()[0]["acct"] == 3
	}, "committed sync op never applied on the remote replica")
}

// TestDeadPeerDegradesNotHangs: killing the other process turns
// coordination into a bounded decline ("partitioned replica"), while
// uncoordinated ingest keeps flowing — the paper's degrade-don't-block
// behaviour, now across a real socket.
func TestDeadPeerDegradesNotHangs(t *testing.T) {
	trA, trB, ca, cb := twoProcessCluster(t, "")
	cb.Close()
	trB.Close()

	start := time.Now()
	res, err := ca.Submit(context.Background(), 0, core.NewOp("credit", "acct", 1),
		core.WithPolicy(policy.AlwaysSync()))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("sync submit against a dead peer took %v; should fail within the call timeout", elapsed)
	}
	if res.Accepted {
		t.Fatalf("sync submit succeeded with the only peer dead: %+v", res)
	}

	// Async ingest is unaffected by the dead peer.
	res, err = ca.Submit(context.Background(), 0, core.NewOp("credit", "acct", 2))
	if err != nil || !res.Accepted {
		t.Fatalf("async submit with a dead peer: res=%+v err=%v", res, err)
	}

	// Once a dial has actually failed, the peer reads as down.
	waitUntil(t, 5*time.Second, func() bool {
		ca.GossipRound() // keeps traffic flowing so the link notices
		return !trA.IsUp(core.NodeID(1, 0, 1))
	}, "dead peer still reads as up")
}

// TestHelloAuthRejectsBadToken: a connection that cannot present the
// shared token is dropped before any frame is processed.
func TestHelloAuthRejectsBadToken(t *testing.T) {
	tr, err := New(Config{Listen: "127.0.0.1:0", Token: "right"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	conn, err := net.Dial("tcp", tr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(encodeHello("wrong")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept talking to a mis-authenticated client")
	}
}

// TestEncodeReqRejectsNonWirePayload: only the engine's replica-to-
// replica messages may cross the wire; anything else is a programming
// error surfaced at encode time, not a silent garbage frame.
func TestEncodeReqRejectsNonWirePayload(t *testing.T) {
	if buf, err := encodeReq(42, "s0/r0", "s0/r2", "push", struct{ X int }{1}); err == nil {
		t.Fatalf("encoding a non-wire payload succeeded: %x", buf)
	}
}
