package netx

// The frame layer: every message on a peer connection is one
// length-prefixed, checksummed frame. The payload starts with a kind
// byte; request and response payloads embed a core wire message (the
// same oplog-backed binary codec the disk journal uses), so the bytes a
// replica gossips across a socket are the bytes it would have journaled.
//
//	[uint32 big-endian payload length][uint32 big-endian CRC32-C of payload][payload]
//
//	hello: kind=2, string token          — first frame of every conn, both directions
//	req:   kind=0, uvarint seq, string from, string to, string method, message
//	resp:  kind=1, uvarint seq, message
//
// The checksum exists because TCP's own checksum is weak and because
// this layer is where we inject bit flips on purpose: a damaged frame
// must be *detected* — surfacing as errCorruptFrame, which closes the
// connection and lets the dial/backoff machinery degrade the link —
// rather than decoded into garbage that poisons a replica's state.
//
// A reply is matched to its call by seq; seqs are per-transport, so
// responses may return on any connection that reaches the caller (in
// practice: the one the request went out on).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

const (
	frameReq   = 0
	frameResp  = 1
	frameHello = 2

	// maxFrame bounds a single frame so a corrupt or hostile length
	// prefix cannot become a giant allocation. Gossip pushes are the
	// largest traffic; 64 MiB is orders of magnitude above any batch the
	// engine ships.
	maxFrame = 64 << 20

	// frameHeader is the fixed prefix of every frame: payload length plus
	// the payload's CRC32-C.
	frameHeader = 8
)

// errCorruptFrame marks a frame that arrived damaged — bad length or
// failed checksum. The receiver closes the connection: with an
// unreliable codec boundary the only safe resync point is a fresh
// connection, and the peer's dial backoff turns sustained corruption
// into a down link rather than a poisoned replica.
var errCorruptFrame = errors.New("netx: corrupt frame")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// readFrame reads one length-prefixed payload and verifies its checksum.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: length %d out of range", errCorruptFrame, n)
	}
	want := binary.BigEndian.Uint32(hdr[4:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", errCorruptFrame, got, want)
	}
	return payload, nil
}

// connWriter serializes frame writes on one connection under a write
// deadline, so a stalled peer fails the write instead of wedging every
// goroutine that has a response to send.
type connWriter struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

func (w *connWriter) write(frame []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.timeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(w.timeout))
	}
	_, err := w.conn.Write(frame)
	return err
}

// frame prefixes payload with its length and checksum, producing one
// contiguous buffer so the whole frame goes out in a single Write.
func frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	binary.BigEndian.PutUint32(out[4:], crc32.Checksum(payload, crcTable))
	copy(out[frameHeader:], payload)
	return out
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func takeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, fmt.Errorf("netx: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// encodeHello builds the authentication frame both sides send first.
func encodeHello(token string) []byte {
	payload := append([]byte{frameHello}, appendString(nil, token)...)
	return frame(payload)
}

// decodeHello verifies a hello payload (kind byte already consumed).
func decodeHello(b []byte) (token string, err error) {
	token, rest, err := takeString(b)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("netx: %d trailing bytes after hello", len(rest))
	}
	return token, nil
}

// encodeReq builds a request frame carrying one core wire message.
func encodeReq(seq uint64, from, to, method string, msg any) ([]byte, error) {
	payload := make([]byte, 0, 32+len(from)+len(to)+len(method)+core.MessageSize(msg))
	payload = append(payload, frameReq)
	payload = binary.AppendUvarint(payload, seq)
	payload = appendString(payload, from)
	payload = appendString(payload, to)
	payload = appendString(payload, method)
	payload, err := core.AppendMessage(payload, msg)
	if err != nil {
		return nil, err
	}
	return frame(payload), nil
}

type request struct {
	seq    uint64
	from   string
	to     string
	method string
	msg    any
}

// decodeReq parses a request payload (kind byte already consumed).
func decodeReq(b []byte) (request, error) {
	var r request
	seq, sz := binary.Uvarint(b)
	if sz <= 0 {
		return r, fmt.Errorf("netx: truncated request seq")
	}
	b = b[sz:]
	var err error
	if r.from, b, err = takeString(b); err != nil {
		return r, err
	}
	if r.to, b, err = takeString(b); err != nil {
		return r, err
	}
	if r.method, b, err = takeString(b); err != nil {
		return r, err
	}
	if r.msg, err = core.DecodeMessage(b); err != nil {
		return r, err
	}
	r.seq = seq
	return r, nil
}

// encodeResp builds a response frame for seq.
func encodeResp(seq uint64, msg any) ([]byte, error) {
	payload := make([]byte, 0, 16+core.MessageSize(msg))
	payload = append(payload, frameResp)
	payload = binary.AppendUvarint(payload, seq)
	payload, err := core.AppendMessage(payload, msg)
	if err != nil {
		return nil, err
	}
	return frame(payload), nil
}

// decodeResp parses a response payload (kind byte already consumed).
func decodeResp(b []byte) (seq uint64, msg any, err error) {
	seq, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, fmt.Errorf("netx: truncated response seq")
	}
	msg, err = core.DecodeMessage(b[sz:])
	return seq, msg, err
}
