package tandem

import (
	"repro/internal/btree"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/uniq"
	"repro/internal/wal"
)

// Wire messages between TMF, disk processes, and the ADP.
type (
	writeReq struct {
		Txn   uint64
		ReqID uniq.ID
		Key   string
		Value string
	}
	writeAck struct {
		OK         bool
		NotPrimary bool
	}
	readReq  struct{ Key string }
	readResp struct {
		Value string
		OK    bool
	}
	flushReq struct{ Txn uint64 }
	flushAck struct{ OK bool }
	applyReq struct{ Txn uint64 }
	abortReq struct{ Txn uint64 }

	ckptWrite struct {
		Txn   uint64
		ReqID uniq.ID
		Key   string
		Value string
	}
	ckptBatch  struct{ Records []wal.Record }
	ckptCommit struct{ Txn uint64 }
	ckptAbort  struct{ Txn uint64 }

	adpAppend  struct{ Records []wal.Record }
	adpCommit  struct{ Txn uint64 }
	adpRedoReq struct{ DP int }
	redoTxn    struct {
		Txn     uint64
		Records []wal.Record
	}
	adpRedoResp struct{ Txns []redoTxn }
	genericAck  struct{ OK bool }
)

// dpPair is one process pair: two dpNodes, one primary at a time.
type dpPair struct {
	sys     *System
	idx     int
	a, b    *dpNode
	primary *dpNode
}

func newDPPair(sys *System, idx int) *dpPair {
	p := &dpPair{sys: sys, idx: idx}
	p.a = newDPNode(sys, p, "a")
	p.b = newDPNode(sys, p, "b")
	p.primary = p.a
	p.a.role = rolePrimary
	return p
}

// takeover promotes the surviving node after crashed fail-fasted.
func (p *dpPair) takeover(crashed *dpNode) {
	if p.primary != crashed {
		return // already handled
	}
	survivor := p.a
	if survivor == crashed {
		survivor = p.b
	}
	p.primary = survivor
	survivor.promote()
	p.sys.onFailover(p.idx)
}

type role int

const (
	roleBackup role = iota
	rolePrimary
)

// dpNode is one half of a disk-process pair.
type dpNode struct {
	sys  *System
	pair *dpPair
	side string
	ep   *rpc.Endpoint
	role role

	state      *btree.Tree             // committed data
	pending    map[uint64][]wal.Record // per-txn staged writes
	seenReq    map[uniq.ID]bool        // write idempotence, checkpointed under DP1
	applied    map[uint64]bool         // committed txns already applied
	buf        []wal.Record            // DP2 primary: log records not yet flushed
	flushed    int                     // prefix of buf already pushed out
	timerArmed bool                    // DP2: background flush departure pending
}

func newDPNode(sys *System, pair *dpPair, side string) *dpNode {
	n := &dpNode{sys: sys, pair: pair, side: side}
	n.ep = rpc.NewEndpoint(sys.net, dpNodeID(pair.idx, side), sys.cfg.CallTimeout)
	n.reset()
	n.ep.Handle("write", n.handleWrite)
	n.ep.Handle("read", n.handleRead)
	n.ep.Handle("flush", n.handleFlush)
	n.ep.Handle("apply", n.handleApply)
	n.ep.Handle("abort", n.handleAbort)
	n.ep.Handle("ckpt-write", n.handleCkptWrite)
	n.ep.Handle("ckpt-batch", n.handleCkptBatch)
	n.ep.Handle("ckpt-commit", n.handleCkptCommit)
	n.ep.Handle("ckpt-abort", n.handleCkptAbort)
	return n
}

// reset clears volatile state, as a restart does.
func (n *dpNode) reset() {
	n.role = roleBackup
	n.state = btree.New()
	n.pending = make(map[uint64][]wal.Record)
	n.seenReq = make(map[uniq.ID]bool)
	n.applied = make(map[uint64]bool)
	n.buf = nil
	n.flushed = 0
}

func (n *dpNode) peer() *dpNode {
	if n.pair.a == n {
		return n.pair.b
	}
	return n.pair.a
}

// armGroupFlush schedules the DP2 background log push — the bus departs
// one interval after the first passenger boards, not on an idle ticker.
func (n *dpNode) armGroupFlush() {
	if n.sys.cfg.Mode != DP2 || n.timerArmed {
		return
	}
	n.timerArmed = true
	n.sys.s.After(n.sys.cfg.GroupFlushInterval, func() {
		n.timerArmed = false
		if n.role == rolePrimary && !n.ep.Crashed() {
			n.flushLog(nil)
		}
	})
}

// promote turns a backup into the primary after takeover.
func (n *dpNode) promote() {
	n.role = rolePrimary
	if n.sys.cfg.Mode == DP2 {
		// Staged writes of in-flight transactions die with the
		// takeover: the TMF aborts those transactions (§3.2). Staged
		// writes of *committed* transactions are recovered from the
		// audit trail below.
		n.pending = make(map[uint64][]wal.Record)
	}
	// Redo: pull committed work for this partition from the ADP and
	// apply anything this node never saw.
	n.sys.M.Redos.Inc()
	n.ep.Call(n.sys.adp.ep.ID(), "redo", adpRedoReq{DP: n.pair.idx}, func(resp any, ok bool) {
		if !ok {
			return
		}
		for _, rt := range resp.(adpRedoResp).Txns {
			if n.applied[rt.Txn] {
				continue
			}
			for _, rec := range rt.Records {
				n.state.Put(rec.Key, rec.Value)
			}
			n.applied[rt.Txn] = true
			delete(n.pending, rt.Txn)
		}
	})
}

func (n *dpNode) handleWrite(from simnet.NodeID, req any, reply func(any)) {
	r := req.(writeReq)
	if n.role != rolePrimary {
		reply(writeAck{NotPrimary: true})
		return
	}
	if n.seenReq[r.ReqID] {
		reply(writeAck{OK: true}) // idempotent retry, §2.4
		return
	}
	n.seenReq[r.ReqID] = true
	rec := wal.Record{Txn: r.Txn, Kind: wal.KindWrite, Key: r.Key, Value: r.Value}
	n.pending[r.Txn] = append(n.pending[r.Txn], rec)

	switch n.sys.cfg.Mode {
	case DP1:
		// 1984: the WRITE is not acked until the backup has the
		// checkpoint — state crosses the failure boundary per WRITE.
		// With the peer declared down by the OS, the primary carries
		// on solo, as the real pair did.
		if n.ep.Crashed() || n.peerDown() {
			reply(writeAck{OK: true})
			return
		}
		n.sys.M.CheckpointMsgs.Inc()
		n.sys.M.WriteCkptMsgs.Inc()
		n.ep.Call(n.peer().ep.ID(), "ckpt-write",
			ckptWrite{Txn: r.Txn, ReqID: r.ReqID, Key: r.Key, Value: r.Value},
			func(resp any, ok bool) {
				reply(writeAck{OK: true})
			})
	case DP2:
		// 1986: buffer the log record and ack immediately.
		n.buf = append(n.buf, rec)
		n.armGroupFlush()
		reply(writeAck{OK: true})
	}
}

// peerDown reports whether this node's pair partner is crashed.
func (n *dpNode) peerDown() bool { return n.peer().ep.Crashed() }

func (n *dpNode) handleRead(from simnet.NodeID, req any, reply func(any)) {
	r := req.(readReq)
	if n.role != rolePrimary {
		reply(readResp{})
		return
	}
	v, ok := n.state.Get(r.Key)
	reply(readResp{Value: v, OK: ok})
}

// handleFlush makes the transaction's log durable; the commit point
// cannot pass until every dirtied DP acks its flush.
func (n *dpNode) handleFlush(from simnet.NodeID, req any, reply func(any)) {
	r := req.(flushReq)
	if n.role != rolePrimary {
		reply(flushAck{})
		return
	}
	switch n.sys.cfg.Mode {
	case DP1:
		// Writes are already at the backup; only the audit trail
		// remains.
		recs := append([]wal.Record(nil), n.pending[r.Txn]...)
		n.sys.adp.append(n, recs, func(ok bool) { reply(flushAck{OK: ok}) })
	case DP2:
		// Push the whole buffered log — everyone on the bus rides
		// along (group commit).
		n.flushLog(func(ok bool) { reply(flushAck{OK: ok}) })
	default:
		reply(flushAck{})
	}
}

// flushLog pushes buf[flushed:] to the backup (checkpoint) and the ADP
// (durability). done, if non-nil, fires when the ADP append is stable.
func (n *dpNode) flushLog(done func(ok bool)) {
	recs := append([]wal.Record(nil), n.buf[n.flushed:]...)
	n.flushed = len(n.buf)
	if len(recs) == 0 {
		if done != nil {
			done(true)
		}
		return
	}
	if !n.peerDown() {
		n.sys.M.CheckpointMsgs.Inc()
		n.ep.Call(n.peer().ep.ID(), "ckpt-batch", ckptBatch{Records: recs}, nil)
	}
	n.sys.adp.append(n, recs, func(ok bool) {
		if done != nil {
			done(ok)
		}
	})
}

// handleApply applies a committed transaction's staged writes to the
// primary's state and tells the backup to do the same.
func (n *dpNode) handleApply(from simnet.NodeID, req any, reply func(any)) {
	r := req.(applyReq)
	if n.role != rolePrimary {
		reply(genericAck{})
		return
	}
	n.applyTxn(r.Txn)
	if !n.peerDown() {
		n.sys.M.CheckpointMsgs.Inc()
		n.ep.Call(n.peer().ep.ID(), "ckpt-commit", ckptCommit{Txn: r.Txn}, nil)
	}
	reply(genericAck{OK: true})
}

func (n *dpNode) applyTxn(txn uint64) {
	if n.applied[txn] {
		return
	}
	for _, rec := range n.pending[txn] {
		n.state.Put(rec.Key, rec.Value)
	}
	n.applied[txn] = true
	delete(n.pending, txn)
}

func (n *dpNode) handleAbort(from simnet.NodeID, req any, reply func(any)) {
	r := req.(abortReq)
	delete(n.pending, r.Txn)
	if n.role == rolePrimary {
		n.ep.Call(n.peer().ep.ID(), "ckpt-abort", ckptAbort{Txn: r.Txn}, nil)
	}
	reply(genericAck{OK: true})
}

func (n *dpNode) handleCkptWrite(from simnet.NodeID, req any, reply func(any)) {
	r := req.(ckptWrite)
	if !n.seenReq[r.ReqID] {
		n.seenReq[r.ReqID] = true
		n.pending[r.Txn] = append(n.pending[r.Txn],
			wal.Record{Txn: r.Txn, Kind: wal.KindWrite, Key: r.Key, Value: r.Value})
	}
	reply(genericAck{OK: true})
}

func (n *dpNode) handleCkptBatch(from simnet.NodeID, req any, reply func(any)) {
	r := req.(ckptBatch)
	for _, rec := range r.Records {
		n.pending[rec.Txn] = append(n.pending[rec.Txn], rec)
	}
	reply(genericAck{OK: true})
}

func (n *dpNode) handleCkptCommit(from simnet.NodeID, req any, reply func(any)) {
	r := req.(ckptCommit)
	// Apply only if this node actually holds the transaction's staged
	// writes. A backup that was down when the write checkpoints flowed
	// must NOT mark the transaction applied on an empty set — that would
	// poison the takeover redo, which skips applied transactions. Left
	// unapplied, the audit-trail redo recovers it.
	if _, ok := n.pending[r.Txn]; ok {
		n.applyTxn(r.Txn)
	}
	reply(genericAck{OK: true})
}

func (n *dpNode) handleCkptAbort(from simnet.NodeID, req any, reply func(any)) {
	r := req.(ckptAbort)
	delete(n.pending, r.Txn)
	reply(genericAck{OK: true})
}

// adpNode is the audit disk process: the durable, serialized audit trail.
type adpNode struct {
	sys *System
	ep  *rpc.Endpoint

	byTxn       map[uint64][]wal.Record
	committed   map[uint64]bool
	commitOrder []uint64
	busyUntil   sim.Time
}

func newADP(sys *System) *adpNode {
	a := &adpNode{sys: sys, byTxn: make(map[uint64][]wal.Record), committed: make(map[uint64]bool)}
	a.ep = rpc.NewEndpoint(sys.net, "adp", sys.cfg.CallTimeout)
	a.ep.Handle("append", a.handleAppend)
	a.ep.Handle("commitrec", a.handleCommit)
	a.ep.Handle("redo", a.handleRedo)
	return a
}

// diskDelay serializes work behind the single audit disk and returns the
// completion time for one more flush.
func (a *adpNode) diskDelay() sim.Duration {
	now := a.sys.s.Now()
	start := a.busyUntil
	if start < now {
		start = now
	}
	a.busyUntil = start.Add(a.sys.cfg.AdpFlushCost)
	return a.busyUntil.Sub(now)
}

func (a *adpNode) handleAppend(from simnet.NodeID, req any, reply func(any)) {
	r := req.(adpAppend)
	a.sys.M.AdpAppends.Inc()
	for _, rec := range r.Records {
		a.byTxn[rec.Txn] = append(a.byTxn[rec.Txn], rec)
	}
	a.sys.s.After(a.diskDelay(), func() { reply(genericAck{OK: true}) })
}

func (a *adpNode) handleCommit(from simnet.NodeID, req any, reply func(any)) {
	r := req.(adpCommit)
	a.sys.s.After(a.diskDelay(), func() {
		if !a.committed[r.Txn] {
			a.committed[r.Txn] = true
			a.commitOrder = append(a.commitOrder, r.Txn)
		}
		reply(genericAck{OK: true})
	})
}

func (a *adpNode) handleRedo(from simnet.NodeID, req any, reply func(any)) {
	r := req.(adpRedoReq)
	var out []redoTxn
	for _, txn := range a.commitOrder {
		var recs []wal.Record
		for _, rec := range a.byTxn[txn] {
			if a.sys.dpIndex(rec.Key) == r.DP {
				recs = append(recs, rec)
			}
		}
		if len(recs) > 0 {
			out = append(out, redoTxn{Txn: txn, Records: recs})
		}
	}
	reply(adpRedoResp{Txns: out})
}

// append is the helper DPs use to push records into the audit trail.
func (a *adpNode) append(from *dpNode, recs []wal.Record, done func(ok bool)) {
	from.ep.Call(a.ep.ID(), "append", adpAppend{Records: recs}, func(resp any, ok bool) {
		done(ok && resp.(genericAck).OK)
	})
}

// commit is the TMF-side helper that writes the commit record — the
// commit point of the transaction.
func (a *adpNode) commit(txn uint64, done func(ok bool)) {
	a.sys.tmf.Call(a.ep.ID(), "commitrec", adpCommit{Txn: txn}, func(resp any, ok bool) {
		done(ok && resp.(genericAck).OK)
	})
}
