package tandem

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// kv is a key/value write for the txn driver.
type kv struct{ k, v string }

// runTxn drives one transaction through writes and commit, invoking done
// with the outcome. All progress happens on the simulator loop.
func runTxn(sys *System, writes []kv, done func(committed bool)) {
	t := sys.Begin()
	var step func(i int)
	step = func(i int) {
		if i == len(writes) {
			t.Commit(done)
			return
		}
		t.Write(writes[i].k, writes[i].v, func(ok bool) {
			if !ok {
				t.Abort()
				done(false)
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

func mustRead(t *testing.T, s *sim.Sim, sys *System, key string) (string, bool) {
	t.Helper()
	var val string
	var found, answered bool
	sys.Read(key, func(v string, ok bool) { val, found, answered = v, ok, true })
	s.Run()
	if !answered {
		t.Fatalf("Read(%q) never answered", key)
	}
	return val, found
}

func TestCommitAndReadBack(t *testing.T) {
	for _, mode := range []Mode{DP1, DP2} {
		t.Run(mode.String(), func(t *testing.T) {
			s := sim.New(1)
			sys := New(s, Config{Mode: mode})
			var committed bool
			runTxn(sys, []kv{{"alpha", "1"}, {"beta", "2"}}, func(ok bool) { committed = ok })
			s.Run()
			if !committed {
				t.Fatal("transaction did not commit")
			}
			if v, ok := mustRead(t, s, sys, "alpha"); !ok || v != "1" {
				t.Fatalf("alpha = %q,%v", v, ok)
			}
			if v, ok := mustRead(t, s, sys, "beta"); !ok || v != "2" {
				t.Fatalf("beta = %q,%v", v, ok)
			}
			if sys.M.Commits.Value() != 1 {
				t.Fatalf("Commits = %d", sys.M.Commits.Value())
			}
		})
	}
}

func TestReadMissingKey(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2})
	if _, ok := mustRead(t, s, sys, "ghost"); ok {
		t.Fatal("missing key reported found")
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2})
	txn := sys.Begin()
	txn.Write("k", "v", func(ok bool) {
		if !ok {
			t.Error("write failed")
		}
		txn.Abort()
	})
	s.Run()
	if _, ok := mustRead(t, s, sys, "k"); ok {
		t.Fatal("aborted write visible")
	}
	if sys.M.Aborts.Value() != 1 {
		t.Fatalf("Aborts = %d", sys.M.Aborts.Value())
	}
}

func TestUncommittedInvisibleUntilCommit(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2})
	txn := sys.Begin()
	wrote := false
	txn.Write("k", "v", func(ok bool) { wrote = ok })
	s.Run()
	if !wrote {
		t.Fatal("write failed")
	}
	if _, ok := mustRead(t, s, sys, "k"); ok {
		t.Fatal("uncommitted write visible to read")
	}
}

// TestWriteLatencyDP1vsDP2 checks the paper's headline §3.2 claim at unit
// scale: a DP1 WRITE pays a synchronous checkpoint round trip; a DP2 WRITE
// does not, so it completes in half the bus hops.
func TestWriteLatencyDP1vsDP2(t *testing.T) {
	lat := func(mode Mode) time.Duration {
		s := sim.New(1)
		sys := New(s, Config{Mode: mode})
		runTxn(sys, []kv{{"k", "v"}}, func(bool) {})
		s.Run()
		return sys.M.WriteLat.MeanDur()
	}
	dp1, dp2 := lat(DP1), lat(DP2)
	if dp1 != 2*dp2 {
		t.Fatalf("write latency DP1=%v DP2=%v; DP1 must be exactly 2x (4 hops vs 2)", dp1, dp2)
	}
}

// TestCheckpointTrafficDP1vsDP2: DP1 checkpoints synchronously on every
// WRITE; DP2 moves checkpointing off the write path entirely (zero
// per-WRITE checkpoints) and batches the log instead, lowering total
// checkpoint traffic.
func TestCheckpointTrafficDP1vsDP2(t *testing.T) {
	const txns, writesPer = 20, 5
	run := func(mode Mode) (perWrite, total int64) {
		s := sim.New(1)
		sys := New(s, Config{Mode: mode})
		var launch func(i int)
		launch = func(i int) {
			if i == txns {
				return
			}
			var ws []kv
			for w := 0; w < writesPer; w++ {
				ws = append(ws, kv{fmt.Sprintf("k-%d-%d", i, w), "v"})
			}
			runTxn(sys, ws, func(bool) { launch(i + 1) })
		}
		launch(0)
		s.Run()
		if got := sys.M.Commits.Value(); got != txns {
			t.Fatalf("%v: commits = %d, want %d", mode, got, txns)
		}
		return sys.M.WriteCkptMsgs.Value(), sys.M.CheckpointMsgs.Value()
	}
	dp1PerWrite, dp1Total := run(DP1)
	dp2PerWrite, dp2Total := run(DP2)
	if dp1PerWrite != txns*writesPer {
		t.Fatalf("DP1 per-write checkpoints = %d, want %d (one per WRITE)", dp1PerWrite, txns*writesPer)
	}
	if dp2PerWrite != 0 {
		t.Fatalf("DP2 per-write checkpoints = %d, want 0 (off the write path)", dp2PerWrite)
	}
	if dp2Total >= dp1Total {
		t.Fatalf("DP2 total checkpoints = %d vs DP1 %d; batching should reduce traffic", dp2Total, dp1Total)
	}
}

// TestDP1FailoverTransparent reproduces §3.1: under DP1 a primary DP crash
// mid-transaction is survivable — the backup has every checkpointed write,
// and the idempotent retry drives the in-flight transaction to commit.
func TestDP1FailoverTransparent(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP1, NumDP: 1})
	var outcome *bool
	txn := sys.Begin()
	txn.Write("w1", "v1", func(ok bool) {
		if !ok {
			t.Error("first write failed")
		}
		// Crash the primary before the second write.
		sys.CrashPrimary(0)
		txn.Write("w2", "v2", func(ok bool) {
			if !ok {
				t.Error("write after failover failed (should retry onto backup)")
			}
			txn.Commit(func(c bool) { outcome = &c })
		})
	})
	s.Run()
	if outcome == nil || !*outcome {
		t.Fatal("in-flight DP1 transaction did not survive primary failure")
	}
	if v, ok := mustRead(t, s, sys, "w1"); !ok || v != "v1" {
		t.Fatalf("w1 = %q,%v after failover", v, ok)
	}
	if v, ok := mustRead(t, s, sys, "w2"); !ok || v != "v2" {
		t.Fatalf("w2 = %q,%v after failover", v, ok)
	}
	if sys.M.FailoverAborts.Value() != 0 {
		t.Fatalf("FailoverAborts = %d under DP1", sys.M.FailoverAborts.Value())
	}
	if sys.PrimaryOf(0) != "b" {
		t.Fatalf("primary = %s, want b after takeover", sys.PrimaryOf(0))
	}
}

// TestDP2FailoverAbortsInFlight reproduces §3.2/§3.3: a DP2 primary crash
// aborts in-flight transactions that touched it (the acceptable erosion),
// while committed work survives via the audit trail.
func TestDP2FailoverAbortsInFlight(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2, NumDP: 1})

	// First, commit a transaction so there is committed state to protect.
	var seeded bool
	runTxn(sys, []kv{{"stable", "gold"}}, func(ok bool) { seeded = ok })
	s.Run()
	if !seeded {
		t.Fatal("seed txn failed")
	}

	// Now an in-flight transaction with a buffered (unflushed) write.
	var outcome *bool
	txn := sys.Begin()
	txn.Write("volatile", "doomed", func(ok bool) {
		sys.CrashPrimary(0)
		s.After(5*time.Millisecond, func() {
			txn.Commit(func(c bool) { outcome = &c })
		})
	})
	s.Run()
	if outcome == nil {
		t.Fatal("commit never resolved")
	}
	if *outcome {
		t.Fatal("in-flight DP2 transaction survived primary failure; it must abort")
	}
	if sys.M.FailoverAborts.Value() != 1 {
		t.Fatalf("FailoverAborts = %d, want 1", sys.M.FailoverAborts.Value())
	}
	// Committed data must be intact on the new primary (redo from ADP).
	if v, ok := mustRead(t, s, sys, "stable"); !ok || v != "gold" {
		t.Fatalf("committed key lost by takeover: %q,%v", v, ok)
	}
	if _, ok := mustRead(t, s, sys, "volatile"); ok {
		t.Fatal("aborted in-flight write resurrected")
	}
}

// TestDP2CommittedNeverLostAcrossCrashes is the E2 audit at unit scale:
// commit 30 transactions while crashing and restoring the primary
// repeatedly; every committed write must be readable afterwards.
func TestDP2CommittedNeverLostAcrossCrashes(t *testing.T) {
	s := sim.New(7)
	sys := New(s, Config{Mode: DP2, NumDP: 2})
	const total = 30
	committedKeys := make(map[string]string)
	attempted := 0

	var launch func(i int)
	launch = func(i int) {
		if i == total {
			return
		}
		attempted++
		key, val := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i)
		runTxn(sys, []kv{{key, val}}, func(ok bool) {
			if ok {
				committedKeys[key] = val
			}
			launch(i + 1)
		})
		// Crash a primary every 7th transaction, restart shortly after.
		if i%7 == 3 {
			pair := i % 2
			s.After(time.Millisecond, func() { sys.CrashPrimary(pair) })
			s.After(20*time.Millisecond, func() { sys.RestartBackup(pair) })
		}
	}
	launch(0)
	s.Run()

	if len(committedKeys) == 0 {
		t.Fatal("nothing committed; test is vacuous")
	}
	for key, want := range committedKeys {
		if v, ok := mustRead(t, s, sys, key); !ok || v != want {
			t.Fatalf("committed %s=%s lost (got %q,%v)", key, want, v, ok)
		}
	}
	t.Logf("attempted=%d committed=%d failoverAborts=%d",
		attempted, len(committedKeys), sys.M.FailoverAborts.Value())
}

// TestSecondFailoverAfterRestart: crash a, promote b, restart a as backup,
// crash b — a must take over with full state.
func TestSecondFailoverAfterRestart(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2, NumDP: 1})
	var ok1 bool
	runTxn(sys, []kv{{"k1", "v1"}}, func(ok bool) { ok1 = ok })
	s.Run()
	if !ok1 {
		t.Fatal("seed txn failed")
	}

	sys.CrashPrimary(0)
	s.RunFor(10 * time.Millisecond)
	sys.RestartBackup(0)
	var ok2 bool
	runTxn(sys, []kv{{"k2", "v2"}}, func(ok bool) { ok2 = ok })
	s.Run()
	if !ok2 {
		t.Fatal("txn after first failover failed")
	}

	sys.CrashPrimary(0) // crashes b, the current primary
	s.RunFor(10 * time.Millisecond)
	sys.RestartBackup(0)
	s.Run()
	if sys.PrimaryOf(0) != "a" {
		t.Fatalf("primary = %s, want a after second takeover", sys.PrimaryOf(0))
	}
	for k, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		if v, ok := mustRead(t, s, sys, k); !ok || v != want {
			t.Fatalf("%s = %q,%v after double failover", k, v, ok)
		}
	}
}

func TestWriteAfterFinishFails(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2})
	txn := sys.Begin()
	txn.Abort()
	called := false
	txn.Write("k", "v", func(ok bool) {
		called = true
		if ok {
			t.Error("write on finished txn succeeded")
		}
	})
	s.Run()
	if !called {
		t.Fatal("done not invoked")
	}
}

func TestCommitOnAbortedTxnFails(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP1})
	txn := sys.Begin()
	txn.Abort()
	var out *bool
	txn.Commit(func(ok bool) { out = &ok })
	s.Run()
	if out == nil || *out {
		t.Fatal("commit after abort must fail")
	}
}

func TestReadOnlyCommit(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2})
	txn := sys.Begin()
	var out *bool
	txn.Commit(func(ok bool) { out = &ok })
	s.Run()
	if out == nil || !*out {
		t.Fatal("read-only transaction must commit")
	}
}

func TestModeString(t *testing.T) {
	if DP1.String() != "DP1-1984" || DP2.String() != "DP2-1986" {
		t.Fatal("mode names wrong")
	}
}

func TestPartitioningSpreadsKeys(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Mode: DP2, NumDP: 4})
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[sys.dpIndex(fmt.Sprintf("key-%d", i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("keys landed on %d of 4 partitions", len(seen))
	}
}

func TestConcurrentTransactionsInterleave(t *testing.T) {
	// Eight transactions in flight at once, distinct keys, both modes:
	// per-txn staging must not bleed between them.
	for _, mode := range []Mode{DP1, DP2} {
		t.Run(mode.String(), func(t *testing.T) {
			s := sim.New(3)
			sys := New(s, Config{Mode: mode, NumDP: 4})
			const txns = 8
			committed := 0
			for i := 0; i < txns; i++ {
				i := i
				runTxn(sys, []kv{
					{fmt.Sprintf("a-%d", i), fmt.Sprintf("v%d", i)},
					{fmt.Sprintf("b-%d", i), fmt.Sprintf("w%d", i)},
				}, func(ok bool) {
					if ok {
						committed++
					}
				})
			}
			s.Run()
			if committed != txns {
				t.Fatalf("committed %d of %d concurrent txns", committed, txns)
			}
			for i := 0; i < txns; i++ {
				if v, ok := mustRead(t, s, sys, fmt.Sprintf("a-%d", i)); !ok || v != fmt.Sprintf("v%d", i) {
					t.Fatalf("a-%d = %q,%v", i, v, ok)
				}
			}
		})
	}
}

func TestAbortedTxnDoesNotBlockOthers(t *testing.T) {
	s := sim.New(4)
	sys := New(s, Config{Mode: DP2, NumDP: 1})
	// One txn writes then aborts; a concurrent txn on the same pair
	// commits cleanly.
	loser := sys.Begin()
	loser.Write("doomed", "x", func(ok bool) { loser.Abort() })
	var won bool
	runTxn(sys, []kv{{"winner", "y"}}, func(ok bool) { won = ok })
	s.Run()
	if !won {
		t.Fatal("concurrent txn failed because another aborted")
	}
	if _, ok := mustRead(t, s, sys, "doomed"); ok {
		t.Fatal("aborted write visible")
	}
	if v, ok := mustRead(t, s, sys, "winner"); !ok || v != "y" {
		t.Fatalf("winner = %q,%v", v, ok)
	}
}
