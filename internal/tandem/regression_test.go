package tandem

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestCommittedSurvivesRestartWindow is a regression test for a takeover
// hole: a transaction whose per-write checkpoints flowed while the peer
// was down must not be marked applied at that peer by a later
// ckpt-commit on an empty staging set — that would poison the redo after
// the next takeover and lose committed data.
func TestCommittedSurvivesRestartWindow(t *testing.T) {
	for _, mode := range []Mode{DP1, DP2} {
		t.Run(mode.String(), func(t *testing.T) {
			s := sim.New(1)
			sys := New(s, Config{Mode: mode, NumDP: 2})
			committed := map[string]string{}
			var launch func(i int)
			launch = func(i int) {
				if i == 300 {
					return
				}
				key, val := fmt.Sprintf("key-%04d", i), fmt.Sprintf("v%d", i)
				txn := sys.Begin()
				txn.Write(key, val, func(ok bool) {
					if !ok {
						txn.Abort()
						launch(i + 1)
						return
					}
					txn.Commit(func(c bool) {
						if c {
							committed[key] = val
						}
						launch(i + 1)
					})
				})
				if i%20 == 7 {
					pair := (i / 20) % 2
					s.After(0, func() { sys.CrashPrimary(pair) })
					s.After(30*time.Millisecond, func() { sys.RestartBackup(pair) })
				}
			}
			launch(0)
			s.Run()
			if len(committed) == 0 {
				t.Fatal("nothing committed")
			}
			lost := 0
			for key, want := range committed {
				k, w := key, want
				sys.Read(k, func(v string, ok bool) {
					if !ok || v != w {
						lost++
					}
				})
			}
			s.Run()
			if lost != 0 {
				t.Fatalf("%d committed transactions lost across restart windows", lost)
			}
		})
	}
}
