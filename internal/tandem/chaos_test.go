package tandem

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// TestPropCommittedNeverLostUnderRandomChaos is the E2 audit as a
// property: for any seed-driven schedule of crashes and restarts, across
// both disk-process generations, an acknowledged commit is never lost.
// The only allowed casualties are in-flight transactions (DP2) — the
// §3.3 "acceptable erosion".
func TestPropCommittedNeverLostUnderRandomChaos(t *testing.T) {
	f := func(seed int64) bool {
		for _, mode := range []Mode{DP1, DP2} {
			s := sim.New(seed)
			sys := New(s, Config{Mode: mode, NumDP: 2})
			r := s.Rand()
			committed := map[string]string{}
			// A process pair tolerates ONE failure at a time — that is
			// its hardware contract. The chaos schedule respects each
			// pair's repair window, like the physical world the paper's
			// §2.2 fail-fast model assumes.
			downUntil := [2]sim.Time{}

			const txns = 120
			var launch func(i int)
			launch = func(i int) {
				if i == txns {
					return
				}
				key, val := fmt.Sprintf("key-%04d", i), fmt.Sprintf("v%d", i)
				writes := []kv{{key, val}}
				if r.Intn(3) == 0 { // some multi-write transactions
					writes = append(writes, kv{key + "-b", val})
				}
				runTxn(sys, writes, func(ok bool) {
					if ok {
						committed[key] = val
					}
					launch(i + 1)
				})
				// Random chaos: crash a random pair at a random nearby
				// moment, restart a random time later — but never while
				// the pair is still repairing the previous fault.
				if r.Intn(12) == 0 {
					pair := r.Intn(2)
					crashAt := s.Now().Add(time.Duration(r.Intn(5)) * time.Millisecond)
					if crashAt > downUntil[pair] {
						repairAt := crashAt.Add(5*time.Millisecond + time.Duration(r.Intn(40))*time.Millisecond)
						downUntil[pair] = repairAt.Add(5 * time.Millisecond)
						s.At(crashAt, func() { sys.CrashPrimary(pair) })
						s.At(repairAt, func() { sys.RestartBackup(pair) })
					}
				}
			}
			launch(0)
			s.Run()

			if len(committed) == 0 {
				continue // pathological seed: nothing committed, nothing to audit
			}
			lost := 0
			for key, want := range committed {
				k, w := key, want
				sys.Read(k, func(v string, ok bool) {
					if !ok || v != w {
						lost++
					}
				})
			}
			s.Run()
			if lost != 0 {
				t.Logf("mode=%v seed=%d lost=%d of %d", mode, seed, lost, len(committed))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
