// Package tandem simulates the Tandem NonStop systems of §3 of the paper:
// shared-nothing processors, process-pair disk processes (DPs), a
// transaction monitor (TMF), and an audit disk process (ADP).
//
// Two checkpointing strategies are implemented, selected by Mode:
//
//   - DP1 (circa 1984): every WRITE is synchronously checkpointed to the
//     backup disk process before the application sees the ack. Failures of
//     a primary DP are transparent — in-flight transactions continue on
//     the backup, which has seen every write.
//
//   - DP2 (circa 1986): the transaction log doubles as the checkpoint
//     stream. WRITEs are acked as soon as the primary buffers the log
//     record ("lollygag within the transactional log in memory"), and the
//     buffer is pushed to the backup and the ADP in shared, group-commit
//     flushes. Transaction commit forces the flush. A primary DP failure
//     aborts the in-flight transactions that touched it — the "acceptable
//     erosion of behavior" of §3.3 — but committed work is never lost,
//     because commit does not succeed until the log is durable at the ADP.
//
// Faithfulness notes: the real DP2 sent the log to the backup which
// forwarded it to the ADP; we send to both in parallel, which preserves
// the critical-path properties (commit waits for durability, WRITE waits
// for nothing). The real ADP is itself a process pair on mirrored disks;
// ours is a single reliable node, standing in for that already-redundant
// audit trail. Takeover recovery replays committed work from the ADP
// (redo), exactly the audit-trail role the real system's log served.
package tandem

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/uniq"
	"repro/internal/wal"
)

// Mode selects the checkpointing strategy.
type Mode int

// The two generations of disk process.
const (
	DP1 Mode = iota // circa 1984: checkpoint every WRITE, synchronously
	DP2             // circa 1986: log-based checkpoints, group commit
)

// String names the mode.
func (m Mode) String() string {
	if m == DP1 {
		return "DP1-1984"
	}
	return "DP2-1986"
}

// Config tunes a simulated Tandem system. Zero fields take defaults.
type Config struct {
	Mode  Mode
	NumDP int // number of disk-process pairs (default 2)

	// MsgLatency is the one-hop latency of the interprocessor bus
	// (default 100µs).
	MsgLatency time.Duration
	// AdpFlushCost is the audit-disk write time per append; appends
	// queue behind each other at the single audit disk (default 500µs).
	AdpFlushCost time.Duration
	// GroupFlushInterval is DP2's background log push period
	// (default 5ms).
	GroupFlushInterval time.Duration
	// CallTimeout bounds every RPC (default 25ms).
	CallTimeout time.Duration
	// DetectDelay is the time from a primary crash to its backup taking
	// over (default 2ms).
	DetectDelay time.Duration
	// WriteRetries is how many times the TMF re-drives a failed WRITE
	// before giving up on the transaction (default 3).
	WriteRetries int
}

func (c Config) withDefaults() Config {
	if c.NumDP == 0 {
		c.NumDP = 2
	}
	if c.MsgLatency == 0 {
		c.MsgLatency = 100 * time.Microsecond
	}
	if c.AdpFlushCost == 0 {
		c.AdpFlushCost = 500 * time.Microsecond
	}
	if c.GroupFlushInterval == 0 {
		c.GroupFlushInterval = 5 * time.Millisecond
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 25 * time.Millisecond
	}
	if c.DetectDelay == 0 {
		c.DetectDelay = 2 * time.Millisecond
	}
	if c.WriteRetries == 0 {
		c.WriteRetries = 3
	}
	return c
}

// Metrics aggregates what the experiments measure.
type Metrics struct {
	WriteLat  stats.Histogram // WRITE submit → ack
	CommitLat stats.Histogram // commit submit → committed
	TxnLat    stats.Histogram // begin → committed

	Commits        stats.Counter
	Aborts         stats.Counter // all aborts
	FailoverAborts stats.Counter // aborts caused by a primary DP failure
	CheckpointMsgs stats.Counter // ckpt-write/ckpt-batch/ckpt-commit sends
	WriteCkptMsgs  stats.Counter // per-WRITE synchronous checkpoints (DP1 only)
	AdpAppends     stats.Counter // audit-disk append batches
	Redos          stats.Counter // takeover redo rounds
}

// System is one simulated Tandem machine. Construct with New; drive
// transactions with Begin/Write/Commit; inject faults with CrashPrimary
// and RestartBackup; then inspect Metrics.
type System struct {
	s   *sim.Sim
	net *simnet.Network
	cfg Config

	pairs []*dpPair
	adp   *adpNode
	tmf   *rpc.Endpoint

	txnSeq   uint64
	inflight map[uint64]*Txn
	reqGen   *uniq.Gen

	M Metrics
}

// New builds a system on s with its own private network.
func New(s *sim.Sim, cfg Config) *System {
	cfg = cfg.withDefaults()
	net := simnet.New(s, simnet.WithLatency(simnet.Fixed(cfg.MsgLatency)))
	sys := &System{
		s: s, net: net, cfg: cfg,
		inflight: make(map[uint64]*Txn),
		reqGen:   uniq.NewGen("tmf"),
	}
	sys.adp = newADP(sys)
	for i := 0; i < cfg.NumDP; i++ {
		sys.pairs = append(sys.pairs, newDPPair(sys, i))
	}
	sys.tmf = rpc.NewEndpoint(net, "tmf", cfg.CallTimeout)
	return sys
}

// Net exposes the system's network, mainly for message accounting.
func (sys *System) Net() *simnet.Network { return sys.net }

// Config returns the effective (defaulted) configuration.
func (sys *System) Config() Config { return sys.cfg }

// dpIndex maps a key to its disk-process pair: the paper's §2.3
// partitioning discipline, "each chunk has a unique key".
func (sys *System) dpIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % sys.cfg.NumDP
}

// Txn is a client-side transaction handle.
type Txn struct {
	sys      *System
	id       uint64
	dirty    map[int]bool
	doomed   bool // a DP2 primary carrying our writes failed
	finished bool
	begun    sim.Time
}

// Begin starts a transaction.
func (sys *System) Begin() *Txn {
	sys.txnSeq++
	t := &Txn{sys: sys, id: sys.txnSeq, dirty: make(map[int]bool), begun: sys.s.Now()}
	sys.inflight[t.id] = t
	return t
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// Write stages key=val in the transaction. done fires with ok=false if the
// write could not be driven to a primary DP (after retries) or the
// transaction is doomed; the caller should then Abort.
func (t *Txn) Write(key, val string, done func(ok bool)) {
	if t.finished || t.doomed {
		done(false)
		return
	}
	pair := t.sys.dpIndex(key)
	t.dirty[pair] = true
	req := writeReq{Txn: t.id, ReqID: t.sys.reqGen.Next(), Key: key, Value: val}
	start := t.sys.s.Now()
	t.tryWrite(pair, req, t.sys.cfg.WriteRetries, func(ok bool) {
		if ok {
			t.sys.M.WriteLat.AddDur(t.sys.s.Now().Sub(start))
		}
		done(ok)
	})
}

func (t *Txn) tryWrite(pair int, req writeReq, retries int, done func(bool)) {
	if t.finished || t.doomed {
		done(false)
		return
	}
	primary := t.sys.pairs[pair].primary.ep.ID()
	t.sys.tmf.Call(primary, "write", req, func(resp any, ok bool) {
		if ok {
			if ack := resp.(writeAck); ack.OK {
				done(true)
				return
			}
		}
		// Timeout or stale routing: the uniquifier makes the retry
		// idempotent (§2.4), so re-drive against the current primary.
		if retries > 0 {
			t.sys.s.After(t.sys.cfg.MsgLatency, func() {
				t.tryWrite(pair, req, retries-1, done)
			})
			return
		}
		done(false)
	})
}

// Read returns the committed value of key via the responsible primary DP.
func (sys *System) Read(key string, done func(val string, ok bool)) {
	primary := sys.pairs[sys.dpIndex(key)].primary.ep.ID()
	sys.tmf.Call(primary, "read", readReq{Key: key}, func(resp any, ok bool) {
		if !ok {
			done("", false)
			return
		}
		r := resp.(readResp)
		done(r.Value, r.OK)
	})
}

// Commit drives the commit protocol: flush every dirtied DP's log to
// durability, write the commit record at the ADP (the commit point), then
// asynchronously apply. done reports whether the transaction committed.
func (t *Txn) Commit(done func(committed bool)) {
	if t.finished {
		done(false)
		return
	}
	if t.doomed {
		t.Abort()
		done(false)
		return
	}
	start := t.sys.s.Now()
	dirty := t.dirtyPairs()
	primaries := make([]simnet.NodeID, len(dirty))
	for i, p := range dirty {
		primaries[i] = t.sys.pairs[p].primary.ep.ID()
	}
	t.sys.tmf.Broadcast(primaries, "flush", flushReq{Txn: t.id}, func(resps []any, oks int) {
		if t.finished {
			done(false)
			return
		}
		allOK := oks == len(primaries)
		for _, r := range resps {
			if !r.(flushAck).OK {
				allOK = false
			}
		}
		if !allOK || t.doomed {
			t.Abort()
			done(false)
			return
		}
		t.sys.adp.commit(t.id, func(ok bool) {
			// Once the commit record is durable at the ADP the
			// transaction IS committed — a takeover racing this
			// point cannot un-commit it; redo replays it from the
			// audit trail.
			if !ok || t.finished {
				t.Abort()
				done(false)
				return
			}
			t.finished = true
			delete(t.sys.inflight, t.id)
			t.sys.M.Commits.Inc()
			t.sys.M.CommitLat.AddDur(t.sys.s.Now().Sub(start))
			t.sys.M.TxnLat.AddDur(t.sys.s.Now().Sub(t.begun))
			for _, p := range dirty {
				t.sys.tmf.Call(t.sys.pairs[p].primary.ep.ID(), "apply", applyReq{Txn: t.id}, nil)
			}
			done(true)
		})
	})
}

// Abort discards the transaction at every dirtied DP.
func (t *Txn) Abort() {
	if t.finished {
		return
	}
	t.finished = true
	delete(t.sys.inflight, t.id)
	t.sys.M.Aborts.Inc()
	for _, p := range t.dirtyPairs() {
		t.sys.tmf.Call(t.sys.pairs[p].primary.ep.ID(), "abort", abortReq{Txn: t.id}, nil)
	}
}

func (t *Txn) dirtyPairs() []int {
	out := make([]int, 0, len(t.dirty))
	for i := 0; i < t.sys.cfg.NumDP; i++ {
		if t.dirty[i] {
			out = append(out, i)
		}
	}
	return out
}

// CrashPrimary fail-fasts the primary of disk pair i. The backup takes
// over after the configured detection delay. Under DP2, in-flight
// transactions that dirtied the pair are aborted, per §3.2: "the system
// automatically aborts any relevant in-flight transactions when the
// primary DP fails."
func (sys *System) CrashPrimary(i int) {
	pair := sys.pairs[i]
	crashed := pair.primary
	sys.net.SetUp(crashed.ep.ID(), false)
	sys.s.After(sys.cfg.DetectDelay, func() { pair.takeover(crashed) })
}

// RestartBackup revives the crashed node of pair i as the new backup,
// seeding it with a state snapshot from the current primary (the
// "revive" a real process pair performs).
func (sys *System) RestartBackup(i int) {
	pair := sys.pairs[i]
	var down *dpNode
	if pair.primary == pair.a {
		down = pair.b
	} else {
		down = pair.a
	}
	sys.net.SetUp(down.ep.ID(), true)
	down.reset()
	down.state = pair.primary.state.Clone()
	for id := range pair.primary.applied {
		down.applied[id] = true
	}
	for id := range pair.primary.seenReq {
		down.seenReq[id] = true
	}
	// In-flight transactions staged at the primary ride along too; their
	// per-write checkpoints flowed while this node was down.
	for txn, recs := range pair.primary.pending {
		down.pending[txn] = append([]wal.Record(nil), recs...)
	}
}

// PrimaryOf reports which node currently leads pair i ("a" or "b").
func (sys *System) PrimaryOf(i int) string {
	if sys.pairs[i].primary == sys.pairs[i].a {
		return "a"
	}
	return "b"
}

// onFailover dooms in-flight DP2 transactions touching the failed pair.
func (sys *System) onFailover(pairIdx int) {
	if sys.cfg.Mode != DP2 {
		return
	}
	for _, t := range sys.inflight {
		if t.dirty[pairIdx] && !t.doomed {
			t.doomed = true
			sys.M.FailoverAborts.Inc()
		}
	}
}

func dpNodeID(pair int, side string) simnet.NodeID {
	return simnet.NodeID(fmt.Sprintf("dp%d%s", pair, side))
}
