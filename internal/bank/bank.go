// Package bank implements the paper's Example 5 (§6.2): bank accounts and
// ledgers on operation-centric eventual consistency.
//
// Checks carry check numbers — "the check numbers (combined with the
// bank-id and account-number) provide a unique identifier" — so clearing
// is idempotent no matter how many replicas handle the same check. Debits
// and credits commute, so replicas clear checks independently and their
// ledgers flow together; "replicas that have seen the same work see the
// same result." The no-overdraft rule is enforced probabilistically: each
// replica guesses from its local balance, and when the merged truth shows
// a check cleared against insufficient funds, a bounce-fee compensation is
// issued automatically — the bank's designed apology.
//
// Monthly statements reproduce §6.2's ledger discipline: a statement is
// immutable once issued; an op that arrives late ("some check floating on
// midnight of the 31st") lands in the next statement rather than mutating
// the last one.
package bank

import (
	"fmt"
	"maps"
	"slices"

	"repro/internal/apology"
	"repro/internal/core"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/uniq"
)

// Operation kinds.
const (
	KindDeposit   = "deposit"
	KindClear     = "clear-check"
	KindBounceFee = "bounce-fee"
)

// RuleName is the business rule the bank enforces probabilistically.
const RuleName = "no-overdraft"

// Uncovered records a check that cleared against insufficient funds in
// the canonical history.
type Uncovered struct {
	CheckID uniq.ID
	Account string
	Amount  int64
}

// Accounts is the state derived from the operation ledger.
type Accounts struct {
	Bal       map[string]int64
	Uncovered []Uncovered
}

// Balance returns an account's balance in cents.
func (a *Accounts) Balance(account string) int64 { return a.Bal[account] }

// App folds banking operations; it implements core.App.
type App struct{}

// Init returns empty accounts.
func (App) Init() *Accounts { return &Accounts{Bal: make(map[string]int64)} }

// Step applies one operation. Deposits and debits commute; the Uncovered
// list depends on canonical order, which oplog fixes identically at every
// replica.
func (App) Step(s *Accounts, op oplog.Entry) *Accounts {
	switch op.Kind {
	case KindDeposit:
		s.Bal[op.Key] += op.Arg
	case KindClear:
		if s.Bal[op.Key] < op.Arg {
			s.Uncovered = append(s.Uncovered, Uncovered{CheckID: op.ID, Account: op.Key, Amount: op.Arg})
		}
		s.Bal[op.Key] -= op.Arg
	case KindBounceFee:
		s.Bal[op.Key] -= op.Arg
	}
	return s
}

// Snapshot returns an independent deep copy of the accounts. Implementing
// core.Snapshotter lets replicas advance their balance fold from a
// checkpoint instead of replaying the whole ledger on every admission
// check.
func (App) Snapshot(s *Accounts) *Accounts {
	return &Accounts{Bal: maps.Clone(s.Bal), Uncovered: slices.Clone(s.Uncovered)}
}

// NoOverdraft is the probabilistically enforced business rule: "there is
// an expressed business rule that the account balance will not drop below
// zero ... it is a business decision on the part of the bank to allow this
// risk."
func NoOverdraft() core.Rule[*Accounts] {
	return core.Rule[*Accounts]{
		Name: RuleName,
		Admit: func(s *Accounts, op oplog.Entry) bool {
			if op.Kind != KindClear {
				return true
			}
			return s.Bal[op.Key] >= op.Arg
		},
		Violated: func(s *Accounts) []core.Violation {
			out := make([]core.Violation, 0, len(s.Uncovered))
			for _, u := range s.Uncovered {
				out = append(out, core.Violation{
					Detail: fmt.Sprintf("check %s for %d¢ cleared against insufficient funds on %s", u.CheckID, u.Amount, u.Account),
					Key:    u.Account,
					Amount: u.Amount,
				})
			}
			return out
		},
	}
}

// Statement is one immutable monthly account statement.
type Statement struct {
	Account  string
	Seq      int
	Opening  int64
	Closing  int64
	Lines    []oplog.Entry
	CutoffAt sim.Time
	IssuedAt sim.Time
}

// Bank wires a core.Cluster to banking semantics: check numbering,
// automatic bounce-fee compensation, and per-replica statement books.
type Bank struct {
	C   *core.Cluster[*Accounts]
	fee int64

	checkSeq map[string]int
	// statement bookkeeping, per replica then per account
	stmts  []map[string][]Statement
	onStmt []map[uniq.ID]bool

	Bounced stats.Counter // bounce fees issued
}

// New builds a bank over a fresh core cluster. feeCents is the overdraft
// fee charged per uncovered check; opts configure the underlying cluster
// (replica count, transport, gossip cadence, ...).
func New(feeCents int64, opts ...core.Option) *Bank {
	b := &Bank{
		fee:      feeCents,
		checkSeq: make(map[string]int),
	}
	b.C = core.New[*Accounts](App{}, []core.Rule[*Accounts]{NoOverdraft()}, opts...)
	for i := 0; i < b.C.Replicas(); i++ {
		b.stmts = append(b.stmts, make(map[string][]Statement))
		b.onStmt = append(b.onStmt, make(map[uniq.ID]bool))
	}
	// The designed apology (§5.6): business-specific compensation code
	// that charges the fee, with no human in the loop.
	b.C.Apologies.AddHandler(func(a apology.Apology) bool {
		if a.Rule != RuleName {
			return false
		}
		b.Bounced.Inc()
		op := core.NewOp(KindBounceFee, a.Key, b.fee)
		op.Note = "overdraft fee for " + a.Detail
		b.C.SubmitAsync(0, op, nil, core.WithPolicy(policy.AlwaysAsync()))
		return true
	})
	return b
}

// Deposit credits cents to account at replica rep. done may be nil.
func (b *Bank) Deposit(rep int, account string, cents int64, done func(core.Result)) {
	b.C.SubmitAsync(rep, core.NewOp(KindDeposit, account, cents), done,
		core.WithPolicy(policy.AlwaysAsync()))
}

// ClearCheck presents a numbered check at replica rep. The check number
// is the uniquifier: presenting the same check at two replicas debits the
// account once. pol decides whether this check clears on local knowledge
// or coordinates (the $10,000 rule). done may be nil.
func (b *Bank) ClearCheck(rep int, account string, checkNo int, cents int64, pol policy.Policy, done func(core.Result)) {
	op := oplogEntry(account, checkNo, cents, b.C.Now())
	b.C.SubmitAsync(rep, op, done, core.WithPolicy(pol))
}

// NextCheckNo hands out the next check number for an account's checkbook.
func (b *Bank) NextCheckNo(account string) int {
	b.checkSeq[account]++
	return b.checkSeq[account]
}

func oplogEntry(account string, checkNo int, cents int64, at sim.Time) oplog.Entry {
	return oplog.Entry{
		ID:   uniq.CheckNumber("quicksand-bank", account, checkNo),
		Kind: KindClear,
		Key:  account,
		Arg:  cents,
		At:   at,
	}
}

// Balance reads an account's balance as replica rep currently knows it —
// a guess, not the truth (§5.1).
func (b *Bank) Balance(rep int, account string) int64 {
	return b.C.Replica(rep).State().Balance(account)
}

// IssueStatement closes the books for account at replica rep: every
// operation this replica has seen, dated at or before cutoff and not on a
// previous statement, becomes one immutable statement. Late-arriving
// operations — even ones dated inside an already-issued statement's
// window — land on the next statement, never a reprint.
func (b *Bank) IssueStatement(rep int, account string, cutoff sim.Time) Statement {
	seen := b.onStmt[rep]
	var lines []oplog.Entry
	for _, e := range b.C.Replica(rep).Ops().Entries() {
		if e.Key != account || e.At > cutoff || seen[e.ID] {
			continue
		}
		lines = append(lines, e)
	}
	prev := b.stmts[rep][account]
	opening := int64(0)
	if len(prev) > 0 {
		opening = prev[len(prev)-1].Closing
	}
	closing := opening
	for _, e := range lines {
		closing += opEffect(e)
		seen[e.ID] = true
	}
	st := Statement{
		Account:  account,
		Seq:      len(prev) + 1,
		Opening:  opening,
		Closing:  closing,
		Lines:    lines,
		CutoffAt: cutoff,
		IssuedAt: b.C.Now(),
	}
	b.stmts[rep][account] = append(prev, st)
	return st
}

// Statements returns the issued statements for account at replica rep.
func (b *Bank) Statements(rep int, account string) []Statement {
	return append([]Statement(nil), b.stmts[rep][account]...)
}

func opEffect(e oplog.Entry) int64 {
	switch e.Kind {
	case KindDeposit:
		return e.Arg
	default: // clear-check, bounce-fee
		return -e.Arg
	}
}
