package bank

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
)

func newBank(seed int64, replicas int) (*sim.Sim, *Bank) {
	s := sim.New(seed)
	return s, New(30_00, core.WithSim(s), core.WithReplicas(replicas)) // $30 bounce fee
}

func deposit(t *testing.T, s *sim.Sim, b *Bank, rep int, acct string, cents int64) {
	t.Helper()
	ok := false
	b.Deposit(rep, acct, cents, func(r core.Result) { ok = r.Accepted })
	s.Run()
	if !ok {
		t.Fatalf("deposit of %d failed", cents)
	}
}

func clear(t *testing.T, s *sim.Sim, b *Bank, rep int, acct string, no int, cents int64) bool {
	t.Helper()
	var res core.Result
	b.ClearCheck(rep, acct, no, cents, policy.AlwaysAsync(), func(r core.Result) { res = r })
	s.Run()
	return res.Accepted
}

func converge(t *testing.T, s *sim.Sim, b *Bank) {
	t.Helper()
	for i := 0; i < b.C.Replicas()+2 && !b.C.Converged(); i++ {
		b.C.GossipRound()
		s.Run()
	}
	if !b.C.Converged() {
		t.Fatal("bank replicas failed to converge")
	}
}

func TestDepositAndClear(t *testing.T) {
	s, b := newBank(1, 2)
	deposit(t, s, b, 0, "acct", 100_00)
	if !clear(t, s, b, 0, "acct", b.NextCheckNo("acct"), 40_00) {
		t.Fatal("covered check declined")
	}
	if got := b.Balance(0, "acct"); got != 60_00 {
		t.Fatalf("balance = %d", got)
	}
}

func TestLocalGuessDeclinesOverdraft(t *testing.T) {
	s, b := newBank(2, 2)
	deposit(t, s, b, 0, "acct", 10_00)
	if clear(t, s, b, 0, "acct", 1, 50_00) {
		t.Fatal("check cleared against locally visible insufficient funds")
	}
}

// TestSameCheckAtTwoReplicasClearsOnce is §6.2's core idempotence claim:
// "each replica that clears a check will remember the check with its check
// number ... the usage of check numbers makes the processing of the check
// idempotent."
func TestSameCheckAtTwoReplicasClearsOnce(t *testing.T) {
	s, b := newBank(3, 2)
	deposit(t, s, b, 0, "acct", 100_00)
	converge(t, s, b)
	// The same physical check (number 7) is presented at both replicas.
	if !clear(t, s, b, 0, "acct", 7, 25_00) {
		t.Fatal("first presentation declined")
	}
	if !clear(t, s, b, 1, "acct", 7, 25_00) {
		t.Fatal("second presentation declined (idempotent accept expected)")
	}
	converge(t, s, b)
	if got := b.Balance(0, "acct"); got != 75_00 {
		t.Fatalf("balance = %d; the check debited more than once", got)
	}
}

// TestReplicatedClearingOverdraftBouncesOnce reproduces the §6.2 anomaly:
// two replicas clear different checks against the same funds; the merged
// truth shows an overdraft; exactly one automated bounce fee is charged.
func TestReplicatedClearingOverdraftBouncesOnce(t *testing.T) {
	s, b := newBank(4, 2)
	deposit(t, s, b, 0, "acct", 100_00)
	converge(t, s, b)
	// Both replicas see balance 100; each clears a 70¢00 check locally.
	if !clear(t, s, b, 0, "acct", 101, 70_00) {
		t.Fatal("check at r0 declined")
	}
	if !clear(t, s, b, 1, "acct", 102, 70_00) {
		t.Fatal("check at r1 declined (it cannot see r0's clearing)")
	}
	converge(t, s, b)
	s.Run()
	if b.Bounced.Value() != 1 {
		t.Fatalf("bounce fees = %d, want exactly 1", b.Bounced.Value())
	}
	converge(t, s, b) // spread the fee op
	// Final balance: 100 - 70 - 70 - 30 fee = -70.
	for rep := 0; rep < 2; rep++ {
		if got := b.Balance(rep, "acct"); got != -70_00 {
			t.Fatalf("replica %d balance = %d, want -7000", rep, got)
		}
	}
}

func TestTenThousandDollarPolicyPreventsOverdraft(t *testing.T) {
	s, b := newBank(5, 2)
	deposit(t, s, b, 0, "acct", 15_000_00)
	converge(t, s, b)
	pol := policy.Threshold(10_000_00)
	// Two $12k checks against $15k: the second must coordinate and be
	// refused, not guessed through.
	okA, okB := false, false
	b.ClearCheck(0, "acct", 201, 12_000_00, pol, func(r core.Result) { okA = r.Accepted })
	s.Run()
	converge(t, s, b)
	b.ClearCheck(1, "acct", 202, 12_000_00, pol, func(r core.Result) { okB = r.Accepted })
	s.Run()
	if !okA {
		t.Fatal("first big check declined")
	}
	if okB {
		t.Fatal("second big check cleared; coordination should have refused it")
	}
	if b.Bounced.Value() != 0 {
		t.Fatalf("bounce fees = %d under coordination", b.Bounced.Value())
	}
}

func TestConvergenceOrderIndependence(t *testing.T) {
	// Replicas clear disjoint checks in different orders; after
	// convergence all agree — §7.6 verbatim.
	s, b := newBank(6, 3)
	deposit(t, s, b, 0, "acct", 500_00)
	converge(t, s, b)
	clear(t, s, b, 0, "acct", 1, 50_00)
	clear(t, s, b, 1, "acct", 2, 60_00)
	clear(t, s, b, 2, "acct", 3, 70_00)
	converge(t, s, b)
	want := b.Balance(0, "acct")
	if want != 500_00-180_00 {
		t.Fatalf("balance = %d", want)
	}
	for rep := 1; rep < 3; rep++ {
		if got := b.Balance(rep, "acct"); got != want {
			t.Fatalf("replica %d balance %d != %d", rep, got, want)
		}
	}
}

func TestStatementsImmutableAndLateOpsRollForward(t *testing.T) {
	s, b := newBank(7, 2)
	deposit(t, s, b, 0, "acct", 100_00)
	clear(t, s, b, 0, "acct", 1, 20_00)
	converge(t, s, b) // replica 1 must know the funds to admit the late check
	march := b.IssueStatement(0, "acct", s.Now())
	if march.Opening != 0 || march.Closing != 80_00 || len(march.Lines) != 2 {
		t.Fatalf("march = %+v", march)
	}

	// A check dated before the March cutoff arrives late, via replica 1.
	lateAt := march.CutoffAt - 1
	b.C.SubmitAsync(1, oplogEntry("acct", 99, 10_00, lateAt), func(core.Result) {}, core.WithPolicy(policy.AlwaysAsync()))
	s.Run()
	converge(t, s, b)

	april := b.IssueStatement(0, "acct", s.Now())
	if april.Opening != 80_00 {
		t.Fatalf("april opening = %d, want march closing", april.Opening)
	}
	if len(april.Lines) != 1 || april.Lines[0].Arg != 10_00 {
		t.Fatalf("late check not on april statement: %+v", april.Lines)
	}
	// March must be untouched: "March's statement is never modified."
	stmts := b.Statements(0, "acct")
	if len(stmts[0].Lines) != 2 || stmts[0].Closing != 80_00 {
		t.Fatal("issued statement mutated")
	}
}

func TestStatementPerReplicaTiming(t *testing.T) {
	// §6.2: "a very untimely outage could result in the check landing in
	// next month's statement rather than this month but that's no big
	// deal." Replica 1 hasn't seen the check at cutoff; its statement
	// differs from replica 0's, but the closing balances reconcile after
	// the next statement.
	s, b := newBank(8, 2)
	deposit(t, s, b, 0, "acct", 100_00)
	m0 := b.IssueStatement(0, "acct", s.Now())
	m1 := b.IssueStatement(1, "acct", s.Now())
	if m0.Closing == m1.Closing {
		t.Fatal("replica 1 somehow saw the un-gossiped deposit")
	}
	converge(t, s, b)
	s.RunFor(time.Millisecond)
	n1 := b.IssueStatement(1, "acct", s.Now())
	if n1.Closing != m0.Closing {
		t.Fatalf("statements never reconcile: %d vs %d", n1.Closing, m0.Closing)
	}
}

// TestPropStatementsSumToBalance: however checks and deposits interleave,
// the final statement closing equals the replica's balance — the ledger
// and the account can't drift apart.
func TestPropStatementsSumToBalance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, b := newBank(seed, 2)
		no := 0
		for i := 0; i < 15; i++ {
			rep := r.Intn(2)
			if r.Intn(2) == 0 {
				b.Deposit(rep, "acct", int64(r.Intn(100)+1), func(core.Result) {})
			} else {
				no++
				b.ClearCheck(rep, "acct", no, int64(r.Intn(80)+1), policy.AlwaysAsync(), func(core.Result) {})
			}
			s.Run()
			if r.Intn(4) == 0 {
				b.IssueStatement(0, "acct", s.Now())
			}
			if r.Intn(3) == 0 {
				b.C.GossipRound()
				s.Run()
			}
		}
		for i := 0; i < 4; i++ {
			b.C.GossipRound()
			s.Run()
		}
		if !b.C.Converged() {
			return false
		}
		final := b.IssueStatement(0, "acct", s.Now())
		return final.Closing == b.Balance(0, "acct")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
