package sim

import (
	"testing"
	"time"
)

func TestNowStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New(1)
	var fired Time
	s.After(5*time.Millisecond, func() { fired = s.Now() })
	s.Run()
	if fired != Time(5*time.Millisecond) {
		t.Fatalf("fired at %v, want 5ms", fired)
	}
	if s.Now() != Time(5*time.Millisecond) {
		t.Fatalf("clock at %v, want 5ms", s.Now())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got order %v, want %v", got, want)
		}
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(time.Second), func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("got order %v, want ascending", got)
		}
	}
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {
		s.At(0, func() {
			if s.Now() != Time(time.Second) {
				t.Errorf("past event ran at %v, want clamped to 1s", s.Now())
			}
		})
	})
	s.Run()
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v, want 0", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if ran {
		t.Fatal("stopped timer still fired")
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop() after fire = true, want false")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	count := 0
	var stop func()
	stop = s.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			stop()
		}
	})
	s.RunFor(time.Second)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5 (stop must cancel future firings)", count)
	}
}

func TestEveryPanicsOnZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := New(1)
	s.RunUntil(Time(time.Minute))
	if s.Now() != Time(time.Minute) {
		t.Fatalf("Now() = %v, want 1m", s.Now())
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	s := New(1)
	ran := false
	s.After(2*time.Second, func() { ran = true })
	s.RunUntil(Time(time.Second))
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.Run()
	if !ran {
		t.Fatal("event never ran after Run()")
	}
}

func TestDeterminismAcrossSeeds(t *testing.T) {
	history := func(seed int64) []int64 {
		s := New(seed)
		var h []int64
		for i := 0; i < 50; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
			s.After(d, func() { h = append(h, int64(s.Now())) })
		}
		s.Run()
		return h
	}
	a, b := history(42), history(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histories diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(time.Microsecond, recurse)
		}
	}
	s.After(0, recurse)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Steps() != 100 {
		t.Fatalf("Steps() = %d, want 100", s.Steps())
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(time.Second)
	if base.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add broken")
	}
	if base.Add(time.Second).Sub(base) != time.Second {
		t.Fatal("Sub broken")
	}
	if Time(1500*time.Millisecond).String() != "1.5s" {
		t.Fatalf("String() = %q", Time(1500*time.Millisecond).String())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Fatal("Step() on empty queue = true")
	}
}
