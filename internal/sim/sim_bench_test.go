package sim

import (
	"testing"
	"time"
)

// The event loop's throughput bounds every experiment in the repository.

func BenchmarkScheduleAndRun(b *testing.B) {
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

func BenchmarkDeepQueue(b *testing.B) {
	// Schedule b.N events up front (heap at full depth), then drain.
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	b.ResetTimer()
	s.Run()
}

func BenchmarkTimerStop(b *testing.B) {
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(time.Hour, func() {})
		t.Stop()
	}
}
