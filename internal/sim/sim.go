// Package sim provides a deterministic discrete-event simulator.
//
// Every distributed system in this repository — the Tandem process pairs,
// log shipping, the Dynamo-style store, the replicated bank — runs on top
// of a Sim instead of wall-clock time and real threads. Virtual time plus
// a seeded random source make every test and every experiment reproducible
// bit-for-bit, which is what lets the benchmark harness regenerate the
// same tables on every run.
//
// The model is a classic event loop: callbacks are scheduled at virtual
// timestamps and executed in (time, sequence) order. There is no
// parallelism inside a Sim; "concurrency" between simulated nodes is
// interleaving of their events, exactly as in the fail-fast,
// message-passing world the paper describes.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulated clocks share no
// epoch with the host.
type Time int64

// Duration re-exports time.Duration for callers that want to avoid
// importing time alongside sim.
type Duration = time.Duration

// Add returns the Time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the Duration between t and earlier u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the timestamp as a duration offset, e.g. "1.5s".
func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tiebreak so same-time events run in schedule order
	fn   func()
	dead bool // set by Timer.Stop
	idx  int  // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a deterministic discrete-event simulator. The zero value is not
// usable; construct with New.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	steps  uint64
}

// New returns a simulator whose random source is seeded with seed.
// Two simulators built with the same seed and fed the same schedule of
// events produce identical histories.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's random source. All randomness in a
// simulation must come from here to preserve determinism.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have executed so far. Useful as a crude
// "work done" metric and in runaway-loop guards.
func (s *Sim) Steps() uint64 { return s.steps }

// Timer identifies a scheduled event and allows cancelling it.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the callback had not yet run
// (and therefore will never run). Stopping an already-fired or
// already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// At schedules fn to run at virtual time at. Scheduling in the past (or
// at the present instant) runs the callback at the current time but after
// all previously scheduled events for that time.
func (s *Sim) At(at Time, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return &Timer{ev: e}
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Every schedules fn to run every interval, first firing after interval.
// The returned stop function cancels future firings. interval must be
// positive; Every panics otherwise, since a zero interval would wedge the
// event loop at a single instant.
func (s *Sim) Every(interval Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every interval must be positive, got %v", interval))
	}
	stopped := false
	var tick func()
	var timer *Timer
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			timer = s.After(interval, tick)
		}
	}
	timer = s.After(interval, tick)
	return func() {
		stopped = true
		timer.Stop()
	}
}

// Step executes the single next event, advancing virtual time to its
// timestamp. It reports whether an event was executed (false when the
// queue is empty).
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.dead {
			continue
		}
		e.dead = true // fired; Stop after this point reports false
		s.now = e.at
		s.steps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t even if no event lands exactly there. Events scheduled later
// remain queued.
func (s *Sim) RunUntil(t Time) {
	for s.events.Len() > 0 {
		if s.peek().at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor executes events within the next d of virtual time.
func (s *Sim) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Pending reports how many events (including cancelled-but-unreaped ones)
// remain queued.
func (s *Sim) Pending() int { return s.events.Len() }

func (s *Sim) peek() *event { return s.events[0] }
