package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestPassthroughIsOSFile(t *testing.T) {
	dir := t.TempDir()
	f, err := OS.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, ok := f.(*os.File); !ok {
		t.Fatalf("passthrough hands out %T, want a bare *os.File", f)
	}
}

func TestCrashAfterKCountsAndRefuses(t *testing.T) {
	dir := t.TempDir()
	inj := New(OS, 1, nil)
	inj.CrashAfter(2)                                                             // create + one write survive
	f, err := inj.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_RDWR, 0o644) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ab")); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("cd")); !errors.Is(err, ErrCrashed) { // op 3: dead
		t.Fatalf("write after crash = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash = %v, want ErrCrashed", err)
	}
	if _, err := inj.ReadFile(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash = %v, want ErrCrashed", err)
	}
	if !inj.Crashed() || inj.Ops() != 2 {
		t.Fatalf("crashed=%v ops=%d, want true/2", inj.Crashed(), inj.Ops())
	}
}

func TestTearDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	// Seed 0's first Intn(n+1) can keep a prefix; assert only the
	// invariants: synced bytes survive, the file never exceeds what was
	// written, and the surviving tail is a prefix of the unsynced bytes.
	inj := New(OS, 42, nil)
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable.")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := inj.Tear(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "durable.volatile"
	if len(got) < len("durable.") || len(got) > len(want) || want[:len(got)] != string(got) {
		t.Fatalf("tear left %q, want a prefix of %q covering the synced part", got, want)
	}
}

func TestTearRevertsUnsyncedOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	inj := New(OS, 1, nil)
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("HEADER")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("header"), 0); err != nil { // unsynced overwrite
		t.Fatal(err)
	}
	f.Close()
	if err := inj.Tear(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "HEADER" {
		t.Fatalf("tear kept an unsynced overwrite: %q", got)
	}
}

func TestScriptShortWriteAndENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	inj := New(OS, 1, func(op Op) Decision {
		if op.Kind == OpWrite {
			return Decision{Err: syscall.ENOSPC, Keep: 3}
		}
		return Decision{}
	})
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write = (%d, %v), want (3, ENOSPC)", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "abc" {
		t.Fatalf("disk holds %q after short write, want %q", got, "abc")
	}
}

func TestLyingSyncNeverAdvancesDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	inj := New(OS, 99, func(op Op) Decision {
		if op.Kind == OpSync {
			return Decision{LieSync: true}
		}
		return Decision{}
	})
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // reports success, holds nothing
		t.Fatal(err)
	}
	f.Close()
	if err := inj.Tear(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if len(got) == len("gone") {
		// The seeded tail-keep may legitimately preserve a prefix, but a
		// lying sync must never guarantee the full content survives.
		// With seed 99 the first draw keeps less than everything.
		t.Fatalf("lying fsync preserved all %q", got)
	}
}

func TestRenameMovesMirror(t *testing.T) {
	dir := t.TempDir()
	oldp, newp := filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a")
	inj := New(OS, 5, nil)
	f, err := inj.OpenFile(oldp, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := inj.Rename(oldp, newp); err != nil {
		t.Fatal(err)
	}
	if err := inj.Tear(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(newp)
	if err != nil || string(got) != "payload" {
		t.Fatalf("renamed synced file = %q, %v; want full payload", got, err)
	}
}
