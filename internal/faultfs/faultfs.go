// Package faultfs is the syscall seam under the durable tier: a small
// filesystem interface (open/write/sync/rename/remove/truncate) that
// internal/store routes every disk operation through, with two
// implementations. OS is a zero-cost passthrough to the real calls —
// *os.File itself satisfies File, so the happy path is plain interface
// dispatch, no wrapping, no allocation. Injector wraps any FS with a
// deterministic, seeded fault script: EIO on the k-th write, ENOSPC,
// short writes, fsyncs that report success while dropping data, and a
// crash switch that kills every operation after the k-th mutation and
// then *tears* the files — reverting each one to its last-fsynced
// content plus a seeded prefix of the unsynced tail, the way a lost
// page cache does.
//
// Building on Quicksand's §2–3 premise is that the substrate lies, and
// fault tolerance is only real if it is tested against the lies. The
// hand-picked torn-tail cases of the early store tests sample a few
// points in the crash space; this seam makes the whole space
// enumerable: count the mutating syscalls a workload performs, then
// replay it once per k with "die after syscall k", and recovery must
// reach the identical state at every k. That sweep lives in
// internal/store's crash-point tests; this package only supplies the
// determinism.
//
// # The tear model
//
// Write-through with mirrors: every write lands in the real file
// immediately (so reads and replays observe it), while the injector
// keeps an in-memory mirror per writable file recording (a) the bytes
// as the process sees them and (b) the bytes as of the last honored
// fsync. Tear() reconciles the real directory with what a crash at
// that moment could have preserved: each file reverts to its synced
// image plus a seeded-length prefix of whatever was appended since —
// including zero bytes of it. Unsynced overwrites of already-synced
// regions (a rewritten header, say) revert entirely. Directory-level
// operations — create, rename, remove — are modeled as durable and
// atomic at the moment they return: the store already orders them
// behind explicit directory fsyncs, and rename atomicity is the
// contract snapshots are built on. A sync the script chose to lie
// about does not advance the mirror, so data the caller was told is
// durable still vanishes at the next tear — the fsync-lies fault.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the slice of *os.File the store needs. *os.File satisfies it
// directly, so the passthrough FS hands out real files untouched.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem surface the durable tier consumes. Methods
// mirror the os/filepath calls they replace, one for one.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens read-only — the store uses it to fsync directories.
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Glob(pattern string) ([]string, error)
}

// OS is the passthrough FS: the real syscalls, nothing between.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) Glob(pattern string) ([]string, error)      { return filepath.Glob(pattern) }

// OpKind names one intercepted operation class.
type OpKind uint8

const (
	OpCreate   OpKind = iota // OpenFile with O_CREATE or O_TRUNC
	OpWrite                  // File.Write
	OpWriteAt                // File.WriteAt
	OpSync                   // File.Sync (files and directories alike)
	OpTruncate               // File.Truncate or FS.Truncate
	OpRename                 // FS.Rename
	OpRemove                 // FS.Remove
	OpMkdir                  // FS.MkdirAll
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpWriteAt:
		return "writeat"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpMkdir:
		return "mkdir"
	}
	return "unknown"
}

// Op describes one mutating operation as the script sees it.
type Op struct {
	K    int // 1-based index among all mutating operations so far
	Kind OpKind
	Path string
	Size int // bytes involved (writes and truncates; 0 otherwise)
}

// Decision is the script's verdict on one operation.
type Decision struct {
	// Err fails the operation with this error (wrapped in an
	// *fs.PathError so it reads like the real thing). syscall.EIO and
	// syscall.ENOSPC are the usual tenants.
	Err error
	// Keep lets the first Keep bytes of a failing write land anyway —
	// the short-write fault. Meaningful only with Err set on a write.
	Keep int
	// LieSync makes a sync report success without honoring it: the
	// mirror's durable image does not advance, so the "durable" bytes
	// still vanish at the next Tear. Meaningful only on OpSync.
	LieSync bool
}

// Script decides the fate of each mutating operation. It runs under
// the injector's lock: keep it pure. A nil script injects nothing.
type Script func(op Op) Decision

// ErrCrashed marks every operation refused after the crash point: the
// simulated process is dead, there is no one left to issue syscalls.
var ErrCrashed = errors.New("faultfs: crashed (injected)")

// mirror tracks one writable file's two images: mem is the content the
// process believes in, synced the content the last honored fsync made
// durable.
type mirror struct {
	mem    []byte
	synced []byte
}

// Injector wraps an FS with a deterministic fault plan. Zero value is
// not usable; build with New.
type Injector struct {
	inner  FS
	script Script
	rng    *rand.Rand

	mu      sync.Mutex
	k       int // mutating operations observed
	crashAt int // die after this many mutations; -1 = never
	crashed bool
	files   map[string]*mirror
}

// New wraps inner with a fault plan. seed drives the tear lengths (how
// much of each unsynced tail survives a crash); script may be nil.
func New(inner FS, seed int64, script Script) *Injector {
	return &Injector{
		inner:   inner,
		script:  script,
		rng:     rand.New(rand.NewSource(seed)),
		crashAt: -1,
		files:   map[string]*mirror{},
	}
}

// CrashAfter arms the crash switch: the first k mutating operations
// proceed (subject to the script), every later operation — reads
// included — fails with ErrCrashed. k=0 dies before the first
// mutation.
func (i *Injector) CrashAfter(k int) {
	i.mu.Lock()
	i.crashAt = k
	i.mu.Unlock()
}

// Ops reports how many mutating operations have been observed — the N
// a crash-point enumerator sweeps k across.
func (i *Injector) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.k
}

// Crashed reports whether the crash switch has tripped.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// step admits one mutating operation: it trips the crash switch when
// armed, numbers the op, and consults the script.
func (i *Injector) step(kind OpKind, path string, size int) (Decision, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return Decision{}, pathErr(kind.String(), path, ErrCrashed)
	}
	if i.crashAt >= 0 && i.k >= i.crashAt {
		i.crashed = true
		return Decision{}, pathErr(kind.String(), path, ErrCrashed)
	}
	i.k++
	if i.script == nil {
		return Decision{}, nil
	}
	return i.script(Op{K: i.k, Kind: kind, Path: path, Size: size}), nil
}

// gate admits one non-mutating operation: free while alive, refused
// once crashed.
func (i *Injector) gate(op, path string) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashed {
		return pathErr(op, path, ErrCrashed)
	}
	return nil
}

func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

func (i *Injector) MkdirAll(path string, perm fs.FileMode) error {
	d, err := i.step(OpMkdir, path, 0)
	if err != nil {
		return err
	}
	if d.Err != nil {
		return pathErr("mkdir", path, d.Err)
	}
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC) != 0 {
		d, err := i.step(OpCreate, name, 0)
		if err != nil {
			return nil, err
		}
		if d.Err != nil {
			return nil, pathErr("open", name, d.Err)
		}
	} else if err := i.gate("open", name); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{inj: i, path: name, f: f}
	if flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		// Track a mirror for every writable file. Whatever is on disk at
		// open is durable already; only writes from here on can tear. A
		// path opened before keeps its mirror — reopening must not
		// launder an unsynced tail into the durable image.
		var base []byte
		if flag&os.O_TRUNC == 0 {
			base, _ = i.inner.ReadFile(name)
		}
		i.mu.Lock()
		m, ok := i.files[name]
		switch {
		case !ok:
			m = &mirror{mem: append([]byte(nil), base...), synced: append([]byte(nil), base...)}
			i.files[name] = m
		case flag&os.O_TRUNC != 0:
			m.mem, m.synced = m.mem[:0], m.synced[:0]
		}
		i.mu.Unlock()
		ff.m = m
	}
	return ff, nil
}

func (i *Injector) Open(name string) (File, error) {
	if err := i.gate("open", name); err != nil {
		return nil, err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inj: i, path: name, f: f}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if err := i.gate("read", name); err != nil {
		return nil, err
	}
	return i.inner.ReadFile(name)
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := i.gate("readdir", name); err != nil {
		return nil, err
	}
	return i.inner.ReadDir(name)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	d, err := i.step(OpRename, oldpath, 0)
	if err != nil {
		return err
	}
	if d.Err != nil {
		return pathErr("rename", oldpath, d.Err)
	}
	if err := i.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	i.mu.Lock()
	if m, ok := i.files[oldpath]; ok {
		i.files[newpath] = m
		delete(i.files, oldpath)
	}
	i.mu.Unlock()
	return nil
}

func (i *Injector) Remove(name string) error {
	d, err := i.step(OpRemove, name, 0)
	if err != nil {
		return err
	}
	if d.Err != nil {
		return pathErr("remove", name, d.Err)
	}
	if err := i.inner.Remove(name); err != nil {
		return err
	}
	i.mu.Lock()
	delete(i.files, name)
	i.mu.Unlock()
	return nil
}

func (i *Injector) Truncate(name string, size int64) error {
	d, err := i.step(OpTruncate, name, int(size))
	if err != nil {
		return err
	}
	if d.Err != nil {
		return pathErr("truncate", name, d.Err)
	}
	if err := i.inner.Truncate(name, size); err != nil {
		return err
	}
	i.mu.Lock()
	if m, ok := i.files[name]; ok {
		m.resize(size)
	}
	i.mu.Unlock()
	return nil
}

func (i *Injector) Glob(pattern string) ([]string, error) {
	if err := i.gate("glob", pattern); err != nil {
		return nil, err
	}
	return i.inner.Glob(pattern)
}

// Tear reconciles the real directory with what a crash right now could
// have preserved: every tracked file reverts to its last-synced image
// plus a seeded-length prefix of the bytes appended since. Call it
// after the owning store has been crashed (no handles left), before
// reopening with a passthrough FS to recover. Paths are processed in
// sorted order so a given seed always tears the same way.
func (i *Injector) Tear() error {
	i.mu.Lock()
	paths := make([]string, 0, len(i.files))
	for p := range i.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	type job struct {
		path    string
		content []byte
	}
	jobs := make([]job, 0, len(paths))
	for _, p := range paths {
		m := i.files[p]
		survivor := append([]byte(nil), m.synced...)
		if tail := len(m.mem) - len(m.synced); tail > 0 {
			keep := i.rng.Intn(tail + 1)
			survivor = append(survivor, m.mem[len(m.synced):len(m.synced)+keep]...)
		}
		jobs = append(jobs, job{path: p, content: survivor})
	}
	i.mu.Unlock()
	for _, j := range jobs {
		f, err := i.inner.OpenFile(j.path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(j.content); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// faultFile routes one file's operations through the injector.
type faultFile struct {
	inj  *Injector
	path string
	f    File
	m    *mirror // nil for read-only handles
	off  int64   // current write position, tracked for the mirror
}

func (f *faultFile) Write(p []byte) (int, error) {
	d, err := f.inj.step(OpWrite, f.path, len(p))
	if err != nil {
		return 0, err
	}
	n := len(p)
	if d.Err != nil {
		n = d.Keep
		if n > len(p) {
			n = len(p)
		}
	}
	var wrote int
	if n > 0 {
		wrote, err = f.f.Write(p[:n])
		f.apply(f.off, p[:wrote])
		f.off += int64(wrote)
		if err != nil {
			return wrote, err
		}
	}
	if d.Err != nil {
		return wrote, pathErr("write", f.path, d.Err)
	}
	return wrote, nil
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	d, err := f.inj.step(OpWriteAt, f.path, len(p))
	if err != nil {
		return 0, err
	}
	n := len(p)
	if d.Err != nil {
		n = d.Keep
		if n > len(p) {
			n = len(p)
		}
	}
	var wrote int
	if n > 0 {
		wrote, err = f.f.WriteAt(p[:n], off)
		f.apply(off, p[:wrote])
		if err != nil {
			return wrote, err
		}
	}
	if d.Err != nil {
		return wrote, pathErr("write", f.path, d.Err)
	}
	return wrote, nil
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.inj.gate("read", f.path); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.inj.gate("seek", f.path); err != nil {
		return 0, err
	}
	pos, err := f.f.Seek(offset, whence)
	if err == nil {
		f.off = pos
	}
	return pos, err
}

func (f *faultFile) Sync() error {
	d, err := f.inj.step(OpSync, f.path, 0)
	if err != nil {
		return err
	}
	if d.Err != nil {
		return pathErr("sync", f.path, d.Err)
	}
	if d.LieSync {
		// Report success, honor nothing: the durable image stays where
		// it was, so these bytes still vanish at the next Tear.
		return nil
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	if f.m != nil {
		f.inj.mu.Lock()
		f.m.synced = append(f.m.synced[:0], f.m.mem...)
		f.inj.mu.Unlock()
	}
	return nil
}

func (f *faultFile) Truncate(size int64) error {
	d, err := f.inj.step(OpTruncate, f.path, int(size))
	if err != nil {
		return err
	}
	if d.Err != nil {
		return pathErr("truncate", f.path, d.Err)
	}
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	if f.m != nil {
		f.inj.mu.Lock()
		f.m.resize(size)
		f.inj.mu.Unlock()
	}
	return nil
}

func (f *faultFile) Close() error {
	if err := f.inj.gate("close", f.path); err != nil {
		f.f.Close()
		return err
	}
	return f.f.Close()
}

func (f *faultFile) Stat() (fs.FileInfo, error) {
	if err := f.inj.gate("stat", f.path); err != nil {
		return nil, err
	}
	return f.f.Stat()
}

// apply folds one write into the mirror's live image.
func (f *faultFile) apply(off int64, p []byte) {
	if f.m == nil || len(p) == 0 {
		return
	}
	f.inj.mu.Lock()
	defer f.inj.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(f.m.mem)) < end {
		f.m.mem = append(f.m.mem, make([]byte, end-int64(len(f.m.mem)))...)
	}
	copy(f.m.mem[off:end], p)
}

// resize adjusts the live image to a truncate: shrink drops the tail,
// extend zero-fills (and the zeros are unsynced until the next honored
// fsync, exactly like the real page cache).
func (m *mirror) resize(size int64) {
	switch {
	case int64(len(m.mem)) > size:
		m.mem = m.mem[:size]
		if int64(len(m.synced)) > size {
			m.synced = m.synced[:size]
		}
	case int64(len(m.mem)) < size:
		m.mem = append(m.mem, make([]byte, size-int64(len(m.mem)))...)
	}
}
