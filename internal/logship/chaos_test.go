package logship

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPropLossAccountingExactUnderChaos: for any crash moment, shipping
// interval, and recovery strategy, every acknowledged commit is either
// visible at the active datacenter or accounted for as an orphan — the
// Audit never finds silent loss.
func TestPropLossAccountingExactUnderChaos(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.New(seed)
		r := s.Rand()
		ship := time.Duration(r.Intn(190)+10) * time.Millisecond
		sys := New(s, Config{
			WANLatency:   time.Duration(r.Intn(20)+1) * time.Millisecond,
			ShipInterval: ship,
			DetectDelay:  time.Duration(r.Intn(10)+1) * time.Millisecond,
		})
		workload.PoissonLoop(s, 5*time.Millisecond, 200, func(i int) {
			sys.Commit(fmt.Sprintf("k%05d", i), fmt.Sprintf("v%d", i), func(bool) {})
		})
		crashAt := time.Duration(r.Intn(900)+100) * time.Millisecond
		s.At(sim.Time(crashAt), func() { sys.CrashPrimary() })
		s.RunUntil(sim.Time(2 * time.Second))

		// Post-takeover traffic at the backup.
		workload.PoissonLoop(s, 5*time.Millisecond, 30, func(i int) {
			sys.Commit(fmt.Sprintf("post%04d", i), "p", func(bool) {})
		})
		s.RunUntil(sim.Time(3 * time.Second))

		// Recover the failed primary with a random strategy.
		strategy := RecoveryStrategy(r.Intn(3))
		rep := sys.RestartPrimary(strategy)
		s.Run()
		if rep.Orphans != rep.Replayed+rep.Conflicts+rep.Queued+rep.Discarded {
			t.Logf("seed=%d report does not balance: %+v", seed, rep)
			return false
		}
		if got := sys.Audit(); got != 0 {
			t.Logf("seed=%d strategy=%v audit=%d", seed, strategy, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
