package logship

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func commitN(s *sim.Sim, sys *System, n int, prefix string) (acked *int) {
	acked = new(int)
	var next func(i int)
	next = func(i int) {
		if i == n {
			return
		}
		sys.Commit(fmt.Sprintf("%s-%03d", prefix, i), fmt.Sprintf("v%d", i), func(ok bool) {
			if ok {
				*acked++
			}
			next(i + 1)
		})
	}
	next(0)
	return acked
}

func TestAsyncCommitIsLocalLatency(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{WANLatency: 20 * time.Millisecond})
	var ok bool
	sys.Commit("k", "v", func(o bool) { ok = o })
	s.RunFor(10 * time.Millisecond)
	if !ok {
		t.Fatal("async commit not acked within local time")
	}
	// Commit latency must be group-commit local time, far below the WAN.
	if got := sys.M.CommitLat.MeanDur(); got >= 20*time.Millisecond {
		t.Fatalf("async commit latency %v, want << WAN 20ms", got)
	}
}

func TestSyncCommitPaysWANRoundTrip(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Sync: true, WANLatency: 20 * time.Millisecond})
	var ok bool
	sys.Commit("k", "v", func(o bool) { ok = o })
	s.Run()
	if !ok {
		t.Fatal("sync commit failed")
	}
	if got := sys.M.CommitLat.MeanDur(); got < 40*time.Millisecond {
		t.Fatalf("sync commit latency %v, want >= WAN round trip 40ms", got)
	}
}

func TestShippingCatchesUp(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{WANLatency: 5 * time.Millisecond, ShipInterval: 10 * time.Millisecond})
	acked := commitN(s, sys, 10, "k")
	s.Run()
	if *acked != 10 {
		t.Fatalf("acked %d of 10", *acked)
	}
	if sys.M.ShippedTxns.Value() != 10 {
		t.Fatalf("backup replayed %d of 10", sys.M.ShippedTxns.Value())
	}
	if lag := sys.BackupLagTxns(); lag != 0 {
		t.Fatalf("lag = %d after quiesce", lag)
	}
}

func TestTakeoverLosesUnshippedTail(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{
		WANLatency:   10 * time.Millisecond,
		ShipInterval: 100 * time.Millisecond, // long lag: big window
		DetectDelay:  5 * time.Millisecond,
	})
	acked := commitN(s, sys, 5, "k")
	// Crash before the first shipment departs (shipment at ~100ms).
	s.At(sim.Time(50*time.Millisecond), func() { sys.CrashPrimary() })
	s.Run()
	if *acked != 5 {
		t.Fatalf("acked %d of 5 before crash", *acked)
	}
	if sys.Active() != "dc2" {
		t.Fatalf("active = %s, want dc2 after takeover", sys.Active())
	}
	if got := sys.M.LostAtTakeover.Value(); got != 5 {
		t.Fatalf("lost = %d, want all 5 acked commits (nothing shipped)", got)
	}
	if sys.Orphans() != 5 {
		t.Fatalf("orphans = %d", sys.Orphans())
	}
	// The backup must not see the lost keys.
	sys.Read("k-000", func(v string, ok bool) {
		if ok {
			t.Error("lost commit visible at backup")
		}
	})
	if sys.Audit() != 0 {
		t.Fatalf("audit found %d unaccounted losses", sys.Audit())
	}
}

func TestFastShippingShrinksWindow(t *testing.T) {
	lost := func(shipEvery time.Duration) int64 {
		s := sim.New(3)
		sys := New(s, Config{
			WANLatency:   5 * time.Millisecond,
			ShipInterval: shipEvery,
			DetectDelay:  time.Millisecond,
		})
		// Commit steadily, then crash mid-shipping-window: with a 200ms
		// interval the last shipment departed around t=200, so ~10
		// commits are in the window at t=300; with a 10ms interval the
		// window holds at most a couple.
		var i int
		var loop func()
		loop = func() {
			i++
			sys.Commit(fmt.Sprintf("k%04d", i), "v", func(bool) {})
			if s.Now() < sim.Time(400*time.Millisecond) {
				s.After(10*time.Millisecond, loop)
			}
		}
		loop()
		s.At(sim.Time(300*time.Millisecond), func() { sys.CrashPrimary() })
		s.RunUntil(sim.Time(600 * time.Millisecond))
		return sys.M.LostAtTakeover.Value()
	}
	slow, fast := lost(200*time.Millisecond), lost(10*time.Millisecond)
	if fast >= slow {
		t.Fatalf("lost(fast ship)=%d >= lost(slow ship)=%d; window must shrink with lag", fast, slow)
	}
}

func TestSyncModeLosesNothing(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{Sync: true, WANLatency: 5 * time.Millisecond, DetectDelay: time.Millisecond})
	acked := commitN(s, sys, 5, "k")
	s.At(sim.Time(200*time.Millisecond), func() { sys.CrashPrimary() })
	s.Run()
	if *acked != 5 {
		t.Fatalf("acked %d of 5", *acked)
	}
	if sys.M.LostAtTakeover.Value() != 0 {
		t.Fatalf("sync mode lost %d acked commits", sys.M.LostAtTakeover.Value())
	}
	// Every acked commit must be readable at the backup.
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k-%03d", i)
		sys.Read(key, func(v string, ok bool) {
			if !ok {
				t.Errorf("%s missing at backup in sync mode", key)
			}
		})
	}
}

func TestCommitsContinueAtBackupAfterTakeover(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{WANLatency: 5 * time.Millisecond, DetectDelay: time.Millisecond})
	sys.CrashPrimary()
	s.RunFor(10 * time.Millisecond)
	var ok bool
	sys.Commit("post", "takeover", func(o bool) { ok = o })
	s.Run()
	if !ok {
		t.Fatal("commit at backup after takeover failed")
	}
	sys.Read("post", func(v string, got bool) {
		if !got || v != "takeover" {
			t.Errorf("post-takeover read = %q,%v", v, got)
		}
	})
	if sys.Audit() != 0 {
		t.Fatalf("audit = %d", sys.Audit())
	}
}

func recoveryScenario(t *testing.T, strategy RecoveryStrategy, overwrite bool) (RecoveryReport, *System, *sim.Sim) {
	t.Helper()
	s := sim.New(1)
	sys := New(s, Config{
		WANLatency:   5 * time.Millisecond,
		ShipInterval: time.Hour, // never ships: everything orphans
		DetectDelay:  time.Millisecond,
	})
	acked := commitN(s, sys, 3, "k")
	s.RunFor(50 * time.Millisecond)
	if *acked != 3 {
		t.Fatalf("acked %d of 3", *acked)
	}
	sys.CrashPrimary()
	s.RunFor(10 * time.Millisecond)
	if overwrite {
		// A post-takeover client overwrites one orphaned key.
		sys.Commit("k-001", "newer", func(bool) {})
		s.RunFor(50 * time.Millisecond)
	}
	rep := sys.RestartPrimary(strategy)
	s.Run()
	return rep, sys, s
}

func TestRecoveryDiscard(t *testing.T) {
	rep, sys, _ := recoveryScenario(t, Discard, false)
	if rep.Orphans != 3 || rep.Discarded != 3 {
		t.Fatalf("report = %+v", rep)
	}
	sys.Read("k-000", func(_ string, ok bool) {
		if ok {
			t.Error("discarded orphan resurrected")
		}
	})
	if sys.Audit() != 0 {
		t.Fatalf("audit = %d (discards must be accounted)", sys.Audit())
	}
}

func TestRecoveryQueueForHumans(t *testing.T) {
	rep, _, _ := recoveryScenario(t, Queue, false)
	if rep.Queued != 3 || rep.Replayed != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRecoveryReplayCleanKeys(t *testing.T) {
	rep, sys, _ := recoveryScenario(t, Replay, false)
	if rep.Replayed != 3 || rep.Conflicts != 0 {
		t.Fatalf("report = %+v", rep)
	}
	sys.Read("k-002", func(v string, ok bool) {
		if !ok || v != "v2" {
			t.Errorf("replayed orphan = %q,%v", v, ok)
		}
	})
	if sys.Audit() != 0 {
		t.Fatalf("audit = %d", sys.Audit())
	}
}

func TestRecoveryReplayDetectsConflicts(t *testing.T) {
	rep, sys, _ := recoveryScenario(t, Replay, true)
	if rep.Replayed != 2 || rep.Conflicts != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// The post-takeover write must win over the orphan.
	sys.Read("k-001", func(v string, ok bool) {
		if !ok || v != "newer" {
			t.Errorf("conflicted key = %q,%v; newer write must survive", v, ok)
		}
	})
	if sys.Audit() != 0 {
		t.Fatalf("audit = %d", sys.Audit())
	}
}

func TestStrategyString(t *testing.T) {
	if Discard.String() != "discard" || Queue.String() != "queue" || Replay.String() != "replay" {
		t.Fatal("strategy names wrong")
	}
}

func TestCommitDuringCrashWindowNotAcked(t *testing.T) {
	s := sim.New(1)
	sys := New(s, Config{WANLatency: 5 * time.Millisecond, GroupInterval: 10 * time.Millisecond, DetectDelay: time.Millisecond})
	var acked, resolved bool
	sys.Commit("k", "v", func(ok bool) { resolved = true; acked = ok })
	// Crash before the group-commit flush completes.
	s.At(sim.Time(2*time.Millisecond), func() { sys.CrashPrimary() })
	s.Run()
	if !resolved {
		t.Fatal("commit callback never resolved")
	}
	if acked {
		t.Fatal("commit acked despite primary crashing before durability")
	}
	if sys.M.LostAtTakeover.Value() != 0 {
		t.Fatalf("unacked commit counted as lost: %d", sys.M.LostAtTakeover.Value())
	}
}

func TestSyncModeDegradesToLocalWhenBackupDown(t *testing.T) {
	// With the backup dead, even sync mode acks locally — the real-world
	// fallback (run unprotected and alert) rather than total outage.
	// The commits are then exposed: they count as lost if the primary
	// dies before the backup returns.
	s := sim.New(9)
	sys := New(s, Config{Sync: true, WANLatency: 5 * time.Millisecond, DetectDelay: time.Millisecond})
	sys.net.SetUp("dc2", false)
	var ok bool
	sys.Commit("k", "v", func(o bool) { ok = o })
	s.Run()
	if !ok {
		t.Fatal("sync commit with dead backup should degrade to local ack")
	}
	if got := sys.M.CommitLat.MeanDur(); got >= 10*time.Millisecond {
		t.Fatalf("degraded commit paid WAN latency: %v", got)
	}
	sys.net.SetUp("dc2", true)
	sys.CrashPrimary()
	s.Run()
	if sys.M.LostAtTakeover.Value() != 1 {
		t.Fatalf("lost = %d; the unprotected commit must be counted", sys.M.LostAtTakeover.Value())
	}
}

func TestReadAtPrimaryBeforeTakeover(t *testing.T) {
	s := sim.New(9)
	sys := New(s, Config{WANLatency: 5 * time.Millisecond})
	var ok bool
	sys.Commit("k", "v", func(o bool) { ok = o })
	s.Run()
	if !ok {
		t.Fatal("commit failed")
	}
	sys.Read("k", func(v string, found bool) {
		if !found || v != "v" {
			t.Errorf("read = %q,%v", v, found)
		}
	})
}
