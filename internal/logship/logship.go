// Package logship simulates classic cross-datacenter log shipping, the
// paper's Example 3 (§4.1–4.2).
//
// A primary database commits transactions locally (group commit to its own
// log) and acknowledges the client; a shipper process asynchronously sends
// the durable log to a backup datacenter, which replays it, "constantly
// playing catch-up." A primary failure locks the unshipped tail inside the
// dead datacenter: the backup takes over without that work. "This is our
// first example where giving a little bit in consistency yields a lot of
// resilience and scale" — and the loss window it opens is exactly what E3
// and E4 measure.
//
// Synchronous mode (Config.Sync) stalls the commit acknowledgement until
// the backup confirms receipt — the alternative §4.1 calls unacceptable in
// most installations — so the latency cost of transparency can be measured
// directly against the asynchronous default.
//
// When the failed primary returns, RestartPrimary reconciles the orphaned
// tail (§5.1: "examine the work in the tail of the log and determine what
// the heck to do"), under one of three strategies: discard the work, queue
// it for a human, or replay it when no conflicting write has happened
// since takeover.
package logship

import (
	"time"

	"repro/internal/btree"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wal"
)

// Config tunes the simulated deployment. Zero fields take defaults.
type Config struct {
	// Sync makes commit wait for the backup's acknowledgement
	// (transparent fault tolerance at WAN latency cost).
	Sync bool
	// WANLatency is the one-way datacenter-to-datacenter latency
	// (default 20ms).
	WANLatency time.Duration
	// ShipInterval is how often the shipper sends new log to the backup
	// (default 50ms).
	ShipInterval time.Duration
	// GroupInterval is the local group-commit timer (default 1ms).
	GroupInterval time.Duration
	// LocalFlushCost is the local log-disk write time (default 500µs).
	LocalFlushCost time.Duration
	// DetectDelay is crash detection before takeover (default 50ms).
	DetectDelay time.Duration
	// CallTimeout bounds RPCs (default 10× WANLatency).
	CallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.WANLatency == 0 {
		c.WANLatency = 20 * time.Millisecond
	}
	if c.ShipInterval == 0 {
		c.ShipInterval = 50 * time.Millisecond
	}
	if c.GroupInterval == 0 {
		c.GroupInterval = time.Millisecond
	}
	if c.LocalFlushCost == 0 {
		c.LocalFlushCost = 500 * time.Microsecond
	}
	if c.DetectDelay == 0 {
		c.DetectDelay = 50 * time.Millisecond
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 10 * c.WANLatency
	}
	return c
}

// RecoveryStrategy says what to do with the orphaned log tail when the
// failed primary returns.
type RecoveryStrategy int

// The three §5.1 options.
const (
	// Discard drops the orphans: "the pending work is simply discarded
	// due to lack of designed mechanisms to reclaim it."
	Discard RecoveryStrategy = iota
	// Queue sends every orphan to a human (§5.6's first coping model).
	Queue
	// Replay re-applies orphans whose keys nobody has touched since
	// takeover, queueing only conflicting ones.
	Replay
)

// String names the strategy.
func (r RecoveryStrategy) String() string {
	switch r {
	case Discard:
		return "discard"
	case Queue:
		return "queue"
	default:
		return "replay"
	}
}

// RecoveryReport summarizes a RestartPrimary reconciliation.
type RecoveryReport struct {
	Orphans   int // committed-but-unshipped transactions found in the tail
	Replayed  int // re-applied cleanly
	Conflicts int // key overwritten since takeover; sent to a human
	Queued    int // sent to a human by policy
	Discarded int // dropped
}

// Metrics aggregates what E3/E4 measure.
type Metrics struct {
	CommitLat stats.Histogram // client-observed commit latency

	Commits        stats.Counter // commits acked to clients
	ShippedTxns    stats.Counter // transactions replayed at the backup
	LostAtTakeover stats.Counter // acked commits missing from the backup at takeover
	Takeovers      stats.Counter
}

// committedTxn remembers an acked commit for the takeover audit. dc
// disambiguates the LSN space: after takeover the backup issues its own
// LSNs.
type committedTxn struct {
	dc       string
	lsn      wal.LSN
	key, val string
}

// dbNode is one datacenter: a log, a group committer, and a replayed state.
type dbNode struct {
	ep      *rpc.Endpoint
	log     *wal.Log
	gc      *wal.GroupCommitter
	state   *btree.Tree
	applied wal.LSN // highest remote LSN replayed (backup role)
	touched map[string]bool
	pending map[uint64][]wal.Record
}

// System is one primary/backup log-shipping deployment.
type System struct {
	s   *sim.Sim
	net *simnet.Network
	cfg Config

	primary *dbNode
	backup  *dbNode
	active  *dbNode // who serves traffic now

	txnSeq    uint64
	shipped   wal.LSN // highest LSN acked by the backup
	shipArmed bool
	committed []committedTxn // acked commits, in order, for the audit
	orphans   []committedTxn // computed at takeover, pending recovery
	lostWork  []committedTxn // orphans permanently lost (discarded/queued/conflicted)

	M Metrics
}

type (
	replicateReq struct{ Records []wal.Record }
	replicateAck struct{ LSN wal.LSN }
)

// New builds the two-datacenter system on s.
func New(s *sim.Sim, cfg Config) *System {
	cfg = cfg.withDefaults()
	net := simnet.New(s, simnet.WithLatency(simnet.Fixed(cfg.WANLatency)))
	sys := &System{s: s, net: net, cfg: cfg}
	sys.primary = sys.newNode("dc1")
	sys.backup = sys.newNode("dc2")
	sys.active = sys.primary
	sys.backup.ep.Handle("replicate", sys.handleReplicate)
	return sys
}

func (sys *System) newNode(id simnet.NodeID) *dbNode {
	n := &dbNode{
		state:   btree.New(),
		touched: make(map[string]bool),
		pending: make(map[uint64][]wal.Record),
	}
	n.ep = rpc.NewEndpoint(sys.net, id, sys.cfg.CallTimeout)
	n.log = wal.New(nil)
	n.gc = wal.NewGroupCommitter(sys.s, n.log, wal.Config{
		Interval:  sys.cfg.GroupInterval,
		FlushCost: sys.cfg.LocalFlushCost,
	})
	return n
}

// Active reports which datacenter serves traffic ("dc1" or "dc2").
func (sys *System) Active() string { return string(sys.active.ep.ID()) }

// Commit runs a one-write transaction key=val at the active datacenter.
// done reports whether the client saw a commit acknowledgement.
func (sys *System) Commit(key, val string, done func(ok bool)) {
	node := sys.active
	if node.ep.Crashed() {
		done(false)
		return
	}
	sys.txnSeq++
	txn := sys.txnSeq
	start := sys.s.Now()
	node.log.Append(wal.Record{Txn: txn, Kind: wal.KindWrite, Key: key, Value: val})
	lsn := node.log.Append(wal.Record{Txn: txn, Kind: wal.KindCommit})
	node.gc.Commit(func() {
		if node.ep.Crashed() {
			// Locally durable, never acked: client will retry
			// elsewhere; not counted as committed.
			done(false)
			return
		}
		node.state.Put(key, val)
		node.touched[key] = true
		ack := func() {
			sys.M.Commits.Inc()
			sys.M.CommitLat.AddDur(sys.s.Now().Sub(start))
			sys.committed = append(sys.committed,
				committedTxn{dc: string(node.ep.ID()), lsn: lsn, key: key, val: val})
			done(true)
		}
		if node != sys.primary || sys.backup.ep.Crashed() {
			// After takeover there is no backup to ship to.
			ack()
			return
		}
		if sys.cfg.Sync {
			// Transparent mode: the user waits for the WAN round trip.
			recs := node.log.Since(sys.shipped)
			node.ep.Call(sys.backup.ep.ID(), "replicate", replicateReq{Records: recs}, func(resp any, ok bool) {
				if !ok {
					done(false)
					return
				}
				sys.noteShipped(resp.(replicateAck).LSN)
				ack()
			})
			return
		}
		ack()
		sys.armShip()
	})
}

// Read returns the value of key at the active datacenter.
func (sys *System) Read(key string, done func(val string, ok bool)) {
	v, ok := sys.active.state.Get(key)
	done(v, ok)
}

// armShip schedules the next asynchronous shipment if none is pending.
func (sys *System) armShip() {
	if sys.shipArmed || sys.cfg.Sync {
		return
	}
	sys.shipArmed = true
	sys.s.After(sys.cfg.ShipInterval, func() {
		sys.shipArmed = false
		sys.shipNow()
	})
}

func (sys *System) shipNow() {
	if sys.active != sys.primary || sys.primary.ep.Crashed() || sys.backup.ep.Crashed() {
		return
	}
	recs := sys.primary.log.Since(sys.shipped)
	if len(recs) == 0 {
		return
	}
	sys.primary.ep.Call(sys.backup.ep.ID(), "replicate", replicateReq{Records: recs}, func(resp any, ok bool) {
		if ok {
			sys.noteShipped(resp.(replicateAck).LSN)
		}
		// More log may have accumulated while this batch was in flight.
		if sys.primary.log.FlushedLSN() > sys.shipped {
			sys.armShip()
		}
	})
}

func (sys *System) noteShipped(lsn wal.LSN) {
	if lsn > sys.shipped {
		sys.shipped = lsn
	}
}

// handleReplicate replays a log batch at the backup.
func (sys *System) handleReplicate(from simnet.NodeID, req any, reply func(any)) {
	r := req.(replicateReq)
	b := sys.backup
	for _, rec := range r.Records {
		if rec.LSN <= b.applied {
			continue // duplicate shipment
		}
		switch rec.Kind {
		case wal.KindWrite:
			b.pending[rec.Txn] = append(b.pending[rec.Txn], rec)
		case wal.KindCommit:
			for _, w := range b.pending[rec.Txn] {
				b.state.Put(w.Key, w.Value)
			}
			delete(b.pending, rec.Txn)
			sys.M.ShippedTxns.Inc()
		}
		b.applied = rec.LSN
		b.log.Append(rec)
	}
	b.log.Flush()
	reply(replicateAck{LSN: b.applied})
}

// CrashPrimary fail-fasts the primary datacenter. After the detection
// delay the backup takes over, and every acked commit the backup never
// received is counted lost — the paper's §4.2 window made visible.
func (sys *System) CrashPrimary() {
	if sys.active != sys.primary {
		return
	}
	sys.net.SetUp(sys.primary.ep.ID(), false)
	sys.s.After(sys.cfg.DetectDelay, func() {
		sys.M.Takeovers.Inc()
		sys.active = sys.backup
		sys.backup.touched = make(map[string]bool) // track post-takeover writes
		for _, c := range sys.committed {
			if c.dc == "dc1" && c.lsn > sys.backup.applied {
				sys.orphans = append(sys.orphans, c)
				sys.M.LostAtTakeover.Inc()
			}
		}
	})
}

// Orphans reports how many acked commits are currently locked inside the
// dead primary.
func (sys *System) Orphans() int { return len(sys.orphans) }

// RestartPrimary brings the failed datacenter back and reconciles its
// orphaned tail against the new active state using the given strategy.
func (sys *System) RestartPrimary(strategy RecoveryStrategy) RecoveryReport {
	sys.net.SetUp(sys.primary.ep.ID(), true)
	rep := RecoveryReport{Orphans: len(sys.orphans)}
	for _, o := range sys.orphans {
		switch strategy {
		case Discard:
			rep.Discarded++
			sys.lostWork = append(sys.lostWork, o)
		case Queue:
			rep.Queued++
			sys.lostWork = append(sys.lostWork, o)
		case Replay:
			if sys.active.touched[o.key] {
				// Someone wrote this key since takeover; blind
				// replay would clobber newer work. A human sorts
				// it out.
				rep.Conflicts++
				sys.lostWork = append(sys.lostWork, o)
			} else {
				sys.active.state.Put(o.key, o.val)
				sys.active.touched[o.key] = true
				rep.Replayed++
			}
		}
	}
	sys.orphans = nil
	return rep
}

// BackupLagTxns reports how many primary-acked commits the backup has not
// yet replayed — the instantaneous size of the loss window.
func (sys *System) BackupLagTxns() int {
	lag := 0
	for _, c := range sys.committed {
		if c.dc == "dc1" && c.lsn > sys.backup.applied {
			lag++
		}
	}
	return lag
}

// Audit verifies that every acked commit is visible at the active
// datacenter, except the ones accounted for as orphans. It returns the
// number of unaccounted-for missing commits (0 means the loss accounting
// is exact).
func (sys *System) Audit() int {
	lost := make(map[committedTxn]bool, len(sys.orphans)+len(sys.lostWork))
	for _, o := range sys.orphans {
		lost[o] = true
	}
	for _, o := range sys.lostWork {
		lost[o] = true
	}
	latest := make(map[string]committedTxn)
	for _, c := range sys.committed {
		if !lost[c] {
			latest[c.key] = c
		}
	}
	missing := 0
	for key, c := range latest {
		if v, ok := sys.active.state.Get(key); !ok || v != c.val {
			missing++
		}
	}
	return missing
}
