// Package resource implements the paper's §7.1 allocation policies for
// replicas that sometimes cannot talk to each other:
//
//   - Over-provisioning: "each replica has a fixed subset of the resources
//     that it may allocate" — no apology is ever needed, but business is
//     declined while inventory idles in another replica's quota.
//
//   - Over-booking: "allows for the possibility that the disconnected
//     replicas will occasionally promise something they cannot deliver" —
//     more business is accepted, and reconnection sometimes reveals
//     commitments that cannot be kept, each one an apology.
//
// The policy is a single dial, Factor: the fraction of the (last known)
// remaining inventory the replicas may collectively promise while
// disconnected. Factor 1.0 is strict over-provisioning; above 1.0 is
// over-booking; connected replicas always allocate against the exact
// global count ("you can dynamically slide between these positions while
// you are connected").
//
// §7.2's warning also lives here: even a perfectly provisioned allocation
// can need an apology when the forklift runs over the last book —
// RealWorldLoss models reality diverging from the computers.
package resource

import "fmt"

// Metrics tallies one pool's business outcomes.
type Metrics struct {
	Accepted              int64 // units promised to customers
	Declined              int64 // units turned away
	DeclinedWithStockIdle int64 // declined while the system as a whole had stock
	Apologies             int64 // promised units that could not be delivered
	Delivered             int64 // units actually delivered at settlement
}

// Pool manages one fungible SKU across a set of replicas. The zero value
// is not usable; construct with NewPool.
type Pool struct {
	total     int64 // physical units remaining (authoritative)
	replicas  int
	factor    float64
	connected bool

	// While disconnected, each replica sells against its share of the
	// budget computed at disconnect time.
	budget    []int64 // per-replica allowance for this epoch
	soldEpoch []int64 // per-replica sales this epoch

	m Metrics
}

// NewPool creates a pool of total units across n replicas, connected, with
// the given over-booking factor (>= 0; 1.0 = strict provisioning).
func NewPool(total int64, n int, factor float64) *Pool {
	if n <= 0 {
		panic("resource: need at least one replica")
	}
	if factor < 0 {
		panic("resource: negative factor")
	}
	return &Pool{
		total:     total,
		replicas:  n,
		factor:    factor,
		connected: true,
		budget:    make([]int64, n),
		soldEpoch: make([]int64, n),
	}
}

// Metrics returns a snapshot of the tallies.
func (p *Pool) Metrics() Metrics { return p.m }

// Remaining reports the authoritative physical stock not yet promised or
// already over-promised (may be negative after over-booking settles).
func (p *Pool) Remaining() int64 { return p.total }

// Connected reports whether the replicas are currently in communication.
func (p *Pool) Connected() bool { return p.connected }

// Disconnect starts a disconnection epoch: the remaining inventory —
// scaled by the over-booking factor — is split evenly as per-replica
// budgets.
func (p *Pool) Disconnect() {
	if !p.connected {
		return
	}
	p.connected = false
	allowance := int64(p.factor * float64(p.total))
	if allowance < 0 {
		allowance = 0
	}
	base := allowance / int64(p.replicas)
	extra := allowance % int64(p.replicas)
	for i := range p.budget {
		p.budget[i] = base
		if int64(i) < extra {
			p.budget[i]++
		}
		p.soldEpoch[i] = 0
	}
}

// Connect ends the epoch: the replicas' independent promises flow
// together, and any excess over the physical stock surfaces as apologies
// (§7.6: "sometimes the operations accumulated by different replicas
// result in a violation of the application's business rules").
func (p *Pool) Connect() (newApologies int64) {
	if p.connected {
		return 0
	}
	p.connected = true
	var sold int64
	for i := range p.soldEpoch {
		sold += p.soldEpoch[i]
		p.soldEpoch[i] = 0
	}
	p.total -= sold
	if p.total < 0 {
		newApologies = -p.total
		p.m.Apologies += newApologies
		p.m.Delivered += sold - newApologies
		p.total = 0
	} else {
		p.m.Delivered += sold
	}
	return newApologies
}

// Request asks replica r to promise qty units. Connected replicas check
// the authoritative count; disconnected replicas check only their epoch
// budget. It reports whether the business was accepted.
func (p *Pool) Request(r int, qty int64) bool {
	if r < 0 || r >= p.replicas {
		panic(fmt.Sprintf("resource: replica %d of %d", r, p.replicas))
	}
	if qty <= 0 {
		panic("resource: quantity must be positive")
	}
	if p.connected {
		if p.total >= qty {
			p.total -= qty
			p.m.Accepted += qty
			p.m.Delivered += qty
			return true
		}
		p.m.Declined += qty
		return false
	}
	if p.soldEpoch[r]+qty <= p.budget[r] {
		p.soldEpoch[r] += qty
		p.m.Accepted += qty
		return true
	}
	p.m.Declined += qty
	// Was there really no stock, or only none in this replica's slice?
	var promised int64
	for _, s := range p.soldEpoch {
		promised += s
	}
	if promised+qty <= p.total {
		p.m.DeclinedWithStockIdle += qty
	}
	return false
}

// RealWorldLoss destroys units that the computers thought existed (§7.2's
// forklift). If more is already promised than now exists, the shortfall
// becomes apologies immediately when connected, or at the next Connect.
func (p *Pool) RealWorldLoss(units int64) (newApologies int64) {
	p.total -= units
	if p.connected && p.total < 0 {
		newApologies = -p.total
		p.m.Apologies += newApologies
		p.m.Delivered -= newApologies
		p.total = 0
	}
	return newApologies
}
