package resource

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedAllocationIsExact(t *testing.T) {
	p := NewPool(10, 2, 1.0)
	for i := 0; i < 10; i++ {
		if !p.Request(i%2, 1) {
			t.Fatalf("request %d declined with stock available", i)
		}
	}
	if p.Request(0, 1) {
		t.Fatal("11th unit promised from a stock of 10")
	}
	m := p.Metrics()
	if m.Accepted != 10 || m.Declined != 1 || m.Apologies != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestOverProvisionNeverApologizes(t *testing.T) {
	p := NewPool(10, 2, 1.0)
	p.Disconnect()
	// Each replica has a budget of 5; sell as much as anyone will take.
	for r := 0; r < 2; r++ {
		for i := 0; i < 10; i++ {
			p.Request(r, 1)
		}
	}
	if got := p.Connect(); got != 0 {
		t.Fatalf("over-provisioning produced %d apologies", got)
	}
	m := p.Metrics()
	if m.Accepted != 10 {
		t.Fatalf("accepted = %d, want 10 (5 per replica)", m.Accepted)
	}
	if m.Apologies != 0 {
		t.Fatalf("apologies = %d", m.Apologies)
	}
}

func TestOverProvisionDeclinesWithStockIdle(t *testing.T) {
	p := NewPool(10, 2, 1.0)
	p.Disconnect()
	// All demand lands on replica 0: its quota of 5 runs out while
	// replica 1's five units sit idle.
	granted := 0
	for i := 0; i < 10; i++ {
		if p.Request(0, 1) {
			granted++
		}
	}
	if granted != 5 {
		t.Fatalf("granted = %d, want 5 (quota)", granted)
	}
	m := p.Metrics()
	if m.DeclinedWithStockIdle != 5 {
		t.Fatalf("DeclinedWithStockIdle = %d, want 5 — the business §7.1 says you lose", m.DeclinedWithStockIdle)
	}
}

func TestOverBookingAcceptsMoreAndApologizes(t *testing.T) {
	p := NewPool(10, 2, 1.5) // willing to promise 15 of 10
	p.Disconnect()
	accepted := int64(0)
	for r := 0; r < 2; r++ {
		for i := 0; i < 10; i++ {
			if p.Request(r, 1) {
				accepted++
			}
		}
	}
	if accepted != 14 { // 15 split as 8+7? no: 7+7 with remainder 1 -> 8+7 = 15
		// allowance 15 split 8/7: replicas sell at most 8 and 7 but each
		// only saw 10 requests, so 8+7=15... accepted should be 15.
		t.Logf("accepted = %d", accepted)
	}
	apologies := p.Connect()
	if apologies != accepted-10 {
		t.Fatalf("apologies = %d, want accepted(%d) - stock(10)", apologies, accepted)
	}
	if p.Metrics().Delivered != 10 {
		t.Fatalf("delivered = %d, want 10", p.Metrics().Delivered)
	}
}

func TestSlidingScaleMonotonic(t *testing.T) {
	// More over-booking ⇒ no fewer acceptances and no fewer apologies:
	// the §7.1 trade made visible.
	run := func(factor float64) (accepted, apologies int64) {
		p := NewPool(100, 4, factor)
		p.Disconnect()
		r := rand.New(rand.NewSource(42))
		for i := 0; i < 300; i++ {
			p.Request(r.Intn(4), 1)
		}
		ap := p.Connect()
		return p.Metrics().Accepted, ap
	}
	accProv, apProv := run(1.0)
	accOver, apOver := run(1.3)
	if apProv != 0 {
		t.Fatalf("provisioned apologies = %d", apProv)
	}
	if accOver <= accProv {
		t.Fatalf("over-booking accepted %d <= provisioning %d", accOver, accProv)
	}
	if apOver == 0 {
		t.Fatal("over-booking under heavy demand produced no apologies")
	}
}

func TestReconnectRestoresExactness(t *testing.T) {
	p := NewPool(10, 2, 2.0)
	p.Disconnect()
	p.Request(0, 5)
	p.Connect()
	if p.Remaining() != 5 {
		t.Fatalf("remaining = %d, want 5", p.Remaining())
	}
	// Connected again: requests check the true count.
	if !p.Request(1, 5) {
		t.Fatal("request for the true remainder declined")
	}
	if p.Request(0, 1) {
		t.Fatal("promised from empty stock while connected")
	}
}

func TestRealWorldLossForklift(t *testing.T) {
	p := NewPool(1, 1, 1.0)
	if !p.Request(0, 1) {
		t.Fatal("the last book must be promisable")
	}
	// The forklift runs over the book after it was promised: stock goes
	// negative, apology due despite perfect over-provisioning.
	if got := p.RealWorldLoss(1); got != 1 {
		t.Fatalf("forklift apologies = %d, want 1", got)
	}
	if p.Metrics().Apologies != 1 {
		t.Fatal("apology not tallied")
	}
}

func TestRealWorldLossWhileDisconnectedSettlesAtConnect(t *testing.T) {
	p := NewPool(10, 2, 1.0)
	p.Disconnect()
	p.Request(0, 5)
	p.Request(1, 5)
	if got := p.RealWorldLoss(3); got != 0 {
		t.Fatal("disconnected loss should settle at Connect")
	}
	if got := p.Connect(); got != 3 {
		t.Fatalf("apologies at connect = %d, want 3", got)
	}
}

func TestDoubleDisconnectAndConnectAreIdempotent(t *testing.T) {
	p := NewPool(10, 2, 1.0)
	p.Disconnect()
	p.Disconnect() // no-op
	p.Request(0, 2)
	if got := p.Connect(); got != 0 {
		t.Fatalf("connect apologies = %d", got)
	}
	if got := p.Connect(); got != 0 { // no-op
		t.Fatalf("second connect produced %d", got)
	}
	if p.Remaining() != 8 {
		t.Fatalf("remaining = %d", p.Remaining())
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero replicas":   func() { NewPool(1, 0, 1) },
		"negative factor": func() { NewPool(1, 1, -0.5) },
		"bad replica":     func() { NewPool(1, 1, 1).Request(5, 1) },
		"zero qty":        func() { NewPool(1, 1, 1).Request(0, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
}

// TestPropProvisioningNeverOversells: with factor <= 1.0, no schedule of
// requests and epochs produces an apology — the §7.1 guarantee.
func TestPropProvisioningNeverOversells(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewPool(int64(r.Intn(50)+1), r.Intn(4)+1, 1.0)
		for i := 0; i < 100; i++ {
			switch r.Intn(4) {
			case 0:
				p.Disconnect()
			case 1:
				if p.Connect() != 0 {
					return false
				}
			default:
				p.Request(r.Intn(4)%p.replicas, int64(r.Intn(3)+1))
			}
		}
		return p.Connect() == 0 && p.Metrics().Apologies == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropConservation: units delivered + apologies == units accepted,
// and the physical stock is never negative after settlement.
func TestPropConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		total := int64(r.Intn(40) + 10)
		p := NewPool(total, 3, 1.0+float64(r.Intn(10))/10)
		for i := 0; i < 80; i++ {
			switch r.Intn(5) {
			case 0:
				p.Disconnect()
			case 1:
				p.Connect()
			default:
				p.Request(r.Intn(3), int64(r.Intn(3)+1))
			}
		}
		p.Connect()
		m := p.Metrics()
		if m.Delivered+m.Apologies != m.Accepted {
			return false
		}
		return p.Remaining() >= 0 && m.Delivered <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
