package promtext

import (
	"strings"
	"testing"
)

const goodDoc = `# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_temp_celsius Current temperature.
# TYPE app_temp_celsius gauge
app_temp_celsius{room="lab",floor="2"} -3.5
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 5
app_latency_seconds_bucket{le="1"} 9
app_latency_seconds_bucket{le="+Inf"} 10
app_latency_seconds_sum 4.2
app_latency_seconds_count 10
# HELP app_lag_seconds Lag summary.
# TYPE app_lag_seconds summary
app_lag_seconds{quantile="0.5"} 0.01
app_lag_seconds{quantile="0.99"} 0.5
app_lag_seconds_sum 12
app_lag_seconds_count 900
`

func TestParseAndValidateGoodDoc(t *testing.T) {
	fams, err := Parse(goodDoc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4", len(fams))
	}
	g := Find(fams, "app_temp_celsius")
	if g == nil || g.Type != "gauge" {
		t.Fatalf("gauge family missing: %+v", g)
	}
	if got := g.Samples[0].Labels["room"]; got != "lab" {
		t.Errorf("label room = %q", got)
	}
	if g.Samples[0].Value != -3.5 {
		t.Errorf("gauge value = %v", g.Samples[0].Value)
	}
	h := Find(fams, "app_latency_seconds")
	if len(h.Samples) != 5 {
		t.Errorf("histogram family holds %d samples, want buckets+sum+count=5", len(h.Samples))
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"sample without TYPE", "foo_total 1\n", "outside its family"},
		{"TYPE without HELP", "# TYPE foo counter\nfoo 1\n", "not preceded by its HELP"},
		{"HELP TYPE name mismatch", "# HELP foo A.\n# TYPE bar counter\nbar 1\n", "not preceded by its HELP"},
		{"dangling HELP", "# HELP foo A.\n", "no TYPE"},
		{"duplicate family", "# HELP a A.\n# TYPE a counter\na 1\n# HELP a A.\n# TYPE a counter\na 2\n", "duplicate"},
		{"unknown type", "# HELP a A.\n# TYPE a histo\na 1\n", "unknown metric type"},
		{"bad value", "# HELP a A.\n# TYPE a counter\na one\n", "bad value"},
		{"unterminated labels", "# HELP a A.\n# TYPE a counter\na{x=\"1\" 1\n", "unterminated"},
		{"foreign sample in block", "# HELP a A.\n# TYPE a counter\nb 1\n", "outside its family"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.doc)
			if err == nil {
				t.Fatalf("parsed without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"negative counter", "# HELP a A.\n# TYPE a counter\na -1\n", "invalid value"},
		{"no +Inf bucket",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"no +Inf"},
		{"le not ascending",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"not ascending"},
		{"cumulative decreases",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"decreased"},
		{"inf disagrees with count",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count"},
		{"histogram missing sum",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"missing _sum"},
		{"summary missing count",
			"# HELP s S.\n# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\n",
			"missing _sum or _count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fams, err := Parse(tc.doc)
			if err != nil {
				t.Fatalf("parse should succeed, validation should fail: %v", err)
			}
			err = Validate(fams)
			if err == nil {
				t.Fatalf("validated without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Histograms with labeled series must be validated per label set: two
// shards' buckets interleaved under one family are each monotone even
// though the merged sequence is not.
func TestValidateHistogramPerLabelSet(t *testing.T) {
	doc := `# HELP h H.
# TYPE h histogram
h_bucket{shard="0",le="1"} 10
h_bucket{shard="0",le="+Inf"} 12
h_sum{shard="0"} 5
h_count{shard="0"} 12
h_bucket{shard="1",le="1"} 2
h_bucket{shard="1",le="+Inf"} 3
h_sum{shard="1"} 1
h_count{shard="1"} 3
`
	fams, err := Parse(doc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Validate(fams); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
