// Package promtext is a strict parser and validator for the Prometheus
// text exposition format (version 0.0.4) — strict on purpose: the
// daemon's /metrics is hand-rolled, so the test suite and the
// `quicksand scrape` probe parse a live scrape with this package and
// fail on anything a real Prometheus server would reject or silently
// mangle: samples without a TYPE, HELP/TYPE naming mismatches,
// duplicate families, malformed labels, histograms whose cumulative
// buckets decrease, le bounds out of order, or a +Inf bucket that
// disagrees with _count.
package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	Line   int // 1-based line number in the scraped text
}

// Family is one metric family: its HELP/TYPE header plus every sample
// belonging to it (for histograms and summaries that includes the
// _bucket/_sum/_count series).
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, untyped
	Help    string
	Samples []Sample
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// Parse parses text-format metrics strictly. Every sample must follow
// a # TYPE header for its family, every # TYPE must follow the
// family's # HELP, and no family may appear twice.
func Parse(text string) ([]*Family, error) {
	var (
		fams    []*Family
		byName  = map[string]*Family{}
		cur     *Family
		curHelp string // family name of the pending HELP line
	)
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimRight(raw, "\r")
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", lineNo, line)
			}
			if curHelp != "" {
				return nil, fmt.Errorf("line %d: HELP for %s follows HELP for %s without a TYPE between", lineNo, name, curHelp)
			}
			curHelp = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line[len("# TYPE "):])
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if !validTypes[typ] {
				return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, typ, name)
			}
			if curHelp != name {
				return nil, fmt.Errorf("line %d: TYPE for %s not preceded by its HELP (pending HELP: %q)", lineNo, name, curHelp)
			}
			curHelp = ""
			if byName[name] != nil {
				return nil, fmt.Errorf("line %d: duplicate metric family %s", lineNo, name)
			}
			cur = &Family{Name: name, Type: typ}
			byName[name] = cur
			fams = append(fams, cur)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free comment
		}
		s, err := parseSample(line, lineNo)
		if err != nil {
			return nil, err
		}
		fam := familyFor(cur, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s outside its family's TYPE block", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if curHelp != "" {
		return nil, fmt.Errorf("HELP for %s has no TYPE", curHelp)
	}
	return fams, nil
}

// familyFor reports whether sample name belongs to the current family —
// exact for scalar types, allowing the _bucket/_sum/_count suffixes for
// histograms and summaries.
func familyFor(cur *Family, name string) *Family {
	if cur == nil {
		return nil
	}
	if name == cur.Name {
		return cur
	}
	base, ok := strings.CutSuffix(name, "_bucket")
	if ok && base == cur.Name && cur.Type == "histogram" {
		return cur
	}
	for _, suf := range []string{"_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && base == cur.Name &&
			(cur.Type == "histogram" || cur.Type == "summary") {
			return cur
		}
	}
	return nil
}

func parseSample(line string, lineNo int) (Sample, error) {
	s := Sample{Line: lineNo, Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("line %d: sample does not start with a metric name: %q", lineNo, line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("line %d: unterminated label set: %q", lineNo, line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("line %d: %v", lineNo, err)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; the daemon
	// never emits one, and strict mode rejects it to keep the surface
	// predictable.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("line %d: trailing content after value: %q", lineNo, line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("line %d: bad value %q: %v", lineNo, rest, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		val, rest, err := readQuoted(s)
		if err != nil {
			return nil, fmt.Errorf("label %s: %v", name, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val
		s = rest
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// readQuoted consumes a double-quoted string with \\, \", and \n
// escapes, returning the decoded value and the remainder after the
// closing quote.
func readQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func validName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return len(s) > 0
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// Validate checks semantic invariants across parsed families:
// counters are finite and non-negative; every histogram label set has
// ascending le bounds, non-decreasing cumulative counts, a +Inf bucket
// equal to its _count, and a _sum; summaries carry _sum and _count.
func Validate(fams []*Family) error {
	for _, f := range fams {
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0 {
					return fmt.Errorf("line %d: counter %s has invalid value %v", s.Line, s.Name, s.Value)
				}
			}
		case "histogram":
			if err := validateHistogram(f); err != nil {
				return err
			}
		case "summary":
			var sum, count bool
			for _, s := range f.Samples {
				sum = sum || s.Name == f.Name+"_sum"
				count = count || s.Name == f.Name+"_count"
			}
			if !sum || !count {
				return fmt.Errorf("summary %s missing _sum or _count", f.Name)
			}
		}
	}
	return nil
}

// histSeries collects one label set's view of a histogram family.
type histSeries struct {
	buckets  []Sample // _bucket samples in exposition order
	sum      *Sample
	count    *Sample
	firstRef int
}

// validateHistogram groups a family's samples by their labels (minus
// le) and checks each group independently.
func validateHistogram(f *Family) error {
	groups := map[string]*histSeries{}
	var order []string
	get := func(s Sample) *histSeries {
		key := labelKey(s.Labels, "le")
		g := groups[key]
		if g == nil {
			g = &histSeries{firstRef: s.Line}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	for i := range f.Samples {
		s := f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			g := get(s)
			g.buckets = append(g.buckets, s)
		case f.Name + "_sum":
			get(s).sum = &f.Samples[i]
		case f.Name + "_count":
			get(s).count = &f.Samples[i]
		default:
			return fmt.Errorf("line %d: histogram %s has bare sample %s", s.Line, f.Name, s.Name)
		}
	}
	for _, key := range order {
		g := groups[key]
		if len(g.buckets) == 0 {
			return fmt.Errorf("histogram %s{%s}: no buckets (near line %d)", f.Name, key, g.firstRef)
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("histogram %s{%s}: missing _sum or _count", f.Name, key)
		}
		prevLe := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range g.buckets {
			leStr, ok := b.Labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", b.Line)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %v", b.Line, leStr, err)
			}
			if le <= prevLe {
				return fmt.Errorf("line %d: histogram %s{%s}: le %v not ascending (previous %v)", b.Line, f.Name, key, le, prevLe)
			}
			if b.Value < prevCum {
				return fmt.Errorf("line %d: histogram %s{%s}: cumulative count decreased (%v after %v)", b.Line, f.Name, key, b.Value, prevCum)
			}
			prevLe, prevCum = le, b.Value
			sawInf = sawInf || math.IsInf(le, 1)
		}
		if !sawInf {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", f.Name, key)
		}
		if last := g.buckets[len(g.buckets)-1]; last.Value != g.count.Value {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", f.Name, key, last.Value, g.count.Value)
		}
	}
	return nil
}

// labelKey renders labels (minus skip) as a stable "k=v,..." key.
func labelKey(labels map[string]string, skip string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != skip {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// Find returns the named family, or nil.
func Find(fams []*Family, name string) *Family {
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	return nil
}
