package rpc

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func setup(seed int64) (*sim.Sim, *simnet.Network, *Endpoint, *Endpoint) {
	s := sim.New(seed)
	n := simnet.New(s, simnet.WithLatency(simnet.Fixed(time.Millisecond)))
	a := NewEndpoint(n, "a", 100*time.Millisecond)
	b := NewEndpoint(n, "b", 100*time.Millisecond)
	return s, n, a, b
}

func TestCallRoundTrip(t *testing.T) {
	s, _, a, b := setup(1)
	b.Handle("echo", func(from simnet.NodeID, req any, reply func(any)) {
		if from != "a" {
			t.Errorf("from = %q", from)
		}
		reply(req.(string) + "!")
	})
	var got string
	a.Call("b", "echo", "hi", func(resp any, ok bool) {
		if !ok {
			t.Error("call failed")
		}
		got = resp.(string)
	})
	s.Run()
	if got != "hi!" {
		t.Fatalf("resp = %q", got)
	}
	if s.Now() != sim.Time(2*time.Millisecond) {
		t.Fatalf("round trip took %v, want 2ms", s.Now())
	}
}

func TestCallTimeoutOnCrashedNode(t *testing.T) {
	s, n, a, b := setup(1)
	b.Handle("echo", func(_ simnet.NodeID, req any, reply func(any)) { reply(req) })
	n.SetUp("b", false)
	failed := false
	a.Call("b", "echo", "hi", func(resp any, ok bool) {
		if ok {
			t.Error("call to crashed node succeeded")
		}
		failed = true
	})
	s.Run()
	if !failed {
		t.Fatal("timeout callback never fired")
	}
	if s.Now() != sim.Time(100*time.Millisecond) {
		t.Fatalf("timed out at %v, want 100ms", s.Now())
	}
}

func TestDelayedReply(t *testing.T) {
	s, _, a, b := setup(1)
	b.Handle("slow", func(_ simnet.NodeID, req any, reply func(any)) {
		s.After(10*time.Millisecond, func() { reply("late") })
	})
	var got string
	a.Call("b", "slow", nil, func(resp any, ok bool) {
		if ok {
			got = resp.(string)
		}
	})
	s.Run()
	if got != "late" {
		t.Fatalf("delayed reply = %q", got)
	}
}

func TestLateReplyAfterTimeoutIsDropped(t *testing.T) {
	s, _, a, b := setup(1)
	b.Handle("slow", func(_ simnet.NodeID, req any, reply func(any)) {
		s.After(time.Second, func() { reply("too late") }) // beyond the 100ms timeout
	})
	calls := 0
	a.Call("b", "slow", nil, func(resp any, ok bool) {
		calls++
		if ok {
			t.Error("late reply delivered as success")
		}
	})
	s.Run()
	if calls != 1 {
		t.Fatalf("done fired %d times, want exactly 1", calls)
	}
}

func TestFireAndForget(t *testing.T) {
	s, _, a, b := setup(1)
	got := false
	b.Handle("note", func(_ simnet.NodeID, req any, reply func(any)) {
		got = true
		reply(nil) // reply to nil-done caller goes nowhere, must not crash
	})
	a.Call("b", "note", nil, nil)
	s.Run()
	if !got {
		t.Fatal("notification not delivered")
	}
}

func TestDoubleReplyPanics(t *testing.T) {
	s, _, a, b := setup(1)
	b.Handle("bad", func(_ simnet.NodeID, req any, reply func(any)) {
		reply(1)
		defer func() {
			if recover() == nil {
				t.Error("double reply did not panic")
			}
		}()
		reply(2)
	})
	a.Call("b", "bad", nil, nil)
	s.Run()
}

func TestUnknownMethodPanics(t *testing.T) {
	s, _, a, _ := setup(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method did not panic")
		}
	}()
	a.Call("b", "nope", nil, nil)
	s.Run()
}

func TestDuplicateHandlerPanics(t *testing.T) {
	_, _, _, b := setup(1)
	b.Handle("m", func(simnet.NodeID, any, func(any)) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	b.Handle("m", func(simnet.NodeID, any, func(any)) {})
}

func TestBroadcastCollectsQuorum(t *testing.T) {
	s := sim.New(1)
	n := simnet.New(s, simnet.WithLatency(simnet.Fixed(time.Millisecond)))
	a := NewEndpoint(n, "a", 50*time.Millisecond)
	ids := []simnet.NodeID{"r1", "r2", "r3"}
	for _, id := range ids {
		id := id
		e := NewEndpoint(n, id, 50*time.Millisecond)
		e.Handle("get", func(_ simnet.NodeID, req any, reply func(any)) { reply(string(id)) })
	}
	n.SetUp("r2", false) // one replica down
	var gotOks int
	var gotResps []any
	a.Broadcast(ids, "get", nil, func(resps []any, oks int) {
		gotResps, gotOks = resps, oks
	})
	s.Run()
	if gotOks != 2 {
		t.Fatalf("oks = %d, want 2", gotOks)
	}
	if len(gotResps) != 2 {
		t.Fatalf("resps = %v", gotResps)
	}
}

func TestBroadcastEmptyTargets(t *testing.T) {
	s, _, a, _ := setup(1)
	called := false
	a.Broadcast(nil, "m", nil, func(resps []any, oks int) {
		called = true
		if oks != 0 || resps != nil {
			t.Errorf("empty broadcast: resps=%v oks=%d", resps, oks)
		}
	})
	s.Run()
	if !called {
		t.Fatal("done never fired for empty broadcast")
	}
}

func TestCrashedReflectsNetworkState(t *testing.T) {
	_, n, a, _ := setup(1)
	if a.Crashed() {
		t.Fatal("fresh endpoint reports crashed")
	}
	n.SetUp("a", false)
	if !a.Crashed() {
		t.Fatal("down endpoint reports alive")
	}
}
