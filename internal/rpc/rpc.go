// Package rpc layers request/response calls with timeouts over the
// simulated network.
//
// Every protocol in this repository — disk-process checkpoints, log
// shipping, Dynamo quorum reads, two-phase commit — is written as RPCs
// between simulated nodes. A call that receives no response within its
// timeout fails, which is the only way a fail-fast world lets you observe
// a crash (§2.2: a component "simply stops functioning").
package rpc

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// callMsg and respMsg are the wire envelopes.
type callMsg struct {
	ID     uint64
	Method string
	Req    any
}

type respMsg struct {
	ID   uint64
	Resp any
}

// Handler serves one method. reply sends the response; it may be invoked
// immediately or later (e.g. after a checkpoint round trip completes).
// Invoking reply more than once panics.
type Handler func(from simnet.NodeID, req any, reply func(resp any))

// Endpoint is a node that can issue and serve RPCs. Construct with
// NewEndpoint, which registers the node on the network.
type Endpoint struct {
	net      *simnet.Network
	id       simnet.NodeID
	timeout  time.Duration
	handlers map[string]Handler
	pending  map[uint64]*call
	nextID   uint64
}

type call struct {
	done  func(resp any, ok bool)
	timer *sim.Timer
}

// NewEndpoint registers id on the network and returns its endpoint.
// timeout bounds every outbound call.
func NewEndpoint(net *simnet.Network, id simnet.NodeID, timeout time.Duration) *Endpoint {
	e := &Endpoint{
		net:      net,
		id:       id,
		timeout:  timeout,
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]*call),
	}
	net.AddNode(id, e.dispatch)
	return e
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() simnet.NodeID { return e.id }

// Handle registers the handler for method. Registering a method twice
// panics: two state machines fighting over a method name is a bug.
func (e *Endpoint) Handle(method string, h Handler) {
	if _, dup := e.handlers[method]; dup {
		panic(fmt.Sprintf("rpc: duplicate handler for %q on %q", method, e.id))
	}
	e.handlers[method] = h
}

// Call invokes method on node to. done fires exactly once: with the
// response and ok=true, or with nil and ok=false if the deadline passes
// (crashed node, partition, lost message). done may be nil for
// fire-and-forget notifications.
func (e *Endpoint) Call(to simnet.NodeID, method string, req any, done func(resp any, ok bool)) {
	e.nextID++
	id := e.nextID
	if done != nil {
		c := &call{done: done}
		c.timer = e.net.Sim().After(e.timeout, func() {
			delete(e.pending, id)
			done(nil, false)
		})
		e.pending[id] = c
	}
	e.net.Send(e.id, to, callMsg{ID: id, Method: method, Req: req})
}

// Crashed reports whether this endpoint's node is currently down.
func (e *Endpoint) Crashed() bool { return !e.net.IsUp(e.id) }

func (e *Endpoint) dispatch(m simnet.Message) {
	switch msg := m.Payload.(type) {
	case callMsg:
		h, ok := e.handlers[msg.Method]
		if !ok {
			panic(fmt.Sprintf("rpc: node %q has no handler for %q", e.id, msg.Method))
		}
		replied := false
		h(m.From, msg.Req, func(resp any) {
			if replied {
				panic(fmt.Sprintf("rpc: double reply to %q on %q", msg.Method, e.id))
			}
			replied = true
			e.net.Send(e.id, m.From, respMsg{ID: msg.ID, Resp: resp})
		})
	case respMsg:
		c, ok := e.pending[msg.ID]
		if !ok {
			return // response landed after timeout; drop it
		}
		delete(e.pending, msg.ID)
		c.timer.Stop()
		c.done(msg.Resp, true)
	}
}

// Broadcast calls method on every node in to, invoking done once with the
// responses that arrived in time (ok=false responses are dropped) after
// all calls resolve. Order of responses matches the order of to for the
// calls that succeeded.
func (e *Endpoint) Broadcast(to []simnet.NodeID, method string, req any, done func(resps []any, oks int)) {
	n := len(to)
	if n == 0 {
		done(nil, 0)
		return
	}
	resps := make([]any, 0, n)
	remaining := n
	oks := 0
	for _, node := range to {
		e.Call(node, method, req, func(resp any, ok bool) {
			if ok {
				resps = append(resps, resp)
				oks++
			}
			remaining--
			if remaining == 0 {
				done(resps, oks)
			}
		})
	}
}
