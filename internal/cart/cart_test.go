package cart

import (
	"testing"

	"repro/internal/dynamo"
	"repro/internal/oplog"
	"repro/internal/sim"
)

func newStore(seed int64, cfg dynamo.Config) (*sim.Sim, *dynamo.Cluster) {
	s := sim.New(seed)
	return s, dynamo.New(s, cfg)
}

// do runs an op returning its success after the sim settles.
func do(t *testing.T, s *sim.Sim, fn func(done func(bool))) {
	t.Helper()
	var ok, fired bool
	fn(func(o bool) { fired, ok = true, o })
	s.Run()
	if !fired || !ok {
		t.Fatalf("cart operation failed (fired=%v ok=%v)", fired, ok)
	}
}

func contents(t *testing.T, s *sim.Sim, get func(func([]Item, bool))) []Item {
	t.Helper()
	var items []Item
	var fired, ok bool
	get(func(it []Item, o bool) { fired, ok, items = true, o, it })
	s.Run()
	if !fired || !ok {
		t.Fatal("contents read failed")
	}
	return items
}

func TestAddChangeDelete(t *testing.T) {
	s, cl := newStore(1, dynamo.Config{})
	ss := NewSession(cl, "cart:alice", "alice")
	do(t, s, func(d func(bool)) { ss.Add("book", 1, d) })
	do(t, s, func(d func(bool)) { ss.Add("milk", 2, d) })
	do(t, s, func(d func(bool)) { ss.ChangeQty("milk", 5, d) })
	do(t, s, func(d func(bool)) { ss.Delete("book", d) })
	items := contents(t, s, ss.Contents)
	if len(items) != 1 || items[0] != (Item{SKU: "milk", Qty: 5}) {
		t.Fatalf("items = %+v", items)
	}
}

func TestAddsOfSameSKUAccumulate(t *testing.T) {
	s, cl := newStore(1, dynamo.Config{})
	ss := NewSession(cl, "c", "alice")
	do(t, s, func(d func(bool)) { ss.Add("book", 1, d) })
	do(t, s, func(d func(bool)) { ss.Add("book", 2, d) })
	items := contents(t, s, ss.Contents)
	if len(items) != 1 || items[0].Qty != 3 {
		t.Fatalf("items = %+v", items)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	set := oplog.NewSet(
		oplog.Entry{ID: "a", Kind: KindAdd, Key: "book", Arg: 2, Lam: 1, At: 5},
		oplog.Entry{ID: "b", Kind: KindDelete, Key: "milk", Lam: 2, At: 6},
	)
	got, err := Decode(Encode(set))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(set) {
		t.Fatalf("round trip lost data: %+v", got.Entries())
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	if _, err := Decode("{not json"); err == nil {
		t.Fatal("garbage decoded")
	}
}

// TestConcurrentSessionsNoLostAdds is the §6.1 headline: two sessions add
// concurrently from the same stale read; op-union reconciliation keeps
// both.
func TestConcurrentSessionsNoLostAdds(t *testing.T) {
	s, cl := newStore(2, dynamo.Config{})
	alice := NewSession(cl, "c", "alice")
	bob := NewSession(cl, "c", "bob")
	// Interleave: both GET before either PUT lands, by launching both
	// mutations in the same event breath.
	results := 0
	alice.Add("book", 1, func(ok bool) {
		if ok {
			results++
		}
	})
	bob.Add("milk", 2, func(ok bool) {
		if ok {
			results++
		}
	})
	s.Run()
	if results != 2 {
		t.Fatalf("adds acked = %d", results)
	}
	items := contents(t, s, alice.Contents)
	if len(items) != 2 {
		t.Fatalf("a concurrent add was lost: %+v", items)
	}
}

func TestOpCartDeleteStaysDeleted(t *testing.T) {
	// Delete concurrent with an unrelated change: the tombstone op
	// survives the union; the deleted item must NOT reappear.
	s, cl := newStore(3, dynamo.Config{})
	alice := NewSession(cl, "c", "alice")
	bob := NewSession(cl, "c", "bob")
	do(t, s, func(d func(bool)) { alice.Add("book", 1, d) })
	do(t, s, func(d func(bool)) { alice.Add("milk", 1, d) })
	// Concurrently: alice deletes book while bob bumps milk.
	n := 0
	alice.Delete("book", func(ok bool) {
		if ok {
			n++
		}
	})
	bob.Add("milk", 1, func(ok bool) {
		if ok {
			n++
		}
	})
	s.Run()
	if n != 2 {
		t.Fatalf("ops acked = %d", n)
	}
	items := contents(t, s, alice.Contents)
	for _, it := range items {
		if it.SKU == "book" {
			t.Fatalf("deleted item resurrected in op-centric cart: %+v", items)
		}
	}
}

func TestStateMergeCartLosesConcurrentAdds(t *testing.T) {
	// A1 strawman behaviour: two concurrent "add one book" from the same
	// base state merge to ONE book (max), not two.
	s, cl := newStore(4, dynamo.Config{})
	alice := NewStateMergeSession(cl, "c", "alice")
	bob := NewStateMergeSession(cl, "c", "bob")
	do(t, s, func(d func(bool)) { alice.Add("book", 1, d) })
	n := 0
	alice.Add("book", 1, func(ok bool) {
		if ok {
			n++
		}
	})
	bob.Add("book", 1, func(ok bool) {
		if ok {
			n++
		}
	})
	s.Run()
	if n != 2 {
		t.Fatalf("adds acked = %d", n)
	}
	items := contents(t, s, alice.Contents)
	if len(items) != 1 {
		t.Fatalf("items = %+v", items)
	}
	if items[0].Qty >= 3 {
		t.Fatalf("state merge kept both concurrent adds (qty=%d); strawman should lose one", items[0].Qty)
	}
}

func TestStateMergeCartResurrectsDeletes(t *testing.T) {
	// The paper's observed anomaly: "occasionally deleted items will
	// reappear" — guaranteed here by deleting concurrently with any
	// other sibling change.
	s, cl := newStore(5, dynamo.Config{})
	alice := NewStateMergeSession(cl, "c", "alice")
	bob := NewStateMergeSession(cl, "c", "bob")
	do(t, s, func(d func(bool)) { alice.Add("book", 1, d) })
	do(t, s, func(d func(bool)) { alice.Add("milk", 1, d) })
	n := 0
	alice.Delete("book", func(ok bool) {
		if ok {
			n++
		}
	})
	bob.ChangeQty("milk", 2, func(ok bool) {
		if ok {
			n++
		}
	})
	s.Run()
	if n != 2 {
		t.Fatalf("ops acked = %d", n)
	}
	items := contents(t, s, alice.Contents)
	found := false
	for _, it := range items {
		if it.SKU == "book" {
			found = true
		}
	}
	if !found {
		t.Fatal("state-merge cart did NOT resurrect the delete; strawman broken")
	}
}

func TestCartSurvivesNodeFailure(t *testing.T) {
	s, cl := newStore(6, dynamo.Config{Nodes: 5, N: 3, R: 2, W: 2})
	ss := NewSession(cl, "c", "alice")
	do(t, s, func(d func(bool)) { ss.Add("book", 1, d) })
	// Two nodes die; the sloppy quorum keeps the cart writable.
	cl.SetUp("n1", false)
	cl.SetUp("n2", false)
	do(t, s, func(d func(bool)) { ss.Add("milk", 1, d) })
	items := contents(t, s, ss.Contents)
	if len(items) != 2 {
		t.Fatalf("cart lost items across failures: %+v", items)
	}
}

func TestReconciliationCounted(t *testing.T) {
	s, cl := newStore(7, dynamo.Config{})
	alice := NewSession(cl, "c", "alice")
	bob := NewSession(cl, "c", "bob")
	alice.Add("a", 1, func(bool) {})
	bob.Add("b", 1, func(bool) {})
	s.Run()
	// Next op sees the two siblings and must reconcile.
	do(t, s, func(d func(bool)) { alice.Add("c", 1, d) })
	if alice.Reconciliations == 0 {
		t.Fatal("sibling reconciliation not counted")
	}
}

func TestContentsOrderDeterministic(t *testing.T) {
	set := oplog.NewSet(
		oplog.Entry{ID: "1", Kind: KindAdd, Key: "zebra", Arg: 1, Lam: 1},
		oplog.Entry{ID: "2", Kind: KindAdd, Key: "apple", Arg: 1, Lam: 2},
	)
	items := Contents(set)
	if items[0].SKU != "apple" || items[1].SKU != "zebra" {
		t.Fatalf("items not SKU-sorted: %+v", items)
	}
}

func TestChangeThenAddOrder(t *testing.T) {
	// CHANGE-NUMBER then ADD in causal sequence: set to 5, add 1 = 6.
	set := oplog.NewSet(
		oplog.Entry{ID: "1", Kind: KindChange, Key: "book", Arg: 5, Lam: 1},
		oplog.Entry{ID: "2", Kind: KindAdd, Key: "book", Arg: 1, Lam: 2},
	)
	items := Contents(set)
	if len(items) != 1 || items[0].Qty != 6 {
		t.Fatalf("items = %+v", items)
	}
}

func TestStateMergeSequentialBehaviour(t *testing.T) {
	// Without concurrency the strawman behaves correctly — its flaw is
	// specifically reconciliation, not bookkeeping.
	s, cl := newStore(8, dynamo.Config{})
	ss := NewStateMergeSession(cl, "c", "alice")
	do(t, s, func(d func(bool)) { ss.Add("book", 2, d) })
	do(t, s, func(d func(bool)) { ss.ChangeQty("book", 5, d) })
	do(t, s, func(d func(bool)) { ss.Add("milk", 1, d) })
	do(t, s, func(d func(bool)) { ss.Delete("milk", d) })
	items := contents(t, s, ss.Contents)
	if len(items) != 1 || items[0] != (Item{SKU: "book", Qty: 5}) {
		t.Fatalf("items = %+v", items)
	}
}

func TestStateMergeReconciliationCounted(t *testing.T) {
	s, cl := newStore(9, dynamo.Config{})
	alice := NewStateMergeSession(cl, "c", "alice")
	bob := NewStateMergeSession(cl, "c", "bob")
	alice.Add("a", 1, func(bool) {})
	bob.Add("b", 1, func(bool) {})
	s.Run()
	do(t, s, func(d func(bool)) { alice.Add("c", 1, d) })
	if alice.Reconciliations == 0 {
		t.Fatal("state-merge sibling reconciliation not counted")
	}
}

func TestStateMergeDecodeGarbage(t *testing.T) {
	if _, err := decodeItems("{broken"); err == nil {
		t.Fatal("garbage item blob decoded")
	}
}

func TestCartOpsFailWhenStoreUnavailable(t *testing.T) {
	s, cl := newStore(10, dynamo.Config{Nodes: 3})
	ss := NewSession(cl, "c", "alice")
	for _, id := range cl.Nodes() {
		cl.SetUp(id, false)
	}
	var fired, ok bool
	ss.Add("book", 1, func(o bool) { fired, ok = true, o })
	s.Run()
	if !fired || ok {
		t.Fatalf("add with store down: fired=%v ok=%v", fired, ok)
	}
	ss.Contents(func(_ []Item, o bool) {
		if o {
			t.Error("contents read succeeded with store down")
		}
	})
	s.Run()
}
