// Package cart implements the paper's Example 4 (§6.1): the shopping cart
// on a Dynamo-style store.
//
// The operation-centric cart records the user's intentions — ADD-TO-CART,
// CHANGE-NUMBER, DELETE-FROM-CART — "much like a ledger entry" inside the
// blob it PUTs. When a GET surfaces sibling versions, reconciliation is a
// union of uniquely identified operations, so "items added to the cart
// will not be lost" no matter how replication interleaved the versions.
//
// The package also contains the §6.4 strawman, a state-merge cart that
// stores only the resulting items and reconciles siblings by set union of
// items. It loses concurrent quantity updates and resurrects deleted items
// — the ablation A1 measures exactly that difference.
package cart

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/dynamo"
	"repro/internal/oplog"
	"repro/internal/sim"
	"repro/internal/uniq"
	"repro/internal/vclock"
)

// Operation kinds, named as in §6.1.
const (
	KindAdd    = "ADD-TO-CART"
	KindChange = "CHANGE-NUMBER"
	KindDelete = "DELETE-FROM-CART"
)

// Item is one line of a materialized cart.
type Item struct {
	SKU string
	Qty int64
}

// Contents folds an operation set into the cart's items, in SKU order.
// Adds accumulate, CHANGE-NUMBER sets the quantity (last in canonical
// order wins), DELETE-FROM-CART zeroes it. Items with zero or negative
// quantity are omitted.
func Contents(ops *oplog.Set) []Item {
	qty := map[string]int64{}
	for _, e := range ops.Entries() {
		switch e.Kind {
		case KindAdd:
			qty[e.Key] += e.Arg
		case KindChange:
			qty[e.Key] = e.Arg
		case KindDelete:
			qty[e.Key] = 0
		}
	}
	items := make([]Item, 0, len(qty))
	for sku, n := range qty {
		if n > 0 {
			items = append(items, Item{SKU: sku, Qty: n})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].SKU < items[j].SKU })
	return items
}

// Encode serializes an operation set for storage in a Dynamo blob.
func Encode(ops *oplog.Set) string {
	b, err := json.Marshal(ops.Entries())
	if err != nil {
		panic(fmt.Sprintf("cart: encode: %v", err)) // Entry is always marshalable
	}
	return string(b)
}

// Decode parses a blob back into an operation set. Unparseable blobs are
// an error: carts only ever store Encode output.
func Decode(blob string) (*oplog.Set, error) {
	var entries []oplog.Entry
	if err := json.Unmarshal([]byte(blob), &entries); err != nil {
		return nil, fmt.Errorf("cart: decode: %w", err)
	}
	return oplog.NewSet(entries...), nil
}

// Reconcile unions sibling blobs into one operation set — the
// application-level merge Dynamo demands of its clients ("a subsequent
// PUT must include a blob that integrates and reconciles all the
// presented versions"). It reports how many siblings were merged.
func Reconcile(versions []dynamo.Version) (*oplog.Set, int, error) {
	merged := oplog.NewSet()
	for _, v := range versions {
		set, err := Decode(v.Value)
		if err != nil {
			return nil, 0, err
		}
		merged.Union(set)
	}
	return merged, len(versions), nil
}

// Session is one user's operation-centric shopping session.
type Session struct {
	cl    *dynamo.Cluster
	s     *sim.Sim
	key   string // the cart's blob key
	actor string // session identity for version clocks
	gen   *uniq.Gen
	last  vclock.VC  // the session's own causal history; see dynamo.NextClock
	mine  *oplog.Set // every op this session has issued (its memories, §5.7)

	Reconciliations int // GETs that surfaced >1 sibling
}

// NewSession opens a session for user actor on cart key.
func NewSession(cl *dynamo.Cluster, key, actor string) *Session {
	return &Session{
		cl:    cl,
		s:     cl.Net().Sim(),
		key:   key,
		actor: actor,
		gen:   uniq.NewGen(actor),
		mine:  oplog.NewSet(),
	}
}

// Add puts qty units of sku in the cart.
func (ss *Session) Add(sku string, qty int64, done func(ok bool)) {
	ss.mutate(oplog.Entry{Kind: KindAdd, Key: sku, Arg: qty}, done)
}

// ChangeQty sets the quantity of sku (the paper's CHANGE-NUMBER).
func (ss *Session) ChangeQty(sku string, qty int64, done func(ok bool)) {
	ss.mutate(oplog.Entry{Kind: KindChange, Key: sku, Arg: qty}, done)
}

// Delete removes sku from the cart.
func (ss *Session) Delete(sku string, done func(ok bool)) {
	ss.mutate(oplog.Entry{Kind: KindDelete, Key: sku, Arg: 0}, done)
}

// mutate is the §6.1 cycle: GET (collect siblings), reconcile by op
// union, append the new intention, PUT back with the merged context. The
// session folds its own causal history into the context so a stale quorum
// read can never make it reuse a version clock (dynamo.NextClock).
func (ss *Session) mutate(op oplog.Entry, done func(bool)) {
	ss.cl.Get(ss.key, func(versions []dynamo.Version, ctx vclock.VC, ok bool) {
		if !ok {
			done(false)
			return
		}
		merged, siblings, err := Reconcile(versions)
		if err != nil {
			done(false)
			return
		}
		if siblings > 1 {
			ss.Reconciliations++
		}
		// Re-contribute this session's own memories: the new version's
		// clock will dominate the session's earlier versions, so their
		// ops must ride along even if the quorum read missed them.
		merged.Union(ss.mine)
		op.ID = ss.gen.Next()
		op.At = ss.s.Now()
		op.Lam = merged.MaxLam() + 1
		merged.Add(op)
		ss.mine.Add(op)
		ctx = ctx.Merge(ss.last)
		ss.last = dynamo.NextClock(ctx, ss.actor)
		ss.cl.Put(ss.key, Encode(merged), ctx, ss.actor, done)
	})
}

// Contents reads and reconciles the cart without modifying it.
func (ss *Session) Contents(done func(items []Item, ok bool)) {
	ss.cl.Get(ss.key, func(versions []dynamo.Version, _ vclock.VC, ok bool) {
		if !ok {
			done(nil, false)
			return
		}
		merged, siblings, err := Reconcile(versions)
		if err != nil {
			done(nil, false)
			return
		}
		if siblings > 1 {
			ss.Reconciliations++
		}
		done(Contents(merged), true)
	})
}
