package cart

import (
	"encoding/json"
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/sim"
	"repro/internal/vclock"
)

// StateMergeSession is the §6.4 strawman: the blob stores only the
// materialized items (READ/WRITE of state, not operations). Sibling
// reconciliation can only union the item sets and take the larger
// quantity — it cannot tell "added 1 more" from "already had 1", nor "I
// deleted this" from "I never saw this". Concurrent adds of the same SKU
// collapse (a lost update) and deletes concurrent with any other change
// resurrect. "WRITES to a database are not commutative!"
type StateMergeSession struct {
	cl    *dynamo.Cluster
	s     *sim.Sim
	key   string
	actor string
	last  vclock.VC // own causal history; see dynamo.NextClock

	Reconciliations int
}

// NewStateMergeSession opens a state-merge session on cart key.
func NewStateMergeSession(cl *dynamo.Cluster, key, actor string) *StateMergeSession {
	return &StateMergeSession{cl: cl, s: cl.Net().Sim(), key: key, actor: actor}
}

func encodeItems(items map[string]int64) string {
	b, err := json.Marshal(items)
	if err != nil {
		panic(fmt.Sprintf("cart: encode items: %v", err))
	}
	return string(b)
}

func decodeItems(blob string) (map[string]int64, error) {
	items := map[string]int64{}
	if err := json.Unmarshal([]byte(blob), &items); err != nil {
		return nil, fmt.Errorf("cart: decode items: %w", err)
	}
	return items, nil
}

// mergeItems reconciles sibling item-states: union of SKUs, max quantity.
// This is the best a state blob can do — and exactly where the anomalies
// come from.
func mergeItems(versions []dynamo.Version) (map[string]int64, error) {
	merged := map[string]int64{}
	for _, v := range versions {
		items, err := decodeItems(v.Value)
		if err != nil {
			return nil, err
		}
		for sku, qty := range items {
			if qty > merged[sku] {
				merged[sku] = qty
			}
		}
	}
	return merged, nil
}

func (ss *StateMergeSession) mutate(apply func(map[string]int64), done func(bool)) {
	ss.cl.Get(ss.key, func(versions []dynamo.Version, ctx vclock.VC, ok bool) {
		if !ok {
			done(false)
			return
		}
		items, err := mergeItems(versions)
		if err != nil {
			done(false)
			return
		}
		if len(versions) > 1 {
			ss.Reconciliations++
		}
		apply(items)
		ctx = ctx.Merge(ss.last)
		ss.last = dynamo.NextClock(ctx, ss.actor)
		ss.cl.Put(ss.key, encodeItems(items), ctx, ss.actor, done)
	})
}

// Add puts qty more units of sku in the cart.
func (ss *StateMergeSession) Add(sku string, qty int64, done func(ok bool)) {
	ss.mutate(func(items map[string]int64) { items[sku] += qty }, done)
}

// ChangeQty sets the quantity of sku.
func (ss *StateMergeSession) ChangeQty(sku string, qty int64, done func(ok bool)) {
	ss.mutate(func(items map[string]int64) { items[sku] = qty }, done)
}

// Delete removes sku — by erasing state, which a concurrent sibling
// happily restores.
func (ss *StateMergeSession) Delete(sku string, done func(ok bool)) {
	ss.mutate(func(items map[string]int64) { delete(items, sku) }, done)
}

// Contents reads and reconciles the cart without modifying it.
func (ss *StateMergeSession) Contents(done func(items []Item, ok bool)) {
	ss.cl.Get(ss.key, func(versions []dynamo.Version, _ vclock.VC, ok bool) {
		if !ok {
			done(nil, false)
			return
		}
		merged, err := mergeItems(versions)
		if err != nil {
			done(nil, false)
			return
		}
		if len(versions) > 1 {
			ss.Reconciliations++
		}
		out := make([]Item, 0, len(merged))
		for sku, qty := range merged {
			if qty > 0 {
				out = append(out, Item{SKU: sku, Qty: qty})
			}
		}
		sortItems(out)
		done(out, true)
	})
}

func sortItems(items []Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].SKU < items[j-1].SKU; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}
