package oplog

// The binary entry codec: the wire-and-disk format for one Entry.
// internal/store frames these encodings into CRC-checked, length-prefixed
// journal records and snapshot files; keeping the codec here, next to the
// Entry definition, means a field added to Entry fails loudly in the codec
// tests instead of silently truncating what recovery can rebuild.
//
// The encoding is deliberately boring: four uvarint-length-prefixed
// strings (ID, Kind, Key, Note) followed by three varints (Lam unsigned;
// At and Arg zigzag-signed). No self-description, no versioning — the
// store's segment and snapshot headers carry the format version, so the
// per-entry bytes stay minimal.

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/sim"
	"repro/internal/uniq"
)

// AppendEntry appends the binary encoding of e to buf and returns the
// extended slice, in the style of strconv.AppendInt. With a buffer of at
// least EntrySize(e) spare capacity the call performs no allocation —
// the contract the batched journal writer and snapshot writer rely on
// (and the alloc assertions in codec_test.go pin).
func AppendEntry(buf []byte, e Entry) []byte {
	buf = appendString(buf, string(e.ID))
	buf = appendString(buf, e.Kind)
	buf = appendString(buf, e.Key)
	buf = appendString(buf, e.Note)
	buf = binary.AppendUvarint(buf, e.Lam)
	buf = binary.AppendVarint(buf, int64(e.At))
	buf = binary.AppendVarint(buf, e.Arg)
	return buf
}

// EntrySize reports the exact encoded length of e, so a caller batching
// many entries into one buffer can preallocate it once instead of letting
// append grow it piecemeal.
func EntrySize(e Entry) int {
	return stringSize(len(e.ID)) + stringSize(len(e.Kind)) + stringSize(len(e.Key)) + stringSize(len(e.Note)) +
		uvarintSize(e.Lam) + varintSize(int64(e.At)) + varintSize(e.Arg)
}

func stringSize(n int) int { return uvarintSize(uint64(n)) + n }

func uvarintSize(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

func varintSize(v int64) int {
	// Varint zigzags before writing, exactly as binary.AppendVarint does.
	return uvarintSize(uint64(v)<<1 ^ uint64(v>>63))
}

// bufPool recycles encode scratch buffers across journal flushes and
// snapshot writes. Buffers start small and grow to the workload's natural
// record size; pooling them keeps the steady-state encode path
// allocation-free without pinning one large buffer per store forever.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// GetBuf borrows a zero-length encode buffer from the shared pool. Return
// it with PutBuf when the encoded bytes have been written out; the buffer
// must not be referenced afterwards.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a borrowed buffer to the pool, keeping its grown capacity.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// DecodeEntry decodes one entry occupying the whole of b — the framing
// (record length, CRC) is the caller's job. Trailing bytes are an error:
// a record that decodes but does not consume its payload is corrupt.
func DecodeEntry(b []byte) (Entry, error) {
	var e Entry
	d := decoder{b: b}
	e.ID = uniq.ID(d.string())
	e.Kind = d.string()
	e.Key = d.string()
	e.Note = d.string()
	e.Lam = d.uvarint()
	e.At = sim.Time(d.varint())
	e.Arg = d.varint()
	if d.err != nil {
		return Entry{}, d.err
	}
	if len(d.b) != 0 {
		return Entry{}, fmt.Errorf("oplog: %d trailing bytes after entry", len(d.b))
	}
	return e, nil
}

// AppendWatermark appends the binary encoding of w to buf. Snapshot files
// record the fold watermark they were taken at so recovery can rebuild
// the fold checkpoint at exactly that position.
func AppendWatermark(buf []byte, w Watermark) []byte {
	buf = binary.AppendUvarint(buf, w.Lam)
	buf = binary.AppendVarint(buf, int64(w.At))
	buf = appendString(buf, string(w.ID))
	return buf
}

// DecodeWatermark decodes a watermark from the front of b, returning the
// remainder of the buffer.
func DecodeWatermark(b []byte) (Watermark, []byte, error) {
	var w Watermark
	d := decoder{b: b}
	w.Lam = d.uvarint()
	w.At = sim.Time(d.varint())
	w.ID = uniq.ID(d.string())
	if d.err != nil {
		return Watermark{}, nil, d.err
	}
	return w, d.b, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder consumes a buffer front-to-back, latching the first error so
// field reads can be written straight-line.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("oplog: truncated entry: bad %s", what)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
