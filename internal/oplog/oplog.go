// Package oplog implements the operation-centric log at the heart of the
// paper's §6.5 pattern: business operations captured "much like a ledger
// entry", each carrying a uniquifier, merged across replicas by set union.
//
// Union of uniquified operation sets is associative, commutative, and
// idempotent — the A, C, and I of ACID 2.0 (§8) — so "replicas that have
// seen the same work should see the same result, independent of the order
// in which the work has arrived" (§7.6). Applications derive their state
// by folding the entries in a canonical order; packages cart, bank, and
// core all build on this.
//
// # Canonical order and incremental derivation
//
// The canonical order is (Lam, At, ID): ascending Lamport timestamp, then
// ingress time, ties broken by uniquifier. A Set maintains this order as
// an index alongside the ID map, kept current on every Add — an O(1)
// append when the new entry sorts after everything present (the common
// case: ingress stamps Lamport max+1, so local submits and in-order
// gossip are pure appends), an O(n) insertion only when gossip delivers
// an entry that sorts into the past.
//
// The index makes state derivation incremental. A Watermark names a
// position in the canonical order; EntriesAfter(w) returns only the
// entries beyond it, so a consumer that remembers the watermark of its
// last fold can advance its derived state by folding just the new suffix
// instead of replaying the whole ledger. Consumers detect the rare
// sorts-into-the-past insertion by comparing the new entry's Mark against
// their watermark (see Entry.Mark and Watermark.Before) and only then
// fall back to replaying from an older checkpoint. internal/core's
// Replica is the canonical consumer of this contract.
package oplog

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/uniq"
)

// Entry is one recorded business operation. Entries are immutable and
// comparable; two entries with the same ID describe the same operation.
//
// The scalar payload (Kind, Key, Arg, Note) deliberately covers every
// application in this repository: a cart op is {Kind:"add", Key:item,
// Arg:qty}, a bank op is {Kind:"debit", Key:account, Arg:cents}, and so
// on. Keeping the payload concrete keeps sets comparable and hashable.
type Entry struct {
	ID   uniq.ID  // uniquifier assigned at ingress
	Kind string   // business operation name, e.g. "add-to-cart"
	Key  string   // object the operation targets (item, account, ...)
	Arg  int64    // numeric argument (quantity, cents, ...)
	Lam  uint64   // Lamport timestamp: orders causally related operations
	At   sim.Time // ingress wall-clock timestamp (statement cutoffs etc.)
	Note string   // free-form annotation carried with the op
}

// Mark returns the entry's position in the canonical order.
func (e Entry) Mark() Watermark { return Watermark{Lam: e.Lam, At: e.At, ID: e.ID} }

// Watermark names a position in the canonical (Lam, At, ID) order. The
// zero Watermark sorts before every real entry (real entries carry
// non-empty IDs), so it means "genesis: nothing folded yet".
type Watermark struct {
	Lam uint64
	At  sim.Time
	ID  uniq.ID
}

// IsZero reports whether w is the genesis watermark.
func (w Watermark) IsZero() bool { return w == Watermark{} }

// Less reports whether w sorts strictly before o in canonical order.
func (w Watermark) Less(o Watermark) bool {
	if w.Lam != o.Lam {
		return w.Lam < o.Lam
	}
	if w.At != o.At {
		return w.At < o.At
	}
	return w.ID < o.ID
}

// Before reports whether w sorts strictly before entry e — that is,
// whether e lies beyond the watermark and can be folded incrementally. A
// consumer holding watermark w must treat an arriving entry with
// !w.Before(e) as sorting into its already-folded past.
func (w Watermark) Before(e Entry) bool { return w.Less(e.Mark()) }

// Set is a mergeable set of entries keyed by uniquifier, with a
// canonically ordered index maintained on every Add. The zero value is
// not usable; construct with NewSet.
type Set struct {
	byID    map[uniq.ID]Entry
	ordered []Entry // canonical (Lam, At, ID) order, kept current by Add
}

// NewSet returns an empty set, optionally seeded with entries.
func NewSet(entries ...Entry) *Set {
	s := &Set{byID: make(map[uniq.ID]Entry)}
	for _, e := range entries {
		s.Add(e)
	}
	return s
}

// Add inserts e, reporting true if it was new. Re-adding an entry with an
// already-present ID is a no-op returning false — this is what makes
// processing "have the business impact of a single execution even as it is
// processed at multiple replicas" (§5.4).
//
// Add maintains the canonical index: appending (an entry sorting after
// everything present) is O(1) amortized; an entry sorting into the past
// costs an O(n) insertion, which only out-of-order gossip pays.
func (s *Set) Add(e Entry) bool {
	if _, ok := s.byID[e.ID]; ok {
		return false
	}
	s.byID[e.ID] = e
	if n := len(s.ordered); n == 0 || s.ordered[n-1].Mark().Before(e) {
		s.ordered = append(s.ordered, e)
	} else {
		i := s.searchAfter(e.Mark())
		s.ordered = append(s.ordered, Entry{})
		copy(s.ordered[i+1:], s.ordered[i:])
		s.ordered[i] = e
	}
	return true
}

// AddAll unions a batch of entries, returning the ones that were new in
// their input (arrival) order. It is the vectorized sibling of Add: the
// fresh entries are merged into the canonical index in ONE pass, so a
// gossip push of K entries that sort into the past costs one tail move
// instead of K of them — the difference between anti-entropy keeping up
// with sustained ingest and falling quadratically behind it.
func (s *Set) AddAll(entries []Entry) (added []Entry) {
	for _, e := range entries {
		if _, ok := s.byID[e.ID]; ok {
			continue
		}
		s.byID[e.ID] = e
		added = append(added, e)
	}
	if len(added) == 0 {
		return nil
	}
	// Fast path: the whole batch extends the tail in order (local submits,
	// in-order gossip) — pure appends.
	inOrder := true
	last := Watermark{}
	if n := len(s.ordered); n > 0 {
		last = s.ordered[n-1].Mark()
	}
	for _, e := range added {
		if !last.Less(e.Mark()) {
			inOrder = false
			break
		}
		last = e.Mark()
	}
	if inOrder {
		s.ordered = append(s.ordered, added...)
		return added
	}
	// Merge path: sort a copy of the newcomers canonically (added itself
	// must keep arrival order for the caller), then merge from the back so
	// every existing entry moves at most once.
	fresh := append(make([]Entry, 0, len(added)), added...)
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Mark().Less(fresh[j].Mark()) })
	old := len(s.ordered)
	s.ordered = append(s.ordered, fresh...)
	i, j, w := old-1, len(fresh)-1, len(s.ordered)-1
	for j >= 0 {
		if i >= 0 && fresh[j].Mark().Less(s.ordered[i].Mark()) {
			s.ordered[w] = s.ordered[i]
			i--
		} else {
			s.ordered[w] = fresh[j]
			j--
		}
		w--
	}
	return added
}

// searchAfter returns the index of the first ordered entry sorting
// strictly after w (len(ordered) if none).
func (s *Set) searchAfter(w Watermark) int {
	return sort.Search(len(s.ordered), func(i int) bool {
		return w.Less(s.ordered[i].Mark())
	})
}

// Grow ensures the canonical index has spare capacity for n more entries
// without reallocating. Callers that know a batch's size (the batched
// ingest loop, recovery replay) call it once up front so the per-entry
// Add is a pure append.
func (s *Set) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(s.ordered) - len(s.ordered); free < n {
		grown := make([]Entry, len(s.ordered), len(s.ordered)+n)
		copy(grown, s.ordered)
		s.ordered = grown
	}
}

// Contains reports whether an entry with the given ID is present.
func (s *Set) Contains(id uniq.ID) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the entry with the given ID, if present.
func (s *Set) Get(id uniq.ID) (Entry, bool) {
	e, ok := s.byID[id]
	return e, ok
}

// Len reports the number of distinct operations.
func (s *Set) Len() int { return len(s.byID) }

// Union absorbs every entry of o into s, returning how many were new.
// Union is the gossip primitive: "when the work flows together, a new,
// more accurate answer is created" (§7.6).
func (s *Set) Union(o *Set) int {
	added := 0
	for _, e := range o.byID {
		if s.Add(e) {
			added++
		}
	}
	return added
}

// Diff returns the entries present in s but absent from o, in canonical
// order. Replicas exchange diffs during anti-entropy.
func (s *Set) Diff(o *Set) []Entry {
	var out []Entry
	for _, e := range s.ordered {
		if !o.Contains(e.ID) {
			out = append(out, e)
		}
	}
	return out
}

// Copy returns an independent copy.
func (s *Set) Copy() *Set {
	c := &Set{
		byID:    make(map[uniq.ID]Entry, len(s.byID)),
		ordered: append([]Entry(nil), s.ordered...),
	}
	for id, e := range s.byID {
		c.byID[id] = e
	}
	return c
}

// Equal reports whether both sets hold exactly the same entries.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for id, e := range s.byID {
		oe, ok := o.byID[id]
		if !ok || oe != e {
			return false
		}
	}
	return true
}

// Entries returns all operations in canonical order: ascending Lamport
// timestamp, then ingress time, ties broken by ID. Lamport assignment at
// ingress (see MaxLam) makes an operation sort after everything its
// replica had already seen, so causes fold before effects; the remaining
// ties are concurrent operations, ordered deterministically. Folding
// state in canonical order makes the derived state a pure function of the
// set — the arrival order at this replica "is not the determining factor
// in the outcome" (§7.6).
//
// The returned slice is a copy; callers may keep or mutate it. With the
// index maintained by Add, this costs one O(n) copy, not a sort.
func (s *Set) Entries() []Entry {
	return append([]Entry(nil), s.ordered...)
}

// EntriesAfter returns, in canonical order, only the entries sorting
// strictly after watermark w — the suffix a checkpointed fold still has
// to apply. The genesis (zero) watermark yields every entry. Cost is
// O(log n) to locate the suffix plus a copy of just that suffix.
func (s *Set) EntriesAfter(w Watermark) []Entry {
	i := 0
	if !w.IsZero() {
		i = s.searchAfter(w)
	}
	if i == len(s.ordered) {
		return nil
	}
	return append([]Entry(nil), s.ordered[i:]...)
}

// MaxLam returns the highest Lamport timestamp in the set (0 when empty).
// An ingress point stamps new operations with max(seen)+1. The Lamport
// stamp is the canonical order's primary key, so this reads the index
// tail in O(1).
func (s *Set) MaxLam() uint64 {
	if n := len(s.ordered); n > 0 {
		return s.ordered[n-1].Lam
	}
	return 0
}

// Fold applies fn to every entry in canonical order, threading an
// accumulator. It is the generic "derive state from the ledger" helper —
// the from-genesis replay; checkpointed consumers fold EntriesAfter
// instead.
func Fold[S any](s *Set, init S, fn func(S, Entry) S) S {
	acc := init
	for _, e := range s.ordered {
		acc = fn(acc, e)
	}
	return acc
}

// Journal is an arrival-ordered send buffer with a truncatable prefix —
// the structure behind incremental anti-entropy. A replica appends every
// entry it absorbs and remembers, per peer, the absolute position that
// peer has acknowledged; once every peer it gossips with has acknowledged
// a prefix, TruncateTo releases that prefix's memory. Positions are
// absolute (they keep counting across truncations), so acknowledgement
// bookkeeping never shifts. The zero Journal is ready to use.
type Journal struct {
	base    int // entries truncated off the front
	entries []Entry
	dropped int // truncated entries still pinned by the backing array
}

// JournalAt returns an empty journal whose next append lands at absolute
// position base — the constructor crash recovery uses to resume the
// position numbering of a journal whose prefix [0, base) was already
// truncated before the crash.
func JournalAt(base int) Journal { return Journal{base: base} }

// Append records one entry at position Len().
func (j *Journal) Append(e Entry) { j.entries = append(j.entries, e) }

// AppendAll records the entries at consecutive positions starting at
// Len() — the vectorized sibling of Append. One call grows the backing
// array at most once however many entries a batched ingest absorbed, so
// the amortized per-entry cost stays a copy.
func (j *Journal) AppendAll(entries []Entry) { j.entries = append(j.entries, entries...) }

// Len is the absolute length: every entry ever appended, including the
// truncated prefix.
func (j *Journal) Len() int { return j.base + len(j.entries) }

// Base reports how many leading entries have been truncated away.
func (j *Journal) Base() int { return j.base }

// Retained reports how many entries are still held in memory — the
// figure journal truncation exists to bound.
func (j *Journal) Retained() int { return len(j.entries) }

// Since returns a copy of the entries at absolute positions [from, Len()).
// Asking for a position inside the truncated prefix panics: those entries
// are gone, and silently serving a shorter suffix would break the
// anti-entropy invariant that a peer receives every entry past its ack.
func (j *Journal) Since(from int) []Entry {
	if from < j.base {
		panic(fmt.Sprintf("oplog: journal suffix from %d requested but prefix truncated to %d", from, j.base))
	}
	if from >= j.Len() {
		return nil
	}
	return append([]Entry(nil), j.entries[from-j.base:]...)
}

// TruncateTo drops every entry before absolute position n. The common
// truncation — one per acknowledged gossip push — is an O(1) re-slice;
// the dropped prefix's backing memory is released by an occasional
// compaction once it outweighs what is retained, so a long-lived journal
// never pins more than ~2× its live entries while steady-state
// truncation costs no copy at all. Positions at or below Base (nothing
// new) and beyond Len (clamped) are both safe.
func (j *Journal) TruncateTo(n int) {
	if n > j.Len() {
		n = j.Len()
	}
	if n <= j.base {
		return
	}
	k := n - j.base
	j.entries = j.entries[k:]
	j.base = n
	j.dropped += k
	if j.dropped > len(j.entries) {
		// The pinned prefix outweighs the live tail: copy out and let the
		// old array go. Amortized over the drops that got us here, still
		// O(1) per truncated entry.
		j.entries = append(make([]Entry, 0, len(j.entries)), j.entries...)
		j.dropped = 0
	}
}
