// Package oplog implements the operation-centric log at the heart of the
// paper's §6.5 pattern: business operations captured "much like a ledger
// entry", each carrying a uniquifier, merged across replicas by set union.
//
// Union of uniquified operation sets is associative, commutative, and
// idempotent — the A, C, and I of ACID 2.0 (§8) — so "replicas that have
// seen the same work should see the same result, independent of the order
// in which the work has arrived" (§7.6). Applications derive their state
// by folding the entries in a canonical order; packages cart, bank, and
// core all build on this.
package oplog

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/uniq"
)

// Entry is one recorded business operation. Entries are immutable and
// comparable; two entries with the same ID describe the same operation.
//
// The scalar payload (Kind, Key, Arg, Note) deliberately covers every
// application in this repository: a cart op is {Kind:"add", Key:item,
// Arg:qty}, a bank op is {Kind:"debit", Key:account, Arg:cents}, and so
// on. Keeping the payload concrete keeps sets comparable and hashable.
type Entry struct {
	ID   uniq.ID  // uniquifier assigned at ingress
	Kind string   // business operation name, e.g. "add-to-cart"
	Key  string   // object the operation targets (item, account, ...)
	Arg  int64    // numeric argument (quantity, cents, ...)
	Lam  uint64   // Lamport timestamp: orders causally related operations
	At   sim.Time // ingress wall-clock timestamp (statement cutoffs etc.)
	Note string   // free-form annotation carried with the op
}

// Set is a mergeable set of entries keyed by uniquifier. The zero value is
// not usable; construct with NewSet.
type Set struct {
	byID map[uniq.ID]Entry
}

// NewSet returns an empty set, optionally seeded with entries.
func NewSet(entries ...Entry) *Set {
	s := &Set{byID: make(map[uniq.ID]Entry)}
	for _, e := range entries {
		s.Add(e)
	}
	return s
}

// Add inserts e, reporting true if it was new. Re-adding an entry with an
// already-present ID is a no-op returning false — this is what makes
// processing "have the business impact of a single execution even as it is
// processed at multiple replicas" (§5.4).
func (s *Set) Add(e Entry) bool {
	if _, ok := s.byID[e.ID]; ok {
		return false
	}
	s.byID[e.ID] = e
	return true
}

// Contains reports whether an entry with the given ID is present.
func (s *Set) Contains(id uniq.ID) bool {
	_, ok := s.byID[id]
	return ok
}

// Get returns the entry with the given ID, if present.
func (s *Set) Get(id uniq.ID) (Entry, bool) {
	e, ok := s.byID[id]
	return e, ok
}

// Len reports the number of distinct operations.
func (s *Set) Len() int { return len(s.byID) }

// Union absorbs every entry of o into s, returning how many were new.
// Union is the gossip primitive: "when the work flows together, a new,
// more accurate answer is created" (§7.6).
func (s *Set) Union(o *Set) int {
	added := 0
	for _, e := range o.byID {
		if s.Add(e) {
			added++
		}
	}
	return added
}

// Diff returns the entries present in s but absent from o, in canonical
// order. Replicas exchange diffs during anti-entropy.
func (s *Set) Diff(o *Set) []Entry {
	var out []Entry
	for id, e := range s.byID {
		if !o.Contains(id) {
			out = append(out, e)
		}
	}
	sortCanonical(out)
	return out
}

// Copy returns an independent copy.
func (s *Set) Copy() *Set {
	c := NewSet()
	for _, e := range s.byID {
		c.byID[e.ID] = e
	}
	return c
}

// Equal reports whether both sets hold exactly the same entries.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for id, e := range s.byID {
		oe, ok := o.byID[id]
		if !ok || oe != e {
			return false
		}
	}
	return true
}

// Entries returns all operations in canonical order: ascending Lamport
// timestamp, then ingress time, ties broken by ID. Lamport assignment at
// ingress (see MaxLam) makes an operation sort after everything its
// replica had already seen, so causes fold before effects; the remaining
// ties are concurrent operations, ordered deterministically. Folding
// state in canonical order makes the derived state a pure function of the
// set — the arrival order at this replica "is not the determining factor
// in the outcome" (§7.6).
func (s *Set) Entries() []Entry {
	out := make([]Entry, 0, len(s.byID))
	for _, e := range s.byID {
		out = append(out, e)
	}
	sortCanonical(out)
	return out
}

// MaxLam returns the highest Lamport timestamp in the set (0 when empty).
// An ingress point stamps new operations with max(seen)+1.
func (s *Set) MaxLam() uint64 {
	var max uint64
	for _, e := range s.byID {
		if e.Lam > max {
			max = e.Lam
		}
	}
	return max
}

func sortCanonical(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Lam != es[j].Lam {
			return es[i].Lam < es[j].Lam
		}
		if es[i].At != es[j].At {
			return es[i].At < es[j].At
		}
		return es[i].ID < es[j].ID
	})
}

// Fold applies fn to every entry in canonical order, threading an
// accumulator. It is the generic "derive state from the ledger" helper.
func Fold[S any](s *Set, init S, fn func(S, Entry) S) S {
	acc := init
	for _, e := range s.Entries() {
		acc = fn(acc, e)
	}
	return acc
}
