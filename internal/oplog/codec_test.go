package oplog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/uniq"
)

func TestEntryCodecRoundTrip(t *testing.T) {
	cases := []Entry{
		{},
		{ID: "r0-000001", Kind: "deposit", Key: "acct-007", Arg: 100_00, Lam: 1, At: 5_000_000},
		{ID: "x", Kind: "", Key: "", Arg: -42, Lam: 0, At: -1, Note: "free-form\nnote"},
		{ID: uniq.ID(strings.Repeat("long", 100)), Kind: "k", Key: strings.Repeat("key", 50), Arg: 1 << 62, Lam: ^uint64(0), At: sim.Time(1 << 60)},
	}
	for _, want := range cases {
		got, err := DecodeEntry(AppendEntry(nil, want))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestEntryCodecRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	str := func(n int) string {
		b := make([]byte, rng.Intn(n))
		rng.Read(b)
		return string(b)
	}
	for i := 0; i < 500; i++ {
		want := Entry{
			ID:   uniq.ID(str(24)),
			Kind: str(12),
			Key:  str(12),
			Note: str(40),
			Arg:  rng.Int63() - rng.Int63(),
			Lam:  rng.Uint64(),
			At:   sim.Time(rng.Int63() - rng.Int63()),
		}
		got, err := DecodeEntry(AppendEntry(nil, want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeEntryRejectsTruncationAndTrailing(t *testing.T) {
	full := AppendEntry(nil, Entry{ID: "id-1", Kind: "kind", Key: "key", Note: "note", Arg: 7, Lam: 9, At: 11})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeEntry(full[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte truncation", n, len(full))
		}
	}
	if _, err := DecodeEntry(append(append([]byte(nil), full...), 0x00)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

func TestWatermarkCodecRoundTrip(t *testing.T) {
	for _, want := range []Watermark{
		{},
		{Lam: 42, At: 1_000_000, ID: "r1-000007"},
	} {
		got, rest, err := DecodeWatermark(AppendWatermark(nil, want))
		if err != nil {
			t.Fatal(err)
		}
		if got != want || len(rest) != 0 {
			t.Fatalf("got %+v (rest %d) want %+v", got, len(rest), want)
		}
	}
	// A watermark at the front of a longer buffer hands back the tail.
	buf := AppendWatermark(nil, Watermark{Lam: 3})
	buf = append(buf, 0xAA, 0xBB)
	_, rest, err := DecodeWatermark(buf)
	if err != nil || len(rest) != 2 {
		t.Fatalf("tail: rest=%d err=%v", len(rest), err)
	}
}

func TestEntrySizeExact(t *testing.T) {
	cases := []Entry{
		{},
		{ID: "r0-000001", Kind: "deposit", Key: "acct-007", Arg: 100_00, Lam: 1, At: 5_000_000},
		{ID: "x", Arg: -42, At: -1, Note: "free-form\nnote"},
		{ID: uniq.ID(strings.Repeat("long", 100)), Kind: "k", Key: strings.Repeat("key", 50), Arg: 1 << 62, Lam: ^uint64(0), At: sim.Time(1 << 60)},
		{Lam: 127}, {Lam: 128}, {Arg: 63}, {Arg: 64}, {Arg: -64}, {Arg: -65},
	}
	for _, e := range cases {
		if got, want := EntrySize(e), len(AppendEntry(nil, e)); got != want {
			t.Fatalf("EntrySize(%+v) = %d, encoded length %d", e, got, want)
		}
	}
}

// TestAppendEntryNoAllocs pins the zero-allocation contract of the encode
// path: appending into a buffer with enough spare capacity must not touch
// the heap, or every journal flush and snapshot write regresses to one
// allocation per record.
func TestAppendEntryNoAllocs(t *testing.T) {
	e := Entry{ID: "r0-000042", Kind: "deposit", Key: "acct-007", Note: "n", Arg: 100_00, Lam: 42, At: 5_000_000}
	buf := make([]byte, 0, 4*EntrySize(e))
	if allocs := testing.AllocsPerRun(100, func() {
		buf = AppendEntry(buf[:0], e)
	}); allocs != 0 {
		t.Fatalf("AppendEntry into a presized buffer allocates %.1f times per call, want 0", allocs)
	}
}

func TestBufPoolRoundTrip(t *testing.T) {
	b := GetBuf()
	if len(*b) != 0 {
		t.Fatalf("pooled buffer arrives with %d bytes", len(*b))
	}
	*b = append(*b, AppendEntry(nil, Entry{ID: "a"})...)
	PutBuf(b)
	b2 := GetBuf()
	defer PutBuf(b2)
	if len(*b2) != 0 {
		t.Fatalf("recycled buffer not reset: %d bytes", len(*b2))
	}
}

func TestJournalAt(t *testing.T) {
	j := JournalAt(10)
	if j.Len() != 10 || j.Base() != 10 || j.Retained() != 0 {
		t.Fatalf("JournalAt(10): len=%d base=%d retained=%d", j.Len(), j.Base(), j.Retained())
	}
	j.Append(Entry{ID: "a"})
	if got := j.Since(10); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("Since(10) = %v", got)
	}
}

func TestJournalAppendAll(t *testing.T) {
	var j Journal
	j.Append(Entry{ID: "a"})
	j.AppendAll([]Entry{{ID: "b"}, {ID: "c"}})
	j.AppendAll(nil)
	if j.Len() != 3 {
		t.Fatalf("len = %d, want 3", j.Len())
	}
	got := j.Since(0)
	for i, id := range []uniq.ID{"a", "b", "c"} {
		if got[i].ID != id {
			t.Fatalf("position %d = %q, want %q", i, got[i].ID, id)
		}
	}
	j.TruncateTo(2)
	j.AppendAll([]Entry{{ID: "d"}})
	if j.Len() != 4 || j.Base() != 2 {
		t.Fatalf("after truncate+append: len=%d base=%d", j.Len(), j.Base())
	}
}

// TestAddAllMatchesSequentialAdd is the vectorized union's oracle: for
// randomized batches (in-order tails, into-the-past merges, duplicates,
// overlaps), AddAll must leave the set exactly as per-entry Add would,
// and report the new entries in arrival order.
func TestAddAllMatchesSequentialAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a, b := NewSet(), NewSet()
		mkBatch := func(n int) []Entry {
			batch := make([]Entry, n)
			for i := range batch {
				lam := uint64(rng.Intn(40))
				batch[i] = Entry{ID: uniq.ID(fmt.Sprintf("t%d-e%d", trial, rng.Intn(60))), Lam: lam, Arg: int64(lam)}
			}
			return batch
		}
		for round := 0; round < 5; round++ {
			batch := mkBatch(1 + rng.Intn(12))
			var wantAdded []Entry
			for _, e := range batch {
				if a.Add(e) {
					wantAdded = append(wantAdded, e)
				}
			}
			gotAdded := b.AddAll(batch)
			if len(gotAdded) != len(wantAdded) {
				t.Fatalf("trial %d: AddAll added %d, Add added %d", trial, len(gotAdded), len(wantAdded))
			}
			for i := range wantAdded {
				if gotAdded[i] != wantAdded[i] {
					t.Fatalf("trial %d: added[%d] = %+v, want %+v (arrival order lost)", trial, i, gotAdded[i], wantAdded[i])
				}
			}
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: sets diverged", trial)
		}
		ae, be := a.Entries(), b.Entries()
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("trial %d: canonical order diverged at %d: %+v vs %+v", trial, i, ae[i], be[i])
			}
		}
	}
}

func TestSetGrow(t *testing.T) {
	s := NewSet()
	s.Grow(100)
	s.Grow(-1) // no-op
	for i := 0; i < 100; i++ {
		s.Add(Entry{ID: uniq.ID(strings.Repeat("x", 1) + string(rune('0'+i%10))), Lam: uint64(i)})
	}
	// Growing a populated set keeps its contents and order.
	s2 := NewSet(Entry{ID: "a", Lam: 1}, Entry{ID: "b", Lam: 2})
	s2.Grow(50)
	if s2.Len() != 2 || s2.Entries()[0].ID != "a" || s2.Entries()[1].ID != "b" {
		t.Fatalf("Grow disturbed the set: %v", s2.Entries())
	}
	s2.Add(Entry{ID: "c", Lam: 3})
	if s2.Entries()[2].ID != "c" {
		t.Fatal("append after Grow lost order")
	}
}
