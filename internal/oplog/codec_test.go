package oplog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/uniq"
)

func TestEntryCodecRoundTrip(t *testing.T) {
	cases := []Entry{
		{},
		{ID: "r0-000001", Kind: "deposit", Key: "acct-007", Arg: 100_00, Lam: 1, At: 5_000_000},
		{ID: "x", Kind: "", Key: "", Arg: -42, Lam: 0, At: -1, Note: "free-form\nnote"},
		{ID: uniq.ID(strings.Repeat("long", 100)), Kind: "k", Key: strings.Repeat("key", 50), Arg: 1 << 62, Lam: ^uint64(0), At: sim.Time(1 << 60)},
	}
	for _, want := range cases {
		got, err := DecodeEntry(AppendEntry(nil, want))
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestEntryCodecRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	str := func(n int) string {
		b := make([]byte, rng.Intn(n))
		rng.Read(b)
		return string(b)
	}
	for i := 0; i < 500; i++ {
		want := Entry{
			ID:   uniq.ID(str(24)),
			Kind: str(12),
			Key:  str(12),
			Note: str(40),
			Arg:  rng.Int63() - rng.Int63(),
			Lam:  rng.Uint64(),
			At:   sim.Time(rng.Int63() - rng.Int63()),
		}
		got, err := DecodeEntry(AppendEntry(nil, want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeEntryRejectsTruncationAndTrailing(t *testing.T) {
	full := AppendEntry(nil, Entry{ID: "id-1", Kind: "kind", Key: "key", Note: "note", Arg: 7, Lam: 9, At: 11})
	for n := 0; n < len(full); n++ {
		if _, err := DecodeEntry(full[:n]); err == nil {
			t.Fatalf("decode accepted a %d/%d-byte truncation", n, len(full))
		}
	}
	if _, err := DecodeEntry(append(append([]byte(nil), full...), 0x00)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

func TestWatermarkCodecRoundTrip(t *testing.T) {
	for _, want := range []Watermark{
		{},
		{Lam: 42, At: 1_000_000, ID: "r1-000007"},
	} {
		got, rest, err := DecodeWatermark(AppendWatermark(nil, want))
		if err != nil {
			t.Fatal(err)
		}
		if got != want || len(rest) != 0 {
			t.Fatalf("got %+v (rest %d) want %+v", got, len(rest), want)
		}
	}
	// A watermark at the front of a longer buffer hands back the tail.
	buf := AppendWatermark(nil, Watermark{Lam: 3})
	buf = append(buf, 0xAA, 0xBB)
	_, rest, err := DecodeWatermark(buf)
	if err != nil || len(rest) != 2 {
		t.Fatalf("tail: rest=%d err=%v", len(rest), err)
	}
}

func TestJournalAt(t *testing.T) {
	j := JournalAt(10)
	if j.Len() != 10 || j.Base() != 10 || j.Retained() != 0 {
		t.Fatalf("JournalAt(10): len=%d base=%d retained=%d", j.Len(), j.Base(), j.Retained())
	}
	j.Append(Entry{ID: "a"})
	if got := j.Since(10); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("Since(10) = %v", got)
	}
}
