package oplog

import (
	"fmt"
	"testing"

	"repro/internal/uniq"
)

// Micro-benchmarks for the op-set primitives: gossip and state folds are
// built from Union and Entries, so their constants bound experiment scale.

func benchSet(n int) *Set {
	s := NewSet()
	for i := 0; i < n; i++ {
		s.Add(Entry{ID: uniq.ID(fmt.Sprintf("op-%08d", i)), Kind: "k", Arg: 1, Lam: uint64(i)})
	}
	return s
}

func BenchmarkSetAdd(b *testing.B) {
	s := NewSet()
	ids := make([]uniq.ID, b.N)
	for i := range ids {
		ids[i] = uniq.ID(fmt.Sprintf("op-%08d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(Entry{ID: ids[i], Lam: uint64(i)})
	}
}

func BenchmarkUnionDisjoint1k(b *testing.B) {
	src := benchSet(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := NewSet()
		dst.Union(src)
	}
}

func BenchmarkUnionIdempotent1k(b *testing.B) {
	src := benchSet(1000)
	dst := benchSet(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Union(src) // fully overlapping: the common gossip steady state
	}
}

func BenchmarkEntriesCanonicalSort1k(b *testing.B) {
	s := benchSet(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Entries()
	}
}

func BenchmarkEntriesAfterTail1k(b *testing.B) {
	s := benchSet(1000)
	w := Entry{ID: uniq.ID(fmt.Sprintf("op-%08d", 989)), Kind: "k", Arg: 1, Lam: 989}.Mark()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EntriesAfter(w) // last 10 entries: the checkpointed-fold steady state
	}
}

func BenchmarkAddOutOfOrder1k(b *testing.B) {
	// Every add sorts into the past — the worst case the O(n) insertion
	// path pays, so gossip-behind-watermark cost stays visible.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSet()
		for j := 999; j >= 0; j-- {
			s.Add(Entry{ID: uniq.ID(fmt.Sprintf("op-%08d", j)), Lam: uint64(j)})
		}
	}
}

func BenchmarkFold1k(b *testing.B) {
	s := benchSet(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fold(s, int64(0), func(acc int64, e Entry) int64 { return acc + e.Arg })
	}
}

// BenchmarkAppendEntryReused is the journal writer's steady state: encode
// into a reused scratch buffer. Run with -benchmem; the assertion below
// (and TestAppendEntryNoAllocs) pin this at 0 allocs/op.
func BenchmarkAppendEntryReused(b *testing.B) {
	b.ReportAllocs()
	e := Entry{ID: "r0-000042", Kind: "deposit", Key: "acct-007", Note: "n", Arg: 100_00, Lam: 42, At: 5_000_000}
	buf := make([]byte, 0, 2*EntrySize(e))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEntry(buf[:0], e)
	}
	if testing.AllocsPerRun(100, func() { buf = AppendEntry(buf[:0], e) }) != 0 {
		b.Fatal("reused-buffer encode allocates")
	}
}

// BenchmarkAppendEntryPooled is the same encode through the shared buffer
// pool — what the snapshot writer pays per file, amortized to zero after
// the pool warms up.
func BenchmarkAppendEntryPooled(b *testing.B) {
	b.ReportAllocs()
	e := Entry{ID: "r0-000042", Kind: "deposit", Key: "acct-007", Note: "n", Arg: 100_00, Lam: 42, At: 5_000_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		*buf = AppendEntry(*buf, e)
		PutBuf(buf)
	}
}

func BenchmarkDecodeEntry(b *testing.B) {
	b.ReportAllocs()
	enc := AppendEntry(nil, Entry{ID: "r0-000042", Kind: "deposit", Key: "acct-007", Note: "n", Arg: 100_00, Lam: 42, At: 5_000_000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeEntry(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppendAll measures the vectorized journal append the
// batched ingest loop uses: one call per 256-entry batch.
func BenchmarkJournalAppendAll(b *testing.B) {
	b.ReportAllocs()
	batch := make([]Entry, 256)
	for i := range batch {
		batch[i] = Entry{ID: uniq.ID(fmt.Sprintf("op-%08d", i)), Lam: uint64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var j Journal
		j.AppendAll(batch)
		if j.Len() != len(batch) {
			b.Fatal("lost entries")
		}
	}
}
