package oplog

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/uniq"
)

func e(id string, at int64) Entry {
	return Entry{ID: uniq.ID(id), Kind: "op", Key: "k", Arg: 1, At: sim.Time(at)}
}

func TestAddIdempotent(t *testing.T) {
	s := NewSet()
	if !s.Add(e("a", 1)) {
		t.Fatal("first Add returned false")
	}
	if s.Add(e("a", 1)) {
		t.Fatal("duplicate Add returned true")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestContainsAndGet(t *testing.T) {
	s := NewSet(e("a", 1))
	if !s.Contains("a") || s.Contains("b") {
		t.Fatal("Contains wrong")
	}
	got, ok := s.Get("a")
	if !ok || got.ID != "a" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("Get of absent ID returned ok")
	}
}

func TestUnionCountsNewOnly(t *testing.T) {
	a := NewSet(e("1", 1), e("2", 2))
	b := NewSet(e("2", 2), e("3", 3))
	if n := a.Union(b); n != 1 {
		t.Fatalf("Union absorbed %d, want 1", n)
	}
	if a.Len() != 3 {
		t.Fatalf("Len after union = %d", a.Len())
	}
}

func TestDiff(t *testing.T) {
	a := NewSet(e("1", 1), e("2", 2), e("3", 3))
	b := NewSet(e("2", 2))
	d := a.Diff(b)
	if len(d) != 2 || d[0].ID != "1" || d[1].ID != "3" {
		t.Fatalf("Diff = %+v", d)
	}
	if len(b.Diff(a)) != 0 {
		t.Fatal("reverse diff should be empty")
	}
}

func TestEntriesCanonicalOrder(t *testing.T) {
	s := NewSet(e("b", 5), e("a", 5), e("z", 1))
	got := s.Entries()
	if got[0].ID != "z" || got[1].ID != "a" || got[2].ID != "b" {
		t.Fatalf("canonical order wrong: %+v", got)
	}
}

func TestCopyIndependent(t *testing.T) {
	a := NewSet(e("1", 1))
	c := a.Copy()
	c.Add(e("2", 2))
	if a.Len() != 1 {
		t.Fatal("Copy shares storage")
	}
	if !a.Equal(NewSet(e("1", 1))) {
		t.Fatal("original changed")
	}
}

func TestEqual(t *testing.T) {
	a := NewSet(e("1", 1), e("2", 2))
	b := NewSet(e("2", 2), e("1", 1))
	if !a.Equal(b) {
		t.Fatal("same entries, different insertion order: must be Equal")
	}
	b.Add(e("3", 3))
	if a.Equal(b) {
		t.Fatal("different sizes must not be Equal")
	}
	c := NewSet(e("1", 1), Entry{ID: "2", Kind: "different", At: 2})
	if a.Equal(c) {
		t.Fatal("same IDs but different payloads must not be Equal")
	}
}

func TestFold(t *testing.T) {
	s := NewSet(
		Entry{ID: "1", Kind: "credit", Arg: 100, At: 1},
		Entry{ID: "2", Kind: "debit", Arg: 30, At: 2},
	)
	bal := Fold(s, int64(0), func(acc int64, e Entry) int64 {
		if e.Kind == "credit" {
			return acc + e.Arg
		}
		return acc - e.Arg
	})
	if bal != 70 {
		t.Fatalf("folded balance = %d, want 70", bal)
	}
}

// randomSet builds a random set drawing IDs from a small pool so overlap
// between sets is common. The payload of an entry is a pure function of
// its ID — the system invariant uniquifiers guarantee ("the payee and
// amount for a specific check are immutable", §6.2) — so two sets can
// share IDs but never disagree about what an ID means.
func randomSet(r *rand.Rand) *Set {
	s := NewSet()
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		c := rune('a' + r.Intn(10))
		s.Add(Entry{ID: uniq.ID(string(c)), Kind: "k", At: sim.Time(int64(c) % 5)})
	}
	return s
}

func TestPropUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		ab := a.Copy()
		ab.Union(b)
		ba := b.Copy()
		ba.Union(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomSet(r), randomSet(r), randomSet(r)
		left := a.Copy()
		left.Union(b)
		left.Union(c)
		bc := b.Copy()
		bc.Union(c)
		right := a.Copy()
		right.Union(bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r)
		aa := a.Copy()
		aa.Union(a)
		return aa.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropFoldOrderInsensitive is the paper's §7.6 claim verbatim:
// replicas that have seen the same ops derive the same state no matter the
// order the ops arrived in.
func TestPropFoldOrderInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		entries := randomSet(r).Entries()
		a, b := NewSet(), NewSet()
		for _, e := range entries {
			a.Add(e)
		}
		perm := r.Perm(len(entries))
		for _, i := range perm {
			b.Add(entries[i])
		}
		sum := func(acc int64, e Entry) int64 { return acc*31 + int64(e.At) }
		return Fold(a, 0, sum) == Fold(b, 0, sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOrderedIndexMatchesSort feeds entries in adversarial orders and
// checks the incrementally maintained index always equals a from-scratch
// canonical sort — the invariant every checkpointed fold depends on.
func TestOrderedIndexMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSet()
		var all []Entry
		for i := 0; i < 40; i++ {
			e := Entry{
				ID:  uniq.ID(string(rune('a' + r.Intn(26)))),
				Lam: uint64(r.Intn(5)),
				At:  sim.Time(r.Intn(5)),
			}
			if s.Add(e) {
				all = append(all, e)
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Mark().Less(all[j].Mark()) })
		got := s.Entries()
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWatermarkOrder(t *testing.T) {
	var zero Watermark
	if !zero.IsZero() {
		t.Fatal("zero watermark not IsZero")
	}
	a := Entry{ID: "a", Lam: 1, At: 2}
	if !zero.Before(a) {
		t.Fatal("genesis watermark must sort before every real entry")
	}
	if a.Mark().Before(a) {
		t.Fatal("an entry is not after its own mark")
	}
	b := Entry{ID: "b", Lam: 1, At: 2} // same (Lam, At), later ID
	if !a.Mark().Before(b) || b.Mark().Before(a) {
		t.Fatal("ID tie-break wrong")
	}
	c := Entry{ID: "0", Lam: 2} // higher Lamport outranks earlier At/ID
	if !b.Mark().Before(c) {
		t.Fatal("Lamport must dominate the order")
	}
}

func TestEntriesAfter(t *testing.T) {
	s := NewSet(
		Entry{ID: "a", Lam: 1},
		Entry{ID: "b", Lam: 2},
		Entry{ID: "c", Lam: 3},
	)
	if got := s.EntriesAfter(Watermark{}); len(got) != 3 {
		t.Fatalf("genesis watermark returned %d entries, want 3", len(got))
	}
	got := s.EntriesAfter(Entry{ID: "a", Lam: 1}.Mark())
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "c" {
		t.Fatalf("EntriesAfter(a) = %+v", got)
	}
	if got := s.EntriesAfter(Entry{ID: "c", Lam: 3}.Mark()); got != nil {
		t.Fatalf("EntriesAfter(last) = %+v, want nil", got)
	}
	// A watermark between positions (no entry carries it) still splits
	// correctly.
	got = s.EntriesAfter(Watermark{Lam: 2, At: 0, ID: "zzz"})
	if len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("EntriesAfter(between) = %+v", got)
	}
}

// TestEntriesAfterSeesLateInsertions pins the contract the fold cache in
// core relies on: an entry that sorts behind a watermark does NOT show up
// in EntriesAfter(watermark) — the consumer must detect it via
// Watermark.Before at Add time and rewind.
func TestEntriesAfterSeesLateInsertions(t *testing.T) {
	s := NewSet(Entry{ID: "b", Lam: 5})
	w := Entry{ID: "b", Lam: 5}.Mark()
	late := Entry{ID: "a", Lam: 1}
	s.Add(late)
	if w.Before(late) {
		t.Fatal("late entry should sort behind the watermark")
	}
	if got := s.EntriesAfter(w); len(got) != 0 {
		t.Fatalf("late insertion leaked into EntriesAfter: %+v", got)
	}
	if es := s.Entries(); es[0].ID != "a" || es[1].ID != "b" {
		t.Fatalf("full order wrong after late insert: %+v", es)
	}
}

func TestEntriesReturnsCopy(t *testing.T) {
	s := NewSet(e("a", 1), e("b", 2))
	got := s.Entries()
	got[0].Kind = "mutated"
	if fresh := s.Entries(); fresh[0].Kind != "op" {
		t.Fatal("Entries exposed internal storage")
	}
}

func TestMaxLam(t *testing.T) {
	s := NewSet()
	if s.MaxLam() != 0 {
		t.Fatal("empty set MaxLam != 0")
	}
	s.Add(Entry{ID: "a", Lam: 3})
	s.Add(Entry{ID: "b", Lam: 7})
	s.Add(Entry{ID: "c", Lam: 5})
	if s.MaxLam() != 7 {
		t.Fatalf("MaxLam = %d", s.MaxLam())
	}
}

// TestEntriesAfterWatermarkEdges pins the three boundary behaviours the
// fold checkpoint leans on: the genesis watermark yields everything, the
// watermark of the newest entry yields nothing, and a gossip insert that
// ties the watermark on (Lam, At) is classified purely by the ID
// tie-break — behind the watermark when its ID sorts lower, beyond it
// when higher.
func TestEntriesAfterWatermarkEdges(t *testing.T) {
	s := NewSet(
		Entry{ID: "m", Lam: 4, At: 9},
		Entry{ID: "t", Lam: 7, At: 2},
	)
	// Genesis: every entry, even before any fold has happened.
	if got := s.EntriesAfter(Watermark{}); len(got) != 2 {
		t.Fatalf("genesis EntriesAfter = %d entries, want 2", len(got))
	}
	// At the exact watermark entry: the entry itself is excluded — it is
	// already folded — and only strictly later entries remain.
	w := Entry{ID: "m", Lam: 4, At: 9}.Mark()
	if got := s.EntriesAfter(w); len(got) != 1 || got[0].ID != "t" {
		t.Fatalf("EntriesAfter(exact mark) = %+v, want just t", got)
	}
	if got := s.EntriesAfter(Entry{ID: "t", Lam: 7, At: 2}.Mark()); got != nil {
		t.Fatalf("EntriesAfter(newest mark) = %+v, want nil", got)
	}

	// Two inserts tie the watermark on (Lam, At) exactly; only the ID
	// decides which side of the fold they land on.
	behind := Entry{ID: "a", Lam: 4, At: 9} // "a" < "m"
	beyond := Entry{ID: "z", Lam: 4, At: 9} // "z" > "m"
	s.Add(behind)
	s.Add(beyond)
	if w.Before(behind) {
		t.Fatal("lower-ID tie must sort behind the watermark (consumer rewinds)")
	}
	if !w.Before(beyond) {
		t.Fatal("higher-ID tie must sort beyond the watermark (incremental fold)")
	}
	got := s.EntriesAfter(w)
	if len(got) != 2 || got[0].ID != "z" || got[1].ID != "t" {
		t.Fatalf("EntriesAfter after tied inserts = %+v, want [z t]", got)
	}
	// And the full canonical order interleaves the tie by ID.
	es := s.Entries()
	want := []uniq.ID{"a", "m", "z", "t"}
	for i, id := range want {
		if es[i].ID != id {
			t.Fatalf("canonical order = %v, want %v", es, want)
		}
	}
}

func TestJournalAppendSinceLen(t *testing.T) {
	var j Journal
	if j.Len() != 0 || j.Retained() != 0 || j.Base() != 0 {
		t.Fatal("zero journal not empty")
	}
	if got := j.Since(0); got != nil {
		t.Fatalf("Since on empty journal = %+v", got)
	}
	for i := 0; i < 5; i++ {
		j.Append(e(string(rune('a'+i)), int64(i)))
	}
	if j.Len() != 5 || j.Retained() != 5 {
		t.Fatalf("Len/Retained = %d/%d, want 5/5", j.Len(), j.Retained())
	}
	got := j.Since(2)
	if len(got) != 3 || got[0].ID != "c" || got[2].ID != "e" {
		t.Fatalf("Since(2) = %+v", got)
	}
	// Since returns a copy, not a window into the journal.
	got[0].Kind = "mutated"
	if j.Since(2)[0].Kind != "op" {
		t.Fatal("Since exposed internal storage")
	}
}

func TestJournalTruncate(t *testing.T) {
	var j Journal
	for i := 0; i < 6; i++ {
		j.Append(e(string(rune('a'+i)), int64(i)))
	}
	j.TruncateTo(4)
	if j.Base() != 4 || j.Retained() != 2 || j.Len() != 6 {
		t.Fatalf("after TruncateTo(4): base=%d retained=%d len=%d", j.Base(), j.Retained(), j.Len())
	}
	if got := j.Since(4); len(got) != 2 || got[0].ID != "e" {
		t.Fatalf("Since(4) after truncation = %+v", got)
	}
	// Absolute positions keep counting across the truncation.
	j.Append(e("g", 6))
	if j.Len() != 7 || j.Since(6)[0].ID != "g" {
		t.Fatalf("append after truncation broke positions: len=%d", j.Len())
	}
	// Truncating backwards or to the current base is a no-op.
	j.TruncateTo(2)
	j.TruncateTo(4)
	if j.Base() != 4 || j.Retained() != 3 {
		t.Fatalf("backwards truncation moved the base: base=%d retained=%d", j.Base(), j.Retained())
	}
	// Truncating past the end clamps and empties the journal.
	j.TruncateTo(100)
	if j.Base() != 7 || j.Retained() != 0 || j.Len() != 7 {
		t.Fatalf("clamped truncation wrong: base=%d retained=%d len=%d", j.Base(), j.Retained(), j.Len())
	}
}

func TestJournalSinceTruncatedPanics(t *testing.T) {
	var j Journal
	for i := 0; i < 4; i++ {
		j.Append(e(string(rune('a'+i)), int64(i)))
	}
	j.TruncateTo(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Since inside the truncated prefix must panic, not serve a short suffix")
		}
	}()
	j.Since(1)
}

func TestCanonicalOrderLamportFirst(t *testing.T) {
	// Lamport order outranks wall time and ID: a causally later op with
	// an "earlier" ID still folds last.
	s := NewSet(
		Entry{ID: "z-first", Lam: 1, At: 10},
		Entry{ID: "a-second", Lam: 2, At: 5}, // earlier wall time, later cause
	)
	es := s.Entries()
	if es[0].ID != "z-first" || es[1].ID != "a-second" {
		t.Fatalf("order = %v", []uniq.ID{es[0].ID, es[1].ID})
	}
}
