// Package uniq implements uniquifiers — the unique request identifiers the
// paper leans on throughout (§2.1, §5.4, §7.5).
//
// "The unique identifier of the work (the 'uniquifier') has two very
// important roles: it provides the key for partitioning the work in a
// scalable system, and it allows the system to recognize multiple
// executions of the same request" (§5.4). This package provides the two
// generation strategies the paper names — an ID assigned at ingress, and
// the "MD5 hash of the entire incoming request" trick (§2.1) — plus the
// dedup filter that turns at-least-once delivery into exactly-once
// business effect.
package uniq

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// ID is a uniquifier. IDs compare equal exactly when they identify the
// same logical request.
type ID string

// Gen assigns sequential ingress IDs scoped to one node, of the form
// "node-000042". The node prefix keeps IDs unique across replicas without
// coordination, exactly as the paper prescribes: the ID is "assigned at
// the ingress to the system (i.e. whichever replica first handles the
// work)". Gens are safe for concurrent use.
type Gen struct {
	node string
	seq  uint64
}

// NewGen returns a generator scoped to node.
func NewGen(node string) *Gen { return &Gen{node: node} }

// Next returns a fresh ID. The format is exactly fmt.Sprintf("%s-%06d",
// node, seq), built by hand because Next sits on the ingest hot path:
// one allocation per ID (the Builder's buffer, handed off without a
// copy) instead of Sprintf's three.
func (g *Gen) Next() ID {
	n := atomic.AddUint64(&g.seq, 1)
	var tmp [20]byte
	digits := strconv.AppendUint(tmp[:0], n, 10)
	var b strings.Builder
	b.Grow(len(g.node) + 1 + max(6, len(digits)))
	b.WriteString(g.node)
	b.WriteByte('-')
	for z := 6 - len(digits); z > 0; z-- {
		b.WriteByte('0')
	}
	b.Write(digits)
	return ID(b.String())
}

// Count reports how many IDs the generator has issued.
func (g *Gen) Count() uint64 { return atomic.LoadUint64(&g.seq) }

// ContentID derives an ID from the request body itself — the MD5 trick of
// §2.1. Retries of a byte-identical request map to the same ID, making the
// uniquifier "functionally dependent only on the request as seen by the
// server" (§5.4 footnote), with no client cooperation needed.
func ContentID(request []byte) ID {
	sum := md5.Sum(request)
	return ID(hex.EncodeToString(sum[:]))
}

// CheckNumber builds the banking uniquifier of §6.2: bank-id +
// account-number + check-number "provide a unique identifier" that
// predates computers.
func CheckNumber(bank, account string, number int) ID {
	return ID(fmt.Sprintf("%s/%s/chk-%06d", bank, account, number))
}

// Dedup is a set of already-seen IDs: the mechanism that lets a replica
// "detect that it has already seen that operation and, hence, not do the
// work twice" (§5.4). The zero value is not usable; construct with
// NewDedup.
type Dedup struct {
	seen map[ID]struct{}
}

// NewDedup returns an empty filter.
func NewDedup() *Dedup { return &Dedup{seen: make(map[ID]struct{})} }

// Seen reports whether id was already recorded.
func (d *Dedup) Seen(id ID) bool {
	_, ok := d.seen[id]
	return ok
}

// Record marks id as seen. It reports true if the id was new (the caller
// should perform the work) and false on a duplicate (the caller should
// suppress it).
func (d *Dedup) Record(id ID) bool {
	if _, ok := d.seen[id]; ok {
		return false
	}
	d.seen[id] = struct{}{}
	return true
}

// Len reports how many distinct IDs have been recorded.
func (d *Dedup) Len() int { return len(d.seen) }
