package uniq

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestGenSequentialAndScoped(t *testing.T) {
	g := NewGen("n1")
	a, b := g.Next(), g.Next()
	if a == b {
		t.Fatal("generator repeated an ID")
	}
	if a != "n1-000001" || b != "n1-000002" {
		t.Fatalf("unexpected IDs %q, %q", a, b)
	}
	if g.Count() != 2 {
		t.Fatalf("Count = %d", g.Count())
	}
}

func TestGenDifferentNodesNeverCollide(t *testing.T) {
	g1, g2 := NewGen("a"), NewGen("b")
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		for _, id := range []ID{g1.Next(), g2.Next()} {
			if seen[id] {
				t.Fatalf("collision on %q", id)
			}
			seen[id] = true
		}
	}
}

func TestContentIDStableOnRetry(t *testing.T) {
	req := []byte(`{"op":"buy","book":"Harry Potter"}`)
	if ContentID(req) != ContentID(req) {
		t.Fatal("identical requests produced different content IDs")
	}
}

func TestContentIDDistinguishesRequests(t *testing.T) {
	if ContentID([]byte("a")) == ContentID([]byte("b")) {
		t.Fatal("different requests collided")
	}
}

func TestContentIDProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		same := string(a) == string(b)
		return (ContentID(a) == ContentID(b)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckNumber(t *testing.T) {
	id := CheckNumber("chase", "acct-9", 101)
	if id != "chase/acct-9/chk-000101" {
		t.Fatalf("CheckNumber = %q", id)
	}
	if CheckNumber("chase", "acct-9", 101) != id {
		t.Fatal("check numbers must be deterministic")
	}
	if CheckNumber("chase", "acct-9", 102) == id {
		t.Fatal("different check numbers collided")
	}
}

func TestDedupSuppressesDuplicates(t *testing.T) {
	d := NewDedup()
	if d.Seen("x") {
		t.Fatal("fresh filter claims to have seen x")
	}
	if !d.Record("x") {
		t.Fatal("first Record must return true")
	}
	if d.Record("x") {
		t.Fatal("duplicate Record must return false")
	}
	if !d.Seen("x") {
		t.Fatal("Seen after Record must be true")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDedupIndependentIDs(t *testing.T) {
	d := NewDedup()
	d.Record("x")
	if !d.Record("y") {
		t.Fatal("unseen ID suppressed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestGenNextMatchesSprintf(t *testing.T) {
	g := NewGen("s3/r1")
	for i := 1; i <= 2000; i++ {
		got := g.Next()
		want := ID(fmt.Sprintf("%s-%06d", "s3/r1", i))
		if got != want {
			t.Fatalf("Next() #%d = %q, want %q", i, got, want)
		}
	}
	// Past six digits the width grows exactly as %06d does.
	g2 := &Gen{node: "n", seq: 999_998}
	for _, want := range []ID{"n-999999", "n-1000000", "n-1000001"} {
		if got := g2.Next(); got != want {
			t.Fatalf("Next() = %q, want %q", got, want)
		}
	}
}
