// Package vclock implements vector clocks, the causality-tracking
// mechanism the Dynamo store (§6.1 of the paper) uses to detect whether
// two versions of a blob are ordered or concurrent siblings.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Ordering is the result of comparing two vector clocks.
type Ordering int

// The four possible causal relations between two clocks.
const (
	Equal      Ordering = iota // identical histories
	Before                     // receiver is an ancestor of the argument
	After                      // receiver descends from the argument
	Concurrent                 // neither descends: siblings
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// VC is a vector clock: a map from actor ID to that actor's event count.
// The zero value (nil) is a valid empty clock.
type VC map[string]uint64

// New returns an empty clock.
func New() VC { return VC{} }

// Copy returns an independent copy of the clock.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	for k, n := range v {
		c[k] = n
	}
	return c
}

// Tick increments actor's entry in place and returns the clock. A nil
// clock cannot be ticked in place; use New first.
func (v VC) Tick(actor string) VC {
	v[actor]++
	return v
}

// Get returns actor's counter (0 when absent).
func (v VC) Get(actor string) uint64 { return v[actor] }

// Merge returns a new clock holding the pointwise maximum of v and o —
// the least clock that descends from both.
func (v VC) Merge(o VC) VC {
	m := v.Copy()
	for k, n := range o {
		if n > m[k] {
			m[k] = n
		}
	}
	return m
}

// Compare classifies the causal relation of v to o.
func (v VC) Compare(o VC) Ordering {
	vLess, oLess := false, false // any coordinate strictly smaller?
	for k, n := range v {
		if on := o[k]; n < on {
			vLess = true
		} else if n > on {
			oLess = true
		}
	}
	for k, on := range o {
		if n := v[k]; n < on {
			vLess = true
		} else if n > on {
			oLess = true
		}
	}
	switch {
	case !vLess && !oLess:
		return Equal
	case vLess && !oLess:
		return Before
	case !vLess && oLess:
		return After
	default:
		return Concurrent
	}
}

// Descends reports whether v has seen everything o has (v >= o pointwise).
// Every clock descends from the empty clock and from itself.
func (v VC) Descends(o VC) bool {
	ord := v.Compare(o)
	return ord == Equal || ord == After
}

// Concurrent reports whether neither clock descends from the other.
func (v VC) Concurrent(o VC) bool { return v.Compare(o) == Concurrent }

// String renders the clock deterministically, e.g. "{a:2 b:1}".
func (v VC) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}
