package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyClocksEqual(t *testing.T) {
	if New().Compare(New()) != Equal {
		t.Fatal("two empty clocks must be Equal")
	}
}

func TestTickOrders(t *testing.T) {
	a := New().Tick("a")
	if a.Compare(New()) != After {
		t.Fatal("ticked clock must be After empty")
	}
	if New().Compare(a) != Before {
		t.Fatal("empty must be Before ticked")
	}
	b := a.Copy().Tick("a")
	if b.Compare(a) != After || a.Compare(b) != Before {
		t.Fatal("second tick must strictly dominate")
	}
}

func TestConcurrent(t *testing.T) {
	a := New().Tick("a")
	b := New().Tick("b")
	if a.Compare(b) != Concurrent || b.Compare(a) != Concurrent {
		t.Fatal("disjoint ticks must be Concurrent")
	}
	if !a.Concurrent(b) {
		t.Fatal("Concurrent helper disagrees")
	}
}

func TestMergeDescendsBoth(t *testing.T) {
	a := New().Tick("a").Tick("a")
	b := New().Tick("b")
	m := a.Merge(b)
	if !m.Descends(a) || !m.Descends(b) {
		t.Fatalf("merge %v does not descend both %v and %v", m, a, b)
	}
	if m.Get("a") != 2 || m.Get("b") != 1 {
		t.Fatalf("merge = %v", m)
	}
}

func TestMergeDoesNotMutate(t *testing.T) {
	a := New().Tick("a")
	b := New().Tick("b")
	_ = a.Merge(b)
	if a.Get("b") != 0 {
		t.Fatal("Merge mutated receiver")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := New().Tick("a")
	c := a.Copy()
	c.Tick("a")
	if a.Get("a") != 1 {
		t.Fatal("Copy shares storage with original")
	}
}

func TestDescendsReflexiveAndOnEmpty(t *testing.T) {
	a := New().Tick("x").Tick("y")
	if !a.Descends(a) {
		t.Fatal("clock must descend itself")
	}
	if !a.Descends(New()) {
		t.Fatal("clock must descend empty")
	}
	if New().Descends(a) {
		t.Fatal("empty must not descend non-empty")
	}
}

func TestZeroEntriesDoNotBreakEquality(t *testing.T) {
	a := VC{"a": 1, "b": 0}
	b := VC{"a": 1}
	if a.Compare(b) != Equal {
		t.Fatalf("explicit zero entry changed ordering: %v", a.Compare(b))
	}
}

func TestString(t *testing.T) {
	v := VC{"b": 2, "a": 1}
	if v.String() != "{a:1 b:2}" {
		t.Fatalf("String() = %q", v.String())
	}
	if New().String() != "{}" {
		t.Fatalf("empty String() = %q", New().String())
	}
}

func TestOrderingString(t *testing.T) {
	if Concurrent.String() != "concurrent" || Equal.String() != "equal" ||
		Before.String() != "before" || After.String() != "after" {
		t.Fatal("Ordering.String names wrong")
	}
	if Ordering(42).String() != "Ordering(42)" {
		t.Fatal("unknown ordering formatting wrong")
	}
}

// randomVC builds a small random clock for property tests.
func randomVC(r *rand.Rand) VC {
	v := New()
	actors := []string{"a", "b", "c"}
	for _, ac := range actors {
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			v.Tick(ac)
		}
	}
	return v
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r), randomVC(r)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		default:
			return ba == Concurrent
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r), randomVC(r)
		m := a.Merge(b)
		return m.Descends(a) && m.Descends(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeCommutativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVC(r), randomVC(r)
		if a.Merge(b).Compare(b.Merge(a)) != Equal {
			return false
		}
		return a.Merge(a).Compare(a) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVC(r), randomVC(r), randomVC(r)
		return a.Merge(b).Merge(c).Compare(a.Merge(b.Merge(c))) == Equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
