package policy

import (
	"testing"

	"repro/internal/oplog"
)

func op(kind string, arg int64) oplog.Entry {
	return oplog.Entry{ID: "x", Kind: kind, Arg: arg}
}

func TestAlwaysPolicies(t *testing.T) {
	if AlwaysAsync().Decide(op("anything", 1<<40)) != Async {
		t.Fatal("AlwaysAsync decided sync")
	}
	if AlwaysSync().Decide(op("anything", 0)) != Sync {
		t.Fatal("AlwaysSync decided async")
	}
}

func TestThresholdTenThousandDollarCheck(t *testing.T) {
	pol := Threshold(10_000_00)
	if pol.Decide(op("clear-check", 9_999_99)) != Async {
		t.Fatal("check below $10,000 must clear locally")
	}
	if pol.Decide(op("clear-check", 10_000_00)) != Sync {
		t.Fatal("check at $10,000 must coordinate")
	}
	if pol.Decide(op("clear-check", 250_000_00)) != Sync {
		t.Fatal("big check must coordinate")
	}
}

func TestByKindGutenbergVsHarryPotter(t *testing.T) {
	pol := ByKind("reserve-gutenberg-bible")
	if pol.Decide(op("reserve-gutenberg-bible", 1)) != Sync {
		t.Fatal("the one and only Gutenberg bible requires strict coordination")
	}
	if pol.Decide(op("ship-harry-potter", 1)) != Async {
		t.Fatal("Harry Potter ships on a local opinion of the inventory")
	}
}

func TestDecisionString(t *testing.T) {
	if Async.String() != "async" || Sync.String() != "sync" {
		t.Fatal("decision names wrong")
	}
}
