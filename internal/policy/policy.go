// Package policy implements the paper's §5.5 "stomach for risk" knob: the
// per-operation choice between asynchronous guessing and synchronous
// coordination.
//
// "Locally clear a check if the face value is less than $10,000. If it
// exceeds $10,000, double check with all the replicas to make sure it
// clears." A Policy inspects each operation and decides which path it
// takes; §5.8's summary — synchronous checkpoints OR apologies — becomes a
// dial rather than a single system-wide setting.
package policy

import "repro/internal/oplog"

// Decision is the risk verdict for one operation.
type Decision int

// The two paths of §5.8.
const (
	// Async accepts the operation on local knowledge: low latency, a
	// guess that may later need an apology.
	Async Decision = iota
	// Sync coordinates with every replica before accepting: high
	// latency, no apology risk for this operation.
	Sync
)

// String names the decision.
func (d Decision) String() string {
	if d == Sync {
		return "sync"
	}
	return "async"
}

// Policy decides the risk path for each operation.
type Policy interface {
	Decide(op oplog.Entry) Decision
}

// Func adapts a plain function to a Policy.
type Func func(oplog.Entry) Decision

// Decide implements Policy.
func (f Func) Decide(op oplog.Entry) Decision { return f(op) }

// AlwaysAsync guesses on everything — maximum availability, maximum
// apology exposure.
func AlwaysAsync() Policy { return Func(func(oplog.Entry) Decision { return Async }) }

// AlwaysSync coordinates everything — the classic consistency choice.
func AlwaysSync() Policy { return Func(func(oplog.Entry) Decision { return Sync }) }

// Threshold coordinates operations whose Arg (e.g. cents at stake) is at
// or above limit and guesses below it — the $10,000-check rule verbatim.
func Threshold(limit int64) Policy {
	return Func(func(op oplog.Entry) Decision {
		if op.Arg >= limit {
			return Sync
		}
		return Async
	})
}

// ByKind routes listed operation kinds to Sync and everything else to
// Async — "the one and only one Gutenberg bible requires strict
// coordination" while Harry Potter ships on a local guess.
func ByKind(syncKinds ...string) Policy {
	set := make(map[string]bool, len(syncKinds))
	for _, k := range syncKinds {
		set[k] = true
	}
	return Func(func(op oplog.Entry) Decision {
		if set[op.Kind] {
			return Sync
		}
		return Async
	})
}
