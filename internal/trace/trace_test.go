package trace

import (
	"fmt"
	"testing"
)

// fixed clock so assertions on lags are exact.
func clockAt(ns *int64) func() int64 { return func() int64 { return *ns } }

func TestLifecycleAndLags(t *testing.T) {
	var now int64
	tr := New(Options{SampleEvery: 1, Replicas: 2, Now: clockAt(&now)})

	tr.Submitted("op-1", "acct-1", "r0", 100)
	tr.Admitted("op-1", "acct-1", "r0", 150)
	tr.Folded("op-1", "r0", 150)
	tr.Durable("op-1", "r0", 400)
	tr.GossipAcked("op-1", "r0", "r1", 900)

	events, ok := tr.OpTimeline("op-1")
	if !ok {
		t.Fatal("op-1 not held")
	}
	var kinds []string
	for _, e := range events {
		kinds = append(kinds, e.Kind)
	}
	want := []string{"submitted", "admitted", "folded", "fsynced", "gossiped", "truth"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("timeline kinds = %v, want %v", kinds, want)
	}

	durable, truth, apology, gossip := tr.LagHists()
	if durable.Count() != 1 || durable.Sum() != 300 {
		t.Errorf("guess-to-durable: count=%d sum=%d, want 1 sample of 300ns", durable.Count(), durable.Sum())
	}
	if truth.Count() != 1 || truth.Sum() != 800 {
		t.Errorf("guess-to-truth: count=%d sum=%d, want 1 sample of 800ns", truth.Count(), truth.Sum())
	}
	if gossip.Count() != 1 || gossip.Sum() != 800 {
		t.Errorf("gossip propagation: count=%d sum=%d, want 1 sample of 800ns", gossip.Count(), gossip.Sum())
	}

	// An apology on the key attaches to the last sampled guess; the
	// lifetime is measured from that guess's submit, like the other lags.
	tr.Apologized("acct-1", "apo-9", "r1", 2150)
	if apology.Count() != 1 || apology.Sum() != 2050 {
		t.Errorf("guess-to-apology: count=%d sum=%d, want 1 sample of 2050ns (submit at 100)", apology.Count(), apology.Sum())
	}
	events, _ = tr.OpTimeline("op-1")
	if last := events[len(events)-1]; last.Kind != "apologized" || last.Note != "apo-9" {
		t.Errorf("apology not on timeline: %+v", last)
	}
	refs := tr.Apologies(10)
	if len(refs) != 1 || refs[0].Op != "op-1" || refs[0].Key != "acct-1" {
		t.Errorf("apology refs = %+v", refs)
	}
}

func TestTruthNeedsAllReplicas(t *testing.T) {
	tr := New(Options{SampleEvery: 1, Replicas: 3})
	tr.Submitted("op-1", "k", "r0", 10)
	tr.Admitted("op-1", "k", "r0", 10)
	tr.Absorbed("op-1", "r1", 20)
	_, truth, _, _ := tr.LagHists()
	if truth.Count() != 0 {
		t.Fatalf("truth recorded with 2 of 3 replicas")
	}
	tr.Absorbed("op-1", "r2", 30)
	if truth.Count() != 1 {
		t.Fatalf("truth not recorded once all 3 replicas hold the op")
	}
}

func TestSamplingDeterministicAcrossTracers(t *testing.T) {
	a := New(Options{SampleEvery: 8})
	b := New(Options{SampleEvery: 8})
	sampled := 0
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("op-%d", i)
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("tracers disagree on %s", id)
		}
		if a.Sampled(id) {
			sampled++
		}
	}
	// Hash sampling is approximate; 1-in-8 over 4096 IDs should land
	// within a loose factor of the target.
	if sampled < 256 || sampled > 1024 {
		t.Errorf("sampled %d of 4096 at 1-in-8 — hash badly skewed", sampled)
	}
}

// TestBoundedMemory drives far more sampled ops, keys, and apologies
// through a tiny tracer than it is configured to hold and asserts every
// internal structure stays at its cap.
func TestBoundedMemory(t *testing.T) {
	const maxOps = 32
	tr := New(Options{SampleEvery: 1, RingSize: 64, MaxOps: maxOps, Replicas: 1})
	for i := 0; i < 50*maxOps; i++ {
		op := fmt.Sprintf("op-%d", i)
		key := fmt.Sprintf("k-%d", i)
		tr.Submitted(op, key, "r0", int64(i))
		tr.Admitted(op, key, "r0", int64(i))
		tr.Durable(op, "r0", int64(i)+5)
		// Many events on one op must not grow its timeline unboundedly.
		for j := 0; j < 2*maxTimeline; j++ {
			tr.Folded(op, "r0", int64(i)+int64(j))
		}
		tr.Apologized(key, fmt.Sprintf("apo-%d", i), "r0", int64(i)+9)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.ops) > maxOps {
		t.Errorf("op states grew to %d, cap %d", len(tr.ops), maxOps)
	}
	if len(tr.lastGuess) > maxOps {
		t.Errorf("lastGuess grew to %d, cap %d", len(tr.lastGuess), maxOps)
	}
	if len(tr.ring) != 64 {
		t.Errorf("ring resized to %d", len(tr.ring))
	}
	if len(tr.apologies) > maxApologyRefs {
		t.Errorf("apology refs grew to %d, cap %d", len(tr.apologies), maxApologyRefs)
	}
	for op, st := range tr.ops {
		if len(st.events) > maxTimeline {
			t.Errorf("timeline for %s grew to %d, cap %d", op, len(st.events), maxTimeline)
		}
	}
}

// TestDisabledTracerZeroAlloc pins the disabled-path contract the
// engine relies on: a nil tracer behind the call-site gate costs zero
// allocations, and the lock-free Sampled check allocates nothing
// either.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer // tracing off: exactly what core's cfg.tracer holds
	op, key := "op-123456", "acct-7"
	if allocs := testing.AllocsPerRun(1000, func() {
		// The call-site pattern used throughout core: one nil check.
		if tr != nil {
			tr.Submitted(op, key, "r0", 1)
			tr.Admitted(op, key, "r0", 2)
			tr.Durable(op, "r0", 3)
		}
		// These two are documented nil-receiver-safe.
		tr.Annotate("never recorded")
		tr.Apologized(key, "a", "r0", 4)
	}); allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per op", allocs)
	}

	live := New(Options{SampleEvery: 1 << 20}) // sample ~nothing
	if allocs := testing.AllocsPerRun(1000, func() {
		if !live.Sampled(op) {
			return
		}
		t.Fatal("op unexpectedly sampled")
	}); allocs != 0 {
		t.Fatalf("Sampled allocates %v per call", allocs)
	}
}

func TestRecentAndAnnotations(t *testing.T) {
	tr := New(Options{SampleEvery: 1, RingSize: 16, Replicas: 1})
	tr.Annotate("phase one")
	tr.Submitted("op-1", "k", "r0", 5)
	tr.Annotate("phase two")
	events := tr.Recent(100)
	if len(events) != 3 {
		t.Fatalf("recent = %d events, want 3", len(events))
	}
	if events[0].Note != "phase one" || events[2].Note != "phase two" {
		t.Errorf("annotation order wrong: %+v", events)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Errorf("seq not increasing: %+v", events)
		}
	}
	// Overflow the ring; Recent returns only the newest entries.
	for i := 0; i < 100; i++ {
		tr.Annotate(fmt.Sprintf("a%d", i))
	}
	events = tr.Recent(1000)
	if len(events) != 16 {
		t.Fatalf("recent after overflow = %d, want ring size 16", len(events))
	}
	if events[len(events)-1].Note != "a99" {
		t.Errorf("newest event = %+v, want a99", events[len(events)-1])
	}
}
