// Package trace records sampled op-lifecycle events — submitted →
// admitted/declined → journal-fsynced → gossiped-to-peer-i → folded →
// apologized — into a bounded in-memory ring, and derives the paper's
// headline operator metrics from them:
//
//   - guess-to-durable: submit until the journal fsync that covers the
//     op returns (how long a guess stays volatile);
//   - guess-to-truth: submit until every replica of the op's shard is
//     known to hold it (how long until the guess is globally known);
//   - guess-to-apology: a guess's lifetime until a rule violation on
//     its key surfaces an apology (how long a wrong guess lived).
//
// Tracing is sampled — 1-in-N by a hash of the op ID, so every replica
// and every process picks the same ops — with apologies always
// recorded. A nil *Tracer is the disabled state: every engine hook is
// gated on a nil check, so the hot path pays one predictable branch and
// zero allocations when tracing is off.
//
// Memory is bounded everywhere: the event ring wraps, per-op timelines
// are capped, and the op-state and per-key guess maps evict their
// oldest entry once full. A Tracer never grows past its configured
// footprint no matter how long the process runs.
package trace

import (
	"math/bits"
	"sync"
	"time"

	"repro/internal/stats"
)

// Kind identifies one lifecycle stage (or an out-of-band annotation).
type Kind uint8

const (
	KindSubmitted  Kind = iota + 1 // op entered the cluster at a replica
	KindAdmitted                   // op accepted into the replica's op set (the guess)
	KindDeclined                   // op rejected at ingress (policy/admission)
	KindFsynced                    // a journal fsync covering the op returned
	KindGossiped                   // a gossip push holding the op was acked by a peer
	KindAbsorbed                   // op absorbed from gossip at a replica
	KindFolded                     // op folded into the replica's published state
	KindTruth                      // every replica of the shard is known to hold the op
	KindApologized                 // a rule violation on the op's key raised an apology
	KindAnnotation                 // scenario/operator marker, not tied to an op
)

var kindNames = [...]string{
	KindSubmitted:  "submitted",
	KindAdmitted:   "admitted",
	KindDeclined:   "declined",
	KindFsynced:    "fsynced",
	KindGossiped:   "gossiped",
	KindAbsorbed:   "absorbed",
	KindFolded:     "folded",
	KindTruth:      "truth",
	KindApologized: "apologized",
	KindAnnotation: "annotation",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded lifecycle step. Events are fixed-size values —
// recording one copies a struct into a preallocated ring slot.
type Event struct {
	Seq     uint64 `json:"seq"`
	AtNs    int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Op      string `json:"op,omitempty"`
	Key     string `json:"key,omitempty"`
	Replica string `json:"replica,omitempty"`
	Peer    string `json:"peer,omitempty"` // acking peer for gossiped events
	Note    string `json:"note,omitempty"`
}

// ApologyRef points at an apologized op whose full timeline the tracer
// still holds — the dashboard's entry into /v1/trace?op=....
type ApologyRef struct {
	Op  string `json:"op"`
	Key string `json:"key"`
	At  int64  `json:"at_ns"`
}

// opState is the tracer's view of one sampled in-flight op.
type opState struct {
	key    string
	submit int64
	held   uint64 // bitmask of replica ids known to hold the op
	truth  bool
	events []Event
}

type guessRef struct {
	op string
	at int64
}

// Options configures a Tracer. Zero values pick the defaults noted on
// each field.
type Options struct {
	SampleEvery int          // trace 1-in-N ops by ID hash; <=0 → 64, 1 → every op
	RingSize    int          // recent-event ring slots (rounded up to a power of two); <=0 → 4096
	MaxOps      int          // in-flight sampled op states kept; <=0 → 4096
	Replicas    int          // replicas per shard — the guess-to-truth popcount target; <=0 → 1
	Now         func() int64 // clock for events recorded without a caller timestamp
}

const maxTimeline = 48 // events kept per sampled op
const maxApologyRefs = 256

// Tracer records sampled lifecycle events. All methods are safe for
// concurrent use; the single mutex is uncontended in practice because
// only sampled ops (plus apologies and annotations) ever reach it.
type Tracer struct {
	sample   uint64
	replicas int

	mu        sync.Mutex
	clock     func() int64
	seq       uint64
	ring      []Event
	mask      uint64
	ops       map[string]*opState
	opQueue   []string // FIFO eviction order for ops
	lastGuess map[string]guessRef
	keyQueue  []string // FIFO eviction order for lastGuess
	maxOps    int
	apologies []ApologyRef
	apoHead   int

	durable stats.LatHist // guess-to-durable
	truth   stats.LatHist // guess-to-truth
	apology stats.LatHist // guess-to-apology
	gossip  stats.LatHist // submit → peer ack, per acked peer
}

// New builds a Tracer. The zero Options value gives 1-in-64 sampling, a
// 4096-slot ring, 4096 op states, and a wall clock.
func New(o Options) *Tracer {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 64
	}
	if o.RingSize <= 0 {
		o.RingSize = 4096
	}
	size := 1
	for size < o.RingSize {
		size <<= 1
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 4096
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Now == nil {
		start := time.Now()
		o.Now = func() int64 { return int64(time.Since(start)) }
	}
	return &Tracer{
		sample:    uint64(o.SampleEvery),
		replicas:  o.Replicas,
		clock:     o.Now,
		ring:      make([]Event, size),
		mask:      uint64(size - 1),
		ops:       make(map[string]*opState, o.MaxOps),
		lastGuess: make(map[string]guessRef, o.MaxOps),
		maxOps:    o.MaxOps,
	}
}

// SetClock replaces the timestamp source — the cluster installs its
// transport clock here so annotations share the op events' time axis.
func (t *Tracer) SetClock(now func() int64) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.clock = now
	t.mu.Unlock()
}

// SampleEvery reports the configured 1-in-N sampling rate.
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sample)
}

// Sampled reports whether ops with this ID are traced. The decision is
// a hash of the ID, so every replica — in this process or another —
// samples the same ops. It takes no lock and allocates nothing.
func (t *Tracer) Sampled(op string) bool {
	if t.sample <= 1 {
		return true
	}
	// FNV-1a over the ID bytes, inlined to stay allocation-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(op); i++ {
		h ^= uint64(op[i])
		h *= 1099511628211
	}
	return h%t.sample == 0
}

// record appends ev to the ring and, when st is non-nil, to the op's
// bounded timeline. Caller holds t.mu.
func (t *Tracer) record(st *opState, ev Event) {
	t.seq++
	ev.Seq = t.seq
	t.ring[t.seq&t.mask] = ev
	if st != nil && len(st.events) < maxTimeline {
		st.events = append(st.events, ev)
	}
}

// state returns the op's state, creating (and evicting the oldest, once
// full) as needed. Caller holds t.mu.
func (t *Tracer) state(op, key string, at int64) *opState {
	if st, ok := t.ops[op]; ok {
		if st.key == "" {
			st.key = key
		}
		return st
	}
	if len(t.ops) >= t.maxOps && len(t.opQueue) > 0 {
		delete(t.ops, t.opQueue[0])
		t.opQueue = t.opQueue[1:]
	}
	st := &opState{key: key, submit: at, events: make([]Event, 0, 8)}
	t.ops[op] = st
	t.opQueue = append(t.opQueue, op)
	return st
}

// bitFor assigns a stable bitmask bit to a replica id. Ops live in
// exactly one shard, so an op's held mask only ever collects that
// shard's replica bits and popcount-vs-replicas is the truth test
// regardless of which global bits those are.
func (t *Tracer) bitFor(replica string) uint64 {
	// Replica ids are distinct short strings; hash them onto 64 bits.
	// A collision between two replicas of one shard would undercount
	// holders and only delay a truth event, never fabricate one early —
	// except in the astronomically unlikely 64-bit hash collision case,
	// which we accept for a diagnostic.
	h := uint64(14695981039346656037)
	for i := 0; i < len(replica); i++ {
		h ^= uint64(replica[i])
		h *= 1099511628211
	}
	return 1 << (h & 63)
}

// Submitted records an op entering the cluster.
func (t *Tracer) Submitted(op, key, replica string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, key, at)
	st.submit = at
	t.record(st, Event{AtNs: at, Kind: kindNames[KindSubmitted], Op: op, Key: key, Replica: replica})
	t.mu.Unlock()
}

// Admitted records the guess: the op accepted into a replica's op set.
// It also becomes the key's "last guess" for apology attribution.
func (t *Tracer) Admitted(op, key, replica string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, key, at)
	st.held |= t.bitFor(replica)
	t.record(st, Event{AtNs: at, Kind: kindNames[KindAdmitted], Op: op, Key: st.key, Replica: replica})
	t.guessLocked(st.key, op, st.submit)
	t.checkTruthLocked(op, st, at)
	t.mu.Unlock()
}

func (t *Tracer) guessLocked(key, op string, at int64) {
	if key == "" {
		return
	}
	if _, ok := t.lastGuess[key]; !ok {
		if len(t.lastGuess) >= t.maxOps && len(t.keyQueue) > 0 {
			delete(t.lastGuess, t.keyQueue[0])
			t.keyQueue = t.keyQueue[1:]
		}
		t.keyQueue = append(t.keyQueue, key)
	}
	t.lastGuess[key] = guessRef{op: op, at: at}
}

// Declined records an ingress rejection.
func (t *Tracer) Declined(op, key, replica, reason string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, key, at)
	t.record(st, Event{AtNs: at, Kind: kindNames[KindDeclined], Op: op, Key: st.key, Replica: replica, Note: reason})
	t.mu.Unlock()
}

// Durable records that a journal fsync covering the op returned, and
// derives the guess-to-durable lag.
func (t *Tracer) Durable(op, replica string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, "", at)
	t.record(st, Event{AtNs: at, Kind: kindNames[KindFsynced], Op: op, Key: st.key, Replica: replica})
	if lag := at - st.submit; lag >= 0 {
		t.durable.Record(lag)
	}
	t.mu.Unlock()
}

// Folded records the op folded into a replica's published state.
func (t *Tracer) Folded(op, replica string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, "", at)
	t.record(st, Event{AtNs: at, Kind: kindNames[KindFolded], Op: op, Key: st.key, Replica: replica})
	t.mu.Unlock()
}

// Absorbed records the op arriving at a replica via gossip.
func (t *Tracer) Absorbed(op, replica string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, "", at)
	st.held |= t.bitFor(replica)
	t.record(st, Event{AtNs: at, Kind: kindNames[KindAbsorbed], Op: op, Key: st.key, Replica: replica})
	t.checkTruthLocked(op, st, at)
	t.mu.Unlock()
}

// GossipAcked records a peer's durable ack of a gossip push holding the
// op: the peer now holds it, which both feeds the gossip-propagation
// histogram and advances guess-to-truth. This is the cross-process
// observation — a daemon never sees a remote replica's absorb, but it
// does see the ack.
func (t *Tracer) GossipAcked(op, origin, peer string, at int64) {
	if !t.Sampled(op) {
		return
	}
	t.mu.Lock()
	st := t.state(op, "", at)
	st.held |= t.bitFor(origin)
	st.held |= t.bitFor(peer)
	t.record(st, Event{AtNs: at, Kind: kindNames[KindGossiped], Op: op, Key: st.key, Replica: origin, Peer: peer})
	if lag := at - st.submit; lag >= 0 {
		t.gossip.Record(lag)
	}
	t.checkTruthLocked(op, st, at)
	t.mu.Unlock()
}

// checkTruthLocked records guess-to-truth once every replica of the
// op's shard is known to hold it. Caller holds t.mu.
func (t *Tracer) checkTruthLocked(op string, st *opState, at int64) {
	if st.truth || bits.OnesCount64(st.held) < t.replicas {
		return
	}
	st.truth = true
	t.record(st, Event{AtNs: at, Kind: kindNames[KindTruth], Op: op, Key: st.key})
	if lag := at - st.submit; lag >= 0 {
		t.truth.Record(lag)
	}
}

// Apologized records a rule violation surfacing an apology on key.
// Apologies are always-on: the event enters the ring even when no
// sampled guess exists for the key; when one does, the apology is
// attached to that op's timeline and its guess-to-apology lifetime is
// derived from the guess timestamp.
func (t *Tracer) Apologized(key, apologyID, replica string, at int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	g, ok := t.lastGuess[key]
	var st *opState
	op := ""
	if ok {
		op = g.op
		st = t.ops[op]
		if lag := at - g.at; lag >= 0 {
			t.apology.Record(lag)
		}
	}
	t.record(st, Event{AtNs: at, Kind: kindNames[KindApologized], Op: op, Key: key, Replica: replica, Note: apologyID})
	if op != "" {
		ref := ApologyRef{Op: op, Key: key, At: at}
		if len(t.apologies) < maxApologyRefs {
			t.apologies = append(t.apologies, ref)
		} else {
			t.apologies[t.apoHead%maxApologyRefs] = ref
			t.apoHead++
		}
	}
	t.mu.Unlock()
}

// Annotate records an out-of-band marker — scenario phases like
// "partition opened" — on the shared event stream. Safe on a nil
// Tracer so callers need no enabled check.
func (t *Tracer) Annotate(note string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.record(nil, Event{AtNs: t.clock(), Kind: kindNames[KindAnnotation], Note: note})
	t.mu.Unlock()
}

// OpTimeline returns a copy of the op's recorded lifecycle, oldest
// first, and whether the tracer still holds it.
func (t *Tracer) OpTimeline(op string) ([]Event, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.ops[op]
	if !ok {
		return nil, false
	}
	out := make([]Event, len(st.events))
	copy(out, st.events)
	return out, true
}

// Recent returns up to max ring events, oldest first.
func (t *Tracer) Recent(max int) []Event {
	if t == nil || max <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	if n > uint64(len(t.ring)) {
		n = uint64(len(t.ring))
	}
	if n > uint64(max) {
		n = uint64(max)
	}
	out := make([]Event, 0, n)
	for i := t.seq - n + 1; i <= t.seq; i++ {
		ev := t.ring[i&t.mask]
		if ev.Kind != "" {
			out = append(out, ev)
		}
	}
	return out
}

// Apologies returns up to max recent apologized-op references, newest
// last.
func (t *Tracer) Apologies(max int) []ApologyRef {
	if t == nil || max <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ApologyRef, len(t.apologies))
	copy(out, t.apologies)
	if t.apoHead > 0 {
		// Rotate so the oldest overwritten slot comes first.
		k := t.apoHead % maxApologyRefs
		out = append(out[k:], out[:k]...)
	}
	if len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// LagHists exposes the derived lifecycle histograms: guess-to-durable,
// guess-to-truth, guess-to-apology, and gossip propagation (submit →
// each peer ack). All nil-safe for the metrics renderer.
func (t *Tracer) LagHists() (durable, truth, apology, gossip *stats.LatHist) {
	if t == nil {
		return nil, nil, nil, nil
	}
	return &t.durable, &t.truth, &t.apology, &t.gossip
}
