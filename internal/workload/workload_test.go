package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestPoissonLoopRunsAllArrivals(t *testing.T) {
	s := sim.New(1)
	var got []int
	PoissonLoop(s, time.Millisecond, 50, func(i int) { got = append(got, i) })
	s.Run()
	if len(got) != 50 {
		t.Fatalf("arrivals = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatal("arrivals out of order")
		}
	}
	if s.Now() == 0 {
		t.Fatal("arrivals all at time zero")
	}
}

func TestExponentialMeanRoughlyRight(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += Exponential(r, 10*time.Millisecond)
	}
	mean := float64(sum) / n
	if math.Abs(mean-float64(10*time.Millisecond)) > float64(time.Millisecond) {
		t.Fatalf("sample mean = %v, want ≈10ms", time.Duration(mean))
	}
}

func TestExponentialDegenerateMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if Exponential(r, 0) < time.Nanosecond {
		t.Fatal("zero mean must clamp to 1ns")
	}
}

func TestUniformKeysInRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := UniformKeys(r, "acct", 10)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		k := gen()
		if !strings.HasPrefix(k, "acct-") {
			t.Fatalf("key %q", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform over 10 keys hit %d", len(seen))
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := ZipfKeys(r, "k", 1.5, 100)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[gen()]++
	}
	if counts["k-0000"] < counts["k-0050"] {
		t.Fatal("zipf head not hotter than tail")
	}
}

func TestLogNormalCentsPositiveAndSkewed(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := LogNormalCents(r, math.Log(50_00), 1.0) // median ≈ $50
	var below, above int
	for i := 0; i < 2000; i++ {
		v := gen()
		if v < 1 {
			t.Fatal("non-positive amount")
		}
		if v < 50_00 {
			below++
		} else {
			above++
		}
	}
	// Median near $50: both sides populated.
	if below < 600 || above < 600 {
		t.Fatalf("median off: %d below, %d above", below, above)
	}
}

func TestBernoulli(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := Bernoulli(r, 0.25)
	hits := 0
	for i := 0; i < 4000; i++ {
		if gen() {
			hits++
		}
	}
	if hits < 800 || hits > 1200 {
		t.Fatalf("p=0.25 hit %d/4000", hits)
	}
}
