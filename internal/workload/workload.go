// Package workload generates the synthetic traffic the experiments feed
// their systems: Poisson arrivals on the simulator, skewed and uniform key
// choices, and lognormal money amounts for check-clearing runs.
//
// All generators draw from explicitly seeded sources so every experiment
// table is reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// PoissonLoop schedules n sequential arrivals on s with exponentially
// distributed gaps of the given mean, calling fn(i) at each. The first
// arrival happens after one gap. It returns the expected total duration
// (n × mean) for sizing run horizons.
func PoissonLoop(s *sim.Sim, mean time.Duration, n int, fn func(i int)) time.Duration {
	var schedule func(i int)
	schedule = func(i int) {
		if i >= n {
			return
		}
		s.After(Exponential(s.Rand(), mean), func() {
			fn(i)
			schedule(i + 1)
		})
	}
	schedule(0)
	return time.Duration(n) * mean
}

// Exponential draws an exponentially distributed duration with the given
// mean, clamped to at least 1ns so event time always advances.
func Exponential(r *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return time.Nanosecond
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := time.Duration(-float64(mean) * math.Log(u))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// UniformKeys returns a generator of keys "prefix-0000".."prefix-(n-1)"
// chosen uniformly.
func UniformKeys(r *rand.Rand, prefix string, n int) func() string {
	return func() string { return fmt.Sprintf("%s-%04d", prefix, r.Intn(n)) }
}

// ZipfKeys returns a generator of keys with Zipfian skew s (> 1) over n
// distinct keys — a few hot keys take most traffic, as real inventories
// and accounts do.
func ZipfKeys(r *rand.Rand, prefix string, skew float64, n int) func() string {
	z := rand.NewZipf(r, skew, 1, uint64(n-1))
	return func() string { return fmt.Sprintf("%s-%04d", prefix, z.Uint64()) }
}

// LogNormalCents returns a generator of money amounts (in cents) with a
// lognormal distribution: median ≈ exp(mu), long right tail controlled by
// sigma. Amounts are clamped to at least 1 cent.
func LogNormalCents(r *rand.Rand, mu, sigma float64) func() int64 {
	return func() int64 {
		v := math.Exp(r.NormFloat64()*sigma + mu)
		if v < 1 {
			v = 1
		}
		if v > math.MaxInt64/2 {
			v = math.MaxInt64 / 2
		}
		return int64(v)
	}
}

// Bernoulli returns a generator of true with probability p.
func Bernoulli(r *rand.Rand, p float64) func() bool {
	return func() bool { return r.Float64() < p }
}
