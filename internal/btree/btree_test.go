package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty tree Len != 0")
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree found something")
	}
	if _, ok := tr.Delete("x"); ok {
		t.Fatal("Delete on empty tree reported success")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree ok")
	}
}

func TestPutGetOverwrite(t *testing.T) {
	tr := New()
	if _, existed := tr.Put("k", "v1"); existed {
		t.Fatal("fresh Put claimed existing")
	}
	prev, existed := tr.Put("k", "v2")
	if !existed || prev != "v1" {
		t.Fatalf("overwrite returned (%q,%v)", prev, existed)
	}
	if v, _ := tr.Get("k"); v != "v2" {
		t.Fatalf("Get = %q", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", tr.Len())
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	tr := NewDegree(2) // degree 2 forces splits constantly
	const n = 1000
	for i := 0; i < n; i++ {
		tr.Put(fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(fmt.Sprintf("k%04d", i))
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(k%04d) = %q,%v", i, v, ok)
		}
	}
}

func TestDeleteEveryKeyEveryOrder(t *testing.T) {
	// Deleting in ascending, descending, and shuffled order exercises the
	// borrow-left, borrow-right, and merge paths.
	orders := map[string]func(n int) []int{
		"ascending": func(n int) []int {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			return idx
		},
		"descending": func(n int) []int {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = n - 1 - i
			}
			return idx
		},
		"shuffled": func(n int) []int { return rand.New(rand.NewSource(7)).Perm(n) },
	}
	for name, order := range orders {
		t.Run(name, func(t *testing.T) {
			tr := NewDegree(2)
			const n = 500
			for i := 0; i < n; i++ {
				tr.Put(fmt.Sprintf("k%04d", i), "v")
			}
			for _, i := range order(n) {
				key := fmt.Sprintf("k%04d", i)
				if _, ok := tr.Delete(key); !ok {
					t.Fatalf("Delete(%s) missing", key)
				}
				if _, ok := tr.Get(key); ok {
					t.Fatalf("Get(%s) found deleted key", key)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("Len = %d after deleting all", tr.Len())
			}
		})
	}
}

func TestDeleteAbsentKeyInPopulatedTree(t *testing.T) {
	tr := NewDegree(2)
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("k%03d", i*2), "v")
	}
	if _, ok := tr.Delete("k001"); ok { // odd key never inserted
		t.Fatal("deleted a key that was never inserted")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len changed to %d", tr.Len())
	}
}

func TestAscendOrder(t *testing.T) {
	tr := NewDegree(3)
	keys := []string{"m", "a", "z", "c", "q", "b"}
	for _, k := range keys {
		tr.Put(k, k)
	}
	got := tr.Keys()
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Put(fmt.Sprintf("%d", i), "v")
	}
	visits := 0
	tr.Ascend(func(k, v string) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("visited %d, want 3", visits)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		tr.Put(k, k)
	}
	var got []string
	tr.AscendRange("b", "d", func(k, v string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("AscendRange = %v, want [b c] (hi exclusive)", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := NewDegree(2)
	for i := 50; i < 150; i++ {
		tr.Put(fmt.Sprintf("k%03d", i), "v")
	}
	if k, _, _ := tr.Min(); k != "k050" {
		t.Fatalf("Min = %q", k)
	}
	if k, _, _ := tr.Max(); k != "k149" {
		t.Fatalf("Max = %q", k)
	}
}

func TestClone(t *testing.T) {
	tr := New()
	tr.Put("a", "1")
	c := tr.Clone()
	c.Put("b", "2")
	tr.Put("a", "changed")
	if v, _ := c.Get("a"); v != "1" {
		t.Fatal("clone shares storage with original")
	}
	if _, ok := tr.Get("b"); ok {
		t.Fatal("original saw clone's insert")
	}
}

func TestNewDegreePanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDegree(1) did not panic")
		}
	}()
	NewDegree(1)
}

// TestPropMatchesReferenceMap drives random Put/Delete/Get traffic against
// both the tree and a plain map, checking full agreement including
// iteration order.
func TestPropMatchesReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := NewDegree(2)
		ref := map[string]string{}
		for step := 0; step < 300; step++ {
			k := fmt.Sprintf("k%02d", r.Intn(40))
			switch r.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", step)
				tr.Put(k, v)
				ref[k] = v
			case 2:
				_, treeOK := tr.Delete(k)
				_, refOK := ref[k]
				if treeOK != refOK {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		want := make([]string, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		got := tr.Keys()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
			if v, ok := tr.Get(want[i]); !ok || v != ref[want[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
