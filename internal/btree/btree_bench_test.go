package btree

import (
	"fmt"
	"testing"
)

// Substrate micro-benchmarks: the ordered store underlies every disk
// process and database in the repository, so its constants matter to
// experiment wall time.

func BenchmarkPutSequential(b *testing.B) {
	tr := New()
	keys := make([]string, b.N)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%09d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], "v")
	}
}

func BenchmarkGetHit(b *testing.B) {
	tr := New()
	const n = 1 << 16
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("key-%09d", i)
		tr.Put(keys[i], "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i&(n-1)])
	}
}

func BenchmarkPutDeleteChurn(b *testing.B) {
	tr := New()
	const live = 1 << 12
	keys := make([]string, live)
	for i := 0; i < live; i++ {
		keys[i] = fmt.Sprintf("key-%09d", i)
		tr.Put(keys[i], "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(live-1)]
		tr.Delete(k)
		tr.Put(k, "v")
	}
}

func BenchmarkAscendFullScan(b *testing.B) {
	tr := New()
	for i := 0; i < 1<<14; i++ {
		tr.Put(fmt.Sprintf("key-%09d", i), "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Ascend(func(k, v string) bool {
			count++
			return true
		})
	}
}
