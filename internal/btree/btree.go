// Package btree implements an in-memory B-tree with string keys and
// values. It is the ordered store underneath the simulated disk processes:
// the state a Tandem DP manages, and the database a log-shipping primary
// and backup keep in sync.
//
// The implementation is the classic CLRS B-tree: nodes hold between t-1
// and 2t-1 keys (except the root), splits happen top-down on insert, and
// deletes rebalance by borrowing from or merging with siblings.
package btree

import "sort"

type item struct {
	key, val string
}

type node struct {
	items    []item
	children []*node // empty for leaves
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// find returns the index of key in n.items, or the child index to descend
// into, and whether the key was found at that index.
func (n *node) find(key string) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return n.items[i].key >= key })
	if i < len(n.items) && n.items[i].key == key {
		return i, true
	}
	return i, false
}

// Tree is a B-tree mapping string keys to string values. The zero value
// is not usable; construct with New.
type Tree struct {
	root *node
	size int
	t    int // minimum degree: nodes hold t-1..2t-1 keys
}

// DefaultDegree is the minimum degree used by New.
const DefaultDegree = 16

// New returns an empty tree with the default degree.
func New() *Tree { return NewDegree(DefaultDegree) }

// NewDegree returns an empty tree with minimum degree t (t >= 2). Small
// degrees force deep trees and are useful in tests.
func NewDegree(t int) *Tree {
	if t < 2 {
		panic("btree: minimum degree must be >= 2")
	}
	return &Tree{root: &node{}, t: t}
}

// Len reports the number of keys stored.
func (tr *Tree) Len() int { return tr.size }

// Get returns the value for key and whether it is present.
func (tr *Tree) Get(key string) (string, bool) {
	n := tr.root
	for {
		i, ok := n.find(key)
		if ok {
			return n.items[i].val, true
		}
		if n.leaf() {
			return "", false
		}
		n = n.children[i]
	}
}

// Put stores val under key, returning the previous value and whether one
// existed.
func (tr *Tree) Put(key, val string) (string, bool) {
	if len(tr.root.items) == 2*tr.t-1 {
		old := tr.root
		tr.root = &node{children: []*node{old}}
		tr.splitChild(tr.root, 0)
	}
	prev, existed := tr.insertNonFull(tr.root, key, val)
	if !existed {
		tr.size++
	}
	return prev, existed
}

// splitChild splits the full child at index i of parent p.
func (tr *Tree) splitChild(p *node, i int) {
	t := tr.t
	child := p.children[i]
	mid := child.items[t-1]

	right := &node{items: append([]item(nil), child.items[t:]...)}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[t:]...)
		child.children = child.children[:t]
	}
	child.items = child.items[:t-1]

	p.items = append(p.items, item{})
	copy(p.items[i+1:], p.items[i:])
	p.items[i] = mid

	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

func (tr *Tree) insertNonFull(n *node, key, val string) (string, bool) {
	for {
		i, ok := n.find(key)
		if ok {
			prev := n.items[i].val
			n.items[i].val = val
			return prev, true
		}
		if n.leaf() {
			n.items = append(n.items, item{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item{key: key, val: val}
			return "", false
		}
		if len(n.children[i].items) == 2*tr.t-1 {
			tr.splitChild(n, i)
			if key == n.items[i].key {
				prev := n.items[i].val
				n.items[i].val = val
				return prev, true
			}
			if key > n.items[i].key {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, returning its value and whether it was present.
func (tr *Tree) Delete(key string) (string, bool) {
	val, ok := tr.delete(tr.root, key)
	if len(tr.root.items) == 0 && !tr.root.leaf() {
		tr.root = tr.root.children[0]
	}
	if ok {
		tr.size--
	}
	return val, ok
}

// delete removes key from the subtree rooted at n. Invariant: n has at
// least t items whenever delete recurses into it (except the root).
func (tr *Tree) delete(n *node, key string) (string, bool) {
	t := tr.t
	i, found := n.find(key)
	if found {
		if n.leaf() {
			val := n.items[i].val
			n.items = append(n.items[:i], n.items[i+1:]...)
			return val, true
		}
		// Internal node: replace with predecessor or successor, or merge.
		val := n.items[i].val
		switch {
		case len(n.children[i].items) >= t:
			pred := tr.deleteMax(n.children[i])
			n.items[i] = pred
		case len(n.children[i+1].items) >= t:
			succ := tr.deleteMin(n.children[i+1])
			n.items[i] = succ
		default:
			tr.mergeChildren(n, i)
			tr.delete(n.children[i], key)
		}
		return val, true
	}
	if n.leaf() {
		return "", false
	}
	// Ensure the child we descend into has at least t items.
	if len(n.children[i].items) < t {
		i = tr.fill(n, i)
	}
	return tr.delete(n.children[i], key)
}

// deleteMax removes and returns the maximum item of the subtree at n.
func (tr *Tree) deleteMax(n *node) item {
	for {
		if n.leaf() {
			it := n.items[len(n.items)-1]
			n.items = n.items[:len(n.items)-1]
			return it
		}
		i := len(n.children) - 1
		if len(n.children[i].items) < tr.t {
			i = tr.fill(n, i)
			continue
		}
		n = n.children[i]
	}
}

// deleteMin removes and returns the minimum item of the subtree at n.
func (tr *Tree) deleteMin(n *node) item {
	for {
		if n.leaf() {
			it := n.items[0]
			n.items = append(n.items[:0], n.items[1:]...)
			return it
		}
		if len(n.children[0].items) < tr.t {
			tr.fill(n, 0)
			continue
		}
		n = n.children[0]
	}
}

// fill guarantees child i of n has at least t items, by borrowing from a
// sibling or merging. It returns the (possibly shifted) child index to
// descend into.
func (tr *Tree) fill(n *node, i int) int {
	t := tr.t
	switch {
	case i > 0 && len(n.children[i-1].items) >= t:
		tr.borrowFromLeft(n, i)
	case i < len(n.children)-1 && len(n.children[i+1].items) >= t:
		tr.borrowFromRight(n, i)
	case i > 0:
		tr.mergeChildren(n, i-1)
		i--
	default:
		tr.mergeChildren(n, i)
	}
	return i
}

func (tr *Tree) borrowFromLeft(n *node, i int) {
	child, left := n.children[i], n.children[i-1]
	child.items = append(child.items, item{})
	copy(child.items[1:], child.items)
	child.items[0] = n.items[i-1]
	n.items[i-1] = left.items[len(left.items)-1]
	left.items = left.items[:len(left.items)-1]
	if !left.leaf() {
		moved := left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = moved
	}
}

func (tr *Tree) borrowFromRight(n *node, i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	n.items[i] = right.items[0]
	right.items = append(right.items[:0], right.items[1:]...)
	if !right.leaf() {
		moved := right.children[0]
		right.children = append(right.children[:0], right.children[1:]...)
		child.children = append(child.children, moved)
	}
}

// mergeChildren merges child i, separator i, and child i+1 into child i.
func (tr *Tree) mergeChildren(n *node, i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Min returns the smallest key and its value; ok is false on an empty tree.
func (tr *Tree) Min() (key, val string, ok bool) {
	if tr.size == 0 {
		return "", "", false
	}
	n := tr.root
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0].key, n.items[0].val, true
}

// Max returns the largest key and its value; ok is false on an empty tree.
func (tr *Tree) Max() (key, val string, ok bool) {
	if tr.size == 0 {
		return "", "", false
	}
	n := tr.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	it := n.items[len(n.items)-1]
	return it.key, it.val, true
}

// Ascend visits every key/value pair in ascending key order until fn
// returns false.
func (tr *Tree) Ascend(fn func(key, val string) bool) {
	tr.ascend(tr.root, fn)
}

func (tr *Tree) ascend(n *node, fn func(key, val string) bool) bool {
	for i, it := range n.items {
		if !n.leaf() && !tr.ascend(n.children[i], fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if !n.leaf() {
		return tr.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendRange visits pairs with lo <= key < hi in ascending order until fn
// returns false.
func (tr *Tree) AscendRange(lo, hi string, fn func(key, val string) bool) {
	tr.Ascend(func(k, v string) bool {
		if k < lo {
			return true
		}
		if k >= hi {
			return false
		}
		return fn(k, v)
	})
}

// Keys returns all keys in ascending order.
func (tr *Tree) Keys() []string {
	out := make([]string, 0, tr.size)
	tr.Ascend(func(k, _ string) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clone returns a deep copy of the tree. Takeover tests use this to
// snapshot a backup's state before replaying more log.
func (tr *Tree) Clone() *Tree {
	c := NewDegree(tr.t)
	tr.Ascend(func(k, v string) bool {
		c.Put(k, v)
		return true
	})
	return c
}
