package experiment

import (
	"fmt"
	"time"

	"repro/internal/cart"
	"repro/internal/dynamo"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// cartShopper abstracts the two cart designs for shared drivers.
type cartShopper interface {
	Add(sku string, qty int64, done func(bool))
	Delete(sku string, done func(bool))
	Contents(done func([]cart.Item, bool))
}

// runCartScenario drives `sessions` concurrent shoppers against one cart
// with optional node churn, then quiesces and audits. Every shopper adds
// `adds` distinct SKUs (qty 1 each) and deletes one of them at the end.
// Returns acked adds, acked deletes, lost adds, resurrected deletes, and
// sibling reconciliations.
func runCartScenario(seed int64, sessions, adds int, churn bool, mk func(cl *dynamo.Cluster, key, actor string) cartShopper) (acked, ackedDel, lostAdds, resurrected, reconciliations int) {
	s := sim.New(seed)
	cl := dynamo.New(s, dynamo.Config{Nodes: 5, N: 3, R: 2, W: 2})

	type sessionState struct {
		shopper cartShopper
		deleted string
	}
	states := make([]*sessionState, sessions)
	expect := map[string]bool{}  // SKUs whose add was acked
	deleted := map[string]bool{} // SKUs whose delete was acked

	for i := 0; i < sessions; i++ {
		i := i
		actor := fmt.Sprintf("shopper-%d", i)
		st := &sessionState{shopper: mk(cl, "cart", actor)}
		states[i] = st
		workload.PoissonLoop(s, 3*time.Millisecond, adds+1, func(step int) {
			if step < adds {
				sku := fmt.Sprintf("sku-%d-%d", i, step)
				st.shopper.Add(sku, 1, func(ok bool) {
					if ok {
						acked++
						expect[sku] = true
					}
				})
				return
			}
			// Final step: delete this shopper's first SKU.
			sku := fmt.Sprintf("sku-%d-0", i)
			st.shopper.Delete(sku, func(ok bool) {
				if ok {
					ackedDel++
					deleted[sku] = true
				}
			})
		})
	}
	if churn {
		// One node bounces mid-run; another bounces later.
		s.At(sim.Time(10*time.Millisecond), func() { cl.SetUp("n1", false) })
		s.At(sim.Time(30*time.Millisecond), func() { cl.SetUp("n1", true) })
		s.At(sim.Time(40*time.Millisecond), func() { cl.SetUp("n3", false) })
		s.At(sim.Time(70*time.Millisecond), func() { cl.SetUp("n3", true) })
	}
	s.Run()
	for i := 0; i < 4; i++ {
		cl.AntiEntropyRound()
		s.Run()
	}

	// Audit through a fresh reader.
	reader := mk(cl, "cart", "auditor")
	var final []cart.Item
	reader.Contents(func(items []cart.Item, ok bool) {
		if ok {
			final = items
		}
	})
	s.Run()
	have := map[string]int64{}
	for _, it := range final {
		have[it.SKU] = it.Qty
	}
	for sku := range expect {
		if deleted[sku] {
			if have[sku] > 0 {
				resurrected++
			}
			continue
		}
		if have[sku] == 0 {
			lostAdds++
		}
	}
	for i := range states {
		switch sh := states[i].shopper.(type) {
		case *cart.Session:
			reconciliations += sh.Reconciliations
		case *cart.StateMergeSession:
			reconciliations += sh.Reconciliations
		}
	}
	return acked, ackedDel, lostAdds, resurrected, reconciliations
}

func opCartFactory(cl *dynamo.Cluster, key, actor string) cartShopper {
	return cart.NewSession(cl, key, actor)
}

func stateCartFactory(cl *dynamo.Cluster, key, actor string) cartShopper {
	return cart.NewStateMergeSession(cl, key, actor)
}

// E5CartReconciliation reproduces §6.1: concurrent sessions and node
// churn create sibling versions; operation-centric reconciliation loses no
// acked ADD.
func E5CartReconciliation() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Dynamo shopping cart: sibling reconciliation under concurrency and churn",
		Claim: `§6.1: "These ADD-TO-CART, CHANGE-NUMBER, and DELETE-FROM-CART operations can usually be reconciled when a union of the operations is finally joined together"; §6.4: "items added to the cart will not be lost."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E5 — operation-centric cart on the Dynamo store",
				"8 concurrent sessions on one cart (N=3,R=2,W=2, 5 nodes); audit after anti-entropy.",
				"scenario", "acked adds", "acked deletes", "lost adds", "resurrected deletes", "sibling merges")
			for _, churn := range []bool{false, true} {
				acked, dels, lost, res, rec := runCartScenario(seed, 8, 6, churn, opCartFactory)
				name := "steady cluster"
				if churn {
					name = "node churn"
				}
				tab.AddRow(name, fmt.Sprint(acked), fmt.Sprint(dels), fmt.Sprint(lost), fmt.Sprint(res), fmt.Sprint(rec))
			}
			return tab
		},
	}
}

// A1OpVsStateMerge is the §6.4 ablation: the same workload through the
// operation-centric cart and the state-merge strawman.
func A1OpVsStateMerge() Experiment {
	return Experiment{
		ID:    "A1",
		Title: "Ablation: operation-centric cart vs READ/WRITE state-merge cart",
		Claim: `§6.4: "Storage systems alone cannot provide the commutativity we need ... We need the business operations to reorder. WRITE is not commutative."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("A1 — the same concurrent workload, two cart designs",
				"8 sessions × 6 adds + 1 delete each, same store parameters as E5 (with churn).",
				"cart design", "acked adds", "lost adds", "resurrected deletes", "sibling merges")
			for _, design := range []struct {
				name string
				mk   func(cl *dynamo.Cluster, key, actor string) cartShopper
			}{
				{"operation-centric", opCartFactory},
				{"state-merge (strawman)", stateCartFactory},
			} {
				acked, _, lost, res, rec := runCartScenario(seed, 8, 6, true, design.mk)
				tab.AddRow(design.name, fmt.Sprint(acked), fmt.Sprint(lost), fmt.Sprint(res), fmt.Sprint(rec))
			}
			return tab
		},
	}
}
