package experiment

import (
	"fmt"
	"time"

	"repro/internal/escrow"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/workload"
)

// E7Escrow reproduces the §5.3 sidebar: escrow locking lets commutative
// add/subtract transactions interleave on a hot value where an exclusive
// lock serializes them.
func E7Escrow() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Escrow locking vs exclusive locking on a hot account",
		Claim: `§5.3 sidebar: "the work of multiple transactions can interleave as long as they are doing the commutative operations"; escrow locking "was implemented in Tandem's NonStop SQL ... to support high-throughput addition and subtraction."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E7 — throughput of add/subtract transactions, 10ms think time each",
				"Each client runs 30 transactions of ±10 against one account (bounds 0..1e6, start 5e5).",
				"clients", "scheme", "makespan", "txns/sec", "waits/conflicts")
			const txnsPerClient = 30
			think := 10 * time.Millisecond
			for _, clients := range []int{1, 2, 4, 8, 16, 32} {
				// Escrow: reservations interleave.
				{
					s := sim.New(seed)
					acct := escrow.NewAccount(500_000, 0, 1_000_000)
					done := 0
					for c := 0; c < clients; c++ {
						delta := int64(10)
						if c%2 == 1 {
							delta = -10
						}
						var run func(i int)
						run = func(i int) {
							if i == txnsPerClient {
								done++
								return
							}
							acct.Reserve(delta, func(txn uint64) {
								s.After(think, func() {
									acct.Commit(txn)
									run(i + 1)
								})
							})
						}
						run(0)
					}
					s.Run()
					if done != clients {
						panic("E7: escrow clients incomplete")
					}
					makespan := time.Duration(s.Now())
					tput := float64(clients*txnsPerClient) / makespan.Seconds()
					tab.AddRow(fmt.Sprint(clients), "escrow", makespan.String(),
						stats.F(tput, 0), fmt.Sprint(acct.Conflicts()))
				}
				// Exclusive: one holder at a time.
				{
					s := sim.New(seed)
					var mu escrow.Mutex
					val := int64(500_000)
					done := 0
					for c := 0; c < clients; c++ {
						delta := int64(10)
						if c%2 == 1 {
							delta = -10
						}
						var run func(i int)
						run = func(i int) {
							if i == txnsPerClient {
								done++
								return
							}
							mu.Acquire(func() {
								s.After(think, func() {
									val += delta
									mu.Release()
									run(i + 1)
								})
							})
						}
						run(0)
					}
					s.Run()
					if done != clients {
						panic("E7: mutex clients incomplete")
					}
					makespan := time.Duration(s.Now())
					tput := float64(clients*txnsPerClient) / makespan.Seconds()
					tab.AddRow(fmt.Sprint(clients), "exclusive", makespan.String(),
						stats.F(tput, 0), fmt.Sprint(mu.Waits()))
				}
			}
			return tab
		},
	}
}

// A2GroupCommit reproduces §3.2's city-bus economics at the log device.
func A2GroupCommit() Experiment {
	return Experiment{
		ID:    "A2",
		Title: "Ablation: group commit — a car per driver vs the city bus",
		Claim: `§3.2: "waiting to participate in shared buffer writes can, under the right circumstances, result in a reduction of latency since the overall system work is reduced."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("A2 — commit latency vs flush policy under load",
				"500 commits, Poisson arrivals; flush costs 1ms of device time; flushes serialize.",
				"arrival mean", "flush policy", "commit p50", "commit p99", "flushes", "mean batch")
			policies := []struct {
				name string
				cfg  wal.Config
			}{
				{"per-commit (car)", wal.Config{NoCoalesce: true, FlushCost: time.Millisecond}},
				{"coalescing", wal.Config{FlushCost: time.Millisecond}},
				{"timer 2ms (bus)", wal.Config{Interval: 2 * time.Millisecond, FlushCost: time.Millisecond}},
			}
			for _, arrival := range []time.Duration{5 * time.Millisecond, time.Millisecond, 600 * time.Microsecond} {
				for _, p := range policies {
					s := sim.New(seed)
					log := wal.New(nil)
					gc := wal.NewGroupCommitter(s, log, p.cfg)
					var lat stats.Histogram
					workload.PoissonLoop(s, arrival, 500, func(i int) {
						log.Append(wal.Record{Txn: uint64(i), Kind: wal.KindCommit})
						start := s.Now()
						gc.Commit(func() { lat.AddDur(s.Now().Sub(start)) })
					})
					s.Run()
					tab.AddRow(arrival.String(), p.name,
						stats.Dur(lat.P50()), stats.Dur(lat.P99()),
						fmt.Sprint(gc.Flushes()), stats.F(gc.MeanBatch(), 1))
				}
			}
			return tab
		},
	}
}
