package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/oplog"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/twopc"
	"repro/internal/workload"
)

// capApp is a trivial commutative op-counter for the availability run.
type capApp struct{}

func (capApp) Init() int64                       { return 0 }
func (capApp) Step(s int64, _ oplog.Entry) int64 { return s + 1 }

// E12CAPAvailability reproduces §2.3/§8.2: coordination-per-operation is
// fragile under churn; ACID 2.0 gossip keeps accepting work and converges
// afterwards.
func E12CAPAvailability() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "CAP under churn: 2PC per operation vs ACID 2.0 gossip",
		Claim: `§2.3: "Distributed transactions (especially using the Two Phase Commit protocol) result in fragile systems and reduced availability." §8.2: with commutativity and associativity "it is possible to be very lazy about the sharing of information."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E12 — 500 operations over 5s, 3 nodes, crash churn (MTBF 400ms, MTTR 150ms)",
				"2PC needs every participant; the gossip cluster needs only the ingress replica.",
				"protocol", "attempted", "succeeded", "availability", "crashes injected", "converged after heal")
			const ops = 500
			mtbf, mttr := 400*time.Millisecond, 150*time.Millisecond

			// 2PC.
			{
				s := sim.New(seed)
				g := twopc.New(s, twopc.Config{Participants: 3, CallTimeout: 30 * time.Millisecond})
				inj := failure.NewInjector(s, g.Net(), g.ParticipantIDs(), mtbf, mttr, nil).Start()
				ok := 0
				workload.PoissonLoop(s, 10*time.Millisecond, ops, func(int) {
					g.Commit(func(c bool) {
						if c {
							ok++
						}
					})
				})
				s.RunUntil(sim.Time(8 * time.Second))
				inj.Stop()
				s.Run()
				tab.AddRow("2PC (classic ACID)", fmt.Sprint(ops), fmt.Sprint(ok),
					stats.Pct(stats.Ratio(int64(ok), ops)), fmt.Sprint(inj.Crashes()), "n/a")
			}

			// ACID 2.0 gossip cluster.
			{
				s := sim.New(seed)
				c := core.New[int64](capApp{}, nil,
					core.WithSim(s), core.WithReplicas(3), core.WithCallTimeout(30*time.Millisecond))
				nodes := []simnet.NodeID{"r0", "r1", "r2"}
				inj := failure.NewInjector(s, c.Net(), nodes, mtbf, mttr, nil).Start()
				stop := c.StartGossip(50 * time.Millisecond)
				ok := 0
				workload.PoissonLoop(s, 10*time.Millisecond, ops, func(i int) {
					// Clients fail over to any live replica, as Dynamo
					// clients do.
					rep := i % 3
					for probe := 0; probe < 3; probe++ {
						if c.Net().IsUp(nodes[(rep+probe)%3]) {
							rep = (rep + probe) % 3
							break
						}
					}
					c.SubmitAsync(rep, core.NewOp("op", "k", 1), func(res core.Result) {
						if res.Accepted {
							ok++
						}
					}, core.WithPolicy(policy.AlwaysAsync()))
				})
				s.RunUntil(sim.Time(8 * time.Second))
				inj.Stop()
				stop() // cancel the periodic gossip so the queue can drain
				s.Run()
				for i := 0; i < 6 && !c.Converged(); i++ {
					c.GossipRound()
					s.Run()
				}
				tab.AddRow("ACID 2.0 (gossip)", fmt.Sprint(ops), fmt.Sprint(ok),
					stats.Pct(stats.Ratio(int64(ok), ops)), fmt.Sprint(inj.Crashes()),
					fmt.Sprint(c.Converged()))
			}
			return tab
		},
	}
}
