package experiment

import (
	"context"
	"fmt"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E13IncrementalFold measures what admission costs as the ledger grows:
// every rule-checked submit must derive replica state, and the engine can
// either advance a fold checkpoint by the new entries (O(new)) or replay
// the whole operation set from genesis (O(ledger)). The experiment runs
// the same single-replica, rule-checked deposit workload both ways and
// counts App.Step invocations — the derivation work itself, independent
// of hardware — then checks both engines derived identical balances.
func E13IncrementalFold() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Checkpointed folds: admission cost vs ledger size",
		Claim: `§7.6: "replicas that have seen the same work should see the same result, independent of the order in which the work has arrived" — the canonical fold defines the state, but nothing in §7.6 requires re-running it from scratch; §3.3: Tandem's DP2 stopped checkpointing every WRITE and instead sent "periodic checkpoints" anchored to the transaction log, decoupling checkpoint cost from write rate.`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E13 — App.Step invocations to admit n rule-checked deposits",
				"1 replica on the simulator; every submit admission-checks the no-overdraft rule against derived state; checkpointed fold vs full refold over 20 accounts; both engines must derive identical final balances.",
				"ops", "engine", "Step calls", "steps/submit", "refold speedup", "states equal")
			for _, n := range []int{1_000, 2_500, 5_000, 10_000} {
				var steps [2]int64
				var final [2]*bank.Accounts
				for mode, full := range []bool{false, true} {
					s := sim.New(seed)
					opts := []core.Option{core.WithSim(s), core.WithReplicas(1)}
					if full {
						opts = append(opts, core.WithFullRefold())
					}
					b := bank.New(30_00, opts...)
					ops := make([]core.Op, n)
					for i := range ops {
						ops[i] = core.NewOp(bank.KindDeposit, fmt.Sprintf("acct-%02d", i%20), 100)
					}
					if _, err := b.C.SubmitBatch(context.Background(), 0, ops); err != nil {
						panic(fmt.Sprintf("E13: %v", err))
					}
					s.Run()
					steps[mode] = b.C.M.FoldSteps.Value()
					final[mode] = b.C.Replica(0).State()
				}
				equal := len(final[0].Bal) == len(final[1].Bal)
				for acct, bal := range final[0].Bal {
					if final[1].Bal[acct] != bal {
						equal = false
					}
				}
				for mode, name := range []string{"checkpointed", "full refold"} {
					tab.AddRow(fmt.Sprint(n), name,
						fmt.Sprint(steps[mode]),
						fmt.Sprintf("%.2f", float64(steps[mode])/float64(n)),
						fmt.Sprintf("%.1f×", float64(steps[1])/float64(steps[mode])),
						fmt.Sprint(equal))
				}
			}
			return tab
		},
	}
}
