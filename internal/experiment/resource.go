package experiment

import (
	"fmt"
	"time"

	"repro/internal/resource"
	"repro/internal/seats"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E8Allocation reproduces §7.1: the over-provisioning / over-booking
// spectrum under disconnected, skewed demand.
func E8Allocation() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Over-provisioning vs over-booking across disconnection epochs",
		Claim: `§7.1: "It is possible to be conservative and ensure you NEVER have to apologize ... This will, however, sometimes result in you deciding to decline business you would rather have. You can dynamically slide between these positions."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E8 — 1,000 units, 4 replicas, 3 disconnection epochs, skewed demand for 1,100 units",
				"Demand is Zipf-skewed across replicas, so quotas strand stock where demand isn't.",
				"factor", "accepted", "declined", "declined w/ stock idle", "apologies", "fill rate")
			for _, factor := range []float64{1.0, 1.05, 1.1, 1.2, 1.5} {
				s := sim.New(seed)
				pool := resource.NewPool(1000, 4, factor)
				r := s.Rand()
				// Three disconnected epochs; demand heavily favors
				// replicas 0 and 1.
				demandReplica := func() int {
					x := r.Float64()
					switch {
					case x < 0.45:
						return 0
					case x < 0.80:
						return 1
					case x < 0.95:
						return 2
					default:
						return 3
					}
				}
				requests := 1100
				perEpoch := requests / 3
				for epoch := 0; epoch < 3; epoch++ {
					pool.Disconnect()
					n := perEpoch
					if epoch == 2 {
						n = requests - 2*perEpoch
					}
					for i := 0; i < n; i++ {
						pool.Request(demandReplica(), 1)
					}
					pool.Connect()
				}
				m := pool.Metrics()
				tab.AddRow(
					stats.F(factor, 2),
					fmt.Sprint(m.Accepted), fmt.Sprint(m.Declined),
					fmt.Sprint(m.DeclinedWithStockIdle),
					fmt.Sprint(m.Apologies),
					stats.Pct(stats.Ratio(m.Delivered, 1000)))
			}
			return tab
		},
	}
}

// E9Seats reproduces §7.3: bounded holds against an untrusted agent.
func E9Seats() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Seat reservation pattern: hold TTL vs a scalping adversary",
		Claim: `§7.3: "untrusted agents could exploit these aspects of the system to quickly start a set of transactions against prime seats, making them unavailable to others ... you have a bounded period of time, (typically minutes), to complete the transaction."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E9 — 40 prime seats, a scalper who holds and never buys, buyers arriving for 2h",
				"Buyers want a prime seat and retry for 10 minutes before giving up.",
				"hold TTL", "prime sold to buyers", "buyers turned away", "holds expired", "scalper holds")
			for _, ttl := range []time.Duration{0, 2 * time.Minute, 5 * time.Minute, 15 * time.Minute} {
				s := sim.New(seed)
				const prime = 40
				v := seats.NewVenue(s, prime, ttl)

				// The scalper camps every prime seat and re-camps when
				// a hold expires.
				scalperHolds := 0
				var camp func()
				camp = func() {
					for i := 0; i < prime; i++ {
						if v.Hold(i, "scalper") {
							scalperHolds++
						}
					}
					if s.Now() < sim.Time(2*time.Hour) {
						s.After(time.Minute, camp)
					}
				}
				camp()

				// Buyers arrive Poisson (one per ~90s), each retrying
				// for up to 10 minutes.
				bought, turnedAway := 0, 0
				buyer := 0
				workload.PoissonLoop(s, 90*time.Second, 70, func(int) {
					buyer++
					who := fmt.Sprintf("buyer-%d", buyer)
					deadline := s.Now().Add(10 * time.Minute)
					var try func()
					try = func() {
						for i := 0; i < prime; i++ {
							if v.Hold(i, who) {
								v.Buy(i, who)
								bought++
								return
							}
						}
						if s.Now() < deadline {
							s.After(30*time.Second, try)
						} else {
							turnedAway++
						}
					}
					try()
				})
				s.RunUntil(sim.Time(3 * time.Hour))
				ttlName := ttl.String()
				if ttl == 0 {
					ttlName = "unbounded"
				}
				tab.AddRow(ttlName, fmt.Sprint(bought), fmt.Sprint(turnedAway),
					fmt.Sprint(v.M.Expired.Value()), fmt.Sprint(scalperHolds))
			}
			return tab
		},
	}
}
