package experiment

// These tests pin the qualitative shape of every experiment — the
// reproduction's actual claims — into `go test`. Each parses its table
// back out of the stats.Table rows and asserts the relation the paper
// states. If an implementation change flips a verdict, the suite fails.

import (
	"strconv"
	"strings"
	"testing"
)

// cell returns row r, column named col.
func cell(t *testing.T, tab *tableT, r int, col string) string {
	t.Helper()
	for i, h := range tab.Headers {
		if h == col {
			return tab.Rows[r][i]
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Headers)
	return ""
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func run(t *testing.T, id string) *tableT {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tab := e.Run(1)
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced an empty table", id)
	}
	return tab
}

func TestRegistryCompleteAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 20 {
		t.Fatalf("expected 20 experiments, have %d", len(seen))
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID accepted an unknown id")
	}
}

func TestE1Shape(t *testing.T) {
	tab := run(t, "E1")
	// Rows 0-3 DP1 (writes 1,2,4,8), rows 4-7 DP2.
	for i := 0; i < 4; i++ {
		dp1Write := cell(t, tab, i, "write p50")
		dp2Write := cell(t, tab, i+4, "write p50")
		if dp1Write != "400.0µs" || dp2Write != "200.0µs" {
			t.Fatalf("write latency rows: dp1=%s dp2=%s", dp1Write, dp2Write)
		}
		if num(t, cell(t, tab, i+4, "write-ckpts/txn")) != 0 {
			t.Fatal("DP2 has per-write checkpoints")
		}
		if num(t, cell(t, tab, i, "write-ckpts/txn")) == 0 {
			t.Fatal("DP1 has no per-write checkpoints")
		}
	}
}

func TestE2NoCommittedLost(t *testing.T) {
	tab := run(t, "E2")
	for r := range tab.Rows {
		if got := num(t, cell(t, tab, r, "committed lost")); got != 0 {
			t.Fatalf("row %d lost %v committed txns", r, got)
		}
	}
	// DP1 transparent (0 failover aborts); DP2 aborts some.
	if num(t, cell(t, tab, 0, "failover aborts")) != 0 {
		t.Fatal("DP1 failovers were not transparent")
	}
	if num(t, cell(t, tab, 1, "failover aborts")) == 0 {
		t.Fatal("DP2 failovers aborted nothing in-flight")
	}
}

func TestE3AsyncFlatSyncScalesWithDistance(t *testing.T) {
	tab := run(t, "E3")
	// Async rows (even indices) flat; sync rows grow with WAN.
	var lastSync float64
	for r := 0; r < len(tab.Rows); r += 2 {
		asyncP50 := cell(t, tab, r, "commit p50")
		if asyncP50 != "1.50ms" {
			t.Fatalf("async commit latency varies with distance: %s", asyncP50)
		}
		syncP50 := strings.TrimSuffix(cell(t, tab, r+1, "commit p50"), "ms")
		v := num(t, syncP50)
		if v <= lastSync {
			t.Fatalf("sync latency not increasing with WAN: %v after %v", v, lastSync)
		}
		lastSync = v
	}
}

func TestE4LossGrowsWithLagAndSyncLosesNothing(t *testing.T) {
	tab := run(t, "E4")
	var last float64 = -1
	for r := 0; r < len(tab.Rows)-1; r++ {
		v := num(t, cell(t, tab, r, "mean lost/takeover"))
		if v < last {
			t.Fatalf("loss not monotonic in lag: %v after %v", v, last)
		}
		last = v
		if num(t, cell(t, tab, r, "audit errors")) != 0 {
			t.Fatal("unaccounted loss")
		}
	}
	if last == 0 {
		t.Fatal("largest lag lost nothing; window invisible")
	}
	syncRow := len(tab.Rows) - 1
	if num(t, cell(t, tab, syncRow, "mean lost/takeover")) != 0 {
		t.Fatal("sync mode lost acked work")
	}
}

func TestE5NoLostAddsEvenUnderChurn(t *testing.T) {
	tab := run(t, "E5")
	for r := range tab.Rows {
		if num(t, cell(t, tab, r, "lost adds")) != 0 {
			t.Fatalf("op-centric cart lost adds in row %d", r)
		}
		if num(t, cell(t, tab, r, "resurrected deletes")) != 0 {
			t.Fatalf("op-centric cart resurrected deletes in row %d", r)
		}
		if num(t, cell(t, tab, r, "sibling merges")) == 0 {
			t.Fatal("no siblings at all; the workload is not concurrent enough to test the claim")
		}
	}
}

func TestE6ConvergesAndRiskGrowsWithLag(t *testing.T) {
	tab := run(t, "E6")
	for r := range tab.Rows {
		if cell(t, tab, r, "balances equal") != "true" {
			t.Fatalf("row %d did not converge to equal balances", r)
		}
	}
	// Within each replica group (3 rows), bounce rate rises with gossip
	// interval.
	for g := 0; g < len(tab.Rows); g += 3 {
		fast := num(t, cell(t, tab, g, "bounce rate"))
		slow := num(t, cell(t, tab, g+2, "bounce rate"))
		if slow <= fast {
			t.Fatalf("bounce rate did not grow with gossip lag: %v -> %v", fast, slow)
		}
	}
}

func TestE7EscrowScalesExclusiveDoesNot(t *testing.T) {
	tab := run(t, "E7")
	// Rows alternate escrow/exclusive per client count; last pair is 32
	// clients.
	last := len(tab.Rows) - 2
	escrow := num(t, cell(t, tab, last, "txns/sec"))
	exclusive := num(t, cell(t, tab, last+1, "txns/sec"))
	if escrow < exclusive*16 {
		t.Fatalf("escrow %v vs exclusive %v at 32 clients; expected ~32x", escrow, exclusive)
	}
	if num(t, cell(t, tab, last, "waits/conflicts")) != 0 {
		t.Fatal("escrow conflicted on commutative ops within bounds")
	}
}

func TestE8SlideTradesDeclinesForApologies(t *testing.T) {
	tab := run(t, "E8")
	first, last := 0, len(tab.Rows)-1
	if num(t, cell(t, tab, first, "apologies")) != 0 {
		t.Fatal("strict provisioning apologized")
	}
	if num(t, cell(t, tab, first, "declined w/ stock idle")) == 0 {
		t.Fatal("strict provisioning declined nothing while stock idled; demand skew missing")
	}
	if num(t, cell(t, tab, last, "apologies")) == 0 {
		t.Fatal("heavy over-booking never apologized")
	}
	if num(t, cell(t, tab, last, "accepted")) <= num(t, cell(t, tab, first, "accepted")) {
		t.Fatal("over-booking did not accept more business")
	}
}

func TestE9UnboundedHoldsStarveBuyers(t *testing.T) {
	tab := run(t, "E9")
	if num(t, cell(t, tab, 0, "prime sold to buyers")) != 0 {
		t.Fatal("buyers got seats despite unbounded scalper holds")
	}
	if num(t, cell(t, tab, 1, "prime sold to buyers")) == 0 {
		t.Fatal("TTL did not restore liveness")
	}
}

func TestE10DialMovesExposure(t *testing.T) {
	tab := run(t, "E10")
	allSync, allAsync := 0, len(tab.Rows)-1
	if cell(t, tab, allSync, "%sync") != "100.00%" {
		t.Fatalf("all-sync row %%sync = %s", cell(t, tab, allSync, "%sync"))
	}
	if cell(t, tab, allAsync, "%sync") != "0.00%" {
		t.Fatalf("all-async row %%sync = %s", cell(t, tab, allAsync, "%sync"))
	}
	if cell(t, tab, allSync, "guessed $ exposure") != "$0" {
		t.Fatal("all-sync row had guessed exposure")
	}
	// Exposure monotonically rises as the threshold loosens.
	var last float64 = -1
	for r := range tab.Rows {
		v := num(t, strings.TrimPrefix(cell(t, tab, r, "guessed $ exposure"), "$"))
		if v < last {
			t.Fatalf("exposure not monotonic at row %d", r)
		}
		last = v
	}
}

func TestE11DedupEliminatesDuplicates(t *testing.T) {
	tab := run(t, "E11")
	for r := range tab.Rows {
		dupes := num(t, cell(t, tab, r, "duplicate shipments"))
		if cell(t, tab, r, "dedup") == "true" {
			if dupes != 0 {
				t.Fatalf("dedup row %d shipped %v duplicates", r, dupes)
			}
		} else if dupes == 0 {
			t.Fatalf("no-dedup row %d shipped no duplicates; retries invisible", r)
		}
	}
}

func TestE12GossipBeats2PC(t *testing.T) {
	tab := run(t, "E12")
	twoPC := num(t, cell(t, tab, 0, "availability"))
	gossip := num(t, cell(t, tab, 1, "availability"))
	if gossip <= twoPC {
		t.Fatalf("gossip availability %v%% <= 2PC %v%%", gossip, twoPC)
	}
	if gossip < 90 {
		t.Fatalf("gossip availability %v%% unexpectedly low", gossip)
	}
	if cell(t, tab, 1, "converged after heal") != "true" {
		t.Fatal("gossip cluster did not converge after churn")
	}
}

func TestE13CheckpointedFoldBeatsRefoldTenfold(t *testing.T) {
	tab := run(t, "E13")
	// Rows come in (checkpointed, full refold) pairs per ledger size.
	for r := 0; r < len(tab.Rows); r += 2 {
		if cell(t, tab, r, "states equal") != "true" {
			t.Fatalf("row %d: engines derived different states", r)
		}
		perSubmit := num(t, cell(t, tab, r, "steps/submit"))
		if perSubmit > 3 {
			t.Fatalf("checkpointed fold costs %.2f steps/submit; not O(new entries)", perSubmit)
		}
	}
	// The checkpointed steps/submit must NOT grow with the ledger while
	// the full refold's does — that is the whole point.
	firstFull := num(t, cell(t, tab, 1, "steps/submit"))
	lastFull := num(t, cell(t, tab, len(tab.Rows)-1, "steps/submit"))
	if lastFull < 4*firstFull {
		t.Fatalf("full refold cost did not scale with ledger size: %.1f -> %.1f", firstFull, lastFull)
	}
	// Acceptance bar: ≥10× on the 10k-op rule-checked workload.
	last := len(tab.Rows) - 2
	if tab.Rows[last][0] != "10000" {
		t.Fatalf("last pair is not the 10k workload: %v", tab.Rows[last])
	}
	speedup := num(t, strings.TrimSuffix(cell(t, tab, last, "refold speedup"), "×"))
	if speedup < 10 {
		t.Fatalf("10k-op speedup = %.1f×, want ≥10×", speedup)
	}
}

func TestE14ShardingPreservesPerKeyOutcomes(t *testing.T) {
	tab := run(t, "E14")
	// Row 0 is the unsharded arm (a single shard carrying everything);
	// the remaining rows are the sharded arm, one per shard. (E14 itself
	// panics if the two arms accept different ops or apologize
	// differently, so a returned table already proves equivalence.)
	if got := cell(t, tab, 0, "shards"); got != "1" {
		t.Fatalf("first row is not the unsharded arm: %q", got)
	}
	if got := cell(t, tab, 0, "op share"); got != "100%" {
		t.Fatalf("unsharded arm op share = %q, want 100%%", got)
	}
	baseOps := num(t, cell(t, tab, 0, "ops"))
	baseApologies := num(t, cell(t, tab, 0, "apologies"))
	if baseApologies == 0 {
		t.Fatal("the skewed storm produced no apologies; the workload is not stressing guesses")
	}
	var shardOps, shardApologies, maxShare float64
	apologyShards := 0
	for r := 1; r < len(tab.Rows); r++ {
		shardOps += num(t, cell(t, tab, r, "ops"))
		a := num(t, cell(t, tab, r, "apologies"))
		shardApologies += a
		if a > 0 {
			apologyShards++
		}
		if share := num(t, cell(t, tab, r, "op share")); share > maxShare {
			maxShare = share
		}
	}
	if shardOps != baseOps {
		t.Fatalf("sharded arm accepted %v ops, unsharded %v — sharding changed admission", shardOps, baseOps)
	}
	if shardApologies != baseApologies {
		t.Fatalf("sharded arm apologized %v times, unsharded %v", shardApologies, baseApologies)
	}
	// The hot key skews load onto its shard but pins every apology there:
	// the other shards run clean.
	if apologyShards != 1 {
		t.Fatalf("apologies landed on %d shards, want exactly the hot one", apologyShards)
	}
	if maxShare <= 100/float64(len(tab.Rows)-1) {
		t.Fatalf("max shard share %v%% shows no skew across %d shards", maxShare, len(tab.Rows)-1)
	}
	if maxShare >= 100 {
		t.Fatal("one shard carried everything; sharding did not spread the workload")
	}
}

func TestA1StrawmanShowsAnomaliesOpCartDoesNot(t *testing.T) {
	tab := run(t, "A1")
	if num(t, cell(t, tab, 0, "lost adds")) != 0 || num(t, cell(t, tab, 0, "resurrected deletes")) != 0 {
		t.Fatal("op-centric cart shows anomalies")
	}
	if num(t, cell(t, tab, 1, "lost adds")) == 0 {
		t.Fatal("state-merge cart lost nothing; §6.4's anomaly not reproduced")
	}
	if num(t, cell(t, tab, 1, "resurrected deletes")) == 0 {
		t.Fatal("state-merge cart resurrected nothing; §6.1's observed anomaly not reproduced")
	}
}

func TestA2BusBeatsCarUnderOverload(t *testing.T) {
	tab := run(t, "A2")
	// Last three rows are the overload arrival rate: car, coalescing,
	// timer.
	n := len(tab.Rows)
	carP99 := durMS(t, cell(t, tab, n-3, "commit p99"))
	busP99 := durMS(t, cell(t, tab, n-2, "commit p99"))
	if carP99 < busP99*10 {
		t.Fatalf("car p99 %vms vs bus p99 %vms; queueing collapse not visible", carP99, busP99)
	}
}

func TestA3QuorumOverlapEliminatesStaleness(t *testing.T) {
	tab := run(t, "A3")
	for r := range tab.Rows {
		rw := cell(t, tab, r, "R/W")
		stale := num(t, cell(t, tab, r, "stale reads"))
		overlap := rw == "R=2 W=2" || rw == "R=3 W=1" || rw == "R=3 W=3"
		if overlap && stale != 0 {
			t.Fatalf("%s: stale reads despite R+W>N", rw)
		}
		if rw == "R=1 W=1" && stale == 0 {
			t.Fatal("R=1 W=1 saw no staleness under churn; trade invisible")
		}
	}
}

// durMS parses "1.23ms" / "189.20ms" / "4.5µs" / "2.00s" into milliseconds.
func durMS(t *testing.T, s string) float64 {
	t.Helper()
	switch {
	case strings.HasSuffix(s, "µs"):
		return num(t, strings.TrimSuffix(s, "µs")) / 1000
	case strings.HasSuffix(s, "ms"):
		return num(t, strings.TrimSuffix(s, "ms"))
	case strings.HasSuffix(s, "ns"):
		return num(t, strings.TrimSuffix(s, "ns")) / 1e6
	case strings.HasSuffix(s, "s"):
		return num(t, strings.TrimSuffix(s, "s")) * 1000
	default:
		t.Fatalf("unparseable duration %q", s)
		return 0
	}
}

func TestE15RecoveryChangesNothing(t *testing.T) {
	tab := run(t, "E15")
	// Row 0 control, row 1 kill+recover. (E15 itself panics if the arms
	// diverge in ops, apologies, or balance, so a returned table already
	// proves the differential; these checks pin the shape.)
	if got := cell(t, tab, 0, "arm"); got != "control" {
		t.Fatalf("first row is %q, want control", got)
	}
	if got := cell(t, tab, 1, "arm"); got != "kill+recover" {
		t.Fatalf("second row is %q, want kill+recover", got)
	}
	for r := 0; r < 2; r++ {
		if cell(t, tab, r, "converged") != "true" {
			t.Fatalf("row %d did not converge", r)
		}
	}
	if num(t, cell(t, tab, 0, "ops")) != num(t, cell(t, tab, 1, "ops")) {
		t.Fatal("arms accepted different op counts")
	}
	if num(t, cell(t, tab, 0, "apologies")) == 0 {
		t.Fatal("workload produced no apologies; the differential is vacuous")
	}
	recovered := num(t, cell(t, tab, 1, "r1 ops at recovery"))
	killed := num(t, cell(t, tab, 1, "r1 ops at kill"))
	if recovered == 0 || recovered != killed {
		t.Fatalf("disk recovery rebuilt %v ops, %v were durable at the kill", recovered, killed)
	}
}

func TestA4MerkleMovesOnlyDivergence(t *testing.T) {
	tab := run(t, "A4")
	// Rows come in (whole-store, merkle) pairs per divergence level.
	for r := 0; r < len(tab.Rows); r += 2 {
		full := num(t, cell(t, tab, r, "versions moved"))
		mk := num(t, cell(t, tab, r+1, "versions moved"))
		if mk*5 > full {
			t.Fatalf("divergence row %d: merkle moved %v vs whole-store %v; expected >5x savings", r, mk, full)
		}
		if cell(t, tab, r, "rounds to in-sync") == "0" || cell(t, tab, r+1, "rounds to in-sync") == "0" {
			t.Fatal("no repair needed; divergence injection broken")
		}
	}
}
