package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// shardArm is the shard count the sharded arm of shard-aware experiments
// (E14) compares against the unsharded baseline. cmd/quicksand-bench's
// -shards flag overrides it so the scaling curve is reproducible from
// the CLI.
var shardArm = 4

// SetShards overrides the sharded arm's shard count (values below 2 are
// ignored — an arm of one shard is the baseline itself).
func SetShards(n int) {
	if n >= 2 {
		shardArm = n
	}
}

// Shards reports the configured sharded-arm shard count.
func Shards() int { return shardArm }

// E14ShardedHotKey partitions the §6.2 bank across independent replica
// groups and drives it with a hot-key skewed clearing workload: half of
// all checks hit one account, the rest spread over 39 cold ones. The
// same schedule runs unsharded and sharded; both arms must accept the
// same operations and surface the same number of uncovered-check
// apologies — sharding changes where work happens, never what the
// per-key truth is. The per-shard rows expose what the skew does to a
// partitioned deployment: the hot account pins its shard's share of ops
// (the serialized fraction that bounds scaling — BenchmarkLiveSharded
// measures the wall-clock realization) and every apology lands on the
// hot shard, while the other shards stay apology-free and lightly
// loaded.
func E14ShardedHotKey() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Sharded replica groups under a hot-key skewed workload",
		Claim: `§2.3: the applications that scale "have a unique identifier" for their data and are "designed to scale almost linearly" by partitioning those keys across machines; §6.2's replicated check clearing keeps per-account truth under eventual consistency, so carving the accounts into independent replica groups must preserve every per-key outcome — including which guesses turn into apologies.`,
		Run: func(seed int64) *stats.Table {
			const (
				coldAccounts = 39
				clears       = 1200
				hotSeed      = 300_00  // covers 30 of the 10_00¢ checks per replica guess
				coldSeed     = 1000_00 // covers any cold account's worst-case draw
				amount       = 10_00
			)
			tab := stats.NewTable(
				fmt.Sprintf("E14 — unsharded vs %d shards, %d checks, 50%% on one hot account", shardArm, clears),
				"3 replicas per group on the simulator; checks clear on local guesses with no gossip until quiesce, so concurrent clears of the hot account overdraw it; apologies are the uncovered checks discovered at convergence. op share is each shard's fraction of all accepted ops — the serialized fraction that bounds live scaling.",
				"shards", "shard", "ops", "op share", "apologies", "fold steps")

			type arm struct {
				totalOps  int
				apologies int
			}
			var arms []arm
			for _, shards := range []int{1, shardArm} {
				rng := rand.New(rand.NewSource(seed))
				s := sim.New(seed)
				c := core.New[*bank.Accounts](bank.App{}, []core.Rule[*bank.Accounts]{bank.NoOverdraft()},
					core.WithSim(s), core.WithReplicas(3), core.WithShards(shards))
				ctx := context.Background()

				account := func(i int) string {
					if i < 0 {
						return "acct-hot"
					}
					return fmt.Sprintf("acct-c%02d", i)
				}
				// Seed every account and converge, so each replica's later
				// guesses start from the same funded truth.
				deposit := func(acct string, cents int64) {
					if _, err := c.Submit(ctx, 0, core.NewOp(bank.KindDeposit, acct, cents)); err != nil {
						panic(fmt.Sprintf("E14 deposit: %v", err))
					}
				}
				deposit(account(-1), hotSeed)
				for i := 0; i < coldAccounts; i++ {
					deposit(account(i), coldSeed)
				}
				for i := 0; i < 2*3 && !c.Converged(); i++ {
					c.GossipRound()
					s.Run()
				}
				// The skewed clearing storm: no gossip while it runs, so
				// each replica guesses from what it alone has admitted.
				for i := 0; i < clears; i++ {
					acct := account(rng.Intn(coldAccounts))
					if rng.Intn(2) == 0 {
						acct = account(-1)
					}
					if _, err := c.Submit(ctx, i%3, core.NewOp(bank.KindClear, acct, amount)); err != nil {
						panic(fmt.Sprintf("E14 clear: %v", err))
					}
				}
				for i := 0; i < 4*3 && !c.Converged(); i++ {
					c.GossipRound()
					s.Run()
				}
				if !c.Converged() {
					panic("E14: cluster did not converge")
				}

				apologiesByShard := make([]int, c.Shards())
				for _, a := range c.Apologies.Human() {
					apologiesByShard[c.ShardOf(a.Key)]++
				}
				var a arm
				opsByShard := make([]int, c.Shards())
				for sh := 0; sh < c.Shards(); sh++ {
					opsByShard[sh] = c.ShardReplica(sh, 0).OpCount()
					a.totalOps += opsByShard[sh]
					a.apologies += apologiesByShard[sh]
				}
				for sh := 0; sh < c.Shards(); sh++ {
					tab.AddRow(fmt.Sprint(c.Shards()), fmt.Sprint(sh),
						fmt.Sprint(opsByShard[sh]),
						fmt.Sprintf("%.0f%%", 100*float64(opsByShard[sh])/float64(a.totalOps)),
						fmt.Sprint(apologiesByShard[sh]),
						fmt.Sprint(c.ShardMetrics(sh).FoldSteps.Value()))
				}
				arms = append(arms, a)
			}
			if arms[0].totalOps != arms[1].totalOps || arms[0].apologies != arms[1].apologies {
				panic(fmt.Sprintf("E14: arms diverged — ops %d vs %d, apologies %d vs %d",
					arms[0].totalOps, arms[1].totalOps, arms[0].apologies, arms[1].apologies))
			}
			return tab
		},
	}
}
