package experiment

import (
	"fmt"
	"time"

	"repro/internal/logship"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E3LogShipLatency reproduces §4.1's latency argument: synchronous remote
// commit pays the WAN round trip on every transaction; asynchronous
// shipping keeps commit at local cost regardless of distance.
func E3LogShipLatency() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Log shipping: commit latency, synchronous vs asynchronous, over distance",
		Claim: `§4.1: "the log shipping algorithm would need to stall the response to the commit request at the primary until the primary knows the backup has received the log. This delay is unacceptable in most installations."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E3 — commit latency vs one-way WAN latency",
				"300 commits per cell; async ships in the background, sync stalls the user.",
				"WAN one-way", "mode", "commit p50", "commit p99", "lag at quiesce")
			const commits = 300
			for _, wan := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond} {
				for _, syncMode := range []bool{false, true} {
					s := sim.New(seed)
					sys := logship.New(s, logship.Config{
						Sync:         syncMode,
						WANLatency:   wan,
						ShipInterval: 10 * time.Millisecond,
					})
					done := 0
					workload.PoissonLoop(s, 2*time.Millisecond, commits, func(i int) {
						sys.Commit(fmt.Sprintf("k%05d", i), "v", func(ok bool) {
							if ok {
								done++
							}
						})
					})
					s.Run()
					if done != commits {
						panic(fmt.Sprintf("E3: %d/%d commits acked", done, commits))
					}
					mode := "async"
					if syncMode {
						mode = "sync"
					}
					tab.AddRow(wan.String(), mode,
						stats.Dur(sys.M.CommitLat.P50()), stats.Dur(sys.M.CommitLat.P99()),
						fmt.Sprint(sys.BackupLagTxns()))
				}
			}
			return tab
		},
	}
}

// E4LogShipLoss reproduces §4.2: the window of acked-but-unshipped work
// that a takeover loses is the shipping lag times the throughput.
func E4LogShipLoss() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Log shipping: committed work lost at takeover vs shipping lag",
		Claim: `§4.2: "a failure of the primary during this window will lock the work inside the primary ... the backup will move ahead without knowledge of the locked up work." §4.1: "when a fault DOES occur, some recent transactions are lost as the backup takes-over."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E4 — acked commits lost at takeover",
				"Poisson commits (mean 5ms) for 2s, crash at 1.5s; mean of 5 crash phases per cell. The naive window estimate is rate × (lag/2 + WAN); the shape (loss ∝ lag) is the claim.",
				"ship every", "mode", "mean lost/takeover", "naive estimate", "audit errors")
			rate := 5 * time.Millisecond
			for _, lag := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond, 500 * time.Millisecond} {
				var lost, audit int64
				const trials = 5
				for trial := 0; trial < trials; trial++ {
					s := sim.New(seed + int64(trial))
					sys := logship.New(s, logship.Config{
						WANLatency:   5 * time.Millisecond,
						ShipInterval: lag,
						DetectDelay:  time.Millisecond,
					})
					workload.PoissonLoop(s, rate, 400, func(i int) {
						sys.Commit(fmt.Sprintf("k%05d", i), "v", func(bool) {})
					})
					s.At(sim.Time(1500*time.Millisecond), func() { sys.CrashPrimary() })
					s.RunUntil(sim.Time(3 * time.Second))
					lost += sys.M.LostAtTakeover.Value()
					audit += int64(sys.Audit())
				}
				expected := float64(lag/2+5*time.Millisecond) / float64(rate)
				tab.AddRow(lag.String(), "async",
					stats.F(float64(lost)/trials, 1),
					stats.F(expected, 1),
					fmt.Sprint(audit))
			}
			// The sync row: transparency has no loss window at all.
			s := sim.New(seed)
			sys := logship.New(s, logship.Config{Sync: true, WANLatency: 5 * time.Millisecond, DetectDelay: time.Millisecond})
			workload.PoissonLoop(s, rate, 400, func(i int) {
				sys.Commit(fmt.Sprintf("k%05d", i), "v", func(bool) {})
			})
			s.At(sim.Time(1500*time.Millisecond), func() { sys.CrashPrimary() })
			s.RunUntil(sim.Time(3 * time.Second))
			tab.AddRow("-", "sync", fmt.Sprint(sys.M.LostAtTakeover.Value()), "0.0", fmt.Sprint(sys.Audit()))
			return tab
		},
	}
}
