package experiment

import (
	"fmt"

	"repro/internal/dynamo"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// A4MerkleAntiEntropy compares whole-store anti-entropy against
// Merkle-tree anti-entropy: same divergence, same convergence, very
// different transfer bills.
func A4MerkleAntiEntropy() Experiment {
	return Experiment{
		ID:    "A4",
		Title: "Ablation: anti-entropy transfer cost — whole-store exchange vs Merkle trees",
		Claim: `§7.6: "as disconnected replicas work independently, they accumulate operations ... when the work flows together, a new, more accurate answer is created." The Dynamo design the paper builds on does this flowing with Merkle trees so only divergent ranges travel.`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("A4 — 400 keys in sync, D keys silently lost on one replica, repair cost to reconverge",
				"5 nodes; versions moved counts every record on the wire; digests counts Merkle hashes compared.",
				"divergent keys", "protocol", "rounds to in-sync", "versions moved", "digests compared")
			for _, divergent := range []int{1, 10, 50} {
				for _, useMerkle := range []bool{false, true} {
					s := sim.New(seed)
					cl := dynamo.New(s, dynamo.Config{
						Nodes: 5, N: 3, R: 2, W: 3,
						MerkleSync: useMerkle,
					})
					// Populate and fully converge.
					for i := 0; i < 400; i++ {
						cl.Put(fmt.Sprintf("key-%04d", i), "v", vclock.New(), "loader", func(bool) {})
					}
					s.Run()
					for r := 0; r < 6 && !cl.InSync(); r++ {
						cl.AntiEntropyRound()
						s.Run()
					}
					if !cl.InSync() {
						panic("A4: baseline never converged")
					}
					// Silent divergence: one replica loses D keys.
					victim := simnet.NodeID("n0")
					for i := 0; i < divergent; i++ {
						cl.ForgetKey(victim, fmt.Sprintf("key-%04d", i))
					}
					cl.M.SyncVersions = stats.Counter{}
					cl.M.SyncDigests = stats.Counter{}
					rounds := 0
					for ; rounds < 10 && !cl.InSync(); rounds++ {
						cl.AntiEntropyRound()
						s.Run()
					}
					if !cl.InSync() {
						panic("A4: repair never converged")
					}
					name := "whole-store"
					if useMerkle {
						name = "merkle"
					}
					tab.AddRow(fmt.Sprint(divergent), name, fmt.Sprint(rounds),
						fmt.Sprint(cl.M.SyncVersions.Value()),
						fmt.Sprint(cl.M.SyncDigests.Value()))
				}
			}
			return tab
		},
	}
}
