package experiment

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tandem"
)

// tandemKV mirrors the write driver used by the tandem tests: one
// transaction with the given writes, then commit.
func tandemTxn(sys *tandem.System, keys []string, val string, done func(committed bool)) {
	t := sys.Begin()
	var step func(i int)
	step = func(i int) {
		if i == len(keys) {
			t.Commit(done)
			return
		}
		t.Write(keys[i], val, func(ok bool) {
			if !ok {
				t.Abort()
				done(false)
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

// E1TandemCheckpointCost reproduces §3.2's performance claim as a sweep
// over writes per transaction.
func E1TandemCheckpointCost() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Tandem DP1 (1984) vs DP2 (1986): checkpoint cost per WRITE",
		Claim: `§3.2: "A WRITE to DP2 could be performed without checkpointing to the backup. This was a dramatic savings in CPU cost and an even more dramatic savings in latency."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E1 — per-WRITE checkpointing vs log-based checkpointing",
				"DP1 checkpoints each WRITE synchronously; DP2 acks immediately and group-flushes the log.",
				"mode", "writes/txn", "write p50", "write p99", "txn mean", "ckpt msgs/txn", "write-ckpts/txn", "bus msgs/txn")
			const txns = 400
			for _, mode := range []tandem.Mode{tandem.DP1, tandem.DP2} {
				for _, writes := range []int{1, 2, 4, 8} {
					s := sim.New(seed)
					sys := tandem.New(s, tandem.Config{Mode: mode, NumDP: 4})
					committed := 0
					var launch func(i int)
					launch = func(i int) {
						if i == txns {
							return
						}
						keys := make([]string, writes)
						for w := range keys {
							keys[w] = fmt.Sprintf("k-%d-%d", i, w)
						}
						tandemTxn(sys, keys, "v", func(ok bool) {
							if ok {
								committed++
							}
							launch(i + 1)
						})
					}
					launch(0)
					s.Run()
					if committed != txns {
						panic(fmt.Sprintf("E1: %d/%d committed", committed, txns))
					}
					m := &sys.M
					net := sys.Net().Counters()
					tab.AddRow(mode.String(), fmt.Sprint(writes),
						stats.Dur(m.WriteLat.P50()), stats.Dur(m.WriteLat.P99()),
						stats.Dur(m.TxnLat.Mean()),
						stats.F(float64(m.CheckpointMsgs.Value())/float64(txns), 2),
						stats.F(float64(m.WriteCkptMsgs.Value())/float64(txns), 2),
						stats.F(float64(net.Sent)/float64(txns), 1))
				}
			}
			return tab
		},
	}
}

// E2TandemFailover reproduces §3.2–3.3's failover semantics under
// repeated primary crashes.
func E2TandemFailover() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Tandem failover semantics: aborted in-flight work vs lost committed work",
		Claim: `§3.2: "the system automatically aborts any relevant in-flight transactions when the primary DP fails, correctness is preserved" — committed work must never be lost; §3.3 calls the extra aborts "an acceptable erosion of behavior."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E2 — primary DP crashes during load",
				"Crash a primary every 20 txns, restart its peer 30ms later; audit committed data at the end.",
				"mode", "attempted", "committed", "failover aborts", "other aborts", "committed lost")
			const txns = 300
			for _, mode := range []tandem.Mode{tandem.DP1, tandem.DP2} {
				s := sim.New(seed)
				sys := tandem.New(s, tandem.Config{Mode: mode, NumDP: 2})
				committed := map[string]string{}
				attempted := 0
				var launch func(i int)
				launch = func(i int) {
					if i == txns {
						return
					}
					attempted++
					key, val := fmt.Sprintf("key-%04d", i), fmt.Sprintf("v%d", i)
					tandemTxn(sys, []string{key}, val, func(ok bool) {
						if ok {
							committed[key] = val
						}
						launch(i + 1)
					})
					if i%20 == 7 {
						pair := (i / 20) % 2
						s.After(0, func() { sys.CrashPrimary(pair) })
						s.After(30*time.Millisecond, func() { sys.RestartBackup(pair) })
					}
				}
				launch(0)
				s.Run()

				lost := 0
				for key, want := range committed {
					k, w := key, want
					sys.Read(k, func(v string, ok bool) {
						if !ok || v != w {
							lost++
						}
					})
				}
				s.Run()
				m := &sys.M
				other := m.Aborts.Value() - m.FailoverAborts.Value()
				tab.AddRow(mode.String(), fmt.Sprint(attempted), fmt.Sprint(len(committed)),
					fmt.Sprint(m.FailoverAborts.Value()), fmt.Sprint(other), fmt.Sprint(lost))
			}
			return tab
		},
	}
}
