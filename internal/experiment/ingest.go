package experiment

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/uniq"
)

// E16BatchedIngest is the differential acceptance experiment for the
// batched single-writer ingest pipeline (WithIngestBatch): the same
// clearing storm — bulk batches of checks offered at each replica with
// no gossip until quiesce, so concurrent clears of a hot account
// overdraw it — runs once on the per-op submit path and once through the
// pipeline at several batch sizes. Batching changes how many times the
// replica lock is taken and how many fold/journal/commit steps are paid,
// never what the business observes: every arm must accept the same
// operations, decline the same operations, surface the same apologies,
// and derive the same final balances.
func E16BatchedIngest() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Batched single-writer ingest vs per-op submits",
		Claim: `§3.2: transactions board a shared flush "much like many people rideshare on a bus" — amortization is an economics choice, invisible to correctness. Applied to the whole ingest path (one lock acquisition, one fold advance, one journal append per batch), the guesses made, apologies owed, and states derived must be identical to per-operation processing.`,
		Run: func(seed int64) *stats.Table {
			const (
				coldAccounts = 19
				clears       = 900
				batchPerRep  = 100 // ops per SubmitBatch call in the storm
				hotSeed      = 300_00
				coldSeed     = 1000_00
				amount       = 10_00
			)
			tab := stats.NewTable(
				fmt.Sprintf("E16 — per-op vs pipeline ingest, %d checks, 50%% on one hot account", clears),
				"3 replicas on the simulator; checks clear on local guesses via bulk SubmitBatch calls with no gossip until quiesce, so concurrent clears overdraw the hot account; apologies are the uncovered checks found at convergence. Identical accepted/declined/apology/balance columns across arms are the observational-equivalence claim; fold steps may differ only in bookkeeping, not outcomes.",
				"ingest", "accepted", "declined", "apologies", "hot balance", "fold steps")

			type arm struct {
				accepted, declined int64
				apologies          int
				hotBalance         int64
			}
			var arms []arm
			labels := []string{"per-op", "batch=16", "batch=64", "batch=1024"}
			for _, batch := range []int{0, 16, 64, 1024} {
				rng := rand.New(rand.NewSource(seed))
				s := sim.New(seed)
				opts := []core.Option{core.WithSim(s), core.WithReplicas(3)}
				if batch > 0 {
					opts = append(opts, core.WithIngestBatch(batch))
				}
				c := core.New[*bank.Accounts](bank.App{}, []core.Rule[*bank.Accounts]{bank.NoOverdraft()}, opts...)
				ctx := context.Background()

				account := func(i int) string {
					if i < 0 {
						return "acct-hot"
					}
					return fmt.Sprintf("acct-c%02d", i)
				}
				deposit := func(acct string, cents int64) {
					if _, err := c.Submit(ctx, 0, core.NewOp(bank.KindDeposit, acct, cents)); err != nil {
						panic(fmt.Sprintf("E16 deposit: %v", err))
					}
				}
				deposit(account(-1), hotSeed)
				for i := 0; i < coldAccounts; i++ {
					deposit(account(i), coldSeed)
				}
				for i := 0; i < 2*3 && !c.Converged(); i++ {
					c.GossipRound()
					s.Run()
				}
				// The storm: bulk batches round-robined across replicas, no
				// gossip while it runs. Uniquified IDs keep the schedule
				// identical across arms; the rng draws the same account
				// sequence because the seed is shared.
				var ops []core.Op
				flush := func(rep int) {
					if len(ops) == 0 {
						return
					}
					if _, err := c.SubmitBatch(ctx, rep, ops); err != nil {
						panic(fmt.Sprintf("E16 storm: %v", err))
					}
					ops = nil
				}
				for i := 0; i < clears; i++ {
					acct := account(rng.Intn(coldAccounts))
					if rng.Intn(2) == 0 {
						acct = account(-1)
					}
					op := core.NewOp(bank.KindClear, acct, amount)
					op.ID = uniq.CheckNumber("e16", acct, i)
					ops = append(ops, op)
					if len(ops) == batchPerRep {
						flush((i / batchPerRep) % 3)
					}
				}
				flush(0)
				for i := 0; i < 4*3 && !c.Converged(); i++ {
					c.GossipRound()
					s.Run()
				}
				if !c.Converged() {
					panic("E16: cluster did not converge")
				}
				a := arm{
					accepted:   c.M.Accepted.Value(),
					declined:   c.M.Declined.Value(),
					apologies:  c.Apologies.Total(),
					hotBalance: c.Replica(0).State().Balance(account(-1)),
				}
				arms = append(arms, a)
				tab.AddRow(labels[len(arms)-1],
					fmt.Sprint(a.accepted), fmt.Sprint(a.declined), fmt.Sprint(a.apologies),
					fmt.Sprintf("%d.%02d", a.hotBalance/100, abs64(a.hotBalance%100)),
					fmt.Sprint(c.M.FoldSteps.Value()))
			}
			for i := 1; i < len(arms); i++ {
				if arms[i] != arms[0] {
					panic(fmt.Sprintf("E16: arm %q diverged from per-op: %+v vs %+v", labels[i], arms[i], arms[0]))
				}
			}
			return tab
		},
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
