package experiment

import (
	"fmt"
	"time"

	"repro/internal/dynamo"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// A3QuorumSweep measures the R/W quorum trade on the Dynamo store: R+W>N
// guarantees reads see the latest acked write; R+W<=N trades staleness for
// latency and availability.
func A3QuorumSweep() Experiment {
	return Experiment{
		ID:    "A3",
		Title: "Ablation: Dynamo R/W quorum sweep — latency, staleness, availability",
		Claim: `§6.1 (via the Dynamo design the paper builds on): choosing availability over consistency is a per-operation quorum choice; "Dynamo always accepts a PUT ... even if this may result in an inconsistent GET later."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("A3 — N=3 over 5 nodes, writer+reader on one key, one replica flapping",
				"200 write/read rounds; a read is stale when it misses the just-acked write.",
				"R/W", "put p50", "get p50", "stale reads", "failed ops")
			configs := []struct{ r, w int }{{1, 1}, {1, 3}, {2, 2}, {3, 1}, {3, 3}}
			for _, q := range configs {
				s := sim.New(seed)
				cl := dynamo.New(s, dynamo.Config{Nodes: 5, N: 3, R: q.r, W: q.w})

				// One node flaps throughout the run.
				flapping := true
				stopFlap := s.Every(40*time.Millisecond, func() {
					flapping = !flapping
					cl.SetUp("n0", flapping)
				})

				stale, failed := 0, 0
				// Rounds are strictly sequential (write, then read, then
				// pause) so a "stale" read really measures quorum
				// overlap, not overlap between rounds. The writer tracks
				// its own causal history so a stale read can never
				// regress its clock (dynamo.NextClock).
				var last vclock.VC
				ctx := vclock.New()
				round := 0
				var loop func()
				loop = func() {
					round++
					if round > 200 {
						return
					}
					next := func() { s.After(5*time.Millisecond, loop) }
					val := fmt.Sprintf("v%04d", round)
					use := ctx.Merge(last)
					last = dynamo.NextClock(use, "writer")
					cl.Put("hot", val, use, "writer", func(ok bool) {
						if !ok {
							failed++
							next()
							return
						}
						cl.Get("hot", func(versions []dynamo.Version, c vclock.VC, ok bool) {
							if !ok {
								failed++
								next()
								return
							}
							ctx = c
							found := false
							for _, v := range versions {
								if v.Value == val {
									found = true
								}
							}
							if !found {
								stale++
							}
							next()
						})
					})
				}
				loop()
				s.RunUntil(sim.Time(5 * time.Second))
				stopFlap()
				cl.SetUp("n0", true)
				s.Run()
				tab.AddRow(fmt.Sprintf("R=%d W=%d", q.r, q.w),
					stats.Dur(cl.M.PutLat.P50()), stats.Dur(cl.M.GetLat.P50()),
					fmt.Sprint(stale), fmt.Sprint(failed))
			}
			return tab
		},
	}
}
