package experiment

import (
	"fmt"
	"math"
	"time"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// seedAccounts deposits opening balances everywhere and converges.
func seedAccounts(s *sim.Sim, b *bank.Bank, accounts int, cents int64) {
	for a := 0; a < accounts; a++ {
		b.Deposit(0, fmt.Sprintf("acct-%04d", a), cents, func(core.Result) {})
	}
	s.Run()
	for i := 0; i < b.C.Replicas()+2; i++ {
		b.C.GossipRound()
		s.Run()
	}
}

// E6BankClearing reproduces §6.2's replicated check clearing: commutative
// debits and credits, convergence independent of order, and the rare
// overdraft as a quantified business risk.
func E6BankClearing() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Replicated check clearing: convergence and overdraft risk vs gossip lag",
		Claim: `§6.2: "There is a small (but present) possibility that multiple checks presented to different replicas will cause an overdraft that is not detected in time to bounce one of the checks"; §7.6: "replicas that have seen the same work should see the same result, independent of the order in which the work has arrived."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E6 — checks cleared at independent replicas",
				"20 accounts × $100 opening, salary deposits every 5th event; 600 events (checks lognormal ≈ $30 median) over 3s; overdrafts bounce automatically.",
				"replicas", "gossip every", "cleared", "declined", "bounce fees", "bounce rate", "convergence lag", "balances equal")
			for _, replicas := range []int{2, 3, 5} {
				for _, gossip := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
					s := sim.New(seed)
					b := bank.New(30_00, core.WithSim(s), core.WithReplicas(replicas))
					seedAccounts(s, b, 20, 100_00)

					r := s.Rand()
					keys := workload.UniformKeys(r, "acct", 20)
					amounts := workload.LogNormalCents(r, math.Log(30_00), 0.8)
					cleared, declined := 0, 0
					stop := b.C.StartGossip(gossip)
					// Once the last check lands, poll until every replica
					// holds the same ledger: the configuration's
					// time-to-consistency.
					var lastAcceptedAt, convergedAt sim.Time
					const total = 600
					probe := func() {
						var poll func()
						poll = func() {
							if b.C.Converged() {
								convergedAt = s.Now()
								return
							}
							if s.Now() < lastAcceptedAt.Add(time.Minute) {
								s.After(gossip/4, poll)
							}
						}
						poll()
					}
					workload.PoissonLoop(s, 5*time.Millisecond, total, func(i int) {
						acct := keys()
						done := func(res core.Result) {
							if res.Accepted {
								cleared++
								lastAcceptedAt = s.Now()
							} else {
								declined++
							}
							if i == total-1 {
								probe()
							}
						}
						if i%5 == 0 {
							// Salary day: replenishment keeps the checks
							// flowing all run long.
							b.Deposit(i%replicas, acct, 2*amounts(), done)
							return
						}
						b.ClearCheck(i%replicas, acct, i+1000, amounts(), policy.AlwaysAsync(), done)
					})
					s.RunUntil(sim.Time(10 * time.Second))
					stop()
					s.Run()
					for i := 0; i < replicas+2 && !b.C.Converged(); i++ {
						b.C.GossipRound()
						s.Run()
					}
					if !b.C.Converged() {
						panic("E6: never converged")
					}
					lag := convergedAt.Sub(lastAcceptedAt)
					if convergedAt == 0 {
						lag = -1 // converged only after the forced rounds
					}
					equal := true
					base := b.C.Replica(0).State()
					for rep := 1; rep < replicas; rep++ {
						st := b.C.Replica(rep).State()
						for acct, bal := range base.Bal {
							if st.Bal[acct] != bal {
								equal = false
							}
						}
					}
					tab.AddRow(fmt.Sprint(replicas), gossip.String(),
						fmt.Sprint(cleared), fmt.Sprint(declined),
						fmt.Sprint(b.Bounced.Value()),
						stats.Pct(stats.Ratio(b.Bounced.Value(), int64(cleared))),
						lag.String(), fmt.Sprint(equal))
				}
			}
			return tab
		},
	}
}

// E10RiskPolicy reproduces §5.5/§5.8: slide the sync threshold and watch
// latency trade against dollar exposure.
func E10RiskPolicy() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Risk policy sweep: the $10,000-check rule as a latency/exposure dial",
		Claim: `§5.5: "Locally clear a check if the face value is less than $10,000. If it exceeds $10,000, double check with all the replicas to make sure it clears." §5.8: synchronous checkpoints OR apologies.`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E10 — clearing latency and at-risk dollars vs sync threshold",
				"3 replicas; 400 checks, lognormal amounts (median ≈ $2,000, heavy tail); gossip every 50ms.",
				"sync threshold", "%sync", "clear p50", "clear p99", "guessed $ exposure", "bounce fees")
			thresholds := []struct {
				name  string
				limit int64
			}{
				{"$0 (all sync)", 0},
				{"$1,000", 1_000_00},
				{"$10,000", 10_000_00},
				{"$100,000", 100_000_00},
				{"∞ (all async)", math.MaxInt64},
			}
			for _, th := range thresholds {
				s := sim.New(seed)
				b := bank.New(30_00, core.WithSim(s), core.WithReplicas(3))
				seedAccounts(s, b, 20, 50_000_00)
				r := s.Rand()
				keys := workload.UniformKeys(r, "acct", 20)
				amounts := workload.LogNormalCents(r, math.Log(2_000_00), 1.2)
				pol := policy.Threshold(th.limit)
				var syncCount, total int
				var exposure int64
				stop := b.C.StartGossip(50 * time.Millisecond)
				workload.PoissonLoop(s, 10*time.Millisecond, 400, func(i int) {
					amt := amounts()
					b.ClearCheck(i%3, keys(), i+1, amt, pol, func(res core.Result) {
						if !res.Accepted {
							return
						}
						total++
						if res.Decision == policy.Sync {
							syncCount++
						} else {
							exposure += amt
						}
					})
				})
				s.RunUntil(sim.Time(6 * time.Second))
				stop()
				s.Run()
				// Combined latency view across both paths.
				var merged stats.LatHist
				merged.Merge(&b.C.M.AsyncLat)
				merged.Merge(&b.C.M.SyncLat)
				tab.AddRow(th.name,
					stats.Pct(stats.Ratio(int64(syncCount), int64(total))),
					stats.Dur(merged.P50()), stats.Dur(merged.P99()),
					fmt.Sprintf("$%.0f", float64(exposure)/100),
					fmt.Sprint(b.Bounced.Value()))
			}
			return tab
		},
	}
}
