package experiment

import (
	"fmt"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/uniq"
)

// E11Idempotence reproduces §2.1/§5.4: with at-least-once retries, only a
// uniquifier-based dedup keeps the business effect at exactly once.
func E11Idempotence() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Retries and uniquifiers: duplicate business effects with and without dedup",
		Claim: `§2.1: "the fault tolerant server system had better make this work idempotent or the retries would occasionally result in duplicative work." §5.4: "One book ordered online should not (very often) result in two books delivered to the customer."`,
		Run: func(seed int64) *stats.Table {
			tab := stats.NewTable("E11 — 300 orders through a lossy network with client retries",
				"20% message loss each way; clients retry every 50ms until acknowledged.",
				"loss", "dedup", "orders", "requests sent", "books shipped", "duplicate shipments")
			for _, loss := range []float64{0.05, 0.2, 0.4} {
				for _, dedup := range []bool{false, true} {
					s := sim.New(seed)
					net := simnet.New(s,
						simnet.WithLatency(simnet.Fixed(2*time.Millisecond)),
						simnet.WithLoss(loss))
					server := rpc.NewEndpoint(net, "server", 20*time.Millisecond)
					client := rpc.NewEndpoint(net, "client", 20*time.Millisecond)

					shipped := 0
					seen := uniq.NewDedup()
					server.Handle("order", func(_ simnet.NodeID, req any, reply func(any)) {
						id := req.(uniq.ID)
						if !dedup || seen.Record(id) {
							shipped++ // a book leaves the warehouse
						}
						reply(true)
					})

					const orders = 300
					requests := 0
					acked := 0
					for i := 0; i < orders; i++ {
						id := uniq.ContentID([]byte(fmt.Sprintf("order-%d", i)))
						var send func()
						send = func() {
							requests++
							client.Call("server", "order", id, func(_ any, ok bool) {
								if ok {
									acked++
									return
								}
								send() // §2.1: "a request is issued and if a timer expires, it is reissued"
							})
						}
						send()
					}
					s.Run()
					if acked != orders {
						panic(fmt.Sprintf("E11: %d/%d orders acked", acked, orders))
					}
					dupes := shipped - orders
					tab.AddRow(stats.Pct(loss), fmt.Sprint(dedup),
						fmt.Sprint(orders), fmt.Sprint(requests),
						fmt.Sprint(shipped), fmt.Sprint(dupes))
				}
			}
			return tab
		},
	}
}
