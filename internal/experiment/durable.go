package experiment

import (
	"context"
	"fmt"
	"os"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E15DurableRecovery kills a durable replica in the middle of the §6.2
// check-clearing workload, recovers it from disk alone, and compares the
// whole run — accepted operations, apology count, final balances —
// against a never-crashed control arm driven by the identical schedule.
//
// The schedule is built from bursts: within a burst every live replica
// clears checks on its local guess with no gossip at all (concurrent
// clears on the hot account overdraw it — §5.2's probabilistic
// bookkeeping at work, identically in both arms), and between bursts the
// group converges fully. Replica r1 is killed after the second burst —
// its RAM, fold checkpoint, and gossip journal destroyed — and the rest
// of the workload runs on the survivors in both arms, so the only
// difference between the arms is the crash itself. r1 then recovers
// from snapshot + journal replay and rejoins gossip.
//
// The claim checked: a crash-and-recovery cycle changes *nothing* about
// the business outcome. Ops, apologies, and every per-account balance
// must be byte-identical across arms, and the apologies that do appear
// are exactly the in-burst concurrent overdrafts the paper predicts —
// not artifacts of the crash.
func E15DurableRecovery() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Durable store: kill a replica mid-workload, recover from disk, nothing changes",
		Claim: `§3.2: the log "was also used to describe the changes that should be known to the backup" — checkpointing and logging are one stream, so a process that loses its memory can be rebuilt from the log it already wrote; §5.1: on restart you "examine the work in the tail of the log and determine what the heck to do"; §7.6 requires the recovered replica, once the memories flow back together, to reach the same answer as if it had never crashed.`,
		Run: func(seed int64) *stats.Table {
			const (
				hot     = "acct-hot"
				hotSeed = 100_00
				amount  = 10_00
			)
			tab := stats.NewTable(
				"E15 — never-crashed control vs kill+recover of r1 after burst 2",
				"3 replicas on the simulator, disk store per replica (inline fsync), snapshot every 16 ops. Bursts clear checks on local guesses with no gossip (concurrent clears overdraw the hot account), full convergence between bursts. r1 ops at recovery counts what snapshot+journal replay rebuilt before any gossip.",
				"arm", "ops", "r1 ops at kill", "r1 ops at recovery", "apologies", "hot balance", "converged")

			type armResult struct {
				ops       int
				apologies int
				balance   int64
			}
			var arms []armResult
			for _, crash := range []bool{false, true} {
				dir, err := os.MkdirTemp("", "quicksand-e15-*")
				if err != nil {
					panic(fmt.Sprintf("E15: %v", err))
				}
				s := sim.New(seed)
				c := core.New[*bank.Accounts](bank.App{}, []core.Rule[*bank.Accounts]{bank.NoOverdraft()},
					core.WithSim(s), core.WithReplicas(3),
					core.WithDurability(dir), core.WithSnapshotEvery(16))
				ctx := context.Background()

				submit := func(rep int, kind string, cents int64) {
					if _, err := c.Submit(ctx, rep, core.NewOp(kind, hot, cents)); err != nil {
						panic(fmt.Sprintf("E15 submit: %v", err))
					}
				}
				gossip := func(rounds int) {
					for i := 0; i < rounds; i++ {
						c.GossipRound()
						s.Run()
					}
				}

				// Fund the hot account and make the truth common knowledge.
				submit(0, bank.KindDeposit, hotSeed)
				gossip(2)

				// Burst 1: every replica clears 3 on its guess of $100 — all
				// covered. Burst 2: every replica sees $10 and clears 1; the
				// merged truth is overdrawn by the two extra clears.
				for burst := 0; burst < 2; burst++ {
					for rep := 0; rep < 3; rep++ {
						for k := 0; k < 3; k++ {
							submit(rep, bank.KindClear, amount)
						}
					}
					gossip(2)
				}

				killOps := 0
				if crash {
					killOps = c.Replica(1).OpCount()
					c.Kill(1)
				}

				// Bursts 3 and 4 run on the survivors — the same schedule in
				// BOTH arms, so the arms differ only by the crash: deposits
				// refill the account, then concurrent clears overdraw it again.
				for _, rep := range []int{0, 2} {
					submit(rep, bank.KindDeposit, 30_00)
				}
				gossip(2)
				for burst := 0; burst < 2; burst++ {
					for _, rep := range []int{0, 2} {
						for k := 0; k < 2; k++ {
							submit(rep, bank.KindClear, amount)
						}
					}
					gossip(2)
				}

				recoveredOps := 0
				if crash {
					if err := c.Recover(ctx, 1); err != nil {
						panic(fmt.Sprintf("E15 recover: %v", err))
					}
					recoveredOps = c.Replica(1).OpCount()
					if recoveredOps != killOps {
						panic(fmt.Sprintf("E15: disk rebuilt %d ops, %d were durable at the kill", recoveredOps, killOps))
					}
				}
				gossip(4)
				if !c.Converged() {
					panic("E15: cluster did not converge")
				}

				res := armResult{
					ops:       c.Replica(1).OpCount(),
					apologies: len(c.Apologies.Human()) + len(c.Apologies.Automated()),
					balance:   c.Replica(1).State().Balance(hot),
				}
				arms = append(arms, res)
				arm, killCol, recCol := "control", "-", "-"
				if crash {
					arm = "kill+recover"
					killCol, recCol = fmt.Sprint(killOps), fmt.Sprint(recoveredOps)
				}
				tab.AddRow(arm, fmt.Sprint(res.ops), killCol, recCol,
					fmt.Sprint(res.apologies), fmt.Sprintf("%d¢", res.balance), fmt.Sprint(c.Converged()))
				c.Close()
				os.RemoveAll(dir)
			}
			if arms[0] != arms[1] {
				panic(fmt.Sprintf("E15: arms diverged — control %+v, crashed %+v", arms[0], arms[1]))
			}
			if arms[0].apologies == 0 {
				panic("E15: workload produced no apologies; the differential is vacuous")
			}
			return tab
		},
	}
}
