// Package experiment holds the derived evaluation suite of this
// reproduction. Building on Quicksand has no tables or figures, so each
// experiment here operationalizes one falsifiable claim from the paper's
// prose (quoted in Claim) and regenerates one table. The bench harness at
// the repository root and cmd/quicksand-bench both run these.
package experiment

import (
	"fmt"

	"repro/internal/stats"
)

// Experiment is one runnable claim-check.
type Experiment struct {
	ID    string // E1..E16, A1..A4
	Title string
	Claim string // the paper text this experiment tests, with section
	Run   func(seed int64) *stats.Table
}

// All returns the full suite in presentation order.
func All() []Experiment {
	return []Experiment{
		E1TandemCheckpointCost(),
		E2TandemFailover(),
		E3LogShipLatency(),
		E4LogShipLoss(),
		E5CartReconciliation(),
		E6BankClearing(),
		E7Escrow(),
		E8Allocation(),
		E9Seats(),
		E10RiskPolicy(),
		E11Idempotence(),
		E12CAPAvailability(),
		E13IncrementalFold(),
		E14ShardedHotKey(),
		E15DurableRecovery(),
		E16BatchedIngest(),
		A1OpVsStateMerge(),
		A2GroupCommit(),
		A3QuorumSweep(),
		A4MerkleAntiEntropy(),
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q", id)
}

// tableT aliases the stats table for test helpers.
type tableT = stats.Table
