// Package merkle implements the hash trees Dynamo uses for anti-entropy
// (Dynamo paper §4.7): replicas compare compact trees of hashes and
// transfer only the key ranges that actually differ, instead of shipping
// whole stores.
//
// The tree is a fixed-depth binary tree over the 64-bit key-hash space.
// Each leaf covers a contiguous slice of that space; its hash summarizes
// every key/value-digest pair that falls in the slice. Two replicas whose
// roots match are provably (modulo hash collisions) in sync; when roots
// differ, descending the tree pinpoints the divergent leaves.
package merkle

import (
	"crypto/md5"
	"fmt"
	"hash/fnv"
	"sort"
)

// Digest is a node or item hash.
type Digest [md5.Size]byte

// zeroDigest marks an empty leaf.
var zeroDigest Digest

// keyHash positions a key in the 64-bit ring space (mixed, like the
// dynamo ring, so similar keys spread).
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// LeafIndex returns the leaf (of 2^depth) that key belongs to.
func LeafIndex(depth int, key string) int {
	return int(keyHash(key) >> (64 - uint(depth)))
}

// Tree is a Merkle tree over a key→value-digest map. Construct with Build.
type Tree struct {
	depth  int
	leaves []Digest // 2^depth leaf hashes
	nodes  []Digest // heap layout: nodes[1] is the root
}

// Build constructs a tree of the given depth (1..16) over items, where
// each value is the application-level content to summarize (for a Dynamo
// store: a serialization of the key's version set).
func Build(depth int, items map[string]string) *Tree {
	if depth < 1 || depth > 16 {
		panic(fmt.Sprintf("merkle: depth %d out of range [1,16]", depth))
	}
	n := 1 << uint(depth)
	// Gather the per-leaf membership, sorted for determinism.
	type kv struct{ k, v string }
	byLeaf := make([][]kv, n)
	for k, v := range items {
		i := LeafIndex(depth, k)
		byLeaf[i] = append(byLeaf[i], kv{k, v})
	}
	t := &Tree{depth: depth, leaves: make([]Digest, n), nodes: make([]Digest, 2*n)}
	for i, members := range byLeaf {
		if len(members) == 0 {
			continue // zero digest
		}
		sort.Slice(members, func(a, b int) bool { return members[a].k < members[b].k })
		h := md5.New()
		for _, m := range members {
			h.Write([]byte(m.k))
			h.Write([]byte{0})
			h.Write([]byte(m.v))
			h.Write([]byte{0})
		}
		copy(t.leaves[i][:], h.Sum(nil))
	}
	// Internal nodes: nodes[n+i] = leaf i; nodes[j] = H(nodes[2j], nodes[2j+1]).
	for i := 0; i < n; i++ {
		t.nodes[n+i] = t.leaves[i]
	}
	for j := n - 1; j >= 1; j-- {
		left, right := t.nodes[2*j], t.nodes[2*j+1]
		if left == zeroDigest && right == zeroDigest {
			continue // empty subtree stays zero
		}
		h := md5.New()
		h.Write(left[:])
		h.Write(right[:])
		copy(t.nodes[j][:], h.Sum(nil))
	}
	return t
}

// Depth reports the tree depth.
func (t *Tree) Depth() int { return t.depth }

// Root returns the root digest; equal roots mean equal contents.
func (t *Tree) Root() Digest { return t.nodes[1] }

// Leaf returns leaf i's digest.
func (t *Tree) Leaf(i int) Digest { return t.leaves[i] }

// Leaves returns a copy of all leaf digests (what a sync exchange ships
// when roots differ and the parties choose a flat comparison).
func (t *Tree) Leaves() []Digest { return append([]Digest(nil), t.leaves...) }

// DiffLeaves compares two trees of equal depth and returns the indexes of
// leaves that differ, walking the tree so matching subtrees are skipped.
// It also reports how many node digests were examined — the "bytes on the
// wire" a real exchange would pay.
func DiffLeaves(a, b *Tree) (diff []int, nodesCompared int) {
	if a.depth != b.depth {
		panic("merkle: comparing trees of different depth")
	}
	n := 1 << uint(a.depth)
	var walk func(j int)
	walk = func(j int) {
		nodesCompared++
		if a.nodes[j] == b.nodes[j] {
			return
		}
		if j >= n { // leaf
			diff = append(diff, j-n)
			return
		}
		walk(2 * j)
		walk(2*j + 1)
	}
	walk(1)
	return diff, nodesCompared
}
