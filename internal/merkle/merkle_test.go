package merkle

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func items(n int, prefix string) map[string]string {
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s-%04d", prefix, i)
		m[k] = "v" + k
	}
	return m
}

func TestIdenticalContentsIdenticalRoots(t *testing.T) {
	a := Build(8, items(100, "k"))
	b := Build(8, items(100, "k"))
	if a.Root() != b.Root() {
		t.Fatal("same items, different roots")
	}
	diff, _ := DiffLeaves(a, b)
	if len(diff) != 0 {
		t.Fatalf("diff = %v on identical trees", diff)
	}
}

func TestEmptyTrees(t *testing.T) {
	a := Build(4, nil)
	b := Build(4, map[string]string{})
	if a.Root() != b.Root() {
		t.Fatal("empty trees differ")
	}
	if a.Root() != (Digest{}) {
		t.Fatal("empty tree has non-zero root")
	}
}

func TestSingleChangedValueFound(t *testing.T) {
	ia, ib := items(200, "k"), items(200, "k")
	ib["k-0042"] = "tampered"
	a, b := Build(8, ia), Build(8, ib)
	if a.Root() == b.Root() {
		t.Fatal("changed value, same root")
	}
	diff, compared := DiffLeaves(a, b)
	if len(diff) != 1 {
		t.Fatalf("diff = %v, want exactly the one leaf holding k-0042", diff)
	}
	if diff[0] != LeafIndex(8, "k-0042") {
		t.Fatalf("diff leaf %d, want %d", diff[0], LeafIndex(8, "k-0042"))
	}
	// The walk must prune matching subtrees: far fewer comparisons than
	// the 511 nodes of a full scan.
	if compared > 2*8+1 {
		t.Fatalf("compared %d nodes; pruning broken", compared)
	}
}

func TestMissingKeyFound(t *testing.T) {
	ia, ib := items(50, "k"), items(50, "k")
	delete(ib, "k-0007")
	a, b := Build(6, ia), Build(6, ib)
	diff, _ := DiffLeaves(a, b)
	want := LeafIndex(6, "k-0007")
	found := false
	for _, d := range diff {
		if d == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff %v does not include leaf %d of the missing key", diff, want)
	}
}

func TestLeafIndexStableAndInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		idx := LeafIndex(10, k)
		if idx < 0 || idx >= 1024 {
			t.Fatalf("leaf index %d out of range", idx)
		}
		if idx != LeafIndex(10, k) {
			t.Fatal("leaf index unstable")
		}
	}
}

func TestKeysSpreadAcrossLeaves(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[LeafIndex(4, fmt.Sprintf("key-%d", i))] = true
	}
	if len(seen) != 16 {
		t.Fatalf("1000 keys hit only %d of 16 leaves", len(seen))
	}
}

func TestDepthValidation(t *testing.T) {
	for _, d := range []int{0, 17} {
		d := d
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Build(depth=%d) did not panic", d)
				}
			}()
			Build(d, nil)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DiffLeaves across depths did not panic")
		}
	}()
	DiffLeaves(Build(4, nil), Build(5, nil))
}

// TestPropDiffFindsExactlyTheDivergentLeaves: for random divergence, the
// reported leaves are precisely the set containing keys whose values
// differ or that exist on one side only.
func TestPropDiffFindsExactlyTheDivergentLeaves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := items(r.Intn(150)+20, "k")
		other := make(map[string]string, len(base))
		for k, v := range base {
			other[k] = v
		}
		want := map[int]bool{}
		// Mutate a few entries.
		for i := 0; i < r.Intn(5); i++ {
			k := fmt.Sprintf("k-%04d", r.Intn(len(base)))
			other[k] = "mut"
			want[LeafIndex(8, k)] = true
		}
		// Add a one-sided key.
		if r.Intn(2) == 0 {
			k := "extra-key"
			other[k] = "x"
			want[LeafIndex(8, k)] = true
		}
		a, b := Build(8, base), Build(8, other)
		diff, _ := DiffLeaves(a, b)
		got := map[int]bool{}
		for _, d := range diff {
			got[d] = true
		}
		if len(got) != len(want) {
			return false
		}
		for leaf := range want {
			if !got[leaf] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
