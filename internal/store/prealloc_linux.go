//go:build linux

package store

import (
	"os"
	"syscall"

	"repro/internal/faultfs"
)

// preallocate reserves size bytes of backing storage for f so later
// appends never pay an allocate-and-extend fsync at flush time. The
// fallocate fast path needs a real file descriptor; behind a fault
// injector (or on filesystems without fallocate support) it falls back
// to a plain truncate-extend, which at least fixes the logical size.
func preallocate(f faultfs.File, size int64) {
	if size <= 0 {
		return
	}
	if of, ok := f.(*os.File); ok {
		if syscall.Fallocate(int(of.Fd()), 0, 0, size) == nil {
			return
		}
	}
	_ = f.Truncate(size)
}
