//go:build linux

package store

import (
	"os"
	"syscall"
)

// preallocate reserves size bytes of backing storage for f so later
// appends never pay an allocate-and-extend fsync at flush time. On
// filesystems without fallocate support it falls back to a plain
// truncate-extend, which at least fixes the logical size.
func preallocate(f *os.File, size int64) {
	if size <= 0 {
		return
	}
	if err := syscall.Fallocate(int(f.Fd()), 0, 0, size); err != nil {
		_ = f.Truncate(size)
	}
}
