package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/oplog"
	"repro/internal/sim"
	"repro/internal/uniq"
)

// inlineOpts keeps tests deterministic: every Commit pays its own flush
// on the calling goroutine.
func inlineOpts() Options { return Options{Inline: true} }

func entry(i int) oplog.Entry {
	return oplog.Entry{
		ID:   uniq.ID(fmt.Sprintf("op-%05d", i)),
		Kind: "add",
		Key:  fmt.Sprintf("k%d", i%7),
		Arg:  int64(i),
		Lam:  uint64(i + 1),
		At:   sim.Time(1000 + 17*i),
	}
}

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string, opt Options) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

// commitAll stages entries and commits them synchronously.
func commitAll(t *testing.T, s *Store, entries []oplog.Entry) {
	t.Helper()
	end := s.Stage(entries)
	done := make(chan bool, 1)
	s.Commit(end, func(ok bool) { done <- ok })
	if !<-done {
		t.Fatalf("commit to %d failed", end)
	}
}

func TestEmptyDirColdStart(t *testing.T) {
	dir := t.TempDir()
	s, rec := mustOpen(t, dir, inlineOpts())
	if rec.Base != 0 || rec.End != 0 || len(rec.JournalEntries) != 0 || len(rec.SnapshotEntries) != 0 {
		t.Fatalf("cold start recovered something: %+v", rec)
	}
	commitAll(t, s, []oplog.Entry{entry(0), entry(1)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A second cold start sees exactly what was committed.
	s2, rec2 := mustOpen(t, dir, inlineOpts())
	defer s2.Close()
	if rec2.Base != 0 || rec2.End != 2 || len(rec2.JournalEntries) != 2 {
		t.Fatalf("restart: %+v", rec2)
	}
	if rec2.JournalEntries[0] != entry(0) || rec2.JournalEntries[1] != entry(1) {
		t.Fatalf("entries corrupted on the round trip: %+v", rec2.JournalEntries)
	}
}

func TestCrashDropsVolatileTailOnly(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{}) // background flusher: staging is volatile until committed
	commitAll(t, s, []oplog.Entry{entry(0), entry(1), entry(2)})
	// Staged but never committed: the in-memory tail a crash destroys.
	s.Stage([]oplog.Entry{entry(3), entry(4)})
	s.Crash()
	s2, rec := mustOpen(t, dir, inlineOpts())
	defer s2.Close()
	if len(rec.JournalEntries) != 3 || rec.End != 3 {
		t.Fatalf("after crash want the 3 committed entries, got %d (end %d)", len(rec.JournalEntries), rec.End)
	}
}

func TestCrashFailsPendingCommits(t *testing.T) {
	// An hour-long departure timer: the flush can never happen in-test,
	// so the commit's only way out is the crash failing it.
	s, _ := mustOpen(t, t.TempDir(), Options{Mode: ModeTimer, Interval: time.Hour})
	end := s.Stage([]oplog.Entry{entry(0)})
	got := make(chan bool, 1)
	s.Commit(end, func(ok bool) { got <- ok })
	s.Crash()
	if ok := <-got; ok {
		t.Fatal("commit reported durable after a crash that dropped it")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opt := inlineOpts()
	opt.SegmentBytes = 256 // force rotation every few records
	s, _ := mustOpen(t, dir, opt)
	var all []oplog.Entry
	for i := 0; i < 40; i++ {
		e := entry(i)
		all = append(all, e)
		commitAll(t, s, []oplog.Entry{e})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to leave several segments, got %d", len(segs))
	}
	s2, rec := mustOpen(t, dir, opt)
	defer s2.Close()
	if len(rec.JournalEntries) != len(all) {
		t.Fatalf("recovered %d of %d entries across segments", len(rec.JournalEntries), len(all))
	}
	for i, e := range rec.JournalEntries {
		if e != all[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, all[i])
		}
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // bytes to keep of the final record's area, torn at several depths
		dir := t.TempDir()
		s, _ := mustOpen(t, dir, inlineOpts())
		commitAll(t, s, []oplog.Entry{entry(0), entry(1)})
		size2 := fileSize(t, filepath.Join(dir, "journal-0000000000.seg"))
		commitAll(t, s, []oplog.Entry{entry(2)})
		s.Close()
		// Tear the final record: keep only `cut` bytes of it.
		path := filepath.Join(dir, "journal-0000000000.seg")
		if err := os.Truncate(path, size2+int64(cut)); err != nil {
			t.Fatal(err)
		}
		s2, rec, err := Open(dir, inlineOpts())
		if err != nil {
			t.Fatalf("torn tail must recover, got %v", err)
		}
		if len(rec.JournalEntries) != 2 || rec.TornBytes == 0 {
			t.Fatalf("cut=%d: want 2 entries and torn bytes, got %d entries torn=%d", cut, len(rec.JournalEntries), rec.TornBytes)
		}
		// The truncation is durable: appending after it must produce a
		// journal that replays cleanly.
		commitAll(t, s2, []oplog.Entry{entry(9)})
		s2.Close()
		s3, rec3 := mustOpen(t, dir, inlineOpts())
		s3.Close()
		if len(rec3.JournalEntries) != 3 || rec3.JournalEntries[2] != entry(9) {
			t.Fatalf("cut=%d: append-after-tear replay got %d entries", cut, len(rec3.JournalEntries))
		}
	}
}

func TestCRCCorruptMiddleRecordRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, inlineOpts())
	commitAll(t, s, []oplog.Entry{entry(0)})
	size1 := fileSize(t, filepath.Join(dir, "journal-0000000000.seg"))
	commitAll(t, s, []oplog.Entry{entry(1), entry(2)})
	s.Close()
	// Flip one payload byte of the middle record (entry 1).
	path := filepath.Join(dir, "journal-0000000000.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[size1+recHdrLen+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, inlineOpts()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("middle-record corruption must fail Open with ErrCorrupt, got %v", err)
	}
}

func TestCorruptSealedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	opt := inlineOpts()
	opt.SegmentBytes = 128
	s, _ := mustOpen(t, dir, opt)
	for i := 0; i < 20; i++ {
		commitAll(t, s, []oplog.Entry{entry(i)})
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}
	// Corrupt the tail of the FIRST (sealed) segment: even damage at a
	// segment's end is mid-journal damage when records follow in the next
	// segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, opt); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("sealed-segment corruption must fail Open, got %v", err)
	}
}

func TestSnapshotPlusReplayEqualsPureReplayOracle(t *testing.T) {
	oracleDir, dir := t.TempDir(), t.TempDir()
	opt := inlineOpts()
	opt.SegmentBytes = 512
	oracle, _ := mustOpen(t, oracleDir, inlineOpts()) // journal only, never snapshotted or compacted
	s, _ := mustOpen(t, dir, opt)

	var mark oplog.Watermark
	all := []oplog.Entry{}
	for i := 0; i < 120; i++ {
		e := entry(i)
		all = append(all, e)
		commitAll(t, s, []oplog.Entry{e})
		commitAll(t, oracle, []oplog.Entry{e})
		if (i+1)%25 == 0 {
			// Snapshot the full prefix and let both watermarks advance so
			// compaction actually deletes segments under the test.
			mark = all[len(all)-1].Mark()
			s.WriteSnapshot(append([]oplog.Entry(nil), all...), i+1, mark)
			s.AckTo(i + 1)
		}
	}
	s.Close()
	oracle.Close()

	// Compaction must have removed early segments; recovery must not care.
	if segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg")); len(segs) == 0 {
		t.Fatal("no segments left at all")
	}
	_, recO := mustOpen(t, oracleDir, inlineOpts())
	s2, rec := mustOpen(t, dir, opt)
	defer s2.Close()
	if rec.Base == 0 {
		t.Fatalf("expected a compacted journal (base > 0), got base=0 with snapshot at %d", rec.SnapshotPos)
	}
	if rec.SnapshotPos != 100 || rec.SnapshotMark != mark {
		t.Fatalf("snapshot meta: pos=%d mark=%+v", rec.SnapshotPos, rec.SnapshotMark)
	}

	union := func(r Recovery) *oplog.Set {
		set := oplog.NewSet()
		for _, e := range r.SnapshotEntries {
			set.Add(e)
		}
		for _, e := range r.JournalEntries {
			set.Add(e)
		}
		return set
	}
	got, want := union(rec), union(recO)
	if !got.Equal(want) {
		t.Fatalf("snapshot+replay set (%d ops) differs from pure-replay oracle (%d ops)", got.Len(), want.Len())
	}
	if got.Len() != len(all) {
		t.Fatalf("recovered %d of %d ops", got.Len(), len(all))
	}
}

func TestSnapshotsPruned(t *testing.T) {
	dir := t.TempDir()
	opt := inlineOpts()
	opt.KeepSnapshots = 2
	s, _ := mustOpen(t, dir, opt)
	var all []oplog.Entry
	for i := 0; i < 30; i++ {
		e := entry(i)
		all = append(all, e)
		commitAll(t, s, []oplog.Entry{e})
		if (i+1)%10 == 0 {
			s.WriteSnapshot(append([]oplog.Entry(nil), all...), i+1, e.Mark())
		}
	}
	s.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 2 {
		t.Fatalf("want 2 snapshots kept, got %d: %v", len(snaps), snaps)
	}
}

func TestCompactionWaitsForBothWatermarks(t *testing.T) {
	dir := t.TempDir()
	opt := inlineOpts()
	opt.SegmentBytes = 128
	s, _ := mustOpen(t, dir, opt)
	var all []oplog.Entry
	for i := 0; i < 30; i++ {
		e := entry(i)
		all = append(all, e)
		commitAll(t, s, []oplog.Entry{e})
	}
	before, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	// Snapshot everything — but with no peer acks, nothing may go.
	s.WriteSnapshot(append([]oplog.Entry(nil), all...), 30, all[29].Mark())
	after, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(after) != len(before) {
		t.Fatalf("compaction ran on snapshot alone: %d -> %d segments", len(before), len(after))
	}
	// Acks alone (already recorded snapshot) now release the prefix.
	s.AckTo(30)
	after, _ = filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(after) >= len(before) {
		t.Fatalf("compaction did not run with both watermarks: still %d segments", len(after))
	}
	s.Close()
	// And recovery still reconstructs the full set.
	_, rec := mustOpen(t, dir, opt)
	set := oplog.NewSet(rec.SnapshotEntries...)
	for _, e := range rec.JournalEntries {
		set.Add(e)
	}
	if set.Len() != 30 {
		t.Fatalf("recovered %d of 30 after compaction", set.Len())
	}
}

func TestTornSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, inlineOpts())
	var all []oplog.Entry
	for i := 0; i < 20; i++ {
		e := entry(i)
		all = append(all, e)
		commitAll(t, s, []oplog.Entry{e})
	}
	s.WriteSnapshot(all[:10], 10, all[9].Mark())
	s.WriteSnapshot(all[:20], 20, all[19].Mark())
	s.Close()
	// Tear the newest snapshot (drop its footer).
	path := filepath.Join(dir, "snap-0000000020.snap")
	sz := fileSize(t, path)
	if err := os.Truncate(path, sz-3); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpen(t, dir, inlineOpts())
	defer s2.Close()
	if rec.SnapshotPos != 10 || len(rec.SnapshotEntries) != 10 {
		t.Fatalf("want fallback to snapshot 10, got pos=%d n=%d", rec.SnapshotPos, len(rec.SnapshotEntries))
	}
	// The journal still holds everything, so no data was lost.
	if len(rec.JournalEntries) != 20 {
		t.Fatalf("journal replay: %d of 20", len(rec.JournalEntries))
	}
}

func TestSnapshotOutrunningJournalRejected(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, inlineOpts())
	all := []oplog.Entry{entry(0), entry(1)}
	commitAll(t, s, all)
	s.Close()
	// Forge a snapshot claiming positions the journal never held — the
	// state WriteSnapshot's commit gate exists to make impossible — by
	// taking a legitimate 5-entry snapshot elsewhere and dropping it
	// into the 2-entry store's directory.
	five := []oplog.Entry{entry(0), entry(1), entry(2), entry(3), entry(4)}
	rogue, _ := mustOpen(t, t.TempDir(), inlineOpts())
	commitAll(t, rogue, five)
	rogue.WriteSnapshot(five, 5, entry(4).Mark())
	rogue.Close()
	data, err := os.ReadFile(filepath.Join(rogue.Dir(), "snap-0000000005.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000005.snap"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, inlineOpts()); err == nil {
		t.Fatal("Open accepted a snapshot covering positions beyond the journal end")
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{}) // ModeGroup, background flusher
	const n = 400
	var wg sync.WaitGroup
	var mu sync.Mutex
	fails := 0
	for i := 0; i < n; i++ {
		end := s.Stage([]oplog.Entry{entry(i)})
		wg.Add(1)
		s.Commit(end, func(ok bool) {
			if !ok {
				mu.Lock()
				fails++
				mu.Unlock()
			}
			wg.Done()
		})
	}
	wg.Wait()
	if fails != 0 {
		t.Fatalf("%d commits failed", fails)
	}
	st := s.Stats()
	if st.Fsyncs >= n/10 {
		t.Fatalf("group commit did not amortize: %d fsyncs for %d commits", st.Fsyncs, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEveryOpModePaysPerCommit(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), Options{Mode: ModeEveryOp})
	const n = 25
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		end := s.Stage([]oplog.Entry{entry(i)})
		wg.Add(1)
		s.Commit(end, func(bool) { wg.Done() })
		wg.Wait() // serialize: each commit is its own car
		wg = sync.WaitGroup{}
	}
	st := s.Stats()
	if st.Fsyncs < n {
		t.Fatalf("every-op mode must fsync per commit: %d fsyncs for %d commits", st.Fsyncs, n)
	}
	s.Close()
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}
