package store

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/oplog"
)

// chainOpts enables delta-snapshot chaining with a full cut every k cuts.
func chainOpts(k int) Options {
	return Options{Inline: true, SnapshotChain: k}
}

// cut asks the store for its preferred cut kind at pos: full snapshots
// carry the whole ledger prefix, deltas pass nil and let the store use
// its internal buffer — exactly the owner-side protocol.
func cut(s *Store, all []oplog.Entry, pos int) {
	if s.NextSnapshotIsFull() {
		s.WriteSnapshot(append([]oplog.Entry(nil), all[:pos]...), pos, all[pos-1].Mark())
	} else {
		s.WriteSnapshot(nil, pos, all[pos-1].Mark())
	}
}

// recoveredSet flattens a Recovery into the sorted encoded bytes of every
// entry it restores — the byte-identical comparison the differentials use.
func recoveredSet(rec Recovery) []string {
	var out []string
	for _, e := range append(append([]oplog.Entry(nil), rec.SnapshotEntries...), rec.JournalEntries...) {
		out = append(out, string(oplog.AppendEntry(nil, e)))
	}
	sort.Strings(out)
	return out
}

func TestDeltaChainWriteAndRecover(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, chainOpts(3))
	var all []oplog.Entry
	for i := 0; i < 60; i++ {
		all = append(all, entry(i))
	}
	for i := 0; i < 60; i += 10 {
		commitAll(t, s, all[i:i+10])
		cut(s, all, i+10)
	}
	st := s.Stats()
	if st.DeltaSnapshots == 0 {
		t.Fatalf("chain mode cut no deltas: %+v", st)
	}
	if st.Snapshots <= st.DeltaSnapshots {
		t.Fatalf("chain mode cut no fulls: %+v", st)
	}
	if st.SnapshotFailures != 0 {
		t.Fatalf("snapshot failures: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deltas, _ := filepath.Glob(filepath.Join(dir, "delta-*.snap"))
	if len(deltas) == 0 {
		t.Fatal("no delta files on disk")
	}

	s2, rec := mustOpen(t, dir, chainOpts(3))
	defer s2.Close()
	if rec.SnapshotPos != 60 {
		t.Fatalf("chain tip = %d, want 60", rec.SnapshotPos)
	}
	if rec.Deltas == 0 {
		t.Fatalf("recovery folded no deltas: %+v", rec)
	}
	if rec.SnapshotBase >= rec.SnapshotPos {
		t.Fatalf("chain base %d not below tip %d", rec.SnapshotBase, rec.SnapshotPos)
	}

	// Oracle: the union of snapshot-chain and journal entries must be
	// exactly the committed ledger, same as a pure replay would give.
	var want []string
	for _, e := range all {
		want = append(want, string(oplog.AppendEntry(nil, e)))
	}
	sort.Strings(want)
	got := recoveredSet(rec)
	sort.Strings(got)
	// The journal may overlap the chain (compaction is lazy); dedupe.
	got = dedupe(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chain recovery lost or invented entries: got %d want %d", len(got), len(want))
	}
}

func dedupe(in []string) []string {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func TestTornNewestDeltaFallsBackToChainPrefix(t *testing.T) {
	// Chain long enough that the newest cut on disk is a delta: one full
	// at 10, deltas at 20..50.
	build := func(dir string) []oplog.Entry {
		s, _ := mustOpen(t, dir, chainOpts(8))
		var all []oplog.Entry
		for i := 0; i < 50; i++ {
			all = append(all, entry(i))
		}
		for i := 0; i < 50; i += 10 {
			commitAll(t, s, all[i:i+10])
			cut(s, all, i+10)
		}
		s.Crash()
		return all
	}

	// Control: same history, never corrupted.
	ctrlDir := t.TempDir()
	build(ctrlDir)
	ctrl, ctrlRec := mustOpen(t, ctrlDir, chainOpts(8))
	ctrl.Close()

	// Victim: the newest delta tears (truncated mid-file, footer gone).
	dir := t.TempDir()
	build(dir)
	deltas, _ := filepath.Glob(filepath.Join(dir, "delta-*.snap"))
	if len(deltas) == 0 {
		t.Fatal("no delta files to tear")
	}
	sort.Strings(deltas)
	newest := deltas[len(deltas)-1]
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	s, rec := mustOpen(t, dir, chainOpts(8))
	defer s.Close()
	tornPos, _ := snapFilePos(newest)
	if rec.SnapshotPos >= tornPos {
		t.Fatalf("recovery claims the torn delta: tip %d, torn at %d", rec.SnapshotPos, tornPos)
	}
	// The fallback must be lossless: compaction gated on the chain base,
	// so the journal still holds everything past the surviving prefix —
	// the recovered state is byte-identical to the never-torn control.
	if got, want := dedupe(recoveredSet(rec)), dedupe(recoveredSet(ctrlRec)); !reflect.DeepEqual(got, want) {
		t.Fatalf("torn-delta fallback diverged from control: got %d entries want %d", len(got), len(want))
	}
}

func TestRecycledSegmentsOldRecordsInvisible(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Inline: true, Preallocate: true, SegmentBytes: 256, KeepSnapshots: 2}
	s, _ := mustOpen(t, dir, opt)
	var all []oplog.Entry
	stage := func(n int) {
		for i := 0; i < n; i++ {
			e := entry(len(all))
			all = append(all, e)
			commitAll(t, s, []oplog.Entry{e})
		}
	}
	// Fill several segments, then cover them with a snapshot and full acks
	// so compaction retires them into the free pool.
	stage(40)
	s.WriteSnapshot(append([]oplog.Entry(nil), all...), len(all), all[len(all)-1].Mark())
	s.AckTo(len(all))
	free, _ := filepath.Glob(filepath.Join(dir, "free-*.seg"))
	if len(free) == 0 {
		t.Fatal("compaction pooled no retired segments")
	}
	// Keep writing: rotations must now be reborn from the pool.
	stage(40)
	if got := s.Stats().Recycled; got == 0 {
		t.Fatal("rotation recycled no pooled segments")
	}
	s.Crash()

	// The recycled files carried valid-under-the-old-seed records from
	// their first life. Recovery must never resurrect them: every
	// recovered entry is one we committed, and all committed entries
	// survive.
	s2, rec := mustOpen(t, dir, opt)
	defer s2.Close()
	var want []string
	for _, e := range all {
		want = append(want, string(oplog.AppendEntry(nil, e)))
	}
	sort.Strings(want)
	if got := dedupe(recoveredSet(rec)); !reflect.DeepEqual(got, dedupe(want)) {
		t.Fatalf("recycled-segment recovery diverged: got %d entries want %d", len(got), len(want))
	}
	if rec.End != len(all) {
		t.Fatalf("recovered end %d, want %d", rec.End, len(all))
	}
}

func TestPreallocatedTailTruncatesCleanOnCrash(t *testing.T) {
	// A crash leaves the active segment preallocated past its data: the
	// zero fill must read as a torn tail, not corruption, and a clean
	// reopen must append where the data really ends.
	dir := t.TempDir()
	opt := Options{Inline: true, Preallocate: true, SegmentBytes: 1 << 16}
	s, _ := mustOpen(t, dir, opt)
	commitAll(t, s, []oplog.Entry{entry(0), entry(1), entry(2)})
	s.Crash()

	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	if info, err := os.Stat(segs[0]); err != nil || info.Size() < int64(opt.SegmentBytes) {
		t.Fatalf("segment not preallocated: size %d err %v", info.Size(), err)
	}

	s2, rec := mustOpen(t, dir, opt)
	if len(rec.JournalEntries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(rec.JournalEntries))
	}
	commitAll(t, s2, []oplog.Entry{entry(3)})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rec3 := mustOpen(t, dir, opt)
	defer s3.Close()
	if len(rec3.JournalEntries) != 4 || rec3.JournalEntries[3] != entry(3) {
		t.Fatalf("append after preallocated-crash recovery lost data: %+v", rec3)
	}
}

func TestAdaptiveCommitCallbacksOrderedExactlyOnce(t *testing.T) {
	// Clock-free pin on the adaptive mode's commit contract: callbacks
	// fire exactly once, in commit order, and a post-crash commit fails —
	// no assertion here depends on timing, only on ordering.
	dir := t.TempDir()
	opt := Options{Inline: true, Mode: ModeAdaptive}
	s, _ := mustOpen(t, dir, opt)
	const n = 100
	var fired []int
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		end := s.Stage([]oplog.Entry{entry(i)})
		s.Commit(end, func(ok bool) {
			if !ok {
				t.Errorf("commit to %d failed", end)
			}
			fired = append(fired, end)
			counts[end]++
		})
	}
	if len(fired) != n {
		t.Fatalf("%d callbacks fired, want %d", len(fired), n)
	}
	for i, end := range fired {
		if end != i+1 {
			t.Fatalf("callback %d fired for end %d: reordered", i, end)
		}
		if counts[end] != 1 {
			t.Fatalf("end %d fired %d times", end, counts[end])
		}
	}
	s.Crash()
	got := make(chan bool, 1)
	s.Commit(n+1, func(ok bool) { got <- ok })
	if ok := <-got; ok {
		t.Fatal("post-crash commit reported durable")
	}
}

func TestAdaptiveBackgroundPreservesCommitOrder(t *testing.T) {
	// Same contract under the background flusher, where adaptive holds and
	// early departures actually run: whatever the flush timing, callbacks
	// observe commit order and each fires exactly once.
	dir := t.TempDir()
	opt := Options{Mode: ModeAdaptive}
	s, _ := mustOpen(t, dir, opt)
	const n = 400
	results := make(chan int, n)
	for i := 0; i < n; i++ {
		end := s.Stage([]oplog.Entry{entry(i)})
		s.Commit(end, func(ok bool) {
			if !ok {
				t.Errorf("commit to %d failed", end)
			}
			results <- end
		})
	}
	prev := 0
	for i := 0; i < n; i++ {
		end := <-results
		if end <= prev {
			t.Fatalf("callback for end %d fired after end %d", end, prev)
		}
		prev = end
	}
	if st := s.Stats(); st.Fsyncs >= n {
		t.Fatalf("adaptive mode paid per-commit fsyncs: %d for %d commits", st.Fsyncs, n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
