package store

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/oplog"
)

// ---- Crash-point enumeration ---------------------------------------------
//
// The generalization of the hand-picked torn-tail tests: run a fixed
// workload once to count its mutating syscalls (N), then once per k in
// [0, N] with "die after syscall k" — every later syscall fails, the
// store is crashed, the injector tears unsynced bytes the way a lost
// page cache would — and recovery at EVERY k must (a) keep every
// acknowledged op, (b) recover an exact prefix of the workload, and
// (c) after re-driving the lost suffix, land byte-identical to the
// never-crashed control.

// crashWorkloadEntries is the reference op stream.
func crashWorkloadEntries(total int) []oplog.Entry {
	all := make([]oplog.Entry, total)
	for i := range all {
		all[i] = entry(i)
	}
	return all
}

// driveCrashWorkload stages/commits all[from:] in fixed batches,
// cutting a snapshot and advancing the ack watermark on a fixed
// cadence. It returns the highest position a Commit acknowledged.
// Under an armed injector the later calls simply fail; the script is
// identical at every k, which is what makes the sweep deterministic.
func driveCrashWorkload(st *Store, all []oplog.Entry, from, batch, snapEvery int) (acked int) {
	acked = from
	for pos := from; pos < len(all); {
		hi := pos + batch
		if hi > len(all) {
			hi = len(all)
		}
		end := st.Stage(all[pos:hi])
		done := make(chan bool, 1)
		st.Commit(end, func(ok bool) { done <- ok })
		if <-done {
			acked = end
		}
		pos = hi
		if acked == pos && pos%snapEvery == 0 {
			if st.NextSnapshotIsFull() {
				st.WriteSnapshot(append([]oplog.Entry(nil), all[:pos]...), pos, all[pos-1].Mark())
			} else {
				st.WriteSnapshot(nil, pos, all[pos-1].Mark())
			}
			st.AckTo(pos)
		}
	}
	return acked
}

// recoveredSeq flattens a Recovery into the full position-ordered
// entry sequence [0, End): the snapshot chain covers [0, SnapshotPos),
// the journal [Base, End), and replay guarantees Base <= SnapshotPos.
func recoveredSeq(t *testing.T, rec Recovery) []oplog.Entry {
	t.Helper()
	if rec.Base > rec.SnapshotPos {
		t.Fatalf("recovery gap: journal base %d past snapshot pos %d", rec.Base, rec.SnapshotPos)
	}
	seq := append([]oplog.Entry(nil), rec.SnapshotEntries...)
	if skip := rec.SnapshotPos - rec.Base; skip <= len(rec.JournalEntries) {
		seq = append(seq, rec.JournalEntries[skip:]...)
	} else {
		t.Fatalf("recovery: journal [%d,%d) cannot reach snapshot pos %d", rec.Base, rec.End, rec.SnapshotPos)
	}
	if len(seq) != rec.End {
		t.Fatalf("recovered %d entries, End says %d", len(seq), rec.End)
	}
	return seq
}

// crashSweepStride picks how densely the sweep samples k: every point
// by default, sparser under -short or an explicit QS_CRASH_STRIDE (the
// CI smoke lever).
func crashSweepStride(t *testing.T) int {
	if env := os.Getenv("QS_CRASH_STRIDE"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 5
	}
	return 1
}

func TestCrashPointEnumeration(t *testing.T) {
	configs := []struct {
		name string
		opt  Options
	}{
		{"full-snapshots", Options{Inline: true, SegmentBytes: 512}},
		{"delta-chain", Options{Inline: true, SegmentBytes: 512, SnapshotChain: 3}},
	}
	const total, batch, snapEvery = 96, 3, 12
	all := crashWorkloadEntries(total)
	stride := crashSweepStride(t)
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			// Control: the same workload under a counting injector that
			// injects nothing, closed gracefully. Its syscall count is the
			// sweep's N; its recovered sequence is the byte-identical bar.
			ctlDir := t.TempDir()
			inj := faultfs.New(faultfs.OS, 1, nil)
			opt := cfg.opt
			opt.FS = inj
			st, _ := mustOpen(t, ctlDir, opt)
			if acked := driveCrashWorkload(st, all, 0, batch, snapEvery); acked != total {
				t.Fatalf("control run acked %d of %d", acked, total)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("control close: %v", err)
			}
			n := inj.Ops()
			ctl, rec := mustOpen(t, ctlDir, cfg.opt)
			ctl.Close()
			control := recoveredSeq(t, rec)
			if len(control) != total {
				t.Fatalf("control recovered %d entries, want %d", len(control), total)
			}
			t.Logf("workload performs %d mutating syscalls; sweeping k with stride %d", n, stride)

			for k := 0; k <= n; k += stride {
				dir := t.TempDir()
				inj := faultfs.New(faultfs.OS, int64(1000+k), nil)
				inj.CrashAfter(k)
				opt := cfg.opt
				opt.FS = inj
				var acked int
				st, _, err := Open(dir, opt)
				if err == nil {
					acked = driveCrashWorkload(st, all, 0, batch, snapEvery)
					st.Crash()
				}
				if err := inj.Tear(); err != nil {
					t.Fatalf("k=%d: tear: %v", k, err)
				}

				// Recovery must succeed at every k, keep every acked op,
				// and recover an exact workload prefix.
				st2, rec, err := Open(dir, cfg.opt)
				if err != nil {
					t.Fatalf("k=%d: recovery failed: %v", k, err)
				}
				seq := recoveredSeq(t, rec)
				if rec.End < acked {
					t.Fatalf("k=%d: recovered to %d but %d was acknowledged: lost accepted ops", k, rec.End, acked)
				}
				for i, e := range seq {
					if e != all[i] {
						t.Fatalf("k=%d: recovered entry %d = %+v, want %+v", k, i, e, all[i])
					}
				}

				// Re-drive the lost suffix and the end state must be
				// byte-identical to the never-crashed control.
				if acked := driveCrashWorkload(st2, all, rec.End, batch, snapEvery); acked != total {
					t.Fatalf("k=%d: re-drive acked %d of %d", k, acked, total)
				}
				if err := st2.Close(); err != nil {
					t.Fatalf("k=%d: close after re-drive: %v", k, err)
				}
				st3, rec3, err := Open(dir, cfg.opt)
				if err != nil {
					t.Fatalf("k=%d: final reopen: %v", k, err)
				}
				final := recoveredSeq(t, rec3)
				st3.Close()
				if len(final) != len(control) {
					t.Fatalf("k=%d: final state has %d entries, control %d", k, len(final), len(control))
				}
				for i := range final {
					if final[i] != control[i] {
						t.Fatalf("k=%d: final entry %d = %+v, control %+v", k, i, final[i], control[i])
					}
				}
			}
		})
	}
}

// ---- Scripted single-fault classes ---------------------------------------

// failOn builds a script failing the nth operation of one kind on
// paths containing substr.
func failOn(kind faultfs.OpKind, substr string, nth int, err error) faultfs.Script {
	seen := 0
	return func(op faultfs.Op) faultfs.Decision {
		if op.Kind != kind || !strings.Contains(op.Path, substr) {
			return faultfs.Decision{}
		}
		seen++
		if seen == nth {
			return faultfs.Decision{Err: err}
		}
		return faultfs.Decision{}
	}
}

// TestEIOFailsCommitAndSticks: an EIO on a journal write fails that
// commit with ok=false, the error is sticky (later commits fail too,
// Close reports it), and nothing acknowledged earlier is lost.
func TestEIOFailsCommitAndSticks(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 1, failOn(faultfs.OpWrite, "journal-", 3, syscall.EIO))
	opt := Options{Inline: true, FS: inj}
	st, _ := mustOpen(t, dir, opt)
	commitAll(t, st, []oplog.Entry{entry(0), entry(1)})
	commitAll(t, st, []oplog.Entry{entry(2)})

	end := st.Stage([]oplog.Entry{entry(3)})
	done := make(chan bool, 1)
	st.Commit(end, func(ok bool) { done <- ok })
	if <-done {
		t.Fatal("commit reported durable across an injected EIO")
	}
	end = st.Stage([]oplog.Entry{entry(4)})
	st.Commit(end, func(ok bool) { done <- ok })
	if <-done {
		t.Fatal("commit after a sticky I/O error must fail")
	}
	if err := st.Close(); err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close after EIO = %v, want the sticky EIO", err)
	}

	st2, rec, err := Open(dir, Options{Inline: true})
	if err != nil {
		t.Fatalf("recovery after EIO: %v", err)
	}
	defer st2.Close()
	if rec.End < 3 {
		t.Fatalf("recovered to %d, the 3 acknowledged entries are lost", rec.End)
	}
}

// TestENOSPCOnSnapshotStallsWatermarkVisibly: a snapshot that cannot
// reach disk counts in SnapshotFailures and leaves the watermark put;
// commits keep succeeding.
func TestENOSPCOnSnapshotStallsWatermarkVisibly(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, 1, failOn(faultfs.OpCreate, ".tmp", 1, syscall.ENOSPC))
	st, _ := mustOpen(t, dir, Options{Inline: true, FS: inj})
	defer st.Close()
	all := crashWorkloadEntries(8)
	commitAll(t, st, all)
	st.WriteSnapshot(append([]oplog.Entry(nil), all...), len(all), all[len(all)-1].Mark())
	if got := st.Stats().SnapshotFailures; got != 1 {
		t.Fatalf("SnapshotFailures = %d, want 1", got)
	}
	if st.SnapshotPos() != 0 {
		t.Fatalf("snapshot watermark advanced to %d on a failed write", st.SnapshotPos())
	}
	commitAll(t, st, []oplog.Entry{entry(100)}) // the journal is unharmed
}

// TestShortWritePlusTearRecovers: a write that lands only half its
// bytes before EIO, followed by a crash-tear, is a torn tail —
// recovery truncates it and keeps the acknowledged prefix.
func TestShortWritePlusTearRecovers(t *testing.T) {
	dir := t.TempDir()
	nth := 0
	inj := faultfs.New(faultfs.OS, 7, func(op faultfs.Op) faultfs.Decision {
		if op.Kind != faultfs.OpWrite || !strings.Contains(op.Path, "journal-") {
			return faultfs.Decision{}
		}
		nth++
		if nth == 2 {
			return faultfs.Decision{Err: syscall.EIO, Keep: op.Size / 2}
		}
		return faultfs.Decision{}
	})
	st, _ := mustOpen(t, dir, Options{Inline: true, FS: inj})
	commitAll(t, st, []oplog.Entry{entry(0), entry(1)})
	end := st.Stage([]oplog.Entry{entry(2), entry(3)})
	done := make(chan bool, 1)
	st.Commit(end, func(ok bool) { done <- ok })
	if <-done {
		t.Fatal("commit over a short write reported durable")
	}
	st.Crash()
	if err := inj.Tear(); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Options{Inline: true})
	if err != nil {
		t.Fatalf("recovery after short write: %v", err)
	}
	defer st2.Close()
	if rec.End < 2 {
		t.Fatalf("recovered to %d, acknowledged prefix lost", rec.End)
	}
	for i, e := range rec.JournalEntries {
		if e != entry(i) {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
	}
}

// TestLyingFsyncLosesOnlyTheLie: fsyncs report success but hold
// nothing. After a tear, everything "durable" since the last honest
// sync is gone — and recovery still comes up clean on the honest
// prefix, which is precisely why accepted-means-fsynced can never be
// stronger than the disk's own honesty.
func TestLyingFsyncLosesOnlyTheLie(t *testing.T) {
	dir := t.TempDir()
	lying := false
	inj := faultfs.New(faultfs.OS, 3, func(op faultfs.Op) faultfs.Decision {
		if lying && op.Kind == faultfs.OpSync {
			return faultfs.Decision{LieSync: true}
		}
		return faultfs.Decision{}
	})
	st, _ := mustOpen(t, dir, Options{Inline: true, FS: inj})
	commitAll(t, st, []oplog.Entry{entry(0), entry(1)}) // honest
	lying = true
	commitAll(t, st, []oplog.Entry{entry(2), entry(3)}) // "durable", dropped
	st.Crash()
	if err := inj.Tear(); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Options{Inline: true})
	if err != nil {
		t.Fatalf("recovery after lying fsync: %v", err)
	}
	defer st2.Close()
	if rec.End < 2 {
		t.Fatalf("honest prefix lost: recovered to %d", rec.End)
	}
	for i, e := range rec.JournalEntries[:2] {
		if e != entry(i) {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
	}
}

// ---- Mid-segment bit-rot --------------------------------------------------

// TestSealedSegmentBitRotIsErrCorrupt: a flipped byte inside a sealed
// segment is damage no torn write explains. Open must refuse with
// ErrCorrupt and name the offending segment — never silently truncate.
func TestSealedSegmentBitRotIsErrCorrupt(t *testing.T) {
	dir := t.TempDir()
	opt := Options{Inline: true, SegmentBytes: 256}
	st, _ := mustOpen(t, dir, opt)
	for i := 0; i < 40; i++ {
		commitAll(t, st, []oplog.Entry{entry(i)})
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need several segments, got %d", len(segs))
	}
	// Rot a payload byte in the FIRST (sealed) segment, through the seam.
	victim := segs[0]
	f, err := faultfs.OS.OpenFile(victim, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(segHdrV2 + recHdrLen + 2)
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, _, err = Open(dir, opt)
	if err == nil {
		t.Fatal("Open recovered from mid-segment bit-rot without complaint")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(victim)) {
		t.Fatalf("error %q does not name the rotten segment %s", err, filepath.Base(victim))
	}
	// And it stayed refusal, not silent truncation: the bytes are intact.
	if fi, err := os.Stat(victim); err != nil || fi.Size() == 0 {
		t.Fatalf("segment was truncated or removed: %v %v", fi, err)
	}
}
