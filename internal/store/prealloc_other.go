//go:build !linux

package store

import "repro/internal/faultfs"

// preallocate reserves size bytes for f. Without fallocate, a
// truncate-extend fixes the logical size; most filesystems still
// materialize blocks lazily, so this is best-effort on non-Linux.
func preallocate(f faultfs.File, size int64) {
	if size <= 0 {
		return
	}
	_ = f.Truncate(size)
}
