// Package store is the durable tier of a replica: a disk-backed,
// append-only, segmented journal of oplog entries plus atomic ledger
// snapshots, glued together by a group-commit fsync loop.
//
// §3.2 of Building on Quicksand is the design brief. The transaction log
// "describing the changes to the state on disk" is also the stream that
// carries state across the failure boundary — checkpointing and logging
// are one mechanism, so this store persists the *operations* (the ledger
// the ACID 2.0 engine already gossips), never derived state. A snapshot
// here is not a memory image: it is the checkpointed prefix of the
// ledger itself, serialized in canonical fold order, from which recovery
// re-derives the fold checkpoint by replaying — the log *is* the
// checkpoint. And commits board a shared fsync the way §3.2's riders
// board a city bus [Group Commit Timers, Helland et al. 1987]: a flush
// departs on a timer or when full, so N concurrent commits cost far
// fewer than N disk flushes (internal/wal models the same economics on
// the simulator; this package pays them against real files).
//
// # On-disk layout
//
// A store owns one directory:
//
//	journal-0000000000.seg   segment: header, then records
//	journal-0000012345.seg   (filename = absolute position of first record)
//	free-0000000003.seg      retired segment awaiting recycling
//	snap-0000012000.snap     full snapshot taken at journal position 12000
//	delta-0000012400.snap    delta snapshot: entries [parent, 12400) + chain link
//
// A segment header is the 6-byte magic "QSEG2\n" plus the segment's
// start position (uint64 LE); legacy "QSEG1\n" segments are still read.
// Every journal record is [uint32 length][uint32 CRC-32C][entry bytes]
// (little-endian, oplog.AppendEntry payload), with the CRC salted by a
// seed derived from the segment's start position — see seedFor. Appends
// go to the last segment; once it exceeds Options.SegmentBytes it is
// sealed (fsynced, truncated to its data, closed) and a fresh segment
// starts at the next position, popped from the free pool when one is
// waiting and preallocated to SegmentBytes (Options.Preallocate) so
// appends never pay allocate-and-extend at flush time. Snapshots are
// written to a temp file, fsynced, and renamed into place — they are
// atomic or absent. With Options.SnapshotChain = k, cuts alternate:
// delta snapshots carry only the entries past the previous cut plus a
// parent-position link, and every k-th cut is full, resetting the
// chain; recovery folds the newest intact chain root-first. Pruning
// keeps the newest Options.KeepSnapshots full snapshots plus every
// delta at or past the oldest retained full's position.
//
// # Recovery and the truncation invariant
//
// Open replays the directory back into memory: newest parseable
// snapshot, then every retained journal record after it. A torn final
// record — a crash mid-append — is truncated away and counted, exactly
// the "examine the work in the tail of the log and determine what the
// heck to do" of §5.1; an invalid record anywhere *before* the tail is
// corruption and fails Open loudly. Journal segments are retired only
// when every position they hold is below BOTH the base of the newest
// durable snapshot chain (Open could rebuild without them even if every
// delta above the base is torn) and the position every gossip peer has
// acknowledged (no peer will ever need them re-pushed): Compact takes
// the min of the chain base and the watermark the owner feeds it.
// Retired segments join the free pool for recycling rather than being
// unlinked, up to maxFreeSegs.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/oplog"
	"repro/internal/stats"
)

// Filenames and framing constants.
const (
	segMagic   = "QSEG1\n" // legacy journal segment header (records CRC'd with seed 0)
	segMagicV2 = "QSEG2\n" // salted journal segment header: magic + uint64 LE start position
	snapMagic  = "QSNP1\n" // full snapshot header
	deltaMagic = "QSND1\n" // delta snapshot header: adds a parent-position chain link
	snapFooter = "QEND\n"  // snapshot trailer: present iff the write completed
	recHdrLen  = 8         // uint32 length + uint32 CRC-32C
	maxRecord  = 16 << 20  // sanity bound on one record's payload

	segHdrV2 = len(segMagicV2) + 8 // v2 header: magic + start position

	// maxFreeSegs bounds the recycled-segment pool; retirements beyond it
	// are deleted as before.
	maxFreeSegs = 4
	// maxDeltaPending bounds the staged-entry buffer feeding delta
	// snapshot cuts. An owner that stages this much without ever cutting
	// has effectively disabled snapshots; the buffer is dropped and the
	// next cut is forced full rather than holding the memory hostage.
	maxDeltaPending = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// seedFor derives a segment's CRC seed from its absolute start position.
// Every record CRC is salted with its segment's seed, and positions are
// never reused across a store's lifetime — so when a retired segment file
// is recycled as a new segment, the old life's records (valid CRCs under
// the old seed) can never verify under the new one. Recovery sees them as
// a torn tail, exactly like any other stale bytes past the real end.
// Legacy v1 segments use seed 0; crc32.Update(0, t, p) == crc32.Checksum(p, t),
// so v1 records keep verifying unchanged.
func seedFor(start int) uint32 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(start))
	return crc32.Checksum(b[:], castagnoli)
}

// ErrCorrupt reports a record that failed its CRC (or decoded to
// garbage) somewhere other than the journal's final record — damage a
// torn write cannot explain, which recovery must not paper over.
var ErrCorrupt = errors.New("store: corrupt journal record before the tail")

// Mode selects how commits reach the platter.
type Mode int

const (
	// ModeGroup (the default) flushes as soon as the device is free,
	// coalescing every commit that arrives while a flush is in flight —
	// no added latency when idle, natural batching under load.
	ModeGroup Mode = iota
	// ModeTimer holds the bus for Options.Interval (departing early once
	// Options.MaxBatch commits are waiting), trading bounded latency for
	// bigger batches.
	ModeTimer
	// ModeEveryOp is the car-per-driver baseline of 1984: one fsync per
	// staged batch, no coalescing. Kept so benchmarks can measure what
	// group commit saves.
	ModeEveryOp
	// ModeAdaptive is ModeGroup with a load-shaped coalescing hold: when
	// the staged backlog is shallow the flush departs immediately (the
	// latency-optimal choice when the disk is keeping up), and as backlog
	// grows the flusher holds the bus for up to the Options.AdaptiveDeadline
	// curve's deadline — itself steered by an EWMA of recent fsync cost —
	// so saturated periods buy bigger batches and fewer fsyncs without
	// taxing the idle path.
	ModeAdaptive
)

// AdaptiveCurve shapes ModeAdaptive's flush deadline. The hold before a
// flush grows linearly with load, from zero at an empty ring up to
// min(MaxWait, EWMA of recent fsync cost) at KneeBytes — holding for
// about one fsync's cost doubles the batch a saturated flusher boards
// while bounding the added latency to what the disk was already
// charging. Load is max(staged backlog, EWMA of recent flush sizes):
// the instantaneous backlog alone is misleading, because the flusher
// wakes on a burst's first rider, before the rest have staged.
type AdaptiveCurve struct {
	// MaxWait caps the coalescing hold regardless of fsync cost
	// (default 2ms).
	MaxWait time.Duration
	// KneeBytes is the load at which the hold saturates (default
	// 8 KiB — roughly a hundred typical entries, enough riders that the
	// fsync is well amortized). At 4× this staged backlog the flusher
	// departs early.
	KneeBytes int
}

// Options tunes a Store. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates the active journal segment once it exceeds
	// this size (default 4 MiB).
	SegmentBytes int
	// Mode picks the commit economics (default ModeGroup).
	Mode Mode
	// Interval is ModeTimer's departure timer (default 2ms).
	Interval time.Duration
	// MaxBatch departs a ModeTimer flush early once this many staged
	// batches are waiting (default 512).
	MaxBatch int
	// KeepSnapshots bounds how many snapshot files survive pruning
	// (default 2; the newest is recovery's source, the runner-up is
	// insurance against a torn newest).
	KeepSnapshots int
	// Inline runs every flush, snapshot, and compaction synchronously on
	// the calling goroutine instead of the background flusher — the
	// deterministic coupling the simulator transport needs. Group-commit
	// economics disappear (each Commit pays its own fsync); correctness
	// is identical.
	Inline bool
	// FsyncDelay injects extra latency before every journal fsync — the
	// slow-disk fault. It stretches commit timing (more commits board
	// each flush, acks arrive later) but must never change outcomes:
	// the slow-disk differential suite pins accepted ops, final states,
	// and apology ledgers equal to an undelayed run of the same script.
	FsyncDelay time.Duration
	// AdaptiveDeadline shapes ModeAdaptive's coalescing hold; zero fields
	// take the curve's defaults. Ignored by the other modes.
	AdaptiveDeadline AdaptiveCurve
	// Preallocate reserves each journal segment's full SegmentBytes when
	// the segment is created and recycles retired segments through a free
	// pool instead of deleting them, so steady-state appends never pay
	// allocate-and-extend metadata fsyncs at segment boundaries. Off by
	// default: preallocated files make a segment's size diverge from its
	// data length, which simulator-facing tests that compute offsets from
	// file sizes must not see.
	Preallocate bool
	// SnapshotChain enables incremental snapshot cuts: only every K-th
	// cut writes the full ledger; the K-1 cuts between write just the
	// entries staged past the previous cut, chained to it by a parent
	// link. Recovery folds the newest fully-valid chain; compaction gates
	// on the chain's base (the newest full snapshot), so a torn newest
	// delta falls back to the chain prefix losslessly. 0 or 1 disables
	// deltas (every cut is full, the pre-chain behavior).
	SnapshotChain int
	// FS is the filesystem seam every disk operation goes through
	// (default faultfs.OS, the passthrough). Fault-injection tests hand
	// in a faultfs.Injector to script EIO/ENOSPC/short writes/lying
	// fsyncs and to enumerate crash points deterministically.
	FS faultfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	if o.AdaptiveDeadline.MaxWait <= 0 {
		o.AdaptiveDeadline.MaxWait = 2 * time.Millisecond
	}
	if o.AdaptiveDeadline.KneeBytes <= 0 {
		o.AdaptiveDeadline.KneeBytes = 8 << 10
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	return o
}

// Stats counts the store's disk work.
type Stats struct {
	Fsyncs    int64 // journal fsyncs completed (the figure group commit minimizes)
	Appended  int64 // entries staged for the journal
	Snapshots int64 // snapshot files written (full and delta)
	// SnapshotFailures counts snapshot attempts that could not reach
	// disk. A non-zero, growing value means the snapshot watermark — and
	// with it journal compaction — has stalled: durability maintenance
	// is failing even though commits may still succeed.
	SnapshotFailures int64
	DeltaSnapshots   int64 // snapshot cuts written as chain deltas (subset of Snapshots)
	Recycled         int64 // journal segments reborn from the free pool instead of created
	TornBytes        int64 // bytes truncated from a torn tail at Open
	// MaxStallNs is the longest single flush cycle (write + fsync) in
	// nanoseconds — the worst case a commit waited on the disk itself,
	// the writer-stall figure the tail-latency work minimizes.
	MaxStallNs int64
}

// Recovery is everything Open rebuilt from disk. The owner re-derives
// its in-memory structures from it: operation set = SnapshotEntries ∪
// JournalEntries (set union dedupes the overlap), Lamport clock = max
// over both, fold checkpoint = refold (SnapshotMark names where the
// snapshot's fold stood), gossip journal = JournalEntries at absolute
// positions [Base, End).
type Recovery struct {
	SnapshotEntries []oplog.Entry   // snapshot-chain union: full snapshot then each delta, oldest first
	SnapshotPos     int             // journal position the resolved chain covers (the chain tip)
	SnapshotBase    int             // position of the chain's full snapshot (== SnapshotPos without deltas)
	SnapshotMark    oplog.Watermark // fold watermark at the chain tip
	Deltas          int             // delta links in the resolved chain
	JournalEntries  []oplog.Entry   // arrival order, positions [Base, End)
	Base            int             // absolute position of the first retained journal entry
	End             int             // next position to be appended
	TornBytes       int64           // bytes dropped from a torn final record
}

// chunk is one Stage call's worth of staged entries; ModeEveryOp fsyncs
// chunk-at-a-time, the group modes drain every chunk into one flush.
type chunk struct {
	entries []oplog.Entry
	end     int // position just past the last entry
	bytes   int // framed size on disk (tracked only in ModeAdaptive)
}

type waiter struct {
	end int
	fn  func(ok bool)
}

// segment is one journal file's metadata.
type segment struct {
	path   string
	start  int // absolute position of its first record
	count  int // records it holds
	sealed bool
}

// Store is one replica's durable tier. Stage/Commit/AckTo/WriteSnapshot
// are safe for concurrent use; Stage calls must be externally serialized
// in position order (the owning replica stages under its own mutex).
type Store struct {
	dir string
	opt Options
	fs  faultfs.FS // == opt.FS; every disk call routes through it

	mu           sync.Mutex
	pending      []chunk
	pendingBytes int // framed bytes staged but not flushed (ModeAdaptive)
	waiters      []waiter
	end          int // next position to assign
	flushed      int // positions below this are fsynced
	ackPos       int // min position every gossip peer has acknowledged
	snapPos      int // position covered by the newest durable snapshot chain (the tip)
	snapBase     int // position of the newest durable FULL snapshot — the compaction gate
	deltasSince  int // delta cuts since the newest full snapshot
	segs         []segment
	freeSegs     []string // retired segment files awaiting recycling
	freeSeq      int      // next free-pool filename ordinal
	failed       error    // sticky I/O error: all later commits fail
	closed       bool

	// deltaPend holds every staged entry not yet covered by a snapshot
	// cut (chain mode only): positions [deltaBase, end), in stage order.
	// A delta cut at pos persists the [snapPos, pos) prefix and drops it
	// on success — a skipped or failed cut keeps it, so the next cut
	// covers a superset and nothing ever silently leaves the chain.
	deltaPend []oplog.Entry
	deltaBase int
	deltaOver bool // deltaPend overflowed and was dropped: next cut must be full

	// File handles are owned by whoever runs flushes: the background
	// flusher goroutine, or the calling goroutine under flushMu when
	// Inline. Never touched with mu held — fsync must not block staging.
	flushMu  sync.Mutex
	seg      faultfs.File
	segBytes int64  // data bytes in the active segment (file size may exceed this when preallocated)
	segSeed  uint32 // CRC seed of the active segment
	scratch  []byte

	kick     chan struct{} // wake the flusher (buffered, coalescing)
	full     chan struct{} // ModeTimer/ModeAdaptive early departure
	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	snapBusy atomic.Bool

	fsyncs     atomic.Int64
	appended   atomic.Int64
	snapshots  atomic.Int64
	snapFails  atomic.Int64
	deltaSnaps atomic.Int64
	recycled   atomic.Int64
	maxStall   atomic.Int64 // longest single flush (write+fsync), ns
	ewmaFsync  atomic.Int64 // EWMA of recent fsync cost, ns (steers ModeAdaptive's knee)
	ewmaTook   atomic.Int64 // EWMA of framed bytes per flush (ModeAdaptive's load signal)
	tornBytes  int64

	fsyncLat *stats.Reservoir // fsync durations, ns (bounded sample, bench tables)
	snapLat  *stats.Reservoir // snapshot-cut durations, ns

	// Full log-bucketed distributions of the same events, for the
	// daemon's Prometheus histogram series. Fixed memory, so a
	// long-lived store records every fsync instead of a sample.
	fsyncHist stats.LatHist
	snapHist  stats.LatHist
}

// Open replays dir (created if absent) and returns the store positioned
// to append after everything recovered. Abandoned temp files are swept,
// a torn final record is truncated away, and corruption before the tail
// fails with ErrCorrupt.
func Open(dir string, opt Options) (*Store, Recovery, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	s := &Store{
		dir:      dir,
		opt:      opt,
		fs:       opt.FS,
		kick:     make(chan struct{}, 1),
		full:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		fsyncLat: stats.NewReservoir(4096),
		snapLat:  stats.NewReservoir(1024),
	}
	rec, err := s.replay()
	if err != nil {
		return nil, Recovery{}, err
	}
	s.end = rec.End
	s.flushed = rec.End
	s.ackPos = rec.Base
	s.snapPos = rec.SnapshotPos
	s.snapBase = rec.SnapshotBase
	s.deltasSince = rec.Deltas
	s.tornBytes = rec.TornBytes
	if opt.SnapshotChain > 1 {
		// Re-seed the delta buffer: the journal retains exactly the
		// positions past the chain tip, the entries the next delta cut
		// must cover.
		s.deltaBase = rec.SnapshotPos
		if from := rec.SnapshotPos - rec.Base; from >= 0 && from <= len(rec.JournalEntries) {
			s.deltaPend = append(s.deltaPend, rec.JournalEntries[from:]...)
		} else {
			s.deltaOver = true
		}
	}
	if !opt.Inline {
		s.wg.Add(1)
		go s.flushLoop()
	}
	return s, rec, nil
}

// Dir reports the directory the store lives in.
func (s *Store) Dir() string { return s.dir }

// InlineMode reports whether all disk work runs synchronously on the
// calling goroutine (Options.Inline) rather than on background
// goroutines. Callers that must react to a commit failure from inside
// its callback use this to decide whether spawning is safe — and, on
// the deterministic simulator, forbidden.
func (s *Store) InlineMode() bool { return s.opt.Inline }

// End reports the next journal position to be assigned.
func (s *Store) End() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// FailErr reports the sticky I/O error that poisoned this store, or nil
// while it is healthy. Once set, every later Commit fails with ok=false;
// callers use the error itself to classify the failure — a full or
// transiently failing disk (ENOSPC, EIO) may heal and be reopened, while
// corruption must stay fatal.
func (s *Store) FailErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// SnapshotPos reports the journal position covered by the newest durable
// snapshot.
func (s *Store) SnapshotPos() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapPos
}

// Stats returns the disk-work counters.
func (s *Store) Stats() Stats {
	return Stats{
		Fsyncs:           s.fsyncs.Load(),
		Appended:         s.appended.Load(),
		Snapshots:        s.snapshots.Load(),
		SnapshotFailures: s.snapFails.Load(),
		DeltaSnapshots:   s.deltaSnaps.Load(),
		Recycled:         s.recycled.Load(),
		TornBytes:        s.tornBytes,
		MaxStallNs:       s.maxStall.Load(),
	}
}

// FsyncLatency exposes the sampled distribution of journal fsync costs.
func (s *Store) FsyncLatency() *stats.Reservoir { return s.fsyncLat }

// SnapshotCutLatency exposes the sampled distribution of snapshot-cut
// durations (serialize + write + fsync + rename), full and delta alike.
func (s *Store) SnapshotCutLatency() *stats.Reservoir { return s.snapLat }

// FsyncHist exposes the full log-bucketed fsync-cost histogram.
func (s *Store) FsyncHist() *stats.LatHist { return &s.fsyncHist }

// SnapshotCutHist exposes the full log-bucketed snapshot-cut histogram.
func (s *Store) SnapshotCutHist() *stats.LatHist { return &s.snapHist }

// NextSnapshotIsFull reports whether the next WriteSnapshot cut must
// carry the full ledger: always when chaining is disabled, when no full
// snapshot exists yet, after a delta-buffer overflow, and every
// Options.SnapshotChain-th cut. Owners consult it to decide whether to
// pay the full-ledger copy; passing nil entries to WriteSnapshot selects
// a delta cut from the store's own staged buffer.
func (s *Store) NextSnapshotIsFull() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextFullLocked()
}

func (s *Store) nextFullLocked() bool {
	k := s.opt.SnapshotChain
	if k <= 1 || s.deltaOver {
		return true
	}
	if s.snapBase == 0 && s.snapPos == 0 {
		return true // no chain to extend yet
	}
	return s.deltasSince >= k-1
}

// Stage queues entries for the journal at the next positions and returns
// the position just past the last one — the watermark to pass to Commit.
// Staging is memory-only; durability arrives with the flush that covers
// the returned position. After Close or Crash, staging is a no-op (the
// process is gone; there is nowhere for the bytes to go).
func (s *Store) Stage(entries []oplog.Entry) int {
	var bytes int
	if s.opt.Mode == ModeAdaptive {
		for _, e := range entries {
			bytes += recHdrLen + oplog.EntrySize(e)
		}
	}
	s.mu.Lock()
	if s.closed || len(entries) == 0 {
		end := s.end
		s.mu.Unlock()
		return end
	}
	if s.opt.SnapshotChain > 1 && !s.deltaOver {
		if len(s.deltaPend) == 0 {
			s.deltaBase = s.end
		}
		s.deltaPend = append(s.deltaPend, entries...)
		if len(s.deltaPend) > maxDeltaPending {
			s.deltaPend, s.deltaOver = nil, true
		}
	}
	s.end += len(entries)
	end := s.end
	s.pending = append(s.pending, chunk{entries: entries, end: end, bytes: bytes})
	s.pendingBytes += bytes
	batchFull := s.opt.Mode == ModeTimer && len(s.pending) >= s.opt.MaxBatch ||
		s.opt.Mode == ModeAdaptive && s.pendingBytes >= 4*s.opt.AdaptiveDeadline.KneeBytes
	s.mu.Unlock()
	s.appended.Add(int64(len(entries)))
	if batchFull {
		signal(s.full)
	}
	return end
}

// Commit asks for durability of every position below end; then fires
// exactly once — with ok=true after the flush that covers end, or
// ok=false if the store crashed or hit an I/O error first. then runs on
// the flusher goroutine (inline on the caller when Options.Inline), so
// it must not block on a future commit of this store.
func (s *Store) Commit(end int, then func(ok bool)) {
	if then == nil {
		then = func(bool) {}
	}
	s.mu.Lock()
	switch {
	case s.failed != nil:
		s.mu.Unlock()
		then(false)
		return
	case end <= s.flushed:
		s.mu.Unlock()
		then(true)
		return
	case s.closed:
		// Nothing further will be flushed.
		s.mu.Unlock()
		then(false)
		return
	}
	s.waiters = append(s.waiters, waiter{end: end, fn: then})
	s.mu.Unlock()
	if s.opt.Inline {
		s.drain()
		return
	}
	signal(s.kick)
}

// AckTo records that every gossip peer has acknowledged positions below
// pos, unlocking compaction of segments the peers will never need again.
func (s *Store) AckTo(pos int) {
	s.mu.Lock()
	changed := pos > s.ackPos
	if changed {
		s.ackPos = pos
	}
	s.mu.Unlock()
	if !changed {
		return
	}
	if s.opt.Inline {
		s.compact()
	} else {
		signal(s.kick) // the flusher compacts after its next pass
	}
}

// WriteSnapshot atomically persists the ledger prefix [0, pos): entries
// in canonical fold order, stamped with the fold watermark they derive.
// The write waits for the journal flush covering pos — a snapshot that
// became durable ahead of the journal records it claims to cover would,
// after a crash, let compaction delete segments holding entries that
// are in no snapshot — and then happens off the caller's path (inline
// under Options.Inline). If a snapshot write is already running, this
// one is skipped; the next trigger covers a superset. On success the
// snapshot watermark advances, old snapshots are pruned to
// Options.KeepSnapshots, and fully-covered journal segments become
// compactable; a failed write counts in Stats.SnapshotFailures and the
// watermark stays put, so compaction stalls visibly rather than
// silently losing data.
//
// With Options.SnapshotChain enabled, nil entries select a delta cut:
// the store persists just its internally-buffered entries past the
// previous cut, chained to it by a parent link, so the owner never pays
// a full-ledger copy for an incremental cut. Owners consult
// NextSnapshotIsFull to decide which to request.
func (s *Store) WriteSnapshot(entries []oplog.Entry, pos int, mark oplog.Watermark) {
	s.Commit(pos, func(ok bool) {
		if !ok {
			s.snapFails.Add(1)
			return
		}
		job := func() { s.writeSnapshot(entries, pos, mark) }
		if entries == nil {
			job = func() { s.writeDelta(pos, mark) }
		}
		if s.opt.Inline {
			job()
			return
		}
		if !s.snapBusy.CompareAndSwap(false, true) {
			return
		}
		// closed and the Add must be decided under one lock: stop() only
		// waits for goroutines added before closed became visible.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.snapBusy.Store(false)
			return
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.snapBusy.Store(false)
			job()
		}()
	})
}

// Close flushes everything staged, fsyncs, and closes the files — the
// graceful shutdown. It reports the sticky I/O error, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.drain()
	s.flushMu.Lock()
	if s.seg != nil {
		if s.opt.Preallocate {
			// Hand back the unused reservation: a graceful shutdown leaves
			// the file ending exactly at its last record, so reopen sees
			// no phantom torn tail.
			if s.seg.Truncate(s.segBytes) == nil {
				s.seg.Sync()
			}
		}
		s.seg.Close()
		s.seg = nil
	}
	s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Crash simulates the process dying: staged-but-unflushed entries are
// dropped, every pending commit fails with ok=false, and the files are
// closed with no final fsync. What Open finds afterwards is exactly what
// earlier flushes made durable — the volatile tail is gone, as §2.2's
// fail-fast discipline demands.
func (s *Store) Crash() {
	s.mu.Lock()
	s.closed = true
	s.pending = nil
	s.pendingBytes = 0
	dead := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	s.stop()
	s.flushMu.Lock()
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.flushMu.Unlock()
	for _, w := range dead {
		w.fn(false)
	}
}

// stop halts the background goroutines and waits for them.
func (s *Store) stop() {
	s.stopOnce.Do(func() { close(s.quit) })
	if !s.opt.Inline {
		s.wg.Wait()
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// flushLoop is the city bus: it departs when kicked (ModeGroup: at
// once; ModeTimer: after the interval or a full batch), flushes
// everything aboard with one fsync, fires the satisfied commit waiters,
// and compacts any segment the snapshot and ack watermarks have both
// passed.
func (s *Store) flushLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.kick:
		}
		hold := time.Duration(0)
		switch s.opt.Mode {
		case ModeTimer:
			hold = s.opt.Interval
		case ModeAdaptive:
			hold = s.adaptiveHold()
		}
		if hold > 0 {
			timer := time.NewTimer(hold)
			select {
			case <-timer.C:
			case <-s.full:
				timer.Stop()
			case <-s.quit:
				timer.Stop()
				return
			}
		}
		s.drain()
		s.compact()
	}
}

// adaptiveHold maps the store's load onto the AdaptiveDeadline curve:
// zero when the ring is shallow (flush now — nothing worth waiting for),
// rising linearly to min(MaxWait, fsync-cost EWMA) at KneeBytes. Load is
// max(staged backlog, EWMA of recent flush size): the flusher usually
// wakes on the FIRST rider of a burst, when the instantaneous backlog
// still looks shallow, so the recent-flush EWMA is what keeps the bus at
// the stop while the rest of a sustained stream boards. Until the first
// fsync lands there is no cost estimate and no hold.
func (s *Store) adaptiveHold() time.Duration {
	s.mu.Lock()
	backlog := s.pendingBytes
	s.mu.Unlock()
	if backlog == 0 {
		return 0
	}
	ceil := time.Duration(s.ewmaFsync.Load())
	if ceil <= 0 {
		return 0
	}
	if max := s.opt.AdaptiveDeadline.MaxWait; ceil > max {
		ceil = max
	}
	load := int64(backlog)
	if recent := s.ewmaTook.Load(); recent > load {
		load = recent
	}
	knee := int64(s.opt.AdaptiveDeadline.KneeBytes)
	if load >= knee {
		return ceil
	}
	return ceil * time.Duration(load) / time.Duration(knee)
}

// drain flushes staged chunks until none remain: one fsync for the lot
// in the group modes, one fsync per chunk in ModeEveryOp.
func (s *Store) drain() {
	for {
		limit := -1
		if s.opt.Mode == ModeEveryOp {
			limit = 1
		}
		fire, more := s.flushOnce(limit)
		for _, w := range fire {
			w.fn(w.end >= 0)
		}
		if !more {
			return
		}
	}
}

// flushOnce writes up to limit staged chunks (-1 for all), fsyncs, and
// returns the commit waiters now satisfied — a negative end marking
// waiters being failed after an I/O error — plus whether chunks remain.
func (s *Store) flushOnce(limit int) (fire []waiter, more bool) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if s.failed != nil {
		fire = failAll(s.waiters)
		s.waiters = nil
		s.pending = nil
		s.pendingBytes = 0
		s.mu.Unlock()
		return fire, false
	}
	var take []chunk
	if limit < 0 || limit >= len(s.pending) {
		take, s.pending = s.pending, nil
		s.pendingBytes = 0
	} else {
		take = s.pending[:limit:limit]
		s.pending = s.pending[limit:]
		for _, c := range take {
			s.pendingBytes -= c.bytes
		}
	}
	s.mu.Unlock()

	if len(take) == 0 {
		// Nothing staged; a waiter may still be satisfiable (its entries
		// rode an earlier flush) or doomed (staged entries were dropped
		// by Crash between its Stage and Commit).
		s.mu.Lock()
		fire = s.takeWaitersLocked()
		if s.closed {
			fire = append(fire, failAll(s.waiters)...)
			s.waiters = nil
		}
		s.mu.Unlock()
		return fire, false
	}

	var tookBytes int64
	for _, c := range take {
		tookBytes += int64(c.bytes)
	}
	if old := s.ewmaTook.Load(); old == 0 {
		s.ewmaTook.Store(tookBytes)
	} else {
		s.ewmaTook.Store(old - old/8 + tookBytes/8)
	}

	start := time.Now()
	err := s.writeChunks(take)
	if err == nil {
		err = s.syncSeg()
	}
	if stall := int64(time.Since(start)); err == nil {
		for {
			cur := s.maxStall.Load()
			if stall <= cur || s.maxStall.CompareAndSwap(cur, stall) {
				break
			}
		}
	}

	s.mu.Lock()
	if err != nil {
		s.failed = err
		fire = failAll(s.waiters)
		s.waiters = nil
		s.pending = nil
		s.pendingBytes = 0
		s.mu.Unlock()
		return fire, false
	}
	s.flushed = take[len(take)-1].end
	fire = s.takeWaitersLocked()
	more = len(s.pending) > 0
	s.mu.Unlock()
	return fire, more
}

func failAll(ws []waiter) []waiter {
	out := make([]waiter, 0, len(ws))
	for _, w := range ws {
		out = append(out, waiter{end: -1, fn: w.fn})
	}
	return out
}

// takeWaitersLocked removes and returns the waiters covered by the
// flushed watermark. Caller holds mu.
func (s *Store) takeWaitersLocked() []waiter {
	var fire []waiter
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.end <= s.flushed {
			fire = append(fire, w)
		} else {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
	return fire
}

// writeChunks appends the chunks' entries as framed records to the
// active segment, rotating between chunks when the segment is over
// size. Caller holds flushMu.
func (s *Store) writeChunks(chunks []chunk) error {
	if s.seg == nil {
		if err := s.openSegLocked(); err != nil {
			return err
		}
	}
	for _, c := range chunks {
		if s.segBytes >= int64(s.opt.SegmentBytes) {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
		s.scratch = s.scratch[:0]
		for _, e := range c.entries {
			s.scratch = appendRecord(s.scratch, e, s.segSeed)
		}
		n, err := s.seg.Write(s.scratch)
		s.segBytes += int64(n)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.segs[len(s.segs)-1].count += len(c.entries)
		s.mu.Unlock()
	}
	return nil
}

// appendRecord frames one entry into buf: the payload is encoded directly
// after a reserved header, then the header is filled in — no intermediate
// per-entry allocation, so a reused scratch buffer makes the whole flush
// path allocation-free at steady state. The CRC is salted with the
// segment's seed (0 for snapshots and legacy segments; crc32.Update with
// seed 0 equals plain crc32.Checksum).
func appendRecord(buf []byte, e oplog.Entry, seed uint32) []byte {
	hdr := len(buf)
	buf = append(buf, make([]byte, recHdrLen)...) // header placeholder, backfilled below
	buf = oplog.AppendEntry(buf, e)
	payload := buf[hdr+recHdrLen:]
	binary.LittleEndian.PutUint32(buf[hdr:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[hdr+4:], crc32.Update(seed, castagnoli, payload))
	return buf
}

func (s *Store) syncSeg() error {
	start := time.Now()
	if d := s.opt.FsyncDelay; d > 0 {
		// The slow-disk fault: the flush takes this much longer to land.
		// Sleeping before Sync keeps the failure semantics identical — a
		// crash mid-delay loses exactly what a crash mid-fsync would.
		time.Sleep(d)
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	cost := time.Since(start)
	s.fsyncs.Add(1)
	s.fsyncLat.AddDur(cost)
	s.fsyncHist.AddDur(cost)
	// EWMA (α = 1/8) of fsync cost: ModeAdaptive's estimate of what one
	// more flush would charge, i.e. what a coalescing hold is worth.
	old := s.ewmaFsync.Load()
	if old == 0 {
		s.ewmaFsync.Store(int64(cost))
	} else {
		s.ewmaFsync.Store(old - old/8 + int64(cost)/8)
	}
	return nil
}

// openSegLocked opens (or creates) the active segment for appending,
// detecting the header version to pick the record-CRC seed. Caller holds
// flushMu.
func (s *Store) openSegLocked() error {
	s.mu.Lock()
	if len(s.segs) == 0 {
		// The first record written lands at the flushed watermark — never
		// at end, which counts staged-but-unwritten entries too.
		s.segs = append(s.segs, segment{path: s.segPath(s.flushed), start: s.flushed})
	}
	active := s.segs[len(s.segs)-1]
	s.mu.Unlock()
	f, err := s.fs.OpenFile(active.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := info.Size()
	seed := seedFor(active.start)
	switch {
	case size >= int64(segHdrV2) && magicAt(f, segMagicV2):
		// Salted segment resumed; replay already trimmed it to its data.
	case size >= int64(len(segMagic)) && magicAt(f, segMagic):
		seed = 0 // legacy segment: records carry unsalted CRCs
	default:
		// Fresh segment (or a header torn by a crash at creation): start it over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if err := writeSegHeader(f, active.start); err != nil {
			f.Close()
			return err
		}
		size = int64(segHdrV2)
		if err := s.syncDir(); err != nil {
			f.Close()
			return err
		}
	}
	if s.opt.Preallocate && size < int64(s.opt.SegmentBytes) {
		preallocate(f, int64(s.opt.SegmentBytes)) // best-effort
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	s.segBytes = size
	s.segSeed = seed
	return nil
}

// magicAt reports whether f begins with magic.
func magicAt(f faultfs.File, magic string) bool {
	buf := make([]byte, len(magic))
	_, err := f.ReadAt(buf, 0)
	return err == nil && string(buf) == magic
}

// writeSegHeader stamps a v2 header — magic plus the segment's absolute
// start position, the CRC salt — at the front of f.
func writeSegHeader(f faultfs.File, start int) error {
	var hdr [segHdrV2]byte
	copy(hdr[:], segMagicV2)
	binary.LittleEndian.PutUint64(hdr[len(segMagicV2):], uint64(start))
	_, err := f.WriteAt(hdr[:], 0)
	return err
}

// rotateLocked seals the active segment and starts the next one at the
// current end of the flushed+pending stream. Sealed segments are trimmed
// to their data length (recovery demands every byte of a sealed segment
// verify; the reservation moves to the new segment), and the new segment
// comes from the free pool when recycling is on. Caller holds flushMu.
func (s *Store) rotateLocked() error {
	if err := s.syncSeg(); err != nil {
		return err
	}
	if s.opt.Preallocate {
		if err := s.seg.Truncate(s.segBytes); err != nil {
			return err
		}
		if err := s.seg.Sync(); err != nil {
			return err
		}
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	s.seg = nil
	s.mu.Lock()
	last := &s.segs[len(s.segs)-1]
	last.sealed = true
	next := last.start + last.count
	s.segs = append(s.segs, segment{path: s.segPath(next), start: next})
	s.mu.Unlock()
	return s.newSegLocked(s.segPath(next), next)
}

// newSegLocked opens the next active segment at path: reborn from the
// free pool when a retired file is waiting (its blocks already
// allocated; its old records invisible under the new CRC seed), freshly
// created and preallocated otherwise. Caller holds flushMu.
func (s *Store) newSegLocked(path string, start int) error {
	var free string
	s.mu.Lock()
	if n := len(s.freeSegs); n > 0 {
		free, s.freeSegs = s.freeSegs[n-1], s.freeSegs[:n-1]
	}
	s.mu.Unlock()
	var f faultfs.File
	if free != "" {
		if err := s.fs.Rename(free, path); err != nil {
			s.fs.Remove(free)
		} else if g, err := s.fs.OpenFile(path, os.O_RDWR, 0o644); err != nil {
			s.fs.Remove(path)
		} else {
			f = g
			s.recycled.Add(1)
		}
	}
	if f == nil {
		g, err := s.fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		f = g
	}
	if err := writeSegHeader(f, start); err != nil {
		f.Close()
		return err
	}
	if s.opt.Preallocate {
		preallocate(f, int64(s.opt.SegmentBytes)) // best-effort
	}
	if err := s.syncDir(); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(int64(segHdrV2), io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	s.segBytes = int64(segHdrV2)
	s.segSeed = seedFor(start)
	return nil
}

func (s *Store) segPath(start int) string {
	return filepath.Join(s.dir, fmt.Sprintf("journal-%010d.seg", start))
}

func (s *Store) snapPath(pos int) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%010d.snap", pos))
}

func (s *Store) deltaPath(pos int) string {
	return filepath.Join(s.dir, fmt.Sprintf("delta-%010d.snap", pos))
}

// compact retires sealed journal segments every position of which is
// below both watermarks — durably covered by a FULL snapshot AND
// acknowledged by every gossip peer. Either alone is not enough:
// compacting on the snapshot only could strand a slow peer mid-catch-up
// after a crash, compacting on acks only could leave Open with a journal
// whose prefix is neither on disk nor reconstructible. The gate is the
// chain base, not the chain tip: if the newest delta tears, recovery
// falls back to a chain prefix, and the journal must still hold
// everything past it.
func (s *Store) compact() {
	s.mu.Lock()
	keep := s.ackPos
	if s.snapBase < keep {
		keep = s.snapBase
	}
	var doomed []string
	for len(s.segs) > 1 && s.segs[0].sealed && s.segs[0].start+s.segs[0].count <= keep {
		doomed = append(doomed, s.segs[0].path)
		s.segs = s.segs[1:]
	}
	s.mu.Unlock()
	for _, path := range doomed {
		s.retireSeg(path)
	}
	if len(doomed) > 0 {
		s.syncDir()
	}
}

// retireSeg disposes of a fully-compacted segment file: with recycling
// on it is renamed into the free pool for the next rotation to reuse,
// otherwise (or when the pool is full) deleted.
func (s *Store) retireSeg(path string) {
	if s.opt.Preallocate {
		s.mu.Lock()
		var free string
		if len(s.freeSegs) < maxFreeSegs {
			free = filepath.Join(s.dir, fmt.Sprintf("free-%010d.seg", s.freeSeq))
			s.freeSeq++
		}
		s.mu.Unlock()
		if free != "" && s.fs.Rename(path, free) == nil {
			s.mu.Lock()
			s.freeSegs = append(s.freeSegs, free)
			s.mu.Unlock()
			return
		}
	}
	s.fs.Remove(path)
}

// writeSnapshot does the actual temp-write + fsync + rename of a FULL
// snapshot, and on success resets the delta chain to root here.
func (s *Store) writeSnapshot(entries []oplog.Entry, pos int, mark oplog.Watermark) {
	began := time.Now()
	s.mu.Lock()
	if s.closed || s.failed != nil || pos <= s.snapPos {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Size the buffer exactly (EntrySize per record plus framing) and
	// borrow it from the shared pool: snapshots of a steady-state ledger
	// are all about the same size, so successive writes reuse one array.
	size := 64
	for _, e := range entries {
		size += recHdrLen + oplog.EntrySize(e)
	}
	scratch := oplog.GetBuf()
	defer oplog.PutBuf(scratch)
	if cap(*scratch) < size {
		*scratch = make([]byte, 0, size)
	}
	buf := *scratch
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(pos))
	buf = oplog.AppendWatermark(buf, mark)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendRecord(buf, e, 0)
	}
	buf = append(buf, snapFooter...)
	*scratch = buf[:0]

	final := s.snapPath(pos)
	tmp := final + ".tmp"
	if err := s.writeFileSync(tmp, buf); err != nil {
		s.fs.Remove(tmp)
		s.snapFails.Add(1)
		return
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp)
		s.snapFails.Add(1)
		return
	}
	s.syncDir()
	s.snapshots.Add(1)
	cut := time.Since(began)
	s.snapLat.AddDur(cut)
	s.snapHist.AddDur(cut)

	s.mu.Lock()
	if pos > s.snapPos {
		s.snapPos = pos
	}
	if pos > s.snapBase {
		s.snapBase = pos
	}
	if s.opt.SnapshotChain > 1 {
		s.deltasSince = 0
		if s.deltaOver && s.end == pos {
			// The overflow's lost range is fully covered by this full cut:
			// the buffer can re-anchor here.
			s.deltaOver, s.deltaPend, s.deltaBase = false, nil, pos
		}
		if !s.deltaOver {
			s.dropDeltaPrefixLocked(pos)
		}
	}
	s.mu.Unlock()
	s.pruneSnapshots()
	s.compact()
}

// dropDeltaPrefixLocked discards buffered entries a successful cut at
// pos now covers. Caller holds mu; the buffer must not be in overflow.
func (s *Store) dropDeltaPrefixLocked(pos int) {
	n := pos - s.deltaBase
	if n <= 0 {
		return
	}
	if n > len(s.deltaPend) {
		n = len(s.deltaPend)
	}
	s.deltaPend = s.deltaPend[n:]
	s.deltaBase = pos
}

// writeDelta persists an incremental snapshot cut: just the buffered
// entries spanning [snapPos, pos), stamped with the parent position so
// recovery can fold the chain back to its full-snapshot root. The
// covered prefix leaves the buffer only on success — a skipped or failed
// cut keeps it, so the next cut covers a superset and no entry silently
// drops out of the chain.
func (s *Store) writeDelta(pos int, mark oplog.Watermark) {
	began := time.Now()
	s.mu.Lock()
	if s.closed || s.failed != nil || pos <= s.snapPos {
		s.mu.Unlock()
		return
	}
	parent := s.snapPos
	if s.deltaOver || s.deltaBase > parent || pos-s.deltaBase > len(s.deltaPend) ||
		(s.snapBase == 0 && s.snapPos == 0) {
		// The buffer cannot produce [parent, pos) — overflow, or there is
		// no full snapshot to chain from. Fail visibly; the owner's next
		// cut will be full.
		s.mu.Unlock()
		s.snapFails.Add(1)
		return
	}
	ents := s.deltaPend[parent-s.deltaBase : pos-s.deltaBase]
	s.mu.Unlock()

	size := 64
	for _, e := range ents {
		size += recHdrLen + oplog.EntrySize(e)
	}
	scratch := oplog.GetBuf()
	defer oplog.PutBuf(scratch)
	if cap(*scratch) < size {
		*scratch = make([]byte, 0, size)
	}
	buf := *scratch
	buf = append(buf, deltaMagic...)
	buf = binary.AppendUvarint(buf, uint64(pos))
	buf = binary.AppendUvarint(buf, uint64(parent))
	buf = oplog.AppendWatermark(buf, mark)
	buf = binary.AppendUvarint(buf, uint64(len(ents)))
	for _, e := range ents {
		buf = appendRecord(buf, e, 0)
	}
	buf = append(buf, snapFooter...)
	*scratch = buf[:0]

	final := s.deltaPath(pos)
	tmp := final + ".tmp"
	if err := s.writeFileSync(tmp, buf); err != nil {
		s.fs.Remove(tmp)
		s.snapFails.Add(1)
		return
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.fs.Remove(tmp)
		s.snapFails.Add(1)
		return
	}
	s.syncDir()
	s.snapshots.Add(1)
	s.deltaSnaps.Add(1)
	cut := time.Since(began)
	s.snapLat.AddDur(cut)
	s.snapHist.AddDur(cut)

	s.mu.Lock()
	if pos > s.snapPos {
		s.snapPos = pos
		s.deltasSince++
		s.dropDeltaPrefixLocked(pos)
	}
	s.mu.Unlock()
	s.pruneSnapshots()
	s.compact()
}

func (s *Store) writeFileSync(path string, data []byte) error {
	f, err := s.fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pruneSnapshots deletes all but the newest KeepSnapshots FULL snapshot
// files, plus every delta positioned below the oldest retained full —
// those chain (directly or transitively) only to deleted roots. Deltas
// above it chain to a retained full and stay: they are the fallback
// prefixes recovery may need.
func (s *Store) pruneSnapshots() {
	fulls, err := s.fs.Glob(filepath.Join(s.dir, "snap-*.snap"))
	if err != nil || len(fulls) <= s.opt.KeepSnapshots {
		return
	}
	sort.Strings(fulls) // position-padded names sort oldest first
	cutoff, err := snapFilePos(fulls[len(fulls)-s.opt.KeepSnapshots])
	if err != nil {
		return
	}
	for _, path := range fulls[:len(fulls)-s.opt.KeepSnapshots] {
		s.fs.Remove(path)
	}
	deltas, _ := s.fs.Glob(filepath.Join(s.dir, "delta-*.snap"))
	for _, path := range deltas {
		if pos, err := snapFilePos(path); err == nil && pos < cutoff {
			s.fs.Remove(path)
		}
	}
}

// snapFilePos extracts the position encoded in a snapshot or delta
// filename.
func snapFilePos(path string) (int, error) {
	name := strings.TrimSuffix(filepath.Base(path), ".snap")
	if i := strings.IndexByte(name, '-'); i >= 0 {
		name = name[i+1:]
	}
	return strconv.Atoi(name)
}

// syncDir fsyncs the store directory so renames and removals inside it
// are durable before we depend on them.
func (s *Store) syncDir() error {
	d, err := s.fs.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---- Open-time replay ----------------------------------------------------

func (s *Store) replay() (Recovery, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return Recovery{}, err
	}
	var segPaths, snapPaths, deltaPaths []string
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An abandoned atomic write: never renamed, never valid.
			s.fs.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".seg"):
			segPaths = append(segPaths, name)
		case strings.HasPrefix(name, "free-") && strings.HasSuffix(name, ".seg"):
			// A pooled segment from the previous life: rejoin the pool, or
			// sweep it when recycling is off.
			path := filepath.Join(s.dir, name)
			if !s.opt.Preallocate {
				s.fs.Remove(path)
				break
			}
			s.freeSegs = append(s.freeSegs, path)
			if n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "free-"), ".seg")); err == nil && n >= s.freeSeq {
				s.freeSeq = n + 1
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snapPaths = append(snapPaths, name)
		case strings.HasPrefix(name, "delta-") && strings.HasSuffix(name, ".snap"):
			deltaPaths = append(deltaPaths, name)
		}
	}
	sort.Strings(segPaths)

	rec := Recovery{}
	s.resolveSnapChain(&rec, snapPaths, deltaPaths)

	for i, name := range segPaths {
		path := filepath.Join(s.dir, name)
		start, err := segStart(name)
		if err != nil {
			return Recovery{}, fmt.Errorf("store: bad segment name %q: %w", name, err)
		}
		if i == 0 {
			rec.Base = start
			rec.End = start
		} else if start != rec.End {
			return Recovery{}, fmt.Errorf("store: journal gap: segment %q starts at %d, want %d", name, start, rec.End)
		}
		final := i == len(segPaths)-1
		entries, torn, err := s.scanSegment(path, start, final)
		if err != nil {
			return Recovery{}, err
		}
		rec.TornBytes += torn
		rec.JournalEntries = append(rec.JournalEntries, entries...)
		rec.End += len(entries)
		s.segs = append(s.segs, segment{path: path, start: start, count: len(entries), sealed: !final})
	}
	if len(segPaths) == 0 {
		// Fresh directory, or every segment compacted away before a
		// crash: the journal resumes just past the snapshot.
		rec.Base = rec.SnapshotPos
		rec.End = rec.SnapshotPos
	}
	if rec.Base > rec.SnapshotPos && rec.Base > 0 {
		return Recovery{}, fmt.Errorf("store: positions [%d, %d) are on no snapshot and no retained segment", rec.SnapshotPos, rec.Base)
	}
	if rec.SnapshotPos > rec.End {
		// A snapshot claiming positions the journal never durably held:
		// WriteSnapshot gates on the covering flush precisely so this
		// state cannot arise, so finding it means the directory was
		// tampered with or mixes incarnations — resuming would assign
		// fresh entries to positions the snapshot already claims.
		return Recovery{}, fmt.Errorf("store: snapshot covers [0, %d) but the journal ends at %d", rec.SnapshotPos, rec.End)
	}
	return rec, nil
}

func segStart(name string) (int, error) {
	return strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".seg"))
}

// resolveSnapChain picks the snapshot state recovery starts from: the
// newest candidate (full or delta) whose every chain link down to a full
// snapshot verifies end to end. A torn or missing link disqualifies that
// candidate and the walk restarts from the next-newest — the fallback to
// a chain prefix (or an older chain). Compaction gates on the chain
// base, so the journal still retains every position past any prefix tip:
// the fallback is lossless, and the kill/recover differentials hold
// byte-identical across it. Chain entries land in rec.SnapshotEntries
// root-first; position ranges never overlap ([0,base) then each
// [parent,pos)), and the owner set-unions them anyway.
func (s *Store) resolveSnapChain(rec *Recovery, snapPaths, deltaPaths []string) {
	type snapFile struct {
		pos     int
		full    bool
		name    string
		loaded  bool
		bad     bool
		entries []oplog.Entry
		parent  int
		mark    oplog.Watermark
	}
	var cands []*snapFile
	for _, name := range snapPaths {
		if pos, err := snapFilePos(name); err == nil {
			cands = append(cands, &snapFile{pos: pos, full: true, name: name})
		}
	}
	for _, name := range deltaPaths {
		if pos, err := snapFilePos(name); err == nil {
			cands = append(cands, &snapFile{pos: pos, name: name})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pos != cands[j].pos {
			return cands[i].pos > cands[j].pos
		}
		return cands[i].full && !cands[j].full
	})
	load := func(c *snapFile) bool {
		if !c.loaded {
			c.loaded = true
			entries, pos, parent, mark, full, err := loadSnapshotFile(s.fs, filepath.Join(s.dir, c.name))
			if err != nil || pos != c.pos || full != c.full {
				c.bad = true
			} else {
				c.entries, c.parent, c.mark = entries, parent, mark
			}
		}
		return !c.bad
	}
	byPos := func(pos int) *snapFile {
		var best *snapFile
		for _, c := range cands {
			if c.pos == pos && !c.bad && (best == nil || c.full) {
				best = c
			}
		}
		return best
	}
	for _, tip := range cands {
		var chain []*snapFile
		ok := true
		for cur := tip; ; {
			if !load(cur) {
				ok = false
				break
			}
			chain = append(chain, cur)
			if cur.full {
				break
			}
			next := byPos(cur.parent)
			if next == nil || len(chain) > len(cands) {
				ok = false // missing link (or a parent cycle in a tampered dir)
				break
			}
			cur = next
		}
		if !ok {
			continue
		}
		for i := len(chain) - 1; i >= 0; i-- {
			rec.SnapshotEntries = append(rec.SnapshotEntries, chain[i].entries...)
		}
		rec.SnapshotPos = tip.pos
		rec.SnapshotMark = tip.mark
		rec.SnapshotBase = chain[len(chain)-1].pos
		rec.Deltas = len(chain) - 1
		return
	}
}

// scanSegment replays one segment file. In a sealed (non-final) segment
// every record must verify; in the final segment an invalid record is a
// torn tail — truncated away and durably forgotten — unless valid-looking
// bytes follow it, which no torn write produces: that is ErrCorrupt. The
// torn-tail rule also absorbs what preallocation and recycling leave
// past the real end of a crashed final segment: zero fill and old-life
// records alike fail their (new-seed) CRCs and truncate away.
func (s *Store) scanSegment(path string, start int, final bool) (entries []oplog.Entry, torn int64, err error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var off int
	var seed uint32
	switch {
	case len(data) >= segHdrV2 && string(data[:len(segMagicV2)]) == segMagicV2:
		off, seed = segHdrV2, seedFor(start)
	case len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic:
		off = len(segMagic) // legacy segment: seed 0
	default:
		if final {
			// A crash before the header finished; openSegLocked rewrites it.
			return nil, int64(len(data)), s.truncateTo(path, 0)
		}
		return nil, 0, fmt.Errorf("store: %s: %w", filepath.Base(path), ErrCorrupt)
	}
	for off < len(data) {
		rest := data[off:]
		ok, size, e := parseRecord(rest, seed)
		if !ok {
			if !final {
				return nil, 0, fmt.Errorf("store: %s: record at offset %d: %w", filepath.Base(path), off, ErrCorrupt)
			}
			if trailingRecords(rest, seed) {
				// The bytes beyond the bad record still parse as records:
				// a torn write cannot leave valid data after the tear, so
				// this is mid-journal damage, not a crash artifact.
				return nil, 0, fmt.Errorf("store: %s: record at offset %d: %w", filepath.Base(path), off, ErrCorrupt)
			}
			torn = int64(len(data) - off)
			return entries, torn, s.truncateTo(path, int64(off))
		}
		entries = append(entries, e)
		off += size
	}
	return entries, 0, nil
}

// parseRecord attempts one record at the front of b, reporting whether
// it verified under the segment's CRC seed, how many bytes it spanned,
// and the decoded entry.
func parseRecord(b []byte, seed uint32) (ok bool, size int, e oplog.Entry) {
	if len(b) < recHdrLen {
		return false, 0, oplog.Entry{}
	}
	n := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if n <= 0 || n > maxRecord || recHdrLen+n > len(b) {
		return false, 0, oplog.Entry{}
	}
	payload := b[recHdrLen : recHdrLen+n]
	if crc32.Update(seed, castagnoli, payload) != sum {
		return false, recHdrLen + n, oplog.Entry{}
	}
	e, err := oplog.DecodeEntry(payload)
	if err != nil {
		return false, recHdrLen + n, oplog.Entry{}
	}
	return true, recHdrLen + n, e
}

// trailingRecords reports whether bytes beyond the (invalid) record at
// the front of b parse as at least one valid record — the signature of
// mid-journal corruption rather than a torn tail.
func trailingRecords(b []byte, seed uint32) bool {
	_, size, _ := parseRecord(b, seed)
	if size == 0 || size >= len(b) {
		return false
	}
	ok, _, _ := parseRecord(b[size:], seed)
	return ok
}

func (s *Store) truncateTo(path string, size int64) error {
	if err := s.fs.Truncate(path, size); err != nil {
		return err
	}
	f, err := s.fs.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// loadSnapshotFile parses one snapshot file — full or delta — end to
// end; any shortfall (magic, a record CRC, the footer) invalidates the
// whole file. Deltas carry one extra header field: the parent position
// their chain link hangs from.
func loadSnapshotFile(fsys faultfs.FS, path string) (entries []oplog.Entry, pos, parent int, mark oplog.Watermark, full bool, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0, 0, oplog.Watermark{}, false, err
	}
	bad := func(what string) error { return fmt.Errorf("store: snapshot %s: bad %s", filepath.Base(path), what) }
	fail := func(what string) ([]oplog.Entry, int, int, oplog.Watermark, bool, error) {
		return nil, 0, 0, oplog.Watermark{}, false, bad(what)
	}
	var b []byte
	switch {
	case len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic:
		full, b = true, data[len(snapMagic):]
	case len(data) >= len(deltaMagic) && string(data[:len(deltaMagic)]) == deltaMagic:
		b = data[len(deltaMagic):]
	default:
		return fail("magic")
	}
	upos, n := binary.Uvarint(b)
	if n <= 0 {
		return fail("position")
	}
	b = b[n:]
	if !full {
		uparent, n := binary.Uvarint(b)
		if n <= 0 || uparent > upos {
			return fail("parent")
		}
		parent = int(uparent)
		b = b[n:]
	}
	mark, b, err = oplog.DecodeWatermark(b)
	if err != nil {
		return fail("watermark")
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return fail("count")
	}
	b = b[n:]
	entries = make([]oplog.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		ok, size, e := parseRecord(b, 0)
		if !ok {
			return fail(fmt.Sprintf("record %d", i))
		}
		entries = append(entries, e)
		b = b[size:]
	}
	if string(b) != snapFooter {
		return fail("footer")
	}
	return entries, int(upos), parent, mark, full, nil
}
