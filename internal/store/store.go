// Package store is the durable tier of a replica: a disk-backed,
// append-only, segmented journal of oplog entries plus atomic ledger
// snapshots, glued together by a group-commit fsync loop.
//
// §3.2 of Building on Quicksand is the design brief. The transaction log
// "describing the changes to the state on disk" is also the stream that
// carries state across the failure boundary — checkpointing and logging
// are one mechanism, so this store persists the *operations* (the ledger
// the ACID 2.0 engine already gossips), never derived state. A snapshot
// here is not a memory image: it is the checkpointed prefix of the
// ledger itself, serialized in canonical fold order, from which recovery
// re-derives the fold checkpoint by replaying — the log *is* the
// checkpoint. And commits board a shared fsync the way §3.2's riders
// board a city bus [Group Commit Timers, Helland et al. 1987]: a flush
// departs on a timer or when full, so N concurrent commits cost far
// fewer than N disk flushes (internal/wal models the same economics on
// the simulator; this package pays them against real files).
//
// # On-disk layout
//
// A store owns one directory:
//
//	journal-0000000000.seg   segment: 6-byte magic, then records
//	journal-0000012345.seg   (filename = absolute position of first record)
//	snap-0000012000.snap     snapshot taken at journal position 12000
//
// Every journal record is [uint32 length][uint32 CRC-32C][entry bytes]
// (little-endian, oplog.AppendEntry payload). Appends go to the last
// segment; once it exceeds Options.SegmentBytes it is sealed (fsynced,
// closed) and a fresh segment starts at the next position. Snapshots are
// written to a temp file, fsynced, and renamed into place — they are
// atomic or absent — and only the newest Options.KeepSnapshots survive.
//
// # Recovery and the truncation invariant
//
// Open replays the directory back into memory: newest parseable
// snapshot, then every retained journal record after it. A torn final
// record — a crash mid-append — is truncated away and counted, exactly
// the "examine the work in the tail of the log and determine what the
// heck to do" of §5.1; an invalid record anywhere *before* the tail is
// corruption and fails Open loudly. Journal segments are deleted only
// when every position they hold is below BOTH the newest durable
// snapshot (Open could rebuild without them) and the position every
// gossip peer has acknowledged (no peer will ever need them re-pushed):
// Compact takes the min of the two watermarks the owner feeds it.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/oplog"
)

// Filenames and framing constants.
const (
	segMagic   = "QSEG1\n" // journal segment header
	snapMagic  = "QSNP1\n" // snapshot header
	snapFooter = "QEND\n"  // snapshot trailer: present iff the write completed
	recHdrLen  = 8         // uint32 length + uint32 CRC-32C
	maxRecord  = 16 << 20  // sanity bound on one record's payload
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed its CRC (or decoded to
// garbage) somewhere other than the journal's final record — damage a
// torn write cannot explain, which recovery must not paper over.
var ErrCorrupt = errors.New("store: corrupt journal record before the tail")

// Mode selects how commits reach the platter.
type Mode int

const (
	// ModeGroup (the default) flushes as soon as the device is free,
	// coalescing every commit that arrives while a flush is in flight —
	// no added latency when idle, natural batching under load.
	ModeGroup Mode = iota
	// ModeTimer holds the bus for Options.Interval (departing early once
	// Options.MaxBatch commits are waiting), trading bounded latency for
	// bigger batches.
	ModeTimer
	// ModeEveryOp is the car-per-driver baseline of 1984: one fsync per
	// staged batch, no coalescing. Kept so benchmarks can measure what
	// group commit saves.
	ModeEveryOp
)

// Options tunes a Store. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates the active journal segment once it exceeds
	// this size (default 4 MiB).
	SegmentBytes int
	// Mode picks the commit economics (default ModeGroup).
	Mode Mode
	// Interval is ModeTimer's departure timer (default 2ms).
	Interval time.Duration
	// MaxBatch departs a ModeTimer flush early once this many staged
	// batches are waiting (default 512).
	MaxBatch int
	// KeepSnapshots bounds how many snapshot files survive pruning
	// (default 2; the newest is recovery's source, the runner-up is
	// insurance against a torn newest).
	KeepSnapshots int
	// Inline runs every flush, snapshot, and compaction synchronously on
	// the calling goroutine instead of the background flusher — the
	// deterministic coupling the simulator transport needs. Group-commit
	// economics disappear (each Commit pays its own fsync); correctness
	// is identical.
	Inline bool
	// FsyncDelay injects extra latency before every journal fsync — the
	// slow-disk fault. It stretches commit timing (more commits board
	// each flush, acks arrive later) but must never change outcomes:
	// the slow-disk differential suite pins accepted ops, final states,
	// and apology ledgers equal to an undelayed run of the same script.
	FsyncDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// Stats counts the store's disk work.
type Stats struct {
	Fsyncs    int64 // journal fsyncs completed (the figure group commit minimizes)
	Appended  int64 // entries staged for the journal
	Snapshots int64 // snapshot files written
	// SnapshotFailures counts snapshot attempts that could not reach
	// disk. A non-zero, growing value means the snapshot watermark — and
	// with it journal compaction — has stalled: durability maintenance
	// is failing even though commits may still succeed.
	SnapshotFailures int64
	TornBytes        int64 // bytes truncated from a torn tail at Open
}

// Recovery is everything Open rebuilt from disk. The owner re-derives
// its in-memory structures from it: operation set = SnapshotEntries ∪
// JournalEntries (set union dedupes the overlap), Lamport clock = max
// over both, fold checkpoint = refold (SnapshotMark names where the
// snapshot's fold stood), gossip journal = JournalEntries at absolute
// positions [Base, End).
type Recovery struct {
	SnapshotEntries []oplog.Entry   // canonical order, as snapshotted
	SnapshotPos     int             // journal position the snapshot covers
	SnapshotMark    oplog.Watermark // fold watermark at snapshot time
	JournalEntries  []oplog.Entry   // arrival order, positions [Base, End)
	Base            int             // absolute position of the first retained journal entry
	End             int             // next position to be appended
	TornBytes       int64           // bytes dropped from a torn final record
}

// chunk is one Stage call's worth of staged entries; ModeEveryOp fsyncs
// chunk-at-a-time, the group modes drain every chunk into one flush.
type chunk struct {
	entries []oplog.Entry
	end     int // position just past the last entry
}

type waiter struct {
	end int
	fn  func(ok bool)
}

// segment is one journal file's metadata.
type segment struct {
	path   string
	start  int // absolute position of its first record
	count  int // records it holds
	sealed bool
}

// Store is one replica's durable tier. Stage/Commit/AckTo/WriteSnapshot
// are safe for concurrent use; Stage calls must be externally serialized
// in position order (the owning replica stages under its own mutex).
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	pending []chunk
	waiters []waiter
	end     int // next position to assign
	flushed int // positions below this are fsynced
	ackPos  int // min position every gossip peer has acknowledged
	snapPos int // position covered by the newest durable snapshot
	segs    []segment
	failed  error // sticky I/O error: all later commits fail
	closed  bool

	// File handles are owned by whoever runs flushes: the background
	// flusher goroutine, or the calling goroutine under flushMu when
	// Inline. Never touched with mu held — fsync must not block staging.
	flushMu  sync.Mutex
	seg      *os.File
	segBytes int64
	scratch  []byte

	kick     chan struct{} // wake the flusher (buffered, coalescing)
	full     chan struct{} // ModeTimer early departure
	quit     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	snapBusy atomic.Bool

	fsyncs    atomic.Int64
	appended  atomic.Int64
	snapshots atomic.Int64
	snapFails atomic.Int64
	tornBytes int64
}

// Open replays dir (created if absent) and returns the store positioned
// to append after everything recovered. Abandoned temp files are swept,
// a torn final record is truncated away, and corruption before the tail
// fails with ErrCorrupt.
func Open(dir string, opt Options) (*Store, Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	s := &Store{
		dir:  dir,
		opt:  opt,
		kick: make(chan struct{}, 1),
		full: make(chan struct{}, 1),
		quit: make(chan struct{}),
	}
	rec, err := s.replay()
	if err != nil {
		return nil, Recovery{}, err
	}
	s.end = rec.End
	s.flushed = rec.End
	s.ackPos = rec.Base
	s.snapPos = rec.SnapshotPos
	s.tornBytes = rec.TornBytes
	if !opt.Inline {
		s.wg.Add(1)
		go s.flushLoop()
	}
	return s, rec, nil
}

// Dir reports the directory the store lives in.
func (s *Store) Dir() string { return s.dir }

// InlineMode reports whether all disk work runs synchronously on the
// calling goroutine (Options.Inline) rather than on background
// goroutines. Callers that must react to a commit failure from inside
// its callback use this to decide whether spawning is safe — and, on
// the deterministic simulator, forbidden.
func (s *Store) InlineMode() bool { return s.opt.Inline }

// End reports the next journal position to be assigned.
func (s *Store) End() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// SnapshotPos reports the journal position covered by the newest durable
// snapshot.
func (s *Store) SnapshotPos() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapPos
}

// Stats returns the disk-work counters.
func (s *Store) Stats() Stats {
	return Stats{
		Fsyncs:           s.fsyncs.Load(),
		Appended:         s.appended.Load(),
		Snapshots:        s.snapshots.Load(),
		SnapshotFailures: s.snapFails.Load(),
		TornBytes:        s.tornBytes,
	}
}

// Stage queues entries for the journal at the next positions and returns
// the position just past the last one — the watermark to pass to Commit.
// Staging is memory-only; durability arrives with the flush that covers
// the returned position. After Close or Crash, staging is a no-op (the
// process is gone; there is nowhere for the bytes to go).
func (s *Store) Stage(entries []oplog.Entry) int {
	s.mu.Lock()
	if s.closed || len(entries) == 0 {
		end := s.end
		s.mu.Unlock()
		return end
	}
	s.end += len(entries)
	end := s.end
	s.pending = append(s.pending, chunk{entries: entries, end: end})
	batchFull := s.opt.Mode == ModeTimer && len(s.pending) >= s.opt.MaxBatch
	s.mu.Unlock()
	s.appended.Add(int64(len(entries)))
	if batchFull {
		signal(s.full)
	}
	return end
}

// Commit asks for durability of every position below end; then fires
// exactly once — with ok=true after the flush that covers end, or
// ok=false if the store crashed or hit an I/O error first. then runs on
// the flusher goroutine (inline on the caller when Options.Inline), so
// it must not block on a future commit of this store.
func (s *Store) Commit(end int, then func(ok bool)) {
	if then == nil {
		then = func(bool) {}
	}
	s.mu.Lock()
	switch {
	case s.failed != nil:
		s.mu.Unlock()
		then(false)
		return
	case end <= s.flushed:
		s.mu.Unlock()
		then(true)
		return
	case s.closed:
		// Nothing further will be flushed.
		s.mu.Unlock()
		then(false)
		return
	}
	s.waiters = append(s.waiters, waiter{end: end, fn: then})
	s.mu.Unlock()
	if s.opt.Inline {
		s.drain()
		return
	}
	signal(s.kick)
}

// AckTo records that every gossip peer has acknowledged positions below
// pos, unlocking compaction of segments the peers will never need again.
func (s *Store) AckTo(pos int) {
	s.mu.Lock()
	changed := pos > s.ackPos
	if changed {
		s.ackPos = pos
	}
	s.mu.Unlock()
	if !changed {
		return
	}
	if s.opt.Inline {
		s.compact()
	} else {
		signal(s.kick) // the flusher compacts after its next pass
	}
}

// WriteSnapshot atomically persists the ledger prefix [0, pos): entries
// in canonical fold order, stamped with the fold watermark they derive.
// The write waits for the journal flush covering pos — a snapshot that
// became durable ahead of the journal records it claims to cover would,
// after a crash, let compaction delete segments holding entries that
// are in no snapshot — and then happens off the caller's path (inline
// under Options.Inline). If a snapshot write is already running, this
// one is skipped; the next trigger covers a superset. On success the
// snapshot watermark advances, old snapshots are pruned to
// Options.KeepSnapshots, and fully-covered journal segments become
// compactable; a failed write counts in Stats.SnapshotFailures and the
// watermark stays put, so compaction stalls visibly rather than
// silently losing data.
func (s *Store) WriteSnapshot(entries []oplog.Entry, pos int, mark oplog.Watermark) {
	s.Commit(pos, func(ok bool) {
		if !ok {
			s.snapFails.Add(1)
			return
		}
		if s.opt.Inline {
			s.writeSnapshot(entries, pos, mark)
			return
		}
		if !s.snapBusy.CompareAndSwap(false, true) {
			return
		}
		// closed and the Add must be decided under one lock: stop() only
		// waits for goroutines added before closed became visible.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			s.snapBusy.Store(false)
			return
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer s.snapBusy.Store(false)
			s.writeSnapshot(entries, pos, mark)
		}()
	})
}

// Close flushes everything staged, fsyncs, and closes the files — the
// graceful shutdown. It reports the sticky I/O error, if any.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.drain()
	s.flushMu.Lock()
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.flushMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Crash simulates the process dying: staged-but-unflushed entries are
// dropped, every pending commit fails with ok=false, and the files are
// closed with no final fsync. What Open finds afterwards is exactly what
// earlier flushes made durable — the volatile tail is gone, as §2.2's
// fail-fast discipline demands.
func (s *Store) Crash() {
	s.mu.Lock()
	s.closed = true
	s.pending = nil
	dead := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	s.stop()
	s.flushMu.Lock()
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.flushMu.Unlock()
	for _, w := range dead {
		w.fn(false)
	}
}

// stop halts the background goroutines and waits for them.
func (s *Store) stop() {
	s.stopOnce.Do(func() { close(s.quit) })
	if !s.opt.Inline {
		s.wg.Wait()
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// flushLoop is the city bus: it departs when kicked (ModeGroup: at
// once; ModeTimer: after the interval or a full batch), flushes
// everything aboard with one fsync, fires the satisfied commit waiters,
// and compacts any segment the snapshot and ack watermarks have both
// passed.
func (s *Store) flushLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.kick:
		}
		if s.opt.Mode == ModeTimer {
			timer := time.NewTimer(s.opt.Interval)
			select {
			case <-timer.C:
			case <-s.full:
				timer.Stop()
			case <-s.quit:
				timer.Stop()
				return
			}
		}
		s.drain()
		s.compact()
	}
}

// drain flushes staged chunks until none remain: one fsync for the lot
// in the group modes, one fsync per chunk in ModeEveryOp.
func (s *Store) drain() {
	for {
		limit := -1
		if s.opt.Mode == ModeEveryOp {
			limit = 1
		}
		fire, more := s.flushOnce(limit)
		for _, w := range fire {
			w.fn(w.end >= 0)
		}
		if !more {
			return
		}
	}
}

// flushOnce writes up to limit staged chunks (-1 for all), fsyncs, and
// returns the commit waiters now satisfied — a negative end marking
// waiters being failed after an I/O error — plus whether chunks remain.
func (s *Store) flushOnce(limit int) (fire []waiter, more bool) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	if s.failed != nil {
		fire = failAll(s.waiters)
		s.waiters = nil
		s.pending = nil
		s.mu.Unlock()
		return fire, false
	}
	var take []chunk
	if limit < 0 || limit >= len(s.pending) {
		take, s.pending = s.pending, nil
	} else {
		take = s.pending[:limit:limit]
		s.pending = s.pending[limit:]
	}
	s.mu.Unlock()

	if len(take) == 0 {
		// Nothing staged; a waiter may still be satisfiable (its entries
		// rode an earlier flush) or doomed (staged entries were dropped
		// by Crash between its Stage and Commit).
		s.mu.Lock()
		fire = s.takeWaitersLocked()
		if s.closed {
			fire = append(fire, failAll(s.waiters)...)
			s.waiters = nil
		}
		s.mu.Unlock()
		return fire, false
	}

	err := s.writeChunks(take)
	if err == nil {
		err = s.syncSeg()
	}

	s.mu.Lock()
	if err != nil {
		s.failed = err
		fire = failAll(s.waiters)
		s.waiters = nil
		s.pending = nil
		s.mu.Unlock()
		return fire, false
	}
	s.flushed = take[len(take)-1].end
	fire = s.takeWaitersLocked()
	more = len(s.pending) > 0
	s.mu.Unlock()
	return fire, more
}

func failAll(ws []waiter) []waiter {
	out := make([]waiter, 0, len(ws))
	for _, w := range ws {
		out = append(out, waiter{end: -1, fn: w.fn})
	}
	return out
}

// takeWaitersLocked removes and returns the waiters covered by the
// flushed watermark. Caller holds mu.
func (s *Store) takeWaitersLocked() []waiter {
	var fire []waiter
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.end <= s.flushed {
			fire = append(fire, w)
		} else {
			kept = append(kept, w)
		}
	}
	s.waiters = kept
	return fire
}

// writeChunks appends the chunks' entries as framed records to the
// active segment, rotating between chunks when the segment is over
// size. Caller holds flushMu.
func (s *Store) writeChunks(chunks []chunk) error {
	if s.seg == nil {
		if err := s.openSegLocked(); err != nil {
			return err
		}
	}
	for _, c := range chunks {
		if s.segBytes >= int64(s.opt.SegmentBytes) {
			if err := s.rotateLocked(); err != nil {
				return err
			}
		}
		s.scratch = s.scratch[:0]
		for _, e := range c.entries {
			s.scratch = appendRecord(s.scratch, e)
		}
		n, err := s.seg.Write(s.scratch)
		s.segBytes += int64(n)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.segs[len(s.segs)-1].count += len(c.entries)
		s.mu.Unlock()
	}
	return nil
}

// appendRecord frames one entry into buf: the payload is encoded directly
// after a reserved header, then the header is filled in — no intermediate
// per-entry allocation, so a reused scratch buffer makes the whole flush
// path allocation-free at steady state.
func appendRecord(buf []byte, e oplog.Entry) []byte {
	hdr := len(buf)
	buf = append(buf, make([]byte, recHdrLen)...) // header placeholder, backfilled below
	buf = oplog.AppendEntry(buf, e)
	payload := buf[hdr+recHdrLen:]
	binary.LittleEndian.PutUint32(buf[hdr:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[hdr+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

func (s *Store) syncSeg() error {
	if d := s.opt.FsyncDelay; d > 0 {
		// The slow-disk fault: the flush takes this much longer to land.
		// Sleeping before Sync keeps the failure semantics identical — a
		// crash mid-delay loses exactly what a crash mid-fsync would.
		time.Sleep(d)
	}
	if err := s.seg.Sync(); err != nil {
		return err
	}
	s.fsyncs.Add(1)
	return nil
}

// openSegLocked opens (or creates) the active segment for appending.
// Caller holds flushMu.
func (s *Store) openSegLocked() error {
	s.mu.Lock()
	if len(s.segs) == 0 {
		// The first record written lands at the flushed watermark — never
		// at end, which counts staged-but-unwritten entries too.
		s.segs = append(s.segs, segment{path: s.segPath(s.flushed), start: s.flushed})
	}
	active := s.segs[len(s.segs)-1]
	s.mu.Unlock()
	f, err := os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := info.Size()
	if size < int64(len(segMagic)) {
		// Fresh segment (or a header torn by a crash at creation): start it over.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt([]byte(segMagic), 0); err != nil {
			f.Close()
			return err
		}
		size = int64(len(segMagic))
		if err := syncDir(s.dir); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	s.seg = f
	s.segBytes = size
	return nil
}

// rotateLocked seals the active segment and starts the next one at the
// current end of the flushed+pending stream. Caller holds flushMu.
func (s *Store) rotateLocked() error {
	if err := s.syncSeg(); err != nil {
		return err
	}
	if err := s.seg.Close(); err != nil {
		return err
	}
	s.seg = nil
	s.mu.Lock()
	last := &s.segs[len(s.segs)-1]
	last.sealed = true
	next := last.start + last.count
	s.segs = append(s.segs, segment{path: s.segPath(next), start: next})
	s.mu.Unlock()
	return s.openSegLocked()
}

func (s *Store) segPath(start int) string {
	return filepath.Join(s.dir, fmt.Sprintf("journal-%010d.seg", start))
}

func (s *Store) snapPath(pos int) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%010d.snap", pos))
}

// compact deletes sealed journal segments every position of which is
// below both watermarks — durably snapshotted AND acknowledged by every
// gossip peer. Either alone is not enough: compacting on the snapshot
// only could strand a slow peer mid-catch-up after a crash, compacting
// on acks only could leave Open with a journal whose prefix is neither
// on disk nor reconstructible.
func (s *Store) compact() {
	s.mu.Lock()
	keep := s.ackPos
	if s.snapPos < keep {
		keep = s.snapPos
	}
	var doomed []string
	for len(s.segs) > 1 && s.segs[0].sealed && s.segs[0].start+s.segs[0].count <= keep {
		doomed = append(doomed, s.segs[0].path)
		s.segs = s.segs[1:]
	}
	s.mu.Unlock()
	for _, path := range doomed {
		os.Remove(path)
	}
	if len(doomed) > 0 {
		syncDir(s.dir)
	}
}

// writeSnapshot does the actual temp-write + fsync + rename.
func (s *Store) writeSnapshot(entries []oplog.Entry, pos int, mark oplog.Watermark) {
	s.mu.Lock()
	if s.closed || s.failed != nil || pos <= s.snapPos {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	// Size the buffer exactly (EntrySize per record plus framing) and
	// borrow it from the shared pool: snapshots of a steady-state ledger
	// are all about the same size, so successive writes reuse one array.
	size := 64
	for _, e := range entries {
		size += recHdrLen + oplog.EntrySize(e)
	}
	scratch := oplog.GetBuf()
	defer oplog.PutBuf(scratch)
	if cap(*scratch) < size {
		*scratch = make([]byte, 0, size)
	}
	buf := *scratch
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(pos))
	buf = oplog.AppendWatermark(buf, mark)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendRecord(buf, e)
	}
	buf = append(buf, snapFooter...)
	*scratch = buf[:0]

	final := s.snapPath(pos)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		os.Remove(tmp)
		s.snapFails.Add(1)
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		s.snapFails.Add(1)
		return
	}
	syncDir(s.dir)
	s.snapshots.Add(1)

	s.mu.Lock()
	if pos > s.snapPos {
		s.snapPos = pos
	}
	s.mu.Unlock()
	s.pruneSnapshots()
	s.compact()
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// pruneSnapshots deletes all but the newest KeepSnapshots snapshot files.
func (s *Store) pruneSnapshots() {
	names, err := filepath.Glob(filepath.Join(s.dir, "snap-*.snap"))
	if err != nil || len(names) <= s.opt.KeepSnapshots {
		return
	}
	sort.Strings(names) // position-padded names sort oldest first
	for _, path := range names[:len(names)-s.opt.KeepSnapshots] {
		os.Remove(path)
	}
}

// syncDir fsyncs a directory so renames and removals inside it are
// durable before we depend on them.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---- Open-time replay ----------------------------------------------------

func (s *Store) replay() (Recovery, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return Recovery{}, err
	}
	var segPaths, snapPaths []string
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An abandoned atomic write: never renamed, never valid.
			os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".seg"):
			segPaths = append(segPaths, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snapPaths = append(snapPaths, name)
		}
	}
	sort.Strings(segPaths)
	sort.Strings(snapPaths)

	rec := Recovery{}
	// Newest parseable snapshot wins; a torn or corrupt one falls back to
	// its predecessor (atomic rename makes this near-impossible, but
	// recovery code gets to be paranoid for free).
	for i := len(snapPaths) - 1; i >= 0; i-- {
		entries, pos, mark, err := loadSnapshot(filepath.Join(s.dir, snapPaths[i]))
		if err == nil {
			rec.SnapshotEntries, rec.SnapshotPos, rec.SnapshotMark = entries, pos, mark
			break
		}
	}

	for i, name := range segPaths {
		path := filepath.Join(s.dir, name)
		start, err := segStart(name)
		if err != nil {
			return Recovery{}, fmt.Errorf("store: bad segment name %q: %w", name, err)
		}
		if i == 0 {
			rec.Base = start
			rec.End = start
		} else if start != rec.End {
			return Recovery{}, fmt.Errorf("store: journal gap: segment %q starts at %d, want %d", name, start, rec.End)
		}
		final := i == len(segPaths)-1
		entries, torn, err := s.scanSegment(path, final)
		if err != nil {
			return Recovery{}, err
		}
		rec.TornBytes += torn
		rec.JournalEntries = append(rec.JournalEntries, entries...)
		rec.End += len(entries)
		s.segs = append(s.segs, segment{path: path, start: start, count: len(entries), sealed: !final})
	}
	if len(segPaths) == 0 {
		// Fresh directory, or every segment compacted away before a
		// crash: the journal resumes just past the snapshot.
		rec.Base = rec.SnapshotPos
		rec.End = rec.SnapshotPos
	}
	if rec.Base > rec.SnapshotPos && rec.Base > 0 {
		return Recovery{}, fmt.Errorf("store: positions [%d, %d) are on no snapshot and no retained segment", rec.SnapshotPos, rec.Base)
	}
	if rec.SnapshotPos > rec.End {
		// A snapshot claiming positions the journal never durably held:
		// WriteSnapshot gates on the covering flush precisely so this
		// state cannot arise, so finding it means the directory was
		// tampered with or mixes incarnations — resuming would assign
		// fresh entries to positions the snapshot already claims.
		return Recovery{}, fmt.Errorf("store: snapshot covers [0, %d) but the journal ends at %d", rec.SnapshotPos, rec.End)
	}
	return rec, nil
}

func segStart(name string) (int, error) {
	return strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "journal-"), ".seg"))
}

// scanSegment replays one segment file. In a sealed (non-final) segment
// every record must verify; in the final segment an invalid record is a
// torn tail — truncated away and durably forgotten — unless valid-looking
// bytes follow it, which no torn write produces: that is ErrCorrupt.
func (s *Store) scanSegment(path string, final bool) (entries []oplog.Entry, torn int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		if final {
			// A crash before the header finished; openSegLocked rewrites it.
			return nil, int64(len(data)), truncateTo(path, 0)
		}
		return nil, 0, fmt.Errorf("store: %s: %w", filepath.Base(path), ErrCorrupt)
	}
	off := len(segMagic)
	for off < len(data) {
		rest := data[off:]
		ok, size, e := parseRecord(rest)
		if !ok {
			if !final {
				return nil, 0, fmt.Errorf("store: %s: record at offset %d: %w", filepath.Base(path), off, ErrCorrupt)
			}
			if trailingRecords(rest) {
				// The bytes beyond the bad record still parse as records:
				// a torn write cannot leave valid data after the tear, so
				// this is mid-journal damage, not a crash artifact.
				return nil, 0, fmt.Errorf("store: %s: record at offset %d: %w", filepath.Base(path), off, ErrCorrupt)
			}
			torn = int64(len(data) - off)
			return entries, torn, truncateTo(path, int64(off))
		}
		entries = append(entries, e)
		off += size
	}
	return entries, 0, nil
}

// parseRecord attempts one record at the front of b, reporting whether
// it verified, how many bytes it spanned, and the decoded entry.
func parseRecord(b []byte) (ok bool, size int, e oplog.Entry) {
	if len(b) < recHdrLen {
		return false, 0, oplog.Entry{}
	}
	n := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if n <= 0 || n > maxRecord || recHdrLen+n > len(b) {
		return false, 0, oplog.Entry{}
	}
	payload := b[recHdrLen : recHdrLen+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return false, recHdrLen + n, oplog.Entry{}
	}
	e, err := oplog.DecodeEntry(payload)
	if err != nil {
		return false, recHdrLen + n, oplog.Entry{}
	}
	return true, recHdrLen + n, e
}

// trailingRecords reports whether bytes beyond the (invalid) record at
// the front of b parse as at least one valid record — the signature of
// mid-journal corruption rather than a torn tail.
func trailingRecords(b []byte) bool {
	_, size, _ := parseRecord(b)
	if size == 0 || size >= len(b) {
		return false
	}
	ok, _, _ := parseRecord(b[size:])
	return ok
}

func truncateTo(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// loadSnapshot parses one snapshot file end to end; any shortfall —
// magic, a record CRC, the footer — invalidates the whole file.
func loadSnapshot(path string) (entries []oplog.Entry, pos int, mark oplog.Watermark, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, oplog.Watermark{}, err
	}
	bad := func(what string) error { return fmt.Errorf("store: snapshot %s: bad %s", filepath.Base(path), what) }
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return nil, 0, oplog.Watermark{}, bad("magic")
	}
	b := data[len(snapMagic):]
	upos, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, oplog.Watermark{}, bad("position")
	}
	b = b[n:]
	mark, b, err = oplog.DecodeWatermark(b)
	if err != nil {
		return nil, 0, oplog.Watermark{}, bad("watermark")
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, oplog.Watermark{}, bad("count")
	}
	b = b[n:]
	entries = make([]oplog.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		ok, size, e := parseRecord(b)
		if !ok {
			return nil, 0, oplog.Watermark{}, bad(fmt.Sprintf("record %d", i))
		}
		entries = append(entries, e)
		b = b[size:]
	}
	if string(b) != snapFooter {
		return nil, 0, oplog.Watermark{}, bad("footer")
	}
	return entries, int(upos), mark, nil
}
