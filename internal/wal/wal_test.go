package wal

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestAppendAssignsSequentialLSNs(t *testing.T) {
	l := New(nil)
	if l.LastLSN() != 0 {
		t.Fatal("empty log LastLSN != 0")
	}
	a := l.Append(Record{Kind: KindWrite, Key: "k"})
	b := l.Append(Record{Kind: KindCommit})
	if a != 1 || b != 2 {
		t.Fatalf("LSNs = %d,%d", a, b)
	}
	if l.LastLSN() != 2 {
		t.Fatalf("LastLSN = %d", l.LastLSN())
	}
}

func TestFlushAdvancesWatermarkAndFeedsSink(t *testing.T) {
	var shipped []Record
	l := New(func(rs []Record) { shipped = append(shipped, rs...) })
	l.Append(Record{Kind: KindWrite, Key: "a"})
	l.Append(Record{Kind: KindWrite, Key: "b"})
	if l.FlushedLSN() != 0 {
		t.Fatal("watermark moved before flush")
	}
	newly := l.Flush()
	if len(newly) != 2 || l.FlushedLSN() != 2 {
		t.Fatalf("Flush = %d records, watermark %d", len(newly), l.FlushedLSN())
	}
	if len(shipped) != 2 {
		t.Fatalf("sink saw %d records", len(shipped))
	}
	// Second flush with nothing new: sink must not be re-invoked.
	if n := l.Flush(); len(n) != 0 {
		t.Fatalf("empty flush returned %d records", len(n))
	}
	if len(shipped) != 2 {
		t.Fatal("sink re-invoked on empty flush")
	}
}

func TestUnflushedAndLoseTail(t *testing.T) {
	l := New(nil)
	l.Append(Record{Kind: KindWrite, Key: "a"})
	l.Flush()
	l.Append(Record{Kind: KindWrite, Key: "b"})
	l.Append(Record{Kind: KindWrite, Key: "c"})
	if got := l.Unflushed(); len(got) != 2 {
		t.Fatalf("Unflushed = %d", len(got))
	}
	lost := l.LoseTail()
	if len(lost) != 2 || lost[0].Key != "b" {
		t.Fatalf("LoseTail = %+v", lost)
	}
	if l.LastLSN() != 1 {
		t.Fatalf("LastLSN after crash = %d, want 1", l.LastLSN())
	}
	if len(l.Unflushed()) != 0 {
		t.Fatal("tail survived LoseTail")
	}
	// Appending after a lost tail reuses the LSNs, as a restarted process
	// rebuilding its log would.
	if lsn := l.Append(Record{Kind: KindWrite, Key: "d"}); lsn != 2 {
		t.Fatalf("post-crash append LSN = %d, want 2", lsn)
	}
}

func TestSinceReturnsOnlyDurableRecords(t *testing.T) {
	l := New(nil)
	l.Append(Record{Kind: KindWrite, Key: "a"})
	l.Append(Record{Kind: KindWrite, Key: "b"})
	l.Flush()
	l.Append(Record{Kind: KindWrite, Key: "c"}) // volatile
	got := l.Since(0)
	if len(got) != 2 {
		t.Fatalf("Since(0) = %d records, want 2 (volatile tail must not ship)", len(got))
	}
	if got := l.Since(1); len(got) != 1 || got[0].Key != "b" {
		t.Fatalf("Since(1) = %+v", got)
	}
	if l.Since(2) != nil {
		t.Fatal("Since(watermark) must be empty")
	}
	if l.Since(99) != nil {
		t.Fatal("Since past end must be empty")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{KindBegin: "begin", KindWrite: "write", KindCommit: "commit", KindAbort: "abort", Kind(9): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestGroupCommitImmediateMode(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{Interval: 0, FlushCost: time.Millisecond})
	var doneAt []sim.Time
	for i := 0; i < 3; i++ {
		l.Append(Record{Kind: KindCommit})
		g.Commit(func() { doneAt = append(doneAt, s.Now()) })
	}
	s.Run()
	// First commit flushes alone; the two that arrived during its flush
	// board the second departure together.
	if g.Flushes() != 2 {
		t.Fatalf("flushes = %d, want 2", g.Flushes())
	}
	if len(doneAt) != 3 {
		t.Fatalf("done callbacks = %d", len(doneAt))
	}
	if doneAt[0] != sim.Time(time.Millisecond) || doneAt[2] != sim.Time(2*time.Millisecond) {
		t.Fatalf("doneAt = %v", doneAt)
	}
}

func TestGroupCommitTimerBatchesConcurrentCommits(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{Interval: 5 * time.Millisecond, FlushCost: time.Millisecond})
	done := 0
	// Ten commits arrive over 2ms — all before the 5ms departure.
	for i := 0; i < 10; i++ {
		i := i
		s.At(sim.Time(i*200*int(time.Microsecond)), func() {
			l.Append(Record{Kind: KindCommit})
			g.Commit(func() { done++ })
		})
	}
	s.Run()
	if g.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1 (the city bus)", g.Flushes())
	}
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if g.MeanBatch() != 10 {
		t.Fatalf("MeanBatch = %v", g.MeanBatch())
	}
}

func TestGroupCommitMaxBatchDepartsEarly(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{Interval: time.Hour, MaxBatch: 2, FlushCost: time.Millisecond})
	var doneAt []sim.Time
	for i := 0; i < 2; i++ {
		l.Append(Record{Kind: KindCommit})
		g.Commit(func() { doneAt = append(doneAt, s.Now()) })
	}
	s.RunUntil(sim.Time(time.Second))
	if len(doneAt) != 2 {
		t.Fatalf("batch of MaxBatch did not depart early: %v", doneAt)
	}
	if doneAt[0] != sim.Time(time.Millisecond) {
		t.Fatalf("departed at %v, want 1ms", doneAt[0])
	}
}

func TestGroupCommitDurabilityBeforeCallback(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{Interval: 0, FlushCost: time.Millisecond})
	l.Append(Record{Kind: KindWrite, Key: "k"})
	l.Append(Record{Kind: KindCommit})
	g.Commit(func() {
		if l.FlushedLSN() != 2 {
			t.Errorf("callback ran with watermark %d, want 2", l.FlushedLSN())
		}
	})
	s.Run()
}

func TestGroupCommitLoneCommitWaitsFullInterval(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{Interval: 5 * time.Millisecond, FlushCost: time.Millisecond})
	var at sim.Time
	l.Append(Record{Kind: KindCommit})
	g.Commit(func() { at = s.Now() })
	s.Run()
	if at != sim.Time(6*time.Millisecond) {
		t.Fatalf("lone commit done at %v, want 6ms (5ms wait + 1ms flush)", at)
	}
}

func TestNoCoalesceSerializesOneFlushPerCommit(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{NoCoalesce: true, FlushCost: time.Millisecond})
	var doneAt []sim.Time
	for i := 0; i < 3; i++ {
		l.Append(Record{Kind: KindCommit})
		g.Commit(func() { doneAt = append(doneAt, s.Now()) })
	}
	s.Run()
	// Three commits at t=0: each waits behind the previous flush.
	want := []sim.Time{sim.Time(time.Millisecond), sim.Time(2 * time.Millisecond), sim.Time(3 * time.Millisecond)}
	for i, w := range want {
		if doneAt[i] != w {
			t.Fatalf("doneAt = %v, want %v", doneAt, want)
		}
	}
	if g.Flushes() != 3 {
		t.Fatalf("flushes = %d, want 3 (one car per driver)", g.Flushes())
	}
	if g.MeanBatch() != 1 {
		t.Fatalf("MeanBatch = %v, want 1", g.MeanBatch())
	}
}

func TestNoCoalesceQueueGrowsUnderOverload(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{NoCoalesce: true, FlushCost: time.Millisecond})
	// 10 commits arrive every 0.5ms; the device does 1/ms: the last
	// commit waits ~the whole backlog.
	var last sim.Time
	for i := 0; i < 10; i++ {
		i := i
		s.At(sim.Time(i)*sim.Time(500*time.Microsecond), func() {
			l.Append(Record{Kind: KindCommit})
			g.Commit(func() { last = s.Now() })
		})
	}
	s.Run()
	if last != sim.Time(10*time.Millisecond) {
		t.Fatalf("last commit done at %v, want 10ms (full backlog)", last)
	}
}

func TestNoCoalesceDurabilityBeforeCallback(t *testing.T) {
	s := sim.New(1)
	l := New(nil)
	g := NewGroupCommitter(s, l, Config{NoCoalesce: true, FlushCost: time.Millisecond})
	lsn := l.Append(Record{Kind: KindCommit})
	g.Commit(func() {
		if l.FlushedLSN() < lsn {
			t.Errorf("callback before durability: flushed %d < %d", l.FlushedLSN(), lsn)
		}
	})
	s.Run()
}
