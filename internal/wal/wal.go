// Package wal implements a write-ahead log with a durability watermark and
// a group committer.
//
// The log is the mechanism §3.2 of the paper describes: "the transaction
// log, describing the changes to the state on disk, was also used to
// describe the changes that should be known to the backup disk process" —
// checkpointing and logging combined into one stream. Records may
// "lollygag" in the in-memory tail until a flush pushes them across the
// failure boundary (to a sink: a backup DP, an ADP, a remote datacenter).
//
// The GroupCommitter models §3.2's city-bus economics [Group Commit
// Timers, Helland et al. 1987]: instead of a disk flush per commit (a car
// per driver), commits board a shared flush that departs on a timer or
// when full.
package wal

import (
	"time"

	"repro/internal/sim"
)

// LSN is a log sequence number. LSNs start at 1; 0 means "nothing".
type LSN uint64

// Kind classifies a log record.
type Kind uint8

// Record kinds. Write records carry the data; Commit/Abort close a
// transaction; Begin is informational.
const (
	KindBegin Kind = iota
	KindWrite
	KindCommit
	KindAbort
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindWrite:
		return "write"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	default:
		return "unknown"
	}
}

// Record is one log entry.
type Record struct {
	LSN   LSN
	Txn   uint64 // transaction the record belongs to
	Kind  Kind
	Key   string // for Write records
	Value string // for Write records
}

// Log is an append-only record sequence with a flushed watermark.
// Records at or below the watermark have crossed the failure boundary
// (been handed to the sink); records above it are the volatile tail that a
// fail-fast crash destroys. The zero value is not usable; construct with
// New.
type Log struct {
	records []Record
	flushed LSN
	sink    func([]Record)
}

// New returns an empty log. sink, which may be nil, receives each newly
// flushed batch exactly once, in order.
func New(sink func([]Record)) *Log { return &Log{sink: sink} }

// Append assigns the next LSN to r and appends it to the volatile tail.
func (l *Log) Append(r Record) LSN {
	r.LSN = LSN(len(l.records) + 1)
	l.records = append(l.records, r)
	return r.LSN
}

// LastLSN reports the LSN of the newest record (0 when empty).
func (l *Log) LastLSN() LSN { return LSN(len(l.records)) }

// FlushedLSN reports the durability watermark.
func (l *Log) FlushedLSN() LSN { return l.flushed }

// Unflushed returns the volatile tail: records past the watermark.
func (l *Log) Unflushed() []Record {
	return append([]Record(nil), l.records[l.flushed:]...)
}

// Flush advances the watermark to the log tail, hands the newly flushed
// records to the sink, and returns them.
func (l *Log) Flush() []Record {
	newly := append([]Record(nil), l.records[l.flushed:]...)
	l.flushed = l.LastLSN()
	if l.sink != nil && len(newly) > 0 {
		l.sink(newly)
	}
	return newly
}

// Since returns all records with LSN strictly greater than after, up to
// and including the flushed watermark. Log shipping reads with Since: only
// durable records travel.
func (l *Log) Since(after LSN) []Record {
	if after >= l.flushed {
		return nil
	}
	return append([]Record(nil), l.records[after:l.flushed]...)
}

// All returns every appended record, flushed or not. Recovery inspection
// ("examine the work in the tail of the log and determine what the heck to
// do", §5.1) uses All.
func (l *Log) All() []Record { return append([]Record(nil), l.records...) }

// LoseTail discards the volatile tail, simulating a fail-fast crash of the
// process holding the log buffer. It returns the lost records.
func (l *Log) LoseTail() []Record {
	lost := append([]Record(nil), l.records[l.flushed:]...)
	l.records = l.records[:l.flushed]
	return lost
}

// Config tunes a GroupCommitter.
type Config struct {
	// Interval is the maximum time a commit waits for the shared flush.
	// Zero means flush as soon as the device is free, coalescing every
	// commit that arrived while the previous flush was in flight.
	Interval time.Duration
	// MaxBatch, if positive, departs the flush early once this many
	// commits are waiting.
	MaxBatch int
	// FlushCost is the simulated duration of one flush (disk write or
	// checkpoint message round trip). Flushes serialize: the device has
	// capacity one.
	FlushCost time.Duration
	// NoCoalesce is the strict car-per-driver of 1984: every commit pays
	// for its own flush, queued behind all earlier ones. Under load the
	// queue — and commit latency — grow without bound, which is exactly
	// the behaviour group commit was invented to fix (§3.2).
	NoCoalesce bool
}

// GroupCommitter batches commit durability requests into shared flushes on
// a simulator. Construct with NewGroupCommitter.
type GroupCommitter struct {
	s       *sim.Sim
	log     *Log
	cfg     Config
	waiters []func()
	// flushing marks a flush in flight; timerArmed marks a departure
	// timer pending.
	flushing   bool
	timerArmed bool
	flushes    int
	batched    int      // total commits served, for mean batch size
	busyUntil  sim.Time // device queue tail in NoCoalesce mode
}

// NewGroupCommitter wires a committer to a simulator and a log.
func NewGroupCommitter(s *sim.Sim, log *Log, cfg Config) *GroupCommitter {
	return &GroupCommitter{s: s, log: log, cfg: cfg}
}

// Commit requests durability for everything appended so far. done runs
// after the flush that covers the current log tail completes. A commit
// arriving during an in-flight flush boards the next one.
func (g *GroupCommitter) Commit(done func()) {
	if g.cfg.NoCoalesce {
		// One flush per commit, serialized behind the device queue.
		now := g.s.Now()
		start := g.busyUntil
		if start < now {
			start = now
		}
		g.busyUntil = start.Add(g.cfg.FlushCost)
		g.s.At(g.busyUntil, func() {
			g.log.Flush()
			g.flushes++
			g.batched++
			done()
		})
		return
	}
	g.waiters = append(g.waiters, done)
	switch {
	case g.flushing:
		// Will be picked up when the current flush lands.
	case g.cfg.Interval == 0:
		g.startFlush()
	case g.cfg.MaxBatch > 0 && len(g.waiters) >= g.cfg.MaxBatch:
		g.startFlush()
	case !g.timerArmed:
		g.timerArmed = true
		g.s.After(g.cfg.Interval, func() {
			g.timerArmed = false
			if !g.flushing && len(g.waiters) > 0 {
				g.startFlush()
			}
		})
	}
}

func (g *GroupCommitter) startFlush() {
	g.flushing = true
	boarding := g.waiters
	g.waiters = nil
	g.s.After(g.cfg.FlushCost, func() {
		g.log.Flush()
		g.flushes++
		g.batched += len(boarding)
		for _, done := range boarding {
			done()
		}
		g.flushing = false
		// Commits that arrived during the flush have waited long
		// enough: depart again immediately.
		if len(g.waiters) > 0 {
			g.startFlush()
		}
	})
}

// Flushes reports how many flushes have completed.
func (g *GroupCommitter) Flushes() int { return g.flushes }

// MeanBatch reports the mean commits per flush (0 before any flush).
func (g *GroupCommitter) MeanBatch() float64 {
	if g.flushes == 0 {
		return 0
	}
	return float64(g.batched) / float64(g.flushes)
}
