package apology

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestLedgerCountsByKind(t *testing.T) {
	var l Ledger
	l.Record(0, Memory, "r1", "saw op", "op-1")
	l.Record(1, Guess, "r1", "cleared check", "op-1")
	l.Record(2, Regret, "r1", "overdraft", "ap-1")
	l.Record(3, Memory, "r1", "saw op", "op-2")
	if l.Count(Memory) != 2 || l.Count(Guess) != 1 || l.Count(Regret) != 1 {
		t.Fatalf("counts = %d/%d/%d", l.Count(Memory), l.Count(Guess), l.Count(Regret))
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	es := l.Entries()
	if len(es) != 4 || es[0].What != "saw op" || es[2].At != sim.Time(2) {
		t.Fatalf("entries = %+v", es)
	}
}

func TestKindString(t *testing.T) {
	if Memory.String() != "memory" || Guess.String() != "guess" || Regret.String() != "apology" {
		t.Fatal("kind names wrong")
	}
}

func TestApologyIDDerivedFromContent(t *testing.T) {
	a := NewApology("no-overdraft", "acct-1 overdrawn", 500, "r1")
	b := NewApology("no-overdraft", "acct-1 overdrawn", 500, "r2") // other replica, same violation
	if a.ID != b.ID {
		t.Fatal("same violation must produce the same apology ID")
	}
	c := NewApology("no-overdraft", "acct-2 overdrawn", 500, "r1")
	if a.ID == c.ID {
		t.Fatal("different violations collided")
	}
}

func TestQueueRoutesToHandlerThenHuman(t *testing.T) {
	q := NewQueue()
	var handled []Apology
	q.AddHandler(func(a Apology) bool {
		if a.Amount <= 1000 {
			handled = append(handled, a)
			return true // small stuff compensates automatically
		}
		return false
	})
	q.Submit(NewApology("rule", "small mess", 500, "r1"))
	q.Submit(NewApology("rule", "big mess", 50_000, "r1"))
	if len(q.Automated()) != 1 || len(q.Human()) != 1 {
		t.Fatalf("automated=%d human=%d", len(q.Automated()), len(q.Human()))
	}
	if q.Human()[0].Detail != "big mess" {
		t.Fatal("wrong apology escalated")
	}
	if q.Total() != 2 {
		t.Fatalf("Total = %d", q.Total())
	}
}

func TestQueueDedupes(t *testing.T) {
	q := NewQueue()
	a := NewApology("rule", "same mess", 0, "r1")
	if !q.Submit(a) {
		t.Fatal("first submit rejected")
	}
	if q.Submit(NewApology("rule", "same mess", 0, "r2")) {
		t.Fatal("duplicate violation accepted twice")
	}
	if q.Total() != 1 {
		t.Fatalf("Total = %d", q.Total())
	}
}

func TestQueueNoHandlersEscalatesEverything(t *testing.T) {
	q := NewQueue()
	q.Submit(NewApology("rule", "mess", 0, "r1"))
	if len(q.Human()) != 1 {
		t.Fatal("handlerless queue must escalate to humans")
	}
	if !strings.Contains(q.String(), "1 escalated") {
		t.Fatalf("String() = %q", q.String())
	}
}

func TestHandlersRunInOrder(t *testing.T) {
	q := NewQueue()
	order := []string{}
	q.AddHandler(func(a Apology) bool { order = append(order, "first"); return false })
	q.AddHandler(func(a Apology) bool { order = append(order, "second"); return true })
	q.Submit(NewApology("r", "d", 0, "x"))
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v", order)
	}
}
