// Package apology implements the paper's §5.7 accounting: "arguably, all
// computing really falls into three categories: memories, guesses, and
// apologies."
//
// A Ledger records what a replica remembered (operations it saw), what it
// guessed (actions taken on local knowledge), and what it apologized for.
// A Queue routes apologies the way §5.6 prescribes: try
// business-specific compensation code first, and "send the problem to a
// human" when no handler claims it.
package apology

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/uniq"
)

// Kind classifies a ledger entry.
type Kind int

// The three categories of all computing (§5.7).
const (
	Memory Kind = iota // the replica saw and recorded something
	Guess              // the replica acted on local, partial knowledge
	Regret             // the replica discovered a guess was wrong
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Memory:
		return "memory"
	case Guess:
		return "guess"
	default:
		return "apology"
	}
}

// Entry is one ledger line.
type Entry struct {
	At   sim.Time
	Kind Kind
	Who  string  // replica that wrote the line
	What string  // human-readable description
	Ref  uniq.ID // operation or apology this line concerns
}

// ledgerBlock is the entry capacity of one ledger storage block.
const ledgerBlock = 4096

// Ledger is an append-only record of memories, guesses, and apologies for
// one replica. The zero value is ready to use; Ledgers are safe for
// concurrent use.
//
// Entries live in fixed-size blocks rather than one growing slice: a
// replica under sustained ingest records several lines per operation
// forever, and doubling a multi-megabyte slice re-zeroes and re-copies
// everything it ever remembered. Blocks make Record amortized O(1) with
// no large copies, at the price of a concatenating Entries().
type Ledger struct {
	mu     sync.Mutex
	blocks [][]Entry
	n      int
	counts [3]int
}

// Record appends a line.
func (l *Ledger) Record(at sim.Time, kind Kind, who, what string, ref uniq.ID) {
	l.mu.Lock()
	if len(l.blocks) == 0 || len(l.blocks[len(l.blocks)-1]) == ledgerBlock {
		l.blocks = append(l.blocks, make([]Entry, 0, ledgerBlock))
	}
	last := len(l.blocks) - 1
	l.blocks[last] = append(l.blocks[last], Entry{At: at, Kind: kind, Who: who, What: what, Ref: ref})
	l.n++
	l.counts[kind]++
	l.mu.Unlock()
}

// Count reports how many entries of the kind exist.
func (l *Ledger) Count(kind Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[kind]
}

// Entries returns a copy of all lines, in record order.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, l.n)
	for _, b := range l.blocks {
		out = append(out, b...)
	}
	return out
}

// Len reports the total number of lines.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Reset wipes the ledger. A ledger is per-replica RAM: a hard crash of
// its replica destroys it, and recovery starts a fresh one.
func (l *Ledger) Reset() {
	l.mu.Lock()
	l.blocks = nil
	l.n = 0
	l.counts = [3]int{}
	l.mu.Unlock()
}

// Apology is a discovered business-rule violation that someone must now
// smooth over — "every business includes apologies" (§5.7).
type Apology struct {
	ID      uniq.ID // content-derived: identical violations dedupe
	Rule    string  // which business rule was violated
	Detail  string  // what happened
	Key     string  // object concerned (account, SKU, ...) for handlers
	Amount  int64   // money at stake, in cents (0 if not monetary)
	Replica string  // replica that discovered it
}

// NewApology builds an apology whose ID is derived from rule and detail,
// so the same violation discovered at two replicas collapses to one
// apology.
func NewApology(rule, detail string, amount int64, replica string) Apology {
	return Apology{
		ID:      uniq.ContentID([]byte(rule + "|" + detail)),
		Rule:    rule,
		Detail:  detail,
		Amount:  amount,
		Replica: replica,
	}
}

// Handler attempts automated compensation for an apology, returning true
// if it handled it. Handlers embody §5.6's "write some business specific
// software to reduce the probability that a human needs to be involved."
type Handler func(Apology) bool

// Queue routes apologies to automated handlers, then to humans. The zero
// value is not usable; construct with NewQueue. Queues are safe for
// concurrent use; handlers run outside the queue's lock, so compensation
// code may submit new operations (and thereby new apologies) re-entrantly.
type Queue struct {
	mu        sync.Mutex
	handlers  []Handler
	seen      *uniq.Dedup
	automated []Apology
	human     []Apology
}

// NewQueue returns an empty queue with no handlers.
func NewQueue() *Queue { return &Queue{seen: uniq.NewDedup()} }

// AddHandler appends an automated compensation handler; handlers run in
// registration order.
func (q *Queue) AddHandler(h Handler) {
	q.mu.Lock()
	q.handlers = append(q.handlers, h)
	q.mu.Unlock()
}

// Submit routes one apology. Duplicates (by ID) are dropped. It reports
// whether the apology was newly accepted.
func (q *Queue) Submit(a Apology) bool {
	q.mu.Lock()
	if !q.seen.Record(a.ID) {
		q.mu.Unlock()
		return false
	}
	handlers := append([]Handler(nil), q.handlers...)
	q.mu.Unlock()
	for _, h := range handlers {
		if h(a) {
			q.mu.Lock()
			q.automated = append(q.automated, a)
			q.mu.Unlock()
			return true
		}
	}
	q.mu.Lock()
	q.human = append(q.human, a)
	q.mu.Unlock()
	return true
}

// Automated returns apologies resolved by handlers.
func (q *Queue) Automated() []Apology {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]Apology(nil), q.automated...)
}

// Human returns apologies waiting for a person.
func (q *Queue) Human() []Apology {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]Apology(nil), q.human...)
}

// Total reports all accepted apologies.
func (q *Queue) Total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.automated) + len(q.human)
}

// String summarizes the queue.
func (q *Queue) String() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return fmt.Sprintf("apologies: %d automated, %d escalated to humans", len(q.automated), len(q.human))
}
