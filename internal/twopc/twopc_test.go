package twopc

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestCommitWithAllAlive(t *testing.T) {
	s := sim.New(1)
	g := New(s, Config{Participants: 3})
	var ok, fired bool
	g.Commit(func(c bool) { fired, ok = true, c })
	s.Run()
	if !fired || !ok {
		t.Fatalf("commit fired=%v ok=%v", fired, ok)
	}
	if g.M.Committed.Value() != 1 || g.M.Aborted.Value() != 0 {
		t.Fatalf("metrics = %d/%d", g.M.Committed.Value(), g.M.Aborted.Value())
	}
	// Every participant must have learned the decision.
	for i, p := range g.parts {
		if !p.decided[1] {
			t.Fatalf("participant %d missed the commit decision", i)
		}
	}
}

func TestOneDeadParticipantAbortsEverything(t *testing.T) {
	s := sim.New(1)
	g := New(s, Config{Participants: 3})
	g.Net().SetUp("p1", false)
	aborts := 0
	for i := 0; i < 5; i++ {
		g.Commit(func(c bool) {
			if !c {
				aborts++
			}
		})
	}
	s.Run()
	if aborts != 5 {
		t.Fatalf("aborts = %d, want 5 — one dead participant must stop the world", aborts)
	}
}

func TestPartitionAbortsCommits(t *testing.T) {
	s := sim.New(1)
	g := New(s, Config{Participants: 3})
	g.Net().Partition([]simnet.NodeID{"coord", "p0"}, []simnet.NodeID{"p1", "p2"})
	var ok, fired bool
	g.Commit(func(c bool) { fired, ok = true, c })
	s.Run()
	if !fired {
		t.Fatal("commit never resolved")
	}
	if ok {
		t.Fatal("commit succeeded across a partition")
	}
	g.Net().Heal()
	g.Commit(func(c bool) { ok = c })
	s.Run()
	if !ok {
		t.Fatal("commit failed after heal")
	}
}

func TestRecoveryAfterRestart(t *testing.T) {
	s := sim.New(1)
	g := New(s, Config{Participants: 2})
	g.Net().SetUp("p0", false)
	g.Commit(func(bool) {})
	s.Run()
	g.Net().SetUp("p0", true)
	var ok bool
	g.Commit(func(c bool) { ok = c })
	s.Run()
	if !ok {
		t.Fatal("commit failed after participant restart")
	}
	if g.M.Committed.Value() != 1 || g.M.Aborted.Value() != 1 {
		t.Fatalf("metrics = %d/%d", g.M.Committed.Value(), g.M.Aborted.Value())
	}
}
