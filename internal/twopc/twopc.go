// Package twopc implements classic two-phase commit, the baseline the
// paper blames for fragility: "distributed transactions (especially using
// the Two Phase Commit protocol) result in fragile systems and reduced
// availability. For this reason, they are rarely used in production
// systems" (§2.3).
//
// The implementation is deliberately textbook — prepare to all
// participants, commit only on unanimous yes, abort on any refusal or
// silence — because the experiment (E12) measures exactly that property:
// one dead participant stops the world, where the ACID 2.0 cluster keeps
// accepting work.
package twopc

import (
	"fmt"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// Config tunes a 2PC group. Zero fields take defaults.
type Config struct {
	Participants int            // default 3
	MsgLatency   simnet.Latency // default 5ms ± 2ms (same links as core)
	CallTimeout  time.Duration  // default 100ms
}

func (c Config) withDefaults() Config {
	if c.Participants == 0 {
		c.Participants = 3
	}
	if c.MsgLatency == nil {
		c.MsgLatency = simnet.Jitter{Base: 5 * time.Millisecond, Spread: 2 * time.Millisecond}
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 100 * time.Millisecond
	}
	return c
}

// Metrics tallies outcomes.
type Metrics struct {
	Committed stats.Counter
	Aborted   stats.Counter
	TxnLat    stats.Histogram
}

type (
	prepareReq struct{ Txn uint64 }
	voteResp   struct{ Yes bool }
	decideReq  struct {
		Txn    uint64
		Commit bool
	}
	decideAck struct{}
)

// participant votes yes whenever it is alive; state is out of scope — the
// experiment measures availability, not payload semantics.
type participant struct {
	ep       *rpc.Endpoint
	prepared map[uint64]bool
	decided  map[uint64]bool
}

// Group is one coordinator plus participants on a private network.
type Group struct {
	s     *sim.Sim
	net   *simnet.Network
	cfg   Config
	coord *rpc.Endpoint
	parts []*participant

	txnSeq uint64
	M      Metrics
}

// New builds a group with participants named p0, p1, ...
func New(s *sim.Sim, cfg Config) *Group {
	cfg = cfg.withDefaults()
	g := &Group{
		s:   s,
		net: simnet.New(s, simnet.WithLatency(cfg.MsgLatency)),
		cfg: cfg,
	}
	g.coord = rpc.NewEndpoint(g.net, "coord", cfg.CallTimeout)
	for i := 0; i < cfg.Participants; i++ {
		p := &participant{prepared: make(map[uint64]bool), decided: make(map[uint64]bool)}
		p.ep = rpc.NewEndpoint(g.net, simnet.NodeID(fmt.Sprintf("p%d", i)), cfg.CallTimeout)
		p.ep.Handle("prepare", func(_ simnet.NodeID, req any, reply func(any)) {
			r := req.(prepareReq)
			p.prepared[r.Txn] = true
			reply(voteResp{Yes: true})
		})
		p.ep.Handle("decide", func(_ simnet.NodeID, req any, reply func(any)) {
			r := req.(decideReq)
			p.decided[r.Txn] = r.Commit
			reply(decideAck{})
		})
		g.parts = append(g.parts, p)
	}
	return g
}

// Net exposes the network for fault injection.
func (g *Group) Net() *simnet.Network { return g.net }

// ParticipantIDs lists the participant node IDs (for fault injectors).
func (g *Group) ParticipantIDs() []simnet.NodeID {
	out := make([]simnet.NodeID, len(g.parts))
	for i, p := range g.parts {
		out[i] = p.ep.ID()
	}
	return out
}

// Commit runs one transaction through both phases. done reports whether
// it committed; any unreachable or refusing participant aborts it.
func (g *Group) Commit(done func(committed bool)) {
	g.txnSeq++
	txn := g.txnSeq
	start := g.s.Now()
	targets := g.ParticipantIDs()
	g.coord.Broadcast(targets, "prepare", prepareReq{Txn: txn}, func(resps []any, oks int) {
		allYes := oks == len(targets)
		for _, r := range resps {
			if !r.(voteResp).Yes {
				allYes = false
			}
		}
		g.coord.Broadcast(targets, "decide", decideReq{Txn: txn, Commit: allYes}, func([]any, int) {
			if allYes {
				g.M.Committed.Inc()
				g.M.TxnLat.AddDur(g.s.Now().Sub(start))
			} else {
				g.M.Aborted.Inc()
			}
			done(allYes)
		})
	})
}
