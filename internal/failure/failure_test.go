package failure

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func newNet(seed int64, nodes ...simnet.NodeID) (*sim.Sim, *simnet.Network) {
	s := sim.New(seed)
	n := simnet.New(s)
	for _, id := range nodes {
		n.AddNode(id, func(simnet.Message) {})
	}
	return s, n
}

func TestScriptCrashAndRestart(t *testing.T) {
	s, n := newNet(1, "a")
	var changes []Event
	Script{}.
		Crash("a", sim.Time(time.Second)).
		Restart("a", sim.Time(2*time.Second)).
		Apply(s, n, func(e Event) { changes = append(changes, e) })

	s.RunUntil(sim.Time(1500 * time.Millisecond))
	if n.IsUp("a") {
		t.Fatal("node up during scripted outage")
	}
	s.Run()
	if !n.IsUp("a") {
		t.Fatal("node down after scripted restart")
	}
	if len(changes) != 2 || changes[0].Up || !changes[1].Up {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestScriptOutageHelper(t *testing.T) {
	s, n := newNet(1, "a")
	Script{}.Outage("a", sim.Time(time.Second), 500*time.Millisecond).Apply(s, n, nil)
	s.RunUntil(sim.Time(1200 * time.Millisecond))
	if n.IsUp("a") {
		t.Fatal("node up mid-outage")
	}
	s.Run()
	if !n.IsUp("a") {
		t.Fatal("node not restarted after outage window")
	}
}

func TestScriptAppliesOutOfOrderEventsInTimeOrder(t *testing.T) {
	s, n := newNet(1, "a")
	// Build the script with the restart listed first; Apply must sort.
	sc := Script{
		{At: sim.Time(2 * time.Second), Node: "a", Up: true},
		{At: sim.Time(time.Second), Node: "a", Up: false},
	}
	var order []bool
	sc.Apply(s, n, func(e Event) { order = append(order, e.Up) })
	s.Run()
	if len(order) != 2 || order[0] || !order[1] {
		t.Fatalf("events ran in order %v, want [down up]", order)
	}
}

func TestInjectorCrashesAndRepairs(t *testing.T) {
	s, n := newNet(42, "a", "b", "c")
	in := NewInjector(s, n, []simnet.NodeID{"a", "b", "c"}, 100*time.Millisecond, 20*time.Millisecond, nil).Start()
	s.RunUntil(sim.Time(10 * time.Second))
	in.Stop()
	s.Run() // drain pending repairs
	if in.Crashes() == 0 {
		t.Fatal("injector never crashed anything over 10s with 100ms MTBF")
	}
	for _, id := range []simnet.NodeID{"a", "b", "c"} {
		if !n.IsUp(id) {
			t.Fatalf("node %s still down after Stop + drain", id)
		}
	}
}

func TestInjectorStopHaltsNewFaults(t *testing.T) {
	s, n := newNet(42, "a")
	in := NewInjector(s, n, []simnet.NodeID{"a"}, 10*time.Millisecond, time.Millisecond, nil).Start()
	s.RunUntil(sim.Time(time.Second))
	in.Stop()
	before := in.Crashes()
	s.RunUntil(sim.Time(10 * time.Second))
	if in.Crashes() != before {
		t.Fatalf("crashes rose from %d to %d after Stop", before, in.Crashes())
	}
}

func TestInjectorObserverSeesSymmetricEvents(t *testing.T) {
	s, n := newNet(7, "a", "b")
	downs, ups := 0, 0
	in := NewInjector(s, n, []simnet.NodeID{"a", "b"}, 50*time.Millisecond, 10*time.Millisecond, func(e Event) {
		if e.Up {
			ups++
		} else {
			downs++
		}
	}).Start()
	s.RunUntil(sim.Time(5 * time.Second))
	in.Stop()
	s.Run()
	if downs == 0 {
		t.Fatal("no crashes observed")
	}
	if downs != ups {
		t.Fatalf("downs=%d ups=%d; every crash must eventually repair", downs, ups)
	}
}

func TestInjectorSkipsWhenAllDown(t *testing.T) {
	s, n := newNet(7, "a")
	n.SetUp("a", false)
	// With the only node already down and a huge MTTR, the injector must
	// not panic or crash anything new.
	in := NewInjector(s, n, []simnet.NodeID{"a"}, time.Millisecond, time.Hour, nil).Start()
	s.RunUntil(sim.Time(100 * time.Millisecond))
	in.Stop()
	if in.Crashes() != 0 {
		t.Fatalf("crashed %d nodes while all were down", in.Crashes())
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() int {
		s, n := newNet(99, "a", "b", "c")
		in := NewInjector(s, n, []simnet.NodeID{"a", "b", "c"}, 30*time.Millisecond, 5*time.Millisecond, nil).Start()
		s.RunUntil(sim.Time(3 * time.Second))
		in.Stop()
		s.Run()
		return in.Crashes()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced %d vs %d crashes", a, b)
	}
}
