// Package failure injects fail-fast faults into simulated systems.
//
// The paper's fault model (§2.2) is fail fast: "a component is either
// functioning correctly or simply stops functioning." This package turns
// that model into two tools: deterministic Scripts (crash node X at t1,
// restart at t2) for reproducing specific takeover scenarios, and a
// stochastic Injector driven by exponential MTBF/MTTR for endurance-style
// experiments.
package failure

import (
	"math"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Event is a single scheduled state change of one node.
type Event struct {
	At   sim.Time
	Node simnet.NodeID
	Up   bool
}

// Script is a deterministic fault plan.
type Script []Event

// Crash appends a crash of node at t and returns the extended script.
func (sc Script) Crash(node simnet.NodeID, at sim.Time) Script {
	return append(sc, Event{At: at, Node: node, Up: false})
}

// Restart appends a restart of node at t and returns the extended script.
func (sc Script) Restart(node simnet.NodeID, at sim.Time) Script {
	return append(sc, Event{At: at, Node: node, Up: true})
}

// Outage appends a crash at from and a restart at from+downFor.
func (sc Script) Outage(node simnet.NodeID, from sim.Time, downFor time.Duration) Script {
	return sc.Crash(node, from).Restart(node, from.Add(downFor))
}

// Apply schedules every event of the script on the simulator. onChange, if
// non-nil, is invoked after each state flip so components can run takeover
// or recovery logic.
func (sc Script) Apply(s *sim.Sim, net *simnet.Network, onChange func(Event)) {
	evs := make(Script, len(sc))
	copy(evs, sc)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, e := range evs {
		e := e
		s.At(e.At, func() {
			net.SetUp(e.Node, e.Up)
			if onChange != nil {
				onChange(e)
			}
		})
	}
}

// Injector crashes and restarts a set of nodes at random, with
// exponentially distributed time-between-failures and repair times. All
// randomness comes from the simulator's seeded source.
type Injector struct {
	s        *sim.Sim
	net      *simnet.Network
	nodes    []simnet.NodeID
	mtbf     time.Duration
	mttr     time.Duration
	onChange func(Event)
	stopped  bool
	crashes  int
}

// NewInjector builds an injector over the given nodes. mtbf is the mean
// time between failures across the whole set (a failure picks a random up
// node); mttr is the mean repair time. onChange may be nil.
func NewInjector(s *sim.Sim, net *simnet.Network, nodes []simnet.NodeID, mtbf, mttr time.Duration, onChange func(Event)) *Injector {
	return &Injector{s: s, net: net, nodes: nodes, mtbf: mtbf, mttr: mttr, onChange: onChange}
}

// Start begins injecting faults. It returns the injector for chaining.
func (in *Injector) Start() *Injector {
	in.scheduleNext()
	return in
}

// Stop halts future fault injection. Nodes currently down still get their
// scheduled repair, so the system is eventually whole again.
func (in *Injector) Stop() { in.stopped = true }

// Crashes reports how many crashes the injector has inflicted.
func (in *Injector) Crashes() int { return in.crashes }

func (in *Injector) scheduleNext() {
	d := exponential(in.s, in.mtbf)
	in.s.After(d, func() {
		if in.stopped {
			return
		}
		in.crashOne()
		in.scheduleNext()
	})
}

func (in *Injector) crashOne() {
	up := make([]simnet.NodeID, 0, len(in.nodes))
	for _, id := range in.nodes {
		if in.net.IsUp(id) {
			up = append(up, id)
		}
	}
	if len(up) == 0 {
		return
	}
	victim := up[in.s.Rand().Intn(len(up))]
	in.crashes++
	in.net.SetUp(victim, false)
	if in.onChange != nil {
		in.onChange(Event{At: in.s.Now(), Node: victim, Up: false})
	}
	repair := exponential(in.s, in.mttr)
	in.s.After(repair, func() {
		in.net.SetUp(victim, true)
		if in.onChange != nil {
			in.onChange(Event{At: in.s.Now(), Node: victim, Up: true})
		}
	})
}

// exponential draws an exponentially distributed duration with the given
// mean, clamped away from zero so the event loop always advances.
func exponential(s *sim.Sim, mean time.Duration) time.Duration {
	if mean <= 0 {
		return time.Nanosecond
	}
	u := s.Rand().Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := time.Duration(-float64(mean) * math.Log(u))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}
