// Package loadgen is the sustained traffic generator: a txsim-style
// workload driver that holds a configurable ops/s target against a
// running quicksand deployment — an in-process cluster (volatile or
// durable) or real daemons reached through the client SDK — for a
// configurable duration, with rate, concurrency, key-space size, key
// distribution, operation mix, and risk-policy mix as first-class knobs.
//
// Where the experiment harness (internal/experiment) answers "is the
// protocol right?" on 500ms deterministic micro-windows, loadgen answers
// "does the system hold up?": it streams per-second throughput and
// latency quantiles while it runs, and returns a machine-readable Report
// (throughput, p50/p99/p999, decline rate, apology rate) when it stops.
// The scenario sub-package composes this driver with fault injection
// into named, seeded chaos experiments.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workload"
)

// Op is one operation the driver offers: the business fields plus the
// risk route. Targets translate it into their stack's submit call.
type Op struct {
	Kind string
	Key  string
	Arg  int64
	Sync bool // coordinate across replicas instead of guessing
}

// OpGen produces the next operation for one worker. r is the worker's
// private seeded source and elapsed is the time since the run started —
// scenarios use it to phase their traffic (a hot-key spike mid-run).
type OpGen func(r *rand.Rand, elapsed time.Duration) Op

// KeyDist names a built-in key distribution.
type KeyDist string

const (
	// Uniform spreads traffic evenly over the key space.
	Uniform KeyDist = "uniform"
	// Zipf skews traffic so a few keys take most of it (skew ZipfSkew).
	Zipf KeyDist = "zipf"
	// HotKey sends HotFrac of the traffic to one designated key and the
	// rest uniformly — the flash-sale shape.
	HotKey KeyDist = "hotkey"
)

// Spec configures one driver run. Zero values select the documented
// defaults; Gen overrides the knob-built operation stream entirely.
type Spec struct {
	Workers  int           // concurrent submitters (default GOMAXPROCS)
	Rate     float64       // target offered ops/s across all workers; 0 = closed loop (as fast as the target accepts)
	Duration time.Duration // how long to sustain (default 5s)
	Batch    int           // ops per request; <=1 submits one at a time

	Keys      int     // key-space size (default 256)
	KeyPrefix string  // key name prefix (default "acct")
	Dist      KeyDist // key distribution (default Uniform)
	ZipfSkew  float64 // Zipf parameter s > 1 (default 1.2)
	HotFrac   float64 // HotKey: fraction of ops on the hot key (default 0.5)

	DepositFrac float64 // P(op is a deposit); the rest withdraw (default 0.8)
	SyncFrac    float64 // P(op coordinates synchronously) (default 0)
	MaxArg      int64   // op amounts are 1..MaxArg (default 100)

	Seed int64 // worker w draws from Seed+w; same spec+seed = same offered stream

	// Gen, when non-nil, replaces the knob-built stream: it is called
	// once per worker to build that worker's private generator.
	Gen func(worker int, r *rand.Rand) OpGen

	// Out, when non-nil, receives one progress line per second.
	Out io.Writer
}

func (s Spec) withDefaults() Spec {
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.Duration <= 0 {
		s.Duration = 5 * time.Second
	}
	if s.Keys <= 0 {
		s.Keys = 256
	}
	if s.KeyPrefix == "" {
		s.KeyPrefix = "acct"
	}
	if s.Dist == "" {
		s.Dist = Uniform
	}
	if s.ZipfSkew <= 1 {
		s.ZipfSkew = 1.2
	}
	if s.HotFrac <= 0 || s.HotFrac > 1 {
		s.HotFrac = 0.5
	}
	if s.DepositFrac < 0 || s.DepositFrac > 1 {
		s.DepositFrac = 0.8
	} else if s.DepositFrac == 0 {
		s.DepositFrac = 0.8
	}
	if s.MaxArg <= 0 {
		s.MaxArg = 100
	}
	return s
}

// HotKeyName is the designated hot key of the HotKey distribution.
func (s Spec) HotKeyName() string { return s.KeyPrefix + "-hot" }

// gen builds worker w's operation generator from the knobs (or hands
// back the caller's custom Gen).
func (s Spec) gen(w int, r *rand.Rand) OpGen {
	if s.Gen != nil {
		return s.Gen(w, r)
	}
	var key func() string
	switch s.Dist {
	case Zipf:
		key = workload.ZipfKeys(r, s.KeyPrefix, s.ZipfSkew, s.Keys)
	case HotKey:
		uniform := workload.UniformKeys(r, s.KeyPrefix, s.Keys)
		hot := s.HotKeyName()
		frac := s.HotFrac
		key = func() string {
			if r.Float64() < frac {
				return hot
			}
			return uniform()
		}
	default:
		key = workload.UniformKeys(r, s.KeyPrefix, s.Keys)
	}
	return func(r *rand.Rand, _ time.Duration) Op {
		op := Op{Key: key(), Arg: 1 + r.Int63n(s.MaxArg)}
		if r.Float64() < s.DepositFrac {
			op.Kind = "deposit"
		} else {
			op.Kind = "withdraw"
		}
		op.Sync = s.SyncFrac > 0 && r.Float64() < s.SyncFrac
		return op
	}
}

// Report is the measured outcome of one driver run.
type Report struct {
	Offered  int64 // operations submitted
	Accepted int64 // submits the target took
	Declined int64 // business declines (rule refused, replica down, ...)
	Errors   int64 // transport/infrastructure errors

	Elapsed     time.Duration
	OpsPerSec   float64 // accepted / elapsed
	DeclineRate float64 // declined / offered
	ErrorRate   float64 // errors / offered

	P50Ns  float64 // submit latency quantiles, nanoseconds
	P99Ns  float64
	P999Ns float64

	Apologies    int64   // target apology-queue total after the run
	ApologyRate  float64 // apologies / accepted
	SyncDeclined int64   // declines of coordinated submits (bounded-surplus allowance in invariants)
	// RetryableDeclined counts transient declines (degraded shard). A
	// retryable decline may cover work that was absorbed and replicated
	// before its durability failed — declined-but-recorded, the second
	// bounded-surplus allowance.
	RetryableDeclined int64

	Workers int // effective worker count the run used
	Batch   int // effective ops per request (>=1)
}

// counters is the driver's shared, atomically updated tally.
type counters struct {
	offered           atomic.Int64
	accepted          atomic.Int64
	declined          atomic.Int64
	errors            atomic.Int64
	syncDeclined      atomic.Int64
	retryableDeclined atomic.Int64
}

// Run drives tgt with the spec until the duration elapses or ctx is
// cancelled, then returns the measured Report. Worker w submits through
// entry point w mod tgt.Entries() — on a cluster target that pins
// workers to replicas, on a daemon target to daemons — so traffic keeps
// flowing when chaos takes one entry down.
func Run(ctx context.Context, tgt Target, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	entries := tgt.Entries()
	if entries < 1 {
		return nil, fmt.Errorf("loadgen: target has no entry points")
	}

	var (
		cts  counters
		hist LatHist
		wg   sync.WaitGroup
	)
	runCtx, cancel := context.WithTimeout(ctx, spec.Duration)
	defer cancel()

	start := time.Now()
	stopReporter := startReporter(spec.Out, &cts, &hist, tgt, start)

	// Per-worker pacing: each worker owns 1/Workers of the offered rate
	// and fires on a fixed schedule (next = prev + interval), so a stall
	// is followed by catch-up — offered load stays honest under brief
	// target hiccups instead of silently degrading to closed loop.
	var interval time.Duration
	if spec.Rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(spec.Workers) / spec.Rate)
	}

	for w := 0; w < spec.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(spec.Seed + int64(w)))
			gen := spec.gen(w, r)
			entry := w % entries
			next := start
			batch := make([]Op, 0, max(spec.Batch, 1))
			for {
				if runCtx.Err() != nil {
					return
				}
				if interval > 0 {
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(d):
						}
					}
				}
				elapsed := time.Since(start)
				if spec.Batch > 1 {
					batch = batch[:0]
					for len(batch) < spec.Batch {
						batch = append(batch, gen(r, elapsed))
					}
					submitBatch(runCtx, tgt, entry, batch, &cts, &hist)
				} else {
					submitOne(runCtx, tgt, entry, gen(r, elapsed), &cts, &hist)
				}
			}
		}(w)
	}
	wg.Wait()
	stopReporter()

	elapsed := time.Since(start)
	rep := &Report{
		Offered:           cts.offered.Load(),
		Accepted:          cts.accepted.Load(),
		Declined:          cts.declined.Load(),
		Errors:            cts.errors.Load(),
		SyncDeclined:      cts.syncDeclined.Load(),
		RetryableDeclined: cts.retryableDeclined.Load(),
		Elapsed:           elapsed,
		OpsPerSec:         float64(cts.accepted.Load()) / elapsed.Seconds(),
		P50Ns:             hist.Quantile(0.50),
		P99Ns:             hist.Quantile(0.99),
		P999Ns:            hist.Quantile(0.999),
		Apologies:         int64(tgt.Apologies()),
		Workers:           spec.Workers,
		Batch:             max(spec.Batch, 1),
	}
	if rep.Offered > 0 {
		rep.DeclineRate = float64(rep.Declined) / float64(rep.Offered)
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Offered)
	}
	if rep.Accepted > 0 {
		rep.ApologyRate = float64(rep.Apologies) / float64(rep.Accepted)
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// submitOne offers one op and tallies the outcome.
func submitOne(ctx context.Context, tgt Target, entry int, op Op, cts *counters, hist *LatHist) {
	cts.offered.Add(1)
	t0 := time.Now()
	out, err := tgt.Submit(ctx, entry, op)
	hist.Record(time.Since(t0).Nanoseconds())
	tally(op, out, err, cts)
}

// submitBatch offers a batch through one request and tallies each
// outcome; the request latency is recorded once (it covers the batch).
func submitBatch(ctx context.Context, tgt Target, entry int, ops []Op, cts *counters, hist *LatHist) {
	cts.offered.Add(int64(len(ops)))
	t0 := time.Now()
	outs, err := tgt.SubmitBatch(ctx, entry, ops)
	hist.Record(time.Since(t0).Nanoseconds())
	if err != nil {
		cts.errors.Add(int64(len(ops)))
		return
	}
	for i, out := range outs {
		tally(ops[i], out, nil, cts)
	}
}

func tally(op Op, out Outcome, err error, cts *counters) {
	switch {
	case err != nil:
		cts.errors.Add(1)
	case out.Accepted:
		cts.accepted.Add(1)
	default:
		cts.declined.Add(1)
		if op.Sync {
			cts.syncDeclined.Add(1)
		}
		if out.Retryable {
			cts.retryableDeclined.Add(1)
		}
	}
}

// startReporter streams one line per second to out: window throughput,
// window latency quantiles, cumulative decline count, and the target's
// current apology total — the live view that makes a chaos run legible
// while it happens. Returns a stop function.
func startReporter(out io.Writer, cts *counters, hist *LatHist, tgt Target, start time.Time) func() {
	if out == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		prevSnap := hist.Snapshot()
		prevAccepted := int64(0)
		for {
			select {
			case <-quit:
				return
			case <-ticker.C:
			}
			snap := hist.Snapshot()
			window := histDiff(snap, prevSnap)
			prevSnap = snap
			acc := cts.accepted.Load()
			accWindow := acc - prevAccepted
			prevAccepted = acc
			fmt.Fprintf(out, "[%3ds] %7d ops/s  p50 %-9s p99 %-9s declines %d  errors %d  apologies %d\n",
				int(time.Since(start).Seconds()), accWindow,
				durStr(quantileOf(window, 0.50)), durStr(quantileOf(window, 0.99)),
				cts.declined.Load(), cts.errors.Load(), tgt.Apologies())
		}
	}()
	return func() {
		close(quit)
		<-done
	}
}

// durStr renders a float nanosecond quantity compactly.
func durStr(ns float64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
