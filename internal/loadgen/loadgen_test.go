package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Closed-loop accounting: every offered op is accepted, declined, or
// errored; after convergence every accepted op is at every replica.
func TestDriverClosedLoop(t *testing.T) {
	tgt := NewAccountsCluster(core.WithReplicas(3), core.WithGossipEvery(2*time.Millisecond))
	defer tgt.Close()
	rep, err := Run(context.Background(), tgt, Spec{
		Workers:     3,
		Duration:    400 * time.Millisecond,
		Keys:        64,
		DepositFrac: 1, // deposits never decline, so accounting is exact
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Accepted == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Offered != rep.Accepted+rep.Declined+rep.Errors {
		t.Fatalf("accounting mismatch: offered %d != %d+%d+%d",
			rep.Offered, rep.Accepted, rep.Declined, rep.Errors)
	}
	if rep.Declined != 0 {
		t.Fatalf("deposits declined: %d", rep.Declined)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tgt.Converge(ctx); err != nil {
		t.Fatal(err)
	}
	for i, n := range tgt.OpCounts() {
		if int64(n) < rep.Accepted || int64(n) > rep.Accepted+rep.Errors {
			t.Fatalf("replica %d holds %d ops, accepted %d (errors %d)", i, n, rep.Accepted, rep.Errors)
		}
	}
	if rep.P50Ns <= 0 || rep.P99Ns < rep.P50Ns {
		t.Fatalf("implausible latency quantiles: p50=%v p99=%v", rep.P50Ns, rep.P99Ns)
	}
}

// Open-loop pacing: a rate target bounds the offered load. Generous
// margins — CI boxes stall — but a closed-loop runaway (tens of
// thousands of ops in 500ms in-process) must be caught.
func TestDriverRatePacing(t *testing.T) {
	tgt := NewAccountsCluster(core.WithReplicas(2), core.WithGossipEvery(5*time.Millisecond))
	defer tgt.Close()
	rep, err := Run(context.Background(), tgt, Spec{
		Workers:     2,
		Rate:        400,
		Duration:    500 * time.Millisecond,
		Keys:        16,
		DepositFrac: 1,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered < 50 || rep.Offered > 400 {
		t.Fatalf("offered %d ops in 500ms at 400 ops/s target, want roughly 200", rep.Offered)
	}
}

// The batch path must account per-op outcomes, not per-request.
func TestDriverBatch(t *testing.T) {
	tgt := NewAccountsCluster(core.WithReplicas(2), core.WithGossipEvery(2*time.Millisecond))
	defer tgt.Close()
	rep, err := Run(context.Background(), tgt, Spec{
		Workers:     2,
		Batch:       32,
		Duration:    300 * time.Millisecond,
		Keys:        64,
		DepositFrac: 1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Offered%32 != 0 {
		t.Fatalf("offered %d, want a positive multiple of the batch size", rep.Offered)
	}
	if rep.Offered != rep.Accepted+rep.Declined+rep.Errors {
		t.Fatalf("accounting mismatch: %+v", rep)
	}
}

// The same spec and seed must offer the same operation stream (the
// reproducibility contract scenarios rely on). Outcomes may differ —
// timing decides which guesses race — but the offered ops are a pure
// function of (seed, worker, sequence).
func TestGeneratorDeterminism(t *testing.T) {
	stream := func() []Op {
		spec := Spec{Keys: 32, DepositFrac: 0.7, SyncFrac: 0.1, Seed: 99, Dist: Zipf}
		spec = spec.withDefaults()
		r := newTestRand(99)
		gen := spec.gen(0, r)
		var out []Op
		for i := 0; i < 200; i++ {
			out = append(out, gen(r, 0))
		}
		return out
	}
	a, b := stream(), stream()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestLoadgenRaceSoak drives the loadgen against a live durable cluster
// with the ingest pipeline on, while a churn goroutine hard-kills and
// recovers replicas and readers poll snapshots — the reader-snapshot /
// ingest-pipeline / crash-recovery interleavings all at once. Run it
// under -race; skip under -short.
func TestLoadgenRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	tgt := NewAccountsCluster(
		core.WithReplicas(3),
		core.WithDurability(t.TempDir()),
		core.WithIngestBatch(64),
		core.WithGossipEvery(2*time.Millisecond),
	)
	defer tgt.Close()

	soakCtx, stopSoak := context.WithCancel(context.Background())
	var aux sync.WaitGroup

	// Churn: kill and recover replicas 1 and 2 alternately, never both
	// at once, so the cluster always has a majority of entry points up.
	aux.Add(1)
	var kills atomic.Int64
	go func() {
		defer aux.Done()
		victim := 1
		for soakCtx.Err() == nil {
			tgt.Kill(victim)
			kills.Add(1)
			time.Sleep(60 * time.Millisecond)
			rctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := tgt.Recover(rctx, victim); err != nil {
				t.Errorf("recover replica %d: %v", victim, err)
				cancel()
				return
			}
			cancel()
			victim = 3 - victim // 1 ↔ 2
			time.Sleep(40 * time.Millisecond)
		}
	}()

	// Readers: hammer the published-snapshot read path concurrently with
	// ingest batches and recoveries.
	var reads atomic.Int64
	for r := 0; r < 2; r++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for soakCtx.Err() == nil {
				_ = tgt.C.States()
				_ = tgt.OpCounts()
				reads.Add(1)
			}
		}()
	}

	rep, err := Run(context.Background(), tgt, Spec{
		Workers:  4,
		Duration: 1500 * time.Millisecond,
		Keys:     128,
		Seed:     7,
	})
	stopSoak()
	aux.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted == 0 {
		t.Fatalf("soak accepted nothing: %+v", rep)
	}
	if reads.Load() == 0 {
		t.Fatal("reader goroutines never completed a read")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := tgt.Converge(ctx); err != nil {
		t.Fatal(err)
	}
	// Accepted means fsynced: even with replicas dying mid-run, every
	// accepted op must be at every replica after recovery + convergence.
	// Surplus allowance: failed coordinated submits and transport errors
	// can record without acknowledging, and each hard kill can journal
	// the in-flight ops (≤ one per worker) before destroying their acks.
	allowed := rep.SyncDeclined + rep.Errors + kills.Load()*int64(rep.Workers)*int64(rep.Batch)
	for i, n := range tgt.OpCounts() {
		if int64(n) < rep.Accepted {
			t.Fatalf("replica %d lost ops: holds %d, accepted %d", i, n, rep.Accepted)
		}
		if int64(n) > rep.Accepted+allowed {
			t.Fatalf("replica %d surplus: holds %d, accepted %d, allowance %d", i, n, rep.Accepted, allowed)
		}
	}
}

// TestSlowDiskDifferential pins the WithFsyncDelay contract: injected
// fsync latency changes timing only. A seeded, sequential script run
// with and without the delay must produce identical per-op outcomes,
// identical final states, and identical apology ledgers.
func TestSlowDiskDifferential(t *testing.T) {
	control := runDiffScript(t, t.TempDir(), 0)
	slowed := runDiffScript(t, t.TempDir(), time.Millisecond)

	if len(control.outcomes) != len(slowed.outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(control.outcomes), len(slowed.outcomes))
	}
	for i := range control.outcomes {
		if control.outcomes[i] != slowed.outcomes[i] {
			t.Fatalf("op %d outcome differs: control %q, slow-disk %q",
				i, control.outcomes[i], slowed.outcomes[i])
		}
	}
	if len(control.state) != len(slowed.state) {
		t.Fatalf("final state sizes differ: %d vs %d keys", len(control.state), len(slowed.state))
	}
	for k, v := range control.state {
		if slowed.state[k] != v {
			t.Fatalf("final state differs at %s: control %d, slow-disk %d", k, v, slowed.state[k])
		}
	}
	if c, s := strings.Join(control.apologies, "\n"), strings.Join(slowed.apologies, "\n"); c != s {
		t.Fatalf("apology ledgers differ:\ncontrol:\n%s\nslow-disk:\n%s", c, s)
	}
	if len(control.apologies) == 0 {
		t.Fatal("script produced no apologies; the differential is not exercising the ledger")
	}
}

type diffResult struct {
	outcomes  []string
	state     daemon.Accounts
	apologies []string
}

// runDiffScript replays a fixed seeded script against a fresh durable
// 3-replica cluster: sequential blocking submits round-robin across
// replicas, with a full-convergence barrier every 16 ops. The barriers
// make outcomes a pure function of the script — between barriers each
// replica sees only the converged prefix plus its own submissions, so
// fsync timing cannot change any admission decision.
func runDiffScript(t *testing.T, dir string, delay time.Duration) diffResult {
	t.Helper()
	opts := []core.Option{core.WithReplicas(3), core.WithDurability(dir)}
	if delay > 0 {
		opts = append(opts, core.WithFsyncDelay(delay))
	}
	tgt := NewAccountsCluster(opts...)
	defer tgt.Close()

	barrier := func() {
		deadline := time.Now().Add(30 * time.Second)
		for !tgt.C.Converged() {
			if time.Now().After(deadline) {
				t.Fatal("differential barrier did not converge")
			}
			tgt.C.GossipRound()
			time.Sleep(time.Millisecond)
		}
	}

	r := newTestRand(1234)
	var res diffResult
	ctx := context.Background()
	for i := 0; i < 240; i++ {
		op := Op{Kind: "deposit", Key: fmt.Sprintf("k%d", r.Intn(6)), Arg: 1 + r.Int63n(50)}
		// Overdraw-prone mix: enough withdrawals that merges discover
		// violations and the apology ledgers have content to compare.
		if r.Float64() < 0.45 {
			op.Kind = "withdraw"
			op.Arg = 1 + r.Int63n(80)
		}
		out, err := tgt.Submit(ctx, i%3, op)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		res.outcomes = append(res.outcomes, fmt.Sprintf("%s %s %d accepted=%v reason=%q",
			op.Kind, op.Key, op.Arg, out.Accepted, out.Reason))
		if (i+1)%16 == 0 {
			barrier()
		}
	}
	barrier()
	res.state = tgt.C.Replica(0).State()

	// Normalize the ledger: the discovering replica and the balance depth
	// at discovery (Amount) depend on which gossip push landed first
	// inside a barrier — nondeterministic by design. Identity, rule,
	// detail, and key are the violation's content and must match exactly.
	for _, a := range tgt.ApologyList() {
		res.apologies = append(res.apologies, fmt.Sprintf("%s|%s|%s|%s", a.ID, a.Rule, a.Detail, a.Key))
	}
	sort.Strings(res.apologies)
	return res
}
