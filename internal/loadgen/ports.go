package loadgen

import "net"

// freePorts reserves n distinct loopback TCP addresses by binding port 0
// listeners, collecting the kernel-assigned addresses, and closing them.
// The usual bench/test race caveat applies: another process could grab a
// port between close and reuse, but daemons bind immediately after.
func freePorts(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}
