package loadgen

import (
	"context"
	"fmt"
	"time"

	"repro/client"
	"repro/internal/apology"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/policy"
	"repro/internal/uniq"
)

// Outcome is the business result of one offered operation — accepted or
// declined with a reason. Transport failures are errors, not Outcomes.
type Outcome struct {
	Accepted  bool
	Reason    string
	Retryable bool // transient decline (degraded shard), expected to heal
}

// Target abstracts "a running quicksand deployment" so one driver and
// one scenario library measure all three stacks: an in-process cluster
// (volatile or durable) and real daemons reached over HTTP. An entry
// point is where a worker's traffic lands — a replica index on a
// cluster, a daemon on the networked stack.
type Target interface {
	// Entries reports how many entry points accept traffic.
	Entries() int
	// Submit offers one op at the given entry point.
	Submit(ctx context.Context, entry int, op Op) (Outcome, error)
	// SubmitBatch offers a batch through one request, outcomes in order.
	SubmitBatch(ctx context.Context, entry int, ops []Op) ([]Outcome, error)
	// Apologies reports the deployment-wide apology total (deduped).
	Apologies() int
	// ApologyList returns the deduped apologies for attribution checks.
	ApologyList() []apology.Apology
	// Converge drives anti-entropy until every replica agrees or ctx
	// expires.
	Converge(ctx context.Context) error
	// OpCounts reports each entry point's recorded-operation count
	// (summed across shards). nil when the stack cannot observe it.
	OpCounts() []int
	// StateOf returns entry's derived state merged across shards.
	StateOf(entry int) map[string]int64
	// Annotate stamps an out-of-band marker ("partition opened", "spike
	// start") onto the deployment's trace stream, so op lifecycles can
	// be lined up with what the scenario was doing. Best-effort: a stack
	// without tracing ignores it.
	Annotate(note string)
	// Close releases whatever the target owns.
	Close() error
}

// ChaosTarget is a Target whose replicas can be degraded: silenced
// (partition-like — RAM survives, messages stop), hard-killed, and
// recovered. Scenario fault schedules require one.
type ChaosTarget interface {
	Target
	// Silence cuts entry off from gossip (down=true) or heals it.
	Silence(entry int, down bool)
	// Kill hard-crashes entry: RAM gone, unflushed writes lost.
	Kill(entry int)
	// Recover restarts a killed entry from its durable store.
	Recover(ctx context.Context, entry int) error
}

// ClusterTarget adapts an in-process cluster — volatile or durable —
// running the daemon's Accounts application, so cluster scenarios and
// daemon scenarios measure the same business.
type ClusterTarget struct {
	C *core.Cluster[daemon.Accounts]
}

// NewAccountsCluster builds the canonical scenario cluster: the daemon's
// Accounts app under the NoOverdraft rule on a live transport, with the
// caller's extra options (durability, shards, ingest batching, gossip).
func NewAccountsCluster(opts ...core.Option) *ClusterTarget {
	c := core.New[daemon.Accounts](daemon.AccountsApp{}, []core.Rule[daemon.Accounts]{daemon.NoOverdraft()}, opts...)
	return &ClusterTarget{C: c}
}

func (t *ClusterTarget) Entries() int { return t.C.Replicas() }

func (t *ClusterTarget) Submit(ctx context.Context, entry int, op Op) (Outcome, error) {
	var opts []core.SubmitOption
	if op.Sync {
		opts = append(opts, core.WithPolicy(policy.AlwaysSync()))
	}
	res, err := t.C.Submit(ctx, entry, core.NewOp(op.Kind, op.Key, op.Arg), opts...)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Accepted: res.Accepted, Reason: res.Reason, Retryable: res.Retryable}, nil
}

// SubmitBatch offers the batch in one engine call. The engine routes a
// whole batch under one policy, so a mixed batch is split into its async
// run and its sync run (order within each run is preserved; per-key
// ordering across the two is the submitter's concern, as it is for any
// two concurrent requests).
func (t *ClusterTarget) SubmitBatch(ctx context.Context, entry int, ops []Op) ([]Outcome, error) {
	outs := make([]Outcome, len(ops))
	var asyncIdx, syncIdx []int
	for i, op := range ops {
		if op.Sync {
			syncIdx = append(syncIdx, i)
		} else {
			asyncIdx = append(asyncIdx, i)
		}
	}
	run := func(idxs []int, opts ...core.SubmitOption) error {
		if len(idxs) == 0 {
			return nil
		}
		batch := make([]core.Op, len(idxs))
		for k, i := range idxs {
			batch[k] = core.NewOp(ops[i].Kind, ops[i].Key, ops[i].Arg)
		}
		results, err := t.C.SubmitBatch(ctx, entry, batch, opts...)
		if err != nil {
			return err
		}
		for k, i := range idxs {
			outs[i] = Outcome{Accepted: results[k].Accepted, Reason: results[k].Reason, Retryable: results[k].Retryable}
		}
		return nil
	}
	if err := run(asyncIdx); err != nil {
		return nil, err
	}
	if err := run(syncIdx, core.WithPolicy(policy.AlwaysSync())); err != nil {
		return nil, err
	}
	return outs, nil
}

func (t *ClusterTarget) Apologies() int { return t.C.Apologies.Total() }

func (t *ClusterTarget) ApologyList() []apology.Apology {
	return append(t.C.Apologies.Automated(), t.C.Apologies.Human()...)
}

// Converge drives gossip rounds until every shard's replicas hold the
// same operation set. It keeps nudging (rather than only polling) so
// convergence does not depend on a background gossip schedule.
func (t *ClusterTarget) Converge(ctx context.Context) error {
	for {
		if t.C.Converged() {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("loadgen: cluster did not converge: %w", err)
		}
		t.C.GossipRound()
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func (t *ClusterTarget) OpCounts() []int {
	out := make([]int, t.C.Replicas())
	for i := range out {
		for s := 0; s < t.C.Shards(); s++ {
			out[i] += t.C.ShardReplica(s, i).OpCount()
		}
	}
	return out
}

func (t *ClusterTarget) StateOf(entry int) map[string]int64 {
	merged := make(map[string]int64)
	for s := 0; s < t.C.Shards(); s++ {
		for k, v := range t.C.ShardReplica(s, entry).State() {
			merged[k] = v
		}
	}
	return merged
}

func (t *ClusterTarget) Silence(entry int, down bool) {
	tr := t.C.Transport()
	for s := 0; s < t.C.Shards(); s++ {
		tr.SetUp(core.NodeID(t.C.Shards(), s, entry), !down)
	}
}

func (t *ClusterTarget) Kill(entry int) {
	for s := 0; s < t.C.Shards(); s++ {
		t.C.ShardKill(s, entry)
	}
}

func (t *ClusterTarget) Recover(ctx context.Context, entry int) error {
	for s := 0; s < t.C.Shards(); s++ {
		if err := t.C.ShardRecover(ctx, s, entry); err != nil {
			return err
		}
	}
	return nil
}

// Annotate marks the cluster's trace stream (a no-op without a tracer).
func (t *ClusterTarget) Annotate(note string) { t.C.Tracer().Annotate(note) }

func (t *ClusterTarget) Close() error { return t.C.Close() }

// NetTarget adapts a set of quicksandd daemons reached through the
// client SDK — the stack a real deployment runs. When the target boots
// the daemons itself (NewNetTarget), chaos operations reach through the
// daemon handles into the hosted cluster slices; a target pointed at
// external daemons (WrapClients) measures but cannot inject faults.
type NetTarget struct {
	daemons []*daemon.Daemon // nil entries = external, not chaos-capable
	clients []*client.Client
	owned   bool
}

// NewNetTarget boots n in-process daemons on loopback — real TCP gossip,
// real HTTP submits — forming one cluster of n replicas per shard.
func NewNetTarget(n, shards, ingestBatch int, dataDir string, gossipEvery time.Duration) (*NetTarget, error) {
	if n < 2 {
		n = 2
	}
	peerAddrs, err := freePorts(n)
	if err != nil {
		return nil, err
	}
	peers := make(map[int]string, n)
	for i, a := range peerAddrs {
		peers[i] = a
	}
	t := &NetTarget{owned: true}
	for i := 0; i < n; i++ {
		cfg := daemon.Config{
			Node:        i,
			Replicas:    n,
			Shards:      shards,
			HTTPListen:  "127.0.0.1:0",
			PeerListen:  peerAddrs[i],
			Peers:       peers,
			GossipEvery: gossipEvery,
			IngestBatch: ingestBatch,
		}
		if dataDir != "" {
			cfg.DataDir = fmt.Sprintf("%s/node%d", dataDir, i)
		}
		d, err := daemon.New(cfg)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("loadgen: boot daemon %d: %w", i, err)
		}
		t.daemons = append(t.daemons, d)
		t.clients = append(t.clients, client.New("http://"+d.HTTPAddr()))
	}
	return t, nil
}

// WrapClients points a NetTarget at already-running daemons. Chaos
// methods are unavailable (they need the process handles).
func WrapClients(clients ...*client.Client) *NetTarget {
	return &NetTarget{clients: clients}
}

// Daemon exposes the entry'th hosted daemon — the handle chaos scenarios
// use to reach layers the public API deliberately hides, like the peer
// transport's fault injector. Nil when the target wraps external daemons.
func (t *NetTarget) Daemon(entry int) *daemon.Daemon {
	if !t.owned {
		return nil
	}
	return t.daemons[entry]
}

func (t *NetTarget) Entries() int { return len(t.clients) }

func (t *NetTarget) Submit(ctx context.Context, entry int, op Op) (Outcome, error) {
	res, err := t.clients[entry].Submit(ctx, client.Op{Kind: op.Kind, Key: op.Key, Arg: op.Arg}, op.Sync)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Accepted: res.Accepted, Reason: res.Reason, Retryable: res.Retryable}, nil
}

func (t *NetTarget) SubmitBatch(ctx context.Context, entry int, ops []Op) ([]Outcome, error) {
	outs := make([]Outcome, len(ops))
	var asyncIdx, syncIdx []int
	for i, op := range ops {
		if op.Sync {
			syncIdx = append(syncIdx, i)
		} else {
			asyncIdx = append(asyncIdx, i)
		}
	}
	run := func(idxs []int, sync bool) error {
		if len(idxs) == 0 {
			return nil
		}
		batch := make([]client.Op, len(idxs))
		for k, i := range idxs {
			batch[k] = client.Op{Kind: ops[i].Kind, Key: ops[i].Key, Arg: ops[i].Arg}
		}
		results, err := t.clients[entry].SubmitBatch(ctx, batch, sync)
		if err != nil {
			return err
		}
		for k, i := range idxs {
			outs[i] = Outcome{Accepted: results[k].Accepted, Reason: results[k].Reason, Retryable: results[k].Retryable}
		}
		return nil
	}
	if err := run(asyncIdx, false); err != nil {
		return nil, err
	}
	if err := run(syncIdx, true); err != nil {
		return nil, err
	}
	return outs, nil
}

// Apologies reports the cluster-wide apology total: each daemon's queue
// holds what its replica discovered, and content-derived IDs make the
// union well-defined — the same overdraft found by two daemons is one
// apology.
func (t *NetTarget) Apologies() int { return len(t.ApologyList()) }

func (t *NetTarget) ApologyList() []apology.Apology {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := make(map[string]bool)
	var out []apology.Apology
	for _, cl := range t.clients {
		resp, err := cl.Apologies(ctx)
		if err != nil {
			continue // a dead daemon's regrets are discovered by the others
		}
		for _, a := range append(resp.Automated, resp.Human...) {
			if seen[a.ID] {
				continue
			}
			seen[a.ID] = true
			out = append(out, apology.Apology{
				ID: uniq.ID(a.ID), Rule: a.Rule, Detail: a.Detail,
				Key: a.Key, Amount: a.Amount, Replica: a.Replica,
			})
		}
	}
	return out
}

// Converge nudges every daemon's gossip and waits until all daemons
// report the same op counts and derived state. Cross-process replicas
// cannot compare operation sets by reference (they live in different
// address spaces), so convergence is observed through the API — counts
// first (cheap), then the merged key maps.
func (t *NetTarget) Converge(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("loadgen: daemons did not converge: %w", err)
		}
		for _, cl := range t.clients {
			cl.Gossip(ctx) // best effort; a dead daemon just misses the nudge
		}
		if t.netConverged(ctx) {
			return nil
		}
		select {
		case <-ctx.Done():
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (t *NetTarget) netConverged(ctx context.Context) bool {
	counts := t.OpCounts()
	if counts != nil {
		for _, c := range counts[1:] {
			if c != counts[0] {
				return false
			}
		}
	}
	var first map[string]int64
	for _, cl := range t.clients {
		st, err := cl.State(ctx)
		if err != nil {
			return false
		}
		if first == nil {
			first = st.Keys
			continue
		}
		if !mapsEqual(first, st.Keys) {
			return false
		}
	}
	return true
}

func mapsEqual(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// OpCounts reads each daemon's hosted replica slice directly; nil when
// the daemons are external processes.
func (t *NetTarget) OpCounts() []int {
	if !t.owned {
		return nil
	}
	out := make([]int, len(t.daemons))
	for i, d := range t.daemons {
		c := d.Cluster()
		for s := 0; s < c.Shards(); s++ {
			out[i] += c.ShardReplica(s, i).OpCount()
		}
	}
	return out
}

func (t *NetTarget) StateOf(entry int) map[string]int64 {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := t.clients[entry].State(ctx)
	if err != nil {
		return nil
	}
	return st.Keys
}

// Silence degrades the daemon's hosted replica at the transport: peers
// stop hearing from it, it stops hearing from peers, RAM survives.
func (t *NetTarget) Silence(entry int, down bool) {
	c := t.daemons[entry].Cluster()
	tr := c.Transport()
	for s := 0; s < c.Shards(); s++ {
		tr.SetUp(core.NodeID(c.Shards(), s, entry), !down)
	}
}

func (t *NetTarget) Kill(entry int) {
	c := t.daemons[entry].Cluster()
	for s := 0; s < c.Shards(); s++ {
		c.ShardKill(s, entry)
	}
}

func (t *NetTarget) Recover(ctx context.Context, entry int) error {
	c := t.daemons[entry].Cluster()
	for s := 0; s < c.Shards(); s++ {
		if err := c.ShardRecover(ctx, s, entry); err != nil {
			return err
		}
	}
	return nil
}

// Annotate stamps the marker onto every daemon's trace stream, so the
// dashboard shows scenario phases no matter which daemon it watches.
// Best-effort: a dead daemon just misses the marker.
func (t *NetTarget) Annotate(note string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, cl := range t.clients {
		cl.Annotate(ctx, note)
	}
}

func (t *NetTarget) Close() error {
	if !t.owned {
		return nil
	}
	var firstErr error
	for _, d := range t.daemons {
		if d == nil {
			continue
		}
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
