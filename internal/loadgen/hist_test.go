package loadgen

import (
	"math/rand"
	"sync"
	"testing"
)

// Every value must land in a bucket whose lower bound does not exceed it
// and whose width is at most ~1/16 of it — the HDR accuracy contract.
func TestBucketMapping(t *testing.T) {
	values := []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1 << 20, (1 << 20) + 7, 1<<40 + 12345, 1<<62 + 999}
	for _, v := range values {
		idx := bucketOf(v)
		lo := bucketValue(idx)
		want := v
		if want < 1 {
			want = 1
		}
		if lo > want {
			t.Fatalf("bucketOf(%d)=%d has lower bound %d > value", v, idx, lo)
		}
		if idx+1 < histBuckets {
			hi := bucketValue(idx + 1)
			if hi <= want {
				t.Fatalf("bucketOf(%d)=%d: next bucket starts at %d, value should be below it", v, idx, hi)
			}
			// Relative width bound: one sub-bucket is 1/16 of the octave.
			if want >= histSub*2 && float64(hi-lo) > float64(want)/8 {
				t.Fatalf("bucket %d for value %d too wide: [%d,%d)", idx, v, lo, hi)
			}
		}
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for v := int64(1); v < 1<<20; v = v*9/8 + 1 {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestQuantiles(t *testing.T) {
	var h LatHist
	// 1000 samples of 1..1000: p50 ≈ 500, p99 ≈ 990, within bucket width.
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if n := h.Count(); n != 1000 {
		t.Fatalf("count = %d, want 1000", n)
	}
	p50 := h.Quantile(0.50)
	if p50 < 400 || p50 > 600 {
		t.Fatalf("p50 = %v, want ≈500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1000 {
		t.Fatalf("p99 = %v, want ≈990", p99)
	}
	if q := (&LatHist{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// Window diffs: recording in two phases, the diff of snapshots holds
// exactly the second phase.
func TestSnapshotDiff(t *testing.T) {
	var h LatHist
	for i := 0; i < 100; i++ {
		h.Record(10)
	}
	snap1 := h.Snapshot()
	for i := 0; i < 50; i++ {
		h.Record(1000)
	}
	window := histDiff(h.Snapshot(), snap1)
	if n := histCount(window); n != 50 {
		t.Fatalf("window holds %d samples, want 50", n)
	}
	if q := quantileOf(window, 0.5); q < 900 || q > 1100 {
		t.Fatalf("window p50 = %v, want ≈1000", q)
	}
}

// Concurrent recording must lose nothing (the histogram is the hot-path
// shared structure of the driver).
func TestConcurrentRecord(t *testing.T) {
	var h LatHist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(1 + r.Int63n(1<<30))
			}
		}(w)
	}
	wg.Wait()
	if n := h.Count(); n != workers*per {
		t.Fatalf("count = %d, want %d", n, workers*per)
	}
	if n := histCount(h.Snapshot()); n != workers*per {
		t.Fatalf("bucket sum = %d, want %d", n, workers*per)
	}
}
