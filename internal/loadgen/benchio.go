package loadgen

// Machine-readable scenario output: every scenario run and every matrix
// arm appends one Row to a BENCH_scenarios.json document carrying the
// host fingerprint. The format is documented in docs/bench.md; CI
// uploads the file as an artifact, and the checked-in copy at the
// repository root pins the chaos/perf trajectory release by release.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Check is one asserted end-state invariant of a scenario run.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Row is one scenario or matrix-arm result.
type Row struct {
	Scenario string `json:"scenario"`      // named scenario, or "matrix"
	Arm      string `json:"arm,omitempty"` // matrix arm label, e.g. "procs=4 shards=4 ingest=256"
	Stack    string `json:"stack"`         // "live", "durable", or "net"
	Seed     int64  `json:"seed"`
	Duration string `json:"duration"`

	Offered  int64 `json:"offered"`
	Accepted int64 `json:"accepted"`
	Declined int64 `json:"declined"`
	Errors   int64 `json:"errors"`

	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	DeclineRate float64 `json:"decline_rate"`
	Apologies   int64   `json:"apologies"`
	ApologyRate float64 `json:"apology_rate"`

	// GOMAXPROCS is the parallelism in effect while THIS row ran — a
	// matrix sweep changes it between arms, so it is per-row, not only
	// part of the document fingerprint.
	GOMAXPROCS  int `json:"gomaxprocs"`
	Shards      int `json:"shards"`
	Replicas    int `json:"replicas"`
	IngestBatch int `json:"ingest_batch"`

	Invariants []Check `json:"invariants,omitempty"`
	Passed     bool    `json:"passed"`
}

// FromReport seeds a Row with the driver's measurements.
func FromReport(rep *Report) Row {
	return Row{
		Offered:     rep.Offered,
		Accepted:    rep.Accepted,
		Declined:    rep.Declined,
		Errors:      rep.Errors,
		Duration:    rep.Elapsed.Round(time.Millisecond).String(),
		OpsPerSec:   rep.OpsPerSec,
		P50Ns:       rep.P50Ns,
		P99Ns:       rep.P99Ns,
		P999Ns:      rep.P999Ns,
		DeclineRate: rep.DeclineRate,
		Apologies:   rep.Apologies,
		ApologyRate: rep.ApologyRate,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
}

// Doc is the whole BENCH_scenarios.json document: a host fingerprint
// (the numbers measure this machine, not the protocol) plus result rows.
type Doc struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"` // at document creation; rows carry their own
	Results     []Row  `json:"results"`
}

// NewDoc fingerprints the host.
func NewDoc() *Doc {
	return &Doc{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
}

// AppendRows merges rows into the document at path: an existing
// parseable document keeps its rows (fingerprint refreshed), anything
// else starts fresh. Consecutive scenario invocations accumulate into
// one file instead of clobbering each other.
func AppendRows(path string, rows ...Row) error {
	doc := NewDoc()
	if buf, err := os.ReadFile(path); err == nil {
		var old Doc
		if json.Unmarshal(buf, &old) == nil {
			doc.Results = old.Results
		}
	}
	doc.Results = append(doc.Results, rows...)
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("loadgen: write %s: %w", path, err)
	}
	return nil
}
