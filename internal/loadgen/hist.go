package loadgen

import "repro/internal/stats"

// LatHist lives in internal/stats now — it was born here as the
// loadgen reporter's fixed-memory latency histogram and got promoted to
// THE histogram type for the whole engine (core metrics, store fsync
// latency, trace lifecycle lags, and the daemon's /metrics histograms
// all record into one). The alias and the thin wrappers below keep the
// driver code and its tests reading the way they always did.
type LatHist = stats.LatHist

const (
	histBuckets = stats.HistBuckets
	histSub     = stats.HistSub
)

func bucketOf(ns int64) int                   { return stats.BucketOf(ns) }
func bucketValue(idx int) int64               { return stats.BucketBound(idx) }
func quantileOf(c []int64, q float64) float64 { return stats.QuantileOf(c, q) }
func histDiff(cur, prev []int64) []int64      { return stats.HistDiff(cur, prev) }
func histCount(c []int64) int64               { return stats.HistCount(c) }
