package loadgen

import (
	"math/bits"
	"sync/atomic"
)

// LatHist is a fixed-memory, lock-free latency histogram with
// logarithmically spaced buckets: 16 sub-buckets per power of two of
// nanoseconds, so every quantile is exact to within ~6% of its value.
// stats.Histogram keeps raw samples — exact quantiles, but memory and
// lock contention grow with the sample count, which a sustained driver
// pushing hundreds of thousands of ops per second for minutes cannot
// afford. A LatHist is ~1000 atomic counters, Record is one atomic add,
// and a Snapshot diff turns cumulative counts into a per-second window.
type LatHist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
}

const (
	histSubBits = 4                                  // 16 sub-buckets per octave
	histSub     = 1 << histSubBits                   // sub-buckets per power of two
	histBuckets = (63-histSubBits)*histSub + histSub // exact small values + log range
)

// bucketOf maps a nanosecond latency to its bucket index. Values up to
// 2^histSubBits map exactly; above that, the index is (octave,
// sub-bucket) — the classic HDR shape.
func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	v := uint64(ns)
	e := bits.Len64(v) - 1 // exponent of the leading bit
	if e <= histSubBits {
		return int(v) // 1..31 map to themselves (bucket width 1)
	}
	sub := (v >> (uint(e) - histSubBits)) & (histSub - 1)
	idx := (e-histSubBits)*histSub + int(sub) + histSub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketValue is the representative nanosecond value of a bucket: its
// lower bound, which keeps quantile estimates conservative (never above
// the true value by more than one bucket width).
func bucketValue(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	idx -= histSub
	e := idx/histSub + histSubBits
	sub := idx % histSub
	return (1 << uint(e)) + int64(sub)<<(uint(e)-histSubBits)
}

// Record adds one latency sample in nanoseconds.
func (h *LatHist) Record(ns int64) {
	h.counts[bucketOf(ns)].Add(1)
	h.total.Add(1)
}

// Count reports how many samples were recorded.
func (h *LatHist) Count() int64 { return h.total.Load() }

// Snapshot copies the cumulative bucket counts. Diffing two snapshots
// (histDiff) yields the samples recorded between them — the per-second
// reporting window.
func (h *LatHist) Snapshot() []int64 {
	out := make([]int64, histBuckets)
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile reports the q-quantile (0..1) in nanoseconds over all
// recorded samples, or 0 with none.
func (h *LatHist) Quantile(q float64) float64 {
	return quantileOf(h.Snapshot(), q)
}

// quantileOf computes a quantile from a bucket-count vector.
func quantileOf(counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return float64(bucketValue(i))
		}
	}
	return float64(bucketValue(len(counts) - 1))
}

// histDiff subtracts prev from cur element-wise — the window between two
// snapshots. The slices must be the same length.
func histDiff(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	for i := range cur {
		out[i] = cur[i] - prev[i]
	}
	return out
}

// histCount sums a bucket-count vector.
func histCount(counts []int64) int64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	return n
}
