package scenario

import (
	"context"
	"testing"
	"time"
)

// TestScenarioSuite runs every named scenario at reduced scale — the
// tier-1 regression harness for perf and robustness PRs. A future
// change that loses accepted ops, breaks convergence under churn, or
// floods the apology queue fails here under plain `go test`.
func TestScenarioSuite(t *testing.T) {
	for _, s := range All() {
		t.Run(s.Name, func(t *testing.T) {
			cfg := Config{
				Duration: 1200 * time.Millisecond,
				Keys:     512,
				Seed:     7,
			}
			if s.Name == "zipf-millions" {
				cfg.Keys = 5000 // "millions" at test scale: still heavily skewed
			}
			runAndCheck(t, s, cfg)
		})
	}

	// The acceptance-critical pair also runs against real daemons: TCP
	// gossip, HTTP submits, cross-process apology dedupe.
	for _, name := range []string{"flash-sale", "partition-storm"} {
		t.Run(name+"/net", func(t *testing.T) {
			s, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			runAndCheck(t, s, Config{
				Stack:    StackNet,
				Duration: 1200 * time.Millisecond,
				Keys:     256,
				Replicas: 2,
				Seed:     7,
			})
		})
	}
}

func runAndCheck(t *testing.T, s *Scenario, cfg Config) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := s.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Accepted == 0 {
		t.Fatalf("%s accepted no traffic: %+v", s.Name, res.Report)
	}
	for _, c := range res.Row.Invariants {
		if !c.OK {
			t.Errorf("invariant %s failed: %s", c.Name, c.Detail)
		}
	}
	if !res.Row.Passed {
		t.Fatalf("%s did not pass", s.Name)
	}
}

// Unknown names must fail loudly, listing what exists.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("expected an error for an unknown scenario")
	}
}

// Durability-requiring scenarios must refuse volatile stacks instead of
// silently measuring the wrong thing.
func TestDurabilityGate(t *testing.T) {
	s, err := ByName("rolling-churn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), Config{Stack: StackLive, Duration: 100 * time.Millisecond}); err == nil {
		t.Fatal("rolling-churn on a volatile stack should be rejected")
	}
}
