// Package scenario is the chaos-experiment library: named, seeded runs
// composing the loadgen traffic driver with fault injection — hot-key
// spikes, skewed key spaces, partition storms, slow disks, rolling
// kill/recover churn — against any of the three stacks. Every scenario
// asserts its end-state invariants (convergence, no lost accepted ops,
// apologies bounded and attributed) and emits one machine-readable row
// for BENCH_scenarios.json, so a chaos experiment is a reproducible
// measurement, not an anecdote.
package scenario

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/trace"
)

// Stack names a deployment flavour a scenario can run against.
const (
	StackLive    = "live"    // in-process cluster, volatile, LiveTransport
	StackDurable = "durable" // in-process cluster with disk journals
	StackNet     = "net"     // real daemons on loopback TCP + HTTP SDK
)

// Config sizes one scenario run. Zero values take the scenario's
// full-scale defaults; the test suite passes reduced scale.
type Config struct {
	Stack       string        // "", StackLive, StackDurable, StackNet
	DataDir     string        // durable root; empty = a fresh temp dir
	Duration    time.Duration // traffic window
	Workers     int
	Rate        float64 // offered ops/s; 0 = closed loop
	Keys        int
	Replicas    int
	Shards      int
	IngestBatch int
	FsyncDelay  time.Duration // slow-disk injection (durable stacks)
	Seed        int64
	Out         io.Writer // per-second progress stream (nil = silent)

	// extraOpts and state are populated by a scenario's prepare hook, once
	// per run: extraOpts joins the engine options when an in-process
	// cluster target is built, and state carries the matching per-run
	// handle (the flag that arms an injected fault) into the scenario's
	// run function. Never shared across runs.
	extraOpts []core.Option
	state     any
}

func (c Config) withDefaults(s *Scenario) Config {
	if c.Stack == "" {
		c.Stack = s.Stack
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Keys <= 0 {
		c.Keys = s.Keys
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FsyncDelay == 0 {
		c.FsyncDelay = s.FsyncDelay
	}
	return c
}

// Scenario is one named chaos experiment.
type Scenario struct {
	Name  string
	Desc  string
	Stack string // default stack
	Keys  int    // default key-space size
	// FsyncDelay is the default slow-disk injection (0 = none).
	FsyncDelay time.Duration
	// NeedsDurability rejects volatile stacks (kill/recover, slow disk).
	NeedsDurability bool
	// prepare, when set, runs once per Run — after defaults, before the
	// target is built — so a scenario can thread per-run fault machinery
	// (an injected filesystem plus the flag that arms it) into the
	// cluster options and hand its run function the other end.
	prepare func(c *Config)
	// run drives the experiment against a built target and returns the
	// driver report plus the scenario's invariant checks.
	run func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error)
}

// Result is one completed scenario run: the measured row (including the
// invariant verdicts) ready for BENCH_scenarios.json.
type Result struct {
	Row    loadgen.Row
	Report *loadgen.Report
}

// Failed lists the invariant checks that did not hold.
func (r *Result) Failed() []loadgen.Check {
	var out []loadgen.Check
	for _, c := range r.Row.Invariants {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// All returns every registered scenario, name-sorted.
func All() []*Scenario {
	out := make([]*Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves one scenario.
func ByName(name string) (*Scenario, error) {
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have: %s)", name, names())
}

var registry = map[string]*Scenario{}

func register(s *Scenario) *Scenario {
	registry[s.Name] = s
	return s
}

func names() string {
	all := All()
	out := ""
	for i, s := range all {
		if i > 0 {
			out += ", "
		}
		out += s.Name
	}
	return out
}

// Run executes the scenario at the configured scale: build the target,
// drive traffic and faults, heal, converge, check invariants, and fold
// everything into one Row.
func (s *Scenario) Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(s)
	if s.NeedsDurability && cfg.Stack != StackDurable {
		return nil, fmt.Errorf("scenario: %s needs a durable stack (got %q)", s.Name, cfg.Stack)
	}
	if s.prepare != nil {
		s.prepare(&cfg)
	}
	cleanupDir := ""
	if (cfg.Stack == StackDurable || s.NeedsDurability) && cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "quicksand-"+s.Name+"-*")
		if err != nil {
			return nil, err
		}
		cfg.DataDir = dir
		cleanupDir = dir
	}
	tgt, err := buildTarget(cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		tgt.Close()
		if cleanupDir != "" {
			os.RemoveAll(cleanupDir)
		}
	}()

	// Phase markers ride the same trace stream as the op lifecycles, so
	// a dashboard (or /v1/trace) shows what the scenario was doing when
	// a lag spike or apology landed.
	tgt.Annotate(fmt.Sprintf("scenario %s: start (stack=%s seed=%d)", s.Name, cfg.Stack, cfg.Seed))
	rep, checks, err := s.run(ctx, cfg, tgt)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", s.Name, err)
	}
	tgt.Annotate(fmt.Sprintf("scenario %s: complete", s.Name))

	row := loadgen.FromReport(rep)
	row.Scenario = s.Name
	row.Stack = cfg.Stack
	row.Seed = cfg.Seed
	row.Shards = cfg.Shards
	row.Replicas = cfg.Replicas
	row.IngestBatch = cfg.IngestBatch
	row.Invariants = checks
	row.Passed = true
	for _, c := range checks {
		row.Passed = row.Passed && c.OK
	}
	return &Result{Row: row, Report: rep}, nil
}

// buildTarget realizes the configured stack.
func buildTarget(cfg Config) (loadgen.ChaosTarget, error) {
	switch cfg.Stack {
	case StackNet:
		return loadgen.NewNetTarget(cfg.Replicas, cfg.Shards, cfg.IngestBatch, cfg.DataDir, 10*time.Millisecond)
	case StackLive, StackDurable:
		opts := []core.Option{
			core.WithReplicas(cfg.Replicas),
			core.WithGossipEvery(5 * time.Millisecond),
			// Scenario clusters always trace (1-in-64): phase markers and
			// lifecycle lags are the whole point of a chaos run's story.
			core.WithTracer(trace.New(trace.Options{Replicas: cfg.Replicas})),
		}
		if cfg.Shards > 1 {
			opts = append(opts, core.WithShards(cfg.Shards))
		}
		if cfg.IngestBatch > 0 {
			opts = append(opts, core.WithIngestBatch(cfg.IngestBatch))
		}
		if cfg.Stack == StackDurable {
			opts = append(opts, core.WithDurability(cfg.DataDir))
			if cfg.FsyncDelay > 0 {
				opts = append(opts, core.WithFsyncDelay(cfg.FsyncDelay))
			}
		}
		opts = append(opts, cfg.extraOpts...)
		return loadgen.NewAccountsCluster(opts...), nil
	default:
		return nil, fmt.Errorf("scenario: unknown stack %q", cfg.Stack)
	}
}

// baseSpec translates the scenario config into a driver spec. Workers
// default to at least one per replica: the chaos stories need every
// entry point under load (concurrent stale guesses are the point of
// flash-sale; a storm that silences an idle replica proves nothing), so
// the scenario default covers all of them even on a small GOMAXPROCS.
func baseSpec(cfg Config) loadgen.Spec {
	workers := cfg.Workers
	if workers <= 0 && cfg.Replicas > runtime.GOMAXPROCS(0) {
		workers = cfg.Replicas
	}
	return loadgen.Spec{
		Workers:  workers,
		Rate:     cfg.Rate,
		Duration: cfg.Duration,
		Keys:     cfg.Keys,
		Seed:     cfg.Seed,
		Out:      cfg.Out,
	}
}

// converge heals everything and drives anti-entropy with a generous
// deadline scaled off the traffic window.
func converge(ctx context.Context, tgt loadgen.Target, window time.Duration) loadgen.Check {
	deadline := 30 * time.Second
	if window > deadline {
		deadline = window
	}
	cctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	if err := tgt.Converge(cctx); err != nil {
		return loadgen.Check{Name: "converged", Detail: err.Error()}
	}
	return loadgen.Check{Name: "converged", OK: true}
}

// checkNoLostOps asserts the durability/availability contract: after
// convergence every replica's recorded-op count covers every accepted
// submission (plus the scenario's seeding ops). An accepted op that a
// replica is missing is lost work — the one thing the paper's system
// must never do. Surplus entries are tolerated only up to the number of
// failed coordinated submits and transport errors, both of which can
// legitimately record an op without reporting acceptance (a sync round
// that partially admitted; a submit whose ack the driver never saw),
// plus whatever extra the scenario's fault model justifies — a hard
// kill can journal an in-flight op and destroy its acknowledgment, so
// kill/recover scenarios pass kills × in-flight-per-kill as extra.
func checkNoLostOps(rep *loadgen.Report, tgt loadgen.Target, seeded, extraSurplus int64) loadgen.Check {
	counts := tgt.OpCounts()
	if counts == nil {
		return loadgen.Check{Name: "no-lost-ops", OK: true, Detail: "op counts unobservable on this stack"}
	}
	expected := rep.Accepted + seeded
	allowedSurplus := rep.SyncDeclined + rep.Errors + extraSurplus
	for i, n := range counts {
		if int64(n) < expected {
			return loadgen.Check{Name: "no-lost-ops",
				Detail: fmt.Sprintf("entry %d holds %d ops, %d accepted: %d lost", i, n, expected, expected-int64(n))}
		}
		if surplus := int64(n) - expected; surplus > allowedSurplus {
			return loadgen.Check{Name: "no-lost-ops",
				Detail: fmt.Sprintf("entry %d holds %d ops, %d accepted: surplus %d exceeds allowance %d", i, n, expected, surplus, allowedSurplus)}
		}
	}
	return loadgen.Check{Name: "no-lost-ops", OK: true,
		Detail: fmt.Sprintf("%d accepted ops present at all %d entries", expected, len(counts))}
}

// checkApologiesAttributed asserts every apology names its rule and the
// key it concerns — an apology nobody can act on is not an apology
// (§5.7: "the apology must identify the work").
func checkApologiesAttributed(tgt loadgen.Target) loadgen.Check {
	for _, a := range tgt.ApologyList() {
		if a.Rule == "" || a.Key == "" {
			return loadgen.Check{Name: "apologies-attributed",
				Detail: fmt.Sprintf("apology %s lacks attribution (rule=%q key=%q)", a.ID, a.Rule, a.Key)}
		}
	}
	return loadgen.Check{Name: "apologies-attributed", OK: true}
}

// checkApologiesBounded asserts the deduped apology count stays at or
// under limit.
func checkApologiesBounded(tgt loadgen.Target, limit int) loadgen.Check {
	n := tgt.Apologies()
	if n > limit {
		return loadgen.Check{Name: "apologies-bounded",
			Detail: fmt.Sprintf("%d apologies, bound %d", n, limit)}
	}
	return loadgen.Check{Name: "apologies-bounded", OK: true,
		Detail: fmt.Sprintf("%d apologies within bound %d", n, limit)}
}

// seedDeposit funds a key through the target before traffic starts (and
// returns how many ops that took, for the no-lost-ops arithmetic).
func seedDeposit(ctx context.Context, tgt loadgen.Target, key string, amount int64) (int64, error) {
	out, err := tgt.Submit(ctx, 0, loadgen.Op{Kind: "deposit", Key: key, Arg: amount})
	if err != nil {
		return 0, fmt.Errorf("seed deposit: %w", err)
	}
	if !out.Accepted {
		return 0, fmt.Errorf("seed deposit declined: %s", out.Reason)
	}
	return 1, nil
}
