package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/loadgen"
	"repro/internal/netx"
	"repro/internal/workload"
)

// FlashSale: a hot-key spike mid-run. Background traffic funds a
// uniform key space; for the middle third of the window every worker
// pivots to withdrawing against one seeded SKU. The paper's §5 story in
// miniature: replicas guess against stale balances, the merge discovers
// the oversell, and the system's whole obligation is one bounded,
// attributed apology — never lost work.
var FlashSale = register(&Scenario{
	Name:  "flash-sale",
	Desc:  "hot-key withdrawal spike against seeded stock mid-run",
	Stack: StackLive,
	Keys:  256,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		hot := spec.HotKeyName()
		seeded, err := seedDeposit(ctx, tgt, hot, 10_000)
		if err != nil {
			return nil, nil, err
		}
		spikeFrom, spikeTo := cfg.Duration/3, 2*cfg.Duration/3
		spec.Gen = func(w int, r *rand.Rand) loadgen.OpGen {
			uniform := workload.UniformKeys(r, spec.KeyPrefix, cfg.Keys)
			return func(r *rand.Rand, elapsed time.Duration) loadgen.Op {
				if elapsed >= spikeFrom && elapsed < spikeTo {
					return loadgen.Op{Kind: "withdraw", Key: hot, Arg: 1 + r.Int63n(120)}
				}
				return loadgen.Op{Kind: "deposit", Key: uniform(), Arg: 1 + r.Int63n(100)}
			}
		}
		// Mark the spike window on the trace stream as it happens, from a
		// timer rather than the (concurrent, per-worker) generator.
		spikeCtx, stopSpikeMarks := context.WithCancel(ctx)
		go func() {
			if !sleepCtx(spikeCtx, spikeFrom) {
				return
			}
			tgt.Annotate(fmt.Sprintf("flash-sale: spike start on %s", hot))
			if !sleepCtx(spikeCtx, spikeTo-spikeFrom) {
				return
			}
			tgt.Annotate("flash-sale: spike over")
		}()
		rep, err := loadgen.Run(ctx, tgt, spec)
		stopSpikeMarks()
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, seeded, 0),
			// The spike must exhaust the stock: a flash sale where nothing
			// sells out measured nothing.
			{Name: "stock-exhausted", OK: rep.Declined > 0,
				Detail: fmt.Sprintf("%d declines", rep.Declined)},
			// Content-derived apology IDs collapse the oversell to at most
			// one apology, and only the hot SKU can be oversold here.
			checkApologiesBounded(tgt, 1),
			checkHotKeyOnly(tgt, hot),
		}
		return rep, checks, nil
	},
})

// checkHotKeyOnly asserts every apology concerns the flash-sale SKU.
func checkHotKeyOnly(tgt loadgen.Target, hot string) loadgen.Check {
	for _, a := range tgt.ApologyList() {
		if a.Key != hot {
			return loadgen.Check{Name: "apologies-hot-key-only",
				Detail: fmt.Sprintf("apology for %q, expected only %q", a.Key, hot)}
		}
	}
	return loadgen.Check{Name: "apologies-hot-key-only", OK: true}
}

// ZipfMillions: a large, heavily skewed key space — the
// millions-of-users shape. 80/20 deposit/withdraw under Zipf(1.1), so
// the head keys churn constantly while the long tail trickles.
var ZipfMillions = register(&Scenario{
	Name:  "zipf-millions",
	Desc:  "large Zipf-skewed key space, 80/20 deposit/withdraw mix",
	Stack: StackLive,
	Keys:  1_000_000,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		spec.Dist = loadgen.Zipf
		spec.ZipfSkew = 1.1
		rep, err := loadgen.Run(ctx, tgt, spec)
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
			// One apology per overdrawn key at most (content-ID dedupe);
			// the key space itself is the only upper bound worth asserting.
			checkApologiesBounded(tgt, cfg.Keys),
		}
		return rep, checks, nil
	},
})

// PartitionStorm: replicas drop out of gossip and return, one after
// another, while ingest continues on whoever is reachable. Traffic is
// async-only, so the accounting invariant is strict: once the storm
// passes and anti-entropy heals, every accepted op is at every replica.
var PartitionStorm = register(&Scenario{
	Name:  "partition-storm",
	Desc:  "rotating replica silences mid-ingest, strict accounting after heal",
	Stack: StackLive,
	Keys:  256,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		spec.SyncFrac = 0
		stormCtx, stopStorm := context.WithCancel(ctx)
		var wg sync.WaitGroup
		if cfg.Replicas > 1 {
			cycle := cfg.Duration / 6
			if cycle < 20*time.Millisecond {
				cycle = 20 * time.Millisecond
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					entry := i % cfg.Replicas
					tgt.Silence(entry, true)
					tgt.Annotate(fmt.Sprintf("partition opened: r%d silenced", entry))
					if !sleepCtx(stormCtx, cycle/2) {
						tgt.Silence(entry, false)
						tgt.Annotate(fmt.Sprintf("partition healed: r%d", entry))
						return
					}
					tgt.Silence(entry, false)
					tgt.Annotate(fmt.Sprintf("partition healed: r%d", entry))
					if !sleepCtx(stormCtx, cycle/2) {
						return
					}
				}
			}()
		}
		rep, err := loadgen.Run(ctx, tgt, spec)
		stopStorm()
		wg.Wait()
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
		}
		return rep, checks, nil
	},
})

// SlowDisk: every journal fsync takes an extra beat. Group commit is
// supposed to absorb exactly this — more commits board each (slower)
// bus — so throughput degrades gracefully and nothing else changes.
// The differential test in the loadgen suite pins the stronger claim
// (outcomes identical to an undelayed run); here the invariant is the
// operational one: durable, converged, nothing lost.
var SlowDisk = register(&Scenario{
	Name:            "slow-disk",
	Desc:            "injected fsync latency on every journal flush",
	Stack:           StackDurable,
	Keys:            256,
	FsyncDelay:      DefaultSlowDiskDelay,
	NeedsDurability: true,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		rep, err := loadgen.Run(ctx, tgt, spec)
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
		}
		if ct, ok := tgt.(*loadgen.ClusterTarget); ok {
			st := ct.C.DurabilityStats()
			checks = append(checks, loadgen.Check{Name: "disk-was-exercised",
				OK: st.Fsyncs > 0 && st.Appended > 0,
				Detail: fmt.Sprintf("%d fsyncs, %d entries journaled, %d delta snapshots, %d segments recycled, max stall %v",
					st.Fsyncs, st.Appended, st.DeltaSnapshots, st.Recycled, time.Duration(st.MaxStallNs))})
		}
		return rep, checks, nil
	},
})

// DefaultSlowDiskDelay is the fsync latency injected when the config
// does not choose one.
const DefaultSlowDiskDelay = 2 * time.Millisecond

// RollingChurn: kill and recover each replica in sequence while traffic
// continues — a rolling restart with no drain step. Because "accepted"
// means "fsynced" on a durable cluster, the strict no-lost-ops check
// must hold even though every replica spends part of the run dead.
var RollingChurn = register(&Scenario{
	Name:            "rolling-churn",
	Desc:            "kill/recover each replica in sequence under load",
	Stack:           StackDurable,
	Keys:            256,
	NeedsDurability: true,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		spec.SyncFrac = 0
		churnCtx, stopChurn := context.WithCancel(ctx)
		var wg sync.WaitGroup
		var kills atomic.Int64
		churnErr := make(chan error, 1)
		if cfg.Replicas > 1 {
			slice := cfg.Duration / time.Duration(cfg.Replicas+1)
			if slice < 50*time.Millisecond {
				slice = 50 * time.Millisecond
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for entry := 0; entry < cfg.Replicas; entry++ {
					if !sleepCtx(churnCtx, slice/2) {
						return
					}
					tgt.Kill(entry)
					kills.Add(1)
					tgt.Annotate(fmt.Sprintf("churn: r%d killed", entry))
					sleepCtx(churnCtx, slice/2)
					// Recover even when the run is over: the invariants need
					// every replica back to compare. Use the parent ctx — the
					// churn ctx is already cancelled on the late path.
					if err := tgt.Recover(ctx, entry); err != nil {
						select {
						case churnErr <- fmt.Errorf("recover entry %d: %w", entry, err):
						default:
						}
						return
					}
					tgt.Annotate(fmt.Sprintf("churn: r%d recovered", entry))
				}
			}()
		}
		rep, err := loadgen.Run(ctx, tgt, spec)
		stopChurn()
		wg.Wait()
		if err != nil {
			return nil, nil, err
		}
		select {
		case err := <-churnErr:
			return nil, nil, err
		default:
		}
		// Each hard kill can journal the ops in flight at that instant
		// (at most one request per worker) and then destroy their
		// acknowledgments — durable-but-unacknowledged surplus, the
		// at-least-once face of "accepted means fsynced". Never loss.
		inFlightPerKill := int64(rep.Workers) * int64(rep.Batch)
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, kills.Load()*inFlightPerKill),
			checkApologiesAttributed(tgt),
		}
		return rep, checks, nil
	},
})

// DiskFull: one replica's disk fills mid-run and empties again. The old
// engine treated any store failure as fatal; the invariant here is the
// graceful-degradation contract — the replica drops to read-only and
// declines with the typed retryable reason (never a crash, never a
// hang), heals itself once space returns, and after convergence not one
// accepted op is missing anywhere.
var DiskFull = register(&Scenario{
	Name:            "disk-full",
	Desc:            "one replica's disk fills mid-run: degrade read-only, shed retryably, self-heal, lose nothing",
	Stack:           StackDurable,
	Keys:            256,
	NeedsDurability: true,
	prepare: func(c *Config) {
		full := new(atomic.Bool)
		c.state = full
		c.extraOpts = []core.Option{core.WithStoreFS(enospcFS("r1", full))}
	},
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		full := cfg.state.(*atomic.Bool)
		ct, ok := tgt.(*loadgen.ClusterTarget)
		if !ok {
			return nil, nil, fmt.Errorf("disk-full runs on the in-process durable stack")
		}
		anyDegraded := func() bool { return len(ct.C.DegradedShards()) > 0 }

		// Middle third of the window: r1's disk is full. The probe submit
		// below pins the shape of the decline while it is.
		third := cfg.Duration / 3
		var probe loadgen.Outcome
		var probed, sawDegraded atomic.Bool
		faultCtx, stopFault := context.WithCancel(ctx)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer full.Store(false)
			if !sleepCtx(faultCtx, third) {
				return
			}
			full.Store(true)
			tgt.Annotate("disk-full: r1's disk is out of space")
			for elapsed := time.Duration(0); elapsed < third; elapsed += 5 * time.Millisecond {
				if anyDegraded() {
					sawDegraded.Store(true)
					if !probed.Load() {
						if out, err := tgt.Submit(ctx, 1, loadgen.Op{Kind: "deposit", Key: "probe", Arg: 1}); err == nil {
							probe = out
							probed.Store(true)
						}
					}
				}
				if !sleepCtx(faultCtx, 5*time.Millisecond) {
					return
				}
			}
			tgt.Annotate("disk-full: space freed")
		}()
		rep, err := loadgen.Run(ctx, tgt, baseSpec(cfg))
		stopFault()
		wg.Wait()
		if err != nil {
			return nil, nil, err
		}

		// The degraded replica re-probes its store on its own; give it a
		// deadline to rejoin before demanding convergence.
		healed := loadgen.Check{Name: "self-healed", Detail: "replica never rejoined after space returned"}
		for deadline := time.Now().Add(20 * time.Second); ; {
			if !anyDegraded() {
				healed = loadgen.Check{Name: "self-healed", OK: true,
					Detail: "degraded replica rejoined without operator action"}
				break
			}
			if time.Now().After(deadline) || ctx.Err() != nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}

		// Every op absorbed between the disk filling and its commit
		// failing was declined retryably to its submitter — but it may
		// already have been gossiped to healthy peers, so after heal it is
		// recorded everywhere without ever being acknowledged. Declined-
		// but-recorded surplus, bounded by the retryable declines; loss is
		// never tolerated.
		degradations := ct.C.M.Degraded.Value()
		checks := []loadgen.Check{
			{Name: "degraded-entered", OK: sawDegraded.Load() && degradations >= 1,
				Detail: fmt.Sprintf("%d degradation(s) recorded", degradations)},
			{Name: "declines-retryable",
				OK: probed.Load() && !probe.Accepted && probe.Retryable && probe.Reason == core.ReasonDegraded,
				Detail: fmt.Sprintf("probe while degraded: accepted=%v retryable=%v reason=%q",
					probe.Accepted, probe.Retryable, probe.Reason)},
			healed,
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, rep.RetryableDeclined),
			checkApologiesAttributed(tgt),
		}
		return rep, checks, nil
	},
})

// enospcFS fails every write under replica rep's store directory with
// ENOSPC while full is set — one replica's disk filling up while its
// peers stay healthy.
func enospcFS(rep string, full *atomic.Bool) faultfs.FS {
	marker := string(os.PathSeparator) + rep + string(os.PathSeparator)
	return faultfs.New(faultfs.OS, 1, func(op faultfs.Op) faultfs.Decision {
		if full.Load() && strings.Contains(op.Path, marker) {
			switch op.Kind {
			case faultfs.OpWrite, faultfs.OpWriteAt, faultfs.OpCreate, faultfs.OpSync:
				return faultfs.Decision{Err: syscall.ENOSPC}
			}
		}
		return faultfs.Decision{}
	})
}

// FrameMangler: every peer link corrupts in-flight frames — drops,
// duplicates, reorders, bit flips — for the whole traffic window, seeded
// so a failure replays. The invariants are the wire-hardening contract:
// corruption is detected (checksums reject, links degrade to
// down-with-backoff) rather than folded into state, nothing panics, and
// once the links are cleaned anti-entropy converges with no accepted op
// missing.
var FrameMangler = register(&Scenario{
	Name:  "frame-mangler",
	Desc:  "seeded frame corruption on every peer link under load, convergence after cleanup",
	Stack: StackNet,
	Keys:  256,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		nt, ok := tgt.(*loadgen.NetTarget)
		if !ok {
			return nil, nil, fmt.Errorf("frame-mangler needs the net stack (the daemons own the peer links)")
		}
		transports := make([]*netx.Transport, tgt.Entries())
		for i := range transports {
			d := nt.Daemon(i)
			if d == nil {
				return nil, nil, fmt.Errorf("frame-mangler needs target-owned daemons to reach their transports")
			}
			transports[i] = d.PeerTransport()
		}
		for i, tr := range transports {
			tr.SetFaults(netx.Faults{
				Seed:      cfg.Seed + int64(i),
				Drop:      0.10,
				Duplicate: 0.05,
				Reorder:   0.05,
				BitFlip:   0.15,
			})
		}
		tgt.Annotate("frame-mangler: corrupting every peer link")
		spec := baseSpec(cfg)
		spec.SyncFrac = 0.15 // coordination rounds must cross the mangled links too
		rep, runErr := loadgen.Run(ctx, tgt, spec)
		// Clean the links before any verdict: convergence is owed after
		// the corruption stops, not during it.
		for _, tr := range transports {
			tr.SetFaults(netx.Faults{})
		}
		tgt.Annotate("frame-mangler: links cleaned")
		if runErr != nil {
			return nil, nil, runErr
		}
		var mangled, corrupt, reconnects int64
		for _, tr := range transports {
			corrupt += tr.CorruptFrames()
			for _, ps := range tr.PeerStats() {
				mangled += ps.FramesMangled
				reconnects += ps.Reconnects
			}
		}
		checks := []loadgen.Check{
			{Name: "corruption-observed", OK: mangled > 0 && corrupt > 0,
				Detail: fmt.Sprintf("%d frames mangled, %d rejected by checksum, %d link reconnects",
					mangled, corrupt, reconnects)},
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
		}
		return rep, checks, nil
	},
})

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
