package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadgen"
	"repro/internal/workload"
)

// FlashSale: a hot-key spike mid-run. Background traffic funds a
// uniform key space; for the middle third of the window every worker
// pivots to withdrawing against one seeded SKU. The paper's §5 story in
// miniature: replicas guess against stale balances, the merge discovers
// the oversell, and the system's whole obligation is one bounded,
// attributed apology — never lost work.
var FlashSale = register(&Scenario{
	Name:  "flash-sale",
	Desc:  "hot-key withdrawal spike against seeded stock mid-run",
	Stack: StackLive,
	Keys:  256,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		hot := spec.HotKeyName()
		seeded, err := seedDeposit(ctx, tgt, hot, 10_000)
		if err != nil {
			return nil, nil, err
		}
		spikeFrom, spikeTo := cfg.Duration/3, 2*cfg.Duration/3
		spec.Gen = func(w int, r *rand.Rand) loadgen.OpGen {
			uniform := workload.UniformKeys(r, spec.KeyPrefix, cfg.Keys)
			return func(r *rand.Rand, elapsed time.Duration) loadgen.Op {
				if elapsed >= spikeFrom && elapsed < spikeTo {
					return loadgen.Op{Kind: "withdraw", Key: hot, Arg: 1 + r.Int63n(120)}
				}
				return loadgen.Op{Kind: "deposit", Key: uniform(), Arg: 1 + r.Int63n(100)}
			}
		}
		// Mark the spike window on the trace stream as it happens, from a
		// timer rather than the (concurrent, per-worker) generator.
		spikeCtx, stopSpikeMarks := context.WithCancel(ctx)
		go func() {
			if !sleepCtx(spikeCtx, spikeFrom) {
				return
			}
			tgt.Annotate(fmt.Sprintf("flash-sale: spike start on %s", hot))
			if !sleepCtx(spikeCtx, spikeTo-spikeFrom) {
				return
			}
			tgt.Annotate("flash-sale: spike over")
		}()
		rep, err := loadgen.Run(ctx, tgt, spec)
		stopSpikeMarks()
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, seeded, 0),
			// The spike must exhaust the stock: a flash sale where nothing
			// sells out measured nothing.
			{Name: "stock-exhausted", OK: rep.Declined > 0,
				Detail: fmt.Sprintf("%d declines", rep.Declined)},
			// Content-derived apology IDs collapse the oversell to at most
			// one apology, and only the hot SKU can be oversold here.
			checkApologiesBounded(tgt, 1),
			checkHotKeyOnly(tgt, hot),
		}
		return rep, checks, nil
	},
})

// checkHotKeyOnly asserts every apology concerns the flash-sale SKU.
func checkHotKeyOnly(tgt loadgen.Target, hot string) loadgen.Check {
	for _, a := range tgt.ApologyList() {
		if a.Key != hot {
			return loadgen.Check{Name: "apologies-hot-key-only",
				Detail: fmt.Sprintf("apology for %q, expected only %q", a.Key, hot)}
		}
	}
	return loadgen.Check{Name: "apologies-hot-key-only", OK: true}
}

// ZipfMillions: a large, heavily skewed key space — the
// millions-of-users shape. 80/20 deposit/withdraw under Zipf(1.1), so
// the head keys churn constantly while the long tail trickles.
var ZipfMillions = register(&Scenario{
	Name:  "zipf-millions",
	Desc:  "large Zipf-skewed key space, 80/20 deposit/withdraw mix",
	Stack: StackLive,
	Keys:  1_000_000,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		spec.Dist = loadgen.Zipf
		spec.ZipfSkew = 1.1
		rep, err := loadgen.Run(ctx, tgt, spec)
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
			// One apology per overdrawn key at most (content-ID dedupe);
			// the key space itself is the only upper bound worth asserting.
			checkApologiesBounded(tgt, cfg.Keys),
		}
		return rep, checks, nil
	},
})

// PartitionStorm: replicas drop out of gossip and return, one after
// another, while ingest continues on whoever is reachable. Traffic is
// async-only, so the accounting invariant is strict: once the storm
// passes and anti-entropy heals, every accepted op is at every replica.
var PartitionStorm = register(&Scenario{
	Name:  "partition-storm",
	Desc:  "rotating replica silences mid-ingest, strict accounting after heal",
	Stack: StackLive,
	Keys:  256,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		spec.SyncFrac = 0
		stormCtx, stopStorm := context.WithCancel(ctx)
		var wg sync.WaitGroup
		if cfg.Replicas > 1 {
			cycle := cfg.Duration / 6
			if cycle < 20*time.Millisecond {
				cycle = 20 * time.Millisecond
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					entry := i % cfg.Replicas
					tgt.Silence(entry, true)
					tgt.Annotate(fmt.Sprintf("partition opened: r%d silenced", entry))
					if !sleepCtx(stormCtx, cycle/2) {
						tgt.Silence(entry, false)
						tgt.Annotate(fmt.Sprintf("partition healed: r%d", entry))
						return
					}
					tgt.Silence(entry, false)
					tgt.Annotate(fmt.Sprintf("partition healed: r%d", entry))
					if !sleepCtx(stormCtx, cycle/2) {
						return
					}
				}
			}()
		}
		rep, err := loadgen.Run(ctx, tgt, spec)
		stopStorm()
		wg.Wait()
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
		}
		return rep, checks, nil
	},
})

// SlowDisk: every journal fsync takes an extra beat. Group commit is
// supposed to absorb exactly this — more commits board each (slower)
// bus — so throughput degrades gracefully and nothing else changes.
// The differential test in the loadgen suite pins the stronger claim
// (outcomes identical to an undelayed run); here the invariant is the
// operational one: durable, converged, nothing lost.
var SlowDisk = register(&Scenario{
	Name:            "slow-disk",
	Desc:            "injected fsync latency on every journal flush",
	Stack:           StackDurable,
	Keys:            256,
	FsyncDelay:      DefaultSlowDiskDelay,
	NeedsDurability: true,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		rep, err := loadgen.Run(ctx, tgt, spec)
		if err != nil {
			return nil, nil, err
		}
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, 0),
			checkApologiesAttributed(tgt),
		}
		if ct, ok := tgt.(*loadgen.ClusterTarget); ok {
			st := ct.C.DurabilityStats()
			checks = append(checks, loadgen.Check{Name: "disk-was-exercised",
				OK: st.Fsyncs > 0 && st.Appended > 0,
				Detail: fmt.Sprintf("%d fsyncs, %d entries journaled, %d delta snapshots, %d segments recycled, max stall %v",
					st.Fsyncs, st.Appended, st.DeltaSnapshots, st.Recycled, time.Duration(st.MaxStallNs))})
		}
		return rep, checks, nil
	},
})

// DefaultSlowDiskDelay is the fsync latency injected when the config
// does not choose one.
const DefaultSlowDiskDelay = 2 * time.Millisecond

// RollingChurn: kill and recover each replica in sequence while traffic
// continues — a rolling restart with no drain step. Because "accepted"
// means "fsynced" on a durable cluster, the strict no-lost-ops check
// must hold even though every replica spends part of the run dead.
var RollingChurn = register(&Scenario{
	Name:            "rolling-churn",
	Desc:            "kill/recover each replica in sequence under load",
	Stack:           StackDurable,
	Keys:            256,
	NeedsDurability: true,
	run: func(ctx context.Context, cfg Config, tgt loadgen.ChaosTarget) (*loadgen.Report, []loadgen.Check, error) {
		spec := baseSpec(cfg)
		spec.SyncFrac = 0
		churnCtx, stopChurn := context.WithCancel(ctx)
		var wg sync.WaitGroup
		var kills atomic.Int64
		churnErr := make(chan error, 1)
		if cfg.Replicas > 1 {
			slice := cfg.Duration / time.Duration(cfg.Replicas+1)
			if slice < 50*time.Millisecond {
				slice = 50 * time.Millisecond
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for entry := 0; entry < cfg.Replicas; entry++ {
					if !sleepCtx(churnCtx, slice/2) {
						return
					}
					tgt.Kill(entry)
					kills.Add(1)
					tgt.Annotate(fmt.Sprintf("churn: r%d killed", entry))
					sleepCtx(churnCtx, slice/2)
					// Recover even when the run is over: the invariants need
					// every replica back to compare. Use the parent ctx — the
					// churn ctx is already cancelled on the late path.
					if err := tgt.Recover(ctx, entry); err != nil {
						select {
						case churnErr <- fmt.Errorf("recover entry %d: %w", entry, err):
						default:
						}
						return
					}
					tgt.Annotate(fmt.Sprintf("churn: r%d recovered", entry))
				}
			}()
		}
		rep, err := loadgen.Run(ctx, tgt, spec)
		stopChurn()
		wg.Wait()
		if err != nil {
			return nil, nil, err
		}
		select {
		case err := <-churnErr:
			return nil, nil, err
		default:
		}
		// Each hard kill can journal the ops in flight at that instant
		// (at most one request per worker) and then destroy their
		// acknowledgments — durable-but-unacknowledged surplus, the
		// at-least-once face of "accepted means fsynced". Never loss.
		inFlightPerKill := int64(rep.Workers) * int64(rep.Batch)
		checks := []loadgen.Check{
			converge(ctx, tgt, cfg.Duration),
			checkNoLostOps(rep, tgt, 0, kills.Load()*inFlightPerKill),
			checkApologiesAttributed(tgt),
		}
		return rep, checks, nil
	},
})

// sleepCtx sleeps for d unless ctx ends first; it reports whether the
// full duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
