//go:build !linux

package daemon

import "fmt"

// diskFree is unsupported off Linux; the doctor reports the probe as
// advisory rather than failing preflight on a capability gap.
func diskFree(dir string) (free, total uint64, err error) {
	return 0, 0, fmt.Errorf("free-space probe not supported on this platform")
}
