package daemon

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ParseServeFlags parses the daemon flag set shared by quicksandd and
// `quicksand serve`: a -config file first, then flags of the same
// meaning overriding individual keys.
func ParseServeFlags(args []string) (Config, error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "YAML config file (flat key: value; flags override)")
		node       = fs.Int("node", 0, "replica index this daemon hosts")
		replicas   = fs.Int("replicas", 2, "cluster-wide replica count per shard")
		shards     = fs.Int("shards", 1, "shard count partitioning the key space")
		httpAddr   = fs.String("http", "127.0.0.1:8080", "client-facing HTTP listen address")
		peerListen = fs.String("peer-listen", "127.0.0.1:7000", "replica-traffic TCP listen address")
		peers      = fs.String("peers", "", "peer addresses as index=host:port,... (own index ignored)")
		peerToken  = fs.String("peer-token", "", "shared secret authenticating replica connections")
		apiToken   = fs.String("api-token", "", "bearer token required on /v1 endpoints")
		dataDir    = fs.String("data", "", "durable store directory (empty = memory only)")
		gossip     = fs.Duration("gossip-every", 50*time.Millisecond, "anti-entropy interval")
		fsyncEvery = fs.Duration("fsync-every", 0, "journal group-commit interval (0 = immediate coalescing)")
		callTO     = fs.Duration("call-timeout", 500*time.Millisecond, "replica-to-replica call timeout")
		batch      = fs.Int("ingest-batch", 0, "max ops per ingest batch (0 = engine default)")
		traceN     = fs.Int("trace-sample", 0, "trace 1-in-N op lifecycles (0 = default 64, negative = off)")
		debugAddr  = fs.String("debug-addr", "", "serve net/http/pprof on this private address (empty = off)")
		shed       = fs.Float64("shed-backlog", 0, "ingest-ring occupancy fraction above which submits get 429 (0 = default 0.9)")
		minFree    = fs.String("min-free-disk", "", "free-space floor on the data dir for doctor, e.g. 256M (empty = default 256M)")
	)
	if err := fs.Parse(args); err != nil {
		return Config{}, err
	}
	if rest := fs.Args(); len(rest) != 0 {
		return Config{}, fmt.Errorf("unexpected arguments: %v", rest)
	}
	var cfg Config
	if *configPath != "" {
		var err error
		if cfg, err = ParseConfigFile(*configPath); err != nil {
			return Config{}, err
		}
	}
	// Only flags the user actually set override the file.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["node"] || *configPath == "" {
		cfg.Node = *node
	}
	if set["replicas"] || (*configPath == "" && cfg.Replicas == 0) {
		cfg.Replicas = *replicas
	}
	if set["shards"] || (*configPath == "" && cfg.Shards == 0) {
		cfg.Shards = *shards
	}
	if set["http"] || cfg.HTTPListen == "" {
		cfg.HTTPListen = *httpAddr
	}
	if set["peer-listen"] || cfg.PeerListen == "" {
		cfg.PeerListen = *peerListen
	}
	if set["peers"] {
		p, err := parsePeers(*peers)
		if err != nil {
			return Config{}, err
		}
		cfg.Peers = p
	}
	if set["peer-token"] {
		cfg.PeerToken = *peerToken
	}
	if set["api-token"] {
		cfg.APIToken = *apiToken
	}
	if set["data"] {
		cfg.DataDir = *dataDir
	}
	if set["gossip-every"] || cfg.GossipEvery == 0 {
		cfg.GossipEvery = *gossip
	}
	if set["fsync-every"] {
		cfg.FsyncEvery = *fsyncEvery
	}
	if set["call-timeout"] || cfg.CallTimeout == 0 {
		cfg.CallTimeout = *callTO
	}
	if set["ingest-batch"] {
		cfg.IngestBatch = *batch
	}
	if set["trace-sample"] {
		cfg.TraceSample = *traceN
	}
	if set["debug-addr"] {
		cfg.DebugAddr = *debugAddr
	}
	if set["shed-backlog"] {
		cfg.ShedBacklog = *shed
	}
	if set["min-free-disk"] {
		v, err := parseSize(*minFree)
		if err != nil {
			return Config{}, err
		}
		cfg.MinFreeDisk = v
	}
	return cfg, nil
}

// Serve runs one daemon until SIGINT or SIGTERM, then drains. The
// returned error covers startup failures and unclean shutdown (a
// journal flush that could not land).
func Serve(cfg Config, logf func(format string, args ...any)) error {
	cfg.Logf = logf
	d, err := New(cfg)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	if logf != nil {
		logf("quicksandd: caught %v, draining", s)
	}
	return d.Close()
}
