package daemon

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/internal/faultfs"
)

// fullDiskFS fails every write under the given replica's store dir with
// ENOSPC while the flag is set — the daemon-level "this disk is full".
func fullDiskFS(rep string, flag *atomic.Bool) faultfs.FS {
	marker := string(os.PathSeparator) + rep + string(os.PathSeparator)
	return faultfs.New(faultfs.OS, 1, func(op faultfs.Op) faultfs.Decision {
		if flag.Load() && strings.Contains(op.Path, marker) {
			switch op.Kind {
			case faultfs.OpWrite, faultfs.OpWriteAt, faultfs.OpCreate, faultfs.OpSync:
				return faultfs.Decision{Err: syscall.ENOSPC}
			}
		}
		return faultfs.Decision{}
	})
}

// TestDaemonDegradedSurface: when the disk under a daemon fills, the
// whole operator surface must say so — submits shed with 503 +
// Retry-After (not fail-fast, not a hang), /healthz carries the
// per-shard detail, /metrics exports the degraded gauge — and the
// daemon heals itself once space returns.
func TestDaemonDegradedSurface(t *testing.T) {
	var full atomic.Bool
	d := soloDaemon(t, func(c *Config) {
		c.DataDir = t.TempDir()
		c.storeFS = fullDiskFS("r0", &full)
	})
	c := client.New("http://"+d.HTTPAddr(), client.WithRetries(0))
	ctx := context.Background()

	if res, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct", Arg: 100}, false); err != nil || !res.Accepted {
		t.Fatalf("healthy submit: %+v, %v", res, err)
	}

	full.Store(true)
	_, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct", Arg: 100}, false)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.Code != "degraded" {
		t.Fatalf("submit on a full disk: err = %v, want 503 degraded", err)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("503 without a Retry-After hint: %+v", ae)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.OK || len(h.Degraded) == 0 || !strings.Contains(h.Degraded[0], "r0") {
		t.Fatalf("healthz while degraded = %+v, want OK=false with r0 detail", h)
	}

	resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`quicksand_shard_degraded{shard="0"} 1`,
		"quicksand_degraded_total 1",
		"quicksand_ingest_capacity",
		"quicksand_corrupt_frames_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Reads still answer while the shard is read-only.
	if st, err := c.State(ctx); err != nil || st.Keys["acct"] < 100 {
		t.Fatalf("degraded read: %+v, %v", st, err)
	}

	// Space returns; the replica re-probes and rejoins on its own, and
	// the surface flips back.
	full.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct", Arg: 1}, false)
		if err == nil && res.Accepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never healed: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if h, err := c.Health(ctx); err != nil || !h.OK || len(h.Degraded) != 0 {
		t.Fatalf("healthz after heal = %+v, %v", h, err)
	}
}

// TestParseSize covers the config size parser the free-disk floor uses.
func TestParseSize(t *testing.T) {
	for in, want := range map[string]int64{
		"1048576": 1 << 20,
		"256M":    256 << 20,
		"256MB":   256 << 20,
		"1g":      1 << 30,
		"2K":      2 << 10,
		"1T":      1 << 40,
	} {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "fast", "-1", "99999999T"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) succeeded", bad)
		}
	}
}
