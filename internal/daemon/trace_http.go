package daemon

import (
	"net/http"

	"repro/client"
	"repro/internal/trace"
)

// maxRecentEvents bounds the no-op-ID form of /v1/trace.
const maxRecentEvents = 512

func toTraceEvents(in []trace.Event) []client.TraceEvent {
	out := make([]client.TraceEvent, len(in))
	for i, e := range in {
		out[i] = client.TraceEvent{
			Seq:     e.Seq,
			AtNS:    e.AtNs,
			Kind:    e.Kind,
			Op:      e.Op,
			Key:     e.Key,
			Replica: e.Replica,
			Peer:    e.Peer,
			Note:    e.Note,
		}
	}
	return out
}

// handleTrace serves op-lifecycle timelines. With ?op=ID it returns
// that sampled op's full recorded lifecycle (404 when the op was not
// sampled or has been evicted); without, the recent event ring —
// sampled lifecycle steps interleaved with scenario annotations.
func (d *Daemon) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := d.tracer
	if t == nil {
		writeError(w, http.StatusNotFound, "not_found", "tracing is disabled (trace_sample < 0)")
		return
	}
	resp := client.TraceResponse{SampleEvery: t.SampleEvery()}
	if op := r.URL.Query().Get("op"); op != "" {
		events, ok := t.OpTimeline(op)
		if !ok {
			writeError(w, http.StatusNotFound, "not_found", "op not traced: not sampled, or evicted")
			return
		}
		resp.Op = op
		resp.Events = toTraceEvents(events)
	} else {
		resp.Events = toTraceEvents(t.Recent(maxRecentEvents))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAnnotate stamps an operator/scenario marker onto the trace
// stream. Accepted even when tracing is disabled (a silent no-op) so
// load drivers need no capability probe.
func (d *Daemon) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req client.AnnotateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Note == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "note is required")
		return
	}
	d.tracer.Annotate(req.Note) // nil-safe
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
