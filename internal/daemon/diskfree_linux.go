//go:build linux

package daemon

import "syscall"

// diskFree reports the bytes available to this process (Bavail, not
// Bfree: root-reserved blocks don't save a journal) and the filesystem
// size under dir.
func diskFree(dir string) (free, total uint64, err error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return 0, 0, err
	}
	bs := uint64(st.Bsize)
	return st.Bavail * bs, st.Blocks * bs, nil
}
