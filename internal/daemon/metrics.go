package daemon

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// handleMetrics renders the daemon's observability surface in the
// Prometheus text exposition format — hand-rolled (no client library
// dependency). Counters and gauges are one line each; the latency
// families are full histograms: the engine's log-bucketed LatHist
// counts are coarsened onto power-of-two "le" bounds, which align
// exactly with LatHist octave boundaries so no sample is misattributed.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var p promWriter
	m := &d.cluster.M

	p.counter("quicksand_submits_accepted_total", "Operations accepted (guessed or coordinated).", m.Accepted.Value())
	p.counter("quicksand_submits_declined_total", "Operations declined by a local admission guess.", m.Declined.Value())
	p.counter("quicksand_sync_accepted_total", "Coordinated submits accepted by every replica.", m.SyncAccepted.Value())
	p.counter("quicksand_sync_declined_total", "Coordinated submits refused or failed by coordination.", m.SyncDeclined.Value())
	p.counter("quicksand_gossip_rounds_total", "Anti-entropy rounds run.", m.GossipRounds.Value())
	p.counter("quicksand_gossip_ops_total", "Entries moved by gossip.", m.OpsTransferred.Value())
	p.counter("quicksand_fold_steps_total", "App.Step invocations (state derivation cost).", m.FoldSteps.Value())
	p.counter("quicksand_fold_rewinds_total", "Checkpoint rewinds forced by out-of-order merges.", m.FoldRewinds.Value())
	p.counter("quicksand_fold_checkpoints_total", "Periodic fold checkpoints taken.", m.FoldCheckpoints.Value())

	// Per-shard views of the same engine counters: the cluster-wide
	// aggregates above hide load imbalance; these expose it.
	shards := d.cluster.Shards()
	shardMetrics := make([]*core.Metrics, shards)
	for s := 0; s < shards; s++ {
		shardMetrics[s] = d.cluster.ShardMetrics(s)
	}
	perShard := func(name, help string, pick func(*core.Metrics) int64) {
		p.family(name, "counter", help)
		for s := 0; s < shards; s++ {
			p.sample(name, shardLabel(s), float64(pick(shardMetrics[s])))
		}
	}
	perShard("quicksand_shard_submits_accepted_total", "Operations accepted, by shard.",
		func(m *core.Metrics) int64 { return m.Accepted.Value() })
	perShard("quicksand_shard_submits_declined_total", "Operations declined, by shard.",
		func(m *core.Metrics) int64 { return m.Declined.Value() })
	perShard("quicksand_shard_gossip_ops_total", "Entries moved by gossip, by shard.",
		func(m *core.Metrics) int64 { return m.OpsTransferred.Value() })
	perShard("quicksand_shard_fold_steps_total", "App.Step invocations, by shard.",
		func(m *core.Metrics) int64 { return m.FoldSteps.Value() })
	perShard("quicksand_shard_fold_rewinds_total", "Checkpoint rewinds, by shard.",
		func(m *core.Metrics) int64 { return m.FoldRewinds.Value() })

	// Fault posture: which shards are read-only right now, how many
	// degradation events ever, and how loaded the ingest ring is (the
	// 429 load-shedding signal).
	p.counter("quicksand_degraded_total", "Times a replica entered degraded read-only mode (recoverable disk failure).", m.Degraded.Value())
	p.family("quicksand_shard_degraded", "gauge", "1 while any local replica of the shard is degraded (read-only, disk unwritable).")
	for s := 0; s < shards; s++ {
		v := 0.0
		if _, deg := d.cluster.ShardDegraded(s); deg {
			v = 1
		}
		p.sample("quicksand_shard_degraded", shardLabel(s), v)
	}
	depth, capacity := d.cluster.IngestBacklog(d.cfg.Node)
	p.gauge("quicksand_ingest_backlog", "Occupied ingest-ring slots across local shards.", float64(depth))
	p.gauge("quicksand_ingest_capacity", "Total ingest-ring capacity across local shards.", float64(capacity))

	// Legacy p50/p99 summaries, kept for dashboards scripted against the
	// pre-histogram surface.
	p.summary("quicksand_async_submit_seconds", "Latency of async (guess) submits.", &m.AsyncLat)
	p.summary("quicksand_sync_submit_seconds", "Latency of coordinated submits.", &m.SyncLat)

	// Full submit-latency histograms, per shard and path.
	p.family("quicksand_submit_duration_seconds", "histogram", "Submit latency distribution, by shard and path (async = guess, sync = coordinated).")
	for s := 0; s < shards; s++ {
		p.histogram("quicksand_submit_duration_seconds", `path="async",`+shardLabel(s), &shardMetrics[s].AsyncLat)
		p.histogram("quicksand_submit_duration_seconds", `path="sync",`+shardLabel(s), &shardMetrics[s].SyncLat)
	}

	st := d.cluster.DurabilityStats()
	p.counter("quicksand_journal_fsyncs_total", "Journal fsyncs completed (group commit).", st.Fsyncs)
	p.counter("quicksand_journal_appends_total", "Entries staged for the journal.", st.Appended)
	p.counter("quicksand_snapshots_total", "Durable snapshots written (full and delta).", st.Snapshots)
	p.counter("quicksand_snapshot_failures_total", "Snapshot attempts that could not reach disk.", st.SnapshotFailures)
	p.counter("quicksand_delta_snapshots_total", "Incremental (delta) snapshot cuts written.", st.DeltaSnapshots)
	p.counter("quicksand_segments_recycled_total", "Journal segments reborn from the free pool.", st.Recycled)
	p.counter("quicksand_torn_bytes_total", "Bytes truncated from torn journal tails at recovery.", st.TornBytes)
	p.gauge("quicksand_journal_max_stall_seconds", "Worst single journal flush (write+fsync) since start.",
		time.Duration(st.MaxStallNs).Seconds())

	// Disk-latency distributions, per shard: what one fsync costs, and
	// what one snapshot cut costs.
	fsyncByShard := make([]*stats.LatHist, shards)
	snapByShard := make([]*stats.LatHist, shards)
	for s := 0; s < shards; s++ {
		fsyncByShard[s], snapByShard[s] = d.cluster.ShardDurabilityHists(s)
	}
	p.family("quicksand_fsync_duration_seconds", "histogram", "Journal fsync duration, by shard.")
	for s := 0; s < shards; s++ {
		p.histogram("quicksand_fsync_duration_seconds", shardLabel(s), fsyncByShard[s])
	}
	p.family("quicksand_snapshot_cut_duration_seconds", "histogram", "Snapshot cut duration (full and delta), by shard.")
	for s := 0; s < shards; s++ {
		p.histogram("quicksand_snapshot_cut_duration_seconds", shardLabel(s), snapByShard[s])
	}

	// Op-lifecycle lags derived by the tracer (absent when tracing is
	// off). These are the paper's headline operator numbers: how long a
	// guess stays volatile, how long until it is globally known, and how
	// long a wrong guess lived before its apology.
	if tr := d.cluster.Tracer(); tr != nil {
		durable, truth, apology, gossip := tr.LagHists()
		p.family("quicksand_guess_to_durable_seconds", "histogram", "Sampled lag from submit to covering journal fsync.")
		p.histogram("quicksand_guess_to_durable_seconds", "", durable)
		p.family("quicksand_guess_to_truth_seconds", "histogram", "Sampled lag from submit until every replica holds the op.")
		p.histogram("quicksand_guess_to_truth_seconds", "", truth)
		p.family("quicksand_guess_to_apology_seconds", "histogram", "Sampled lifetime of a guess until a rule violation apologized for it.")
		p.histogram("quicksand_guess_to_apology_seconds", "", apology)
		p.family("quicksand_gossip_propagation_seconds", "histogram", "Sampled lag from submit to each peer's gossip ack.")
		p.histogram("quicksand_gossip_propagation_seconds", "", gossip)
		p.gauge("quicksand_trace_sample_every", "Tracing rate: 1-in-N ops by ID hash (0 = tracing off).", float64(tr.SampleEvery()))
	} else {
		p.gauge("quicksand_trace_sample_every", "Tracing rate: 1-in-N ops by ID hash (0 = tracing off).", 0)
	}

	// Peer link health, from the TCP transport.
	peers := d.tr.PeerStats()
	p.family("quicksand_peer_up", "gauge", "1 when the peer link is connected, 0 while down or redialing.")
	for _, ps := range peers {
		v := 0.0
		if ps.Up {
			v = 1
		}
		p.sample("quicksand_peer_up", peerLabel(ps.Addr), v)
	}
	p.family("quicksand_peer_frames_sent_total", "counter", "Frames written to the peer link.")
	for _, ps := range peers {
		p.sample("quicksand_peer_frames_sent_total", peerLabel(ps.Addr), float64(ps.FramesSent))
	}
	p.family("quicksand_peer_bytes_sent_total", "counter", "Payload bytes written to the peer link.")
	for _, ps := range peers {
		p.sample("quicksand_peer_bytes_sent_total", peerLabel(ps.Addr), float64(ps.BytesSent))
	}
	p.family("quicksand_peer_frames_dropped_total", "counter", "Frames dropped: queue full, link down, or write failure.")
	for _, ps := range peers {
		p.sample("quicksand_peer_frames_dropped_total", peerLabel(ps.Addr), float64(ps.FramesDropped))
	}
	p.family("quicksand_peer_reconnects_total", "counter", "Successful redials after a link drop.")
	for _, ps := range peers {
		p.sample("quicksand_peer_reconnects_total", peerLabel(ps.Addr), float64(ps.Reconnects))
	}
	p.family("quicksand_peer_frames_mangled_total", "counter", "Outbound frames the fault injector dropped, duplicated, reordered, or bit-flipped (0 unless faults are enabled).")
	for _, ps := range peers {
		p.sample("quicksand_peer_frames_mangled_total", peerLabel(ps.Addr), float64(ps.FramesMangled))
	}
	p.counter("quicksand_corrupt_frames_total", "Inbound frames rejected by the checksum; each one also closed its connection.", d.tr.CorruptFrames())

	q := d.cluster.Apologies
	p.counter("quicksand_apologies_total", "Business-rule violations discovered (deduplicated).", int64(q.Total()))
	p.counter("quicksand_apologies_human_total", "Apologies escalated to humans.", int64(len(q.Human())))

	p.gauge("quicksand_uptime_seconds", "Seconds since the daemon started.", time.Since(d.started).Seconds())
	p.gauge("quicksand_node_index", "Replica index this daemon hosts.", float64(d.cfg.Node))
	p.gauge("quicksand_shards", "Shard count.", float64(shards))

	// Process runtime health.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.gauge("quicksand_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	p.gauge("quicksand_heap_alloc_bytes", "Bytes of live heap objects.", float64(ms.HeapAlloc))
	p.gauge("quicksand_gc_pause_total_seconds", "Cumulative stop-the-world GC pause.", float64(ms.PauseTotalNs)/1e9)
	p.gauge("quicksand_gomaxprocs", "GOMAXPROCS.", float64(runtime.GOMAXPROCS(0)))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(p.b.String()))
}

func shardLabel(s int) string { return `shard="` + strconv.Itoa(s) + `"` }

func peerLabel(addr string) string { return `peer="` + addr + `"` }

// promWriter accumulates Prometheus text-format output. family emits
// the one HELP/TYPE header a metric may carry; sample/histogram emit
// the series lines under it.
type promWriter struct {
	b strings.Builder
}

func (p *promWriter) family(name, typ, help string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, v int64) {
	p.family(name, "counter", help)
	fmt.Fprintf(&p.b, "%s %d\n", name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.family(name, "gauge", help)
	fmt.Fprintf(&p.b, "%s %s\n", name, formatFloat(v))
}

func (p *promWriter) sample(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(&p.b, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(&p.b, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// summary emits the legacy p50/p99 quantile form.
func (p *promWriter) summary(name, help string, h *stats.LatHist) {
	p.family(name, "summary", help)
	fmt.Fprintf(&p.b, "%s{quantile=\"0.5\"} %s\n", name, formatFloat(h.QuantileDur(0.50).Seconds()))
	fmt.Fprintf(&p.b, "%s{quantile=\"0.99\"} %s\n", name, formatFloat(h.QuantileDur(0.99).Seconds()))
	fmt.Fprintf(&p.b, "%s_sum %s\n", name, formatFloat(float64(h.Sum())/1e9))
	fmt.Fprintf(&p.b, "%s_count %d\n", name, h.Count())
}

// histLeBoundsNs are the exported histogram bucket bounds: powers of two
// from 1.024µs to ~17.2s. Each is an exact LatHist octave boundary, so
// coarsening the ~1000 engine buckets onto these 25 loses no samples to
// the wrong side of a bound.
var histLeBoundsNs = func() []int64 {
	out := make([]int64, 0, 25)
	for e := 10; e <= 34; e++ {
		out = append(out, int64(1)<<uint(e))
	}
	return out
}()

// histogram renders one labeled histogram series from a LatHist: the
// cumulative _bucket lines on the shared le bounds, then +Inf, _sum and
// _count. labels is either empty or `k="v",...` without braces; a
// trailing comma is tolerated.
func (p *promWriter) histogram(name, labels string, h *stats.LatHist) {
	labels = strings.TrimSuffix(labels, ",")
	counts := h.Snapshot()
	var total, cum int64
	for _, c := range counts {
		total += c
	}
	idx := 0
	for _, leNs := range histLeBoundsNs {
		// Bucket idx spans [BucketBound(idx), BucketBound(idx+1)); it is
		// wholly ≤ le once its exclusive upper bound reaches le.
		for idx < len(counts) && idx+1 < stats.HistBuckets && stats.BucketBound(idx+1) <= leNs {
			cum += counts[idx]
			idx++
		}
		p.sample(name+"_bucket", joinLabels(labels, fmt.Sprintf(`le="%s"`, formatFloat(float64(leNs)/1e9))), float64(cum))
	}
	p.sample(name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(total))
	p.sample(name+"_sum", labels, float64(h.Sum())/1e9)
	// _count comes from the same snapshot as the buckets so that the
	// +Inf bucket always equals it, even while samples land concurrently.
	fmt.Fprintf(&p.b, "%s_count", name)
	if labels != "" {
		fmt.Fprintf(&p.b, "{%s}", labels)
	}
	fmt.Fprintf(&p.b, " %d\n", total)
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// formatFloat renders a value the way Prometheus expects: shortest
// round-trip representation, no exponent surprises for integers.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
