package daemon

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// handleMetrics renders the cluster's counters in the Prometheus text
// exposition format — hand-rolled (no client library dependency), which
// for counters and pre-computed quantiles is just lines of
// "name{labels} value".
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	m := &d.cluster.M

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("quicksand_submits_accepted_total", "Operations accepted (guessed or coordinated).", m.Accepted.Value())
	counter("quicksand_submits_declined_total", "Operations declined by a local admission guess.", m.Declined.Value())
	counter("quicksand_sync_accepted_total", "Coordinated submits accepted by every replica.", m.SyncAccepted.Value())
	counter("quicksand_sync_declined_total", "Coordinated submits refused or failed by coordination.", m.SyncDeclined.Value())
	counter("quicksand_gossip_rounds_total", "Anti-entropy rounds run.", m.GossipRounds.Value())
	counter("quicksand_gossip_ops_total", "Entries moved by gossip.", m.OpsTransferred.Value())
	counter("quicksand_fold_steps_total", "App.Step invocations (state derivation cost).", m.FoldSteps.Value())
	counter("quicksand_fold_rewinds_total", "Checkpoint rewinds forced by out-of-order merges.", m.FoldRewinds.Value())
	counter("quicksand_fold_checkpoints_total", "Periodic fold checkpoints taken.", m.FoldCheckpoints.Value())

	// Latency quantiles, in seconds per Prometheus convention.
	quantiles := func(name, help string, p50, p99 time.Duration, count int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %g\n", name, p50.Seconds())
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %g\n", name, p99.Seconds())
		fmt.Fprintf(&b, "%s_count %d\n", name, count)
	}
	quantiles("quicksand_async_submit_seconds", "Latency of async (guess) submits.",
		m.AsyncLat.QuantileDur(0.50), m.AsyncLat.QuantileDur(0.99), m.AsyncLat.Count())
	quantiles("quicksand_sync_submit_seconds", "Latency of coordinated submits.",
		m.SyncLat.QuantileDur(0.50), m.SyncLat.QuantileDur(0.99), m.SyncLat.Count())

	st := d.cluster.DurabilityStats()
	counter("quicksand_journal_fsyncs_total", "Journal fsyncs completed (group commit).", st.Fsyncs)
	counter("quicksand_journal_appends_total", "Entries staged for the journal.", st.Appended)
	counter("quicksand_snapshots_total", "Durable snapshots written (full and delta).", st.Snapshots)
	counter("quicksand_snapshot_failures_total", "Snapshot attempts that could not reach disk.", st.SnapshotFailures)
	counter("quicksand_delta_snapshots_total", "Incremental (delta) snapshot cuts written.", st.DeltaSnapshots)
	counter("quicksand_segments_recycled_total", "Journal segments reborn from the free pool.", st.Recycled)
	counter("quicksand_torn_bytes_total", "Bytes truncated from torn journal tails at recovery.", st.TornBytes)
	gauge("quicksand_journal_max_stall_seconds", "Worst single journal flush (write+fsync) since start.",
		time.Duration(st.MaxStallNs).Seconds())

	// Disk-latency distributions, sampled per store and folded across
	// replicas: what one fsync costs, and what one snapshot cut costs.
	fsyncLat, snapLat := d.cluster.DurabilityLatencies()
	quantiles("quicksand_fsync_seconds", "Journal fsync duration (sampled).",
		fsyncLat.QuantileDur(0.50), fsyncLat.QuantileDur(0.99), fsyncLat.Count())
	quantiles("quicksand_snapshot_cut_seconds", "Snapshot cut duration, full and delta (sampled).",
		snapLat.QuantileDur(0.50), snapLat.QuantileDur(0.99), snapLat.Count())

	q := d.cluster.Apologies
	counter("quicksand_apologies_total", "Business-rule violations discovered (deduplicated).", int64(q.Total()))
	counter("quicksand_apologies_human_total", "Apologies escalated to humans.", int64(len(q.Human())))

	gauge("quicksand_uptime_seconds", "Seconds since the daemon started.", time.Since(d.started).Seconds())
	gauge("quicksand_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("quicksand_node_index", "Replica index this daemon hosts.", float64(d.cfg.Node))
	gauge("quicksand_shards", "Shard count.", float64(d.cluster.Shards()))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
