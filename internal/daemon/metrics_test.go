package daemon

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/client"
	"repro/internal/promtext"
)

// TestMetricsScrapeStrict boots a real daemon (durable, two shards,
// tracing every op), pushes traffic through it, and runs the scraped
// /metrics text through the strict exposition-format parser — every
// family well-formed, every histogram monotone with +Inf == _count,
// and the families the dashboards and CI depend on present with
// samples.
func TestMetricsScrapeStrict(t *testing.T) {
	d := soloDaemon(t, func(c *Config) {
		c.DataDir = t.TempDir() // journals on: fsync histograms populate
		c.Shards = 2
		c.TraceSample = 1 // trace every op: lag histograms populate
	})
	c := client.New("http://" + d.HTTPAddr())
	ctx := context.Background()

	var ops []client.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, client.Op{Kind: "deposit", Key: fmt.Sprintf("acct-%d", i), Arg: 10})
	}
	if _, err := c.SubmitBatch(ctx, ops, false); err != nil {
		t.Fatal(err)
	}
	// One sync submit so the sync-path histogram has a sample too.
	if _, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct-0", Arg: 1}, true); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	fams, err := promtext.Parse(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if err := promtext.Validate(fams); err != nil {
		t.Fatalf("scrape is not valid exposition text: %v", err)
	}

	// Families with at least one sample that the dashboard and the CI
	// scrape step rely on.
	mustHaveSamples := []string{
		"quicksand_submits_accepted_total",
		"quicksand_shard_submits_accepted_total",
		"quicksand_submit_duration_seconds",
		"quicksand_fsync_duration_seconds",
		"quicksand_guess_to_durable_seconds",
		"quicksand_guess_to_truth_seconds",
		"quicksand_trace_sample_every",
		"quicksand_goroutines",
		"quicksand_heap_alloc_bytes",
		"quicksand_gomaxprocs",
	}
	for _, name := range mustHaveSamples {
		f := promtext.Find(fams, name)
		if f == nil {
			t.Errorf("family %s missing from scrape", name)
			continue
		}
		if len(f.Samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}

	// Shard labels: both shards must report their own submit counters.
	shard := promtext.Find(fams, "quicksand_shard_submits_accepted_total")
	seen := map[string]bool{}
	if shard != nil {
		for _, s := range shard.Samples {
			seen[s.Labels["shard"]] = true
		}
	}
	if !seen["0"] || !seen["1"] {
		t.Errorf("per-shard counters cover shards %v, want both 0 and 1", seen)
	}

	// The submit histogram carries both path and shard labels, and at
	// least one async series actually observed our batch.
	sub := promtext.Find(fams, "quicksand_submit_duration_seconds")
	var asyncCount float64
	if sub != nil {
		for _, s := range sub.Samples {
			if strings.HasSuffix(s.Name, "_count") && s.Labels["path"] == "async" {
				asyncCount += s.Value
			}
		}
	}
	if asyncCount < 64 {
		t.Errorf("async submit histogram counted %v ops, want >= 64", asyncCount)
	}

	// Replicas=1: truth lands at admission, so every traced op has a
	// guess-to-truth sample.
	truth := promtext.Find(fams, "quicksand_guess_to_truth_seconds")
	var truthCount float64
	if truth != nil {
		for _, s := range truth.Samples {
			if strings.HasSuffix(s.Name, "_count") {
				truthCount += s.Value
			}
		}
	}
	if truthCount == 0 {
		t.Error("guess-to-truth histogram empty with trace_sample=1")
	}
}

// TestTraceEndpointAndDash exercises the observability HTTP surface:
// /v1/trace (recent stream and per-op timeline), /v1/annotate, and the
// embedded /dash page.
func TestTraceEndpointAndDash(t *testing.T) {
	d := soloDaemon(t, func(c *Config) { c.TraceSample = 1 })
	c := client.New("http://" + d.HTTPAddr())
	ctx := context.Background()

	res, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct", Arg: 5}, false)
	if err != nil || !res.Accepted {
		t.Fatalf("submit: %+v, %v", res, err)
	}
	if err := c.Annotate(ctx, "test marker"); err != nil {
		t.Fatalf("annotate: %v", err)
	}

	recent, err := c.TraceRecent(ctx)
	if err != nil {
		t.Fatalf("trace recent: %v", err)
	}
	if recent.SampleEvery != 1 || len(recent.Events) == 0 {
		t.Fatalf("recent trace = %+v, want sampled events", recent)
	}
	var sawAnnotation bool
	for _, e := range recent.Events {
		if e.Kind == "annotation" && e.Note == "test marker" {
			sawAnnotation = true
		}
	}
	if !sawAnnotation {
		t.Error("annotation missing from recent trace stream")
	}

	tl, err := c.Trace(ctx, res.ID)
	if err != nil {
		t.Fatalf("trace op: %v", err)
	}
	if len(tl.Events) < 2 || tl.Events[0].Kind != "submitted" {
		t.Fatalf("op timeline = %+v, want submitted-first lifecycle", tl.Events)
	}

	if _, err := c.Trace(ctx, "no-such-op"); err == nil {
		t.Error("unknown op id did not 404")
	}

	resp, err := http.Get("http://" + d.HTTPAddr() + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dash status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/dash content-type %q", ct)
	}
	page, _ := io.ReadAll(resp.Body)
	if !strings.Contains(strings.ToLower(string(page)), "quicksand") {
		t.Error("/dash page does not mention quicksand")
	}
}

// TestTraceDisabled pins the off switch: trace_sample < 0 leaves the
// daemon with no tracer, /v1/trace answers 404, and /metrics still
// parses (the lag families simply absent, the sample gauge zero).
func TestTraceDisabled(t *testing.T) {
	d := soloDaemon(t, func(c *Config) { c.TraceSample = -1 })
	c := client.New("http://"+d.HTTPAddr(), client.WithRetries(0))
	ctx := context.Background()

	if _, err := c.TraceRecent(ctx); err == nil {
		t.Error("trace endpoint answered with tracing disabled")
	}

	resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fams, err := promtext.Parse(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse with tracing off: %v", err)
	}
	if err := promtext.Validate(fams); err != nil {
		t.Fatalf("invalid exposition with tracing off: %v", err)
	}
	if f := promtext.Find(fams, "quicksand_guess_to_truth_seconds"); f != nil {
		t.Error("lag histogram exported with tracing disabled")
	}
	gauge := promtext.Find(fams, "quicksand_trace_sample_every")
	if gauge == nil || len(gauge.Samples) == 0 || gauge.Samples[0].Value != 0 {
		t.Errorf("trace_sample_every gauge = %+v, want 0", gauge)
	}
}

// TestDoctorMetricsProbeLive pins doctor's live half: against a
// running daemon the metrics probe hard-verifies the scrape (strict
// parse) and reports its size and duration, instead of the advisory
// "no daemon answering" it gives preflight.
func TestDoctorMetricsProbeLive(t *testing.T) {
	d := soloDaemon(t, nil)
	c := client.New("http://" + d.HTTPAddr())
	if _, err := c.Submit(context.Background(), client.Op{Kind: "deposit", Key: "k", Arg: 1}, false); err != nil {
		t.Fatal(err)
	}
	check := checkMetricsScrape(d.HTTPAddr())
	if !check.OK || check.Advisory {
		t.Fatalf("live metrics probe = %+v, want hard OK", check)
	}
	if !strings.Contains(check.Detail, "families") || !strings.Contains(check.Detail, "bytes") {
		t.Errorf("probe detail %q does not report scrape size", check.Detail)
	}
}

// TestDebugListener pins the pprof surface: off by default, and when
// configured it serves the profile index on its own listener, never on
// the API port.
func TestDebugListener(t *testing.T) {
	plain := soloDaemon(t, nil)
	resp, err := http.Get("http://" + plain.HTTPAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable on API listener: %d", resp.StatusCode)
	}

	dbg := soloDaemon(t, func(c *Config) { c.DebugAddr = "127.0.0.1:0" })
	if dbg.DebugAddr() == "" {
		t.Fatal("debug listener not started")
	}
	resp, err = http.Get("http://" + dbg.DebugAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}

	// The API listener still refuses pprof even when debugging is on.
	resp, err = http.Get("http://" + dbg.HTTPAddr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof leaked onto API listener: %d", resp.StatusCode)
	}
}
