package daemon

import (
	"repro/internal/core"
)

// Accounts is the daemon's application state: per-key balances in cents.
// quicksandd fixes the application (the paper's running example —
// accounts that must not go negative) so that every daemon in a cluster
// folds the same way; richer applications embed the engine directly.
type Accounts map[string]int64

// AccountsApp folds deposit/withdraw operations. Step mutates the
// accumulator in place; the Snapshotter implementation keeps states the
// engine has handed out stable regardless.
type AccountsApp struct{}

// Init returns the empty ledger.
func (AccountsApp) Init() Accounts { return make(Accounts) }

// Step applies one operation. Unknown kinds fold as no-ops, so a newer
// client talking to an older daemon degrades instead of diverging.
func (AccountsApp) Step(s Accounts, op core.Op) Accounts {
	switch op.Kind {
	case "deposit":
		s[op.Key] += op.Arg
	case "withdraw":
		s[op.Key] -= op.Arg
	}
	return s
}

// Snapshot deep-copies the ledger (Snapshotter contract).
func (AccountsApp) Snapshot(s Accounts) Accounts {
	ns := make(Accounts, len(s))
	for k, v := range s {
		ns[k] = v
	}
	return ns
}

// NoOverdraft is the daemon's probabilistically enforced rule (§5.2):
// withdrawals are admitted against the local guess, and balances that
// later merge below zero become apologies. The violation detail is
// deliberately amount-free — "overdraft K" — so the same overdraft
// discovered at different replicas (or at different depths of the merge)
// dedupes to exactly one apology, making apology counts comparable
// across processes.
func NoOverdraft() core.Rule[Accounts] {
	return core.Rule[Accounts]{
		Name: "no-overdraft",
		Admit: func(s Accounts, op core.Op) bool {
			if op.Kind != "withdraw" {
				return true
			}
			return s[op.Key] >= op.Arg
		},
		Violated: func(s Accounts) []core.Violation {
			var out []core.Violation
			for k, v := range s {
				if v < 0 {
					out = append(out, core.Violation{
						Detail: "overdraft " + k,
						Key:    k,
						Amount: -v,
					})
				}
			}
			return out
		},
	}
}
