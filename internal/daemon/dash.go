package daemon

import (
	"embed"
	"net/http"
)

// The dashboard is one self-contained HTML page compiled into the
// binary — no external assets, no CDN, works on an air-gapped box. It
// polls /metrics, /v1/apologies and /v1/trace from the browser; the
// /v1 endpoints need the API token, which the page asks for and keeps
// in localStorage (the page itself is served unauthenticated, like
// /metrics — it contains no data, only rendering code).
//
//go:embed dash.html
var dashFS embed.FS

func (d *Daemon) handleDash(w http.ResponseWriter, r *http.Request) {
	data, err := dashFS.ReadFile("dash.html")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "dashboard asset missing")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(data)
}
