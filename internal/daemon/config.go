package daemon

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultfs"
)

// Config is everything a quicksandd process needs to join a cluster.
// Zero values take the defaults noted per field; Validate reports
// anything incoherent before a socket is opened.
type Config struct {
	// Node is the replica index (0-based) this daemon hosts — of every
	// shard: daemon i runs replica i of each shard's group.
	Node int
	// Replicas is the cluster-wide replica count per shard (default 2).
	Replicas int
	// Shards partitions the key space (default 1).
	Shards int
	// HTTPListen is the client-facing HTTP address (default
	// 127.0.0.1:8080; ":0" picks a free port, see Daemon.HTTPAddr).
	HTTPListen string
	// PeerListen is the TCP address replica traffic arrives on (default
	// 127.0.0.1:7000; ":0" works for tests).
	PeerListen string
	// Peers maps the other daemons' replica indices to their PeerListen
	// addresses. The daemon's own index is ignored if present.
	Peers map[int]string
	// PeerToken authenticates replica connections (both directions).
	PeerToken string
	// APIToken, when set, is required as "Authorization: Bearer ..." on
	// every /v1 endpoint. /healthz and /metrics stay open.
	APIToken string
	// DataDir roots the per-replica durable stores ("" = memory only).
	DataDir string
	// GossipEvery is the anti-entropy interval (default 50ms).
	GossipEvery time.Duration
	// FsyncEvery tunes journal group commit (0 = immediate coalescing).
	FsyncEvery time.Duration
	// CallTimeout bounds replica-to-replica calls (default 500ms).
	CallTimeout time.Duration
	// IngestBatch caps ops per ingest batch (0 = engine default).
	IngestBatch int
	// SnapshotEvery sets journaled entries between durable snapshots
	// (0 = engine default).
	SnapshotEvery int
	// ShedBacklog is the ingest-ring occupancy fraction above which the
	// HTTP edge sheds submits with 429 + Retry-After instead of queueing
	// callers on backpressure (default 0.9; >= that fraction of ring
	// capacity occupied means overloaded).
	ShedBacklog float64
	// MinFreeDisk is the free-space floor (bytes) the doctor requires on
	// the data dir's filesystem (default 256 MiB). A disk below it will
	// degrade the daemon to read-only soon after start; better to fail
	// preflight. The config key accepts size suffixes: min_free_disk: 1GB.
	MinFreeDisk int64
	// TraceSample is the op-lifecycle tracing rate: trace 1-in-N ops
	// (plus every apology). 0 takes the default of 64, 1 traces every
	// op, and a negative value disables tracing entirely — the engine
	// hooks then cost a single nil check.
	TraceSample int
	// DebugAddr, when set, serves net/http/pprof on its own listener
	// (e.g. "127.0.0.1:6060"). It is never multiplexed onto HTTPListen,
	// so profiling stays off the public port; bind it to loopback.
	DebugAddr string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)

	// storeFS, when set, routes every durable-store file operation
	// through this filesystem — the fault-injection seam the daemon's
	// own tests use to fill a disk on command. Not reachable from
	// configs; production daemons always run on the real filesystem.
	storeFS faultfs.FS
}

func (c Config) withDefaults() Config {
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.HTTPListen == "" {
		c.HTTPListen = "127.0.0.1:8080"
	}
	if c.PeerListen == "" {
		c.PeerListen = "127.0.0.1:7000"
	}
	if c.GossipEvery == 0 {
		c.GossipEvery = 50 * time.Millisecond
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 500 * time.Millisecond
	}
	if c.TraceSample == 0 {
		c.TraceSample = 64
	}
	if c.ShedBacklog == 0 {
		c.ShedBacklog = 0.9
	}
	if c.MinFreeDisk == 0 {
		c.MinFreeDisk = 256 << 20
	}
	return c
}

// Validate reports the first configuration error, after defaults.
func (c Config) Validate() error {
	if c.Node < 0 || c.Node >= c.Replicas {
		return fmt.Errorf("daemon: node %d out of range for %d replicas", c.Node, c.Replicas)
	}
	if c.Shards < 1 {
		return fmt.Errorf("daemon: shards must be >= 1, got %d", c.Shards)
	}
	if c.ShedBacklog <= 0 || c.ShedBacklog > 1 {
		return fmt.Errorf("daemon: shed_backlog must be in (0, 1], got %v", c.ShedBacklog)
	}
	for i := range c.Replicas {
		if i == c.Node {
			continue
		}
		if c.Peers[i] == "" {
			return fmt.Errorf("daemon: no peer address for replica %d (peers: %v)", i, c.Peers)
		}
	}
	for i := range c.Peers {
		if i < 0 || i >= c.Replicas {
			return fmt.Errorf("daemon: peer index %d out of range for %d replicas", i, c.Replicas)
		}
	}
	return nil
}

// ParseConfigFile reads a flat YAML-subset config: one "key: value" per
// line, '#' comments, blank lines ignored. It covers exactly the keys a
// daemon needs — no nesting, no quoting, no anchors — so a config stays
// greppable and the parser stays auditable.
//
//	node: 0
//	replicas: 2
//	http_listen: 127.0.0.1:8080
//	peer_listen: 127.0.0.1:7000
//	peers: 0=127.0.0.1:7000,1=127.0.0.1:7001
//	peer_token: s3cret
//	data_dir: /var/lib/quicksand/n0
//	gossip_every: 50ms
func ParseConfigFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	cfg, err := ParseConfig(string(data))
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// ParseConfig parses the config text format (see ParseConfigFile).
func ParseConfig(text string) (Config, error) {
	var cfg Config
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return cfg, fmt.Errorf("line %d: want \"key: value\", got %q", ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "node":
			cfg.Node, err = strconv.Atoi(val)
		case "replicas":
			cfg.Replicas, err = strconv.Atoi(val)
		case "shards":
			cfg.Shards, err = strconv.Atoi(val)
		case "http_listen":
			cfg.HTTPListen = val
		case "peer_listen":
			cfg.PeerListen = val
		case "peers":
			cfg.Peers, err = parsePeers(val)
		case "peer_token":
			cfg.PeerToken = val
		case "api_token":
			cfg.APIToken = val
		case "data_dir":
			cfg.DataDir = val
		case "gossip_every":
			cfg.GossipEvery, err = time.ParseDuration(val)
		case "fsync_every":
			cfg.FsyncEvery, err = time.ParseDuration(val)
		case "call_timeout":
			cfg.CallTimeout, err = time.ParseDuration(val)
		case "ingest_batch":
			cfg.IngestBatch, err = strconv.Atoi(val)
		case "snapshot_every":
			cfg.SnapshotEvery, err = strconv.Atoi(val)
		case "shed_backlog":
			cfg.ShedBacklog, err = strconv.ParseFloat(val, 64)
		case "min_free_disk":
			cfg.MinFreeDisk, err = parseSize(val)
		case "trace_sample":
			cfg.TraceSample, err = strconv.Atoi(val)
		case "debug_addr":
			cfg.DebugAddr = val
		default:
			return cfg, fmt.Errorf("line %d: unknown key %q", ln+1, key)
		}
		if err != nil {
			return cfg, fmt.Errorf("line %d: %s: %v", ln+1, key, err)
		}
	}
	return cfg, nil
}

// parseSize parses a byte size: a plain integer, or one with a binary
// suffix K/M/G/T (an optional trailing "B" and any case are tolerated,
// so "256MB", "1g", and "1048576" all work).
func parseSize(val string) (int64, error) {
	s := strings.TrimSpace(strings.ToUpper(val))
	s = strings.TrimSuffix(s, "B")
	shift := 0
	switch {
	case strings.HasSuffix(s, "K"):
		shift, s = 10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		shift, s = 20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		shift, s = 30, strings.TrimSuffix(s, "G")
	case strings.HasSuffix(s, "T"):
		shift, s = 40, strings.TrimSuffix(s, "T")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("size %q: %v", val, err)
	}
	if n < 0 || n > (1<<62)>>shift {
		return 0, fmt.Errorf("size %q out of range", val)
	}
	return n << shift, nil
}

// parsePeers parses "0=host:port,1=host:port".
func parsePeers(val string) (map[int]string, error) {
	out := make(map[int]string)
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idxStr, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("want index=addr, got %q", part)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
		if err != nil {
			return nil, fmt.Errorf("peer index %q: %v", idxStr, err)
		}
		out[idx] = strings.TrimSpace(addr)
	}
	return out, nil
}

// FormatPeers renders a Peers map back into the config syntax, indices
// sorted — the inverse of parsePeers, for ops tooling output.
func FormatPeers(peers map[int]string) string {
	idxs := make([]int, 0, len(peers))
	for i := range peers {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	parts := make([]string, len(idxs))
	for j, i := range idxs {
		parts[j] = fmt.Sprintf("%d=%s", i, peers[i])
	}
	return strings.Join(parts, ",")
}
