// Package daemon hosts a slice of a quicksand cluster behind a
// versioned HTTP API. One daemon process runs replica index Node of
// every shard; its peers run the other indices, reached over the netx
// TCP transport. The application is fixed (Accounts + NoOverdraft — the
// paper's running example), so any two daemons with the same config fold
// identically.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/netx"
	"repro/internal/trace"
)

// Daemon is one running quicksandd process: transport + cluster slice +
// HTTP front end. Build with New (which binds both listeners), stop with
// Close (which drains before it returns).
type Daemon struct {
	cfg        Config
	tr         *netx.Transport
	cluster    *core.Cluster[Accounts]
	tracer     *trace.Tracer // nil when tracing is disabled
	httpLn     net.Listener
	srv        *http.Server
	debugLn    net.Listener // pprof listener, nil unless DebugAddr set
	debugSrv   *http.Server
	stopGossip func()
	started    time.Time
}

// New wires a daemon up and starts serving: the peer TCP listener, the
// replica slice (recovering any durable state in cfg.DataDir), the
// gossip schedule, and the HTTP API.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	peers := make(map[string]string)
	for i, addr := range cfg.Peers {
		if i == cfg.Node {
			continue
		}
		for s := 0; s < cfg.Shards; s++ {
			peers[core.NodeID(cfg.Shards, s, i)] = addr
		}
	}
	tr, err := netx.New(netx.Config{
		Listen: cfg.PeerListen,
		Peers:  peers,
		Token:  cfg.PeerToken,
		Logf:   cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	opts := []core.Option{
		core.WithTransport(tr),
		core.WithReplicas(cfg.Replicas),
		core.WithLocalReplicas(cfg.Node),
		core.WithCallTimeout(cfg.CallTimeout),
	}
	if cfg.Shards > 1 {
		opts = append(opts, core.WithShards(cfg.Shards))
	}
	if cfg.DataDir != "" {
		opts = append(opts, core.WithDurability(cfg.DataDir))
		if cfg.FsyncEvery != 0 {
			opts = append(opts, core.WithFsyncEvery(cfg.FsyncEvery))
		}
		if cfg.SnapshotEvery > 0 {
			opts = append(opts, core.WithSnapshotEvery(cfg.SnapshotEvery))
		}
		if cfg.storeFS != nil {
			opts = append(opts, core.WithStoreFS(cfg.storeFS))
		}
	}
	if cfg.IngestBatch > 0 {
		opts = append(opts, core.WithIngestBatch(cfg.IngestBatch))
	}
	var tracer *trace.Tracer
	if cfg.TraceSample > 0 {
		tracer = trace.New(trace.Options{
			SampleEvery: cfg.TraceSample,
			Replicas:    cfg.Replicas,
		})
		opts = append(opts, core.WithTracer(tracer))
	}
	cluster := core.New[Accounts](AccountsApp{}, []core.Rule[Accounts]{NoOverdraft()}, opts...)
	d := &Daemon{
		cfg:     cfg,
		tr:      tr,
		cluster: cluster,
		tracer:  tracer,
		started: time.Now(),
	}
	d.stopGossip = cluster.StartGossip(cfg.GossipEvery)
	ln, err := net.Listen("tcp", cfg.HTTPListen)
	if err != nil {
		d.stopGossip()
		cluster.Close()
		tr.Close()
		return nil, fmt.Errorf("daemon: http listen %s: %w", cfg.HTTPListen, err)
	}
	d.httpLn = ln
	d.srv = &http.Server{
		Handler:           d.routes(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go d.srv.Serve(ln)
	if cfg.DebugAddr != "" {
		if err := d.startDebug(cfg.DebugAddr); err != nil {
			d.Close()
			return nil, err
		}
	}
	cfg.logf("quicksandd: node %d serving http on %s, peers on %s", cfg.Node, d.HTTPAddr(), d.PeerAddr())
	return d, nil
}

// startDebug binds the opt-in pprof listener. The handlers are mounted
// on a private mux — never the default one, and never the public API
// server — so profiling is reachable only on this address.
func (d *Daemon) startDebug(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("daemon: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d.debugLn = ln
	d.debugSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go d.debugSrv.Serve(ln)
	d.cfg.logf("quicksandd: pprof on %s (keep this address private)", ln.Addr())
	return nil
}

// DebugAddr is the bound pprof address ("" when the debug listener is
// off).
func (d *Daemon) DebugAddr() string {
	if d.debugLn == nil {
		return ""
	}
	return d.debugLn.Addr().String()
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// HTTPAddr is the bound client-facing address (useful with ":0").
func (d *Daemon) HTTPAddr() string { return d.httpLn.Addr().String() }

// PeerAddr is the bound replica-traffic address.
func (d *Daemon) PeerAddr() string { return d.tr.Addr() }

// Cluster exposes the hosted cluster slice (tests and the -net bench).
func (d *Daemon) Cluster() *core.Cluster[Accounts] { return d.cluster }

// PeerTransport exposes the replica-traffic transport — chaos tooling
// reaches through it to inject frame faults on this daemon's links.
func (d *Daemon) PeerTransport() *netx.Transport { return d.tr }

// Close shuts the daemon down in drain order: stop accepting HTTP work,
// stop scheduling gossip, then close the cluster — which drains the
// ingest ring and flushes + fsyncs every journal — and finally tear the
// peer transport down. The returned error aggregates anything that
// refused to close cleanly (a store flush failure here means durable
// state may be behind acknowledged writes — worth a loud exit status).
func (d *Daemon) Close() error {
	var errs []error
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.srv.Shutdown(shutdownCtx); err != nil {
		errs = append(errs, fmt.Errorf("http shutdown: %w", err))
	}
	if d.debugSrv != nil {
		if err := d.debugSrv.Shutdown(shutdownCtx); err != nil {
			errs = append(errs, fmt.Errorf("debug shutdown: %w", err))
		}
	}
	d.stopGossip()
	if err := d.cluster.Close(); err != nil {
		errs = append(errs, fmt.Errorf("cluster close: %w", err))
	}
	if err := d.tr.Close(); err != nil {
		errs = append(errs, fmt.Errorf("transport close: %w", err))
	}
	return errors.Join(errs...)
}
