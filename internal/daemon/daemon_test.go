package daemon

import (
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/client"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(`
# node zero of a two-daemon cluster
node: 0
replicas: 2
shards: 4
http_listen: 127.0.0.1:8080
peer_listen: 127.0.0.1:7000
peers: 0=127.0.0.1:7000, 1=127.0.0.1:7001
peer_token: s3cret
api_token: hunter2
data_dir: /var/lib/quicksand/n0
gossip_every: 25ms
fsync_every: 2ms
call_timeout: 250ms
ingest_batch: 64
snapshot_every: 2048
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Node != 0 || cfg.Replicas != 2 || cfg.Shards != 4 {
		t.Fatalf("topology misparsed: %+v", cfg)
	}
	if cfg.Peers[1] != "127.0.0.1:7001" {
		t.Fatalf("peers misparsed: %v", cfg.Peers)
	}
	if cfg.GossipEvery != 25*time.Millisecond || cfg.FsyncEvery != 2*time.Millisecond {
		t.Fatalf("durations misparsed: %+v", cfg)
	}
	if cfg.APIToken != "hunter2" || cfg.PeerToken != "s3cret" {
		t.Fatalf("tokens misparsed: %+v", cfg)
	}
	if got := FormatPeers(cfg.Peers); got != "0=127.0.0.1:7000,1=127.0.0.1:7001" {
		t.Fatalf("FormatPeers = %q", got)
	}
	if err := cfg.withDefaults().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"node 0",     // missing colon
		"nodes: 0",   // unknown key
		"node: zero", // not an int
		"gossip_every: fast" /* not a duration */} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) succeeded", bad)
		}
	}
}

func TestValidateCatchesBadTopology(t *testing.T) {
	if err := (Config{Node: 2, Replicas: 2}).withDefaults().Validate(); err == nil {
		t.Error("node out of range accepted")
	}
	if err := (Config{Node: 0, Replicas: 2}).withDefaults().Validate(); err == nil {
		t.Error("missing peer address accepted")
	}
	if err := (Config{Node: 0, Replicas: 2, Peers: map[int]string{1: "x:1", 7: "y:2"}}).withDefaults().Validate(); err == nil {
		t.Error("out-of-range peer index accepted")
	}
}

// soloDaemon boots a single-replica daemon on ephemeral ports.
func soloDaemon(t *testing.T, mutate func(*Config)) *Daemon {
	t.Helper()
	cfg := Config{
		Node:       0,
		Replicas:   1,
		HTTPListen: "127.0.0.1:0",
		PeerListen: "127.0.0.1:0",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDaemonHTTPRoundTrip(t *testing.T) {
	d := soloDaemon(t, nil)
	c := client.New("http://" + d.HTTPAddr())
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil || !h.OK {
		t.Fatalf("health: %+v, %v", h, err)
	}

	res, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct", Arg: 500}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.ID == "" {
		t.Fatalf("deposit not accepted: %+v", res)
	}

	// Idempotent re-submit: same ID, no double-apply.
	res2, err := c.Submit(ctx, client.Op{Kind: "deposit", Key: "acct", Arg: 500, ID: res.ID}, false)
	if err != nil || !res2.Accepted {
		t.Fatalf("idempotent retry declined: %+v, %v", res2, err)
	}

	// Overdraft declined by the local guess.
	res3, err := c.Submit(ctx, client.Op{Kind: "withdraw", Key: "acct", Arg: 900}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Accepted || !strings.Contains(res3.Reason, "no-overdraft") {
		t.Fatalf("overdraft not declined by rule: %+v", res3)
	}

	st, err := c.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys["acct"] != 500 {
		t.Fatalf("state = %v, want acct=500 (dedup must not double-apply)", st.Keys)
	}

	batch := []client.Op{
		{Kind: "deposit", Key: "a", Arg: 1},
		{Kind: "deposit", Key: "b", Arg: 2},
		{Kind: "withdraw", Key: "a", Arg: 1},
	}
	results, err := c.SubmitBatch(ctx, batch, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("batch results = %d, want 3", len(results))
	}
	for i, r := range results {
		if !r.Accepted {
			t.Fatalf("batch op %d declined: %+v", i, r)
		}
	}

	ap, err := c.Apologies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ap.Total != 0 {
		t.Fatalf("apologies = %+v, want none (nothing went negative)", ap)
	}
}

func TestDaemonBearerAuth(t *testing.T) {
	d := soloDaemon(t, func(c *Config) { c.APIToken = "hunter2" })
	ctx := context.Background()

	// Wrong token: uniform 401 with the error envelope.
	bad := client.New("http://"+d.HTTPAddr(), client.WithToken("wrong"), client.WithRetries(0))
	_, err := bad.State(ctx)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusUnauthorized || apiErr.Code != "unauthorized" {
		t.Fatalf("want 401 unauthorized envelope, got %v", err)
	}
	if _, err := bad.Health(ctx); err != nil {
		t.Fatalf("healthz must stay tokenless: %v", err)
	}

	good := client.New("http://"+d.HTTPAddr(), client.WithToken("hunter2"))
	if _, err := good.State(ctx); err != nil {
		t.Fatalf("right token rejected: %v", err)
	}
}

func TestDaemonRejectsUnknownFieldsAndBadOps(t *testing.T) {
	d := soloDaemon(t, nil)
	c := client.New("http://"+d.HTTPAddr(), client.WithRetries(0))
	ctx := context.Background()

	resp, err := http.Post("http://"+d.HTTPAddr()+"/v1/submit", "application/json",
		strings.NewReader(`{"kind":"deposit","key":"k","arg":1,"typo_field":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field got %d, want 400", resp.StatusCode)
	}

	if _, err := c.Submit(ctx, client.Op{Key: "k", Arg: 1}, false); err == nil {
		t.Fatal("op without kind accepted")
	}
	if _, err := c.SubmitBatch(ctx, nil, false); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestDaemonMetricsExposition(t *testing.T) {
	d := soloDaemon(t, nil)
	c := client.New("http://" + d.HTTPAddr())
	if _, err := c.Submit(context.Background(), client.Op{Kind: "deposit", Key: "k", Arg: 1}, false); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + d.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		"quicksand_submits_accepted_total 1",
		"# TYPE quicksand_async_submit_seconds summary",
		"quicksand_journal_fsyncs_total",
		"quicksand_apologies_total 0",
		"quicksand_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them — the usual racy-but-reliable trick for wiring two daemons that
// must know each other's address before either starts.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestTwoDaemonsConvergeInProcess wires two Daemon values (full HTTP +
// TCP stacks, same process) into one cluster and drives them to
// convergence through the public API only.
func TestTwoDaemonsConvergeInProcess(t *testing.T) {
	ports := freePorts(t, 2)
	peers := map[int]string{0: ports[0], 1: ports[1]}
	mk := func(node int) *Daemon {
		d, err := New(Config{
			Node:        node,
			Replicas:    2,
			HTTPListen:  "127.0.0.1:0",
			PeerListen:  ports[node],
			Peers:       peers,
			PeerToken:   "mesh",
			GossipEvery: time.Hour, // manual rounds via /v1/gossip
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	da, db := mk(0), mk(1)
	ca := client.New("http://" + da.HTTPAddr())
	cb := client.New("http://" + db.HTTPAddr())
	ctx := context.Background()

	if _, err := ca.Submit(ctx, client.Op{Kind: "deposit", Key: "x", Arg: 10}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Submit(ctx, client.Op{Kind: "deposit", Key: "x", Arg: 20}, false); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := ca.Gossip(ctx); err != nil {
			t.Fatal(err)
		}
		if err := cb.Gossip(ctx); err != nil {
			t.Fatal(err)
		}
		sa, errA := ca.State(ctx)
		sb, errB := cb.State(ctx)
		if errA == nil && errB == nil && sa.Keys["x"] == 30 && sb.Keys["x"] == 30 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence: A=%v B=%v", sa.Keys, sb.Keys)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDoctorOnHealthyConfig(t *testing.T) {
	checks := Doctor(Config{
		Node:       0,
		Replicas:   1,
		HTTPListen: "127.0.0.1:0",
		PeerListen: "127.0.0.1:0",
		DataDir:    t.TempDir(),
	})
	for _, c := range checks {
		// Advisory findings (an unreachable peer, no daemon up yet for the
		// metrics probe) do not fail the doctor — same contract as the CLI.
		if !c.OK && !c.Advisory {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	// Expect the durability checks to have actually run.
	names := make(map[string]bool)
	for _, c := range checks {
		names[c.Name] = true
	}
	for _, want := range []string{"config", "data-dir-writable", "fsync", "http-port", "peer-port"} {
		if !names[want] {
			t.Errorf("doctor skipped check %s (got %v)", want, names)
		}
	}
}

func TestDoctorFlagsUnreachablePeer(t *testing.T) {
	checks := Doctor(Config{
		Node:       0,
		Replicas:   2,
		HTTPListen: "127.0.0.1:0",
		PeerListen: "127.0.0.1:0",
		// A port from the reserved-but-released pool: nothing listens.
		Peers: map[int]string{1: freePorts(t, 1)[0]},
	})
	found := false
	for _, c := range checks {
		if c.Name == "peer-1" {
			found = true
			if c.OK {
				t.Errorf("unreachable peer reported healthy: %+v", c)
			}
			if !c.Advisory {
				t.Errorf("unreachable peer should be advisory, not fatal: %+v", c)
			}
		}
	}
	if !found {
		t.Error("doctor never probed peer-1")
	}
}

// TestDaemonGracefulRestartKeepsState: Close flushes; a new daemon on
// the same data dir cold-starts with the accepted state.
func TestDaemonGracefulRestartKeepsState(t *testing.T) {
	dir := t.TempDir()
	ports := freePorts(t, 1)
	mk := func() *Daemon {
		d, err := New(Config{
			Node:       0,
			Replicas:   1,
			HTTPListen: "127.0.0.1:0",
			PeerListen: ports[0],
			DataDir:    dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d := mk()
	c := client.New("http://" + d.HTTPAddr())
	if _, err := c.Submit(context.Background(), client.Op{Kind: "deposit", Key: "k", Arg: 41}, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}

	d2 := mk()
	defer d2.Close()
	c2 := client.New("http://" + d2.HTTPAddr())
	st, err := c2.State(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys["k"] != 41 {
		t.Fatalf("state after restart = %v, want k=41", st.Keys)
	}
}
